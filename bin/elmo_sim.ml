(* elmo-sim: command-line front-end to the simulation harness.

   elmo-sim scalability --placement 12 --dist wve --groups 50000 -r 0 -r 12
   elmo-sim churn --events 20000
   elmo-sim faults --rate 0.2 --events 400
   elmo-sim ablation *)

open Cmdliner
module Obs = Elmo_obs.Obs
module Obs_ctx = Elmo_obs.Ctx
module Obs_clock = Elmo_obs.Clock
module Obs_metrics = Elmo_obs.Metrics
module Obs_trace = Elmo_obs.Trace
module Provenance = Elmo_obs.Provenance

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON of the run to $(docv) (load it in \
     chrome://tracing or Perfetto). ELMO_TRACE_CLOCK=mono selects wall-clock \
     timestamps; the default logical clock makes traced runs byte-identical \
     per seed."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the observability registry (counters and latency histograms) \
     after the run."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Install an ambient observability context around [f], then export the
   trace and/or print the metrics dump. No-op when neither flag is given. *)
let with_obs trace_file want_metrics f =
  if Option.is_none trace_file && not want_metrics then f ()
  else begin
    let clock = Obs_clock.of_kind (Obs_clock.kind_of_env ()) in
    let trace = Option.map (fun _ -> Obs_trace.create ~clock ()) trace_file in
    let metrics =
      if want_metrics then Some (Obs_metrics.create ()) else None
    in
    Obs.install (Obs_ctx.make ?metrics ?trace ~clock ());
    Fun.protect
      ~finally:(fun () -> Obs.install Obs_ctx.disabled)
      (fun () ->
        let r = f () in
        (match (trace, trace_file) with
        | Some tr, Some file ->
            Obs_trace.write_chrome tr file;
            Format.printf "wrote %s (%d events, %s clock)@." file
              (Obs_trace.event_count tr)
              (Obs_clock.kind_to_string (Obs_clock.kind clock))
        | _ -> ());
        (match metrics with
        | Some m -> Format.printf "@.metrics:@.%a@." Obs_metrics.pp m
        | None -> ());
        r)
  end

let groups_arg =
  let doc = "Number of multicast groups to simulate." in
  Arg.(value & opt int 50_000 & info [ "groups"; "g" ] ~docv:"N" ~doc)

let tenants_arg =
  let doc = "Number of tenants." in
  Arg.(value & opt int 3_000 & info [ "tenants" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed (runs are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let placement_arg =
  let parse s =
    match Vm_placement.strategy_of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg "expected a positive rack bound or \"all\"")
  in
  let strategy_conv = Arg.conv ~docv:"P" (parse, Vm_placement.pp_strategy) in
  let doc = "Placement strategy: max VMs of a tenant per rack (or \"all\")." in
  Arg.(
    value
    & opt strategy_conv (Vm_placement.Pack_up_to 12)
    & info [ "placement"; "P" ] ~docv:"P" ~doc)

let dist_arg =
  let parse s =
    match Group_dist.kind_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg "expected \"wve\" or \"uniform\"")
  in
  let dist_conv = Arg.conv ~docv:"DIST" (parse, Group_dist.pp_kind) in
  let doc = "Group-size distribution (wve or uniform)." in
  Arg.(value & opt dist_conv Group_dist.Wve & info [ "dist" ] ~docv:"DIST" ~doc)

let r_arg =
  let doc = "Redundancy limit(s) R to sweep (repeatable)." in
  Arg.(value & opt_all int [ 0; 6; 12 ] & info [ "r" ] ~docv:"R" ~doc)

let fmax_arg =
  let doc =
    "Per-switch s-rule capacity. Defaults to 30,000 scaled by groups/1M."
  in
  Arg.(value & opt (some int) None & info [ "fmax" ] ~docv:"N" ~doc)

let budget_arg =
  let doc = "Header budget in bytes (0 disables budget-driven Hmax)." in
  Arg.(value & opt int 325 & info [ "budget" ] ~docv:"BYTES" ~doc)

let domains_arg =
  let doc =
    "Worker domains for batch group encoding (results are identical for any \
     value; default from ELMO_DOMAINS or 1)."
  in
  Arg.(
    value
    & opt int (Scalability.domains_from_env 1)
    & info [ "domains"; "j" ] ~docv:"N" ~doc)

let config groups tenants seed placement dist fmax budget domains =
  let fmax =
    match fmax with
    | Some f -> f
    | None -> max 50 (30_000 * groups / 1_000_000)
  in
  let header_budget = if budget = 0 then None else Some budget in
  {
    Scalability.topo = Topology.facebook_fabric ();
    tenants;
    total_groups = groups;
    strategy = placement;
    dist;
    params = Params.create ~fmax ~header_budget ();
    seed;
    domains = max 1 domains;
  }

let scalability_cmd =
  let run groups tenants seed placement dist fmax budget domains rs trace_file
      metrics =
    let cfg = config groups tenants seed placement dist fmax budget domains in
    let prov =
      Provenance.capture ~seed
        ~params:(Format.asprintf "%a" Params.pp cfg.Scalability.params)
        ~domains:cfg.Scalability.domains ()
    in
    Format.printf "provenance: %a@." Provenance.pp prov;
    Format.printf "topology: %a@.placement: %a  dist: %a  groups: %d  params: %a@."
      Topology.pp cfg.Scalability.topo Vm_placement.pp_strategy placement
      Group_dist.pp_kind dist groups Params.pp cfg.Scalability.params;
    with_obs trace_file metrics (fun () ->
        List.iter
          (fun p -> Format.printf "@.%a@." Scalability.pp_point p)
          (Scalability.run cfg ~r_values:rs))
  in
  let term =
    Term.(
      const run $ groups_arg $ tenants_arg $ seed_arg $ placement_arg
      $ dist_arg $ fmax_arg $ budget_arg $ domains_arg $ r_arg $ trace_arg
      $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "scalability"
       ~doc:"Figures 4/5: encode all groups and report coverage, s-rules and \
             traffic overhead across R values.")
    term

let churn_cmd =
  let events_arg =
    Arg.(value & opt int 20_000 & info [ "events" ] ~docv:"N" ~doc:"Membership events.")
  in
  let run groups tenants seed placement dist fmax budget domains events
      trace_file metrics =
    let base = config groups tenants seed placement dist fmax budget domains in
    let cfg =
      {
        Control_plane.topo = base.Scalability.topo;
        tenants = base.Scalability.tenants;
        total_groups = base.Scalability.total_groups;
        strategy = base.Scalability.strategy;
        dist = base.Scalability.dist;
        params = base.Scalability.params;
        events;
        events_per_second = 1_000.0;
        failure_trials = 5;
        seed = base.Scalability.seed;
        domains = base.Scalability.domains;
      }
    in
    let prov =
      Provenance.capture ~seed
        ~params:(Format.asprintf "%a" Params.pp base.Scalability.params)
        ~domains:base.Scalability.domains ()
    in
    Format.printf "provenance: %a@." Provenance.pp prov;
    with_obs trace_file metrics (fun () ->
        let r = Control_plane.run cfg in
        Format.printf "%a@.@.%a@." Control_plane.pp_table2
          r.Control_plane.churn Control_plane.pp_failures r)
  in
  let term =
    Term.(
      const run $ groups_arg $ tenants_arg $ seed_arg $ placement_arg
      $ dist_arg $ fmax_arg $ budget_arg $ domains_arg $ events_arg
      $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:"Table 2 and failure handling: per-switch update load under \
             membership churn, plus spine/core failure impact.")
    term

let ablation_cmd =
  let run () =
    List.iter
      (fun s -> Format.printf "%a@." Ablation.pp_step s)
      (Ablation.run ())
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Header-size ablation of design decisions D1-D5 on the running \
             example.")
    Term.(const run $ const ())

let nonclos_cmd =
  let groups_small =
    Arg.(value & opt int 1_000 & info [ "groups"; "g" ] ~docv:"N" ~doc:"Groups to encode.")
  in
  let r_single =
    Arg.(value & opt int 12 & info [ "r" ] ~docv:"R" ~doc:"Redundancy limit.")
  in
  let run groups r seed =
    List.iter
      (fun res -> Format.printf "%a@.@." Nonclos_exp.pp_result res)
      (Nonclos_exp.run ~groups ~r ~seed ())
  in
  Cmd.v
    (Cmd.info "nonclos"
       ~doc:"Header-space utilization on non-Clos topologies (Xpander vs              Jellyfish), per the paper's 5.1.2 discussion.")
    Term.(const run $ groups_small $ r_single $ seed_arg)

let faults_cmd =
  let events_arg =
    Arg.(
      value & opt int 400
      & info [ "events" ] ~docv:"N" ~doc:"Membership events per rate.")
  in
  let rate_arg =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Single per-operation fault probability to run (default: sweep \
             0.0 0.05 0.1 0.2 0.4).")
  in
  let run seed events rate trace_file metrics =
    let topo = Topology.running_example () in
    let params =
      Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None ~fmax:6 ()
    in
    let rates =
      match rate with Some r -> [ r ] | None -> [ 0.0; 0.05; 0.1; 0.2; 0.4 ]
    in
    let prov =
      Provenance.capture ~seed
        ~params:(Format.asprintf "%a" Params.pp params)
        ~domains:1 ()
    in
    Format.printf "provenance: %a@." Provenance.pp prov;
    Format.printf "topology: %a; 12 groups x 8 members; %d events per rate@."
      Topology.pp topo events;
    with_obs trace_file metrics (fun () ->
        Format.printf "@.%-8s %-8s %-11s %-8s %-9s %-10s %-8s %-9s@." "rate"
          "probes" "blackholes" "extra%" "retries" "exhausted" "degraded"
          "compens";
        List.iter
          (fun rate ->
            let r =
              Churn.fault_run ~seed topo params ~groups:12 ~group_size:8
                ~events ~rate ~probe_every:25
            in
            let i = r.Churn.install in
            Format.printf "%-8.2f %-8d %-11d %-8.1f %-9d %-10d %-8d %-9d@."
              rate r.Churn.probes r.Churn.blackholes
              (100.0 *. r.Churn.extra_traffic)
              i.Controller.retries i.Controller.exhausted
              i.Controller.degradations i.Controller.compensations)
          rates)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-tolerant control plane: inject install faults at increasing \
          rates and measure retry/degradation cost (extra traffic, never \
          blackholes).")
    Term.(const run $ seed_arg $ events_arg $ rate_arg $ trace_arg $ metrics_arg)

let verify_cmd =
  let groups_small =
    Arg.(
      value & opt int 128
      & info [ "groups"; "g" ] ~docv:"N"
          ~doc:"Multicast groups to install before checking.")
  in
  let corrupt_arg =
    let doc =
      "Self-test: after installing, drop one receiver's port from the \
       leaf-layer rules of the first multicast group, so the check must \
       produce a counterexample and exit nonzero."
    in
    Arg.(value & flag & info [ "corrupt" ] ~doc)
  in
  let example_arg =
    Arg.(
      value & flag
      & info [ "example" ]
          ~doc:
            "Use the paper's running-example topology instead of the \
             Facebook fabric.")
  in
  (* Clear [host]'s port from every leaf-layer assignment of the view's
     first multicast group: p-rules covering its leaf, the leaf's s-rule,
     and the default p-rule. The symbolic check must then name exactly
     that endpoint. *)
  let sabotage topo (cfg : Installed_config.t) =
    let clear (g : Installed_config.group_view) =
      match (g.Installed_config.enc, g.Installed_config.receivers) with
      | Some enc, _ :: _ :: _ ->
          let host = List.hd g.Installed_config.receivers in
          let leaf = Topology.leaf_of_host topo host in
          let port = Topology.host_port_on_leaf topo host in
          let layer = enc.Encoding.d_leaf in
          List.iter
            (fun (r : Prule.prule) ->
              if Prule.rule_mem r leaf then Bitmap.clear r.Prule.bitmap port)
            layer.Clustering.prules;
          List.iter
            (fun (l, bm) -> if l = leaf then Bitmap.clear bm port)
            layer.Clustering.srules;
          (match layer.Clustering.default with
          | Some (_, bm) -> Bitmap.clear bm port
          | None -> ());
          Format.printf "corrupted group %d: dropped leaf%d port %d@."
            g.Installed_config.gid leaf port;
          true
      | _ -> false
    in
    if not (List.exists clear cfg.Installed_config.groups) then begin
      Format.printf "--corrupt: no multicast group to corrupt@.";
      exit 2
    end
  in
  let run groups seed corrupt example =
    let topo =
      if example then Topology.running_example ()
      else Topology.facebook_fabric ()
    in
    let ctrl = Controller.create topo Params.default in
    let rng = Rng.create seed in
    let n = Topology.num_hosts topo in
    for g = 0 to groups - 1 do
      let size = 2 + Rng.int rng 15 in
      let members =
        List.init size (fun _ -> Rng.int rng n) |> List.sort_uniq Int.compare
      in
      ignore
        (Controller.add_group ctrl ~group:g
           (List.map (fun h -> (h, Controller.Both)) members))
    done;
    let cfg = Controller.installed_config ctrl in
    if corrupt then sabotage topo cfg;
    Format.printf "checking %d groups against their own trees (%a)...@."
      groups Topology.pp topo;
    let cache = Verify.create_cache () in
    (match Verify.check_config_cached cache cfg ~dirty:(Controller.drain_dirty ctrl) with
    | Ok n ->
        Format.printf "ok: %d groups, installed state == intended delivery@." n
    | Error w ->
        Format.printf "counterexample: %a@." Verify.pp_witness w;
        exit 1);
    (* Demonstrate the incremental oracle: one membership event should
       invalidate exactly one group's cached predicates. *)
    if not corrupt then begin
      let gid = 0 in
      (match Controller.members ctrl ~group:gid with
      | (host, _) :: _ ->
          ignore (Controller.leave ctrl ~group:gid ~host);
          ignore (Controller.join ctrl ~group:gid ~host ~role:Controller.Both)
      | [] -> ());
      let dirty = Controller.drain_dirty ctrl in
      match
        Verify.check_config_cached cache
          (Controller.installed_config ctrl)
          ~dirty
      with
      | Ok n ->
          let hits, misses = Verify.cache_stats cache in
          Format.printf
            "re-check after churn on group %d: %d groups ok, %d recompiled, \
             cache %d hits / %d misses@."
            gid n (List.length dirty) hits misses
      | Error w ->
          Format.printf "counterexample after churn: %a@." Verify.pp_witness w;
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Symbolic forwarding check: compile every group's installed rules \
          to its canonical delivery predicate and compare against the \
          membership intent; print the first counterexample as \
          group/switch/port and exit nonzero.")
    Term.(const run $ groups_small $ seed_arg $ corrupt_arg $ example_arg)

let top_cmd =
  let groups_arg =
    Arg.(
      value & opt int 256
      & info [ "groups"; "g" ] ~docv:"N" ~doc:"Multicast groups to install.")
  in
  let packets_arg =
    Arg.(
      value & opt int 2_000
      & info [ "packets" ] ~docv:"N"
          ~doc:"Packets to inject (Zipf-skewed across groups).")
  in
  let churn_arg =
    Arg.(
      value & opt int 200
      & info [ "churn" ] ~docv:"N"
          ~doc:"Membership events before the packet phase.")
  in
  let k_arg =
    Arg.(
      value & opt int 16
      & info [ "k" ] ~docv:"K" ~doc:"Heavy-hitter sketch slots.")
  in
  let watermark_arg =
    Arg.(
      value & opt float 0.0
      & info [ "watermark" ] ~docv:"FRAC"
          ~doc:
            "Per-window link-utilization fraction above which a watermark \
             event fires (0 disables).")
  in
  let expose_arg =
    Arg.(
      value & flag
      & info [ "expose" ]
          ~doc:"Print the Prometheus text exposition after the table.")
  in
  let example_arg =
    Arg.(
      value & flag
      & info [ "example" ]
          ~doc:
            "Use the paper's running-example topology instead of a small \
             Clos.")
  in
  let flight_dump_arg =
    Arg.(
      value & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Write the flight recorder's retained event ring to $(docv) as \
             JSON after the run.")
  in
  let run groups packets churn seed k watermark expose example flight_dump
      trace_file =
    let topo =
      if example then Topology.running_example ()
      else
        Topology.create ~pods:4 ~leaves_per_pod:4 ~spines_per_pod:2
          ~hosts_per_leaf:16 ~cores_per_plane:2
    in
    (* top always measures: install a metrics registry even without
       --metrics so the telemetry gauges have somewhere to land. *)
    let clock = Obs_clock.of_kind (Obs_clock.kind_of_env ()) in
    let trace = Option.map (fun _ -> Obs_trace.create ~clock ()) trace_file in
    let metrics = Obs_metrics.create () in
    Obs.install (Obs_ctx.make ~metrics ?trace ~clock ());
    Fun.protect
      ~finally:(fun () -> Obs.install Obs_ctx.disabled)
      (fun () ->
        let cfg =
          {
            (Elmo_telemetry.Report.default_config topo) with
            Elmo_telemetry.Report.groups;
            packets;
            churn_events = churn;
            seed;
            k;
            watermark;
          }
        in
        let prov =
          Provenance.capture ~seed
            ~params:(Format.asprintf "%a" Params.pp cfg.Elmo_telemetry.Report.params)
            ~domains:1 ()
        in
        Format.printf "provenance: %a@." Provenance.pp prov;
        Format.printf "topology: %a (%.0f Gbps links)@." Topology.pp topo
          (Topology.link_gbps topo);
        let res = Elmo_telemetry.Report.run cfg in
        Format.printf "@.%a@." Elmo_telemetry.Report.pp res;
        if expose then
          Format.printf "@.exposition:@.%s@." (Obs_metrics.expose metrics);
        (match flight_dump with
        | Some file ->
            Elmo_telemetry.Flight_recorder.dump_to_file ~reason:"top"
              (Elmo_telemetry.Flight_recorder.ambient ())
              file;
            Format.printf "wrote flight-recorder dump to %s@." file
        | None -> ());
        (match (trace, trace_file) with
        | Some tr, Some file ->
            Obs_trace.write_chrome tr file;
            Format.printf "wrote %s (%d events)@." file
              (Obs_trace.event_count tr)
        | _ -> ());
        if not res.Elmo_telemetry.Report.sketch_ok
           || res.Elmo_telemetry.Report.missed_heavy > 0
        then begin
          Elmo_telemetry.Flight_recorder.dump_to_file
            ~reason:"sketch_bound_violation"
            (Elmo_telemetry.Flight_recorder.ambient ())
            "FLIGHT_sketch_violation.json";
          Format.printf "sketch bound violated — wrote FLIGHT_sketch_violation.json@.";
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "One-shot dataplane telemetry snapshot: run a skewed packet \
          workload over an instrumented fabric and print the hottest links, \
          elephant groups (sketch vs exact), churn fast-path rate and shard \
          commits.")
    Term.(
      const run $ groups_arg $ packets_arg $ churn_arg $ seed_arg $ k_arg
      $ watermark_arg $ expose_arg $ example_arg $ flight_dump_arg $ trace_arg)

let recover_cmd =
  let module Flight = Elmo_telemetry.Flight_recorder in
  let journal_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Wire-format journal to recover from (or create with --write).")
  in
  let write_arg =
    Arg.(
      value & flag
      & info [ "write" ]
          ~doc:
            "Generate a deterministic fixture journal at --journal (seeded \
             churn on the running example, snapshots included) and exit, \
             instead of recovering.")
  in
  let events_arg =
    Arg.(
      value & opt int 200
      & info [ "events" ] ~docv:"N"
          ~doc:"Churn events in the generated fixture.")
  in
  let flip_arg =
    Arg.(
      value & opt (some int) None
      & info [ "corrupt-flip" ] ~docv:"BIT"
          ~doc:
            "Flip bit $(docv) of the journal bytes before recovering \
             (bit-rot simulation).")
  in
  let truncate_arg =
    Arg.(
      value & opt (some int) None
      & info [ "corrupt-truncate" ] ~docv:"OFF"
          ~doc:
            "Truncate the journal at byte $(docv) before recovering \
             (torn-write simulation).")
  in
  let flight_dump_arg =
    Arg.(
      value & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Write the recovery flight recording (replayed ops, truncation/\
             fallback/fence notes) to $(docv) as JSON.")
  in
  (* Deterministic fixture: seeded membership churn over four groups with
     spine failures mixed in, checkpointed mid-stream so the log exercises
     both the snapshot and the replay suffix. *)
  let gen_fixture path ~events ~seed =
    let topo = Topology.running_example () in
    let params =
      Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None ~fmax:6 ()
    in
    let fabric = Fabric.create topo in
    let replica =
      Replica.create ~snapshot_every:1_000_000
        ~fabric_hooks:(Fabric.controller_hooks_at fabric ~epoch:0)
        ~durable:true topo params
    in
    let rng = Rng.create seed in
    let n = Topology.num_hosts topo in
    let ngroups = 4 in
    let member = Array.init ngroups (fun _ -> Array.make n false) in
    let size g = Array.fold_left (fun a m -> if m then a + 1 else a) 0 member.(g) in
    for g = 0 to ngroups - 1 do
      let members =
        List.init (4 + Rng.int rng 8) (fun _ -> Rng.int rng n)
        |> List.sort_uniq Int.compare
      in
      List.iter (fun h -> member.(g).(h) <- true) members;
      Replica.apply replica
        (Journal.Add_group
           {
             group = g;
             members = List.map (fun h -> (h, Controller.Both)) members;
           })
    done;
    let spines = Topology.num_spines topo in
    let spine_down = Array.make spines false in
    for i = 1 to events do
      if i = events / 2 then Replica.checkpoint replica;
      let g = Rng.int rng ngroups and h = Rng.int rng n in
      match Rng.int rng 8 with
      | 0 when size g > 2 && member.(g).(h) ->
          member.(g).(h) <- false;
          Replica.apply replica (Journal.Leave { group = g; host = h })
      | 1 ->
          let s = Rng.int rng spines in
          spine_down.(s) <- not spine_down.(s);
          Replica.apply replica
            (if spine_down.(s) then Journal.Fail_spine s
             else Journal.Recover_spine s)
      | _ when not member.(g).(h) ->
          member.(g).(h) <- true;
          Replica.apply replica
            (Journal.Join { group = g; host = h; role = Controller.Both })
      | _ -> ()
    done;
    let wire = Option.get (Replica.wire replica) in
    Wire.to_file path (Wire.contents wire);
    Format.printf "wrote fixture journal %s: %d records, %d bytes@." path
      (Wire.records wire) (Wire.size wire)
  in
  let run journal write events seed flip truncate flight_dump =
    if write then gen_fixture journal ~events ~seed
    else begin
      let fr = Flight.create ~capacity:1024 () in
      let dump_flight reason =
        match flight_dump with
        | Some file ->
            Flight.dump_to_file ~reason fr file;
            Format.printf "wrote flight-recorder dump to %s@." file
        | None -> ()
      in
      let fail_unrecoverable msg =
        Format.printf "unrecoverable: %s@." msg;
        Flight.note fr "recover.unrecoverable" ~a:0 ~b:0;
        dump_flight "unrecoverable";
        exit 2
      in
      match Wire.of_file journal with
      | Error msg -> fail_unrecoverable msg
      | Ok bytes -> (
          let bytes =
            match truncate with
            | Some off ->
                Flight.note fr "corrupt.truncate" ~a:off ~b:0;
                Wire.truncate_at bytes off
            | None -> bytes
          in
          let bytes =
            match flip with
            | Some bit -> (
                Flight.note fr "corrupt.flip_bit" ~a:bit ~b:0;
                match Wire.flip_bit bytes bit with
                | flipped -> flipped
                | exception Invalid_argument _ ->
                    fail_unrecoverable
                      (Printf.sprintf "--corrupt-flip %d: log is only %d bits"
                         bit
                         (8 * Bytes.length bytes)))
            | None -> bytes
          in
          (* Peek at the log to learn the topology the fabric must have;
             failover re-loads the same bytes for recovery proper. *)
          match Wire.load bytes with
          | Error msg -> fail_unrecoverable msg
          | Ok peek -> (
              match peek.Wire.l_snapshot with
              | None -> fail_unrecoverable "no decodable snapshot in the log"
              | Some snap -> (
                  let topo = Controller.snapshot_topology snap in
                  let fabric = Fabric.create topo in
                  match
                    Supervisor.failover ~observer:(Flight.observer fr) ~fabric
                      bytes
                  with
                  | Error msg -> fail_unrecoverable msg
                  | Ok outcome ->
                      let loaded = outcome.Supervisor.loaded in
                      (match loaded.Wire.l_truncated_at with
                      | Some off -> Flight.note fr "wire.truncated" ~a:off ~b:0
                      | None -> ());
                      if loaded.Wire.l_dropped_snapshots > 0 then
                        Flight.note fr "wire.snapshot_fallback"
                          ~a:loaded.Wire.l_dropped_snapshots ~b:0;
                      Flight.note fr "fence.epoch" ~a:outcome.Supervisor.epoch
                        ~b:loaded.Wire.l_epoch;
                      Format.printf "loaded: %a@." Wire.pp_loaded loaded;
                      Format.printf "fence: epoch %d (log wrote epoch %d)@."
                        outcome.Supervisor.epoch loaded.Wire.l_epoch;
                      Format.printf "reconcile: %a@." Supervisor.pp_reconcile
                        outcome.Supervisor.reconcile;
                      let divergent =
                        match
                          Verify.check_controller
                            (Replica.controller outcome.Supervisor.replica)
                        with
                        | Ok (groups : int) ->
                            Format.printf
                              "verify: %d groups, installed state == intended \
                               delivery@."
                              groups;
                            false
                        | Error w ->
                            Format.printf "verify counterexample: %a@."
                              Verify.pp_witness w;
                            true
                      in
                      (match outcome.Supervisor.blackholes with
                      | [] -> Format.printf "blackholes: none@."
                      | ws ->
                          Format.printf "blackholes: %d (first: %a)@."
                            (List.length ws) Verify.pp_witness (List.hd ws));
                      dump_flight "recover";
                      if divergent || outcome.Supervisor.blackholes <> [] then
                        exit 1)))
    end
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Crash recovery from a durable wire-format journal: load (tolerating \
          torn or corrupt tails), fence the fabric at a fresh epoch, replay, \
          reconcile against the fabric and prove zero blackholes. Exit 0 on a \
          verified recovery, 1 on divergence/blackholes, 2 when the log is \
          unrecoverable.")
    Term.(
      const run $ journal_arg $ write_arg $ events_arg $ seed_arg $ flip_arg
      $ truncate_arg $ flight_dump_arg)

let p4_cmd =
  let role_arg =
    let parse = function
      | "leaf" -> Ok P4gen.Leaf
      | "spine" -> Ok P4gen.Spine
      | "core" -> Ok P4gen.Core
      | _ -> Error (`Msg "expected leaf, spine or core")
    in
    let print ppf = function
      | P4gen.Leaf -> Format.pp_print_string ppf "leaf"
      | P4gen.Spine -> Format.pp_print_string ppf "spine"
      | P4gen.Core -> Format.pp_print_string ppf "core"
    in
    Arg.(
      value
      & opt (Arg.conv ~docv:"ROLE" (parse, print)) P4gen.Leaf
      & info [ "role" ] ~docv:"ROLE" ~doc:"Switch role: leaf, spine or core.")
  in
  let hypervisor_arg =
    Arg.(value & flag & info [ "hypervisor" ] ~doc:"Emit the hypervisor-switch program instead.")
  in
  let id_arg =
    Arg.(value & opt int 0 & info [ "id" ] ~docv:"ID" ~doc:"Switch identifier (leaf number / pod number).")
  in
  let example_arg =
    Arg.(value & flag & info [ "example" ] ~doc:"Use the paper's running-example topology instead of the Facebook fabric.")
  in
  let run role hypervisor id example =
    let topo =
      if example then Topology.running_example () else Topology.facebook_fabric ()
    in
    let params = Params.default in
    if hypervisor then
      print_string (P4gen.hypervisor_switch_program topo params)
    else print_string (P4gen.network_switch_program topo params ~role ~switch_id:id)
  in
  Cmd.v
    (Cmd.info "p4"
       ~doc:"Emit the generated P4-16 program for a switch (boot-time              configuration, paper footnote 3).")
    Term.(const run $ role_arg $ hypervisor_arg $ id_arg $ example_arg)

let main =
  let info =
    Cmd.info "elmo-sim" ~version:"1.0.0"
      ~doc:"Simulation harness for Elmo: source-routed multicast for public \
            clouds (SIGCOMM 2019)."
  in
  Cmd.group info
    [
      scalability_cmd; churn_cmd; faults_cmd; ablation_cmd; nonclos_cmd;
      verify_cmd; top_cmd; recover_cmd; p4_cmd;
    ]

let () = exit (Cmd.eval main)
