(* elmo-lint CLI: lints the typed ASTs (.cmt) of the modules it is given.

   Usage:
     elmo_lint [--all-scopes] [--source-root DIR]
       --targets a.cmt b.cmt ... [--deps c.cmt ...]

   --source-root points at the directory holding the workspace-relative
   sources (for suppression-comment scanning) when the linter is not run
   from the workspace root — dune lint rules pass %{workspace_root}.

   Targets are linted; deps only extend the domain-safety reachability
   analysis (so a Domain_pool.map call in a target can flag top-level
   mutable state in a dependency). Exit status: 0 clean, 1 findings,
   2 usage or I/O error. Findings print as [path:line: [rule-id] message]
   with workspace-relative paths, so editors can jump straight to them. *)

type mode = Targets | Deps | Source_root

let () =
  let targets = ref [] and deps = ref [] in
  let all_scopes = ref false in
  let source_root = ref None in
  let mode = ref Targets in
  let usage () =
    prerr_endline
      "usage: elmo_lint [--all-scopes] [--source-root DIR] --targets CMT... \
       [--deps CMT...]";
    exit 2
  in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--targets" -> mode := Targets
        | "--deps" -> mode := Deps
        | "--source-root" -> mode := Source_root
        | "--all-scopes" -> all_scopes := true
        | "--help" | "-h" -> usage ()
        | _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
        | path -> (
            match !mode with
            | Targets -> targets := path :: !targets
            | Deps -> deps := path :: !deps
            | Source_root ->
                source_root := Some path;
                mode := Targets))
    Sys.argv;
  if !targets = [] then usage ();
  let config = if !all_scopes then Lint.all_config else Lint.default_config in
  match
    Lint.analyze ~config ?source_root:!source_root
      ~targets:(List.rev !targets) ~deps:(List.rev !deps) ()
  with
  | [] -> ()
  | findings ->
      List.iter
        (fun f -> Format.printf "%a@." Lint.pp_finding f)
        findings;
      Format.printf "elmo-lint: %d finding(s)@." (List.length findings);
      exit 1
  | exception Failure msg ->
      prerr_endline msg;
      exit 2
