(** elmo-lint: typed-AST static analysis over the [.cmt] files dune emits.

    The type system cannot see the invariants Elmo's correctness argument
    rests on: the controller must be bit-identically deterministic (the
    parallel [install_all] is proved against the sequential path only if no
    code path consults ambient randomness or wall clocks), capacity failures
    must surface as declared exceptions rather than stray [failwith], and
    nothing reachable from [Domain_pool.map] may touch top-level mutable
    state. This pass walks the typed trees ([Cmt_format.read_cmt] +
    [Tast_iterator]) and enforces them mechanically.

    A finding on line [l] is silenced by an inline comment on line [l] or
    [l - 1]:

    {v (* elmo-lint: allow <rule-id> — <reason> *) v}

    A suppression without a reason is itself a finding ([bare-allow]); it
    still silences the original finding so the output names exactly one
    problem per site. *)

type rule =
  | Determinism
      (** No [Random.*], [Sys.time], [Unix.gettimeofday]/[Unix.time], or
          [Hashtbl.hash]/[seeded_hash]/[randomize]: all randomness must flow
          through [Elmo_prelude.Rng] (splitmix64) so every run replays. *)
  | Poly_compare
      (** No polymorphic [=] / [<>] / [compare] instantiated at a
          non-primitive type, and no [Hashtbl.create] keyed by one: abstract
          types ([Bitmap.t]) and records with cached fields compare wrongly
          under structural equality. *)
  | Exception_discipline
      (** No [failwith] / [invalid_arg] / [assert false]: failures must use
          the module's declared exception constructors. [Invalid_argument]
          at a genuine API-misuse boundary is allowed with a reasoned
          suppression. *)
  | Domain_safety
      (** No top-level [ref] / [Hashtbl] / mutable-record binding in any
          module transitively reachable (via cmt import info) from a closure
          passed to [Domain_pool.map] or [Domain_pool.submit] — a static
          data-race screen for the OCaml 5 parallel encode path. *)
  | Interface_hygiene
      (** Every implementation ships an [.mli] (detected as a sibling
          [.cmti] of the [.cmt]). *)
  | Zero_alloc
      (** A top-level binding annotated [(* elmo-lint: zero-alloc *)] (on
          the binding's line or the line above) must not allocate on any
          path. Per-function summaries over the typed AST record direct
          allocation sites — non-constant constructors, tuples, records,
          arrays, closures and partial applications, boxed floats and
          float-record reads, [@]/[^], polymorphic-compare fallbacks —
          and the calls the body makes; verdicts propagate through every
          module loaded into the lint run, and the finding's message
          carries the first allocating call chain as a witness:
          [f → g → h allocates <construct> (path:line)]. Calls that reach
          neither a summarized binding nor the clean-extern whitelist are
          conservatively reported as unproven. Cold slow paths are
          silenced per site with a reasoned [allow zero-alloc] on the
          allocating line or the line above (honored inside callees
          too). *)
  | Bare_allow
      (** An [elmo-lint: allow] suppression that carries no reason, or
          one naming an unknown rule-id (a typo'd allow suppresses
          nothing). *)

val rule_id : rule -> string
(** Stable kebab-case id used in output and in suppression comments. *)

val rule_of_id : string -> rule option

type finding = { file : string; line : int; rule : rule; message : string }

val pp_finding : Format.formatter -> finding -> unit
(** Prints [path:line: [rule-id] message]. *)

type config = {
  determinism_scope : string -> bool;
  poly_scope : string -> bool;
  exn_scope : string -> bool;
  domain_scope : string -> bool;
  iface_scope : string -> bool;
}
(** Each predicate receives the workspace-relative source path recorded in
    the [.cmt] and decides whether the rule applies to that file. *)

val default_config : config
(** The repo policy: determinism / poly-compare / domain-safety /
    interface-hygiene over [lib/]; exception-discipline over [lib/core/]
    and [lib/dataplane/] only. *)

val all_config : config
(** Every rule everywhere — used by the fixture tests. *)

val analyze :
  ?config:config -> ?source_root:string -> targets:string list ->
  ?deps:string list -> unit -> finding list
(** [analyze ~targets ~deps ()] reads the given [.cmt] files and returns
    the findings, sorted by file, line, then rule id.

    [source_root] is prepended to the workspace-relative source path when
    locating the [.ml] for suppression scanning; needed when the linter does
    not run from the workspace root (dune actions run inside the build
    context, and dune scrubs [cmt_builddir] to [/workspace_root]).

    [targets] are the modules being linted; [deps] are context-only modules
    whose typed trees extend the reachability analysis of [Domain_safety]
    (a [Domain_pool.map] call in a target can flag a top-level mutable
    binding in a dep). All other rules report on targets only, so linting
    each library with its dependency closure as [deps] never duplicates a
    finding across library lint runs.

    Raises [Failure] when a [.cmt] cannot be read. *)
