(* Typed-AST lint pass. Everything works off the .cmt files dune already
   emits, so the analysis sees instantiated types at each application site
   (which a source-level grep cannot): [a = b] at type [Bitmap.t] and at
   type [int] are different programs here. *)

type rule =
  | Determinism
  | Poly_compare
  | Exception_discipline
  | Domain_safety
  | Interface_hygiene
  | Bare_allow

let rule_id = function
  | Determinism -> "determinism"
  | Poly_compare -> "poly-compare"
  | Exception_discipline -> "exception-discipline"
  | Domain_safety -> "domain-safety"
  | Interface_hygiene -> "interface-hygiene"
  | Bare_allow -> "bare-allow"

let rule_of_id = function
  | "determinism" -> Some Determinism
  | "poly-compare" -> Some Poly_compare
  | "exception-discipline" -> Some Exception_discipline
  | "domain-safety" -> Some Domain_safety
  | "interface-hygiene" -> Some Interface_hygiene
  | "bare-allow" -> Some Bare_allow
  | _ -> None

type finding = { file : string; line : int; rule : rule; message : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line (rule_id f.rule) f.message

type config = {
  determinism_scope : string -> bool;
  poly_scope : string -> bool;
  exn_scope : string -> bool;
  domain_scope : string -> bool;
  iface_scope : string -> bool;
}

let under prefix path = String.starts_with ~prefix path

let default_config =
  {
    determinism_scope = under "lib/";
    poly_scope = under "lib/";
    exn_scope = (fun p -> under "lib/core/" p || under "lib/dataplane/" p);
    domain_scope = under "lib/";
    iface_scope = under "lib/";
  }

let all_true _ = true

let all_config =
  {
    determinism_scope = all_true;
    poly_scope = all_true;
    exn_scope = all_true;
    domain_scope = all_true;
    iface_scope = all_true;
  }

(* ------------------------------------------------------------------ *)
(* Cmt loading                                                        *)

type modinfo = {
  cmt_path : string;
  modname : string;
  source : string option;  (* workspace-relative, as recorded by the compiler *)
  source_abs : string option;  (* resolved on disk, for suppression scanning *)
  structure : Typedtree.structure option;
  imports : string list;
  is_target : bool;
}

let normalize_source s =
  if String.starts_with ~prefix:"./" s then
    String.sub s 2 (String.length s - 2)
  else s

let load_cmt ?source_root ~is_target path =
  let cmt =
    try Cmt_format.read_cmt path
    with e ->
      failwith
        (Printf.sprintf "elmo-lint: cannot read %s (%s)" path
           (Printexc.to_string e))
  in
  let source = Option.map normalize_source cmt.Cmt_format.cmt_sourcefile in
  let source_abs =
    match source with
    | None -> None
    | Some s ->
        let candidates =
          (match source_root with
          | Some root -> [ Filename.concat root s ]
          | None -> [])
          @ [ Filename.concat cmt.Cmt_format.cmt_builddir s; s ]
        in
        List.find_opt Sys.file_exists candidates
  in
  let structure =
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str -> Some str
    | _ -> None
  in
  {
    cmt_path = path;
    modname = cmt.Cmt_format.cmt_modname;
    source;
    source_abs;
    structure;
    imports = List.map fst cmt.Cmt_format.cmt_imports;
    is_target;
  }

(* ------------------------------------------------------------------ *)
(* Suppression comments                                               *)

type allow = { a_line : int; a_rule : string; a_reasoned : bool }

(* Grammar: [(* elmo-lint: allow <rule-id> — <reason> *)] anywhere on the
   line; the separator may be an em-dash, "--", "-" or ":". The scan is
   textual (one comment per line) — good enough for a convention the lint
   itself polices. *)
let scan_allows path =
  let ic = open_in path in
  let allows = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match
         let marker = "elmo-lint:" in
         let rec find i =
           if i + String.length marker > String.length line then None
           else if String.sub line i (String.length marker) = marker then
             Some (i + String.length marker)
           else find (i + 1)
         in
         find 0
       with
       | None -> ()
       | Some start ->
           let rest = String.sub line start (String.length line - start) in
           let rest =
             match String.index_opt rest '*' with
             | Some i when i + 1 < String.length rest && rest.[i + 1] = ')' ->
                 String.sub rest 0 i
             | _ -> rest
           in
           let words =
             String.split_on_char ' ' (String.trim rest)
             |> List.filter (fun w -> w <> "")
           in
           (match words with
           | "allow" :: rid :: tail ->
               let is_sep w =
                 w = "\xe2\x80\x94" (* — *) || w = "--" || w = "-" || w = ":"
               in
               let reason =
                 match tail with
                 | sep :: r when is_sep sep -> r
                 | r -> r
               in
               allows :=
                 { a_line = !lineno; a_rule = rid; a_reasoned = reason <> [] }
                 :: !allows
           | _ -> ())
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !allows

(* ------------------------------------------------------------------ *)
(* Type shape: is structural comparison / hashing benign here?        *)

let primitive_paths =
  Predef.
    [
      path_int; path_char; path_string; path_bytes; path_float; path_bool;
      path_unit; path_int32; path_int64; path_nativeint;
    ]

let container_paths = Predef.[ path_list; path_option; path_array ]

let named_containers =
  [ "ref"; "Stdlib.ref"; "result"; "Stdlib.result"; "Either.t";
    "Stdlib.Either.t" ]

(* A type is "primitive" when polymorphic compare/hash on it is total,
   deterministic and means what the author thinks: base types and tuples /
   lists / options / arrays / refs / results thereof. Everything else —
   abstract types, records (cached fields!), variants, functions — must go
   through a dedicated compare/equal. Type variables pass: a genuinely
   polymorphic context cannot be judged here, and every monomorphic use
   site is checked on its own. *)
let rec type_primitive ty =
  match Types.get_desc ty with
  | Types.Tvar _ | Types.Tunivar _ -> true
  | Types.Ttuple tys -> List.for_all type_primitive tys
  | Types.Tpoly (t, _) -> type_primitive t
  | Types.Tconstr (p, args, _) ->
      if List.exists (Path.same p) primitive_paths then true
      else if List.exists (Path.same p) container_paths then
        List.for_all type_primitive args
      else if List.mem (Path.name p) named_containers then
        List.for_all type_primitive args
      else false
  | _ -> false

let type_str ty =
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "<type>"

(* ------------------------------------------------------------------ *)
(* Expression-level rules (determinism, poly-compare, exn-discipline)  *)

let deterministic_banned name =
  String.starts_with ~prefix:"Stdlib.Random." name
  || name = "Stdlib.Sys.time"
  || name = "Unix.gettimeofday"
  || name = "Unix.time"
  || name = "Stdlib.Hashtbl.hash"
  || name = "Stdlib.Hashtbl.seeded_hash"
  || name = "Stdlib.Hashtbl.randomize"

let poly_compare_ops = [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare" ]
let banned_raisers = [ "Stdlib.failwith"; "Stdlib.invalid_arg" ]

let short_name name =
  if String.starts_with ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

(* First argument type of an (instantiated) function type, skipping
   optional arguments; [None] when the type is not an arrow. *)
let rec first_arg_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (Asttypes.Optional _, _, rhs, _) -> first_arg_type rhs
  | Types.Tarrow (_, lhs, _, _) -> Some lhs
  | _ -> None

let rec result_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, _, rhs, _) -> result_type rhs
  | _ -> ty

let is_domain_pool_call name =
  let tail_ok suffix = name = suffix || String.ends_with ~suffix:("." ^ suffix) name in
  tail_ok "Domain_pool.map" || tail_ok "Domain_pool.submit"
  || tail_ok "Domain_pool.run_workers"

type raw = {
  mutable found : (int * rule * string) list;
  mutable pool_calls : int list;  (* lines applying Domain_pool.map/submit *)
}

let scan_expressions str =
  let acc = { found = []; pool_calls = [] } in
  let add line rule msg = acc.found <- (line, rule, msg) :: acc.found in
  let check_ident line path ty =
    let name = Path.name path in
    if deterministic_banned name then
      add line Determinism
        (Printf.sprintf
           "call to %s: ambient randomness/clock breaks bit-identical \
            replay (use Elmo_prelude.Rng or take the value as an argument)"
           (short_name name));
    if List.mem name poly_compare_ops then (
      match first_arg_type ty with
      | Some arg when not (type_primitive arg) ->
          add line Poly_compare
            (Printf.sprintf
               "polymorphic %s at type %s (use the module's dedicated \
                compare/equal)"
               (short_name name) (type_str arg))
      | _ -> ());
    if name = "Stdlib.Hashtbl.create" then (
      match Types.get_desc (result_type ty) with
      | Types.Tconstr (_, key :: _, _) when not (type_primitive key) ->
          add line Poly_compare
            (Printf.sprintf
               "Hashtbl.create keyed by non-primitive type %s (polymorphic \
                hashing/equality; key through a primitive id instead)"
               (type_str key))
      | _ -> ());
    if List.mem name banned_raisers then
      add line Exception_discipline
        (Printf.sprintf
           "%s: raise a declared exception constructor instead (suppress \
            with a reason at genuine API-misuse boundaries)"
           (short_name name));
    if is_domain_pool_call name then
      acc.pool_calls <- line :: acc.pool_calls
  in
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    let line = e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_lnum in
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (path, _, _) ->
        check_ident line path e.Typedtree.exp_type
    | Typedtree.Texp_assert (e', _) -> (
        match e'.Typedtree.exp_desc with
        | Typedtree.Texp_construct (_, cd, _)
          when cd.Types.cstr_name = "false" ->
            add line Exception_discipline
              "assert false: raise a declared exception constructor instead"
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  acc

(* ------------------------------------------------------------------ *)
(* Top-level mutable bindings (domain-safety raw material)             *)

let rec pat_names p =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> [ Ident.name id ]
  | Typedtree.Tpat_alias (p', id, _) -> Ident.name id :: pat_names p'
  | Typedtree.Tpat_tuple ps -> List.concat_map pat_names ps
  | _ -> []

let record_has_mutable_label e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_record { fields; _ } ->
      Array.exists
        (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable)
        fields
  | _ -> false

let binding_mutability vb =
  let ty = vb.Typedtree.vb_expr.Typedtree.exp_type in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match Path.name p with
      | "ref" | "Stdlib.ref" -> Some "ref cell"
      | n when String.ends_with ~suffix:"Hashtbl.t" n -> Some "Hashtbl"
      | _ ->
          if record_has_mutable_label vb.Typedtree.vb_expr then
            Some "record with mutable fields"
          else None)
  | _ ->
      if record_has_mutable_label vb.Typedtree.vb_expr then
        Some "record with mutable fields"
      else None

(* name, kind, line — collected at structure top level (including nested
   module structures: their bindings live just as long). *)
let rec toplevel_mutables str =
  List.concat_map
    (fun item ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.filter_map
            (fun vb ->
              match binding_mutability vb with
              | None -> None
              | Some kind ->
                  let line =
                    vb.Typedtree.vb_loc.Location.loc_start.Lexing.pos_lnum
                  in
                  let name =
                    match pat_names vb.Typedtree.vb_pat with
                    | n :: _ -> n
                    | [] -> "_"
                  in
                  Some (name, kind, line))
            vbs
      | Typedtree.Tstr_module mb -> module_mutables mb.Typedtree.mb_expr
      | Typedtree.Tstr_recmodule mbs ->
          List.concat_map
            (fun mb -> module_mutables mb.Typedtree.mb_expr)
            mbs
      | _ -> [])
    str.Typedtree.str_items

and module_mutables me =
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_structure s -> toplevel_mutables s
  | Typedtree.Tmod_constraint (me', _, _, _) -> module_mutables me'
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Analysis driver                                                    *)

let analyze ?(config = default_config) ?source_root ~targets ?(deps = []) ()
    =
  let mods =
    List.map (load_cmt ?source_root ~is_target:true) targets
    @ List.map (load_cmt ?source_root ~is_target:false) deps
  in
  let by_name = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace by_name m.modname m) mods;
  let allows_cache = Hashtbl.create 64 in
  let allows_for m =
    match m.source_abs with
    | None -> []
    | Some path -> (
        match Hashtbl.find_opt allows_cache path with
        | Some l -> l
        | None ->
            let l = try scan_allows path with Sys_error _ -> [] in
            Hashtbl.add allows_cache path l;
            l)
  in
  let findings = ref [] in
  let emit m line rule message =
    match m.source with
    | None -> ()
    | Some file -> findings := { file; line; rule; message } :: !findings
  in
  (* Per-module expression scan; remember raw scans for domain-safety. *)
  let scans =
    List.filter_map
      (fun m ->
        match (m.structure, m.source) with
        | Some str, Some src -> Some (m, src, scan_expressions str)
        | _ -> None)
      mods
  in
  List.iter
    (fun (m, src, scan) ->
      if m.is_target then
        List.iter
          (fun (line, rule, msg) ->
            let in_scope =
              match rule with
              | Determinism -> config.determinism_scope src
              | Poly_compare -> config.poly_scope src
              | Exception_discipline -> config.exn_scope src
              | _ -> false
            in
            if in_scope then emit m line rule msg)
          scan.found)
    scans;
  (* Domain-safety: modules transitively imported by a module that applies
     Domain_pool.map/submit must not own top-level mutable state. The
     closure is the cmt import graph restricted to the modules we were
     given — a sound over-approximation of what the parallel closures can
     reach. *)
  let reachable_from seed =
    let seen = Hashtbl.create 32 in
    let rec go name =
      if not (Hashtbl.mem seen name) then (
        Hashtbl.add seen name ();
        match Hashtbl.find_opt by_name name with
        | None -> ()
        | Some m -> List.iter go m.imports)
    in
    go seed;
    seen
  in
  let flagged = Hashtbl.create 32 in
  List.iter
    (fun (m, _, scan) ->
      if m.is_target && scan.pool_calls <> [] then
        let caller_src = Option.value m.source ~default:m.modname in
        let reach = reachable_from m.modname in
        Hashtbl.iter
          (fun name () ->
            match Hashtbl.find_opt by_name name with
            | None -> ()
            | Some n -> (
                match (n.structure, n.source) with
                | Some str, Some src when config.domain_scope src ->
                    List.iter
                      (fun (bname, kind, line) ->
                        if not (Hashtbl.mem flagged (src, line)) then (
                          Hashtbl.add flagged (src, line) ();
                          emit n line Domain_safety
                            (Printf.sprintf
                               "top-level mutable binding '%s' (%s) is \
                                reachable from the Domain_pool closure in \
                                %s; shared state races across domains"
                               bname kind caller_src)))
                      (toplevel_mutables str)
                | _ -> ()))
          reach)
    scans;
  (* Interface hygiene: an implementation cmt without a sibling cmti means
     the module ships no .mli. *)
  List.iter
    (fun m ->
      match (m.is_target, m.structure, m.source) with
      | true, Some _, Some src when config.iface_scope src ->
          let cmti = Filename.remove_extension m.cmt_path ^ ".cmti" in
          if not (Sys.file_exists cmti) then
            emit m 1 Interface_hygiene
              (Printf.sprintf
                 "module %s has no .mli interface (every lib/ module must \
                  declare its surface)"
                 m.modname)
      | _ -> ())
    mods;
  (* Suppressions: drop findings with a matching allow on the same or the
     preceding line; bare allows surface as findings of their own. *)
  let file_allows = Hashtbl.create 64 in
  List.iter
    (fun m ->
      match m.source with
      | Some src when not (Hashtbl.mem file_allows src) ->
          Hashtbl.add file_allows src (allows_for m, m.is_target)
      | _ -> ())
    mods;
  let kept =
    List.filter
      (fun f ->
        match Hashtbl.find_opt file_allows f.file with
        | None -> true
        | Some (allows, _) ->
            not
              (List.exists
                 (fun a ->
                   a.a_rule = rule_id f.rule
                   && (a.a_line = f.line || a.a_line = f.line - 1))
                 allows))
      !findings
  in
  let bare =
    Hashtbl.fold
      (fun src (allows, is_target) acc ->
        if not is_target then acc
        else
          List.filter_map
            (fun a ->
              if a.a_reasoned then None
              else
                Some
                  {
                    file = src;
                    line = a.a_line;
                    rule = Bare_allow;
                    message =
                      Printf.sprintf
                        "suppression of [%s] carries no reason (write \
                         'elmo-lint: allow %s — <why>')"
                        a.a_rule a.a_rule;
                  })
            allows
          @ acc)
      file_allows []
  in
  List.sort
    (fun a b ->
      match compare a.file b.file with
      | 0 -> (
          match compare a.line b.line with
          | 0 -> compare (rule_id a.rule) (rule_id b.rule)
          | c -> c)
      | c -> c)
    (kept @ bare)
