(* Typed-AST lint pass. Everything works off the .cmt files dune already
   emits, so the analysis sees instantiated types at each application site
   (which a source-level grep cannot): [a = b] at type [Bitmap.t] and at
   type [int] are different programs here. *)

type rule =
  | Determinism
  | Poly_compare
  | Exception_discipline
  | Domain_safety
  | Interface_hygiene
  | Zero_alloc
  | Bare_allow

let rule_id = function
  | Determinism -> "determinism"
  | Poly_compare -> "poly-compare"
  | Exception_discipline -> "exception-discipline"
  | Domain_safety -> "domain-safety"
  | Interface_hygiene -> "interface-hygiene"
  | Zero_alloc -> "zero-alloc"
  | Bare_allow -> "bare-allow"

let rule_of_id = function
  | "determinism" -> Some Determinism
  | "poly-compare" -> Some Poly_compare
  | "exception-discipline" -> Some Exception_discipline
  | "domain-safety" -> Some Domain_safety
  | "interface-hygiene" -> Some Interface_hygiene
  | "zero-alloc" -> Some Zero_alloc
  | "bare-allow" -> Some Bare_allow
  | _ -> None

type finding = { file : string; line : int; rule : rule; message : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line (rule_id f.rule) f.message

type config = {
  determinism_scope : string -> bool;
  poly_scope : string -> bool;
  exn_scope : string -> bool;
  domain_scope : string -> bool;
  iface_scope : string -> bool;
}

let under prefix path = String.starts_with ~prefix path

let default_config =
  {
    determinism_scope = under "lib/";
    poly_scope = under "lib/";
    exn_scope = (fun p -> under "lib/core/" p || under "lib/dataplane/" p);
    domain_scope = under "lib/";
    iface_scope = under "lib/";
  }

let all_true _ = true

let all_config =
  {
    determinism_scope = all_true;
    poly_scope = all_true;
    exn_scope = all_true;
    domain_scope = all_true;
    iface_scope = all_true;
  }

(* ------------------------------------------------------------------ *)
(* Cmt loading                                                        *)

type modinfo = {
  cmt_path : string;
  modname : string;
  source : string option;  (* workspace-relative, as recorded by the compiler *)
  source_abs : string option;  (* resolved on disk, for suppression scanning *)
  structure : Typedtree.structure option;
  imports : string list;
  is_target : bool;
}

let normalize_source s =
  if String.starts_with ~prefix:"./" s then
    String.sub s 2 (String.length s - 2)
  else s

let load_cmt ?source_root ~is_target path =
  let cmt =
    try Cmt_format.read_cmt path
    with e ->
      failwith
        (Printf.sprintf "elmo-lint: cannot read %s (%s)" path
           (Printexc.to_string e))
  in
  let source = Option.map normalize_source cmt.Cmt_format.cmt_sourcefile in
  let source_abs =
    match source with
    | None -> None
    | Some s ->
        let candidates =
          (match source_root with
          | Some root -> [ Filename.concat root s ]
          | None -> [])
          @ [ Filename.concat cmt.Cmt_format.cmt_builddir s; s ]
        in
        List.find_opt Sys.file_exists candidates
  in
  let structure =
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str -> Some str
    | _ -> None
  in
  {
    cmt_path = path;
    modname = cmt.Cmt_format.cmt_modname;
    source;
    source_abs;
    structure;
    imports = List.map fst cmt.Cmt_format.cmt_imports;
    is_target;
  }

(* ------------------------------------------------------------------ *)
(* Suppression comments                                               *)

type allow = { a_line : int; a_rule : string; a_reasoned : bool }

(* Per-source scan result: suppressions plus the lines carrying a bare
   [(* elmo-lint: zero-alloc *)] annotation (which marks the binding on the
   same or the following line as a zero-allocation obligation). *)
type file_scan = { fs_allows : allow list; fs_marks : int list }

let empty_scan = { fs_allows = []; fs_marks = [] }

(* Grammar: [(* elmo-lint: allow <rule-id> — <reason> *)] anywhere on the
   line; the separator may be an em-dash, "--", "-" or ":". The scan is
   textual (one comment per line) — good enough for a convention the lint
   itself polices. *)
let scan_file path =
  let ic = open_in path in
  let allows = ref [] in
  let marks = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match
         let marker = "elmo-lint:" in
         let rec find i =
           if i + String.length marker > String.length line then None
           else if String.sub line i (String.length marker) = marker then
             Some (i + String.length marker)
           else find (i + 1)
         in
         find 0
       with
       | None -> ()
       | Some start ->
           let rest = String.sub line start (String.length line - start) in
           let rest =
             match String.index_opt rest '*' with
             | Some i when i + 1 < String.length rest && rest.[i + 1] = ')' ->
                 String.sub rest 0 i
             | _ -> rest
           in
           let words =
             String.split_on_char ' ' (String.trim rest)
             |> List.filter (fun w -> w <> "")
           in
           (match words with
           | "allow" :: rid :: tail ->
               let is_sep w =
                 w = "\xe2\x80\x94" (* — *) || w = "--" || w = "-" || w = ":"
               in
               let reason =
                 match tail with
                 | sep :: r when is_sep sep -> r
                 | r -> r
               in
               allows :=
                 { a_line = !lineno; a_rule = rid; a_reasoned = reason <> [] }
                 :: !allows
           | [ "zero-alloc" ] -> marks := !lineno :: !marks
           | _ -> ())
     done
   with End_of_file -> ());
  close_in ic;
  { fs_allows = List.rev !allows; fs_marks = List.rev !marks }

(* ------------------------------------------------------------------ *)
(* Type shape: is structural comparison / hashing benign here?        *)

let primitive_paths =
  Predef.
    [
      path_int; path_char; path_string; path_bytes; path_float; path_bool;
      path_unit; path_int32; path_int64; path_nativeint;
    ]

let container_paths = Predef.[ path_list; path_option; path_array ]

let named_containers =
  [ "ref"; "Stdlib.ref"; "result"; "Stdlib.result"; "Either.t";
    "Stdlib.Either.t" ]

(* A type is "primitive" when polymorphic compare/hash on it is total,
   deterministic and means what the author thinks: base types and tuples /
   lists / options / arrays / refs / results thereof. Everything else —
   abstract types, records (cached fields!), variants, functions — must go
   through a dedicated compare/equal. Type variables pass: a genuinely
   polymorphic context cannot be judged here, and every monomorphic use
   site is checked on its own. *)
let rec type_primitive ty =
  match Types.get_desc ty with
  | Types.Tvar _ | Types.Tunivar _ -> true
  | Types.Ttuple tys -> List.for_all type_primitive tys
  | Types.Tpoly (t, _) -> type_primitive t
  | Types.Tconstr (p, args, _) ->
      if List.exists (Path.same p) primitive_paths then true
      else if List.exists (Path.same p) container_paths then
        List.for_all type_primitive args
      else if List.mem (Path.name p) named_containers then
        List.for_all type_primitive args
      else false
  | _ -> false

let type_str ty =
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "<type>"

(* ------------------------------------------------------------------ *)
(* Expression-level rules (determinism, poly-compare, exn-discipline)  *)

let deterministic_banned name =
  String.starts_with ~prefix:"Stdlib.Random." name
  || name = "Stdlib.Sys.time"
  || name = "Unix.gettimeofday"
  || name = "Unix.time"
  || name = "Stdlib.Hashtbl.hash"
  || name = "Stdlib.Hashtbl.seeded_hash"
  || name = "Stdlib.Hashtbl.randomize"

let poly_compare_ops = [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare" ]
let banned_raisers = [ "Stdlib.failwith"; "Stdlib.invalid_arg" ]

let short_name name =
  if String.starts_with ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

(* First argument type of an (instantiated) function type, skipping
   optional arguments; [None] when the type is not an arrow. *)
let rec first_arg_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (Asttypes.Optional _, _, rhs, _) -> first_arg_type rhs
  | Types.Tarrow (_, lhs, _, _) -> Some lhs
  | _ -> None

let rec result_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, _, rhs, _) -> result_type rhs
  | _ -> ty

let is_domain_pool_call name =
  let tail_ok suffix = name = suffix || String.ends_with ~suffix:("." ^ suffix) name in
  tail_ok "Domain_pool.map" || tail_ok "Domain_pool.submit"
  || tail_ok "Domain_pool.run_workers"

type raw = {
  mutable found : (int * rule * string) list;
  mutable pool_calls : int list;  (* lines applying Domain_pool.map/submit *)
}

let scan_expressions str =
  let acc = { found = []; pool_calls = [] } in
  let add line rule msg = acc.found <- (line, rule, msg) :: acc.found in
  let check_ident line path ty =
    let name = Path.name path in
    if deterministic_banned name then
      add line Determinism
        (Printf.sprintf
           "call to %s: ambient randomness/clock breaks bit-identical \
            replay (use Elmo_prelude.Rng or take the value as an argument)"
           (short_name name));
    if List.mem name poly_compare_ops then (
      match first_arg_type ty with
      | Some arg when not (type_primitive arg) ->
          add line Poly_compare
            (Printf.sprintf
               "polymorphic %s at type %s (use the module's dedicated \
                compare/equal)"
               (short_name name) (type_str arg))
      | _ -> ());
    if name = "Stdlib.Hashtbl.create" then (
      match Types.get_desc (result_type ty) with
      | Types.Tconstr (_, key :: _, _) when not (type_primitive key) ->
          add line Poly_compare
            (Printf.sprintf
               "Hashtbl.create keyed by non-primitive type %s (polymorphic \
                hashing/equality; key through a primitive id instead)"
               (type_str key))
      | _ -> ());
    if List.mem name banned_raisers then
      add line Exception_discipline
        (Printf.sprintf
           "%s: raise a declared exception constructor instead (suppress \
            with a reason at genuine API-misuse boundaries)"
           (short_name name));
    if is_domain_pool_call name then
      acc.pool_calls <- line :: acc.pool_calls
  in
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    let line = e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_lnum in
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (path, _, _) ->
        check_ident line path e.Typedtree.exp_type
    | Typedtree.Texp_assert (e', _) -> (
        match e'.Typedtree.exp_desc with
        | Typedtree.Texp_construct (_, cd, _)
          when cd.Types.cstr_name = "false" ->
            add line Exception_discipline
              "assert false: raise a declared exception constructor instead"
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  acc

(* ------------------------------------------------------------------ *)
(* Top-level mutable bindings (domain-safety raw material)             *)

let rec pat_names p =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> [ Ident.name id ]
  | Typedtree.Tpat_alias (p', id, _) -> Ident.name id :: pat_names p'
  | Typedtree.Tpat_tuple ps -> List.concat_map pat_names ps
  | _ -> []

let record_has_mutable_label e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_record { fields; _ } ->
      Array.exists
        (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable)
        fields
  | _ -> false

let binding_mutability vb =
  let ty = vb.Typedtree.vb_expr.Typedtree.exp_type in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match Path.name p with
      | "ref" | "Stdlib.ref" -> Some "ref cell"
      | n when String.ends_with ~suffix:"Hashtbl.t" n -> Some "Hashtbl"
      | _ ->
          if record_has_mutable_label vb.Typedtree.vb_expr then
            Some "record with mutable fields"
          else None)
  | _ ->
      if record_has_mutable_label vb.Typedtree.vb_expr then
        Some "record with mutable fields"
      else None

(* name, kind, line — collected at structure top level (including nested
   module structures: their bindings live just as long). *)
let rec toplevel_mutables str =
  List.concat_map
    (fun item ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.filter_map
            (fun vb ->
              match binding_mutability vb with
              | None -> None
              | Some kind ->
                  let line =
                    vb.Typedtree.vb_loc.Location.loc_start.Lexing.pos_lnum
                  in
                  let name =
                    match pat_names vb.Typedtree.vb_pat with
                    | n :: _ -> n
                    | [] -> "_"
                  in
                  Some (name, kind, line))
            vbs
      | Typedtree.Tstr_module mb -> module_mutables mb.Typedtree.mb_expr
      | Typedtree.Tstr_recmodule mbs ->
          List.concat_map
            (fun mb -> module_mutables mb.Typedtree.mb_expr)
            mbs
      | _ -> [])
    str.Typedtree.str_items

and module_mutables me =
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_structure s -> toplevel_mutables s
  | Typedtree.Tmod_constraint (me', _, _, _) -> module_mutables me'
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Allocation analysis (zero-alloc)                                   *)

(* A binding annotated with [(* elmo-lint: zero-alloc *)] (on the binding's
   line or the line above) must not allocate on any path. Each top-level
   binding gets a summary: direct allocation sites (non-constant
   constructors, tuples, records, arrays, closures, partial applications,
   boxed floats, polymorphic-compare fallbacks) interleaved with the calls
   its body makes, in source order. Verdicts propagate interprocedurally
   across every module loaded into the lint run (targets and --deps), and
   the first allocating chain is reported as a witness anchored at the
   annotated definition. Suppressions ([allow zero-alloc — reason]) apply
   per event site, including inside callees.

   Soundness caveats (see DESIGN.md): structured constants are recognized
   as static data, but any local closure is flagged — lift helpers to the
   top level; value aliases ([let f = g]) and calls through function
   arguments are opaque and reported as unproven; cycles are assumed clean
   (a recursive group allocates only if some member has its own event). *)

type zevent =
  | Z_site of { z_line : int; z_desc : string }
  | Z_call of { z_line : int; z_path : string }

type fsummary = {
  f_mod : string;  (* short module name, after the wrapping prefix *)
  f_name : string;
  f_file : string;
  f_line : int;
  f_annotated : bool;
  f_events : zevent list;
}

type zverdict =
  | Z_clean
  | Z_bad of {
      bz_chain : (string * string) list;  (* (module, name) root..leaf *)
      bz_file : string;
      bz_line : int;
      bz_desc : string;
    }

(* "Elmo_core__Encoding" -> "Encoding"; unwrapped names pass through. *)
let short_mod m =
  let n = String.length m in
  let rec last i best =
    if i + 1 >= n then best
    else last (i + 1) (if m.[i] = '_' && m.[i + 1] = '_' then Some (i + 2) else best)
  in
  match last 0 None with Some j -> String.sub m j (n - j) | None -> m

(* Immutable structured constants are lifted to static data by the
   native compiler; extension constructors (exceptions) never are. *)
let rec constant_expr e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_constant _ -> true
  | Typedtree.Texp_construct (_, cd, args) -> (
      match cd.Types.cstr_tag with
      | Types.Cstr_extension _ -> false
      | _ -> List.for_all constant_expr args)
  | Typedtree.Texp_tuple es -> List.for_all constant_expr es
  | Typedtree.Texp_variant (_, None) -> true
  | _ -> false

let is_float_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

let is_float_array_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [ elt ], _) ->
      Path.same p Predef.path_array && is_float_ty elt
  | _ -> false

(* Compare at an immediate (or float) representation compiles to a
   primitive without a caml_compare fallback and without boxing. *)
let compare_immediate ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      List.exists (Path.same p)
        Predef.[ path_int; path_char; path_bool; path_unit; path_float ]
  | _ -> false

let zcompare_ops =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.<"; "Stdlib.<=";
    "Stdlib.>"; "Stdlib.>="; "Stdlib.min"; "Stdlib.max" ]

(* Externals proven allocation-free: int/bool primitives plus the
   non-allocating accessors of the flat containers. Anything not listed
   here and not summarized in the loaded cmt set is reported as unproven. *)
let zclean_exact =
  [ "Stdlib.+"; "Stdlib.-"; "Stdlib.*"; "Stdlib./"; "Stdlib.mod";
    "Stdlib.land"; "Stdlib.lor"; "Stdlib.lxor"; "Stdlib.lnot";
    "Stdlib.lsl"; "Stdlib.lsr"; "Stdlib.asr"; "Stdlib.succ";
    "Stdlib.pred"; "Stdlib.abs"; "Stdlib.~-"; "Stdlib.~+"; "Stdlib.not";
    "Stdlib.&&"; "Stdlib.||"; "Stdlib.&"; "Stdlib.or"; "Stdlib.==";
    "Stdlib.!="; "Stdlib.ignore"; "Stdlib.fst"; "Stdlib.snd";
    "Stdlib.raise"; "Stdlib.raise_notrace"; "Stdlib.!"; "Stdlib.:=";
    "Stdlib.incr"; "Stdlib.decr" ]

let zclean_qualified =
  [ "Array.length"; "Array.get"; "Array.set"; "Array.unsafe_get";
    "Array.unsafe_set"; "Array.fill"; "Array.blit";
    "Bytes.length"; "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get";
    "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit";
    "String.length"; "String.get"; "String.unsafe_get";
    "Char.code"; "Char.chr"; "Char.unsafe_chr";
    "Int.equal"; "Int.compare";
    "List.length"; "List.compare_length_with"; "List.is_empty";
    "List.mem"; "List.memq";
    "Hashtbl.mem"; "Hashtbl.length";
    "Domain.DLS.get"; "Sys.opaque_identity" ]

let zclean path =
  List.mem path zclean_exact
  || List.exists
       (fun s -> path = s || String.ends_with ~suffix:("." ^ s) path)
       zclean_qualified

(* Well-known allocating externals, named for a sharper witness. *)
let zknown_allocators =
  [ ("Stdlib.^", "string append (^)");
    ("Stdlib.@", "list append (@)");
    ("Stdlib.^^", "format concat (^^)") ]

let mutable_record_literal fields =
  Array.exists
    (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable)
    fields

(* Walk one function body collecting allocation events in source order.
   [suppressed] filters events whose line carries (or follows) an
   [allow zero-alloc] comment. *)
let collect_zevents ~suppressed bodies =
  let events = ref [] in
  let add_site line desc =
    if not (suppressed line) then
      events := Z_site { z_line = line; z_desc = desc } :: !events
  in
  let add_call line path =
    if not (suppressed line) then
      events := Z_call { z_line = line; z_path = path } :: !events
  in
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    let line = e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_lnum in
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_function _ -> add_site line "closure"
    | Typedtree.Texp_tuple _ when not (constant_expr e) ->
        add_site line "tuple"
    | Typedtree.Texp_construct (_, cd, args) ->
        if args <> [] && not (constant_expr e) then
          add_site line ("constructor " ^ cd.Types.cstr_name)
    | Typedtree.Texp_variant (_, Some _) when not (constant_expr e) ->
        add_site line "polymorphic variant"
    | Typedtree.Texp_record { extended_expression = Some _; _ } ->
        add_site line "record copy ({ ... with ... })"
    | Typedtree.Texp_record { fields; _ } ->
        let static =
          (not (mutable_record_literal fields))
          && Array.for_all
               (fun (_, def) ->
                 match def with
                 | Typedtree.Overridden (_, e') -> constant_expr e'
                 | Typedtree.Kept _ -> false)
               fields
        in
        if not static then add_site line "record"
    | Typedtree.Texp_array [] -> ()
    | Typedtree.Texp_array _ -> add_site line "array literal"
    | Typedtree.Texp_lazy _ -> add_site line "lazy block"
    | Typedtree.Texp_pack _ -> add_site line "first-class module"
    | Typedtree.Texp_object _ -> add_site line "object"
    | Typedtree.Texp_new _ -> add_site line "object instantiation"
    | Typedtree.Texp_letop _ -> add_site line "binding operator (closure)"
    | Typedtree.Texp_field (_, _, lbl) -> (
        match lbl.Types.lbl_repres with
        | Types.Record_float -> add_site line "float record field read (boxes)"
        | _ -> ())
    | Typedtree.Texp_apply (fn0, args0) -> (
        (* Unwrap [f @@ x] and [x |> f] so the real callee is judged. *)
        let fn, args =
          match (fn0.Typedtree.exp_desc, args0) with
          | Typedtree.Texp_ident (p, _, _), [ (_, Some f); (_, Some x) ]
            when Path.name p = "Stdlib.@@" ->
              (f, [ (Asttypes.Nolabel, Some x) ])
          | Typedtree.Texp_ident (p, _, _), [ (_, Some x); (_, Some f) ]
            when Path.name p = "Stdlib.|>" ->
              (f, [ (Asttypes.Nolabel, Some x) ])
          | _ -> (fn0, args0)
        in
        let omitted =
          List.exists (fun (_, a) -> Option.is_none a) args
        in
        let partial =
          match Types.get_desc e.Typedtree.exp_type with
          | Types.Tarrow _ -> true
          | _ -> false
        in
        if omitted || partial then
          add_site line "partial application (closure)"
        else
          match fn.Typedtree.exp_desc with
          | Typedtree.Texp_ident (path, _, _) ->
              let name = Path.name path in
              if List.mem name zcompare_ops then (
                match first_arg_type fn.Typedtree.exp_type with
                | Some arg when not (compare_immediate arg) ->
                    add_site line
                      (Printf.sprintf
                         "polymorphic compare fallback at type %s"
                         (type_str arg))
                | _ -> ())
              else if
                (String.ends_with ~suffix:"Array.get" name
                || String.ends_with ~suffix:"Array.unsafe_get" name)
                && (match first_arg_type fn.Typedtree.exp_type with
                   | Some arg -> is_float_array_ty arg
                   | None -> false)
              then add_site line "float array read (boxes)"
              else add_call line name
          | _ -> add_site line "indirect call (not analyzed)")
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  List.iter (fun b -> it.expr it b) bodies;
  List.rev !events

(* Peel the curried [fun]-spine of a binding down to the body (or bodies:
   a final dispatch [function] contributes every case, guards included). *)
let rec peel_function e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function
      { cases = [ ({ Typedtree.c_guard = None; _ } as c) ]; _ } -> (
      match c.Typedtree.c_rhs.Typedtree.exp_desc with
      | Typedtree.Texp_let (Asttypes.Nonrecursive, vbs, inner)
        when List.exists
               (fun a -> a.Parsetree.attr_name.Location.txt = "#default")
               c.Typedtree.c_rhs.Typedtree.exp_attributes ->
          (* The [let]s that elaborate optional-argument defaults (marked
             [#default] by the type-checker) are fused into one n-ary
             function by the compiler: `fun ?(n = 1) name -> ...` takes two
             arguments, it does not return a closure. Peel through them;
             the default expressions still run per call, so they stay in
             the analyzed bodies. *)
          let bodies, _ = peel_function inner in
          (List.map (fun vb -> vb.Typedtree.vb_expr) vbs @ bodies, true)
      | _ ->
          let bodies, _ = peel_function c.Typedtree.c_rhs in
          (bodies, true))
  | Typedtree.Texp_function { cases; _ } ->
      ( List.concat_map
          (fun c ->
            (match c.Typedtree.c_guard with Some g -> [ g ] | None -> [])
            @ [ c.Typedtree.c_rhs ])
          cases,
        true )
  | _ -> ([ e ], false)

let summarize_binding ~self ~file ~suppressed ~marks vb =
  match vb.Typedtree.vb_pat.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) ->
      let line = vb.Typedtree.vb_loc.Location.loc_start.Lexing.pos_lnum in
      let bodies, is_fn = peel_function vb.Typedtree.vb_expr in
      let events = collect_zevents ~suppressed bodies in
      let events =
        if
          is_fn
          && is_float_ty
               (result_type vb.Typedtree.vb_expr.Typedtree.exp_type)
          && not (suppressed line)
        then
          Z_site
            { z_line = line; z_desc = "boxed float result" }
          :: events
        else events
      in
      Some
        {
          f_mod = self;
          f_name = Ident.name id;
          f_file = file;
          f_line = line;
          f_annotated = List.mem line marks || List.mem (line - 1) marks;
          f_events = events;
        }
  | _ -> None

(* [Stdlib.List.length] -> ("List", "length"); unqualified -> [self]. *)
let zresolve_key ~self path_name =
  match List.rev (String.split_on_char '.' path_name) with
  | name :: md :: _ -> (md, name)
  | [ name ] -> (self, name)
  | [] -> (self, path_name)

let zero_alloc_findings mods allows_for =
  let summaries =
    List.concat_map
      (fun m ->
        match (m.structure, m.source) with
        | Some str, Some file ->
            let scan = allows_for m in
            let za_lines =
              List.filter_map
                (fun a ->
                  if a.a_rule = "zero-alloc" then Some a.a_line else None)
                scan.fs_allows
            in
            let suppressed l =
              List.exists (fun a -> a = l || a = l - 1) za_lines
            in
            let self = short_mod m.modname in
            (* Recurse into submodule structures so e.g. [Bitio.Sink.bits]
               gets a summary keyed ("Sink", "bits") — matching
               [zresolve_key], which keeps the last two path components. *)
            let rec items_under self items =
              List.concat_map
                (fun item ->
                  match item.Typedtree.str_desc with
                  | Typedtree.Tstr_value (_, vbs) ->
                      List.filter_map
                        (fun vb ->
                          match
                            summarize_binding ~self ~file ~suppressed
                              ~marks:scan.fs_marks vb
                          with
                          | Some fs -> Some (fs, m.is_target)
                          | None -> None)
                        vbs
                  | Typedtree.Tstr_module mb -> (
                      let rec structure_of me =
                        match me.Typedtree.mod_desc with
                        | Typedtree.Tmod_structure s -> Some s
                        | Typedtree.Tmod_constraint (me', _, _, _) ->
                            structure_of me'
                        | _ -> None
                      in
                      match (mb.Typedtree.mb_id, structure_of mb.mb_expr) with
                      | Some id, Some s ->
                          items_under (Ident.name id) s.Typedtree.str_items
                      | _ -> [])
                  | _ -> [])
                items
            in
            items_under self str.Typedtree.str_items
        | _ -> [])
      mods
  in
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (fs, _) -> Hashtbl.replace tbl (fs.f_mod, fs.f_name) fs)
    summaries;
  (* Fixpoint with an in-progress marker: a cycle member is clean unless
     some member carries its own event. *)
  let memo = Hashtbl.create 256 in
  let rec eval key fs =
    match Hashtbl.find_opt memo key with
    | Some (Some v) -> v
    | Some None -> Z_clean
    | None ->
        Hashtbl.add memo key None;
        let rec scan = function
          | [] -> Z_clean
          | Z_site s :: _ ->
              Z_bad
                {
                  bz_chain = [ (fs.f_mod, fs.f_name) ];
                  bz_file = fs.f_file;
                  bz_line = s.z_line;
                  bz_desc = s.z_desc;
                }
          | Z_call c :: rest -> (
              let ckey = zresolve_key ~self:fs.f_mod c.z_path in
              match Hashtbl.find_opt tbl ckey with
              | Some callee -> (
                  match eval ckey callee with
                  | Z_clean -> scan rest
                  | Z_bad b ->
                      Z_bad
                        {
                          b with
                          bz_chain = (fs.f_mod, fs.f_name) :: b.bz_chain;
                        })
              | None ->
                  if zclean c.z_path then scan rest
                  else
                    let desc =
                      match List.assoc_opt c.z_path zknown_allocators with
                      | Some d -> d
                      | None ->
                          Printf.sprintf
                            "call to %s (no summary; not on the \
                             clean-extern whitelist)"
                            (short_name c.z_path)
                    in
                    Z_bad
                      {
                        bz_chain = [ (fs.f_mod, fs.f_name) ];
                        bz_file = fs.f_file;
                        bz_line = c.z_line;
                        bz_desc = desc;
                      })
        in
        let v = scan fs.f_events in
        Hashtbl.replace memo key (Some v);
        v
  in
  List.filter_map
    (fun (fs, is_target) ->
      if not (is_target && fs.f_annotated) then None
      else
        match eval (fs.f_mod, fs.f_name) fs with
        | Z_clean -> None
        | Z_bad b ->
            let pp_hop (m, n) =
              if m = fs.f_mod then n else m ^ "." ^ n
            in
            let chain =
              String.concat " \xe2\x86\x92 " (List.map pp_hop b.bz_chain)
            in
            Some
              {
                file = fs.f_file;
                line = fs.f_line;
                rule = Zero_alloc;
                message =
                  Printf.sprintf "%s allocates %s (%s:%d)" chain b.bz_desc
                    b.bz_file b.bz_line;
              })
    summaries

(* ------------------------------------------------------------------ *)
(* Analysis driver                                                    *)

let analyze ?(config = default_config) ?source_root ~targets ?(deps = []) ()
    =
  let mods =
    List.map (load_cmt ?source_root ~is_target:true) targets
    @ List.map (load_cmt ?source_root ~is_target:false) deps
  in
  let by_name = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace by_name m.modname m) mods;
  let allows_cache = Hashtbl.create 64 in
  let allows_for m =
    match m.source_abs with
    | None -> empty_scan
    | Some path -> (
        match Hashtbl.find_opt allows_cache path with
        | Some l -> l
        | None ->
            let l = try scan_file path with Sys_error _ -> empty_scan in
            Hashtbl.add allows_cache path l;
            l)
  in
  let findings = ref [] in
  let emit m line rule message =
    match m.source with
    | None -> ()
    | Some file -> findings := { file; line; rule; message } :: !findings
  in
  (* Per-module expression scan; remember raw scans for domain-safety. *)
  let scans =
    List.filter_map
      (fun m ->
        match (m.structure, m.source) with
        | Some str, Some src -> Some (m, src, scan_expressions str)
        | _ -> None)
      mods
  in
  List.iter
    (fun (m, src, scan) ->
      if m.is_target then
        List.iter
          (fun (line, rule, msg) ->
            let in_scope =
              match rule with
              | Determinism -> config.determinism_scope src
              | Poly_compare -> config.poly_scope src
              | Exception_discipline -> config.exn_scope src
              | _ -> false
            in
            if in_scope then emit m line rule msg)
          scan.found)
    scans;
  (* Domain-safety: modules transitively imported by a module that applies
     Domain_pool.map/submit must not own top-level mutable state. The
     closure is the cmt import graph restricted to the modules we were
     given — a sound over-approximation of what the parallel closures can
     reach. *)
  let reachable_from seed =
    let seen = Hashtbl.create 32 in
    let rec go name =
      if not (Hashtbl.mem seen name) then (
        Hashtbl.add seen name ();
        match Hashtbl.find_opt by_name name with
        | None -> ()
        | Some m -> List.iter go m.imports)
    in
    go seed;
    seen
  in
  let flagged = Hashtbl.create 32 in
  List.iter
    (fun (m, _, scan) ->
      if m.is_target && scan.pool_calls <> [] then
        let caller_src = Option.value m.source ~default:m.modname in
        let reach = reachable_from m.modname in
        Hashtbl.iter
          (fun name () ->
            match Hashtbl.find_opt by_name name with
            | None -> ()
            | Some n -> (
                match (n.structure, n.source) with
                | Some str, Some src when config.domain_scope src ->
                    List.iter
                      (fun (bname, kind, line) ->
                        if not (Hashtbl.mem flagged (src, line)) then (
                          Hashtbl.add flagged (src, line) ();
                          emit n line Domain_safety
                            (Printf.sprintf
                               "top-level mutable binding '%s' (%s) is \
                                reachable from the Domain_pool closure in \
                                %s; shared state races across domains"
                               bname kind caller_src)))
                      (toplevel_mutables str)
                | _ -> ()))
          reach)
    scans;
  (* Interface hygiene: an implementation cmt without a sibling cmti means
     the module ships no .mli. *)
  List.iter
    (fun m ->
      match (m.is_target, m.structure, m.source) with
      | true, Some _, Some src when config.iface_scope src ->
          let cmti = Filename.remove_extension m.cmt_path ^ ".cmti" in
          if not (Sys.file_exists cmti) then
            emit m 1 Interface_hygiene
              (Printf.sprintf
                 "module %s has no .mli interface (every lib/ module must \
                  declare its surface)"
                 m.modname)
      | _ -> ())
    mods;
  (* Zero-alloc: annotated bindings in target modules must not allocate;
     summaries span the whole loaded cmt set so callees resolve. *)
  List.iter
    (fun f -> findings := f :: !findings)
    (zero_alloc_findings mods allows_for);
  (* Suppressions: drop findings with a matching allow on the same or the
     preceding line; bare allows surface as findings of their own. *)
  let file_allows = Hashtbl.create 64 in
  List.iter
    (fun m ->
      match m.source with
      | Some src when not (Hashtbl.mem file_allows src) ->
          Hashtbl.add file_allows src ((allows_for m).fs_allows, m.is_target)
      | _ -> ())
    mods;
  let kept =
    List.filter
      (fun f ->
        match Hashtbl.find_opt file_allows f.file with
        | None -> true
        | Some (allows, _) ->
            not
              (List.exists
                 (fun a ->
                   a.a_rule = rule_id f.rule
                   && (a.a_line = f.line || a.a_line = f.line - 1))
                 allows))
      !findings
  in
  let bare =
    Hashtbl.fold
      (fun src (allows, is_target) acc ->
        if not is_target then acc
        else
          List.filter_map
            (fun a ->
              match rule_of_id a.a_rule with
              | None ->
                  (* A typo'd rule-id suppresses nothing — surface it
                     loudly rather than letting the author believe the
                     finding is handled. *)
                  Some
                    {
                      file = src;
                      line = a.a_line;
                      rule = Bare_allow;
                      message =
                        Printf.sprintf
                          "allow names unknown rule '%s' — nothing is \
                           suppressed (known rules: determinism, \
                           poly-compare, exception-discipline, \
                           domain-safety, interface-hygiene, zero-alloc)"
                          a.a_rule;
                    }
              | Some _ ->
                  if a.a_reasoned then None
                  else
                    Some
                      {
                        file = src;
                        line = a.a_line;
                        rule = Bare_allow;
                        message =
                          Printf.sprintf
                            "suppression of [%s] carries no reason (write \
                             'elmo-lint: allow %s — <why>')"
                            a.a_rule a.a_rule;
                      })
            allows
          @ acc)
      file_allows []
  in
  List.sort
    (fun a b ->
      match compare a.file b.file with
      | 0 -> (
          match compare a.line b.line with
          | 0 -> compare (rule_id a.rule) (rule_id b.rule)
          | c -> c)
      | c -> c)
    (kept @ bare)
