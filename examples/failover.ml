(* Failure handling (§3.3, §5.1.3b): a spine switch dies, packets that ECMP
   onto it are lost, and the controller restores delivery by disabling
   multipath and pinning explicit upstream ports (greedy set cover) — an
   update that touches only the sender hypervisors, never the network
   switches.

   Run with: dune exec examples/failover.exe *)

let () =
  let topo = Topology.running_example () in
  let fabric = Fabric.create topo in
  let hooks = Fabric.controller_hooks fabric in
  let ctrl = Controller.create ~fabric_hooks:hooks topo Params.default in

  (* A cross-pod group: sender in pod 0, receivers in pods 0, 2 and 3. *)
  let h = topo.Topology.hosts_per_leaf in
  let sender = 0 in
  let members =
    [
      (sender, Controller.Both);
      (1, Controller.Receiver);
      ((5 * h) + 2, Controller.Receiver);
      ((6 * h) + 4, Controller.Receiver);
      ((7 * h) + 7, Controller.Receiver);
    ]
  in
  let group = 7 in
  ignore (Controller.add_group ctrl ~group members);
  let tree =
    match Controller.encoding ctrl ~group with
    | Some e -> e.Encoding.tree
    | None -> assert false
  in

  let send label =
    match Controller.header ctrl ~group ~sender with
    | None -> Format.printf "%-28s degraded to unicast@." label
    | Some header ->
        let r = Fabric.inject fabric ~sender ~group ~header ~payload:64 in
        Format.printf "%-28s delivered=%d/%d lost-copies=%d %s@." label
          (List.length r.Fabric.delivered)
          (Tree.member_count tree - 1)
          r.Fabric.lost
          (if Fabric.deliveries_correct r ~tree ~sender then "(all members ok)"
           else "(MISSING receivers)")
  in

  send "healthy fabric:";

  (* Fail the spine the sender's flow hashes onto. We find it by failing
     each spine of pod 0 in the fabric only and seeing which loses
     traffic. *)
  let victim =
    let rec find = function
      | [] -> List.hd (Topology.spines_of_pod topo 0)
      | s :: rest ->
          Fabric.fail_spine fabric s;
          let header = Option.get (Controller.header ctrl ~group ~sender) in
          let r = Fabric.inject fabric ~sender ~group ~header ~payload:64 in
          Fabric.recover_spine fabric s;
          if r.Fabric.lost > 0 then s else find rest
    in
    find (Topology.spines_of_pod topo 0)
  in
  Format.printf "@.failing spine %d (the one this flow ECMPs onto)...@." victim;
  Fabric.fail_spine fabric victim;
  send "before controller reacts:";

  let report = Controller.fail_spine ctrl victim in
  Format.printf
    "controller recomputed %d group(s), updating %d sender hypervisor(s)@."
    report.Controller.affected_groups report.Controller.hypervisors_updated;
  send "after upstream override:";

  Format.printf "@.recovering spine %d...@." victim;
  Fabric.recover_spine fabric victim;
  ignore (Controller.recover_spine ctrl victim);
  send "after recovery:"
