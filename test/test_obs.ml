(* elmo_obs: deterministic clocks, the metrics registry, span tracing, and
   the controller counters they mirror. Everything here runs under the
   logical clock, so the assertions are exact — no timing tolerances. *)

module Clock = Elmo_obs.Clock
module Metrics = Elmo_obs.Metrics
module Trace = Elmo_obs.Trace
module Ctx = Elmo_obs.Ctx
module Obs = Elmo_obs.Obs
module Provenance = Elmo_obs.Provenance

let feq = Alcotest.float 1e-9

let small_topo () =
  Topology.create ~pods:2 ~leaves_per_pod:2 ~spines_per_pod:2 ~hosts_per_leaf:4
    ~cores_per_plane:1

(* Install a fresh logical-clock context around [f]; always restores the
   disabled default so test cases stay independent. *)
let with_ctx ?metrics ?trace f =
  Obs.install (Ctx.make ?metrics ?trace ~clock:(Clock.logical ()) ());
  Fun.protect ~finally:(fun () -> Obs.install Ctx.disabled) f

let counter m name =
  match List.assoc_opt name (Metrics.dump m) with
  | Some (Metrics.Counter n) -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> 0

let hist m name =
  match List.assoc_opt name (Metrics.dump m) with
  | Some (Metrics.Histogram h) -> h
  | _ -> Alcotest.failf "%s is not a histogram" name

(* {1 Clock} *)

let test_logical_clock () =
  let c = Clock.logical () in
  Alcotest.check feq "tick 1" 1.0 (Clock.now_us c);
  Alcotest.check feq "tick 2" 2.0 (Clock.now_us c);
  (match Clock.kind c with
  | Clock.Logical -> ()
  | Clock.Monotonic -> Alcotest.fail "logical clock reports Monotonic");
  (* A shard restarts at tick 0 and leaves the parent's counter alone. *)
  let s = Clock.shard c in
  Alcotest.check feq "shard tick 1" 1.0 (Clock.now_us s);
  Alcotest.check feq "parent tick 3" 3.0 (Clock.now_us c);
  List.iter
    (fun (s, k) ->
      match (Clock.kind_of_string s, k) with
      | Some Clock.Logical, Clock.Logical | Some Clock.Monotonic, Clock.Monotonic
        ->
          ()
      | _ -> Alcotest.failf "kind_of_string %S" s)
    [
      ("logical", Clock.Logical);
      ("tick", Clock.Logical);
      ("monotonic", Clock.Monotonic);
      ("mono", Clock.Monotonic);
      ("wall", Clock.Monotonic);
    ];
  Alcotest.(check bool)
    "unknown kind rejected" true
    (Option.is_none (Clock.kind_of_string "sundial"))

(* {1 Metrics} *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "a.count";
  Metrics.incr m ~n:4 "a.count";
  Metrics.gauge m "b.gauge" 2.5;
  for i = 1 to 100 do
    Metrics.observe m "c.hist" (float_of_int i)
  done;
  Alcotest.(check int) "counter" 5 (counter m "a.count");
  let h = hist m "c.hist" in
  Alcotest.(check int) "hist count" 100 h.Metrics.count;
  Alcotest.check feq "hist sum" 5050.0 h.Metrics.sum;
  Alcotest.check feq "hist min" 1.0 h.Metrics.min;
  Alcotest.check feq "hist max" 100.0 h.Metrics.max;
  (* log2 buckets: quantiles are bucket-resolution, so only sanity-bound
     them. *)
  Alcotest.(check bool) "p50 ordered" true (h.Metrics.p50 <= h.Metrics.p95);
  Alcotest.(check bool) "p95 ordered" true (h.Metrics.p95 <= h.Metrics.p99);
  Alcotest.(check bool)
    "p99 within range" true
    (h.Metrics.p99 >= h.Metrics.min && h.Metrics.p99 <= h.Metrics.max);
  (* dump is sorted by name *)
  let names = List.map fst (Metrics.dump m) in
  Alcotest.(check (list string))
    "sorted dump" (List.sort String.compare names) names;
  let json = Metrics.to_json m in
  Alcotest.(check bool)
    "json object" true
    (String.length json > 2 && json.[0] = '{')

let test_metrics_shard_merge () =
  let parent = Metrics.create () in
  Metrics.incr parent ~n:10 "n";
  Metrics.observe parent "h" 4.0;
  let s1 = Metrics.shard parent in
  let s2 = Metrics.shard parent in
  Metrics.incr s1 ~n:3 "n";
  Metrics.incr s2 ~n:4 "n";
  Metrics.observe s1 "h" 16.0;
  Metrics.gauge s2 "g" 7.0;
  (* Live shards are already visible in the merged dump... *)
  Alcotest.(check int) "merged view" 17 (counter parent "n");
  (* ...and join folds them in permanently, in either order. *)
  Metrics.join parent s2;
  Metrics.join parent s1;
  Alcotest.(check int) "joined counter" 17 (counter parent "n");
  let h = hist parent "h" in
  Alcotest.(check int) "joined hist count" 2 h.Metrics.count;
  Alcotest.check feq "joined hist sum" 20.0 h.Metrics.sum;
  Alcotest.check feq "joined hist max" 16.0 h.Metrics.max;
  (match List.assoc_opt "g" (Metrics.dump parent) with
  | Some (Metrics.Gauge g) -> Alcotest.check feq "shard gauge" 7.0 g
  | _ -> Alcotest.fail "gauge lost in join")

(* {1 Bucket boundaries and Prometheus exposition} *)

(* Pin the log2 bucket layout: bucket 0 holds v <= 1 (and NaN), bucket
   e >= 1 holds (2^(e-1), 2^e] by bound — except an exact power 2^e lands
   in bucket e+1 because frexp 2^e = (0.5, e+1). The bounds paired by
   dump_buckets make that wrinkle harmless: every observation stays <= its
   bucket's upper bound. *)
let test_dump_buckets () =
  let m = Metrics.create () in
  List.iter
    (Metrics.observe m "h")
    [ 0.5; 1.0; 1.5; 2.0; 3.9; 4.0; 1023.9; 1024.0 ];
  let buckets =
    match Metrics.dump_buckets m "h" with
    | Some b -> b
    | None -> Alcotest.fail "histogram missing from dump_buckets"
  in
  Alcotest.check feq "bound 0" 1.0 (fst buckets.(0));
  Alcotest.check feq "bound 1" 2.0 (fst buckets.(1));
  Alcotest.check feq "bound 10" 1024.0 (fst buckets.(10));
  Alcotest.check feq "bound 11" 2048.0 (fst buckets.(11));
  List.iter
    (fun (i, expect) ->
      Alcotest.(check int) (Printf.sprintf "bucket %d" i) expect (snd buckets.(i)))
    [ (0, 2); (1, 1); (2, 2); (3, 1); (4, 0); (10, 1); (11, 1) ];
  Alcotest.(check int) "all observations bucketed" 8
    (Array.fold_left (fun acc (_, c) -> acc + c) 0 buckets);
  (* Every observation respects its bucket's upper bound (the bound pairing
     is what expose feeds into le="..."). *)
  Array.iteri
    (fun i (bound, c) ->
      if c > 0 && i > 0 then
        Alcotest.(check bool) "bounds ordered" true (bound > fst buckets.(i - 1)))
    buckets;
  Metrics.incr m "n";
  Alcotest.(check bool) "counter has no buckets" true
    (Option.is_none (Metrics.dump_buckets m "n"));
  Alcotest.(check bool) "absent name has no buckets" true
    (Option.is_none (Metrics.dump_buckets m "missing"))

let test_expose () =
  let m = Metrics.create () in
  Metrics.incr m ~n:5 "a.count";
  Metrics.gauge m "b.gauge" 2.5;
  List.iter (Metrics.observe m "c.hist") [ 0.5; 1.5; 3.0 ];
  let text = Metrics.expose m in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " present") true
        (Astring.String.is_infix ~affix text))
    [
      "# TYPE elmo_a_count counter\nelmo_a_count 5\n";
      "# TYPE elmo_b_gauge gauge\nelmo_b_gauge 2.500\n";
      "# TYPE elmo_c_hist histogram\n";
      (* cumulative buckets: 0.5 <= 1; 1.5 <= 2; 3.0 <= 4 *)
      {|elmo_c_hist_bucket{le="1.000"} 1|};
      {|elmo_c_hist_bucket{le="2.000"} 2|};
      {|elmo_c_hist_bucket{le="4.000"} 3|};
      {|elmo_c_hist_bucket{le="+Inf"} 3|};
      "elmo_c_hist_sum 5.000\n";
      "elmo_c_hist_count 3\n";
    ];
  (* Dotted names fold to the Prometheus charset; no raw dots survive. *)
  Alcotest.(check bool) "names sanitized" false
    (Astring.String.is_infix ~affix:"a.count" text)

(* {1 Spans and the disabled default} *)

let test_disabled_noop () =
  (* No context installed: probes are no-ops and with_span is transparent,
     including for exceptions. *)
  Obs.incr "ignored";
  Obs.observe "ignored" 1.0;
  Obs.instant "ignored";
  Alcotest.(check int) "with_span passthrough" 9
    (Obs.with_span "t" (fun () -> 9));
  Alcotest.check_raises "with_span reraises" Exit (fun () ->
      Obs.with_span "t" (fun () -> raise Exit));
  Alcotest.(check bool) "disabled" false (Obs.enabled ())

let test_span_emission () =
  let m = Metrics.create () in
  let clock = Clock.logical () in
  let tr = Trace.create ~clock () in
  Obs.install (Ctx.make ~metrics:m ~trace:tr ~clock ());
  Fun.protect
    ~finally:(fun () -> Obs.install Ctx.disabled)
    (fun () ->
      let v =
        Obs.with_span "outer" ~attrs:[ ("k", Obs.Int 3) ] (fun () ->
            Obs.with_span "inner" (fun () -> ());
            42)
      in
      Alcotest.(check int) "span result" 42 v;
      Alcotest.check_raises "span reraises" Exit (fun () ->
          Obs.with_span "boom" (fun () -> raise Exit)));
  Alcotest.(check int) "three spans" 3 (Trace.event_count tr);
  let h = hist m "span.outer_us" in
  Alcotest.(check int) "span histogram" 1 h.Metrics.count;
  (* logical clock: outer wraps inner's two reads, so its duration is 3 *)
  Alcotest.check feq "outer duration in ticks" 3.0 h.Metrics.sum;
  let jsonl = Trace.to_jsonl tr in
  Alcotest.(check bool) "boom span flushed" true
    (Astring.String.is_infix ~affix:{|"name":"boom"|} jsonl);
  let chrome = Trace.to_chrome tr in
  Alcotest.(check bool) "chrome prefix" true
    (Astring.String.is_prefix ~affix:{|{"traceEvents":[|} chrome);
  Alcotest.(check bool) "complete events" true
    (Astring.String.is_infix ~affix:{|"ph":"X"|} chrome);
  Alcotest.(check bool) "attrs serialized" true
    (Astring.String.is_infix ~affix:{|"args":{"k":3}|} chrome)

(* {1 Determinism of traced runs} *)

(* A small controller workload: batch install then a churn tail. *)
let workload () =
  let topo = small_topo () in
  let params = Params.create ~fmax:64 () in
  let ctrl = Controller.create topo params in
  let rng = Rng.create 13 in
  let n = Topology.num_hosts topo in
  let batch =
    List.init 4 (fun g ->
        let members =
          List.init (4 + (g * 2)) (fun i ->
              ((i * 3) mod n, if i = 0 then Controller.Both else Controller.Receiver))
          |> List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b)
        in
        (g, members))
  in
  ignore (Controller.install_all ctrl batch);
  for _ = 1 to 40 do
    let group = Rng.int rng 4 in
    let members = Controller.members ctrl ~group in
    let is_member h = List.mem_assoc h members in
    let h = Rng.int rng n in
    if is_member h then ignore (Controller.leave ctrl ~group ~host:h)
    else ignore (Controller.join ctrl ~group ~host:h ~role:Controller.Receiver)
  done;
  ctrl

let traced_workload () =
  let clock = Clock.logical () in
  let tr = Trace.create ~clock () in
  Obs.install (Ctx.make ~trace:tr ~clock ());
  Fun.protect
    ~finally:(fun () -> Obs.install Ctx.disabled)
    (fun () ->
      ignore (workload ());
      Trace.to_jsonl tr)

let test_trace_byte_identical () =
  let a = traced_workload () in
  let b = traced_workload () in
  Alcotest.(check bool) "nonempty" true (String.length a > 0);
  Alcotest.(check string) "same-seed traces byte-identical" a b

let test_results_identical_with_obs () =
  let occupancy ctrl =
    let s = Controller.srule_state ctrl in
    ( Array.to_list (Srule_state.leaf_occupancy s),
      Array.to_list (Srule_state.spine_occupancy s) )
  in
  let plain = occupancy (workload ()) in
  let m = Metrics.create () in
  let traced =
    with_ctx ~metrics:m
      ~trace:(Trace.create ~clock:(Clock.logical ()) ())
      (fun () -> occupancy (workload ()))
  in
  Alcotest.(check (pair (list int) (list int)))
    "occupancy identical with observability on" plain traced;
  Alcotest.(check bool) "metrics recorded" true
    (counter m "srule.commits" > 0)

(* {1 Controller churn accounting} *)

(* Mixed incremental/full-re-encode stream: a tight staleness limit forces
   periodic re-encodes between fast-path hits. Every receiver event must
   land in exactly one churn_stats bucket, fast-path updates must stay
   local (no pod-level changes), and the obs counters must mirror
   churn_stats exactly. *)
let test_churn_stats_reconcile () =
  let topo = small_topo () in
  let params = Params.create ~fmax:64 ~staleness_limit:3 () in
  let m = Metrics.create () in
  with_ctx ~metrics:m (fun () ->
      let ctrl = Controller.create topo params in
      let rng = Rng.create 31 in
      let n = Topology.num_hosts topo in
      ignore
        (Controller.add_group ctrl ~group:0
           [ (0, Controller.Both); (5, Controller.Receiver) ]);
      let receiver_events = ref 0 and sender_events = ref 0 in
      let fast = ref 0 and slow = ref 0 in
      for ev = 1 to 120 do
        let before = Controller.churn_stats ctrl in
        let members = Controller.members ctrl ~group:0 in
        let h = Rng.int rng n in
        (* Sender-only joins AND leaves of sender-only members touch no
           rules, so neither churn bucket moves for them. *)
        let is_sender_event =
          match List.assoc_opt h members with
          | Some Controller.Sender -> true
          | Some (Controller.Receiver | Controller.Both) -> false
          | None -> ev mod 10 = 0
        in
        let updates =
          if List.mem_assoc h members then
            Controller.leave ctrl ~group:0 ~host:h
          else
            Controller.join ctrl ~group:0 ~host:h
              ~role:
                (if is_sender_event then Controller.Sender
                 else Controller.Receiver)
        in
        let after = Controller.churn_stats ctrl in
        let df = after.Controller.fast_path - before.Controller.fast_path in
        let ds = after.Controller.reencoded - before.Controller.reencoded in
        fast := !fast + df;
        slow := !slow + ds;
        if is_sender_event then begin
          incr sender_events;
          Alcotest.(check int) "sender events count in neither bucket" 0 (df + ds)
        end
        else begin
          incr receiver_events;
          Alcotest.(check int) "exactly one bucket per receiver event" 1 (df + ds)
        end;
        if df = 1 then begin
          (* The in-place fast path never restructures spine bitmaps and
             touches at most the changed host's leaf. *)
          Alcotest.(check (list int)) "fast path: no pod updates" []
            updates.Controller.pods;
          Alcotest.(check bool) "fast path: at most one leaf" true
            (List.length updates.Controller.leaves <= 1)
        end
      done;
      let stats = Controller.churn_stats ctrl in
      Alcotest.(check int) "fast total" !fast stats.Controller.fast_path;
      Alcotest.(check int) "slow total" !slow stats.Controller.reencoded;
      Alcotest.(check int) "every receiver event accounted"
        !receiver_events
        (stats.Controller.fast_path + stats.Controller.reencoded);
      (* The tight staleness limit really did mix the two paths. *)
      Alcotest.(check bool) "some fast" true (stats.Controller.fast_path > 0);
      Alcotest.(check bool) "some slow" true (stats.Controller.reencoded > 0);
      (* Obs counters mirror churn_stats: controller-level exactly; the
         per-site encoding.fast_path.* split sums to the same total. *)
      Alcotest.(check int) "controller.fast_path counter"
        stats.Controller.fast_path
        (counter m "controller.fast_path");
      Alcotest.(check int) "controller.reencodes counter"
        stats.Controller.reencoded
        (counter m "controller.reencodes");
      let fast_sites =
        counter m "encoding.fast_path.prule"
        + counter m "encoding.fast_path.srule"
        + counter m "encoding.fast_path.default"
      in
      Alcotest.(check int) "per-site fast-path split sums" stats.Controller.fast_path
        fast_sites)

(* {1 Worker-domain metric shards} *)

let test_worker_hooks_merge () =
  let topo = small_topo () in
  let params = Params.create ~fmax:64 () in
  let m = Metrics.create () in
  let batch =
    List.init 8 (fun g ->
        (g, [ (g, Controller.Both); ((g + 5) mod 16, Controller.Receiver) ]))
  in
  let occ =
    with_ctx ~metrics:m (fun () ->
        let ctrl = Controller.create topo params in
        ignore (Controller.install_all ~domains:2 ctrl batch);
        Array.to_list (Srule_state.leaf_occupancy (Controller.srule_state ctrl)))
  in
  let plain =
    let ctrl = Controller.create topo params in
    ignore (Controller.install_all ~domains:2 ctrl batch);
    Array.to_list (Srule_state.leaf_occupancy (Controller.srule_state ctrl))
  in
  Alcotest.(check (list int)) "parallel occupancy identical" plain occ;
  (* Shards recorded on worker domains were joined back: the per-group
     encode spans all landed somewhere in the merged registry. *)
  let h = hist m "span.encoding.encode_txn_us" in
  Alcotest.(check int) "worker spans merged" 8 h.Metrics.count

(* {1 Provenance} *)

let test_provenance () =
  let p = Provenance.capture ~seed:7 ~params:"R=12" ~domains:3 () in
  Alcotest.(check int) "domains" 3 p.Provenance.domains;
  Alcotest.(check (option int)) "seed" (Some 7) p.Provenance.seed;
  let json = Provenance.to_json p in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " present") true
        (Astring.String.is_infix ~affix json))
    [
      {|"git_rev":|}; {|"cores":|}; {|"domains":3|}; {|"seed":7|};
      {|"params":"R=12"|}; {|"clock":|};
    ];
  let bare = Provenance.capture () in
  Alcotest.(check bool) "absent seed is null" true
    (Astring.String.is_infix ~affix:{|"seed":null|} (Provenance.to_json bare))

let tests =
  [
    Alcotest.test_case "logical clock" `Quick test_logical_clock;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "metrics shard merge" `Quick test_metrics_shard_merge;
    Alcotest.test_case "dump_buckets boundaries" `Quick test_dump_buckets;
    Alcotest.test_case "prometheus exposition" `Quick test_expose;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "span emission" `Quick test_span_emission;
    Alcotest.test_case "trace byte-identical" `Quick test_trace_byte_identical;
    Alcotest.test_case "results identical with obs" `Quick
      test_results_identical_with_obs;
    Alcotest.test_case "churn stats reconcile" `Quick test_churn_stats_reconcile;
    Alcotest.test_case "worker hooks merge" `Quick test_worker_hooks_merge;
    Alcotest.test_case "provenance" `Quick test_provenance;
  ]
