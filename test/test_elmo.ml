(* Test runner: aggregates per-module suites. Each test_<module>.ml exposes
   [tests : unit Alcotest.test_case list]. *)

let () =
  (* Every controller operation in the suite re-verifies the s-rule ledger
     (Controller.Invariant_violation on divergence). *)
  Unix.putenv "ELMO_DEBUG_INVARIANTS" "1";
  Alcotest.run "elmo"
    [
      ("rng", Test_rng.tests);
      ("stats", Test_stats.tests);
      ("obs", Test_obs.tests);
      ("bitmap", Test_bitmap.tests);
      ("bitio", Test_bitio.tests);
      ("topology", Test_topology.tests);
      ("tree", Test_tree.tests);
      ("placement", Test_placement.tests);
      ("clustering", Test_clustering.tests);
      ("encoding", Test_encoding.tests);
      ("codec", Test_codec.tests);
      ("traffic-fabric", Test_traffic_fabric.tests);
      ("controller", Test_controller.tests);
      ("parallel", Test_parallel.tests);
      ("shard", Test_shard.tests);
      ("incremental", Test_incremental.tests);
      ("zero-alloc", Test_zero_alloc.tests);
      ("baselines", Test_baselines.tests);
      ("apps", Test_apps.tests);
      ("churn", Test_churn.tests);
      ("experiments", Test_experiments.tests);
      ("fault", Test_fault.tests);
      ("wire", Test_wire.tests);
      ("telemetry", Test_telemetry.tests);
      ("extensions", Test_extensions.tests);
      ("nonclos", Test_nonclos.tests);
      ("reliable", Test_reliable.tests);
      ("verify", Test_verify.tests);
      ("p4gen", Test_p4gen.tests);
      ("vxlan", Test_vxlan.tests);
      ("tenant-api", Test_tenant_api.tests);
      ("igmp", Test_igmp.tests);
      ("lint", Test_lint.tests);
      ("misc", Test_misc.tests);
    ]
