(* Randomized oracle for the incremental encoding engine: drive long mixed
   join/leave streams through an incremental controller and check, after
   EVERY event, that the live (fast-path-mutated) state and a from-scratch
   controller over the same membership compile to the same symbolic delivery
   predicate — and that neither loses a receiver (compile == intent). The
   heavier structural checks (budgets, ledger occupancy, exact bitmaps) and
   packet-level delivery checks still run periodically. *)

let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf
let group = 7

let make params =
  let fabric = Fabric.create topo in
  let hooks = Fabric.controller_hooks fabric in
  (Controller.create ~fabric_hooks:hooks topo params, fabric)

let receivers members =
  List.filter_map
    (fun (host, r) ->
      match r with
      | Controller.Receiver | Controller.Both -> Some host
      | Controller.Sender -> None)
    members

let senders members =
  List.filter_map
    (fun (host, r) ->
      match r with
      | Controller.Sender | Controller.Both -> Some host
      | Controller.Receiver -> None)
    members

let check_bool msg b = Alcotest.(check bool) msg true b

(* Every switch referenced by a clustering layer, each exactly once. *)
let layer_assignments (res : Clustering.result) =
  List.concat_map (fun r -> r.Prule.switches) res.Clustering.prules
  @ List.map fst res.Clustering.srules
  @ (match res.Clustering.default with Some (ids, _) -> ids | None -> [])

let check_layer msg params (res : Clustering.result) exact_bitmaps =
  let ids = List.map fst exact_bitmaps in
  let assigned = layer_assignments res in
  Alcotest.(check (list int))
    (msg ^ ": each switch in exactly one rule")
    (List.sort compare ids)
    (List.sort compare assigned);
  List.iter
    (fun (id, exact) ->
      match Clustering.assigned_bitmap res id with
      | None -> Alcotest.fail (msg ^ ": switch unassigned")
      | Some bm ->
          check_bool (msg ^ ": assigned covers exact") (Bitmap.subset exact bm))
    exact_bitmaps;
  List.iter
    (fun (r : Prule.prule) ->
      check_bool
        (msg ^ ": kmax respected")
        (List.length r.Prule.switches <= params.Params.kmax);
      let exacts =
        List.map (fun id -> List.assoc id exact_bitmaps) r.Prule.switches
      in
      check_bool
        (msg ^ ": redundancy within budget")
        (Clustering.rule_within_budget ~r:params.Params.r
           ~semantics:params.Params.r_semantics ~exacts r.Prule.bitmap))
    res.Clustering.prules;
  List.iter
    (fun (id, bm) ->
      check_bool
        (msg ^ ": s-rule bitmap exact")
        (Bitmap.equal bm (List.assoc id exact_bitmaps)))
    res.Clustering.srules

(* The live encoding must agree with a from-scratch tree of the same
   receiver set and respect every budget the encoder enforces. *)
let check_equivalent msg params ctrl ~group =
  let rcvs = receivers (Controller.members ctrl ~group) in
  match Controller.encoding ctrl ~group with
  | None -> check_bool (msg ^ ": encoding absent iff no receivers") (rcvs = [])
  | Some enc ->
      let oracle = Tree.of_members topo rcvs in
      let tree = enc.Encoding.tree in
      Alcotest.(check (list int))
        (msg ^ ": members match oracle")
        (Tree.member_list oracle) (Tree.member_list tree);
      Alcotest.(check (list int))
        (msg ^ ": same leaves")
        (Tree.leaves oracle) (Tree.leaves tree);
      List.iter
        (fun (l, exact) ->
          match Tree.leaf_bitmap tree l with
          | None -> Alcotest.fail (msg ^ ": leaf missing")
          | Some bm -> check_bool (msg ^ ": exact leaf bitmap") (Bitmap.equal exact bm))
        oracle.Tree.leaf_bitmaps;
      List.iter
        (fun (p, exact) ->
          match Tree.spine_bitmap tree p with
          | None -> Alcotest.fail (msg ^ ": pod missing")
          | Some bm ->
              check_bool (msg ^ ": exact spine bitmap") (Bitmap.equal exact bm))
        oracle.Tree.spine_bitmaps;
      check_bool (msg ^ ": core bitmap")
        (Bitmap.equal oracle.Tree.core_bitmap tree.Tree.core_bitmap);
      check_layer (msg ^ " [leaf]") params enc.Encoding.d_leaf
        oracle.Tree.leaf_bitmaps;
      check_layer (msg ^ " [spine]") params enc.Encoding.d_spine
        oracle.Tree.spine_bitmaps;
      (if params.Params.header_budget = None then begin
         check_bool
           (msg ^ ": hmax_leaf")
           (List.length enc.Encoding.d_leaf.Clustering.prules
           <= params.Params.hmax_leaf);
         check_bool
           (msg ^ ": hmax_spine")
           (List.length enc.Encoding.d_spine.Clustering.prules
           <= params.Params.hmax_spine)
       end);
      (* Fmax: per-switch group-table occupancy, and the global ledger must
         match what the encoding claims to hold. *)
      let st = Controller.srule_state ctrl in
      for l = 0 to Topology.num_leaves topo - 1 do
        check_bool (msg ^ ": leaf fmax") (Srule_state.leaf_used st l <= params.Params.fmax)
      done;
      for p = 0 to topo.Topology.pods - 1 do
        check_bool (msg ^ ": pod fmax") (Srule_state.pod_used st p <= params.Params.fmax)
      done;
      Alcotest.(check int)
        (msg ^ ": srule ledger matches encoding")
        (Encoding.srule_entries enc)
        (Srule_state.total_srules st)

let check_delivery msg ctrl fabric ~group =
  match Controller.encoding ctrl ~group with
  | None -> ()
  | Some enc ->
      List.iter
        (fun sender ->
          match Controller.header ctrl ~group ~sender with
          | None -> Alcotest.fail (msg ^ ": sender has no header")
          | Some header ->
              let report =
                Fabric.inject fabric ~sender ~group ~header ~payload:64
              in
              check_bool
                (msg ^ ": exact delivery")
                (Fabric.deliveries_correct report ~tree:enc.Encoding.tree ~sender
                && report.Fabric.lost = 0))
        (senders (Controller.members ctrl ~group))

let random_role rng =
  match Rng.int rng 3 with
  | 0 -> Controller.Sender
  | 1 -> Controller.Receiver
  | _ -> Controller.Both

(* The exhaustive symbolic oracle, incrementalized: the cached checker
   proves [compile = intent] for every group after every event, but only
   recompiles the groups the event touched ([Controller.drain_dirty]) —
   untouched groups pass from the predicate cache. Each touched group is
   additionally compared against a from-scratch controller re-encoding its
   membership: any correct encoding of one membership compiles to the same
   canonical predicate, so the reference controller needs only the touched
   groups, not the whole configuration. Runs after every single event — no
   sampling. *)
let check_symbolic cache msg ctrl =
  let live = Controller.installed_config ctrl in
  let dirty = Controller.drain_dirty ctrl in
  (match Verify.check_config_cached cache live ~dirty with
  | Ok _ -> ()
  | Error w ->
      Alcotest.failf "%s: installed state loses a receiver, witness %a" msg
        Verify.pp_witness w);
  let gids = Installed_config.group_ids live in
  let touched = List.filter (fun gid -> List.mem gid gids) dirty in
  if touched <> [] then begin
    let ctx = Verify.cache_ctx cache in
    let scratch =
      Controller.create (Controller.topology ctrl) (Controller.params ctrl)
    in
    List.iter
      (fun gid ->
        match Controller.members ctrl ~group:gid with
        | [] -> ()
        | ms -> ignore (Controller.add_group scratch ~group:gid ms))
      touched;
    let scfg = Controller.installed_config scratch in
    List.iter
      (fun gid ->
        let inc = Verify.compile ctx live ~group:gid in
        let scr = Verify.compile ctx scfg ~group:gid in
        match Verify.check_equiv ~group:gid inc scr with
        | Ok () -> ()
        | Error w ->
            Alcotest.failf "%s: incremental != scratch, witness %a" msg
              Verify.pp_witness w)
      touched
  end

(* One oracle run: [events] uniformly mixed joins/leaves on a single group,
   symbolically checked after every event, structurally checked every 50
   and delivery-checked (packet level) every 100. *)
let run_stream ~seed ~events params =
  let ctrl, fabric = make params in
  let cache = Verify.create_cache () in
  let rng = Rng.create seed in
  let n = Topology.num_hosts topo in
  let initial =
    List.init 12 (fun i -> (i * 11) mod n)
    |> List.sort_uniq compare
    |> List.map (fun host -> (host, random_role rng))
  in
  ignore (Controller.add_group ctrl ~group initial);
  for ev = 1 to events do
    let members = Controller.members ctrl ~group in
    let count = List.length members in
    let want_join = count = 0 || (count < n && Rng.bool rng) in
    if want_join then begin
      let rec fresh () =
        let host = Rng.int rng n in
        if List.mem_assoc host members then fresh () else host
      in
      ignore (Controller.join ctrl ~group ~host:(fresh ()) ~role:(random_role rng))
    end
    else begin
      let host, _ = List.nth members (Rng.int rng count) in
      ignore (Controller.leave ctrl ~group ~host)
    end;
    let msg = Printf.sprintf "seed %d event %d" seed ev in
    check_symbolic cache msg ctrl;
    if ev mod 50 = 0 || ev = events then check_equivalent msg params ctrl ~group;
    if ev mod 100 = 0 || ev = events then check_delivery msg ctrl fabric ~group
  done;
  Controller.churn_stats ctrl

let test_oracle_default () =
  let stats = run_stream ~seed:42 ~events:600 Params.default in
  check_bool "fast path exercised" (stats.Controller.fast_path > 0);
  check_bool "slow path exercised" (stats.Controller.reencoded > 0)

let test_oracle_tight_budgets () =
  (* Small Hmax + tiny Fmax: p-rule sharing, s-rule spill and the default
     rule are all in play, so every fast-path site gets exercised. *)
  let params =
    Params.create ~r:4 ~r_semantics:Params.Per_bitmap ~hmax_leaf:2 ~hmax_spine:1
      ~header_budget:None ~kmax:2 ~fmax:4 ()
  in
  List.iter
    (fun seed ->
      let stats = run_stream ~seed ~events:500 params in
      check_bool "fast path exercised" (stats.Controller.fast_path > 0))
    [ 1; 271828 ]

let test_oracle_frequent_staleness () =
  (* A small staleness bound forces constant interleaving of both paths. *)
  let params =
    Params.create ~r:8 ~kmax:3 ~header_budget:None ~staleness_limit:16 ()
  in
  let stats = run_stream ~seed:314159 ~events:500 params in
  check_bool "fast path exercised" (stats.Controller.fast_path > 0);
  check_bool "staleness forces re-encodes"
    (stats.Controller.reencoded * params.Params.staleness_limit
    >= stats.Controller.fast_path)

(* {1 Direct [apply_delta] unit tests} *)

let enc_of params hosts =
  let srules = Srule_state.create topo ~fmax:params.Params.fmax in
  Encoding.encode params srules (Tree.of_members topo hosts)

let join host = Encoding.delta_of_host topo ~joining:true host
let leave host = Encoding.delta_of_host topo ~joining:false host

let members_of enc = Tree.member_list enc.Encoding.tree

let test_delta_new_leaf () =
  let enc = enc_of Params.default [ 0; 1 ] in
  (match Encoding.apply_delta enc (join ((2 * h) + 3)) with
  | Encoding.Reencode Encoding.New_leaf -> ()
  | _ -> Alcotest.fail "expected Reencode New_leaf");
  Alcotest.(check (list int)) "nothing mutated" [ 0; 1 ] (members_of enc);
  Alcotest.(check int) "not stale" 0 enc.Encoding.stale

let test_delta_emptied_leaf () =
  let enc = enc_of Params.default [ 0; h ] in
  (match Encoding.apply_delta enc (leave h) with
  | Encoding.Reencode Encoding.Emptied_leaf -> ()
  | _ -> Alcotest.fail "expected Reencode Emptied_leaf");
  Alcotest.(check (list int)) "nothing mutated" [ 0; h ] (members_of enc)

let test_delta_stale () =
  let params = Params.create ~staleness_limit:0 ~header_budget:None () in
  let enc = enc_of params [ 0; 1 ] in
  match Encoding.apply_delta enc (join 2) with
  | Encoding.Reencode Encoding.Stale -> ()
  | _ -> Alcotest.fail "staleness_limit 0 must disable the fast path"

let test_delta_prule_join () =
  let enc = enc_of Params.default [ 0; 1; h ] in
  (match Encoding.apply_delta enc (join 2) with
  | Encoding.Applied a ->
      check_bool "site is a p-rule" (a.Encoding.site = Encoding.Site_prule);
      check_bool "singleton rules alias the tree" a.Encoding.header_changed
  | Encoding.Reencode _ -> Alcotest.fail "expected the fast path");
  Alcotest.(check (list int)) "member added" [ 0; 1; 2; h ] (members_of enc);
  Alcotest.(check int) "stale incremented" 1 enc.Encoding.stale;
  match Tree.leaf_bitmap enc.Encoding.tree 0 with
  | Some bm -> check_bool "port bit set" (Bitmap.get bm 2)
  | None -> Alcotest.fail "leaf 0 vanished"

let test_delta_srule_site () =
  (* hmax_leaf 1 over three leaves: one p-rule, the rest spill to s-rules
     (Fmax leaves room). Join a fresh host behind an s-rule leaf. *)
  let params = Params.create ~hmax_leaf:1 ~header_budget:None () in
  let enc = enc_of params [ 0; h; 2 * h ] in
  match enc.Encoding.d_leaf.Clustering.srules with
  | [] -> Alcotest.fail "setup should spill to s-rules"
  | (l, bm) :: _ -> (
      let host = (l * h) + 5 in
      match Encoding.apply_delta enc (join host) with
      | Encoding.Applied a ->
          check_bool "site is an s-rule" (a.Encoding.site = Encoding.Site_srule);
          check_bool "s-rule change is header-neutral"
            (not a.Encoding.header_changed);
          check_bool "s-rule bitmap updated" (Bitmap.get bm 5)
      | Encoding.Reencode _ -> Alcotest.fail "expected the fast path")

let test_delta_default_site () =
  (* Fmax 0: no s-rule space, spill lands in the default p-rule. *)
  let params = Params.create ~hmax_leaf:1 ~fmax:0 ~header_budget:None () in
  let enc = enc_of params [ 0; h; 2 * h ] in
  match enc.Encoding.d_leaf.Clustering.default with
  | None -> Alcotest.fail "setup should use the default rule"
  | Some (ids, bm) -> (
      let l = List.hd ids in
      let host = (l * h) + 6 in
      match Encoding.apply_delta enc (join host) with
      | Encoding.Applied a ->
          check_bool "site is the default rule"
            (a.Encoding.site = Encoding.Site_default);
          check_bool "default bitmap updated" (Bitmap.get bm 6)
      | Encoding.Reencode _ -> Alcotest.fail "expected the fast path")

let test_delta_budget_exceeded () =
  (* Three leaves with identical one-port bitmaps, hmax 1, r 0: two of them
     share a p-rule. Joining a second port behind a sharing leaf would cost
     redundancy the budget forbids — and must mutate nothing. *)
  let params = Params.create ~r:0 ~hmax_leaf:1 ~header_budget:None () in
  let enc = enc_of params [ 0; h; 2 * h ] in
  let shared =
    List.find_opt
      (fun (r : Prule.prule) -> List.length r.Prule.switches > 1)
      enc.Encoding.d_leaf.Clustering.prules
  in
  match shared with
  | None -> Alcotest.fail "setup should produce a shared rule"
  | Some r -> (
      let l = List.hd r.Prule.switches in
      let before = Bitmap.copy r.Prule.bitmap in
      match Encoding.apply_delta enc (join ((l * h) + 3)) with
      | Encoding.Reencode Encoding.Budget_exceeded ->
          Alcotest.(check (list int)) "nothing mutated"
            [ 0; h; 2 * h ] (members_of enc);
          check_bool "rule bitmap untouched" (Bitmap.equal before r.Prule.bitmap)
      | _ -> Alcotest.fail "expected Reencode Budget_exceeded")

let tests =
  [
    Alcotest.test_case "oracle: default params" `Quick test_oracle_default;
    Alcotest.test_case "oracle: tight budgets" `Quick test_oracle_tight_budgets;
    Alcotest.test_case "oracle: frequent staleness" `Quick
      test_oracle_frequent_staleness;
    Alcotest.test_case "delta: new leaf re-encodes" `Quick test_delta_new_leaf;
    Alcotest.test_case "delta: emptied leaf re-encodes" `Quick
      test_delta_emptied_leaf;
    Alcotest.test_case "delta: staleness limit" `Quick test_delta_stale;
    Alcotest.test_case "delta: p-rule join" `Quick test_delta_prule_join;
    Alcotest.test_case "delta: s-rule site" `Quick test_delta_srule_site;
    Alcotest.test_case "delta: default site" `Quick test_delta_default_site;
    Alcotest.test_case "delta: budget exceeded" `Quick
      test_delta_budget_exceeded;
  ]
