let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf
let fig3_members = [ 0; 1; (5 * h) + 2; (6 * h) + 4; (6 * h) + 5; (7 * h) + 7 ]
let fig3_tree = Tree.of_members topo fig3_members

let encode ?(params = Params.create ~header_budget:None ()) ?(fmax = 1000) tree =
  let srules = Srule_state.create topo ~fmax in
  (Encoding.encode params srules tree, srules)

let test_fig3_upstream_from_ha () =
  let enc, _ = encode fig3_tree in
  let hd = Encoding.header_for_sender enc ~sender:0 in
  (* u-leaf: deliver to Hb (port 1), multipath up (Figure 3b: 01...|M). *)
  Alcotest.(check string) "u-leaf down" "01000000"
    (Bitmap.to_string hd.Prule.u_leaf.Prule.down);
  Alcotest.(check bool) "u-leaf multipath" true hd.Prule.u_leaf.Prule.multipath;
  (* u-spine: no other leaves in pod 0, still multipath to core (00|M). *)
  (match hd.Prule.u_spine with
  | Some u ->
      Alcotest.(check string) "u-spine down" "00" (Bitmap.to_string u.Prule.down);
      Alcotest.(check bool) "u-spine multipath" true u.Prule.multipath
  | None -> Alcotest.fail "expected u-spine");
  (* core: forward to pods 2 and 3 (0011). *)
  match hd.Prule.core with
  | Some bm -> Alcotest.(check string) "core" "0011" (Bitmap.to_string bm)
  | None -> Alcotest.fail "expected core rule"

let test_fig3_upstream_from_hk () =
  let enc, _ = encode fig3_tree in
  let hk = (5 * h) + 2 in
  let hd = Encoding.header_for_sender enc ~sender:hk in
  (* Figure 3b sender Hk: u-leaf 00|M (no co-leaf members), core 1001. *)
  Alcotest.(check string) "u-leaf down" "00000000"
    (Bitmap.to_string hd.Prule.u_leaf.Prule.down);
  match hd.Prule.core with
  | Some bm -> Alcotest.(check string) "core P0+P3" "1001" (Bitmap.to_string bm)
  | None -> Alcotest.fail "expected core rule"

let test_single_leaf_group_header () =
  let tree = Tree.of_members topo [ 0; 1; 2 ] in
  let enc, _ = encode tree in
  let hd = Encoding.header_for_sender enc ~sender:0 in
  Alcotest.(check string) "local ports minus sender" "01100000"
    (Bitmap.to_string hd.Prule.u_leaf.Prule.down);
  Alcotest.(check bool) "no multipath needed" false hd.Prule.u_leaf.Prule.multipath;
  Alcotest.(check bool) "no u-spine" true (hd.Prule.u_spine = None);
  Alcotest.(check bool) "no core" true (hd.Prule.core = None)

let test_sender_not_member () =
  (* A sender whose host is not in the group: all members are remote. *)
  let tree = Tree.of_members topo [ (5 * h) + 2 ] in
  let enc, _ = encode tree in
  let hd = Encoding.header_for_sender enc ~sender:0 in
  Alcotest.(check string) "no local deliveries" "00000000"
    (Bitmap.to_string hd.Prule.u_leaf.Prule.down);
  Alcotest.(check bool) "goes up" true hd.Prule.u_leaf.Prule.multipath

let test_common_downstream_shared_by_senders () =
  let enc, _ = encode fig3_tree in
  let ha = Encoding.header_for_sender enc ~sender:0 in
  let hk = Encoding.header_for_sender enc ~sender:((5 * h) + 2) in
  Alcotest.(check bool) "d-spine shared" true (ha.Prule.d_spine = hk.Prule.d_spine);
  Alcotest.(check bool) "d-leaf shared" true (ha.Prule.d_leaf = hk.Prule.d_leaf)

let test_header_bytes_match_wire () =
  let enc, _ = encode fig3_tree in
  List.iter
    (fun sender ->
      let hd = Encoding.header_for_sender enc ~sender in
      Alcotest.(check int) "accounted = encoded"
        (Bytes.length (Header_codec.encode topo hd))
        (Prule.header_bytes topo hd);
      Alcotest.(check int) "Encoding.header_bytes agrees"
        (Prule.header_bytes topo hd)
        (Encoding.header_bytes enc ~sender))
    fig3_members

let test_covered_flags () =
  let enc, _ = encode fig3_tree in
  Alcotest.(check bool) "covered (no default)" true (Encoding.covered_without_default enc);
  Alcotest.(check bool) "pure p-rules" true (Encoding.covered_by_prules enc);
  Alcotest.(check bool) "no default" false (Encoding.uses_default enc);
  Alcotest.(check int) "no srules" 0 (Encoding.srule_entries enc);
  (* Force spill: hmax 1 per layer, no s-rule space. *)
  let params = Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None () in
  let enc2, _ = encode ~params ~fmax:0 fig3_tree in
  Alcotest.(check bool) "uses default" true (Encoding.uses_default enc2);
  Alcotest.(check bool) "not covered" false (Encoding.covered_without_default enc2)

let test_srule_accounting_and_release () =
  let params = Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None () in
  let srules = Srule_state.create topo ~fmax:10 in
  let enc = Encoding.encode params srules fig3_tree in
  (* 3 leaves spill to leaf s-rules (4 leaves, hmax 1), 2 pods spill to pod
     s-rules (3 pods, hmax 1). *)
  Alcotest.(check int) "leaf srules" 3 (List.length enc.Encoding.d_leaf.Clustering.srules);
  Alcotest.(check int) "pod srules" 2 (List.length enc.Encoding.d_spine.Clustering.srules);
  Alcotest.(check int) "physical entries" (3 + (2 * 2)) (Encoding.srule_entries enc);
  Alcotest.(check int) "state total" (3 + (2 * 2)) (Srule_state.total_srules srules);
  Encoding.release srules enc;
  Alcotest.(check int) "released" 0 (Srule_state.total_srules srules)

let test_budgeted_hmax_grows_spine_budget () =
  (* With the byte budget, a 3-pod tree gets >=3 spine rules, so no spill. *)
  let params = Params.create ~header_budget:(Some 325) () in
  let enc, _ = encode ~params fig3_tree in
  Alcotest.(check int) "three spine rules" 3
    (List.length enc.Encoding.d_spine.Clustering.prules);
  Alcotest.(check bool) "pure" true (Encoding.covered_by_prules enc)

let test_budget_cap_is_respected () =
  (* A wide group on the fabric must never exceed the byte budget. *)
  let fabric = Topology.facebook_fabric () in
  let rng = Rng.create 21 in
  let members =
    List.init 400 (fun _ -> Rng.int rng (Topology.num_hosts fabric))
    |> List.sort_uniq compare
  in
  let tree = Tree.of_members fabric members in
  let params = Params.create ~header_budget:(Some 325) () in
  let srules = Srule_state.create fabric ~fmax:1000 in
  let enc = Encoding.encode params srules tree in
  List.iter
    (fun sender ->
      let b = Encoding.header_bytes enc ~sender in
      Alcotest.(check bool) (Printf.sprintf "%dB <= 325" b) true (b <= 325))
    (List.filteri (fun i _ -> i < 5) members)

let test_srule_state_errors () =
  let s = Srule_state.create topo ~fmax:1 in
  Srule_state.reserve_leaf s 0;
  Alcotest.(check bool) "full" false (Srule_state.leaf_has_space s 0);
  Alcotest.check_raises "overflow" (Srule_state.Full (Srule_state.Leaf 0))
    (fun () -> Srule_state.reserve_leaf s 0);
  Srule_state.release_leaf s 0;
  Alcotest.check_raises "underflow" (Srule_state.Underflow (Srule_state.Leaf 0))
    (fun () -> Srule_state.release_leaf s 0);
  Alcotest.(check bool) "invariants hold" true (Srule_state.check s);
  Srule_state.reserve_pod s 1;
  Alcotest.(check int) "pod reserve counts on each spine"
    topo.Topology.spines_per_pod
    (Srule_state.total_srules s);
  let occ = Srule_state.spine_occupancy s in
  Alcotest.(check int) "spine of pod 1" 1 occ.(topo.Topology.spines_per_pod);
  Alcotest.(check int) "spine of pod 0" 0 occ.(0)

let fabric = Topology.facebook_fabric ()

let arb_members =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(
      list_size (int_range 1 60) (int_range 0 (Topology.num_hosts fabric - 1)))

let prop_headers_within_max =
  QCheck.Test.make ~name:"every header fits the worst-case bound" ~count:100
    arb_members (fun members ->
      QCheck.assume (members <> []);
      let tree = Tree.of_members fabric members in
      let params = Params.default in
      let srules = Srule_state.create fabric ~fmax:params.Params.fmax in
      let enc = Encoding.encode params srules tree in
      let bound = Prule.max_header_bytes fabric params in
      List.for_all
        (fun sender -> Encoding.header_bytes enc ~sender <= bound)
        (List.filteri (fun i _ -> i < 3) members))

let prop_release_inverts_encode =
  QCheck.Test.make ~name:"release returns all reserved s-rules" ~count:100
    arb_members (fun members ->
      QCheck.assume (members <> []);
      let tree = Tree.of_members fabric members in
      let params = Params.create ~hmax_leaf:2 ~hmax_spine:1 ~header_budget:None () in
      let srules = Srule_state.create fabric ~fmax:5 in
      let enc = Encoding.encode params srules tree in
      let used = Srule_state.total_srules srules in
      Encoding.release srules enc;
      used = Encoding.srule_entries enc && Srule_state.total_srules srules = 0)

let tests =
  [
    Alcotest.test_case "fig3 upstream from Ha" `Quick test_fig3_upstream_from_ha;
    Alcotest.test_case "fig3 upstream from Hk" `Quick test_fig3_upstream_from_hk;
    Alcotest.test_case "single-leaf group header" `Quick test_single_leaf_group_header;
    Alcotest.test_case "sender not a member" `Quick test_sender_not_member;
    Alcotest.test_case "common downstream shared" `Quick
      test_common_downstream_shared_by_senders;
    Alcotest.test_case "header bytes match wire" `Quick test_header_bytes_match_wire;
    Alcotest.test_case "covered flags" `Quick test_covered_flags;
    Alcotest.test_case "s-rule accounting and release" `Quick
      test_srule_accounting_and_release;
    Alcotest.test_case "budget grows spine allowance" `Quick
      test_budgeted_hmax_grows_spine_budget;
    Alcotest.test_case "byte budget respected on fabric" `Quick
      test_budget_cap_is_respected;
    Alcotest.test_case "srule state errors" `Quick test_srule_state_errors;
    QCheck_alcotest.to_alcotest prop_headers_within_max;
    QCheck_alcotest.to_alcotest prop_release_inverts_encode;
  ]
