let feq = Alcotest.float 1e-9

let test_summarize_known () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.check feq "mean" 3.0 s.Stats.mean;
  Alcotest.check feq "min" 1.0 s.Stats.min;
  Alcotest.check feq "max" 5.0 s.Stats.max;
  Alcotest.check feq "p50" 3.0 s.Stats.p50;
  Alcotest.check Alcotest.int "count" 5 s.Stats.count;
  Alcotest.check feq "stddev" (sqrt 2.0) s.Stats.stddev

let test_summarize_unsorted_input () =
  let s = Stats.summarize [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.check feq "p50 of unsorted" 3.0 s.Stats.p50;
  Alcotest.check feq "min" 1.0 s.Stats.min

let test_summarize_empty () =
  (* Total on empty input: the all-zero summary, so histogram aggregators
     (elmo_obs) need no emptiness guards. *)
  let s = Stats.summarize [||] in
  Alcotest.check Alcotest.int "count" 0 s.Stats.count;
  Alcotest.check feq "mean" 0.0 s.Stats.mean;
  Alcotest.check feq "stddev" 0.0 s.Stats.stddev;
  Alcotest.check feq "min" 0.0 s.Stats.min;
  Alcotest.check feq "max" 0.0 s.Stats.max;
  Alcotest.check feq "p50" 0.0 s.Stats.p50;
  Alcotest.check feq "p99" 0.0 s.Stats.p99;
  Alcotest.check feq "percentile of empty" 0.0 (Stats.percentile [||] 0.5);
  Alcotest.check feq "mean of empty" 0.0 (Stats.mean [||])

let test_percentile_interpolation () =
  let sorted = [| 0.0; 10.0 |] in
  Alcotest.check feq "p25" 2.5 (Stats.percentile sorted 0.25);
  Alcotest.check feq "p0" 0.0 (Stats.percentile sorted 0.0);
  Alcotest.check feq "p100" 10.0 (Stats.percentile sorted 1.0);
  Alcotest.check feq "clamped above" 10.0 (Stats.percentile sorted 1.5)

let test_single_element () =
  let s = Stats.summarize [| 7.0 |] in
  Alcotest.check feq "p95 of singleton" 7.0 s.Stats.p95;
  Alcotest.check feq "stddev" 0.0 s.Stats.stddev;
  (* A singleton yields its sole element for every q, including the
     boundaries. *)
  List.iter
    (fun q ->
      Alcotest.check feq
        (Printf.sprintf "singleton percentile q=%.2f" q)
        7.0
        (Stats.percentile [| 7.0 |] q))
    [ -0.5; 0.0; 0.25; 0.5; 0.99; 1.0; 2.0 ]

let test_two_elements () =
  let sorted = [| 2.0; 6.0 |] in
  Alcotest.check feq "p0" 2.0 (Stats.percentile sorted 0.0);
  Alcotest.check feq "p50 interpolates" 4.0 (Stats.percentile sorted 0.5);
  Alcotest.check feq "p75 interpolates" 5.0 (Stats.percentile sorted 0.75);
  Alcotest.check feq "p100" 6.0 (Stats.percentile sorted 1.0);
  let s = Stats.summarize sorted in
  Alcotest.check Alcotest.int "count" 2 s.Stats.count;
  Alcotest.check feq "mean" 4.0 s.Stats.mean;
  Alcotest.check feq "stddev" 2.0 s.Stats.stddev

let test_duplicate_heavy () =
  (* 97 copies of one value and 3 of another: every central percentile sits
     on the plateau, the extreme ones reach the minority value. *)
  let data = Array.append (Array.make 3 1.0) (Array.make 97 5.0) in
  let s = Stats.summarize data in
  Alcotest.check feq "p50 on plateau" 5.0 s.Stats.p50;
  Alcotest.check feq "p95 on plateau" 5.0 s.Stats.p95;
  Alcotest.check feq "p99 on plateau" 5.0 s.Stats.p99;
  Alcotest.check feq "min keeps minority" 1.0 s.Stats.min;
  let sorted = Array.copy data in
  Array.sort compare sorted;
  Alcotest.check feq "p1 reaches minority" 1.0 (Stats.percentile sorted 0.01);
  let uniform = Array.make 50 3.25 in
  let u = Stats.summarize uniform in
  Alcotest.check feq "all-equal p99 = the value" 3.25 u.Stats.p99;
  Alcotest.check feq "all-equal stddev" 0.0 u.Stats.stddev

let test_welford_matches_summarize () =
  let rng = Rng.create 42 in
  let data = Array.init 1000 (fun _ -> Rng.float rng 100.0) in
  let s = Stats.summarize data in
  let w = Stats.Welford.create () in
  Array.iter (Stats.Welford.add w) data;
  Alcotest.check (Alcotest.float 1e-6) "mean" s.Stats.mean (Stats.Welford.mean w);
  Alcotest.check (Alcotest.float 1e-6) "stddev" s.Stats.stddev (Stats.Welford.stddev w);
  Alcotest.check feq "max" s.Stats.max (Stats.Welford.max w);
  Alcotest.check feq "min" s.Stats.min (Stats.Welford.min w);
  Alcotest.check Alcotest.int "count" s.Stats.count (Stats.Welford.count w)

let test_of_ints_and_total () =
  Alcotest.check feq "total" 6.0 (Stats.total (Stats.of_ints [| 1; 2; 3 |]));
  Alcotest.check feq "mean" 2.0 (Stats.mean (Stats.of_ints [| 1; 2; 3 |]))

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in q" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_range 0.0 1000.0))
              (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (data, (q1, q2)) ->
      QCheck.assume (data <> []);
      let sorted = Array.of_list (List.sort compare data) in
      let lo = min q1 q2 and hi = max q1 q2 in
      Stats.percentile sorted lo <= Stats.percentile sorted hi +. 1e-9)

let qcheck_mean_within_range =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-100.0) 100.0))
    (fun data ->
      let s = Stats.summarize (Array.of_list data) in
      s.Stats.min -. 1e-9 <= s.Stats.mean && s.Stats.mean <= s.Stats.max +. 1e-9)

let tests =
  [
    Alcotest.test_case "summarize known" `Quick test_summarize_known;
    Alcotest.test_case "summarize unsorted" `Quick test_summarize_unsorted_input;
    Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "single element" `Quick test_single_element;
    Alcotest.test_case "two elements" `Quick test_two_elements;
    Alcotest.test_case "duplicate heavy" `Quick test_duplicate_heavy;
    Alcotest.test_case "welford matches summarize" `Quick test_welford_matches_summarize;
    Alcotest.test_case "of_ints and total" `Quick test_of_ints_and_total;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
    QCheck_alcotest.to_alcotest qcheck_mean_within_range;
  ]
