type t = { id : int; name : string }

val same : t -> t -> bool
val order : t -> t -> int
val table : unit -> (t, int) Hashtbl.t
