(* determinism fixture: raw wall-clock reads outside the single sanctioned
   site (Elmo_obs.Clock's monotonic branch) must be flagged. *)
let stamp () = Unix.gettimeofday ()
let elapsed t0 = Unix.gettimeofday () -. t0
