(* A clean kernel: int-array loop, arithmetic and self-recursion only. *)

(* elmo-lint: zero-alloc *)
let rec sum_to words i acc =
  if i < 0 then acc
  else sum_to words (i - 1) (acc + Array.unsafe_get words i)
