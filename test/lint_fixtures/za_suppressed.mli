val get_or_grow : int array -> int -> int
