val run : int array -> int array
