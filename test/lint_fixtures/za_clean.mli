val sum_to : int array -> int -> int -> int
