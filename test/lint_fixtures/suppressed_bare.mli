val now : unit -> float
