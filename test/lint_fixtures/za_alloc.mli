val bad_pair : int -> int * int
