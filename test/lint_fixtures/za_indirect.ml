(* The annotated entry is clean itself; the allocation is reached only
   through the callee, so the witness is a two-hop chain. *)

let helper n = [ n ]

(* elmo-lint: zero-alloc *)
let entry n = List.length (helper n)
