(* An annotated function that allocates directly: the tuple is the first
   event in the body and becomes the witness. *)
(* elmo-lint: zero-alloc *)
let bad_pair x = (x, x + 1)
