(* Clean fixture: no rule should fire. *)
type t = { id : int; name : string }

let make id name = { id; name }
let equal a b = Int.equal a.id b.id && String.equal a.name b.name
let rename t name = { t with name }
