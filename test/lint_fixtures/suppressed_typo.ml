(* The allow names a rule-id that does not exist ('zero-aloc'): it
   suppresses nothing and must itself be flagged. *)

(* elmo-lint: allow zero-aloc — typo: this suppresses nothing *)
let id x = x
