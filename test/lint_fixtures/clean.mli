type t = { id : int; name : string }

val make : int -> string -> t
val equal : t -> t -> bool
val rename : t -> string -> t
