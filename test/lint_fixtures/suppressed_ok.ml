(* A reasoned suppression: silences the determinism finding, adds none. *)
let now () = Sys.time () (* elmo-lint: allow determinism — fixture: wall clock wanted here *)
