val boom : unit -> 'a
val misuse : unit -> 'a
val unreachable : unit -> 'a
