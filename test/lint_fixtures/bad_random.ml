(* determinism fixture: every ambient-randomness / wall-clock source. *)
let pick n = Random.int n
let now () = Sys.time ()
let digest x = Hashtbl.hash x
