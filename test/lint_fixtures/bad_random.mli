val pick : int -> int
val now : unit -> float
val digest : 'a -> int
