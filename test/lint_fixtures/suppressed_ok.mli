val now : unit -> float
