val stamp : unit -> float
val elapsed : float -> float
