val id : 'a -> 'a
