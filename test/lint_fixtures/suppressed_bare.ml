(* A reasonless suppression: silences the determinism finding but is
   itself reported as bare-allow. *)
let now () = Sys.time () (* elmo-lint: allow determinism *)
