(* domain-safety fixture: top-level mutable state, reached from the
   Domain_pool closure in Bad_parallel. *)
let counter = ref 0
let cache : (int, int) Hashtbl.t = Hashtbl.create 8
let bump () = incr counter
