(* The Domain_pool.map call that makes Bad_global_state's top-level
   mutables reachable from a worker domain. *)
let run xs =
  Domain_pool.with_pool 2 (fun pool ->
      Domain_pool.map pool
        (fun x ->
          Bad_global_state.bump ();
          x + 1)
        xs)
