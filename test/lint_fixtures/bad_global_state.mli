val counter : int ref
val cache : (int, int) Hashtbl.t
val bump : unit -> unit
