(* poly-compare fixture: structural =, compare and a poly-keyed Hashtbl at
   a record type. *)
type t = { id : int; name : string }

let same (a : t) b = a = b
let order (a : t) b = compare a b
let table () : (t, int) Hashtbl.t = Hashtbl.create 16
