(* A hot lookup with a cold, suppressed slow path: the annotated function
   is reported clean because the only allocating line carries a reasoned
   allow. *)

(* elmo-lint: zero-alloc *)
let get_or_grow cache i =
  if i < Array.length cache then Array.unsafe_get cache i
  else
    (* elmo-lint: allow zero-alloc — fixture: cold resize path, amortized *)
    Array.length (Array.make (i + 1) 0)
