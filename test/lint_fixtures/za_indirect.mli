val helper : int -> int list
val entry : int -> int
