(* interface-hygiene fixture: deliberately ships no .mli. *)
let id x = x
