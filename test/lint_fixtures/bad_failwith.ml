(* exception-discipline fixture: the three banned failure idioms. *)
let boom () = failwith "boom"
let misuse () = invalid_arg "misuse"
let unreachable () = assert false
