(* Fault-tolerant control plane: retry/backoff installation, graceful
   degradation, stale-entry reconciliation, crash-consistent recovery, and
   the delivery-safety oracle under arbitrary fault/churn/failure
   interleavings. *)

let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf

(* Two members on every leaf with tight per-stage header budgets: the clean
   encoding of this group always needs s-rules, so fault schedules have
   something to bite on. *)
let wide_hosts = List.concat_map (fun l -> [ l * h; (l * h) + 1 ]) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
let members_both hosts = List.map (fun x -> (x, Controller.Both)) hosts

let tight_params =
  Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None ~fmax:6
    ~install_retries:4 ~install_backoff_us:8 ()

(* A clean twin tells us exactly how many install operations the faulty
   controller will issue for the same group — needed to position scripted
   outcomes — and the ledger occupancy it must converge to. *)
let clean_install_ops () =
  let ctrl = Controller.create topo tight_params in
  ignore (Controller.add_group ctrl ~group:1 (members_both wide_hosts));
  match Controller.encoding ctrl ~group:1 with
  | None -> Alcotest.fail "clean twin fell back to unicast"
  | Some enc ->
      ( List.length enc.Encoding.d_leaf.Clustering.srules
        + List.length enc.Encoding.d_spine.Clustering.srules,
        Srule_state.total_srules (Controller.srule_state ctrl) )

let faulty_setup schedule =
  let fabric = Fabric.create topo in
  let fault = Fault.create ~schedule fabric in
  let ctrl =
    Controller.create ~fabric_hooks:(Fault.hooks fault) topo tight_params
  in
  (ctrl, fabric, fault)

(* The shared packet probe ([Verify.probe], also used by [Churn.fault_run]).
   These tests expect a multicast path to exist, so [None] (no encoding /
   unicast fallback) counts as a failure. *)
let delivery_ok ctrl fabric ~group ~sender =
  match Verify.probe ctrl fabric ~group ~sender with
  | Some (ok, _) -> ok
  | None -> false

(* {1 Retry / backoff} *)

let test_transient_faults_retried () =
  let k, clean_occupancy = clean_install_ops () in
  Alcotest.(check bool) "group needs s-rules" true (k > 0);
  (* The first three install attempts fail three different ways; every
     retry thereafter applies (script exhausted). *)
  let ctrl, fabric, fault =
    faulty_setup (Fault.Scripted [ Timeout; Refused; Dropped ])
  in
  ignore (Controller.add_group ctrl ~group:1 (members_both wide_hosts));
  let st = Controller.install_stats ctrl in
  Alcotest.(check bool) "retries happened" true (st.Controller.retries >= 3);
  Alcotest.(check int) "no budget exhausted" 0 st.Controller.exhausted;
  Alcotest.(check int) "no degradations" 0 st.Controller.degradations;
  Alcotest.(check int) "fabric converged to clean occupancy" clean_occupancy
    (Srule_state.total_srules (Controller.srule_state ctrl));
  let fs = Fault.stats fault in
  Alcotest.(check int) "one timeout, one refusal, one drop seen" 3
    (fs.Fault.timeouts + fs.Fault.refusals + fs.Fault.drops);
  Alcotest.(check bool) "delivers" true
    (delivery_ok ctrl fabric ~group:1 ~sender:0)

let test_silent_drop_caught_by_readback () =
  (* A dropped install acknowledges Ok yet changes nothing — only the
     read-back verification can tell. *)
  let ctrl, fabric, _fault = faulty_setup (Fault.Scripted [ Dropped ]) in
  ignore (Controller.add_group ctrl ~group:1 (members_both wide_hosts));
  let st = Controller.install_stats ctrl in
  Alcotest.(check bool) "the lie cost exactly one retry" true
    (st.Controller.retries >= 1);
  Alcotest.(check bool) "delivers" true
    (delivery_ok ctrl fabric ~group:1 ~sender:0)

(* {1 Graceful degradation} *)

let test_wedged_fabric_degrades_but_delivers () =
  Alcotest.(check bool) "group needs s-rules when clean" true
    (fst (clean_install_ops ()) > 0);
  let ctrl, fabric, fault = faulty_setup Fault.Reliable in
  for l = 0 to Topology.num_leaves topo - 1 do
    Fault.wedge_leaf fault l true
  done;
  for p = 0 to topo.Topology.pods - 1 do
    Fault.wedge_pod fault p true
  done;
  ignore (Controller.add_group ctrl ~group:1 (members_both wide_hosts));
  let st = Controller.install_stats ctrl in
  Alcotest.(check bool) "degradations observed" true
    (st.Controller.degradations > 0);
  Alcotest.(check int) "no fabric state left behind" 0
    (Srule_state.total_srules (Controller.srule_state ctrl));
  (* Default p-rules carry everything: more traffic, zero blackholes. *)
  List.iter
    (fun sender ->
      Alcotest.(check bool)
        (Printf.sprintf "sender %d delivers via default p-rules" sender)
        true
        (delivery_ok ctrl fabric ~group:1 ~sender))
    [ 0; (5 * h) + 1 ]

let test_degraded_costs_more_traffic () =
  let clean_fab = Fabric.create topo in
  let clean_ctrl =
    Controller.create
      ~fabric_hooks:(Fabric.controller_hooks clean_fab)
      topo tight_params
  in
  ignore (Controller.add_group clean_ctrl ~group:1 (members_both wide_hosts));
  let ctrl, fabric, fault = faulty_setup Fault.Reliable in
  for l = 0 to Topology.num_leaves topo - 1 do
    Fault.wedge_leaf fault l true
  done;
  ignore (Controller.add_group ctrl ~group:1 (members_both wide_hosts));
  let tx c f =
    let header = Option.get (Controller.header c ~group:1 ~sender:0) in
    (Fabric.inject f ~sender:0 ~group:1 ~header ~payload:64).Fabric.transmissions
  in
  Alcotest.(check bool) "degraded encoding transmits at least as much" true
    (tx ctrl fabric >= tx clean_ctrl clean_fab)

(* {1 Stale entries and compensation} *)

let repeat n x = List.init n (fun _ -> x)

let test_failed_removal_marked_and_reconciled () =
  let k, _ = clean_install_ops () in
  (* Script: the add installs cleanly; then the first removal of the
     uninstall exhausts its budget (5 attempts), the remaining k-1 removals
     apply, and the reconcile retry of the stale entry exhausts again —
     forcing the compensating install path (script exhausted => applies). *)
  let script =
    repeat k Fault.Applied
    @ repeat 5 Fault.Timeout
    @ repeat (k - 1) Fault.Applied
    @ repeat 5 Fault.Timeout
  in
  let ctrl, fabric, _fault = faulty_setup (Fault.Scripted script) in
  ignore (Controller.add_group ctrl ~group:1 (members_both wide_hosts));
  ignore (Controller.remove_group ctrl ~group:1);
  let st = Controller.install_stats ctrl in
  (* Two exhaustions: the uninstall removal itself, then the reconcile
     pass's removal retry (which falls through to the compensation). *)
  Alcotest.(check int) "removal budget exhausted twice" 2
    st.Controller.exhausted;
  Alcotest.(check int) "stale entry tracked" 1 st.Controller.stale_entries;
  Alcotest.(check int) "compensating entry written" 1
    st.Controller.compensations;
  (* The compensating entry holds the truthful (empty) bitmap: whatever
     packets still reach that switch for the dead group go nowhere. *)
  let stale_truthful = ref false in
  for l = 0 to Topology.num_leaves topo - 1 do
    match Fabric.leaf_srule fabric ~leaf:l ~group:1 with
    | Some bm when Bitmap.popcount bm = 0 -> stale_truthful := true
    | Some _ -> Alcotest.fail "stale entry left with a lying bitmap"
    | None -> ()
  done;
  Alcotest.(check bool) "compensated entry present and empty" true
    !stale_truthful;
  (* The next operation's reconcile (script exhausted: removals apply)
     finally clears the marker and the fabric. *)
  ignore (Controller.add_group ctrl ~group:2 (members_both [ 0; 1 ]));
  let st = Controller.install_stats ctrl in
  Alcotest.(check int) "stale entry eventually removed" 0
    st.Controller.stale_entries;
  for l = 0 to Topology.num_leaves topo - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "leaf %d holds nothing for the dead group" l)
      true
      (Option.is_none (Fabric.leaf_srule fabric ~leaf:l ~group:1))
  done

(* {1 Crash-consistent checkpoint / replay} *)

(* A mixed op stream: membership churn plus spine/core/link failures and
   recoveries, all as journalable ops. Membership is tracked in [members]
   (mutated as ops are generated) so every join targets a non-member and
   every leave a member. *)
let crash_rng_ops rng ~members ~events =
  let groups = Array.length members in
  let spine_up = Array.make (Topology.num_spines topo) true in
  let core_up = Array.make (max 1 (Topology.num_cores topo)) true in
  let link_up =
    Array.make_matrix (Topology.num_leaves topo) topo.Topology.spines_per_pod
      true
  in
  let num_hosts = Topology.num_hosts topo in
  let join g =
    let rec pick attempts =
      if attempts = 0 then None
      else
        let host = Rng.int rng num_hosts in
        if List.exists (fun x -> x = host) members.(g) then pick (attempts - 1)
        else Some host
    in
    match pick 50 with
    | None -> None
    | Some host ->
        members.(g) <- host :: members.(g);
        Some (Journal.Join { group = g; host; role = Controller.Both })
  in
  let leave g =
    match members.(g) with
    | [] -> None
    | ms ->
        let host = List.nth ms (Rng.int rng (List.length ms)) in
        members.(g) <- List.filter (fun x -> x <> host) ms;
        Some (Journal.Leave { group = g; host })
  in
  List.init events (fun _ ->
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 -> (
          let g = Rng.int rng groups in
          match join g with
          | Some op -> op
          | None -> Option.get (leave g))
      | 4 | 5 | 6 -> (
          let g = Rng.int rng groups in
          match leave g with
          | Some op -> op
          | None -> Option.get (join g))
      | 7 ->
          let s = Rng.int rng (Array.length spine_up) in
          spine_up.(s) <- not spine_up.(s);
          if spine_up.(s) then Journal.Recover_spine s else Journal.Fail_spine s
      | 8 ->
          let c = Rng.int rng (Array.length core_up) in
          core_up.(c) <- not core_up.(c);
          if core_up.(c) then Journal.Recover_core c else Journal.Fail_core c
      | _ ->
          let l = Rng.int rng (Topology.num_leaves topo) in
          let p = Rng.int rng topo.Topology.spines_per_pod in
          link_up.(l).(p) <- not link_up.(l).(p);
          if link_up.(l).(p) then Journal.Recover_link { leaf = l; plane = p }
          else Journal.Fail_link { leaf = l; plane = p })

let same_controller_state a b ~groups =
  let sa = Controller.srule_state a and sb = Controller.srule_state b in
  Srule_state.leaf_occupancy sa = Srule_state.leaf_occupancy sb
  && Srule_state.spine_occupancy sa = Srule_state.spine_occupancy sb
  && Controller.churn_stats a = Controller.churn_stats b
  && List.for_all
       (fun group ->
         let ma = Controller.members a ~group in
         ma = Controller.members b ~group
         && List.for_all
              (fun (sender, _) ->
                let hdr c = Controller.header c ~group ~sender in
                match (hdr a, hdr b) with
                | None, None -> true
                | Some x, Some y ->
                    Bytes.equal (Header_codec.encode topo x)
                      (Header_codec.encode topo y)
                | _ -> false)
              ma)
       (List.init groups Fun.id)

let test_crash_recovery_bit_identical () =
  let rng = Rng.create 1234 in
  let groups = 10 and events = 600 in
  let fabric = Fabric.create topo in
  let replica =
    Replica.create ~snapshot_every:48
      ~fabric_hooks:(Fabric.controller_hooks fabric)
      topo tight_params
  in
  (* Seed groups through the journal too, so replay covers setup. *)
  let hosts = Array.init (Topology.num_hosts topo) Fun.id in
  let members = Array.make groups [] in
  for g = 0 to groups - 1 do
    members.(g) <- Array.to_list (Rng.sample_without_replacement rng 6 hosts);
    let ms = List.map (fun x -> (x, Controller.Both)) members.(g) in
    Replica.apply replica (Journal.Add_group { group = g; members = ms })
  done;
  let ops = crash_rng_ops rng ~members ~events in
  let crash_points =
    Rng.sample_without_replacement rng 100 (Array.init events (fun i -> i + 1))
    |> Array.to_list
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "100 distinct crash points" 100
    (List.length crash_points);
  let ctx = Pred.create_ctx () in
  let checked = ref 0 in
  List.iteri
    (fun i op ->
      Replica.apply replica op;
      if List.exists (fun p -> p = i + 1) crash_points then begin
        let recovered = Replica.recovered replica in
        incr checked;
        Alcotest.(check bool)
          (Printf.sprintf "recovery at event %d is bit-identical" (i + 1))
          true
          (same_controller_state recovered (Replica.controller replica) ~groups);
        (* Symbolic equivalence: the recovered instance compiles to the
           same delivery predicates as the never-crashed one — per group
           and per sender (which also covers overrides and health). *)
        let live = Replica.installed_config replica in
        let rec_cfg = Controller.installed_config recovered in
        List.iter
          (fun gid ->
            (match
               Verify.check_equiv ~group:gid
                 (Verify.compile ctx live ~group:gid)
                 (Verify.compile ctx rec_cfg ~group:gid)
             with
            | Ok () -> ()
            | Error w ->
                Alcotest.failf "event %d: recovery diverges, witness %a"
                  (i + 1) Verify.pp_witness w);
            List.iter
              (fun host ->
                let side cfg =
                  Verify.compile_sender ctx cfg ~group:gid ~sender:host
                in
                match (side live, side rec_cfg) with
                | None, None -> ()
                | Some a, Some b -> (
                    match Verify.check_equiv ~group:gid a b with
                    | Ok () -> ()
                    | Error w ->
                        Alcotest.failf
                          "event %d sender %d: recovery diverges, witness %a"
                          (i + 1) host Verify.pp_witness w)
                | Some _, None | None, Some _ ->
                    Alcotest.failf
                      "event %d sender %d: unicast degrade diverges after \
                       recovery"
                      (i + 1) host)
              members.(gid))
          (List.init groups Fun.id)
      end)
    ops;
  Alcotest.(check int) "all crash points exercised" 100 !checked;
  (* And an actual crash: the replica keeps working on the recovered
     instance. *)
  Replica.crash replica;
  let fresh_host =
    let ms = Controller.members (Replica.controller replica) ~group:0 in
    let rec find x = if List.mem_assoc x ms then find (x + 1) else x in
    find 0
  in
  Replica.apply replica
    (Journal.Join { group = 0; host = fresh_host; role = Controller.Both });
  Alcotest.(check bool) "post-crash controller alive" true
    (Controller.group_count (Replica.controller replica) >= 1)

let test_snapshot_reusable_and_isolated () =
  let ctrl = Controller.create topo tight_params in
  ignore (Controller.add_group ctrl ~group:1 (members_both wide_hosts));
  let snap = Controller.snapshot ctrl in
  (* Two restores from one snapshot, mutated divergently, never bleed into
     each other or the original. *)
  let r1 = Controller.restore snap in
  let r2 = Controller.restore snap in
  ignore (Controller.leave r1 ~group:1 ~host:0);
  ignore (Controller.join r2 ~group:1 ~host:((4 * h) + 3) ~role:Controller.Both);
  let n c = List.length (Controller.members c ~group:1) in
  let base = List.length wide_hosts in
  Alcotest.(check int) "original untouched" base (n ctrl);
  Alcotest.(check int) "restore 1 diverged" (base - 1) (n r1);
  Alcotest.(check int) "restore 2 diverged" (base + 1) (n r2);
  Alcotest.(check bool) "r1 state internally consistent" true
    (Srule_state.check (Controller.srule_state r1));
  let r3 = Controller.restore snap in
  Alcotest.(check int) "snapshot still pristine" base (n r3)

(* {1 Delivery-safety oracle: churn + failures + injected faults} *)

type chaos_op =
  | Flip_spine of int
  | Flip_core of int
  | Flip_link of int * int
  | Flip_member of int
  | Flip_wedge of int

let gen_case =
  QCheck.Gen.(
    let op =
      oneof
        [
          map (fun s -> Flip_spine s) (int_range 0 7);
          map (fun c -> Flip_core c) (int_range 0 3);
          map2 (fun l p -> Flip_link (l, p)) (int_range 0 7) (int_range 0 1);
          map (fun v -> Flip_member v) (int_range 0 63);
          map (fun l -> Flip_wedge l) (int_range 0 7);
        ]
    in
    let outcome =
      frequency
        [
          (5, return Fault.Applied);
          (2, return Fault.Timeout);
          (1, return Fault.Refused);
          (2, return Fault.Dropped);
        ]
    in
    pair
      (list_size (int_range 1 25) op)
      (list_size (int_range 0 40) outcome))

let arb_case =
  QCheck.make
    ~print:(fun (ops, script) ->
      Printf.sprintf "script=%d ops=%s" (List.length script)
        (String.concat ";"
           (List.map
              (function
                | Flip_spine s -> Printf.sprintf "S%d" s
                | Flip_core c -> Printf.sprintf "C%d" c
                | Flip_link (l, p) -> Printf.sprintf "L%d.%d" l p
                | Flip_member v -> Printf.sprintf "M%d" v
                | Flip_wedge l -> Printf.sprintf "W%d" l)
              ops)))
    gen_case

(* Every member whose leaf is reachable receives the packet: degraded paths
   and explicit unicast fallback are fine, blackholes are failures. *)
let prop_faulted_chaos_never_blackholes =
  QCheck.Test.make
    ~name:"no blackholes under churn + failures + injected install faults"
    ~count:40 arb_case (fun (ops, script) ->
      let fabric = Fabric.create topo in
      let fault = Fault.create ~schedule:(Fault.Scripted script) fabric in
      let ctrl =
        Controller.create ~fabric_hooks:(Fault.hooks fault) topo tight_params
      in
      ignore (Controller.add_group ctrl ~group:1 (members_both wide_hosts));
      let spine_state = Array.make 8 true in
      let core_state = Array.make 4 true in
      let link_state = Array.make_matrix 8 2 true in
      let wedge_state = Array.make 8 false in
      List.iter
        (function
          | Flip_spine s ->
              if spine_state.(s) then begin
                Fabric.fail_spine fabric s;
                ignore (Controller.fail_spine ctrl s)
              end
              else begin
                Fabric.recover_spine fabric s;
                ignore (Controller.recover_spine ctrl s)
              end;
              spine_state.(s) <- not spine_state.(s)
          | Flip_core c ->
              if core_state.(c) then begin
                Fabric.fail_core fabric c;
                ignore (Controller.fail_core ctrl c)
              end
              else begin
                Fabric.recover_core fabric c;
                ignore (Controller.recover_core ctrl c)
              end;
              core_state.(c) <- not core_state.(c)
          | Flip_link (l, p) ->
              if link_state.(l).(p) then begin
                Fabric.fail_link fabric ~leaf:l ~plane:p;
                ignore (Controller.fail_link ctrl ~leaf:l ~plane:p)
              end
              else begin
                Fabric.recover_link fabric ~leaf:l ~plane:p;
                ignore (Controller.recover_link ctrl ~leaf:l ~plane:p)
              end;
              link_state.(l).(p) <- not link_state.(l).(p)
          | Flip_member v -> (
              let members = Controller.members ctrl ~group:1 in
              match List.assoc_opt v members with
              | Some _ when List.length members > 1 ->
                  ignore (Controller.leave ctrl ~group:1 ~host:v)
              | Some _ -> ()
              | None ->
                  ignore
                    (Controller.join ctrl ~group:1 ~host:v
                       ~role:Controller.Both))
          | Flip_wedge l ->
              Fault.wedge_leaf fault l (not wedge_state.(l));
              wedge_state.(l) <- not wedge_state.(l))
        ops;
      (* Flush: the script is finite, so a few churn no-ops drain it and
         let reconcile clear every stale marker — after which the fabric
         must be truthful again. *)
      let dummy = 63 in
      let budget = ref (List.length script + 5) in
      while
        (Controller.install_stats ctrl).Controller.stale_entries > 0
        && !budget > 0
      do
        decr budget;
        match List.assoc_opt dummy (Controller.members ctrl ~group:1) with
        | Some _ ->
            ignore (Controller.leave ctrl ~group:1 ~host:dummy);
            ignore
              (Controller.join ctrl ~group:1 ~host:dummy ~role:Controller.Both)
        | None ->
            ignore
              (Controller.join ctrl ~group:1 ~host:dummy ~role:Controller.Both);
            ignore (Controller.leave ctrl ~group:1 ~host:dummy)
      done;
      if (Controller.install_stats ctrl).Controller.stale_entries > 0 then
        false
      else begin
        (* Zero-blackhole, stated symbolically: for every sender the
           compiled per-sender delivery predicate must subsume the
           receiver endpoints ([None] = explicit unicast degrade, the
           hypervisor delivers). The fabric is truthful here (stale
           markers drained, health flipped in lockstep), so the symbolic
           walk must also agree endpoint-for-endpoint with a real packet
           injection — the two interpretations cross-validate on every
           generated fault state. *)
        let cfg = Controller.installed_config ctrl in
        let ctx = Pred.create_ctx () in
        List.for_all
          (fun (sender, role) ->
            match role with
            | Controller.Receiver -> true
            | Controller.Sender | Controller.Both -> (
                match Verify.compile_sender ctx cfg ~group:1 ~sender with
                | None ->
                    (* the controller must agree this sender is degraded *)
                    Controller.header ctrl ~group:1 ~sender = None
                | Some delivered -> (
                    let symbolic = Pred.leaf_endpoints delivered ~topo in
                    let injected =
                      match Controller.header ctrl ~group:1 ~sender with
                      | None -> None
                      | Some header ->
                          let report =
                            Fabric.inject fabric ~sender ~group:1 ~header
                              ~payload:64
                          in
                          Some (List.map fst report.Fabric.delivered)
                    in
                    match injected with
                    | None ->
                        QCheck.Test.fail_reportf
                          "sender %d: symbolic path but no header" sender
                    | Some hosts when List.sort_uniq compare hosts <> symbolic
                      ->
                        QCheck.Test.fail_reportf
                          "sender %d: symbolic endpoints disagree with \
                           injection"
                          sender
                    | Some _ -> (
                        let need =
                          Verify.receiver_endpoints ctx cfg ~group:1 ~sender
                        in
                        match
                          Verify.check_subsumes ~group:1 ~big:delivered
                            ~small:need
                        with
                        | Ok () -> true
                        | Error w ->
                            QCheck.Test.fail_reportf
                              "blackhole, witness %a" Verify.pp_witness w))))
          (Controller.members ctrl ~group:1)
      end)

(* {1 Twin-controller fault run} *)

let test_fault_run_no_blackholes () =
  let r =
    Churn.fault_run ~seed:7 topo tight_params ~groups:8 ~group_size:6
      ~events:120 ~rate:0.2 ~probe_every:20
  in
  Alcotest.(check bool) "events performed" true (r.Churn.fault_events > 60);
  Alcotest.(check bool) "probes ran" true (r.Churn.probes > 0);
  Alcotest.(check int) "zero blackholes" 0 r.Churn.blackholes;
  Alcotest.(check bool) "faults were actually injected" true
    (r.Churn.faults.Fault.timeouts + r.Churn.faults.Fault.refusals
       + r.Churn.faults.Fault.drops
    > 0);
  Alcotest.(check bool) "degradation observable under wedged switches" true
    (r.Churn.install.Controller.degradations > 0);
  Alcotest.(check bool) "degradation costs traffic, not delivery" true
    (r.Churn.extra_traffic >= 0.0)

let test_fault_run_zero_rate_self_check () =
  let r =
    Churn.fault_run ~seed:7 topo tight_params ~groups:8 ~group_size:6
      ~events:120 ~rate:0.0 ~probe_every:20
  in
  Alcotest.(check int) "zero blackholes" 0 r.Churn.blackholes;
  Alcotest.(check (float 1e-9)) "twin sides identical at rate 0" 0.0
    r.Churn.extra_traffic;
  Alcotest.(check int) "no degradations" 0
    r.Churn.install.Controller.degradations

let tests =
  [
    Alcotest.test_case "transient faults retried to success" `Quick
      test_transient_faults_retried;
    Alcotest.test_case "silent drop caught by read-back" `Quick
      test_silent_drop_caught_by_readback;
    Alcotest.test_case "wedged fabric degrades but delivers" `Quick
      test_wedged_fabric_degrades_but_delivers;
    Alcotest.test_case "degradation costs traffic" `Quick
      test_degraded_costs_more_traffic;
    Alcotest.test_case "failed removal marked, compensated, reconciled" `Quick
      test_failed_removal_marked_and_reconciled;
    Alcotest.test_case "crash recovery bit-identical at 100 points" `Slow
      test_crash_recovery_bit_identical;
    Alcotest.test_case "snapshots reusable and isolated" `Quick
      test_snapshot_reusable_and_isolated;
    QCheck_alcotest.to_alcotest prop_faulted_chaos_never_blackholes;
    Alcotest.test_case "fault_run: faults cost traffic, never delivery" `Quick
      test_fault_run_no_blackholes;
    Alcotest.test_case "fault_run: rate 0 is a perfect twin" `Quick
      test_fault_run_zero_rate_self_check;
  ]
