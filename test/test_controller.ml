let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf

let make ?fabric () =
  match fabric with
  | None -> (Controller.create topo Params.default, Fabric.create topo)
  | Some fabric ->
      let hooks = Fabric.controller_hooks fabric in
      (Controller.create ~fabric_hooks:hooks topo Params.default, fabric)

let members_both hosts = List.map (fun x -> (x, Controller.Both)) hosts

let fig3_hosts = [ 0; 1; (5 * h) + 2; (6 * h) + 4; (6 * h) + 5; (7 * h) + 7 ]

let send_ok ctrl fabric ~group ~sender =
  match Controller.header ctrl ~group ~sender with
  | None -> false
  | Some header ->
      let enc = Option.get (Controller.encoding ctrl ~group) in
      let report = Fabric.inject fabric ~sender ~group ~header ~payload:64 in
      Fabric.deliveries_correct report ~tree:enc.Encoding.tree ~sender
      && report.Fabric.lost = 0

let test_add_group_basic () =
  let ctrl, fabric = make () in
  let u = Controller.add_group ctrl ~group:1 (members_both fig3_hosts) in
  Alcotest.(check (list int)) "all member hypervisors touched"
    (List.sort compare fig3_hosts) u.Controller.hypervisors;
  Alcotest.(check int) "one group" 1 (Controller.group_count ctrl);
  Alcotest.(check bool) "delivers" true (send_ok ctrl fabric ~group:1 ~sender:0)

let test_add_duplicate_group () =
  let ctrl, _ = make () in
  ignore (Controller.add_group ctrl ~group:1 (members_both [ 0; 1 ]));
  Alcotest.check_raises "duplicate group"
    (Invalid_argument "Controller.add_group: group exists") (fun () ->
      ignore (Controller.add_group ctrl ~group:1 (members_both [ 2 ])));
  Alcotest.check_raises "duplicate host"
    (Invalid_argument "Controller.add_group: duplicate member host") (fun () ->
      ignore (Controller.add_group ctrl ~group:2 (members_both [ 3; 3 ])))

let test_sender_only_group_has_no_tree () =
  let ctrl, _ = make () in
  ignore (Controller.add_group ctrl ~group:1 [ (0, Controller.Sender) ]);
  Alcotest.(check bool) "no encoding" true (Controller.encoding ctrl ~group:1 = None);
  Alcotest.(check bool) "no header (degrade to unicast)" true
    (Controller.header ctrl ~group:1 ~sender:0 = None)

let test_sender_join_touches_only_itself () =
  let ctrl, _ = make () in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  let before = Option.get (Controller.encoding ctrl ~group:1) in
  let u = Controller.join ctrl ~group:1 ~host:3 ~role:Controller.Sender in
  Alcotest.(check (list int)) "only the new sender" [ 3 ] u.Controller.hypervisors;
  Alcotest.(check (list int)) "no leaf updates" [] u.Controller.leaves;
  Alcotest.(check (list int)) "no pod updates" [] u.Controller.pods;
  let after = Option.get (Controller.encoding ctrl ~group:1) in
  Alcotest.(check bool) "encoding untouched" true (before == after)

let test_receiver_join_updates_senders () =
  let ctrl, fabric = make () in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  (* Join a receiver on a brand-new leaf (L2, pod 1): the tree's pod set
     changes, so every sender's core rule changes. *)
  let newcomer = (2 * h) + 3 in
  let u = Controller.join ctrl ~group:1 ~host:newcomer ~role:Controller.Receiver in
  Alcotest.(check (list int)) "all senders + newcomer"
    (List.sort compare (newcomer :: fig3_hosts))
    u.Controller.hypervisors;
  Alcotest.(check bool) "still delivers" true (send_ok ctrl fabric ~group:1 ~sender:0);
  let enc = Option.get (Controller.encoding ctrl ~group:1) in
  Alcotest.(check bool) "newcomer in tree" true
    (Tree.mem_host enc.Encoding.tree newcomer)

let test_local_join_updates_colocated_senders_only () =
  (* Two senders in different pods; a receiver joins under the first
     sender's leaf. The downstream leaf rules change (common part), so both
     senders update — but if the common part is unchanged the update set is
     local. We test the tree-locality path via a sender-only host. *)
  let ctrl, _ = make () in
  ignore
    (Controller.add_group ctrl ~group:1
       [ (0, Controller.Both); ((5 * h) + 2, Controller.Both); (1, Controller.Receiver) ]);
  let u = Controller.leave ctrl ~group:1 ~host:1 in
  (* Host 1's departure changes L0's bitmap: common d-leaf section changes,
     so both senders are updated, plus the leaver. *)
  Alcotest.(check (list int)) "both senders and leaver"
    (List.sort compare [ 0; 1; (5 * h) + 2 ])
    u.Controller.hypervisors

let test_leave_to_empty_group () =
  let ctrl, _ = make () in
  ignore (Controller.add_group ctrl ~group:1 (members_both [ 0; 1 ]));
  ignore (Controller.leave ctrl ~group:1 ~host:0);
  ignore (Controller.leave ctrl ~group:1 ~host:1);
  Alcotest.(check bool) "no encoding left" true (Controller.encoding ctrl ~group:1 = None);
  Alcotest.(check bool) "no members" true (Controller.members ctrl ~group:1 = [])

let test_leave_nonmember_raises () =
  let ctrl, _ = make () in
  ignore (Controller.add_group ctrl ~group:1 (members_both [ 0; 1 ]));
  Alcotest.check_raises "not a member" Not_found (fun () ->
      ignore (Controller.leave ctrl ~group:1 ~host:9));
  Alcotest.check_raises "unknown group" Not_found (fun () ->
      ignore (Controller.join ctrl ~group:99 ~host:0 ~role:Controller.Both))

let test_remove_group_releases_srules () =
  let params = Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None () in
  let ctrl = Controller.create topo params in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  let st = Controller.srule_state ctrl in
  Alcotest.(check bool) "s-rules reserved" true (Srule_state.total_srules st > 0);
  let u = Controller.remove_group ctrl ~group:1 in
  Alcotest.(check bool) "leaf updates reported" true (u.Controller.leaves <> []);
  Alcotest.(check int) "all released" 0 (Srule_state.total_srules st);
  Alcotest.(check int) "gone" 0 (Controller.group_count ctrl)

let test_fabric_hooks_mirror_srules () =
  let params = Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None () in
  let fabric = Fabric.create topo in
  let hooks = Fabric.controller_hooks fabric in
  let ctrl = Controller.create ~fabric_hooks:hooks topo params in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  Alcotest.(check bool) "delivers via s-rules" true
    (send_ok ctrl fabric ~group:1 ~sender:0);
  ignore (Controller.remove_group ctrl ~group:1);
  List.iter
    (fun l -> Alcotest.(check int) "fabric table cleared" 0 (Fabric.leaf_table_size fabric l))
    [ 0; 5; 6; 7 ]

(* {1 Failures} *)

let failing_spine_for ctrl fabric ~group ~sender =
  ignore ctrl;
  ignore fabric;
  let hash = Ecmp.flow_hash ~group ~sender in
  let plane = Ecmp.spine_choice topo ~hash in
  let pod = Topology.pod_of_host topo sender in
  (pod * topo.Topology.spines_per_pod) + plane

let test_spine_failure_and_recovery () =
  let fabric = Fabric.create topo in
  let ctrl, fabric = make ~fabric () in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  let victim = failing_spine_for ctrl fabric ~group:1 ~sender:0 in
  Fabric.fail_spine fabric victim;
  (* Without controller action the flow loses packets. *)
  Alcotest.(check bool) "broken before controller" false
    (send_ok ctrl fabric ~group:1 ~sender:0);
  let report = Controller.fail_spine ctrl victim in
  Alcotest.(check bool) "some group affected" true (report.Controller.affected_groups >= 1);
  Alcotest.(check bool) "delivers after override" true
    (send_ok ctrl fabric ~group:1 ~sender:0);
  (* The override disabled multipath for the impacted sender. *)
  let hd = Option.get (Controller.header ctrl ~group:1 ~sender:0) in
  Alcotest.(check bool) "multipath off" false hd.Prule.u_leaf.Prule.multipath;
  Fabric.recover_spine fabric victim;
  let report = Controller.recover_spine ctrl victim in
  Alcotest.(check bool) "recovery touches the same group" true
    (report.Controller.affected_groups >= 1);
  let hd = Option.get (Controller.header ctrl ~group:1 ~sender:0) in
  Alcotest.(check bool) "multipath restored" true hd.Prule.u_leaf.Prule.multipath;
  Alcotest.(check bool) "still delivers" true (send_ok ctrl fabric ~group:1 ~sender:0)

let test_core_failure_and_recovery () =
  let fabric = Fabric.create topo in
  let ctrl, fabric = make ~fabric () in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  let hash = Ecmp.flow_hash ~group:1 ~sender:0 in
  let plane = Ecmp.spine_choice topo ~hash in
  let victim_core = Ecmp.core_choice topo ~hash ~plane in
  Fabric.fail_core fabric victim_core;
  Alcotest.(check bool) "broken before controller" false
    (send_ok ctrl fabric ~group:1 ~sender:0);
  ignore (Controller.fail_core ctrl victim_core);
  Alcotest.(check bool) "delivers after override" true
    (send_ok ctrl fabric ~group:1 ~sender:0);
  Fabric.recover_core fabric victim_core;
  ignore (Controller.recover_core ctrl victim_core);
  Alcotest.(check bool) "delivers after recovery" true
    (send_ok ctrl fabric ~group:1 ~sender:0)

let test_unimpacted_flows_untouched () =
  let fabric = Fabric.create topo in
  let ctrl, fabric = make ~fabric () in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  let victim = failing_spine_for ctrl fabric ~group:1 ~sender:0 in
  (* A spine in a pod with no senders of this flow's hash: pick the other
     spine of pod 0. *)
  let other = if victim mod 2 = 0 then victim + 1 else victim - 1 in
  Fabric.fail_spine fabric other;
  ignore (Controller.fail_spine ctrl other);
  let hd = Option.get (Controller.header ctrl ~group:1 ~sender:0) in
  Alcotest.(check bool) "sender 0's flow keeps multipath" true
    hd.Prule.u_leaf.Prule.multipath;
  Alcotest.(check bool) "still delivers" true (send_ok ctrl fabric ~group:1 ~sender:0)

let test_all_pod_spines_dead_degrades_to_unicast () =
  let fabric = Fabric.create topo in
  let ctrl, fabric = make ~fabric () in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  (* A second group that avoids pod 0 entirely. *)
  let pod23 = [ (5 * h) + 2; (6 * h) + 4; (7 * h) + 7 ] in
  ignore (Controller.add_group ctrl ~group:2 (members_both pod23));
  List.iter
    (fun s ->
      Fabric.fail_spine fabric s;
      ignore (Controller.fail_spine ctrl s))
    (Topology.spines_of_pod topo 0);
  Alcotest.(check bool) "sender in pod 0 degrades to unicast" true
    (Controller.header ctrl ~group:1 ~sender:0 = None);
  (* Pod 0 is unreachable, so cross-pod senders of group 1 degrade too. *)
  Alcotest.(check bool) "pod-2 sender of group 1 degrades" true
    (Controller.header ctrl ~group:1 ~sender:((5 * h) + 2) = None);
  (* But the group that never touches pod 0 keeps working. *)
  Alcotest.(check bool) "pod-2/3 group unaffected" true
    (send_ok ctrl fabric ~group:2 ~sender:((5 * h) + 2))

let test_churn_under_failure_keeps_overrides_fresh () =
  let fabric = Fabric.create topo in
  let ctrl, fabric = make ~fabric () in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  let victim = failing_spine_for ctrl fabric ~group:1 ~sender:0 in
  Fabric.fail_spine fabric victim;
  ignore (Controller.fail_spine ctrl victim);
  (* Membership changes during the failure: overrides must be recomputed
     and delivery must keep working. *)
  ignore (Controller.join ctrl ~group:1 ~host:((3 * h) + 1) ~role:Controller.Receiver);
  Alcotest.(check bool) "delivers to grown group under failure" true
    (send_ok ctrl fabric ~group:1 ~sender:0)

let tests =
  [
    Alcotest.test_case "add group" `Quick test_add_group_basic;
    Alcotest.test_case "duplicate add rejected" `Quick test_add_duplicate_group;
    Alcotest.test_case "sender-only group" `Quick test_sender_only_group_has_no_tree;
    Alcotest.test_case "sender join is local" `Quick test_sender_join_touches_only_itself;
    Alcotest.test_case "receiver join updates senders" `Quick
      test_receiver_join_updates_senders;
    Alcotest.test_case "leave updates senders" `Quick
      test_local_join_updates_colocated_senders_only;
    Alcotest.test_case "leave to empty group" `Quick test_leave_to_empty_group;
    Alcotest.test_case "leave non-member raises" `Quick test_leave_nonmember_raises;
    Alcotest.test_case "remove group releases s-rules" `Quick
      test_remove_group_releases_srules;
    Alcotest.test_case "fabric hooks mirror s-rules" `Quick test_fabric_hooks_mirror_srules;
    Alcotest.test_case "spine failure and recovery" `Quick test_spine_failure_and_recovery;
    Alcotest.test_case "core failure and recovery" `Quick test_core_failure_and_recovery;
    Alcotest.test_case "unimpacted flows untouched" `Quick test_unimpacted_flows_untouched;
    Alcotest.test_case "pod-wide spine failure degrades to unicast" `Quick
      test_all_pod_spines_dead_degrades_to_unicast;
    Alcotest.test_case "churn under failure" `Quick
      test_churn_under_failure_keeps_overrides_fresh;
  ]

(* Model-based property: a random interleaving of join/leave operations
   against a plain membership map. After every operation the controller's
   member list matches the model, s-rule accounting matches the live
   encodings, and a packet from a random sender reaches every receiver. *)

let prop_random_operations =
  let gen =
    QCheck.Gen.(list_size (int_range 1 60) (pair (int_range 0 63) (int_range 0 5)))
  in
  let arb =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map (fun (h, k) -> Printf.sprintf "(%d,%d)" h k) ops))
      gen
  in
  QCheck.Test.make ~name:"random join/leave agrees with a model" ~count:60 arb
    (fun ops ->
      let fabric = Fabric.create topo in
      let ctrl, fabric = make ~fabric () in
      ignore (Controller.add_group ctrl ~group:1 []);
      let model = Hashtbl.create 16 in
      List.iter
        (fun (host, kind) ->
          match (Hashtbl.mem model host, kind) with
          | false, 0 ->
              ignore (Controller.join ctrl ~group:1 ~host ~role:Controller.Sender);
              Hashtbl.replace model host Controller.Sender
          | false, 1 ->
              ignore (Controller.join ctrl ~group:1 ~host ~role:Controller.Receiver);
              Hashtbl.replace model host Controller.Receiver
          | false, _ ->
              ignore (Controller.join ctrl ~group:1 ~host ~role:Controller.Both);
              Hashtbl.replace model host Controller.Both
          | true, (0 | 1 | 2) ->
              ignore (Controller.leave ctrl ~group:1 ~host);
              Hashtbl.remove model host
          | true, _ -> ())
        ops;
      let members = Controller.members ctrl ~group:1 in
      let model_ok =
        List.length members = Hashtbl.length model
        && List.for_all
             (fun (h, r) -> Hashtbl.find_opt model h = Some r)
             members
      in
      let receivers =
        List.filter_map
          (fun (h, r) ->
            match r with
            | Controller.Receiver | Controller.Both -> Some h
            | Controller.Sender -> None)
          members
      in
      let delivery_ok =
        match (Controller.encoding ctrl ~group:1, receivers) with
        | None, [] -> true
        | None, _ :: _ -> false
        | Some _, [] -> false
        | Some enc, sender :: _ -> (
            match Controller.header ctrl ~group:1 ~sender with
            | None -> false
            | Some header ->
                let report =
                  Fabric.inject fabric ~sender ~group:1 ~header ~payload:64
                in
                Fabric.deliveries_correct report ~tree:enc.Encoding.tree ~sender)
      in
      let srules_ok =
        let expected =
          match Controller.encoding ctrl ~group:1 with
          | Some enc -> Encoding.srule_entries enc
          | None -> 0
        in
        Srule_state.total_srules (Controller.srule_state ctrl) = expected
      in
      model_ok && delivery_ok && srules_ok)

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_random_operations ]

(* {1 Link failures: where the set cover genuinely matters} *)

let link_setup () =
  let fabric = Fabric.create topo in
  let ctrl, fabric = make ~fabric () in
  ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
  (ctrl, fabric)

let inject_current ctrl fabric ~group ~sender =
  match Controller.header ctrl ~group ~sender with
  | None -> None
  | Some header -> Some (Fabric.inject fabric ~sender ~group ~header ~payload:64)

let test_single_link_failure_single_plane () =
  let ctrl, fabric = link_setup () in
  (* Kill the link between L5 and its pod's plane-0 spine on both sides. *)
  Fabric.fail_link fabric ~leaf:5 ~plane:0;
  ignore (Controller.fail_link ctrl ~leaf:5 ~plane:0);
  (* Every sender must still reach every member exactly once: a single
     surviving plane (1) serves the whole tree. *)
  List.iter
    (fun sender ->
      match inject_current ctrl fabric ~group:1 ~sender with
      | None -> Alcotest.fail "unexpected unicast fallback"
      | Some report ->
          let enc = Option.get (Controller.encoding ctrl ~group:1) in
          Alcotest.(check bool)
            (Printf.sprintf "sender %d exactly-once" sender)
            true
            (Fabric.deliveries_correct report ~tree:enc.Encoding.tree ~sender
            && report.Fabric.lost = 0))
    fig3_hosts;
  (* Recovery restores multipath. *)
  Fabric.recover_link fabric ~leaf:5 ~plane:0;
  ignore (Controller.recover_link ctrl ~leaf:5 ~plane:0);
  let hd = Option.get (Controller.header ctrl ~group:1 ~sender:((5 * h) + 2)) in
  Alcotest.(check bool) "multipath restored" true hd.Prule.u_leaf.Prule.multipath

let test_disjoint_link_failures_need_set_cover () =
  let ctrl, fabric = link_setup () in
  (* L5 (pod 2) loses plane 0; L6 (pod 3) loses plane 1: no single plane
     serves both target pods from pod 0, so the controller must choose a
     multi-plane cover. *)
  List.iter
    (fun (leaf, plane) ->
      Fabric.fail_link fabric ~leaf ~plane;
      ignore (Controller.fail_link ctrl ~leaf ~plane))
    [ (5, 0); (6, 1) ];
  let hd = Option.get (Controller.header ctrl ~group:1 ~sender:0) in
  Alcotest.(check bool) "multipath disabled" false hd.Prule.u_leaf.Prule.multipath;
  Alcotest.(check int) "two upstream planes chosen" 2
    (Bitmap.popcount hd.Prule.u_leaf.Prule.up);
  match inject_current ctrl fabric ~group:1 ~sender:0 with
  | None -> Alcotest.fail "unexpected unicast fallback"
  | Some report ->
      (* Every member receives at least one copy; leaves reachable through
         both chosen planes may see duplicates, which the reliability layer
         deduplicates. *)
      List.iter
        (fun m ->
          if m <> 0 then
            Alcotest.(check bool)
              (Printf.sprintf "member %d reached" m)
              true
              (List.mem_assoc m report.Fabric.delivered))
        fig3_hosts;
      Alcotest.(check bool) "some copies died on the failed links" true
        (report.Fabric.lost > 0)

let test_leaf_isolated_degrades_to_unicast () =
  let ctrl, fabric = link_setup () in
  (* L5 loses both planes: pod 2's receiver is unreachable by any cover. *)
  List.iter
    (fun plane ->
      Fabric.fail_link fabric ~leaf:5 ~plane;
      ignore (Controller.fail_link ctrl ~leaf:5 ~plane))
    [ 0; 1 ];
  Alcotest.(check bool) "cross-pod sender degrades to unicast" true
    (Controller.header ctrl ~group:1 ~sender:0 = None)

let test_set_cover_duplicates_observable () =
  (* Leaves reachable through more than one chosen plane receive duplicate
     copies under a multi-plane cover — the price of union semantics, which
     the sequence-numbered transport above deduplicates. *)
  let ctrl, fabric = link_setup () in
  List.iter
    (fun (leaf, plane) ->
      Fabric.fail_link fabric ~leaf ~plane;
      ignore (Controller.fail_link ctrl ~leaf ~plane))
    [ (5, 0); (6, 1) ];
  match inject_current ctrl fabric ~group:1 ~sender:0 with
  | None -> Alcotest.fail "unexpected unicast fallback"
  | Some report ->
      let dup_hosts =
        List.filter (fun (_, copies) -> copies > 1) report.Fabric.delivered
      in
      Alcotest.(check bool) "duplicates do occur under multi-plane covers" true
        (dup_hosts <> [])

let test_link_fail_recover_idempotent () =
  let ctrl, fabric = link_setup () in
  let header () = Controller.header ctrl ~group:1 ~sender:0 in
  let baseline = header () in
  (* Double-fail is a no-op on top of a single fail... *)
  Fabric.fail_link fabric ~leaf:5 ~plane:0;
  ignore (Controller.fail_link ctrl ~leaf:5 ~plane:0);
  let failed_once = header () in
  Fabric.fail_link fabric ~leaf:5 ~plane:0;
  ignore (Controller.fail_link ctrl ~leaf:5 ~plane:0);
  Alcotest.(check bool) "double fail_link changes nothing" true
    (header () = failed_once);
  (* ...and so is double-recover: one recover restores the baseline header,
     a second leaves it untouched. *)
  Fabric.recover_link fabric ~leaf:5 ~plane:0;
  ignore (Controller.recover_link ctrl ~leaf:5 ~plane:0);
  Alcotest.(check bool) "recover restores the pre-failure header" true
    (header () = baseline);
  Fabric.recover_link fabric ~leaf:5 ~plane:0;
  ignore (Controller.recover_link ctrl ~leaf:5 ~plane:0);
  Alcotest.(check bool) "double recover_link changes nothing" true
    (header () = baseline);
  Alcotest.(check bool) "delivery intact after the fail/recover cycle" true
    (match inject_current ctrl fabric ~group:1 ~sender:0 with
    | None -> false
    | Some report ->
        List.for_all
          (fun m -> m = 0 || List.mem_assoc m report.Fabric.delivered)
          fig3_hosts)

let test_recover_link_reports_affected () =
  let ctrl, fabric = link_setup () in
  Fabric.fail_link fabric ~leaf:5 ~plane:0;
  let down = Controller.fail_link ctrl ~leaf:5 ~plane:0 in
  Fabric.recover_link fabric ~leaf:5 ~plane:0;
  let up = Controller.recover_link ctrl ~leaf:5 ~plane:0 in
  (* Recovery moves the same groups back onto the restored plane — it is a
     topology change with its own update fan-out, not a free undo. *)
  Alcotest.(check int) "recovery touches what the failure touched"
    down.Controller.affected_groups up.Controller.affected_groups

let tests =
  tests
  @ [
      Alcotest.test_case "link failure: single surviving plane" `Quick
        test_single_link_failure_single_plane;
      Alcotest.test_case "link failures: multi-plane set cover" `Quick
        test_disjoint_link_failures_need_set_cover;
      Alcotest.test_case "isolated leaf degrades to unicast" `Quick
        test_leaf_isolated_degrades_to_unicast;
      Alcotest.test_case "set-cover duplicates observable" `Quick
        test_set_cover_duplicates_observable;
      Alcotest.test_case "fail/recover link idempotency" `Quick
        test_link_fail_recover_idempotent;
      Alcotest.test_case "recover_link reports its fan-out" `Quick
        test_recover_link_reports_affected;
    ]

(* Metamorphic property: after ANY interleaving of switch/link failures,
   recoveries and membership changes (applied consistently to controller and
   fabric), every sender either degrades to unicast (header = None) or gets
   a header that reaches every receiver at least once. *)

type chaos_op =
  | Flip_spine of int
  | Flip_core of int
  | Flip_link of int * int
  | Flip_member of int

let gen_chaos =
  QCheck.Gen.(
    list_size (int_range 1 25)
      (oneof
         [
           map (fun s -> Flip_spine s) (int_range 0 7);
           map (fun c -> Flip_core c) (int_range 0 3);
           map2 (fun l p -> Flip_link (l, p)) (int_range 0 7) (int_range 0 1);
           map (fun v -> Flip_member v) (int_range 0 63);
         ]))

let arb_chaos =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Flip_spine s -> Printf.sprintf "S%d" s
             | Flip_core c -> Printf.sprintf "C%d" c
             | Flip_link (l, p) -> Printf.sprintf "L%d.%d" l p
             | Flip_member v -> Printf.sprintf "M%d" v)
           ops))
    gen_chaos

let prop_chaos_never_breaks_delivery =
  QCheck.Test.make ~name:"headers survive arbitrary failure/churn interleavings"
    ~count:80 arb_chaos (fun ops ->
      let fabric = Fabric.create topo in
      let ctrl, fabric = make ~fabric () in
      ignore (Controller.add_group ctrl ~group:1 (members_both fig3_hosts));
      let spine_state = Array.make 8 true in
      let core_state = Array.make 4 true in
      let link_state = Array.make_matrix 8 2 true in
      List.iter
        (function
          | Flip_spine s ->
              if spine_state.(s) then begin
                Fabric.fail_spine fabric s;
                ignore (Controller.fail_spine ctrl s)
              end
              else begin
                Fabric.recover_spine fabric s;
                ignore (Controller.recover_spine ctrl s)
              end;
              spine_state.(s) <- not spine_state.(s)
          | Flip_core c ->
              if core_state.(c) then begin
                Fabric.fail_core fabric c;
                ignore (Controller.fail_core ctrl c)
              end
              else begin
                Fabric.recover_core fabric c;
                ignore (Controller.recover_core ctrl c)
              end;
              core_state.(c) <- not core_state.(c)
          | Flip_link (l, p) ->
              if link_state.(l).(p) then begin
                Fabric.fail_link fabric ~leaf:l ~plane:p;
                ignore (Controller.fail_link ctrl ~leaf:l ~plane:p)
              end
              else begin
                Fabric.recover_link fabric ~leaf:l ~plane:p;
                ignore (Controller.recover_link ctrl ~leaf:l ~plane:p)
              end;
              link_state.(l).(p) <- not link_state.(l).(p)
          | Flip_member v -> (
              let members = Controller.members ctrl ~group:1 in
              match List.assoc_opt v members with
              | Some _ when List.length members > 1 ->
                  ignore (Controller.leave ctrl ~group:1 ~host:v)
              | Some _ -> ()
              | None ->
                  ignore (Controller.join ctrl ~group:1 ~host:v ~role:Controller.Both)))
        ops;
      (* Invariant check across every sender. *)
      match Controller.encoding ctrl ~group:1 with
      | None -> true
      | Some enc ->
          let tree = enc.Encoding.tree in
          List.for_all
            (fun (sender, role) ->
              match role with
              | Controller.Receiver -> true
              | Controller.Sender | Controller.Both -> (
                  match Controller.header ctrl ~group:1 ~sender with
                  | None -> true (* explicit unicast degrade is fine *)
                  | Some header ->
                      let report =
                        Fabric.inject fabric ~sender ~group:1 ~header ~payload:64
                      in
                      Array.for_all
                        (fun m ->
                          m = sender || List.mem_assoc m report.Fabric.delivered)
                        (Tree.member_array tree)))
            (Controller.members ctrl ~group:1))

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_chaos_never_breaks_delivery ]

(* {1 merge_updates / spine_update_count algebra} *)

let arb_updates =
  let gen =
    QCheck.Gen.(
      let ids = list_size (int_range 0 12) (int_range 0 15) in
      map3
        (fun h l p -> { Controller.hypervisors = h; leaves = l; pods = p })
        ids ids ids)
  in
  let print (u : Controller.updates) =
    let l ids = String.concat "," (List.map string_of_int ids) in
    Printf.sprintf "{hyp=[%s] leaves=[%s] pods=[%s]}" (l u.Controller.hypervisors)
      (l u.Controller.leaves) (l u.Controller.pods)
  in
  QCheck.make ~print gen

let normalized (u : Controller.updates) =
  Controller.merge_updates u Controller.no_updates

let sorted_dedup l = List.sort_uniq compare l

let prop_merge_normalizes =
  QCheck.Test.make ~name:"merge_updates sorts and deduplicates" ~count:200
    arb_updates (fun u ->
      let m = Controller.merge_updates u u in
      m.Controller.hypervisors = sorted_dedup u.Controller.hypervisors
      && m.Controller.leaves = sorted_dedup u.Controller.leaves
      && m.Controller.pods = sorted_dedup u.Controller.pods
      && m = normalized u)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge_updates is commutative" ~count:200
    (QCheck.pair arb_updates arb_updates) (fun (a, b) ->
      Controller.merge_updates a b = Controller.merge_updates b a)

let prop_merge_associative_idempotent =
  QCheck.Test.make ~name:"merge_updates is associative and idempotent"
    ~count:200
    (QCheck.triple arb_updates arb_updates arb_updates) (fun (a, b, c) ->
      let ( <+> ) = Controller.merge_updates in
      (a <+> (b <+> c)) = ((a <+> b) <+> c)
      && (let m = a <+> b in
          (m <+> m) = m))

let prop_spine_update_count =
  QCheck.Test.make
    ~name:"spine_update_count = distinct pods x physical spines per pod"
    ~count:200 (QCheck.pair arb_updates arb_updates) (fun (a, b) ->
      let m = Controller.merge_updates a b in
      Controller.spine_update_count topo m
      = List.length (sorted_dedup (a.Controller.pods @ b.Controller.pods))
        * topo.Topology.spines_per_pod
      && Controller.spine_update_count topo m
         <= Controller.spine_update_count topo (normalized a)
            + Controller.spine_update_count topo (normalized b))

let tests =
  tests
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_merge_normalizes;
        prop_merge_commutative;
        prop_merge_associative_idempotent;
        prop_spine_update_count;
      ]
