(* Coverage for small public utilities: pretty-printers, update-set algebra,
   and multi-datacenter fan-out beyond two sites. *)

let topo = Topology.running_example ()

let test_update_algebra () =
  let a = { Controller.hypervisors = [ 3; 1 ]; leaves = [ 5 ]; pods = [ 0 ] } in
  let b = { Controller.hypervisors = [ 1; 2 ]; leaves = []; pods = [ 0; 2 ] } in
  let m = Controller.merge_updates a b in
  Alcotest.(check (list int)) "hypervisors merged sorted" [ 1; 2; 3 ]
    m.Controller.hypervisors;
  Alcotest.(check (list int)) "pods deduplicated" [ 0; 2 ] m.Controller.pods;
  let m0 = Controller.merge_updates Controller.no_updates a in
  Alcotest.(check (list int)) "identity" [ 1; 3 ] m0.Controller.hypervisors;
  (* A pod update touches every physical spine of the pod. *)
  Alcotest.(check int) "spine update count"
    (2 * topo.Topology.spines_per_pod)
    (Controller.spine_update_count topo m)

let test_pretty_printers () =
  let tree = Tree.of_members topo [ 0; 1; 42 ] in
  let srules = Srule_state.create topo ~fmax:10 in
  let enc = Encoding.encode Params.default srules tree in
  let header = Encoding.header_for_sender enc ~sender:0 in
  let rendered = Format.asprintf "%a" (Prule.pp topo) header in
  Alcotest.(check bool) "header pp shows sections" true
    (String.length rendered > 40
    && Astring.String.is_infix ~affix:"u-leaf" rendered
    && Astring.String.is_infix ~affix:"d-leaf" rendered);
  let topo_s = Format.asprintf "%a" Topology.pp topo in
  Alcotest.(check bool) "topology pp" true
    (Astring.String.is_infix ~affix:"hosts=64" topo_s);
  let params_s = Format.asprintf "%a" Params.pp Params.default in
  Alcotest.(check bool) "params pp shows budget" true
    (Astring.String.is_infix ~affix:"budget 325B" params_s);
  let fabric = Fabric.create topo in
  Fabric.install_encoding fabric ~group:1 enc;
  let report = Fabric.inject fabric ~sender:0 ~group:1 ~header ~payload:10 in
  let trace_s = Format.asprintf "%a" Fabric.pp_trace report.Fabric.trace in
  Alcotest.(check bool) "trace pp" true
    (Astring.String.is_infix ~affix:"host 0 -> leaf 0" trace_s)

let test_multidc_three_sites () =
  let dcs = List.init 3 (fun _ -> Fabric.create topo) in
  let m = Multidc.create Params.default dcs in
  Multidc.add_group m ~group:5
    [ (0, 0); (0, 9); (1, 3); (1, 20); (2, 7); (2, 60) ];
  let report = Multidc.send m ~group:5 ~sender_dc:1 ~sender:3 in
  Alcotest.(check int) "two WAN unicasts" 2 report.Multidc.wan_unicasts;
  Alcotest.(check bool) "all nine... six members exactly once" true
    (Multidc.deliveries_correct m ~group:5 ~sender_dc:1 ~sender:3 report)

let test_tree_validate_and_ecmp_ranges () =
  Topology.validate topo;
  let fabric_topo = Topology.facebook_fabric () in
  for g = 0 to 50 do
    let hash = Ecmp.flow_hash ~group:g ~sender:(g * 31) in
    Alcotest.(check bool) "hash non-negative" true (hash >= 0);
    let plane = Ecmp.spine_choice fabric_topo ~hash in
    Alcotest.(check bool) "plane in range" true
      (plane >= 0 && plane < fabric_topo.Topology.spines_per_pod);
    let core = Ecmp.core_choice fabric_topo ~hash ~plane in
    Alcotest.(check bool) "core in its plane" true
      (core / fabric_topo.Topology.cores_per_plane = plane)
  done;
  let tt = Topology.leaf_spine ~leaves:4 ~spines:2 ~hosts_per_leaf:4 in
  Alcotest.check_raises "no cores on two-tier"
    (Invalid_argument "Ecmp.core_choice: two-tier topology has no cores")
    (fun () -> ignore (Ecmp.core_choice tt ~hash:7 ~plane:0))

(* End-to-end CLI smoke: `elmo-sim verify` exits 0 on a healthy controller
   and nonzero with a gid/switch/port counterexample under --corrupt. *)
let test_sim_verify_cli () =
  (* Resolve the CLI next to this test binary so the check is independent
     of the working directory (`dune runtest` vs `dune exec`). *)
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/elmo_sim.exe"
  in
  let read_all file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let run args =
    let out = Filename.temp_file "elmo_sim_verify" ".out" in
    let code =
      Sys.command
        (Printf.sprintf "%s verify --example --groups 8 %s > %s 2>&1"
           (Filename.quote exe) args (Filename.quote out))
    in
    let text = read_all out in
    Sys.remove out;
    (code, text)
  in
  let ok, ok_out = run "" in
  if ok <> 0 then Alcotest.failf "healthy verify exited %d:\n%s" ok ok_out;
  Alcotest.(check bool) "reports group count" true
    (Astring.String.is_infix ~affix:"ok: 8 groups" ok_out);
  let bad, bad_out = run "--corrupt" in
  Alcotest.(check bool) "corrupted run exits nonzero" true (bad <> 0);
  Alcotest.(check bool) "prints a gid/switch/port counterexample" true
    (Astring.String.is_infix ~affix:"counterexample: 0/leaf" bad_out)

let tests =
  [
    Alcotest.test_case "update-set algebra" `Quick test_update_algebra;
    Alcotest.test_case "pretty printers" `Quick test_pretty_printers;
    Alcotest.test_case "multi-DC with three sites" `Quick test_multidc_three_sites;
    Alcotest.test_case "validate and ECMP ranges" `Quick test_tree_validate_and_ecmp_ranges;
    Alcotest.test_case "elmo-sim verify CLI" `Quick test_sim_verify_cli;
  ]
