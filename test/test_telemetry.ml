(* elmo_telemetry: the space-saving sketch's proven error bounds against
   exact counts, pinned link numbering and capacity math, watermark
   crossing + drain, the fabric-attached recorder's byte accounting, the
   disabled-telemetry equivalence guarantee, the flight recorder's ring
   semantics against the journal, and runtime zero-alloc probes matching
   the lint annotations. *)

module Sketch = Elmo_telemetry.Sketch
module Link_series = Elmo_telemetry.Link_series
module Flight_recorder = Elmo_telemetry.Flight_recorder
module Recorder = Elmo_telemetry.Recorder
module Report = Elmo_telemetry.Report

let small_topo () =
  Topology.create ~pods:2 ~leaves_per_pod:2 ~spines_per_pod:2 ~hosts_per_leaf:4
    ~cores_per_plane:1

(* {1 Sketch} *)

let test_sketch_bounds () =
  (* 200 keys through a 16-slot sketch, weights skewed so a handful of
     keys dominate: the regime where space-saving must both evict a lot
     and still pin every elephant. *)
  let k = 16 in
  let nkeys = 200 in
  let sk = Sketch.create k in
  let exact = Array.make nkeys 0 in
  let rng = Rng.create 7 in
  for _ = 1 to 5_000 do
    (* Square the draw to skew mass toward low keys. *)
    let r = Rng.int rng nkeys in
    let key = r * r / nkeys in
    let weight = 1 + Rng.int rng 100 in
    exact.(key) <- exact.(key) + weight;
    Sketch.update sk ~key ~weight
  done;
  let total = Array.fold_left ( + ) 0 exact in
  Alcotest.(check int) "total conserved" total (Sketch.total sk);
  Alcotest.(check bool) "evictions happened" true (Sketch.evictions sk > 0);
  let entries = Sketch.entries sk in
  Alcotest.(check bool) "at most k entries" true (List.length entries <= k);
  (* Bound 1: est - err <= true <= est for every tracked key. *)
  List.iter
    (fun (e : Sketch.entry) ->
      let t = exact.(e.Sketch.key) in
      Alcotest.(check bool)
        (Printf.sprintf "key %d within bound" e.Sketch.key)
        true
        (e.Sketch.est - e.Sketch.err <= t && t <= e.Sketch.est))
    entries;
  (* Bound 2: every key over total/k is tracked. *)
  Array.iteri
    (fun key t ->
      if t * k > total then
        Alcotest.(check bool)
          (Printf.sprintf "heavy key %d tracked" key)
          true (Sketch.mem sk key))
    exact;
  (* Bound 3: an untracked key's true weight is at most min_count. *)
  let mc = Sketch.min_count sk in
  Array.iteri
    (fun key t ->
      if not (Sketch.mem sk key) then
        Alcotest.(check bool)
          (Printf.sprintf "untracked key %d below min_count" key)
          true (t <= mc))
    exact;
  (* Entries are sorted by descending estimate. *)
  let rec sorted = function
    | (a : Sketch.entry) :: (b :: _ as rest) ->
        a.Sketch.est >= b.Sketch.est && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "entries sorted" true (sorted entries);
  Alcotest.(check int) "top 3" 3 (List.length (Sketch.top sk ~n:3))

let test_sketch_exact_while_unevicted () =
  (* Fewer keys than slots: the sketch is an exact counter, err = 0. *)
  let sk = Sketch.create 8 in
  for i = 0 to 4 do
    Sketch.update sk ~key:i ~weight:(10 * (i + 1));
    Sketch.update sk ~key:i ~weight:1
  done;
  Alcotest.(check int) "no evictions" 0 (Sketch.evictions sk);
  Alcotest.(check int) "min_count 0 with empty slots" 0 (Sketch.min_count sk);
  List.iter
    (fun (e : Sketch.entry) ->
      Alcotest.(check int) "err is 0" 0 e.Sketch.err;
      Alcotest.(check int) "est exact" ((10 * (e.Sketch.key + 1)) + 1)
        e.Sketch.est)
    (Sketch.entries sk);
  Alcotest.check_raises "k must be positive"
    (Invalid_argument "Sketch.create: k must be positive") (fun () ->
      ignore (Sketch.create 0))

(* {1 Link series} *)

let test_link_numbering () =
  let ls = Link_series.create (small_topo ()) in
  (* hosts 16, leaves 4 x 2 planes, spines 4 x 1 core slot = 28 links *)
  Alcotest.(check int) "nlinks" 28 (Link_series.nlinks ls);
  Alcotest.(check int) "host link" 5 (Link_series.host_link ls ~host:5);
  Alcotest.(check int) "leaf-spine link" 22
    (Link_series.leaf_spine_link ls ~leaf:3 ~spine:2);
  Alcotest.(check int) "leaf-spine plane 1" 21
    (Link_series.leaf_spine_link ls ~leaf:2 ~spine:3);
  Alcotest.(check int) "spine-core link" 27
    (Link_series.spine_core_link ls ~spine:3 ~core:1);
  (* 10 Gbit/s over a 1 ms window = 1.25 MB per window. *)
  Alcotest.(check int) "cap_bytes at 10G/1ms" 1_250_000
    (Link_series.cap_bytes ls);
  (match Link_series.describe ls 5 with
  | Link_series.Host_link, h, l ->
      Alcotest.(check (pair int int)) "host 5 under leaf 1" (5, 1) (h, l)
  | _ -> Alcotest.fail "link 5 should be a host link");
  (match Link_series.describe ls 22 with
  | Link_series.Leaf_spine, leaf, plane ->
      Alcotest.(check (pair int int)) "leaf 3 plane 0" (3, 0) (leaf, plane)
  | _ -> Alcotest.fail "link 22 should be leaf-spine");
  match Link_series.describe ls 27 with
  | Link_series.Spine_core, spine, slot ->
      Alcotest.(check (pair int int)) "spine 3 slot 0" (3, 0) (spine, slot)
  | _ -> Alcotest.fail "link 27 should be spine-core"

let test_link_gbps_scales_capacity () =
  let topo = Topology.with_link_gbps (small_topo ()) 40.0 in
  Alcotest.(check (Alcotest.float 1e-9)) "accessor" 40.0
    (Topology.link_gbps topo);
  let ls = Link_series.create topo in
  Alcotest.(check int) "cap_bytes at 40G/1ms" 5_000_000
    (Link_series.cap_bytes ls);
  Alcotest.check_raises "non-positive rate rejected"
    (Invalid_argument "Topology: link_gbps must be positive") (fun () ->
      ignore (Topology.with_link_gbps topo 0.0))

let test_windows_and_watermark () =
  let ls =
    Link_series.create ~windows:4 ~watermark:0.5 (small_topo ())
  in
  let link = 3 in
  (* Below the 625_000-byte watermark: no event. *)
  Link_series.record ls ~link ~bytes:600_000;
  Alcotest.(check int) "window bytes" 600_000
    (Link_series.window_bytes ls ~link);
  Alcotest.(check int) "no crossing yet" 0 (Link_series.watermark_events ls);
  Alcotest.(check bool) "nothing pending" false (Link_series.has_pending ls);
  (* The packet that pushes the window over the line crosses once. *)
  Link_series.record ls ~link ~bytes:50_000;
  Alcotest.(check int) "one crossing" 1 (Link_series.watermark_events ls);
  Link_series.record ls ~link ~bytes:50_000;
  Alcotest.(check int) "no re-crossing within the window" 1
    (Link_series.watermark_events ls);
  let drained = ref [] in
  Link_series.drain_pending ls (fun l -> drained := l :: !drained);
  Alcotest.(check (list int)) "pending drained" [ link ] !drained;
  Link_series.drain_pending ls (fun _ -> Alcotest.fail "drain not cleared");
  (* Rotation opens a fresh window; the old peak stays visible in the ring
     and a new breach counts again. *)
  Link_series.advance ls;
  Alcotest.(check int) "fresh window empty" 0
    (Link_series.window_bytes ls ~link);
  Alcotest.(check int) "ring keeps the peak" 700_000
    (Link_series.max_window_bytes ls ~link);
  Link_series.record ls ~link ~bytes:700_000;
  Alcotest.(check int) "crossing in the new window" 2
    (Link_series.watermark_events ls);
  Alcotest.(check int) "run total" 1_400_000 (Link_series.link_bytes ls ~link);
  Alcotest.(check int) "per-link packets" 4 (Link_series.link_pkts ls ~link);
  Alcotest.(check int) "one active link" 1 (Link_series.active_links ls);
  Alcotest.(check (list int)) "top" [ link ] (Link_series.top ls ~n:5)

(* {1 Recorder on a live fabric} *)

(* One group on the small topology, encodings materialized as fabric
   s-rules, a few packets injected from different senders. *)
let fabric_with_group () =
  let topo = small_topo () in
  let params = Params.create ~fmax:64 () in
  let ctrl = Controller.create topo params in
  let members =
    [ (0, Controller.Both); (3, Controller.Both); (6, Controller.Receiver);
      (9, Controller.Receiver); (13, Controller.Receiver) ]
  in
  ignore (Controller.add_group ctrl ~group:1 members);
  let fab = Fabric.create topo in
  (match Controller.encoding ctrl ~group:1 with
  | Some enc -> Fabric.install_encoding fab ~group:1 enc
  | None -> ());
  (ctrl, fab)

let test_recorder_accounting () =
  let ctrl, fab = fabric_with_group () in
  let recorder = Recorder.create ~advance_every:1_000 (Fabric.topology fab) in
  Recorder.attach recorder fab;
  let payload = 1_500 in
  let expected = ref 0 in
  let hops = ref 0 in
  for round = 1 to 3 do
    ignore round;
    List.iter
      (fun sender ->
        match Controller.header ctrl ~group:1 ~sender with
        | None -> Alcotest.fail "sender has no header"
        | Some header ->
            let r = Fabric.inject fab ~sender ~group:1 ~header ~payload in
            expected :=
              !expected + (payload * r.Fabric.transmissions)
              + r.Fabric.header_bytes;
            hops := !hops + r.Fabric.transmissions)
      [ 0; 3 ]
  done;
  Recorder.detach fab;
  let ls = Recorder.links recorder in
  (* Every hop landed on exactly one link with payload + its header bytes:
     the series total reconciles with the injection reports exactly. *)
  Alcotest.(check int) "link-series bytes reconcile" !expected
    (Link_series.total_bytes ls);
  Alcotest.(check int) "link-series hops reconcile" !hops
    (Link_series.total_hops ls);
  (* The per-packet sketch saw the same wire bytes, keyed by group. *)
  let sk = Recorder.sketch recorder in
  Alcotest.(check int) "sketch total reconciles" !expected (Sketch.total sk);
  Alcotest.(check bool) "group tracked" true (Sketch.mem sk 1);
  Alcotest.(check int) "packets counted" 6 (Recorder.packets recorder);
  (* Senders' host links carried traffic. *)
  Alcotest.(check bool) "sender link active" true
    (Link_series.link_bytes ls ~link:(Link_series.host_link ls ~host:0) > 0);
  Alcotest.(check bool) "utilization positive" true
    (Recorder.max_utilization recorder > 0.0);
  (* Detached: further packets leave the recorder untouched. *)
  (match Controller.header ctrl ~group:1 ~sender:0 with
  | Some header ->
      ignore (Fabric.inject fab ~sender:0 ~group:1 ~header ~payload)
  | None -> ());
  Alcotest.(check int) "detached recorder frozen" !expected
    (Link_series.total_bytes (Recorder.links recorder))

let test_disabled_equivalence () =
  (* The telemetry hook must never change forwarding: reports from a
     hooked fabric are structurally identical to an unhooked one. *)
  let run ~hook =
    let ctrl, fab = fabric_with_group () in
    let recorder =
      if hook then begin
        let r = Recorder.create (Fabric.topology fab) in
        Recorder.attach r fab;
        Some r
      end
      else None
    in
    let reports =
      List.concat_map
        (fun sender ->
          match Controller.header ctrl ~group:1 ~sender with
          | None -> []
          | Some header ->
              [ Fabric.inject fab ~sender ~group:1 ~header ~payload:700 ])
        [ 0; 3 ]
    in
    ignore recorder;
    reports
  in
  let plain = run ~hook:false in
  let hooked = run ~hook:true in
  Alcotest.(check int) "same report count" (List.length plain)
    (List.length hooked);
  List.iter2
    (fun (a : Fabric.report) (b : Fabric.report) ->
      Alcotest.(check (list (pair int int))) "delivered identical"
        a.Fabric.delivered b.Fabric.delivered;
      Alcotest.(check int) "transmissions identical" a.Fabric.transmissions
        b.Fabric.transmissions;
      Alcotest.(check int) "header bytes identical" a.Fabric.header_bytes
        b.Fabric.header_bytes;
      Alcotest.(check int) "lost identical" a.Fabric.lost b.Fabric.lost;
      Alcotest.(check int) "trace length identical"
        (List.length a.Fabric.trace)
        (List.length b.Fabric.trace))
    plain hooked

(* {1 Flight recorder} *)

let journal_ops n =
  List.init n (fun i ->
      if i mod 3 = 0 then
        Journal.Join { group = i mod 5; host = i; role = Controller.Receiver }
      else if i mod 3 = 1 then Journal.Leave { group = i mod 5; host = i - 1 }
      else Journal.Add_group { group = 100 + i; members = [] })

let test_flight_ring_matches_journal () =
  let fr = Flight_recorder.create ~capacity:8 () in
  let j = Journal.create ~observer:(Flight_recorder.observer fr) () in
  let ops = journal_ops 20 in
  List.iter (Journal.append j) ops;
  Alcotest.(check int) "all recorded" 20 (Flight_recorder.recorded fr);
  Alcotest.(check int) "capacity" 8 (Flight_recorder.capacity fr);
  let tail_of_journal =
    let all = Journal.to_list j in
    List.filteri (fun i _ -> i >= List.length all - 8) all
  in
  let retained =
    List.map
      (function
        | Flight_recorder.Op { op; _ } -> op
        | Flight_recorder.Note _ | Flight_recorder.Pad ->
            Alcotest.fail "unexpected non-op event")
      (Flight_recorder.events fr)
  in
  Alcotest.(check int) "ring keeps capacity events" 8 (List.length retained);
  (* The retained tail is exactly the journal's last 8 ops, oldest first. *)
  List.iter2
    (fun expect got ->
      Alcotest.(check string) "tail op matches journal"
        (Format.asprintf "%a" Journal.pp_op expect)
        (Format.asprintf "%a" Journal.pp_op got))
    tail_of_journal retained;
  (* Sequence numbers are the global record indices. *)
  (match Flight_recorder.events fr with
  | Flight_recorder.Op { seq; _ } :: _ ->
      Alcotest.(check int) "oldest retained seq" 12 seq
  | _ -> Alcotest.fail "expected an op first");
  (* Notes interleave with ops in arrival order. *)
  Flight_recorder.note fr "watermark" ~a:7 ~b:1_000_000;
  match List.rev (Flight_recorder.events fr) with
  | Flight_recorder.Note { label; a; b; seq } :: _ ->
      Alcotest.(check string) "note label" "watermark" label;
      Alcotest.(check (pair int int)) "note payload" (7, 1_000_000) (a, b);
      Alcotest.(check int) "note seq" 20 seq
  | _ -> Alcotest.fail "note should be newest"

let test_flight_dump () =
  let fr = Flight_recorder.create ~capacity:4 () in
  List.iter (Flight_recorder.record_op fr) (journal_ops 6);
  Flight_recorder.note fr "blackhole" ~a:3 ~b:9;
  let json = Flight_recorder.dump ~reason:"test" fr in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " present") true
        (Astring.String.is_infix ~affix json))
    [
      {|"flight_recorder"|};
      {|"reason": "test"|};
      {|"recorded": 7|};
      {|"capacity": 4|};
      {|"kind": "note"|};
      {|"label": "blackhole"|};
      {|"kind": "op"|};
    ];
  (* Overwritten slots are gone: the oldest retained seq is 3 of 7. *)
  Alcotest.(check bool) "evicted op absent" false
    (Astring.String.is_infix ~affix:{|"seq": 2|} json);
  Alcotest.(check bool) "oldest retained present" true
    (Astring.String.is_infix ~affix:{|"seq": 3|} json)

(* {1 End-to-end report} *)

let report_topo () =
  Topology.create ~pods:2 ~leaves_per_pod:2 ~spines_per_pod:2 ~hosts_per_leaf:8
    ~cores_per_plane:1

let small_cfg () =
  {
    (Report.default_config (report_topo ())) with
    Report.groups = 32;
    tenants = 4;
    packets = 300;
    churn_events = 40;
    k = 8;
  }

let test_report_run () =
  let fr = Flight_recorder.create ~capacity:64 () in
  let res = Report.run ~flight:fr (small_cfg ()) in
  Alcotest.(check int) "all packets injected" 300
    (res.Report.injected + res.Report.no_header);
  Alcotest.(check bool) "sketch bounds hold" true res.Report.sketch_ok;
  Alcotest.(check int) "no missed heavy group" 0 res.Report.missed_heavy;
  (* Exact counts and the sketch were fed from the same injections. *)
  Alcotest.(check int) "exact total = sketch total"
    (Array.fold_left ( + ) 0 res.Report.exact)
    (Sketch.total (Recorder.sketch res.Report.recorder));
  Alcotest.(check bool) "links observed" true
    (Report.link_rows res ~n:5 <> []);
  List.iter
    (fun (e : Report.elephant) ->
      Alcotest.(check bool) "elephant within bound" true e.Report.within)
    (Report.elephants res ~n:8);
  (* The control-plane ops of the run landed in the flight recorder:
     setup adds plus churn joins/leaves. *)
  Alcotest.(check bool) "flight recorder saw the ops" true
    (Flight_recorder.recorded fr > 32);
  (* Determinism: same config, same flight tail, same exact counts. *)
  let res2 = Report.run ~flight:(Flight_recorder.create ()) (small_cfg ()) in
  Alcotest.(check bool) "deterministic exact counts" true
    (res.Report.exact = res2.Report.exact)

let test_report_watermark_notes () =
  (* A tiny threshold forces crossings; each drained crossing lands as a
     watermark note in the flight recorder — the telemetry anomaly tap. *)
  let fr = Flight_recorder.create ~capacity:512 () in
  let cfg = { (small_cfg ()) with Report.watermark = 0.0001 } in
  let res = Report.run ~flight:fr cfg in
  let ls = Recorder.links res.Report.recorder in
  Alcotest.(check bool) "crossings happened" true
    (Link_series.watermark_events ls > 0);
  let notes =
    List.filter
      (function
        | Flight_recorder.Note { label = "watermark"; _ } -> true
        | Flight_recorder.Note _ | Flight_recorder.Op _ | Flight_recorder.Pad
          ->
            false)
      (Flight_recorder.events fr)
  in
  Alcotest.(check bool) "watermark notes recorded" true (notes <> [])

(* {1 Runtime zero-alloc probes} *)

(* The static lint annotations on Sketch.update, Link_series.record and
   Recorder.record_hop each get the Gc.minor_words cross-check the
   apply_delta hot path already has. *)

let test_sketch_update_zero_alloc () =
  let sk = Sketch.create 8 in
  (* Pre-fill all slots so the probe exercises both hit and evict paths. *)
  for key = 0 to 7 do
    Sketch.update sk ~key ~weight:1_000
  done;
  let report =
    Allocs.probe ~warmup:64 ~events:4_096 (fun i ->
        (* Alternate a tracked key (hit) and a rotating miss (evict). *)
        if i land 1 = 0 then Sketch.update sk ~key:0 ~weight:3
        else Sketch.update sk ~key:(100 + (i land 7)) ~weight:1)
  in
  Alcotest.(check (option (pair int int))) "sketch update clean" None
    report.Allocs.first_alloc

let test_record_hop_zero_alloc () =
  let topo = small_topo () in
  let recorder = Recorder.create ~advance_every:1_000_000 topo in
  let hops =
    [|
      { Fabric.hop_from = Fabric.Host_node 0; hop_to = Fabric.Leaf_node 0;
        hop_header_bytes = 40 };
      { Fabric.hop_from = Fabric.Leaf_node 0; hop_to = Fabric.Spine_node 1;
        hop_header_bytes = 40 };
      { Fabric.hop_from = Fabric.Spine_node 1; hop_to = Fabric.Core_node 0;
        hop_header_bytes = 24 };
      { Fabric.hop_from = Fabric.Leaf_node 2; hop_to = Fabric.Host_node 9;
        hop_header_bytes = 0 };
    |]
  in
  let report =
    Allocs.probe ~warmup:64 ~events:4_096 (fun i ->
        Recorder.record_hop recorder ~payload:1_500 hops.(i land 3))
  in
  Alcotest.(check (option (pair int int))) "record_hop clean" None
    report.Allocs.first_alloc;
  let ls = Recorder.links recorder in
  Alcotest.(check bool) "probe traffic recorded" true
    (Link_series.total_hops ls > 4_000)

let tests =
  [
    Alcotest.test_case "sketch bounds vs exact" `Quick test_sketch_bounds;
    Alcotest.test_case "sketch exact while unevicted" `Quick
      test_sketch_exact_while_unevicted;
    Alcotest.test_case "link numbering pinned" `Quick test_link_numbering;
    Alcotest.test_case "link_gbps scales capacity" `Quick
      test_link_gbps_scales_capacity;
    Alcotest.test_case "windows and watermark" `Quick
      test_windows_and_watermark;
    Alcotest.test_case "recorder accounting" `Quick test_recorder_accounting;
    Alcotest.test_case "disabled-telemetry equivalence" `Quick
      test_disabled_equivalence;
    Alcotest.test_case "flight ring matches journal" `Quick
      test_flight_ring_matches_journal;
    Alcotest.test_case "flight dump" `Quick test_flight_dump;
    Alcotest.test_case "report run" `Quick test_report_run;
    Alcotest.test_case "report watermark notes" `Quick
      test_report_watermark_notes;
    Alcotest.test_case "sketch update zero-alloc" `Quick
      test_sketch_update_zero_alloc;
    Alcotest.test_case "record_hop zero-alloc" `Quick
      test_record_hop_zero_alloc;
  ]
