(* Fixture-driven tests for elmo-lint (tools/lint): each deliberately-bad
   module under lint_fixtures/ must produce exactly the expected findings —
   rule id, file and line — and the clean/suppressed fixtures none.

   dune runs the test binary from _build/default/test, so fixture cmts are
   addressed relative to that directory and the copied sources (scanned for
   suppression comments) live one level up. *)

let cmt m = "lint_fixtures/.lint_fixtures.objs/byte/" ^ m ^ ".cmt"
let src m = "test/lint_fixtures/" ^ m ^ ".ml"

let analyze ?(deps = []) mods =
  Lint.analyze ~config:Lint.all_config ~source_root:".."
    ~targets:(List.map cmt mods) ~deps:(List.map cmt deps) ()

let triples findings =
  List.map
    (fun f -> (f.Lint.file, f.Lint.line, Lint.rule_id f.Lint.rule))
    findings

let check name expected actual =
  Alcotest.(check (list (triple string int string))) name expected
    (triples actual)

let test_determinism () =
  check "bad_random"
    [
      (src "bad_random", 2, "determinism");
      (src "bad_random", 3, "determinism");
      (src "bad_random", 4, "determinism");
    ]
    (analyze [ "bad_random" ])

let test_determinism_wall_clock () =
  (* Raw [Unix.gettimeofday] is caught wherever it appears; only the one
     reasoned allow inside Elmo_obs.Clock is sanctioned. *)
  check "bad_clock"
    [
      (src "bad_clock", 3, "determinism");
      (src "bad_clock", 4, "determinism");
    ]
    (analyze [ "bad_clock" ])

let test_poly_compare () =
  check "bad_poly_compare"
    [
      (src "bad_poly_compare", 5, "poly-compare");
      (src "bad_poly_compare", 6, "poly-compare");
      (src "bad_poly_compare", 7, "poly-compare");
    ]
    (analyze [ "bad_poly_compare" ])

let test_exception_discipline () =
  check "bad_failwith"
    [
      (src "bad_failwith", 2, "exception-discipline");
      (src "bad_failwith", 3, "exception-discipline");
      (src "bad_failwith", 4, "exception-discipline");
    ]
    (analyze [ "bad_failwith" ])

let test_domain_safety () =
  check "mutables flagged when a Domain_pool caller reaches them"
    [
      (src "bad_global_state", 3, "domain-safety");
      (src "bad_global_state", 4, "domain-safety");
    ]
    (analyze [ "bad_global_state"; "bad_parallel" ])

let test_domain_safety_needs_reachability () =
  (* The same mutable bindings are fine when nothing hands a closure to
     Domain_pool — the rule is about reachability, not mutability. *)
  check "unreachable mutables are not flagged" [] (analyze [ "bad_global_state" ])

let test_domain_safety_across_deps () =
  (* A Domain_pool call in a target flags mutable state in a dep-only
     module: this is what --deps exists for in the per-library dune rules. *)
  check "dep modules are scanned for reachable mutables"
    [
      (src "bad_global_state", 3, "domain-safety");
      (src "bad_global_state", 4, "domain-safety");
    ]
    (analyze ~deps:[ "bad_global_state" ] [ "bad_parallel" ])

let test_interface_hygiene () =
  check "bad_no_mli"
    [ (src "bad_no_mli", 1, "interface-hygiene") ]
    (analyze [ "bad_no_mli" ])

let test_suppression_with_reason () =
  check "reasoned allow silences the finding" [] (analyze [ "suppressed_ok" ])

let test_suppression_without_reason () =
  check "bare allow silences the finding but is itself reported"
    [ (src "suppressed_bare", 3, "bare-allow") ]
    (analyze [ "suppressed_bare" ])

let test_clean () = check "clean fixture" [] (analyze [ "clean" ])

let messages findings = List.map (fun f -> f.Lint.message) findings

let test_zero_alloc_direct () =
  let findings = analyze [ "za_alloc" ] in
  check "annotated fn allocating directly"
    [ (src "za_alloc", 4, "zero-alloc") ]
    findings;
  Alcotest.(check (list string))
    "witness names the construct and the allocating site"
    [ "bad_pair allocates tuple (test/lint_fixtures/za_alloc.ml:4)" ]
    (messages findings)

let test_zero_alloc_interprocedural () =
  (* The allocation lives in the callee; the finding anchors at the
     annotated entry and the witness spells out the call chain. *)
  let findings = analyze [ "za_indirect" ] in
  check "allocation reached only through a callee"
    [ (src "za_indirect", 7, "zero-alloc") ]
    findings;
  Alcotest.(check (list string))
    "call-chain witness"
    [
      "entry \xe2\x86\x92 helper allocates constructor :: \
       (test/lint_fixtures/za_indirect.ml:4)";
    ]
    (messages findings)

let test_zero_alloc_suppressed () =
  check "reasoned allow silences the cold slow path" []
    (analyze [ "za_suppressed" ])

let test_zero_alloc_clean () =
  check "clean kernel has no findings" [] (analyze [ "za_clean" ])

let test_unknown_rule_in_allow () =
  (* A typo'd rule-id would otherwise silently suppress nothing. *)
  let findings = analyze [ "suppressed_typo" ] in
  check "unknown rule-id in allow is flagged"
    [ (src "suppressed_typo", 4, "bare-allow") ]
    findings;
  match messages findings with
  | [ msg ] ->
      Alcotest.(check bool) "message names the bogus id" true
        (Astring.String.is_infix ~affix:"unknown rule 'zero-aloc'" msg)
  | other ->
      Alcotest.failf "expected one finding, got %d" (List.length other)

let all_fixtures =
  [
    "bad_clock";
    "bad_failwith";
    "bad_global_state";
    "bad_no_mli";
    "bad_parallel";
    "bad_poly_compare";
    "bad_random";
    "clean";
    "suppressed_bare";
    "suppressed_ok";
    "suppressed_typo";
    "za_alloc";
    "za_clean";
    "za_indirect";
    "za_suppressed";
  ]

let test_aggregate () =
  check "whole fixture set, sorted by file/line/rule"
    [
      (src "bad_clock", 3, "determinism");
      (src "bad_clock", 4, "determinism");
      (src "bad_failwith", 2, "exception-discipline");
      (src "bad_failwith", 3, "exception-discipline");
      (src "bad_failwith", 4, "exception-discipline");
      (src "bad_global_state", 3, "domain-safety");
      (src "bad_global_state", 4, "domain-safety");
      (src "bad_no_mli", 1, "interface-hygiene");
      (src "bad_poly_compare", 5, "poly-compare");
      (src "bad_poly_compare", 6, "poly-compare");
      (src "bad_poly_compare", 7, "poly-compare");
      (src "bad_random", 2, "determinism");
      (src "bad_random", 3, "determinism");
      (src "bad_random", 4, "determinism");
      (src "suppressed_bare", 3, "bare-allow");
      (src "suppressed_typo", 4, "bare-allow");
      (src "za_alloc", 4, "zero-alloc");
      (src "za_indirect", 7, "zero-alloc");
    ]
    (analyze all_fixtures)

let test_rule_id_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Lint.rule_id r ^ " roundtrips")
        true
        (Lint.rule_of_id (Lint.rule_id r) = Some r))
    [
      Lint.Determinism;
      Lint.Poly_compare;
      Lint.Exception_discipline;
      Lint.Domain_safety;
      Lint.Interface_hygiene;
      Lint.Zero_alloc;
      Lint.Bare_allow;
    ];
  Alcotest.(check bool) "unknown id" true (Lint.rule_of_id "no-such-rule" = None)

let test_pp_finding () =
  let f =
    { Lint.file = "lib/core/x.ml"; line = 7; rule = Lint.Determinism;
      message = "msg" }
  in
  Alcotest.(check string) "editor-clickable format"
    "lib/core/x.ml:7: [determinism] msg"
    (Format.asprintf "%a" Lint.pp_finding f)

let tests =
  [
    Alcotest.test_case "determinism rule" `Quick test_determinism;
    Alcotest.test_case "determinism catches wall clock" `Quick
      test_determinism_wall_clock;
    Alcotest.test_case "poly-compare rule" `Quick test_poly_compare;
    Alcotest.test_case "exception-discipline rule" `Quick
      test_exception_discipline;
    Alcotest.test_case "domain-safety rule" `Quick test_domain_safety;
    Alcotest.test_case "domain-safety needs reachability" `Quick
      test_domain_safety_needs_reachability;
    Alcotest.test_case "domain-safety across deps" `Quick
      test_domain_safety_across_deps;
    Alcotest.test_case "interface-hygiene rule" `Quick test_interface_hygiene;
    Alcotest.test_case "reasoned suppression" `Quick
      test_suppression_with_reason;
    Alcotest.test_case "bare suppression" `Quick
      test_suppression_without_reason;
    Alcotest.test_case "clean fixture" `Quick test_clean;
    Alcotest.test_case "zero-alloc direct allocation" `Quick
      test_zero_alloc_direct;
    Alcotest.test_case "zero-alloc via callee" `Quick
      test_zero_alloc_interprocedural;
    Alcotest.test_case "zero-alloc suppressed slow path" `Quick
      test_zero_alloc_suppressed;
    Alcotest.test_case "zero-alloc clean kernel" `Quick test_zero_alloc_clean;
    Alcotest.test_case "unknown rule-id in allow" `Quick
      test_unknown_rule_in_allow;
    Alcotest.test_case "aggregate ordering" `Quick test_aggregate;
    Alcotest.test_case "rule id roundtrip" `Quick test_rule_id_roundtrip;
    Alcotest.test_case "finding format" `Quick test_pp_finding;
  ]
