(* End-to-end experiment harness tests at a reduced scale: shapes that the
   paper's figures rely on must hold even on small runs. *)

let small_config ?(strategy = Vm_placement.Pack_up_to 12) ?(dist = Group_dist.Wve)
    ?(groups = 1_500) () =
  {
    Scalability.topo = Topology.facebook_fabric ();
    tenants = 100;
    total_groups = groups;
    strategy;
    dist;
    params = Params.create ~fmax:50 ();
    seed = 7;
    domains = 1;
  }

let test_scalability_shapes () =
  let cfg = small_config () in
  match Scalability.run cfg ~r_values:[ 0; 12 ] with
  | [ p0; p12 ] ->
      Alcotest.(check int) "all groups encoded" cfg.Scalability.total_groups
        p0.Scalability.total_groups;
      Alcotest.(check bool) "coverage grows with R" true
        (p12.Scalability.covered >= p0.Scalability.covered);
      Alcotest.(check bool) "s-rules shrink with R" true
        (p12.Scalability.leaf_srules.Stats.mean
        <= p0.Scalability.leaf_srules.Stats.mean +. 1e-9);
      Alcotest.(check bool) "traffic overhead grows with R at P=12" true
        (p12.Scalability.overhead_1500 >= p0.Scalability.overhead_1500 -. 1e-9);
      Alcotest.(check bool) "unicast worst" true
        (p0.Scalability.unicast_overhead > p0.Scalability.overlay_overhead);
      Alcotest.(check bool) "overlay worse than Elmo" true
        (p0.Scalability.overlay_overhead > p0.Scalability.overhead_1500);
      Alcotest.(check bool) "headers within budget" true
        (p0.Scalability.header_bytes.Stats.max <= 325.0)
  | _ -> Alcotest.fail "expected two points"

let test_scalability_deterministic () =
  let cfg = small_config ~groups:400 () in
  let a = Scalability.run_point cfg ~r:6 in
  let b = Scalability.run_point cfg ~r:6 in
  Alcotest.(check bool) "same seed, same point" true (a = b)

let test_p1_disperses () =
  let p12 = Scalability.run_point (small_config ~groups:800 ()) ~r:0 in
  let p1 =
    Scalability.run_point
      (small_config ~strategy:(Vm_placement.Pack_up_to 1) ~groups:800 ())
      ~r:0
  in
  (* Dispersed placement needs more state: bigger headers and fewer pure
     p-rule groups. *)
  Alcotest.(check bool) "bigger headers at P=1" true
    (p1.Scalability.header_bytes.Stats.mean > p12.Scalability.header_bytes.Stats.mean);
  Alcotest.(check bool) "less pure-p coverage at P=1" true
    (p1.Scalability.covered_pure_prules <= p12.Scalability.covered_pure_prules)

let test_control_plane_shapes () =
  let cfg =
    {
      Control_plane.topo = Topology.facebook_fabric ();
      tenants = 100;
      total_groups = 800;
      strategy = Vm_placement.Pack_up_to 1;
      dist = Group_dist.Wve;
      params = Params.create ~fmax:50 ();
      events = 1_500;
      events_per_second = 1_000.0;
      failure_trials = 3;
      seed = 11;
      domains = 1;
    }
  in
  let r = Control_plane.run cfg in
  let c = r.Control_plane.churn in
  Alcotest.(check bool) "hypervisors bear the load" true
    (c.Churn.elmo_hypervisor.Churn.mean > c.Churn.elmo_leaf.Churn.mean);
  Alcotest.(check (float 1e-9)) "no Elmo core updates" 0.0 c.Churn.elmo_core.Churn.max;
  Alcotest.(check bool) "Li needs core updates" true (c.Churn.li_core.Churn.max > 0.0);
  Alcotest.(check bool) "Li spine load exceeds Elmo's" true
    (c.Churn.li_spine.Churn.mean > c.Churn.elmo_spine.Churn.mean);
  Alcotest.(check bool) "core failures affect more groups than spine" true
    (r.Control_plane.core_failures.Churn.affected_fraction_mean
    >= r.Control_plane.spine_failures.Churn.affected_fraction_mean *. 0.5)

let test_ablation_ladder () =
  let steps = Ablation.run () in
  Alcotest.(check int) "five steps" 5 (List.length steps);
  match steps with
  | [ d1; d2; d3; d4; d5 ] ->
      Alcotest.(check bool) "D2 shrinks D1" true (d2.Ablation.header_bits < d1.Ablation.header_bits);
      Alcotest.(check bool) "D3 shrinks D2" true (d3.Ablation.header_bits < d2.Ablation.header_bits);
      Alcotest.(check bool) "D4 uses the default rule" true d4.Ablation.default_used;
      Alcotest.(check bool) "D5 replaces default with s-rules" true
        ((not d5.Ablation.default_used) && d5.Ablation.srules > 0)
  | _ -> Alcotest.fail "unexpected ladder"

let test_fig7_shapes () =
  let topo = Topology.facebook_fabric () in
  let points = Fig7.run ~iterations:200 topo [ 0; 15; 30 ] in
  match points with
  | [ p0; _; p30 ] ->
      Alcotest.(check bool) "header grows" true (p30.Fig7.header_bytes > p0.Fig7.header_bytes);
      Alcotest.(check bool) "per-rule path slower at 30 rules" true
        (p30.Fig7.per_rule_mpps < p30.Fig7.single_mpps);
      (* The headline claim: the single-write path's pps degrades far less
         than the per-rule path's across the sweep. *)
      let degradation single = single p0 /. single p30 in
      Alcotest.(check bool) "single-write degrades less" true
        (degradation (fun p -> p.Fig7.single_mpps)
        < degradation (fun p -> p.Fig7.per_rule_mpps))
  | _ -> Alcotest.fail "expected three points"

let test_fig7_header_construction () =
  let topo = Topology.facebook_fabric () in
  let h = Fig7.header_with_rules topo 7 in
  Alcotest.(check int) "rule count" 7 (List.length h.Prule.d_leaf);
  (* Must be serializable. *)
  Alcotest.(check bool) "roundtrips" true
    (Header_codec.decode topo (Header_codec.encode topo h) = h)

let test_comparison_rows () =
  let rows = Comparison.rows ~table_capacity:5_000 ~header_budget:325 in
  Alcotest.(check int) "seven schemes" 7 (List.length rows);
  let find name = List.find (fun r -> r.Comparison.scheme = name) rows in
  Alcotest.(check string) "IP multicast capped by table" "5K"
    (find "IP Multicast").Comparison.groups;
  Alcotest.(check string) "Elmo unbounded" "1M+" (find "Elmo").Comparison.groups;
  Alcotest.(check bool) "Elmo line rate, no unorthodox switches" true
    (let e = find "Elmo" in
     e.Comparison.line_rate && not e.Comparison.unorthodox_switch);
  Alcotest.(check bool) "BIER network-size limited" true
    ((find "BIER [117]").Comparison.network_size_limit <> "none")

let tests =
  [
    Alcotest.test_case "scalability shapes" `Slow test_scalability_shapes;
    Alcotest.test_case "scalability deterministic" `Slow test_scalability_deterministic;
    Alcotest.test_case "P=1 disperses" `Slow test_p1_disperses;
    Alcotest.test_case "control-plane shapes" `Slow test_control_plane_shapes;
    Alcotest.test_case "ablation ladder" `Quick test_ablation_ladder;
    Alcotest.test_case "fig7 shapes" `Slow test_fig7_shapes;
    Alcotest.test_case "fig7 header construction" `Quick test_fig7_header_construction;
    Alcotest.test_case "comparison rows" `Quick test_comparison_rows;
  ]

let test_bisection_shapes () =
  match Bisection.run ~groups:2_000 () with
  | [ elmo; pinned ] ->
      Alcotest.(check int) "same flows measured" elmo.Bisection.flows
        pinned.Bisection.flows;
      Alcotest.(check bool) "flows exist" true (elmo.Bisection.flows > 0);
      Alcotest.(check bool) "per-flow ECMP spreads better than pinned trees"
        true
        (elmo.Bisection.link_load.Stats.stddev
        < pinned.Bisection.link_load.Stats.stddev);
      Alcotest.(check bool) "same total load" true
        (abs_float
           (elmo.Bisection.link_load.Stats.mean
           -. pinned.Bisection.link_load.Stats.mean)
        < 1e-9)
  | _ -> Alcotest.fail "expected two schemes"

let tests =
  tests @ [ Alcotest.test_case "bisection shapes" `Slow test_bisection_shapes ]

let test_strawman_appendix_numbers () =
  (* The appendix: ten 11-bit rules need three TCAM blocks and waste 99.5%
     of the 2,000 provisioned entries. *)
  let c = Strawman.appendix_example () in
  Alcotest.(check int) "three TCAM blocks" 3 c.Strawman.tcam_blocks;
  Alcotest.(check int) "ten entries used" 10 c.Strawman.tcam_entries_used;
  Alcotest.(check (float 0.01)) "99.5% wasted" 99.5 c.Strawman.waste_percent;
  Alcotest.(check int) "one stage per rule without TCAM" 10
    c.Strawman.sram_stages_needed;
  (* A real leaf section would need more stages than the chip has. *)
  let fabric = Topology.facebook_fabric () in
  let full = Strawman.leaf_layer_cost fabric Params.default in
  Alcotest.(check bool) "leaf section exceeds the 16-stage ingress" true
    (full.Strawman.sram_stages_needed > Strawman.rmt.Strawman.stages)

let tests =
  tests
  @ [ Alcotest.test_case "strawman appendix numbers" `Quick
        test_strawman_appendix_numbers ]
