(* The two-phase parallel batch path: Domain_pool, Srule_state transactions,
   and the bit-identical guarantee of Controller.install_all — the parallel
   encode must produce exactly the sequential encodings, occupancy and
   updates for every seed, parameter set and domain count. *)

(* {1 Domain_pool} *)

let test_pool_map_basic () =
  Domain_pool.with_pool 3 (fun pool ->
      let input = Array.init 100 Fun.id in
      let out = Domain_pool.map pool (fun x -> x * x) input in
      Alcotest.(check (array int)) "squares" (Array.map (fun x -> x * x) input) out)

let test_pool_map_empty () =
  Domain_pool.with_pool 2 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Domain_pool.map pool succ [||]))

let test_pool_chunk_larger_than_input () =
  Domain_pool.with_pool 2 (fun pool ->
      let out = Domain_pool.map ~chunk:1000 pool succ [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "one chunk" [| 2; 3; 4 |] out)

let test_pool_exception_propagates () =
  Domain_pool.with_pool 2 (fun pool ->
      Alcotest.check_raises "worker exception reaches caller"
        (Invalid_argument "boom") (fun () ->
          ignore
            (Domain_pool.map ~chunk:1 pool
               (fun x -> if x = 5 then invalid_arg "boom" else x)
               (Array.init 16 Fun.id)));
      (* The pool survives a failed map. *)
      let out = Domain_pool.map pool succ [| 1; 2 |] in
      Alcotest.(check (array int)) "pool reusable after failure" [| 2; 3 |] out)

let test_pool_create_invalid () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Domain_pool.create: need at least one domain")
    (fun () -> ignore (Domain_pool.create 0))

let test_pool_submit_after_shutdown () =
  let pool = Domain_pool.create 1 in
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Domain_pool: pool is shut down") (fun () ->
      Domain_pool.submit pool ignore)

(* {1 Srule_state transactions} *)

let topo =
  Topology.create ~pods:2 ~leaves_per_pod:2 ~spines_per_pod:2 ~hosts_per_leaf:4
    ~cores_per_plane:1

let test_txn_snapshot_isolation () =
  let s = Srule_state.create topo ~fmax:2 in
  let txn = Srule_state.txn (Srule_state.snapshot s) in
  Alcotest.(check bool) "granted" true (Srule_state.txn_reserve_leaf txn 0);
  Alcotest.(check bool) "live ledger untouched" true
    ((Srule_state.leaf_occupancy s).(0) = 0);
  Alcotest.(check int) "one reservation pending" 1 (Srule_state.txn_reserved txn);
  (match Srule_state.commit s txn with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "commit on unchanged ledger must succeed");
  Alcotest.(check int) "applied on commit" 1 (Srule_state.leaf_occupancy s).(0);
  Alcotest.(check bool) "invariants" true (Srule_state.check s)

let test_txn_conflict () =
  let s = Srule_state.create topo ~fmax:1 in
  let snap = Srule_state.snapshot s in
  let t1 = Srule_state.txn snap and t2 = Srule_state.txn snap in
  Alcotest.(check bool) "t1 granted" true (Srule_state.txn_reserve_leaf t1 0);
  Alcotest.(check bool) "t2 granted (same snapshot)" true
    (Srule_state.txn_reserve_leaf t2 0);
  (match Srule_state.commit s t1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first commit must succeed");
  (match Srule_state.commit s t2 with
  | Ok () -> Alcotest.fail "second commit must detect the lost slot"
  | Error site ->
      Alcotest.(check bool) "conflict on leaf 0" true
        (site = Srule_state.Leaf 0));
  Alcotest.(check int) "loser left no trace" 1 (Srule_state.leaf_occupancy s).(0);
  Alcotest.(check bool) "invariants" true (Srule_state.check s)

let test_txn_denial_must_match_too () =
  (* A txn that was *denied* capacity also conflicts if the live ledger
     would have granted it: the sequential encode would have branched
     differently. *)
  let s = Srule_state.create topo ~fmax:1 in
  Srule_state.reserve_leaf s 0;
  let snap = Srule_state.snapshot s in
  let txn = Srule_state.txn snap in
  Alcotest.(check bool) "denied on full snapshot" false
    (Srule_state.txn_reserve_leaf txn 0);
  Srule_state.release_leaf s 0;
  (match Srule_state.commit s txn with
  | Ok () -> Alcotest.fail "commit must notice the freed slot"
  | Error site ->
      Alcotest.(check bool) "divergence on leaf 0" true
        (site = Srule_state.Leaf 0))

let test_txn_double_commit () =
  let s = Srule_state.create topo ~fmax:1 in
  let txn = Srule_state.txn (Srule_state.snapshot s) in
  ignore (Srule_state.txn_reserve_pod txn 0);
  (match Srule_state.commit s txn with Ok () -> () | Error _ -> Alcotest.fail "ok");
  Alcotest.check_raises "double commit"
    (Invalid_argument "Srule_state.commit: transaction already committed")
    (fun () -> ignore (Srule_state.commit s txn))

(* {1 Controller.install_all: validation} *)

let params = Params.create ~fmax:50 ()

let test_install_all_rejects_duplicates () =
  let ctrl = Controller.create topo params in
  let m = [ (0, Controller.Both); (1, Controller.Receiver) ] in
  Alcotest.check_raises "duplicate group in batch"
    (Invalid_argument "Controller.install_all: group exists") (fun () ->
      ignore (Controller.install_all ctrl [ (1, m); (1, m) ]));
  Alcotest.(check int) "no partial state" 0 (Controller.group_count ctrl);
  ignore (Controller.add_group ctrl ~group:7 m);
  Alcotest.check_raises "group already installed"
    (Invalid_argument "Controller.install_all: group exists") (fun () ->
      ignore (Controller.install_all ctrl [ (7, m) ]));
  Alcotest.check_raises "duplicate member host"
    (Invalid_argument "Controller.install_all: duplicate member host")
    (fun () ->
      ignore
        (Controller.install_all ctrl
           [ (8, [ (0, Controller.Both); (0, Controller.Receiver) ]) ]));
  Alcotest.(check int) "only the add_group landed" 1 (Controller.group_count ctrl)

let test_install_all_empty_and_senders_only () =
  let ctrl = Controller.create topo params in
  let u = Controller.install_all ctrl [] in
  Alcotest.(check bool) "empty batch, no updates" true (u = Controller.no_updates);
  let u =
    Controller.install_all ctrl [ (3, [ (0, Controller.Sender) ]) ]
  in
  Alcotest.(check int) "sender-only group installed" 1
    (Controller.group_count ctrl);
  Alcotest.(check bool) "no receivers, no encoding" true
    (Controller.encoding ctrl ~group:3 = None);
  Alcotest.(check (list int)) "no switch updates" [] u.Controller.leaves

(* {1 Determinism matrix: parallel == sequential, bit for bit} *)

let matrix_topo =
  Topology.create ~pods:4 ~leaves_per_pod:4 ~spines_per_pod:2 ~hosts_per_leaf:8
    ~cores_per_plane:2

(* Loose: everything fits; exercises the pure p-rule paths. Tight: one
   p-rule per layer and a 3-entry group table; most groups fight over
   s-rule slots, so the batch commit must detect and re-encode conflicts. *)
let param_sets =
  [
    ("loose", Params.create ~r:6 ~header_budget:None (), false);
    ( "tight",
      Params.create ~hmax_leaf:1 ~hmax_spine:1 ~fmax:3 ~header_budget:None (),
      true );
  ]

let make_batch seed =
  let rng = Rng.create seed in
  (* Fixed tenant sizes: the default sampler's heavy tail (up to 5,000 VMs)
     can overflow this small fabric. *)
  let tenant_sizes = Array.init 15 (fun i -> 10 + (5 * i)) in
  let placement =
    Vm_placement.place rng matrix_topo ~strategy:(Vm_placement.Pack_up_to 12)
      ~host_capacity:20 ~tenant_sizes
  in
  let wrng = Rng.create (seed + 1) in
  let groups = Workload.generate wrng placement ~kind:Group_dist.Wve ~total_groups:150 in
  let role_rng = Rng.create (seed + 2) in
  let role () =
    match Rng.int role_rng 3 with
    | 0 -> Controller.Sender
    | 1 -> Controller.Receiver
    | _ -> Controller.Both
  in
  Array.to_list groups
  |> List.map (fun g ->
         ( g.Workload.group_id,
           Array.to_list g.Workload.member_hosts
           |> List.map (fun h -> (h, role ())) ))

let prule_eq (a : Prule.prule) (b : Prule.prule) =
  Bitmap.equal a.Prule.bitmap b.Prule.bitmap
  && a.Prule.switches = b.Prule.switches

let clustering_eq (a : Clustering.result) (b : Clustering.result) =
  List.length a.Clustering.prules = List.length b.Clustering.prules
  && List.for_all2 prule_eq a.Clustering.prules b.Clustering.prules
  && List.length a.Clustering.srules = List.length b.Clustering.srules
  && List.for_all2
       (fun (i, x) (j, y) -> i = j && Bitmap.equal x y)
       a.Clustering.srules b.Clustering.srules
  &&
  match (a.Clustering.default, b.Clustering.default) with
  | None, None -> true
  | Some (ids1, b1), Some (ids2, b2) -> ids1 = ids2 && Bitmap.equal b1 b2
  | _ -> false

let encoding_eq (a : Encoding.t) (b : Encoding.t) =
  clustering_eq a.Encoding.d_leaf b.Encoding.d_leaf
  && clustering_eq a.Encoding.d_spine b.Encoding.d_spine

(* The reference semantics: add_group per group in ascending group order. *)
let run_sequential params batch =
  let ctrl = Controller.create matrix_topo params in
  let sorted = List.sort (fun (g1, _) (g2, _) -> compare g1 g2) batch in
  let updates =
    List.fold_left
      (fun acc (group, members) ->
        Controller.merge_updates acc (Controller.add_group ctrl ~group members))
      Controller.no_updates sorted
  in
  (ctrl, updates)

let check_identical ~label ref_ctrl ref_updates params batch ~domains =
  let ctrl = Controller.create matrix_topo params in
  let updates = Controller.install_all ~domains ctrl batch in
  Alcotest.(check int)
    (label ^ ": group count")
    (Controller.group_count ref_ctrl)
    (Controller.group_count ctrl);
  Alcotest.(check bool) (label ^ ": merged updates") true (updates = ref_updates);
  List.iter
    (fun (group, _) ->
      match
        (Controller.encoding ref_ctrl ~group, Controller.encoding ctrl ~group)
      with
      | None, None -> ()
      | Some a, Some b ->
          if not (encoding_eq a b) then
            Alcotest.failf "%s: encoding of group %d diverges" label group
      | _ -> Alcotest.failf "%s: encoding presence of group %d diverges" label group)
    batch;
  let occ s = (Srule_state.leaf_occupancy s, Srule_state.spine_occupancy s) in
  Alcotest.(check bool)
    (label ^ ": s-rule occupancy")
    true
    (occ (Controller.srule_state ref_ctrl) = occ (Controller.srule_state ctrl));
  Alcotest.(check int)
    (label ^ ": total s-rules")
    (Srule_state.total_srules (Controller.srule_state ref_ctrl))
    (Srule_state.total_srules (Controller.srule_state ctrl));
  Alcotest.(check bool)
    (label ^ ": ledger invariants")
    true
    (Srule_state.check (Controller.srule_state ctrl));
  Controller.batch_conflicts ctrl

let test_determinism_matrix () =
  List.iter
    (fun seed ->
      let batch = make_batch seed in
      List.iter
        (fun (pname, params, expect_conflicts) ->
          let ref_ctrl, ref_updates = run_sequential params batch in
          let conflicts =
            List.map
              (fun domains ->
                let label = Printf.sprintf "seed %d/%s/d=%d" seed pname domains in
                check_identical ~label ref_ctrl ref_updates params batch ~domains)
              [ 1; 2; 4 ]
          in
          (* Conflict detection is a property of the batch, not of the
             domain count: every run replays the same probe logs. *)
          (match conflicts with
          | c :: rest ->
              List.iter
                (fun c' ->
                  Alcotest.(check int)
                    (Printf.sprintf "seed %d/%s: conflicts independent of domains"
                       seed pname)
                    c c')
                rest;
              if expect_conflicts then
                Alcotest.(check bool)
                  (Printf.sprintf
                     "seed %d/%s: tight capacity must exercise the conflict path"
                     seed pname)
                  true (c > 0)
          | [] -> assert false))
        param_sets)
    [ 11; 23; 37 ]

let tests =
  [
    Alcotest.test_case "pool: map" `Quick test_pool_map_basic;
    Alcotest.test_case "pool: empty input" `Quick test_pool_map_empty;
    Alcotest.test_case "pool: chunk > n" `Quick test_pool_chunk_larger_than_input;
    Alcotest.test_case "pool: exception propagation" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "pool: create 0 rejected" `Quick test_pool_create_invalid;
    Alcotest.test_case "pool: submit after shutdown" `Quick
      test_pool_submit_after_shutdown;
    Alcotest.test_case "txn: snapshot isolation" `Quick test_txn_snapshot_isolation;
    Alcotest.test_case "txn: commit conflict" `Quick test_txn_conflict;
    Alcotest.test_case "txn: denial must match too" `Quick
      test_txn_denial_must_match_too;
    Alcotest.test_case "txn: double commit" `Quick test_txn_double_commit;
    Alcotest.test_case "install_all: duplicate validation" `Quick
      test_install_all_rejects_duplicates;
    Alcotest.test_case "install_all: empty and sender-only" `Quick
      test_install_all_empty_and_senders_only;
    Alcotest.test_case "determinism: parallel == sequential (matrix)" `Slow
      test_determinism_matrix;
  ]
