(* The per-pod sharded commit path: the Shard scheduler's ordering, stats
   and failure discipline; the forced-conflict cross-shard matrix proving
   the sharded controller bit-identical to the sequential one (occupancy,
   conflict counts, and pointer-identical delivery predicates); shard-scoped
   crash recovery; the Domains helper; and the verify-layer predicate
   cache. *)

(* {1 Shard scheduler} *)

let mk gid pods run = { Shard.gid; pods; run }

let test_shard_stats_attribution () =
  (* Cross-pod tasks are attributed to their lowest pod, so shard totals
     count every task exactly once. *)
  let stats =
    Shard.run ~pods:2
      [|
        mk 0 [ 0 ] (fun () -> false);
        mk 1 [ 0; 1 ] (fun () -> true);
        mk 2 [ 1 ] (fun () -> false);
      |]
  in
  Alcotest.(check int) "pod0 committed" 2 stats.(0).Shard.committed;
  Alcotest.(check int) "pod0 conflicts" 1 stats.(0).Shard.conflicts;
  Alcotest.(check int) "pod0 single" 1 stats.(0).Shard.single_pod;
  Alcotest.(check int) "pod0 cross" 1 stats.(0).Shard.cross_pod;
  Alcotest.(check int) "pod1 committed" 1 stats.(1).Shard.committed;
  Alcotest.(check int) "pod1 conflicts" 0 stats.(1).Shard.conflicts;
  Alcotest.(check int) "pod1 single" 1 stats.(1).Shard.single_pod;
  Alcotest.(check int) "pod1 cross" 0 stats.(1).Shard.cross_pod

let test_shard_per_pod_gid_order () =
  (* Within each pod's queue, tasks must execute in ascending gid order —
     the property the bit-identity argument rests on. Checked inline and
     under a real pool. *)
  let check pool =
    let m = Mutex.create () in
    let log = ref [] in
    let tasks =
      Array.init 24 (fun i ->
          mk i
            [ i mod 3 ]
            (fun () ->
              Mutex.lock m;
              log := (i mod 3, i) :: !log;
              Mutex.unlock m;
              false))
    in
    let stats = Shard.run ?pool ~pods:3 tasks in
    let log = List.rev !log in
    Alcotest.(check int) "every task ran once" 24 (List.length log);
    for p = 0 to 2 do
      let gids = List.filter_map (fun (q, g) -> if q = p then Some g else None) log in
      let sorted = List.sort Int.compare gids in
      Alcotest.(check (list int))
        (Printf.sprintf "pod %d runs in gid order" p)
        sorted gids;
      Alcotest.(check int)
        (Printf.sprintf "pod %d committed" p)
        8 stats.(p).Shard.committed
    done
  in
  check None;
  Domain_pool.with_pool 4 (fun pool -> check (Some pool))

let test_shard_mutual_exclusion () =
  (* Tasks bump a plain (non-atomic) per-pod counter for each of their
     pods; the ownership discipline must make that race-free, so the final
     counts equal the queue lengths exactly. *)
  Domain_pool.with_pool 4 (fun pool ->
      let npods = 4 in
      let counters = Array.make npods 0 in
      let expected = Array.make npods 0 in
      let rng = Rng.create 42 in
      let tasks =
        Array.init 200 (fun i ->
            let a = Rng.int rng npods in
            let pods =
              if Rng.int rng 3 = 0 then
                List.sort_uniq Int.compare [ a; (a + 1) mod npods ]
              else [ a ]
            in
            List.iter (fun p -> expected.(p) <- expected.(p) + 1) pods;
            mk i pods (fun () ->
                List.iter (fun p -> counters.(p) <- counters.(p) + 1) pods;
                false))
      in
      ignore (Shard.run ~pool ~pods:npods tasks);
      Alcotest.(check (array int)) "no lost updates" expected counters)

let test_shard_validation () =
  Alcotest.check_raises "no pods"
    (Invalid_argument "Shard.run: need at least one pod") (fun () ->
      ignore (Shard.run ~pods:0 [||]));
  Alcotest.check_raises "task with no pods"
    (Invalid_argument "Shard.run: task with no pods") (fun () ->
      ignore (Shard.run ~pods:1 [| mk 0 [] (fun () -> false) |]));
  Alcotest.check_raises "non-ascending gids"
    (Invalid_argument "Shard.run: tasks must be in strictly ascending gid order")
    (fun () ->
      ignore
        (Shard.run ~pods:1
           [| mk 1 [ 0 ] (fun () -> false); mk 1 [ 0 ] (fun () -> false) |]))

let test_shard_lowest_gid_failure () =
  (* Two tasks raise; the lowest-gid exception must surface regardless of
     interleaving, and the remaining tasks still drain. *)
  let ran = ref 0 in
  let count () = incr ran; false in
  let tasks =
    [|
      mk 1 [ 0 ] count;
      mk 2 [ 0 ] (fun () -> failwith "first"); (* elmo-lint: allow exception-discipline — test fixture *)
      mk 3 [ 1 ] (fun () -> failwith "second"); (* elmo-lint: allow exception-discipline — test fixture *)
      mk 4 [ 1 ] count;
    |]
  in
  Alcotest.check_raises "lowest gid wins" (Failure "first") (fun () ->
      ignore (Shard.run ~pods:2 tasks));
  Alcotest.(check int) "surviving tasks drained" 2 !ran

(* {1 Forced-conflict cross-shard matrix} *)

let matrix_topo =
  Topology.create ~pods:4 ~leaves_per_pod:4 ~spines_per_pod:2 ~hosts_per_leaf:8
    ~cores_per_plane:2

(* One p-rule per layer and a 3-entry group table: with every group spanning
   2-3 pods, the batch must take the cross-shard path and fight over s-rule
   slots, exercising conflict re-encodes under concurrent commit. *)
let tight_params =
  Params.create ~hmax_leaf:1 ~hmax_spine:1 ~fmax:3 ~header_budget:None ()

let pod_hosts =
  Array.init matrix_topo.Topology.pods (fun p ->
      List.init (Topology.num_hosts matrix_topo) Fun.id
      |> List.filter (fun h -> Topology.pod_of_host matrix_topo h = p)
      |> Array.of_list)

(* Every group spans 2 or 3 pods with 2-3 hosts in each. *)
let make_cross_batch seed =
  let rng = Rng.create seed in
  List.init 60 (fun i ->
      let npods = 2 + Rng.int rng 2 in
      let first = Rng.int rng matrix_topo.Topology.pods in
      let pods =
        List.init npods (fun k -> (first + k) mod matrix_topo.Topology.pods)
      in
      let members =
        List.concat_map
          (fun p ->
            let hosts = pod_hosts.(p) in
            List.init
              (2 + Rng.int rng 2)
              (fun _ -> hosts.(Rng.int rng (Array.length hosts))))
          pods
        |> List.sort_uniq Int.compare
        |> List.map (fun h -> (h, Controller.Both))
      in
      (i + 1, members))

let run_sequential batch =
  let ctrl = Controller.create matrix_topo tight_params in
  List.iter
    (fun (group, members) -> ignore (Controller.add_group ctrl ~group members))
    batch;
  ctrl

let test_cross_shard_conflict_matrix () =
  List.iter
    (fun seed ->
      let batch = make_cross_batch seed in
      let seq_ctrl = run_sequential batch in
      let seq_occ s =
        (Srule_state.leaf_occupancy s, Srule_state.spine_occupancy s)
      in
      let ref_occ = seq_occ (Controller.srule_state seq_ctrl) in
      let seq_cfg = Controller.installed_config seq_ctrl in
      let conflicts =
        List.map
          (fun domains ->
            let label = Printf.sprintf "seed %d/d=%d" seed domains in
            let ctrl = Controller.create matrix_topo tight_params in
            ignore (Controller.install_all ~domains ctrl batch);
            Alcotest.(check bool)
              (label ^ ": occupancy bit-identical")
              true
              (seq_occ (Controller.srule_state ctrl) = ref_occ);
            (* Pointer-identical delivery predicates: both configurations
               compile into one hash-consing context, where equivalence is
               physical equality. *)
            let ctx = Pred.create_ctx () in
            let cfg = Controller.installed_config ctrl in
            List.iter
              (fun (group, _) ->
                if
                  not
                    (Verify.equiv
                       (Verify.compile ctx seq_cfg ~group)
                       (Verify.compile ctx cfg ~group))
                then
                  Alcotest.failf "%s: predicate of group %d diverges" label
                    group)
              batch;
            (* Shard accounting: every group counted exactly once, and this
               batch is cross-pod by construction. *)
            let shards = Controller.shard_stats ctrl in
            let total f = List.fold_left (fun a s -> a + f s) 0 shards in
            Alcotest.(check int)
              (label ^ ": every group committed on some shard")
              (List.length batch)
              (total (fun s -> s.Controller.shard_groups));
            Alcotest.(check int)
              (label ^ ": single+cross = committed")
              (total (fun s -> s.Controller.shard_groups))
              (total (fun s ->
                   s.Controller.shard_single_pod + s.Controller.shard_cross_pod));
            Alcotest.(check bool)
              (label ^ ": cross-pod groups present")
              true
              (total (fun s -> s.Controller.shard_cross_pod) > 0);
            Controller.batch_conflicts ctrl)
          [ 1; 2; 4 ]
      in
      match conflicts with
      | c :: rest ->
          List.iter
            (fun c' ->
              Alcotest.(check int)
                (Printf.sprintf "seed %d: conflicts independent of domains" seed)
                c c')
            rest;
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: tight capacity forces conflicts" seed)
            true (c > 0)
      | [] -> assert false)
    [ 5; 19 ]

(* {1 Shard-scoped crash recovery} *)

let small_topo =
  Topology.create ~pods:2 ~leaves_per_pod:2 ~spines_per_pod:2 ~hosts_per_leaf:4
    ~cores_per_plane:1

let loose_params = Params.create ~fmax:50 ()

let host_in pod i =
  List.init (Topology.num_hosts small_topo) Fun.id
  |> List.filter (fun h -> Topology.pod_of_host small_topo h = pod)
  |> fun hs -> List.nth hs i

let members_of ctrl group =
  match Controller.members ctrl ~group with
  | ms -> Some (List.sort compare ms)
  | exception Not_found -> None

let test_recover_shard_skips_disjoint_pods () =
  let replica = Replica.create ~snapshot_every:1000 small_topo loose_params in
  let add group hosts =
    Replica.apply replica
      (Journal.Add_group
         { group; members = List.map (fun h -> (h, Controller.Both)) hosts })
  in
  add 1 [ host_in 0 0; host_in 0 1 ];
  add 2 [ host_in 1 0; host_in 1 1 ];
  Replica.checkpoint replica;
  (* Post-checkpoint: churn in pod 0, plus pod-1-only ops that a pod-0
     shard recovery must be free to skip. *)
  Replica.apply replica
    (Journal.Join { group = 1; host = host_in 0 2; role = Controller.Both });
  add 3 [ host_in 1 2; host_in 1 3 ];
  Replica.apply replica (Journal.Leave { group = 2; host = host_in 1 0 });
  let full = Replica.recovered replica in
  let shard0 = Replica.recover_shard replica ~pod:0 in
  Alcotest.(check bool)
    "component group bit-identical to full recovery" true
    (members_of full 1 = members_of shard0 1);
  (* The component group's delivery predicate matches exactly. *)
  let ctx = Pred.create_ctx () in
  Alcotest.(check bool)
    "component group predicate identical" true
    (Verify.equiv
       (Verify.compile ctx (Controller.installed_config full) ~group:1)
       (Verify.compile ctx (Controller.installed_config shard0) ~group:1));
  Alcotest.(check bool)
    "out-of-component group added post-checkpoint is skipped" true
    (members_of shard0 3 = None && members_of full 3 <> None);
  Alcotest.(check bool)
    "out-of-component leave is skipped (checkpoint state kept)" true
    (members_of shard0 2 <> members_of full 2)

let test_recover_shard_transitive_component () =
  (* A cross-pod group op connects the pods, so recovery from pod 0 must
     transitively pull in the pod-1 ops too. *)
  let replica = Replica.create ~snapshot_every:1000 small_topo loose_params in
  let add group hosts =
    Replica.apply replica
      (Journal.Add_group
         { group; members = List.map (fun h -> (h, Controller.Both)) hosts })
  in
  add 1 [ host_in 0 0 ];
  Replica.checkpoint replica;
  add 4 [ host_in 0 1; host_in 1 1 ];
  (* spans both pods *)
  add 3 [ host_in 1 2; host_in 1 3 ];
  let full = Replica.recovered replica in
  let shard0 = Replica.recover_shard replica ~pod:0 in
  List.iter
    (fun group ->
      Alcotest.(check bool)
        (Printf.sprintf "group %d identical under transitive recovery" group)
        true
        (members_of full group = members_of shard0 group))
    [ 1; 3; 4 ]

(* {1 Domains helper} *)

let test_domains_clamp () =
  Alcotest.(check int) "clamp 0" 1 (Domains.clamp 0);
  Alcotest.(check int) "clamp -5" 1 (Domains.clamp (-5));
  Alcotest.(check int) "clamp 1" 1 (Domains.clamp 1);
  Alcotest.(check bool) "recommended positive" true (Domains.recommended () > 0)

let test_domains_from_env () =
  Unix.putenv "ELMO_DOMAINS" "2";
  Alcotest.(check int) "parses env" 2 (Domains.from_env 1);
  Unix.putenv "ELMO_DOMAINS" "bogus";
  Alcotest.(check int) "malformed falls back" 3 (Domains.from_env 3);
  Unix.putenv "ELMO_DOMAINS" "-1";
  Alcotest.(check int) "non-positive falls back" 2 (Domains.from_env 2);
  Unix.putenv "ELMO_DOMAINS" "";
  Alcotest.(check int) "empty falls back" 4 (Domains.from_env 4)

(* {1 Verify-layer predicate cache} *)

let test_verify_cache_incremental () =
  let ctrl = Controller.create small_topo loose_params in
  List.iter
    (fun group ->
      ignore
        (Controller.add_group ctrl ~group
           [ (host_in 0 group, Controller.Both); (host_in 1 group, Controller.Both) ]))
    [ 1; 2; 3 ];
  let cache = Verify.create_cache () in
  (match Verify.check_controller_cached cache ctrl with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "healthy controller must verify");
  Alcotest.(check (pair int int)) "cold: all misses" (0, 3)
    (Verify.cache_stats cache);
  (match Verify.check_controller_cached cache ctrl with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "re-check must pass");
  Alcotest.(check (pair int int)) "warm: all hits" (3, 3)
    (Verify.cache_stats cache);
  (* A membership change dirties exactly one group. *)
  ignore (Controller.join ctrl ~group:2 ~host:(host_in 0 3) ~role:Controller.Both);
  (match Verify.check_controller_cached cache ctrl with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "post-churn check must pass");
  Alcotest.(check (pair int int)) "one recompile after churn" (5, 4)
    (Verify.cache_stats cache);
  (* A removed group drops out of both the config and the cache. *)
  ignore (Controller.remove_group ctrl ~group:3);
  (match Verify.check_controller_cached cache ctrl with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "check after removal must pass");
  Alcotest.(check (pair int int)) "remaining groups all hit" (7, 4)
    (Verify.cache_stats cache);
  Alcotest.(check bool) "removed group evicted" true
    (Verify.cached_preds cache 3 = None)

let tests =
  [
    Alcotest.test_case "shard: stats attribution" `Quick
      test_shard_stats_attribution;
    Alcotest.test_case "shard: per-pod gid order" `Quick
      test_shard_per_pod_gid_order;
    Alcotest.test_case "shard: mutual exclusion" `Quick
      test_shard_mutual_exclusion;
    Alcotest.test_case "shard: validation" `Quick test_shard_validation;
    Alcotest.test_case "shard: lowest-gid failure wins" `Quick
      test_shard_lowest_gid_failure;
    Alcotest.test_case "cross-shard: forced-conflict matrix" `Slow
      test_cross_shard_conflict_matrix;
    Alcotest.test_case "recovery: shard skips disjoint pods" `Quick
      test_recover_shard_skips_disjoint_pods;
    Alcotest.test_case "recovery: transitive pod component" `Quick
      test_recover_shard_transitive_component;
    Alcotest.test_case "domains: clamp" `Quick test_domains_clamp;
    Alcotest.test_case "domains: from_env" `Quick test_domains_from_env;
    Alcotest.test_case "verify cache: incremental hits" `Quick
      test_verify_cache_incremental;
  ]
