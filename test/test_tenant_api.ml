let topo = Topology.running_example ()

let world () =
  let rng = Rng.create 3 in
  let placement =
    Vm_placement.place rng topo ~strategy:(Vm_placement.Pack_up_to 2)
      ~host_capacity:20 ~tenant_sizes:[| 12; 10 |]
  in
  let ctrl = Controller.create topo Params.default in
  (Tenant_api.create ctrl placement ~quota_per_tenant:3, ctrl, placement)

let ip = 0xEF010101l (* 239.1.1.1 *)

let ok = function Ok v -> v | Error e -> Alcotest.failf "%a" Tenant_api.pp_error e

let err expected = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> Alcotest.(check bool) "error kind" true (e = expected)

let test_address_space_isolation () =
  let api, ctrl, placement = world () in
  (* Both tenants pick the SAME multicast address: two disjoint groups. *)
  ok (Tenant_api.create_group api ~tenant:0 ~address:ip);
  ok (Tenant_api.create_group api ~tenant:1 ~address:ip);
  let id0 = Option.get (Tenant_api.group_id api ~tenant:0 ~address:ip) in
  let id1 = Option.get (Tenant_api.group_id api ~tenant:1 ~address:ip) in
  Alcotest.(check bool) "distinct wire identifiers" true (id0 <> id1);
  (* Members stay isolated per tenant. *)
  ignore (ok (Tenant_api.join api ~tenant:0 ~address:ip ~vm:0 ~role:Controller.Both));
  ignore (ok (Tenant_api.join api ~tenant:0 ~address:ip ~vm:1 ~role:Controller.Receiver));
  ignore (ok (Tenant_api.join api ~tenant:1 ~address:ip ~vm:0 ~role:Controller.Both));
  Alcotest.(check int) "tenant 0 membership" 2
    (List.length (Controller.members ctrl ~group:id0));
  Alcotest.(check int) "tenant 1 membership" 1
    (List.length (Controller.members ctrl ~group:id1));
  (* The member host really is the tenant's VM host. *)
  let host0 = placement.Vm_placement.tenants.(0).Vm_placement.vm_hosts.(0) in
  Alcotest.(check bool) "vm resolved to its host" true
    (List.mem_assoc host0 (Controller.members ctrl ~group:id0))

let test_quota () =
  let api, _, _ = world () in
  List.iteri
    (fun i addr ->
      ignore i;
      ok (Tenant_api.create_group api ~tenant:0 ~address:addr))
    [ 0xEF000001l; 0xEF000002l; 0xEF000003l ];
  err Tenant_api.Quota_exceeded
    (Tenant_api.create_group api ~tenant:0 ~address:0xEF000004l);
  (* Deleting frees quota. *)
  ok (Tenant_api.delete_group api ~tenant:0 ~address:0xEF000001l);
  ok (Tenant_api.create_group api ~tenant:0 ~address:0xEF000004l);
  Alcotest.(check (list int32)) "tenant addresses"
    [ 0xEF000002l; 0xEF000003l; 0xEF000004l ]
    (Tenant_api.groups_of_tenant api 0)

let test_validation () =
  let api, _, _ = world () in
  err Tenant_api.Not_multicast_address
    (Tenant_api.create_group api ~tenant:0 ~address:0x0A000001l);
  err Tenant_api.No_such_tenant (Tenant_api.create_group api ~tenant:9 ~address:ip);
  err Tenant_api.No_such_group
    (Tenant_api.join api ~tenant:0 ~address:ip ~vm:0 ~role:Controller.Both);
  ok (Tenant_api.create_group api ~tenant:0 ~address:ip);
  err Tenant_api.No_such_vm
    (Tenant_api.join api ~tenant:0 ~address:ip ~vm:99 ~role:Controller.Both);
  ignore (ok (Tenant_api.join api ~tenant:0 ~address:ip ~vm:0 ~role:Controller.Both));
  err Tenant_api.Already_member
    (Tenant_api.join api ~tenant:0 ~address:ip ~vm:0 ~role:Controller.Both);
  err Tenant_api.Not_a_member (Tenant_api.leave api ~tenant:0 ~address:ip ~vm:1);
  err Tenant_api.Group_exists (Tenant_api.create_group api ~tenant:0 ~address:ip)

let test_end_to_end_delivery () =
  let rng = Rng.create 4 in
  let placement =
    Vm_placement.place rng topo ~strategy:(Vm_placement.Pack_up_to 2)
      ~host_capacity:20 ~tenant_sizes:[| 12; 10 |]
  in
  let fabric = Fabric.create topo in
  let hooks = Fabric.controller_hooks fabric in
  let ctrl = Controller.create ~fabric_hooks:hooks topo Params.default in
  let api = Tenant_api.create ctrl placement ~quota_per_tenant:10 in
  ok (Tenant_api.create_group api ~tenant:0 ~address:ip);
  List.iter
    (fun vm ->
      ignore (ok (Tenant_api.join api ~tenant:0 ~address:ip ~vm ~role:Controller.Both)))
    [ 0; 1; 2; 3; 4 ];
  let id = Option.get (Tenant_api.group_id api ~tenant:0 ~address:ip) in
  let enc = Option.get (Controller.encoding ctrl ~group:id) in
  let sender = placement.Vm_placement.tenants.(0).Vm_placement.vm_hosts.(0) in
  let header = Option.get (Controller.header ctrl ~group:id ~sender) in
  let report = Fabric.inject fabric ~sender ~group:id ~header ~payload:64 in
  Alcotest.(check bool) "API-built group delivers" true
    (Fabric.deliveries_correct report ~tree:enc.Encoding.tree ~sender)

let tests =
  [
    Alcotest.test_case "address-space isolation" `Quick test_address_space_isolation;
    Alcotest.test_case "quota" `Quick test_quota;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "end-to-end delivery" `Quick test_end_to_end_delivery;
  ]
