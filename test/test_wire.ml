(* Durable wire format: byte-level framing round-trips, torn-write
   truncation semantics, the crash/corruption matrix (every recovery is
   predicate-pointer-identical to a never-crashed twin or an explicit
   error — never a silently wrong configuration, never an uncaught
   exception), fenced supervisor failover, and hostile-header hardening
   of the packet codec. *)

let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf

let tight_params =
  Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None ~fmax:6
    ~install_retries:4 ~install_backoff_us:8 ()

let wide_hosts =
  List.concat_map (fun l -> [ l * h; (l * h) + 1 ]) [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let members_both hosts = List.map (fun x -> (x, Controller.Both)) hosts

(* {1 Record / entry codec} *)

let all_ops =
  [
    Journal.Add_group
      { group = 3; members = [ (0, Controller.Sender); (5, Controller.Both) ] };
    Journal.Remove_group { group = 3 };
    Journal.Join { group = 0; host = 7; role = Controller.Receiver };
    Journal.Leave { group = 0; host = 7 };
    Journal.Fail_spine 2;
    Journal.Recover_spine 2;
    Journal.Fail_core 0;
    Journal.Recover_core 0;
    Journal.Fail_link { leaf = 3; plane = 1 };
    Journal.Recover_link { leaf = 3; plane = 1 };
  ]

let test_entry_codec_round_trip () =
  List.iteri
    (fun i op ->
      List.iter
        (fun pods ->
          let e = { Journal.e_op = op; e_pods = pods } in
          let w = Byteio.Writer.create () in
          Journal.write_entry w e;
          let r = Byteio.Reader.of_bytes (Byteio.Writer.to_bytes w) in
          let e' = Journal.read_entry ~topo r in
          Alcotest.(check bool)
            (Printf.sprintf "op %d round-trips" i)
            true (e = e');
          Alcotest.(check int) "fully consumed" 0 (Byteio.Reader.remaining r))
        [ None; Some []; Some [ 0; 2 ] ])
    all_ops

let test_entry_codec_rejects_out_of_range () =
  (* A structurally intact entry whose ids exceed the topology must be
     rejected at decode time, not blow up controller replay later. *)
  let w = Byteio.Writer.create () in
  Journal.write_entry w
    {
      Journal.e_op = Journal.Fail_spine (Topology.num_spines topo + 3);
      e_pods = None;
    };
  let r = Byteio.Reader.of_bytes (Byteio.Writer.to_bytes w) in
  Alcotest.check_raises "spine id out of range" Byteio.Reader.Corrupt
    (fun () -> ignore (Journal.read_entry ~topo r))

(* {1 Snapshot codec} *)

let seeded_replica ?(durable = true) ?snapshot_every ?fabric_hooks
    ?observer () =
  let replica =
    Replica.create ?snapshot_every ?fabric_hooks ~durable ?observer topo
      tight_params
  in
  Replica.apply replica
    (Journal.Add_group { group = 0; members = members_both wide_hosts });
  Replica.apply replica
    (Journal.Add_group
       { group = 1; members = members_both [ 0; 1; h; h + 1 ] });
  replica

let test_snapshot_codec_round_trip () =
  let replica = seeded_replica () in
  Replica.apply replica (Journal.Fail_spine 1);
  Replica.apply replica
    (Journal.Join { group = 1; host = (2 * h) + 1; role = Controller.Both });
  Replica.checkpoint replica;
  let w = Byteio.Writer.create () in
  Controller.write_snapshot w (Controller.snapshot (Replica.controller replica));
  let bytes = Byteio.Writer.to_bytes w in
  let r = Byteio.Reader.of_bytes bytes in
  let snap = Controller.read_snapshot r in
  Alcotest.(check int) "fully consumed" 0 (Byteio.Reader.remaining r);
  let restored = Controller.restore snap in
  Alcotest.(check bool) "bit-identical controller state" true
    (Test_fault.same_controller_state restored (Replica.controller replica)
       ~groups:2);
  (* Deterministic bytes: snapshot of the restored controller re-serializes
     to the identical byte sequence (aliasing pool included). *)
  let w2 = Byteio.Writer.create () in
  Controller.write_snapshot w2 (Controller.snapshot restored);
  Alcotest.(check bool) "canonical bytes" true
    (Bytes.equal bytes (Byteio.Writer.to_bytes w2))

let test_snapshot_codec_rejects_bit_flips () =
  (* Every single-bit flip of a serialized snapshot either still decodes
     (flips in dead padding) or raises Corrupt — never any other
     exception. Sampled positions keep the test fast. *)
  let replica = seeded_replica () in
  let w = Byteio.Writer.create () in
  Controller.write_snapshot w (Controller.snapshot (Replica.controller replica));
  let bytes = Byteio.Writer.to_bytes w in
  let rng = Rng.create 77 in
  let corrupt = ref 0 and survived = ref 0 in
  for _ = 1 to 300 do
    let bit = Rng.int rng (8 * Bytes.length bytes) in
    let mutated = Wire.flip_bit bytes bit in
    match Controller.read_snapshot (Byteio.Reader.of_bytes mutated) with
    | (_ : Controller.snapshot) -> incr survived
    | exception Byteio.Reader.Corrupt -> incr corrupt
    | exception exn ->
        Alcotest.failf "bit %d: unexpected exception %s" bit
          (Printexc.to_string exn)
  done;
  Alcotest.(check bool) "flips are mostly caught" true (!corrupt > !survived)

(* {1 Wire framing edge cases} *)

let test_empty_log () =
  let w = Wire.create () in
  match Wire.load (Wire.contents w) with
  | Error e -> Alcotest.failf "empty log failed to load: %s" e
  | Ok l ->
      Alcotest.(check int) "no records" 0 (List.length l.Wire.l_records);
      Alcotest.(check bool) "no snapshot" true (l.Wire.l_snapshot = None);
      Alcotest.(check bool) "no truncation" true (l.Wire.l_truncated_at = None)

let test_bad_magic () =
  (match Wire.load (Bytes.of_string "ELMOWAL2") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong magic accepted");
  (match Wire.load (Bytes.of_string "ELMO") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short magic accepted");
  match Wire.load (Wire.flip_bit (Wire.contents (Wire.create ())) 3) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flipped magic accepted"

let test_snapshot_only_load () =
  (* A durable replica's genesis log: one snapshot, no ops. *)
  let replica =
    Replica.create ~durable:true topo tight_params
  in
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  match Wire.load bytes with
  | Error e -> Alcotest.fail e
  | Ok l ->
      Alcotest.(check int) "one record" 1 (List.length l.Wire.l_records);
      Alcotest.(check bool) "snapshot present" true
        (Option.is_some l.Wire.l_snapshot);
      Alcotest.(check int) "no base ops" 0 l.Wire.l_replay_base_ops;
      Alcotest.(check int) "no suffix" 0 (List.length l.Wire.l_suffix);
      Alcotest.(check bool) "no truncation" true (l.Wire.l_truncated_at = None)

let test_truncation_at_record_boundary () =
  (* A cut exactly on a record boundary is indistinguishable from a log
     that simply ends there: fewer records, no truncation report. *)
  let replica = seeded_replica () in
  Replica.apply replica (Journal.Fail_spine 0);
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  let full = Result.get_ok (Wire.load bytes) in
  let nrecs = List.length full.Wire.l_records in
  Alcotest.(check bool) "several records" true (nrecs >= 3);
  let last = List.nth full.Wire.l_records (nrecs - 1) in
  let boundary = last.Wire.r_off in
  let cut = Result.get_ok (Wire.load (Wire.truncate_at bytes boundary)) in
  Alcotest.(check int) "one record fewer" (nrecs - 1)
    (List.length cut.Wire.l_records);
  Alcotest.(check bool) "clean end, no truncation flag" true
    (cut.Wire.l_truncated_at = None);
  Alcotest.(check int) "one suffix op fewer" 2 (List.length cut.Wire.l_suffix)

let test_torn_header_truncates () =
  let replica = seeded_replica () in
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  let full = Result.get_ok (Wire.load bytes) in
  let nrecs = List.length full.Wire.l_records in
  let last = List.nth full.Wire.l_records (nrecs - 1) in
  (* Cut 5 bytes into the last record's header: a torn write. *)
  let torn = Result.get_ok (Wire.load (Wire.truncate_at bytes (last.Wire.r_off + 5))) in
  Alcotest.(check int) "last record dropped" (nrecs - 1)
    (List.length torn.Wire.l_records);
  Alcotest.(check bool) "truncation reported at the torn record" true
    (torn.Wire.l_truncated_at = Some last.Wire.r_off)

let test_corrupt_length_field_truncates () =
  (* Flipping a bit of the length prefix shifts the CRC window, so the
     record fails its checksum (1-in-2^32 collisions aside) and the log
     truncates there rather than mis-framing everything after it. *)
  let replica = seeded_replica () in
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  let full = Result.get_ok (Wire.load bytes) in
  let second = List.nth full.Wire.l_records 1 in
  let mutated = Wire.flip_bit bytes (8 * second.Wire.r_off) in
  let l = Result.get_ok (Wire.load mutated) in
  Alcotest.(check int) "only the first record survives" 1
    (List.length l.Wire.l_records);
  Alcotest.(check bool) "truncation reported" true
    (l.Wire.l_truncated_at = Some second.Wire.r_off)

let test_sequence_gap_truncates () =
  (* Duplicate the last record's bytes: the copy re-uses its seq, which is
     no longer prev + 1 — the scan must stop before it. *)
  let replica = seeded_replica () in
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  let full = Result.get_ok (Wire.load bytes) in
  let nrecs = List.length full.Wire.l_records in
  let last = List.nth full.Wire.l_records (nrecs - 1) in
  let rec_len = Bytes.length bytes - last.Wire.r_off in
  let doubled = Bytes.create (Bytes.length bytes + rec_len) in
  Bytes.blit bytes 0 doubled 0 (Bytes.length bytes);
  Bytes.blit bytes last.Wire.r_off doubled (Bytes.length bytes) rec_len;
  let l = Result.get_ok (Wire.load doubled) in
  Alcotest.(check int) "duplicate rejected" nrecs
    (List.length l.Wire.l_records);
  Alcotest.(check bool) "truncation reported at the duplicate" true
    (l.Wire.l_truncated_at = Some (Bytes.length bytes))

let test_snapshot_fallback_on_forged_payload () =
  (* A snapshot record whose framing is valid but whose payload is garbage
     (CRC recomputed over the forged bytes) must fall back to the previous
     good snapshot and still replay every op record. *)
  let replica = seeded_replica ~snapshot_every:2 () in
  List.iter
    (fun op -> Replica.apply replica op)
    [
      Journal.Fail_spine 1;
      Journal.Join { group = 1; host = (3 * h) + 1; role = Controller.Both };
      Journal.Leave { group = 0; host = 1 };
      Journal.Fail_link { leaf = 2; plane = 0 };
    ];
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  let full = Result.get_ok (Wire.load bytes) in
  let snapshots =
    List.filter
      (fun r -> match r.Wire.r_kind with Wire.Snapshot -> true | Wire.Op -> false)
      full.Wire.l_records
  in
  Alcotest.(check bool) "log rolled several snapshots" true
    (List.length snapshots >= 2);
  let victim = List.nth snapshots (List.length snapshots - 1) in
  let forged = Bytes.copy bytes in
  (* Zero 64 payload bytes, then recompute the record CRC so the framing
     still checks out. *)
  let payload_off = victim.Wire.r_off + 21 in
  Bytes.fill forged payload_off (min 64 victim.Wire.r_payload_len) '\000';
  let crc =
    Byteio.crc32 forged ~pos:(victim.Wire.r_off + 8)
      ~len:(13 + victim.Wire.r_payload_len)
  in
  Bytes.set_int32_le forged (victim.Wire.r_off + 4) (Int32.of_int crc);
  let l = Result.get_ok (Wire.load forged) in
  Alcotest.(check int) "one snapshot dropped" 1 l.Wire.l_dropped_snapshots;
  Alcotest.(check bool) "recovered from an older snapshot" true
    (Option.is_some l.Wire.l_snapshot);
  Alcotest.(check bool) "no truncation: every op record survives" true
    (l.Wire.l_truncated_at = None);
  match Replica.of_wire l with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      Alcotest.(check bool) "fallback recovery is bit-identical" true
        (Test_fault.same_controller_state (Replica.controller rep)
           (Replica.controller replica) ~groups:2)

(* {1 Crash / corruption matrix}

   One durable run, then >= 200 byte-level crash points: torn tails at
   sampled offsets and single-bit flips at sampled positions. Every load +
   recovery must end in exactly one of two outcomes: (a) a controller
   whose per-group delivery predicates are pointer-identical to the
   never-crashed twin's at the surviving op count, or (b) an explicit
   error (no decodable snapshot / bad magic). Anything else — a wrong
   configuration accepted silently, an exception escaping — fails. *)

let matrix_groups = 6

let build_matrix_run () =
  let rng = Rng.create 20260808 in
  let replica =
    Replica.create ~snapshot_every:24 ~durable:true topo tight_params
  in
  let ctx = Pred.create_ctx () in
  (* The "never-crashed twin" is the live replica itself: after each op we
     compile every group's delivery predicate into the shared ctx, so a
     recovery landing on j surviving ops must be pointer-identical to the
     state recorded at index j. *)
  let preds_of () =
    let cfg = Replica.installed_config replica in
    Array.init matrix_groups (fun g -> Verify.compile ctx cfg ~group:g)
  in
  let members = Array.make matrix_groups [] in
  members.(0) <- wide_hosts;
  members.(1) <- [ 0; 1; h; h + 1 ];
  let hosts = Array.init (Topology.num_hosts topo) Fun.id in
  for g = 2 to matrix_groups - 1 do
    members.(g) <- Array.to_list (Rng.sample_without_replacement rng 6 hosts)
  done;
  (* Built before crash_rng_ops, which mutates [members] as it generates
     the churn stream. *)
  let seed_ops =
    List.init matrix_groups (fun g ->
        Journal.Add_group { group = g; members = members_both members.(g) })
  in
  let events = 120 in
  let stream = seed_ops @ Test_fault.crash_rng_ops rng ~members ~events in
  let total = List.length stream in
  let preds = Array.make (total + 1) [||] in
  preds.(0) <- preds_of ();
  List.iteri
    (fun i op ->
      Replica.apply replica op;
      preds.(i + 1) <- preds_of ())
    stream;
  (replica, ctx, preds, rng)

let check_crash_point ~ctx ~preds ~what mutated =
  match Wire.load mutated with
  | Error (_ : string) -> `Explicit
  | Ok l -> (
      match Replica.of_wire l with
      | Error (_ : string) -> `Explicit
      | Ok rep ->
          let j = l.Wire.l_replay_base_ops + List.length l.Wire.l_suffix in
          if j >= Array.length preds then
            Alcotest.failf "%s: surviving op count %d out of range" what j;
          let cfg = Replica.installed_config rep in
          Array.iteri
            (fun g expected ->
              let got = Verify.compile ctx cfg ~group:g in
              if not (Verify.equiv got expected) then
                Alcotest.failf
                  "%s: recovered group %d diverges from twin at op %d" what g
                  j)
            preds.(j);
          `Recovered)
  | exception exn ->
      Alcotest.failf "%s: uncaught exception %s" what (Printexc.to_string exn)

let test_crash_corruption_matrix () =
  let replica, ctx, preds, rng = build_matrix_run () in
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  let total = Bytes.length bytes in
  let points = ref 0 and recovered = ref 0 and explicit = ref 0 in
  let tally = function
    | `Recovered -> incr recovered
    | `Explicit -> incr explicit
  in
  (* Torn tails: every prefix length is a potential crash point; sample
     across the whole file plus a dense band at the end (the likeliest
     real-world tear: mid-final-record). *)
  let offsets =
    Array.to_list (Rng.sample_without_replacement rng 80 (Array.init total Fun.id))
    @ List.init 30 (fun i -> total - 1 - (i * 7))
  in
  List.iter
    (fun off ->
      incr points;
      tally
        (check_crash_point ~ctx ~preds
           ~what:(Printf.sprintf "torn at %d" off)
           (Wire.truncate_at bytes off)))
    offsets;
  (* Single-bit corruption across the whole file. *)
  let bits =
    Array.to_list
      (Rng.sample_without_replacement rng 100 (Array.init (8 * total) Fun.id))
  in
  List.iter
    (fun bit ->
      incr points;
      tally
        (check_crash_point ~ctx ~preds
           ~what:(Printf.sprintf "bit flip at %d" bit)
           (Wire.flip_bit bytes bit)))
    bits;
  Alcotest.(check bool)
    (Printf.sprintf "matrix covered >= 200 crash points (got %d)" !points)
    true (!points >= 200);
  (* The matrix is only meaningful if both outcomes actually occur: most
     points recover, early tears are explicit failures. *)
  Alcotest.(check bool)
    (Printf.sprintf "both outcomes exercised (%d recovered, %d explicit)"
       !recovered !explicit)
    true
    (!recovered > 0 && !explicit > 0);
  (* And the unmutated log recovers to the full twin. *)
  match check_crash_point ~ctx ~preds ~what:"clean load" bytes with
  | `Recovered -> ()
  | `Explicit -> Alcotest.fail "clean log failed to recover"

(* {1 Chaos across a crash} *)

let test_wedged_pod_churn_across_crash () =
  (* Pod-wide wedge: installs into pod 0 are refused until the controller
     degrades, then the pod is unwedged, the degraded state is
     checkpointed, churn continues, and the standby takes over from the
     wire log. The recovered controller must be bit-identical (the
     degradation state rides in the snapshot) and blackhole-free. *)
  let fabric = Fabric.create topo in
  let fault = Fault.create ~schedule:Fault.Reliable fabric in
  let replica =
    Replica.create ~snapshot_every:1000 ~fabric_hooks:(Fault.hooks fault)
      ~durable:true topo tight_params
  in
  Fault.wedge_pod fault 0 true;
  Replica.apply replica
    (Journal.Add_group { group = 0; members = members_both wide_hosts });
  Replica.apply replica
    (Journal.Add_group
       { group = 1; members = members_both [ 0; 1; h; h + 1; (2 * h) ] });
  Fault.wedge_pod fault 0 false;
  let st = Controller.install_stats (Replica.controller replica) in
  Alcotest.(check bool) "wedge forced degradations" true
    (st.Controller.degradations > 0);
  (* Checkpoint the degraded state, then churn on across the crash
     boundary (the suffix replays against the snapshot's denial state, so
     live and recovered take identical decisions). *)
  Replica.checkpoint replica;
  Replica.apply replica
    (Journal.Join { group = 0; host = (6 * h) + 2; role = Controller.Both });
  Replica.apply replica (Journal.Fail_spine 7);
  Replica.apply replica
    (Journal.Leave { group = 1; host = (2 * h) });
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  match Supervisor.failover ~fabric bytes with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      Alcotest.(check int) "suffix replayed" 3
        (List.length outcome.Supervisor.loaded.Wire.l_suffix);
      Alcotest.(check int) "zero blackholes after failover" 0
        (List.length outcome.Supervisor.blackholes);
      Alcotest.(check bool) "recovery is bit-identical" true
        (Test_fault.same_controller_state
           (Replica.controller outcome.Supervisor.replica)
           (Replica.controller replica) ~groups:2)

let repeat n x = List.init n (fun _ -> x)

let test_stale_markers_survive_crash () =
  (* A removal whose retries exhaust leaves a compensated stale marker;
     the marker must ride the snapshot record across a crash, and the
     failover sweep must keep (never remove) the stale fabric entry. *)
  let second = [ 0; 1; h; h + 1; (2 * h) ] in
  (* Sequential twin tells us how many install/removal hook operations
     each group costs, to position the scripted timeouts. *)
  let twin = Controller.create topo tight_params in
  ignore (Controller.add_group twin ~group:0 (members_both wide_hosts));
  let sites g =
    match Controller.encoding twin ~group:g with
    | None -> 0
    | Some enc ->
        List.length enc.Encoding.d_leaf.Clustering.srules
        + List.length enc.Encoding.d_spine.Clustering.srules
  in
  let k0 = sites 0 in
  ignore (Controller.add_group twin ~group:1 (members_both second));
  let k1 = sites 1 in
  Alcotest.(check bool) "both groups need s-rules" true (k0 > 0 && k1 > 0);
  (* Installs apply; the first removal of group 1's teardown exhausts its
     budget (5 attempts), the rest apply, and the reconcile retry exhausts
     again, forcing the compensating install (script exhausted: applies). *)
  let script =
    repeat (k0 + k1) Fault.Applied
    @ repeat 5 Fault.Timeout
    @ repeat (k1 - 1) Fault.Applied
    @ repeat 5 Fault.Timeout
  in
  let fabric = Fabric.create topo in
  let fault = Fault.create ~schedule:(Fault.Scripted script) fabric in
  let replica =
    Replica.create ~snapshot_every:1000 ~fabric_hooks:(Fault.hooks fault)
      ~durable:true topo tight_params
  in
  Replica.apply replica
    (Journal.Add_group { group = 0; members = members_both wide_hosts });
  Replica.apply replica
    (Journal.Add_group { group = 1; members = members_both second });
  Replica.apply replica (Journal.Remove_group { group = 1 });
  let live_stale =
    (Replica.installed_config replica).Installed_config.stale_sites
  in
  Alcotest.(check int) "exhausted removal left one stale marker" 1
    (List.length live_stale);
  (* The stale table enters the snapshot record; crash right after. *)
  Replica.checkpoint replica;
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  match Supervisor.failover ~fabric bytes with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      let rec_stale =
        (Replica.installed_config outcome.Supervisor.replica)
          .Installed_config.stale_sites
      in
      Alcotest.(check bool) "stale markers survive the round-trip" true
        (live_stale = rec_stale);
      Alcotest.(check bool) "sweep kept the stale fabric entry" true
        (outcome.Supervisor.reconcile.Supervisor.stale_kept >= 1);
      Alcotest.(check int) "zero blackholes after failover" 0
        (List.length outcome.Supervisor.blackholes);
      Alcotest.(check bool) "recovery is bit-identical" true
        (Test_fault.same_controller_state
           (Replica.controller outcome.Supervisor.replica)
           (Replica.controller replica) ~groups:1)

(* {1 Supervisor failover} *)

let test_failover_fences_old_primary () =
  let fabric = Fabric.create topo in
  let primary =
    Replica.create ~snapshot_every:16
      ~fabric_hooks:(Fabric.controller_hooks_at fabric ~epoch:0)
      ~durable:true topo tight_params
  in
  Replica.apply primary
    (Journal.Add_group { group = 0; members = members_both wide_hosts });
  Replica.apply primary
    (Journal.Add_group
       { group = 1; members = members_both [ 0; h; (2 * h) + 1 ] });
  (* Checkpoint so recovery restores from the snapshot with no suffix to
     replay — otherwise the replayed installs would heal the fabric before
     the sweep gets to prove itself. *)
  Replica.checkpoint primary;
  (* Sabotage the fabric behind the controller's back: drop one expected
     s-rule site and plant an orphan entry — the reconcile sweep must fix
     both. *)
  let enc =
    Option.get (Controller.encoding (Replica.controller primary) ~group:0)
  in
  let victim_leaf, _ = List.hd enc.Encoding.d_leaf.Clustering.srules in
  Fabric.remove_leaf_srule fabric ~leaf:victim_leaf ~group:0;
  let orphan_bm = Bitmap.create (Topology.leaf_downstream_width topo) in
  Bitmap.set orphan_bm 0;
  Fabric.install_leaf_srule fabric ~leaf:1 ~group:999 orphan_bm;
  let bytes = Wire.contents (Option.get (Replica.wire primary)) in
  match Supervisor.failover ~fabric bytes with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      Alcotest.(check int) "fence bumped past the log's epoch" 1
        outcome.Supervisor.epoch;
      Alcotest.(check int) "fabric fence matches" 1 (Fabric.fence_epoch fabric);
      Alcotest.(check bool) "dropped site reinstalled" true
        (outcome.Supervisor.reconcile.Supervisor.reinstalled >= 1);
      Alcotest.(check bool) "orphan removed" true
        (outcome.Supervisor.reconcile.Supervisor.orphans_removed >= 1);
      Alcotest.(check bool) "orphan gone from the fabric" true
        (not (List.mem 999 (Fabric.leaf_groups fabric 1)));
      Alcotest.(check bool) "reinstalled site back on the fabric" true
        (Option.is_some (Fabric.leaf_srule fabric ~leaf:victim_leaf ~group:0));
      Alcotest.(check int) "zero blackholes" 0
        (List.length outcome.Supervisor.blackholes);
      (* The fenced ex-primary's late install is refused by the fabric;
         its own reliable-install path degrades honestly instead of
         clobbering the new primary. *)
      let refusals_before = Fabric.fenced_refusals fabric in
      Replica.apply primary
        (Journal.Join { group = 1; host = (4 * h) + 1; role = Controller.Both });
      Alcotest.(check bool) "late installs refused below the fence" true
        (Fabric.fenced_refusals fabric > refusals_before);
      (* The new primary operates normally at the fenced epoch. *)
      Replica.apply outcome.Supervisor.replica
        (Journal.Join { group = 1; host = (5 * h) + 1; role = Controller.Both });
      (match Verify.check_controller (Replica.controller outcome.Supervisor.replica) with
      | Ok (_ : int) -> ()
      | Error w ->
          Alcotest.failf "new primary violates its own intent: %a"
            Verify.pp_witness w);
      match
        Verify.probe
          (Replica.controller outcome.Supervisor.replica)
          fabric ~group:1 ~sender:0
      with
      | Some (ok, _) -> Alcotest.(check bool) "new primary delivers" true ok
      | None -> Alcotest.fail "new primary lost its multicast path"

let test_failover_unrecoverable_is_explicit () =
  let fabric = Fabric.create topo in
  let primary =
    Replica.create ~fabric_hooks:(Fabric.controller_hooks_at fabric ~epoch:0)
      ~durable:true topo tight_params
  in
  Replica.apply primary
    (Journal.Add_group { group = 0; members = members_both wide_hosts });
  let bytes = Wire.contents (Option.get (Replica.wire primary)) in
  (* Tear the log before the genesis snapshot completes: nothing to
     recover from — the failover must fail loudly AND still fence. *)
  match Supervisor.failover ~fabric (Wire.truncate_at bytes 40) with
  | Ok _ -> Alcotest.fail "recovered from a log with no snapshot"
  | Error (_ : string) ->
      Alcotest.(check bool) "fabric fenced even on failed recovery" true
        (Fabric.fence_epoch fabric >= 1)

(* {1 Hostile-header hardening} *)

let header_setup () =
  let ctrl = Controller.create topo tight_params in
  ignore (Controller.add_group ctrl ~group:0 (members_both wide_hosts));
  ignore
    (Controller.add_group ctrl ~group:1
       (members_both [ 0; 1; h; (3 * h) + 2 ]));
  ctrl

let test_decode_checked_round_trip () =
  let ctrl = header_setup () in
  List.iter
    (fun (group, sender) ->
      let hd = Option.get (Controller.header ctrl ~group ~sender) in
      let bytes = Header_codec.encode topo hd in
      match Header_codec.decode_checked topo bytes with
      | Error e ->
          Alcotest.failf "valid header rejected: %a" Header_codec.pp_decode_error
            e
      | Ok hd' ->
          Alcotest.(check bool)
            (Printf.sprintf "group %d sender %d round-trips" group sender)
            true
            (Bytes.equal bytes (Header_codec.encode topo hd')))
    [ (0, 0); (0, (7 * h) + 1); (1, 0); (1, (3 * h) + 2) ]

let test_decode_checked_truncated_total () =
  let ctrl = header_setup () in
  let hd = Option.get (Controller.header ctrl ~group:0 ~sender:0) in
  let bytes = Header_codec.encode topo hd in
  for len = 0 to Bytes.length bytes - 1 do
    match Header_codec.decode_checked topo (Bytes.sub bytes 0 len) with
    | Ok _ | Error _ -> ()
    | exception exn ->
        Alcotest.failf "prefix %d raised %s" len (Printexc.to_string exn)
  done

let test_decode_checked_trailing_bits () =
  let ctrl = header_setup () in
  let hd = Option.get (Controller.header ctrl ~group:0 ~sender:0) in
  let bytes = Header_codec.encode topo hd in
  let padded = Bytes.make (Bytes.length bytes + 2) '\xff' in
  Bytes.blit bytes 0 padded 0 (Bytes.length bytes);
  match Header_codec.decode_checked topo padded with
  | Error Header_codec.Trailing_bits -> ()
  | Error e ->
      Alcotest.failf "expected Trailing_bits, got %a"
        Header_codec.pp_decode_error e
  | Ok _ -> Alcotest.fail "nonzero trailing bytes accepted"

let fuzz_inputs () =
  match Sys.getenv_opt "ELMO_FUZZ_INPUTS" with
  | Some s -> (try max 100 (int_of_string s) with Failure _ -> 5_000)
  | None -> 5_000

let test_decode_fuzz_no_exceptions_no_over_delivery () =
  let ctrl = header_setup () in
  let ctx = Pred.create_ctx () in
  let sender = 0 in
  let hd = Option.get (Controller.header ctrl ~group:0 ~sender) in
  let valid = Header_codec.encode topo hd in
  let intent = Verify.header_pred ctx topo ~sender hd in
  let rng = Rng.create 424242 in
  let n = fuzz_inputs () in
  let ok = ref 0 and malformed = ref 0 and over = ref 0 in
  for i = 1 to n do
    let input =
      match i mod 3 with
      | 0 ->
          (* Pure noise. *)
          let len = Rng.int rng 48 in
          Bytes.init len (fun _ -> Char.chr (Rng.int rng 256))
      | 1 ->
          (* Valid encoding with 1-4 flipped bits. *)
          let b = ref (Bytes.copy valid) in
          for _ = 0 to Rng.int rng 4 do
            b := Wire.flip_bit !b (Rng.int rng (8 * Bytes.length valid))
          done;
          !b
      | _ ->
          (* Torn valid encoding. *)
          Bytes.sub valid 0 (Rng.int rng (Bytes.length valid + 1))
    in
    match Verify.admit_header ctx topo ~intent ~sender input with
    | Ok admitted ->
        incr ok;
        (* Re-verify the admission guarantee independently: the admitted
           header's own delivery never exceeds the intent. *)
        let hp = Verify.header_pred ctx topo ~sender admitted in
        if not (Verify.subsumes ~big:intent ~small:hp) then
          Alcotest.failf "fuzz %d: admitted header over-delivers" i
    | Error (Verify.Malformed _) -> incr malformed
    | Error (Verify.Over_delivery _) -> incr over
    | exception exn ->
        Alcotest.failf "fuzz %d: uncaught exception %s" i
          (Printexc.to_string exn)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fuzz corpus exercised all outcomes (%d ok, %d malformed, %d over)"
       !ok !malformed !over)
    true
    (!ok > 0 && !malformed > 0);
  Alcotest.(check int) "all inputs accounted" n (!ok + !malformed + !over)

(* {1 Zero-alloc encode_into} *)

let test_encode_into_matches_encode () =
  let ctrl = header_setup () in
  let buf = Bytes.create 1024 in
  let sink = Bitio.Sink.of_bytes buf in
  List.iter
    (fun (group, sender) ->
      match Controller.header ctrl ~group ~sender with
      | None -> ()
      | Some hd ->
          let expected = Header_codec.encode topo hd in
          Bitio.Sink.reset sink ~pos:0;
          let len = Header_codec.encode_into topo hd sink in
          Alcotest.(check int)
            (Printf.sprintf "group %d sender %d: same length" group sender)
            (Bytes.length expected) len;
          Alcotest.(check bool) "same bytes" true
            (Bytes.equal expected (Bytes.sub buf 0 len)))
    (List.concat_map
       (fun g -> List.map (fun s -> (g, s)) [ 0; 1; h; (5 * h) + 1 ])
       [ 0; 1 ])

let test_encode_into_overflow_raises () =
  let ctrl = header_setup () in
  let hd = Option.get (Controller.header ctrl ~group:0 ~sender:0) in
  let need = Bytes.length (Header_codec.encode topo hd) in
  let sink = Bitio.Sink.of_bytes (Bytes.create (need - 1)) in
  match Header_codec.encode_into topo hd sink with
  | (_ : int) -> Alcotest.fail "overflowing encode_into returned"
  | exception Invalid_argument _ -> ()

let test_encode_into_zero_alloc () =
  let ctrl = header_setup () in
  let hd = Option.get (Controller.header ctrl ~group:0 ~sender:0) in
  let buf = Bytes.create 1024 in
  let sink = Bitio.Sink.of_bytes buf in
  let report =
    Allocs.probe ~warmup:64 ~events:2048 (fun _ ->
        Bitio.Sink.reset sink ~pos:0;
        ignore (Header_codec.encode_into topo hd sink : int))
  in
  match report.Allocs.first_alloc with
  | None ->
      Alcotest.(check (float 0.0)) "zero words per event" 0.0
        report.Allocs.per_event
  | Some (event, words) ->
      Alcotest.failf "encode_into allocated %d words at event %d (%.1f total)"
        words event report.Allocs.total_words

(* {1 Wire file round-trip} *)

let test_file_round_trip () =
  let replica = seeded_replica () in
  let bytes = Wire.contents (Option.get (Replica.wire replica)) in
  let path = Filename.temp_file "elmo_wire" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Wire.to_file path bytes;
      match Wire.of_file path with
      | Error e -> Alcotest.fail e
      | Ok read -> Alcotest.(check bool) "same bytes" true (Bytes.equal bytes read));
  match Wire.of_file "/nonexistent/elmo.wal" with
  | Error (_ : string) -> ()
  | Ok _ -> Alcotest.fail "read a nonexistent file"

let tests =
  [
    Alcotest.test_case "entry codec round-trip" `Quick
      test_entry_codec_round_trip;
    Alcotest.test_case "entry codec rejects out-of-range" `Quick
      test_entry_codec_rejects_out_of_range;
    Alcotest.test_case "snapshot codec round-trip" `Quick
      test_snapshot_codec_round_trip;
    Alcotest.test_case "snapshot codec rejects bit flips" `Quick
      test_snapshot_codec_rejects_bit_flips;
    Alcotest.test_case "empty log" `Quick test_empty_log;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "snapshot-only load" `Quick test_snapshot_only_load;
    Alcotest.test_case "truncation at record boundary" `Quick
      test_truncation_at_record_boundary;
    Alcotest.test_case "torn header truncates" `Quick
      test_torn_header_truncates;
    Alcotest.test_case "corrupt length field truncates" `Quick
      test_corrupt_length_field_truncates;
    Alcotest.test_case "sequence gap truncates" `Quick
      test_sequence_gap_truncates;
    Alcotest.test_case "snapshot fallback on forged payload" `Quick
      test_snapshot_fallback_on_forged_payload;
    Alcotest.test_case "crash/corruption matrix" `Slow
      test_crash_corruption_matrix;
    Alcotest.test_case "wedged pod churn across crash" `Quick
      test_wedged_pod_churn_across_crash;
    Alcotest.test_case "stale markers survive crash" `Quick
      test_stale_markers_survive_crash;
    Alcotest.test_case "failover fences old primary" `Quick
      test_failover_fences_old_primary;
    Alcotest.test_case "unrecoverable failover is explicit" `Quick
      test_failover_unrecoverable_is_explicit;
    Alcotest.test_case "decode_checked round-trip" `Quick
      test_decode_checked_round_trip;
    Alcotest.test_case "decode_checked total on prefixes" `Quick
      test_decode_checked_truncated_total;
    Alcotest.test_case "decode_checked trailing bits" `Quick
      test_decode_checked_trailing_bits;
    Alcotest.test_case "decode fuzz: no exceptions, no over-delivery" `Slow
      test_decode_fuzz_no_exceptions_no_over_delivery;
    Alcotest.test_case "encode_into matches encode" `Quick
      test_encode_into_matches_encode;
    Alcotest.test_case "encode_into overflow raises" `Quick
      test_encode_into_overflow_raises;
    Alcotest.test_case "encode_into zero-alloc" `Quick
      test_encode_into_zero_alloc;
    Alcotest.test_case "wire file round-trip" `Quick test_file_round_trip;
  ]
