(* Runtime cross-check of the static [zero-alloc] lint verdict: steady-state
   [Encoding.apply_delta] must allocate zero minor words per event. The lint
   rule proves this over the typed AST modulo its trusted base (whitelisted
   externs, reasoned suppressions); here [Gc.minor_words] measures the real
   thing over thousands of live events. Obs stays disabled, matching the
   annotated fast path's suppressed branches. *)

let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf

(* High staleness ceiling: the harness applies thousands of deltas to one
   encoding, which must all stay on the fast path. *)
let params ?r ?hmax_leaf ?fmax () =
  Params.create ?r ?hmax_leaf ?fmax ~staleness_limit:1_000_000
    ~header_budget:None ()

let enc_of params hosts =
  let srules = Srule_state.create topo ~fmax:params.Params.fmax in
  Encoding.encode params srules (Tree.of_members topo hosts)

(* Join/leave the same host forever: every event lands on the fast path and
   the encoding returns to its previous state after each pair, so the
   probe's diagnostic re-run sees identical behavior. Both deltas are
   preconstructed — the loop itself performs no setup work. *)
let churn_fn enc host =
  let join = Encoding.delta_of_host topo ~joining:true host in
  let leave = Encoding.delta_of_host topo ~joining:false host in
  fun i ->
    let delta = if i land 1 = 0 then join else leave in
    match Encoding.apply_delta enc delta with
    | Encoding.Applied _ -> ()
    | Encoding.Reencode _ -> failwith "fast path declined mid-probe"

let check_clean name report =
  match report.Allocs.first_alloc with
  | Some (event, words) ->
      Alcotest.failf "%s: event %d allocated %d minor words (%.1f total)"
        name event words report.Allocs.total_words
  | None ->
      Alcotest.(check (float 0.0))
        (name ^ ": minor words per event")
        0.0 report.Allocs.per_event

(* Warm-up absorbs one-time lazy costs (tree member-buffer growth); 64
   events is far past any of them. The probed host must neither empty its
   leaf on leave nor land on a new leaf on join — churn a third host behind
   a leaf that keeps two members. *)
let warmup = 64
let events = 512

let test_prule_aliased () =
  (* [0; 1; h]: singleton p-rules aliasing the tree bitmaps. *)
  let enc = enc_of (params ()) [ 0; 1; h ] in
  check_clean "aliased p-rule churn"
    (Allocs.probe ~warmup ~events (churn_fn enc 2))

let test_prule_shared () =
  (* Three leaves with identical one-port bitmaps, hmax 1 and a wide
     redundancy budget: they share one p-rule, so every join runs the
     prospective budget check and every leave refreshes the rule bitmap —
     the most allocation-prone path. *)
  let enc = enc_of (params ~r:8 ~hmax_leaf:1 ()) [ 0; h; 2 * h ] in
  (match
     List.find_opt
       (fun (r : Prule.prule) -> List.length r.Prule.switches > 1)
       enc.Encoding.d_leaf.Clustering.prules
   with
  | Some _ -> ()
  | None -> Alcotest.fail "setup should share one p-rule across leaves");
  check_clean "shared p-rule churn"
    (Allocs.probe ~warmup ~events (churn_fn enc 2))

let test_default_site () =
  (* fmax 0 starves the s-rule ledger: spill lands in the default p-rule,
     whose leave path rebuilds the default bitmap from the member leaves. *)
  let enc = enc_of (params ~hmax_leaf:1 ~fmax:0 ()) [ 0; 1; h; 2 * h ] in
  (match enc.Encoding.d_leaf.Clustering.default with
  | Some _ -> ()
  | None -> Alcotest.fail "setup should use the default rule");
  check_clean "default-rule churn"
    (Allocs.probe ~warmup ~events (churn_fn enc 2))

let test_probe_detects_allocation () =
  (* The harness itself must not report false negatives: a loop that
     allocates one cell per event is caught with the right event index. *)
  let sink = ref [] in
  let report =
    Allocs.probe ~warmup:4 ~events:32 (fun i ->
        if i >= 4 then sink := i :: !sink)
  in
  (match report.Allocs.first_alloc with
  | Some (0, words) ->
      Alcotest.(check bool) "positive words" true (words > 0)
  | Some (event, _) -> Alcotest.failf "first offender misattributed to %d" event
  | None -> Alcotest.fail "allocating loop reported clean");
  Alcotest.(check bool) "per-event words visible" true
    (report.Allocs.per_event > 0.0)

let tests =
  [
    Alcotest.test_case "aliased p-rule churn is zero-alloc" `Quick
      test_prule_aliased;
    Alcotest.test_case "shared p-rule churn is zero-alloc" `Quick
      test_prule_shared;
    Alcotest.test_case "default-rule churn is zero-alloc" `Quick
      test_default_site;
    Alcotest.test_case "probe detects an allocating loop" `Quick
      test_probe_detects_allocation;
  ]
