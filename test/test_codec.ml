let topo = Topology.running_example ()
let fabric = Topology.facebook_fabric ()

(* Random well-formed headers for a topology. *)
let gen_header t =
  let open QCheck.Gen in
  let bitmap width =
    list_size (int_range 0 (min width 8)) (int_range 0 (width - 1))
    >>= fun bits -> return (Bitmap.of_list width bits)
  in
  let uprule ~down ~up =
    bitmap down >>= fun d ->
    bitmap up >>= fun u ->
    bool >>= fun m -> return { Prule.down = d; up = u; multipath = m }
  in
  let prules layer =
    let width, max_id =
      match layer with
      | `Spine -> (Topology.spine_downstream_width t, t.Topology.pods - 1)
      | `Leaf -> (Topology.leaf_downstream_width t, Topology.num_leaves t - 1)
    in
    list_size (int_range 0 4)
      ( bitmap width >>= fun bm ->
        list_size (int_range 1 3) (int_range 0 max_id) >>= fun ids ->
        return { Prule.bitmap = bm; switches = List.sort_uniq compare ids } )
  in
  let opt g = bool >>= fun p -> if p then g >>= fun x -> return (Some x) else return None in
  uprule ~down:(Topology.leaf_downstream_width t) ~up:(Topology.leaf_upstream_width t)
  >>= fun u_leaf ->
  opt (uprule ~down:(Topology.spine_downstream_width t) ~up:(Topology.spine_upstream_width t))
  >>= fun u_spine ->
  opt (bitmap (Topology.core_downstream_width t)) >>= fun core ->
  prules `Spine >>= fun d_spine ->
  opt (bitmap (Topology.spine_downstream_width t)) >>= fun d_spine_default ->
  prules `Leaf >>= fun d_leaf ->
  opt (bitmap (Topology.leaf_downstream_width t)) >>= fun d_leaf_default ->
  return
    { Prule.u_leaf; u_spine; core; d_spine; d_spine_default; d_leaf; d_leaf_default }

let arb_header t =
  QCheck.make
    ~print:(fun h -> Format.asprintf "%a" (Prule.pp t) h)
    (gen_header t)

let stages =
  Header_codec.
    [ Full; After_u_leaf; After_u_spine; After_core; After_d_spine ]

let prop_roundtrip t name =
  QCheck.Test.make ~name ~count:300 (arb_header t) (fun h ->
      Header_codec.decode t (Header_codec.encode t h) = h)

let prop_size_accounting t name =
  QCheck.Test.make ~name ~count:300 (arb_header t) (fun h ->
      Bytes.length (Header_codec.encode t h) = Prule.header_bytes t h)

let prop_stage_sizes t name =
  QCheck.Test.make ~name ~count:200 (arb_header t) (fun h ->
      List.for_all
        (fun stage ->
          Bytes.length (Header_codec.encode_stage t stage h)
          = (Header_codec.stage_bits t stage h + 7) / 8)
        stages)

let prop_stage_roundtrip t name =
  (* Decoding a popped header recovers the remaining sections exactly. *)
  QCheck.Test.make ~name ~count:200 (arb_header t) (fun h ->
      let check stage =
        let h' =
          Header_codec.decode_stage t stage (Header_codec.encode_stage t stage h)
        in
        match stage with
        | Header_codec.Full -> h' = h
        | Header_codec.After_u_leaf ->
            h'.Prule.u_spine = h.Prule.u_spine
            && h'.Prule.core = h.Prule.core
            && h'.Prule.d_spine = h.Prule.d_spine
            && h'.Prule.d_leaf = h.Prule.d_leaf
        | Header_codec.After_u_spine ->
            h'.Prule.core = h.Prule.core && h'.Prule.d_leaf = h.Prule.d_leaf
        | Header_codec.After_core ->
            h'.Prule.core = None && h'.Prule.d_spine = h.Prule.d_spine
        | Header_codec.After_d_spine ->
            h'.Prule.d_spine = []
            && h'.Prule.d_leaf = h.Prule.d_leaf
            && h'.Prule.d_leaf_default = h.Prule.d_leaf_default
      in
      List.for_all check stages)

(* The symbolic meaning survives the wire: encoding then decoding an
   arbitrary header preserves its delivery predicate under the header-only
   interpretation ([Verify.header_pred]), for any sender position. Stronger
   than structural equality alone would suggest: it pins down that the
   codec cannot reorder, merge or drop rules in a way that changes what any
   switch would forward. *)
let prop_predicate_roundtrip t name =
  let arb = QCheck.pair (arb_header t) (QCheck.int_range 0 (Topology.num_hosts t - 1)) in
  QCheck.Test.make ~name ~count:300 arb (fun (h, sender) ->
      let ctx = Pred.create_ctx () in
      let before = Verify.header_pred ctx t ~sender h in
      let after =
        Verify.header_pred ctx t ~sender
          (Header_codec.decode t (Header_codec.encode t h))
      in
      Verify.equiv before after)

let prop_parts_concat t name =
  QCheck.Test.make ~name ~count:200 (arb_header t) (fun h ->
      Header_codec.encode_per_rule_writes t h
      = Bytes.concat Bytes.empty (Header_codec.encode_parts t h))

let prop_popped_smaller t name =
  QCheck.Test.make ~name ~count:200 (arb_header t) (fun h ->
      let size stage = Bytes.length (Header_codec.encode_stage t stage h) in
      size Header_codec.Full >= size Header_codec.After_u_leaf
      && size Header_codec.After_u_leaf >= size Header_codec.After_u_spine
      && size Header_codec.After_u_spine >= size Header_codec.After_core
      && size Header_codec.After_core >= size Header_codec.After_d_spine)

let test_empty_rule_list_rejected () =
  let bad =
    {
      Prule.u_leaf =
        {
          Prule.down = Bitmap.create (Topology.leaf_downstream_width topo);
          up = Bitmap.create (Topology.leaf_upstream_width topo);
          multipath = false;
        };
      u_spine = None;
      core = None;
      d_spine = [];
      d_spine_default = None;
      d_leaf = [ { Prule.bitmap = Bitmap.create 8; switches = [] } ];
      d_leaf_default = None;
    }
  in
  Alcotest.check_raises "empty switches"
    (Invalid_argument "Header_codec: p-rule with no switch identifiers") (fun () ->
      ignore (Header_codec.encode topo bad))

let test_wrong_width_rejected () =
  let bad =
    {
      Prule.u_leaf =
        {
          Prule.down = Bitmap.create 3;
          up = Bitmap.create (Topology.leaf_upstream_width topo);
          multipath = false;
        };
      u_spine = None;
      core = None;
      d_spine = [];
      d_spine_default = None;
      d_leaf = [];
      d_leaf_default = None;
    }
  in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Header_codec: upstream rule width mismatch") (fun () ->
      ignore (Header_codec.encode topo bad))

let test_truncated_decode_raises () =
  let enc, _ =
    let tree = Tree.of_members topo [ 0; 1; 12; 42 ] in
    let srules = Srule_state.create topo ~fmax:10 in
    (Encoding.encode Params.default srules tree, srules)
  in
  let hd = Encoding.header_for_sender enc ~sender:0 in
  let bytes = Header_codec.encode topo hd in
  let truncated = Bytes.sub bytes 0 (Bytes.length bytes - 1) in
  Alcotest.check_raises "truncated" Bitio.Reader.Truncated (fun () ->
      ignore (Header_codec.decode topo truncated))

let tests =
  [
    QCheck_alcotest.to_alcotest (prop_roundtrip topo "roundtrip (example topo)");
    QCheck_alcotest.to_alcotest (prop_roundtrip fabric "roundtrip (fabric)");
    QCheck_alcotest.to_alcotest
      (prop_size_accounting topo "size accounting (example topo)");
    QCheck_alcotest.to_alcotest (prop_size_accounting fabric "size accounting (fabric)");
    QCheck_alcotest.to_alcotest
      (prop_predicate_roundtrip topo "predicate unchanged by codec (example topo)");
    QCheck_alcotest.to_alcotest
      (prop_predicate_roundtrip fabric "predicate unchanged by codec (fabric)");
    QCheck_alcotest.to_alcotest (prop_stage_sizes topo "stage sizes (example topo)");
    QCheck_alcotest.to_alcotest (prop_stage_roundtrip topo "stage roundtrip");
    QCheck_alcotest.to_alcotest (prop_parts_concat topo "parts concat = per-rule bytes");
    QCheck_alcotest.to_alcotest (prop_popped_smaller topo "popping shrinks the wire");
    Alcotest.test_case "empty rule list rejected" `Quick test_empty_rule_list_rejected;
    Alcotest.test_case "wrong width rejected" `Quick test_wrong_width_rejected;
    Alcotest.test_case "truncated decode raises" `Quick test_truncated_decode_raises;
  ]

(* Robustness: arbitrary bytes from the wire either decode or raise
   [Truncated] — no other exception can escape the parser. *)
let prop_decode_never_crashes =
  QCheck.Test.make ~name:"decode of random bytes is total (or Truncated)"
    ~count:500
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun s ->
      match Header_codec.decode topo (Bytes.of_string s) with
      | (_ : Prule.header) -> true
      | exception Bitio.Reader.Truncated -> true)

let prop_decode_stage_never_crashes =
  QCheck.Test.make ~name:"stage decode of random bytes is total (or Truncated)"
    ~count:500
    QCheck.(pair (int_range 0 4) (string_of_size Gen.(int_range 0 64)))
    (fun (stage_idx, s) ->
      let stage = List.nth stages stage_idx in
      match Header_codec.decode_stage topo stage (Bytes.of_string s) with
      | (_ : Prule.header) -> true
      | exception Bitio.Reader.Truncated -> true)

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest prop_decode_never_crashes;
      QCheck_alcotest.to_alcotest prop_decode_stage_never_crashes;
    ]
