(* Integration tests: churn simulation driving the controller, checked for
   consistency (delivery still works after arbitrary event streams, s-rule
   accounting never leaks). Uses a small topology so trees span all cases. *)

let topo = Topology.running_example ()

let small_world seed =
  let rng = Rng.create seed in
  let placement =
    Vm_placement.place rng topo ~strategy:(Vm_placement.Pack_up_to 2)
      ~host_capacity:20
      ~tenant_sizes:[| 20; 15; 25 |]
  in
  let groups =
    Workload.generate (Rng.create (seed + 1)) placement ~kind:Group_dist.Wve
      ~total_groups:12
  in
  (placement, groups)

let test_setup_registers_all_groups () =
  let placement, groups = small_world 1 in
  let ctrl = Controller.create topo Params.default in
  Churn.setup_controller (Rng.create 2) ctrl placement groups;
  Alcotest.(check int) "all groups" (Array.length groups) (Controller.group_count ctrl);
  Array.iter
    (fun g ->
      let members = Controller.members ctrl ~group:g.Workload.group_id in
      Alcotest.(check int) "member count"
        (Array.length g.Workload.member_hosts)
        (List.length members))
    groups

let test_churn_keeps_delivery_correct () =
  let placement, groups = small_world 3 in
  let fabric = Fabric.create topo in
  let hooks = Fabric.controller_hooks fabric in
  (* Small tables force s-rule churn through the fabric hooks. *)
  let params = Params.create ~hmax_leaf:2 ~hmax_spine:1 ~header_budget:None ~fmax:6 () in
  let ctrl = Controller.create ~fabric_hooks:hooks topo params in
  Churn.setup_controller (Rng.create 4) ctrl placement groups;
  let result =
    Churn.run (Rng.create 5) ctrl placement groups ~events:400
      ~events_per_second:1000.0 ~li:None
  in
  Alcotest.(check bool) "events performed" true (result.Churn.events > 300);
  (* After the event storm, every group with receivers must still deliver
     from every member host. *)
  Array.iter
    (fun g ->
      let group = g.Workload.group_id in
      match Controller.encoding ctrl ~group with
      | None -> ()
      | Some enc ->
          let tree = enc.Encoding.tree in
          let sender = (Tree.member_array tree).(0) in
          (match Controller.header ctrl ~group ~sender with
          | None -> ()
          | Some header ->
              let report = Fabric.inject fabric ~sender ~group ~header ~payload:64 in
              Alcotest.(check bool)
                (Printf.sprintf "group %d delivers after churn" group)
                true
                (Fabric.deliveries_correct report ~tree ~sender)))
    groups

let test_churn_update_accounting_sane () =
  let placement, groups = small_world 6 in
  let ctrl = Controller.create topo Params.default in
  Churn.setup_controller (Rng.create 7) ctrl placement groups;
  let li = Li_et_al.create topo in
  Array.iter
    (fun g ->
      match Controller.encoding ctrl ~group:g.Workload.group_id with
      | Some enc -> Li_et_al.add_group li ~group:g.Workload.group_id enc.Encoding.tree
      | None -> ())
    groups;
  let r =
    Churn.run (Rng.create 8) ctrl placement groups ~events:200
      ~events_per_second:1000.0 ~li:(Some li)
  in
  Alcotest.(check bool) "hypervisor load positive" true
    (r.Churn.elmo_hypervisor.Churn.mean > 0.0);
  Alcotest.(check bool) "mean <= max" true
    (r.Churn.elmo_hypervisor.Churn.mean <= r.Churn.elmo_hypervisor.Churn.max);
  Alcotest.(check (float 1e-9)) "Elmo cores never updated" 0.0
    r.Churn.elmo_core.Churn.max;
  Alcotest.(check bool) "Li spine load >= Elmo spine load" true
    (r.Churn.li_spine.Churn.mean >= r.Churn.elmo_spine.Churn.mean)

let test_srule_accounting_never_leaks () =
  let placement, groups = small_world 9 in
  let params = Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None ~fmax:8 () in
  let ctrl = Controller.create topo params in
  Churn.setup_controller (Rng.create 10) ctrl placement groups;
  ignore
    (Churn.run (Rng.create 11) ctrl placement groups ~events:300
       ~events_per_second:1000.0 ~li:None);
  (* Reserved s-rules must exactly match the live encodings. *)
  let expected =
    Array.fold_left
      (fun acc g ->
        match Controller.encoding ctrl ~group:g.Workload.group_id with
        | Some enc -> acc + Encoding.srule_entries enc
        | None -> acc)
      0 groups
  in
  Alcotest.(check int) "no s-rule leak" expected
    (Srule_state.total_srules (Controller.srule_state ctrl));
  (* Removing every group returns the state to zero. *)
  Array.iter
    (fun g -> ignore (Controller.remove_group ctrl ~group:g.Workload.group_id))
    groups;
  Alcotest.(check int) "zero after removal" 0
    (Srule_state.total_srules (Controller.srule_state ctrl))

let test_failures_during_churn () =
  let placement, groups = small_world 12 in
  let ctrl = Controller.create topo Params.default in
  Churn.setup_controller (Rng.create 13) ctrl placement groups;
  let spine = Churn.spine_failures (Rng.create 14) ctrl ~trials:4 in
  Alcotest.(check int) "trials" 4 spine.Churn.trials;
  Alcotest.(check bool) "fraction within [0,1]" true
    (spine.Churn.affected_fraction_mean >= 0.0
    && spine.Churn.affected_fraction_max <= 1.0);
  let core = Churn.core_failures (Rng.create 15) ctrl ~trials:4 in
  Alcotest.(check bool) "core fraction within [0,1]" true
    (core.Churn.affected_fraction_mean >= 0.0
    && core.Churn.affected_fraction_max <= 1.0)

let tests =
  [
    Alcotest.test_case "setup registers groups" `Quick test_setup_registers_all_groups;
    Alcotest.test_case "delivery correct after churn" `Quick
      test_churn_keeps_delivery_correct;
    Alcotest.test_case "update accounting sane" `Quick test_churn_update_accounting_sane;
    Alcotest.test_case "s-rule accounting never leaks" `Quick
      test_srule_accounting_never_leaks;
    Alcotest.test_case "failure trials" `Quick test_failures_during_churn;
  ]
