(* PGM-style reliability layered over the simulated fabric (§7). *)

let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf
let members = [ 0; 1; (5 * h) + 2; (6 * h) + 4; (6 * h) + 5; (7 * h) + 7 ]

let session () =
  let tree = Tree.of_members topo members in
  let srules = Srule_state.create topo ~fmax:100 in
  let enc = Encoding.encode Params.default srules tree in
  let fabric = Fabric.create topo in
  Fabric.install_encoding fabric ~group:5 enc;
  (fabric, Reliable.create fabric ~group:5 ~sender:0 enc)

let test_lossless_stream () =
  let _, s = session () in
  for i = 0 to 9 do
    Alcotest.(check int) "sequence numbers increase" i (Reliable.broadcast s ~payload:64)
  done;
  Alcotest.(check bool) "complete without repair" true (Reliable.complete s);
  Alcotest.(check int) "no repairs needed" 0 (Reliable.repair_round s);
  List.iter
    (fun r -> Alcotest.(check int) "in-order prefix" 10 (Reliable.delivered_in_order s r))
    (Reliable.receivers s);
  let st = Reliable.stats s in
  Alcotest.(check int) "data sent" 10 st.Reliable.data_sent;
  Alcotest.(check int) "no naks" 0 st.Reliable.naks

let failing_spine ~group ~sender =
  let hash = Ecmp.flow_hash ~group ~sender in
  let plane = Ecmp.spine_choice topo ~hash in
  (Topology.pod_of_host topo sender * topo.Topology.spines_per_pod) + plane

let test_recovery_after_failure () =
  let fabric, s = session () in
  ignore (Reliable.broadcast s ~payload:64);
  ignore (Reliable.broadcast s ~payload:64);
  (* Fail the spine this flow rides: packets 2-4 are lost beyond the local
     leaf. *)
  let victim = failing_spine ~group:5 ~sender:0 in
  Fabric.fail_spine fabric victim;
  for _ = 1 to 3 do
    ignore (Reliable.broadcast s ~payload:64)
  done;
  Alcotest.(check bool) "gaps while failed" false (Reliable.complete s);
  (* Repairs cannot succeed while the path is down (same ECMP choice). *)
  Alcotest.(check bool) "repair fails during outage" false
    (Reliable.repair_until_complete ~max_rounds:2 s);
  (* After recovery, NAK/retransmit completes the stream. *)
  Fabric.recover_spine fabric victim;
  Alcotest.(check bool) "repair succeeds after recovery" true
    (Reliable.repair_until_complete s);
  List.iter
    (fun r -> Alcotest.(check int) "full prefix" 5 (Reliable.delivered_in_order s r))
    (Reliable.receivers s);
  let st = Reliable.stats s in
  Alcotest.(check bool) "repairs happened" true (st.Reliable.repairs_sent > 0);
  Alcotest.(check bool) "naks recorded" true (st.Reliable.naks > 0)

let test_duplicates_discarded () =
  let _, s = session () in
  ignore (Reliable.broadcast s ~payload:64);
  (* A spurious repair of an already-delivered sequence is deduplicated. *)
  ignore (Reliable.repair_round s);
  let before = (Reliable.stats s).Reliable.duplicates_discarded in
  Alcotest.(check int) "no repairs when complete" 0 (Reliable.repair_round s);
  Alcotest.(check int) "dedup counter stable" before
    (Reliable.stats s).Reliable.duplicates_discarded;
  List.iter
    (fun r -> Alcotest.(check int) "exactly-once" 1 (Reliable.delivered_in_order s r))
    (Reliable.receivers s)

let test_in_order_prefix_semantics () =
  let fabric, s = session () in
  let victim = failing_spine ~group:5 ~sender:0 in
  ignore (Reliable.broadcast s ~payload:64);
  Fabric.fail_spine fabric victim;
  ignore (Reliable.broadcast s ~payload:64);
  Fabric.recover_spine fabric victim;
  ignore (Reliable.broadcast s ~payload:64);
  (* Remote receivers hold 0 and 2 but not 1: the application prefix stops
     at 1 until repair. *)
  let remote = (5 * h) + 2 in
  Alcotest.(check int) "prefix blocked by gap" 1 (Reliable.delivered_in_order s remote);
  Alcotest.(check bool) "repair completes" true (Reliable.repair_until_complete s);
  Alcotest.(check int) "prefix resumes" 3 (Reliable.delivered_in_order s remote)

(* The same session, expressed symbolically over a hand-built view (no
   controller involved): healthy, the per-sender predicate subsumes every
   receiver endpoint; with the flow's spine down it must not — the witness
   names exactly the first remote receiver the repair protocol will have to
   fill in — and after recovery the predicate is pointer-identical to the
   healthy one again. *)
let view ?spine_ok () =
  let tree = Tree.of_members topo members in
  let srules = Srule_state.create topo ~fmax:100 in
  let enc = Encoding.encode Params.default srules tree in
  let g =
    {
      Installed_config.gid = 5;
      receivers = members;
      senders = [ 0 ];
      enc = Some enc;
      overrides = [];
    }
  in
  Installed_config.make ?spine_ok topo Params.default [ g ]

let test_symbolic_coverage_mirrors_outage () =
  let ctx = Pred.create_ctx () in
  let healthy = view () in
  let need = Verify.receiver_endpoints ctx healthy ~group:5 ~sender:0 in
  let healthy_pred =
    match Verify.compile_sender ctx healthy ~group:5 ~sender:0 with
    | None -> Alcotest.fail "healthy session must have a multicast path"
    | Some d -> d
  in
  Alcotest.(check bool) "healthy: covers every receiver" true
    (Verify.subsumes ~big:healthy_pred ~small:need);
  Alcotest.(check bool) "healthy: compile matches intent" true
    (Verify.equiv
       (Verify.compile ctx healthy ~group:5)
       (Verify.intent ctx healthy ~group:5));
  (* Fail the spine this flow rides — the view's health, not the fabric's. *)
  let victim = failing_spine ~group:5 ~sender:0 in
  let spine_ok = Array.make (Topology.num_spines topo) true in
  spine_ok.(victim) <- false;
  let failed = view ~spine_ok () in
  (match Verify.compile_sender ctx failed ~group:5 ~sender:0 with
  | None -> Alcotest.fail "outage is a lossy path, not a unicast degrade"
  | Some d -> (
      match Verify.check_subsumes ~group:5 ~big:d ~small:need with
      | Ok () -> Alcotest.fail "a dead spine must lose the remote receivers"
      | Error w ->
          (* first receiver beyond the sender's leaf, in canonical order *)
          Alcotest.(check string) "outage witness" "5/leaf5/2"
            (Format.asprintf "%a" Verify.pp_witness w)));
  (* Recovery: a fresh all-healthy view compiles to the same predicate —
     pointer-identical, since both live in one universe. *)
  let recovered = view () in
  match Verify.compile_sender ctx recovered ~group:5 ~sender:0 with
  | None -> Alcotest.fail "recovered session must have a multicast path"
  | Some d ->
      Alcotest.(check bool) "recovered == healthy (hash-consed)" true
        (Verify.equiv healthy_pred d)

let test_non_receiver_raises () =
  let _, s = session () in
  Alcotest.check_raises "sender is not a receiver" Not_found (fun () ->
      ignore (Reliable.delivered_in_order s 0));
  Alcotest.check_raises "outsider" Not_found (fun () ->
      ignore (Reliable.delivered_in_order s 3))

let tests =
  [
    Alcotest.test_case "lossless stream" `Quick test_lossless_stream;
    Alcotest.test_case "recovery after failure" `Quick test_recovery_after_failure;
    Alcotest.test_case "duplicates discarded" `Quick test_duplicates_discarded;
    Alcotest.test_case "in-order prefix" `Quick test_in_order_prefix_semantics;
    Alcotest.test_case "symbolic coverage mirrors the outage" `Quick
      test_symbolic_coverage_mirrors_outage;
    Alcotest.test_case "non-receiver raises" `Quick test_non_receiver_raises;
  ]
