let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf

(* The Figure 3a group: Ha,Hb (L0); Hk (L5); Hm,Hn (L6); Hp (L7). *)
let fig3_members = [ 0; 1; (5 * h) + 2; (6 * h) + 4; (6 * h) + 5; (7 * h) + 7 ]
let fig3 = Tree.of_members topo fig3_members

let test_structure () =
  Alcotest.(check (list int)) "leaves" [ 0; 5; 6; 7 ] (Tree.leaves fig3);
  Alcotest.(check (list int)) "pods" [ 0; 2; 3 ] (Tree.pods fig3);
  Alcotest.(check int) "members" 6 (Tree.member_count fig3);
  Alcotest.(check int) "leaf count" 4 (Tree.leaf_count fig3);
  Alcotest.(check int) "pod count" 3 (Tree.pod_count fig3)

let test_bitmaps () =
  let bm l = Option.map Bitmap.to_string (Tree.leaf_bitmap fig3 l) in
  Alcotest.(check (option string)) "L0" (Some "11000000") (bm 0);
  Alcotest.(check (option string)) "L5" (Some "00100000") (bm 5);
  Alcotest.(check (option string)) "L6" (Some "00001100") (bm 6);
  Alcotest.(check (option string)) "L7" (Some "00000001") (bm 7);
  Alcotest.(check (option string)) "L1 not in tree" None (bm 1);
  let sbm p = Option.map Bitmap.to_string (Tree.spine_bitmap fig3 p) in
  Alcotest.(check (option string)) "P0: leaf 0 only" (Some "10") (sbm 0);
  Alcotest.(check (option string)) "P2: leaf 5 = port 1" (Some "01") (sbm 2);
  Alcotest.(check (option string)) "P3: both leaves" (Some "11") (sbm 3);
  Alcotest.(check (option string)) "P1 not in tree" None (sbm 1);
  Alcotest.(check string) "core bitmap" "1011" (Bitmap.to_string fig3.Tree.core_bitmap)

let test_mem_host () =
  List.iter
    (fun m -> Alcotest.(check bool) "member" true (Tree.mem_host fig3 m))
    fig3_members;
  Alcotest.(check bool) "non-member" false (Tree.mem_host fig3 2);
  Alcotest.(check bool) "below all members" false (Tree.mem_host fig3 62);
  Alcotest.(check bool) "largest member found" true (Tree.mem_host fig3 ((7 * h) + 7))

let test_dedup_and_sort () =
  let t = Tree.of_members topo [ 5; 3; 5; 3; 1 ] in
  Alcotest.(check int) "deduplicated" 3 (Tree.member_count t);
  Alcotest.(check (array int)) "sorted" [| 1; 3; 5 |] (Tree.member_array t)

let test_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Tree.of_members: empty group")
    (fun () -> ignore (Tree.of_members topo []));
  Alcotest.check_raises "range" (Invalid_argument "Tree.of_members: host out of range")
    (fun () -> ignore (Tree.of_members topo [ 64 ]))

(* Ideal transmissions, hand-computed.

   Single leaf, sender a member: host->leaf (1) + leaf->other members. *)
let test_ideal_single_leaf () =
  let t = Tree.of_members topo [ 0; 1; 2 ] in
  Alcotest.(check int) "sender member" 3 (Tree.ideal_link_transmissions t ~sender:0);
  (* Sender on same leaf but not a member: 1 + 3 deliveries. *)
  Alcotest.(check int) "sender non-member same leaf" 4
    (Tree.ideal_link_transmissions t ~sender:7)

let test_ideal_same_pod () =
  (* Members on L0 and L1 (both pod 0), sender = host 0.
     1 (up) + 1 (local delivery to host 1) + 1 (leaf->spine)
     + 1 (spine->L1) + 1 (L1->host 8) = 5 *)
  let t = Tree.of_members topo [ 0; 1; 8 ] in
  Alcotest.(check int) "same pod" 5 (Tree.ideal_link_transmissions t ~sender:0)

let test_ideal_cross_pod () =
  (* Members: host 0 (L0/pod0), host 40+2 (L5/pod2). Sender host 0.
     1 up + 1 leaf->spine + 1 spine->core + 1 core->spineP2 + 1 spine->L5
     + 1 L5->host = 6 *)
  let t = Tree.of_members topo [ 0; (5 * h) + 2 ] in
  Alcotest.(check int) "cross pod" 6 (Tree.ideal_link_transmissions t ~sender:0)

let test_ideal_fig3 () =
  (* Figure 3a from Ha: 1 (host->L0) + 1 (L0->Hb) + 1 (L0->spine)
     + 1 (spine->core) + 2 (core->P2,P3) + 1 (P2->L5) + 1 (L5->Hk)
     + 2 (P3->L6,L7) + 2 (L6->Hm,Hn) + 1 (L7->Hp) = 13 *)
  Alcotest.(check int) "fig3 from Ha" 13 (Tree.ideal_link_transmissions fig3 ~sender:0);
  (* From Hk (L5, pod 2): 1 + 0 local + 1 up + 1 core + 2 (core->P0,P3)
     + 1 (P0->L0) + 2 (L0->Ha,Hb) + 2 (P3->L6,L7) + 2 + 1 = 13 *)
  Alcotest.(check int) "fig3 from Hk" 13
    (Tree.ideal_link_transmissions fig3 ~sender:((5 * h) + 2))

let fabric = Topology.facebook_fabric ()

let prop_ideal_lower_bound =
  (* Every member other than the sender needs at least its delivery link,
     plus the sender's uplink. *)
  QCheck.Test.make ~name:"ideal transmissions >= members" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 (Topology.num_hosts fabric - 1)))
    (fun members ->
      QCheck.assume (members <> []);
      let t = Tree.of_members fabric members in
      let sender = List.hd members in
      let n = Tree.ideal_link_transmissions t ~sender in
      n >= Tree.member_count t)

let prop_leaf_bitmaps_partition_members =
  QCheck.Test.make ~name:"leaf bitmaps partition the members" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 (Topology.num_hosts fabric - 1)))
    (fun members ->
      QCheck.assume (members <> []);
      let t = Tree.of_members fabric members in
      let total =
        List.fold_left
          (fun acc (_, bm) -> acc + Bitmap.popcount bm)
          0 t.Tree.leaf_bitmaps
      in
      total = Tree.member_count t)

let prop_spine_bitmaps_cover_leaves =
  QCheck.Test.make ~name:"spine bitmaps cover exactly the tree leaves" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 (Topology.num_hosts fabric - 1)))
    (fun members ->
      QCheck.assume (members <> []);
      let t = Tree.of_members fabric members in
      let from_spines =
        List.concat_map
          (fun (p, bm) ->
            List.map
              (fun port -> (p * fabric.Topology.leaves_per_pod) + port)
              (Bitmap.to_list bm))
          t.Tree.spine_bitmaps
        |> List.sort compare
      in
      from_spines = Tree.leaves t)

let tests =
  [
    Alcotest.test_case "fig3 structure" `Quick test_structure;
    Alcotest.test_case "fig3 bitmaps" `Quick test_bitmaps;
    Alcotest.test_case "mem_host" `Quick test_mem_host;
    Alcotest.test_case "dedup and sort" `Quick test_dedup_and_sort;
    Alcotest.test_case "invalid input" `Quick test_invalid;
    Alcotest.test_case "ideal: single leaf" `Quick test_ideal_single_leaf;
    Alcotest.test_case "ideal: same pod" `Quick test_ideal_same_pod;
    Alcotest.test_case "ideal: cross pod" `Quick test_ideal_cross_pod;
    Alcotest.test_case "ideal: figure 3" `Quick test_ideal_fig3;
    QCheck_alcotest.to_alcotest prop_ideal_lower_bound;
    QCheck_alcotest.to_alcotest prop_leaf_bitmaps_partition_members;
    QCheck_alcotest.to_alcotest prop_spine_bitmaps_cover_leaves;
  ]
