(* The symbolic forwarding-equivalence layer: canonical predicate algebra
   (hash-consing, subsumption, witnesses) and — the load-bearing property —
   agreement between the symbolic per-sender compiler and an actual packet
   injection on randomized memberships, health states and sender choices. *)

let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf

(* {1 Predicate algebra} *)

let test_hash_consing () =
  let ctx = Pred.create_ctx () in
  let a = Pred.of_pairs ctx [ (Pred.Leaf 3, 1); (Pred.Core, 2); (Pred.Spine 1, 0) ] in
  let b = Pred.of_pairs ctx [ (Pred.Spine 1, 0); (Pred.Leaf 3, 1); (Pred.Core, 2) ] in
  Alcotest.(check bool) "order-insensitive interning" true (Pred.equiv a b);
  let c = Pred.of_pairs ctx [ (Pred.Leaf 3, 1); (Pred.Core, 2) ] in
  Alcotest.(check bool) "distinct sets distinct" false (Pred.equiv a c);
  Alcotest.(check int) "duplicates collapse" 3
    (Pred.cardinal (Pred.of_pairs ctx [ (Pred.Core, 0); (Pred.Core, 0); (Pred.Core, 1); (Pred.Leaf 0, 0) ]));
  Alcotest.(check bool) "empty is empty" true
    (Pred.is_empty (Pred.of_pairs ctx []))

let test_canonical_order_and_pp () =
  let ctx = Pred.create_ctx () in
  let p = Pred.of_pairs ctx [ (Pred.Leaf 4, 7); (Pred.Spine 2, 0); (Pred.Core, 2) ] in
  (* core sorts before spines before leaves: the topmost layer first *)
  Alcotest.(check string) "render" "{core/2, spine2/0, leaf4/7}"
    (Format.asprintf "%a" Pred.pp p);
  Alcotest.(check (list int)) "leaf endpoints" [ (4 * h) + 7 ]
    (Pred.leaf_endpoints p ~topo)

let test_subsumes_and_witnesses () =
  let ctx = Pred.create_ctx () in
  let big = Pred.of_pairs ctx [ (Pred.Core, 1); (Pred.Spine 1, 0); (Pred.Leaf 2, 3); (Pred.Leaf 2, 5) ] in
  let small = Pred.of_pairs ctx [ (Pred.Leaf 2, 3); (Pred.Spine 1, 0) ] in
  Alcotest.(check bool) "subsumes" true (Pred.subsumes ~big ~small);
  Alcotest.(check bool) "not the converse" false
    (Pred.subsumes ~big:small ~small:big);
  (match Pred.first_missing ~big:small ~small:big with
  | Some (Pred.Core, 1) -> ()
  | _ -> Alcotest.fail "first missing edge should be the topmost (core/1)");
  (match Verify.diff ~group:9 big small with
  | Some w ->
      Alcotest.(check string) "diff witness" "9/core/1"
        (Format.asprintf "%a" Verify.pp_witness w)
  | None -> Alcotest.fail "diff must find the core edge");
  Alcotest.(check bool) "diff of equal is None" true
    (Verify.diff ~group:0 big big = None)

(* {1 Compile / intent / check_config} *)

let mk_ctrl params =
  let fabric = Fabric.create topo in
  ( Controller.create ~fabric_hooks:(Fabric.controller_hooks fabric) topo params,
    fabric )

let both hosts = List.map (fun x -> (x, Controller.Both)) hosts

let test_compile_matches_intent_healthy () =
  let ctrl, _ = mk_ctrl Params.default in
  ignore (Controller.add_group ctrl ~group:0 (both [ 0; 1; h; (3 * h) + 2 ]));
  ignore (Controller.add_group ctrl ~group:1 (both [ 2; 3 ]));
  ignore (Controller.add_group ctrl ~group:2 (both [ (6 * h) + 1; (7 * h) + 4 ]));
  match Verify.check_controller ctrl with
  | Ok n -> Alcotest.(check int) "three groups checked" 3 n
  | Error w ->
      Alcotest.failf "healthy controller fails its own check: %a"
        Verify.pp_witness w

let test_check_config_finds_lost_receiver () =
  let ctrl, _ = mk_ctrl Params.default in
  ignore (Controller.add_group ctrl ~group:0 (both [ 0; 1; h ]));
  let cfg = Controller.installed_config ctrl in
  (* Corrupt the view: drop host 1's port from every leaf-layer rule of
     group 0 — the symbolic check must name exactly that endpoint. *)
  let corrupt (g : Installed_config.group_view) =
    match g.Installed_config.enc with
    | None -> g
    | Some enc ->
        List.iter
          (fun (r : Prule.prule) ->
            if Prule.rule_mem r 0 then Bitmap.clear r.Prule.bitmap 1)
          enc.Encoding.d_leaf.Clustering.prules;
        List.iter
          (fun (l, bm) -> if l = 0 then Bitmap.clear bm 1)
          enc.Encoding.d_leaf.Clustering.srules;
        g
  in
  let cfg = { cfg with Installed_config.groups = List.map corrupt cfg.Installed_config.groups } in
  match Verify.check_config cfg with
  | Ok _ -> Alcotest.fail "corrupted config must fail the check"
  | Error w ->
      Alcotest.(check string) "witness names the lost endpoint" "0/leaf0/1"
        (Format.asprintf "%a" Verify.pp_witness w)

let test_snapshot_view_matches_live () =
  let ctrl, _ = mk_ctrl Params.default in
  ignore (Controller.add_group ctrl ~group:3 (both [ 0; (2 * h) + 1; (5 * h) + 5 ]));
  ignore (Controller.fail_spine ctrl 1);
  let ctx = Pred.create_ctx () in
  let live = Controller.installed_config ctrl in
  let snap = Controller.installed_config_of_snapshot (Controller.snapshot ctrl) in
  Alcotest.(check bool) "snapshot view compiles identically" true
    (Verify.equiv
       (Verify.compile ctx live ~group:3)
       (Verify.compile ctx snap ~group:3));
  match Verify.compile_sender ctx live ~group:3 ~sender:0,
        Verify.compile_sender ctx snap ~group:3 ~sender:0 with
  | Some a, Some b ->
      Alcotest.(check bool) "per-sender too (incl. overrides/health)" true
        (Verify.equiv a b)
  | _ -> Alcotest.fail "multicast path expected on both views"

(* {1 Symbolic walk vs. packet injection} *)

(* Random membership + random health + every member as sender: the
   endpoints of [compile_sender] must equal the delivered-host set of a
   real [Fabric.inject] of the controller's own header, whenever the
   controller still has a multicast path. Fabric and controller health are
   flipped in lockstep, as the control plane does. *)
let gen_scenario =
  QCheck.Gen.(
    let hosts = Topology.num_hosts topo in
    triple
      (list_size (int_range 2 12) (int_range 0 (hosts - 1)))
      (list_size (int_range 0 4) (int_range 0 (Topology.num_spines topo - 1)))
      (list_size (int_range 0 6)
         (pair
            (int_range 0 (Topology.num_leaves topo - 1))
            (int_range 0 (topo.Topology.spines_per_pod - 1)))))

let arb_scenario =
  QCheck.make
    ~print:(fun (ms, spines, links) ->
      Printf.sprintf "members=[%s] spines=[%s] links=[%s]"
        (String.concat ";" (List.map string_of_int ms))
        (String.concat ";" (List.map string_of_int spines))
        (String.concat ";"
           (List.map (fun (l, p) -> Printf.sprintf "%d.%d" l p) links)))
    gen_scenario

let prop_symbolic_agrees_with_injection =
  QCheck.Test.make
    ~name:"compile_sender endpoints == injected delivery, any health" ~count:60
    arb_scenario (fun (ms, spines, links) ->
      let members = List.sort_uniq Int.compare ms in
      QCheck.assume (List.length members >= 2);
      let ctrl, fabric = mk_ctrl Params.default in
      ignore (Controller.add_group ctrl ~group:0 (both members));
      List.iter
        (fun s ->
          Fabric.fail_spine fabric s;
          ignore (Controller.fail_spine ctrl s))
        (List.sort_uniq Int.compare spines);
      List.iter
        (fun (leaf, plane) ->
          Fabric.fail_link fabric ~leaf ~plane;
          ignore (Controller.fail_link ctrl ~leaf ~plane))
        (List.sort_uniq (fun (a, b) (c, d) ->
             match Int.compare a c with 0 -> Int.compare b d | n -> n)
           links);
      let cfg = Controller.installed_config ctrl in
      let ctx = Pred.create_ctx () in
      List.for_all
        (fun sender ->
          match Verify.compile_sender ctx cfg ~group:0 ~sender with
          | None -> Controller.header ctrl ~group:0 ~sender = None
          | Some pred -> (
              match Controller.header ctrl ~group:0 ~sender with
              | None ->
                  QCheck.Test.fail_reportf
                    "sender %d: symbolic path but unicast header" sender
              | Some header ->
                  let report =
                    Fabric.inject fabric ~sender ~group:0 ~header ~payload:64
                  in
                  let injected =
                    List.map fst report.Fabric.delivered
                    |> List.sort_uniq Int.compare
                  in
                  let symbolic = Pred.leaf_endpoints pred ~topo in
                  if injected <> symbolic then
                    QCheck.Test.fail_reportf
                      "sender %d: injected [%s] vs symbolic [%s]" sender
                      (String.concat ";" (List.map string_of_int injected))
                      (String.concat ";" (List.map string_of_int symbolic))
                  else true))
        members)

(* {1 Header-only interpretation} *)

let test_header_pred_walks_the_header () =
  let tree = Tree.of_members topo [ 0; 1; (2 * h) + 3; (6 * h) + 2 ] in
  let srules = Srule_state.create topo ~fmax:100 in
  let enc = Encoding.encode Params.default srules tree in
  let ctx = Pred.create_ctx () in
  let header = Encoding.header_for_sender enc ~sender:0 in
  let p = Verify.header_pred ctx topo ~sender:0 header in
  (* co-located member 1 appears; the sender itself never does *)
  let eps = Pred.leaf_endpoints p ~topo in
  Alcotest.(check bool) "member 1 delivered" true (List.mem 1 eps);
  Alcotest.(check bool) "sender not delivered" false (List.mem 0 eps);
  Alcotest.(check bool) "remote pod member delivered" true
    (List.mem ((6 * h) + 2) eps)

let tests =
  [
    Alcotest.test_case "hash-consing" `Quick test_hash_consing;
    Alcotest.test_case "canonical order and rendering" `Quick
      test_canonical_order_and_pp;
    Alcotest.test_case "subsumption and witnesses" `Quick
      test_subsumes_and_witnesses;
    Alcotest.test_case "compile == intent on a healthy controller" `Quick
      test_compile_matches_intent_healthy;
    Alcotest.test_case "check_config pinpoints a lost receiver" `Quick
      test_check_config_finds_lost_receiver;
    Alcotest.test_case "snapshot view compiles like the live one" `Quick
      test_snapshot_view_matches_live;
    QCheck_alcotest.to_alcotest prop_symbolic_agrees_with_injection;
    Alcotest.test_case "header-only interpretation" `Quick
      test_header_pred_walks_the_header;
  ]
