let topo = Topology.running_example ()

let test_tenant_size_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 2_000 do
    let s = Vm_placement.tenant_size_sample rng ~min:10 ~mean:135.5 ~max:5000 in
    Alcotest.(check bool) "clamped" true (s >= 10 && s <= 5000)
  done

let test_tenant_size_median () =
  let rng = Rng.create 2 in
  let sizes = Vm_placement.default_tenant_sizes rng 20_000 in
  let sorted = Array.map float_of_int sizes in
  Array.sort compare sorted;
  let median = Stats.percentile sorted 0.5 in
  (* Calibrated to the paper's published median of 97. *)
  Alcotest.(check bool) "median near 97" true (abs_float (median -. 97.0) < 10.0)

let place ?(seed = 3) ~strategy sizes =
  let rng = Rng.create seed in
  Vm_placement.place rng topo ~strategy ~host_capacity:20
    ~tenant_sizes:(Array.of_list sizes)

let test_distinct_hosts_per_tenant () =
  let p = place ~strategy:(Vm_placement.Pack_up_to 4) [ 30; 12; 25 ] in
  Array.iter
    (fun t ->
      let hosts = Array.to_list t.Vm_placement.vm_hosts in
      Alcotest.(check int) "no host reuse within tenant"
        (List.length hosts)
        (List.length (List.sort_uniq compare hosts)))
    p.Vm_placement.tenants

let test_all_vms_placed () =
  let sizes = [ 30; 12; 25; 40 ] in
  let p = place ~strategy:(Vm_placement.Pack_up_to 4) sizes in
  Alcotest.(check int) "total placed" (List.fold_left ( + ) 0 sizes)
    (Vm_placement.total_vms p);
  Array.iteri
    (fun i t ->
      Alcotest.(check int) "tenant size" (List.nth sizes i)
        (Array.length t.Vm_placement.vm_hosts))
    p.Vm_placement.tenants

let test_host_capacity_respected () =
  (* 64 hosts x capacity 2 = 128 slots; place 120 VMs. *)
  let p = place ~strategy:Vm_placement.Unlimited ~seed:4 [ 60; 60 ] |> fun p ->
    ignore p;
    let rng = Rng.create 4 in
    Vm_placement.place rng topo ~strategy:Vm_placement.Unlimited ~host_capacity:2
      ~tenant_sizes:[| 60; 60 |]
  in
  Array.iter
    (fun load -> Alcotest.(check bool) "load <= 2" true (load <= 2))
    p.Vm_placement.host_load

let test_rack_bound_respected () =
  (* Running example: 8 leaves, 8 hosts each. P=2 with a 16-VM tenant fits
     within the bound (8 leaves x 2), so no relaxation should occur. *)
  let p = place ~strategy:(Vm_placement.Pack_up_to 2) [ 16 ] in
  let tenant = p.Vm_placement.tenants.(0) in
  let per_leaf = Hashtbl.create 8 in
  Array.iter
    (fun h ->
      let l = Topology.leaf_of_host topo h in
      Hashtbl.replace per_leaf l
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_leaf l)))
    tenant.Vm_placement.vm_hosts;
  Hashtbl.iter
    (fun _ n -> Alcotest.(check bool) "at most P per rack" true (n <= 2))
    per_leaf

let test_rack_bound_relaxes_when_exhausted () =
  (* P=1 with a 10-VM tenant on 8 racks must overflow the bound, not fail. *)
  let p = place ~strategy:(Vm_placement.Pack_up_to 1) [ 10 ] in
  Alcotest.(check int) "all placed" 10 (Vm_placement.total_vms p)

let test_capacity_failure () =
  Alcotest.check_raises "datacenter full"
    (Vm_placement.Capacity_exhausted
       "Vm_placement.place: datacenter cannot hold the requested VMs")
    (fun () ->
      let rng = Rng.create 5 in
      ignore
        (Vm_placement.place rng topo ~strategy:Vm_placement.Unlimited
           ~host_capacity:1 ~tenant_sizes:[| 65 |]))

let test_pod_locality_of_packing () =
  (* A 16-VM tenant at P=12 fits under two leaves; pod-by-pod filling keeps
     it within a single pod. *)
  let p = place ~strategy:(Vm_placement.Pack_up_to 12) ~seed:6 [ 16 ] in
  let pods =
    Array.to_list p.Vm_placement.tenants.(0).Vm_placement.vm_hosts
    |> List.map (Topology.pod_of_host topo)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "single pod" 1 (List.length pods)

let test_strategy_parsing () =
  Alcotest.(check bool) "P=3" true
    (Vm_placement.strategy_of_string "3" = Some (Vm_placement.Pack_up_to 3));
  Alcotest.(check bool) "all" true
    (Vm_placement.strategy_of_string "all" = Some Vm_placement.Unlimited);
  Alcotest.(check bool) "garbage" true (Vm_placement.strategy_of_string "x" = None);
  Alcotest.(check bool) "zero" true (Vm_placement.strategy_of_string "0" = None)

(* {1 Group-size distributions} *)

let test_group_sizes_in_bounds () =
  let rng = Rng.create 7 in
  List.iter
    (fun kind ->
      for _ = 1 to 2_000 do
        let tenant_size = 5 + Rng.int rng 500 in
        let s = Group_dist.sample rng kind ~tenant_size in
        Alcotest.(check bool) "within [5, tenant]" true
          (s >= Group_dist.min_size && s <= max Group_dist.min_size tenant_size)
      done)
    [ Group_dist.Wve; Group_dist.Uniform ]

let test_wve_statistics () =
  (* The base (127-node) WVE model must match the published statistics:
     mean ~60, ~80% below 61 members. *)
  let rng = Rng.create 8 in
  let n = 100_000 in
  let below_61 = ref 0 in
  let sum = ref 0 in
  for _ = 1 to n do
    let s = Group_dist.base_sample rng Group_dist.Wve in
    if s < 61 then incr below_61;
    sum := !sum + s
  done;
  let mean = float_of_int !sum /. float_of_int n in
  let frac = float_of_int !below_61 /. float_of_int n in
  Alcotest.(check bool) "mean in [50,70]" true (mean > 50.0 && mean < 70.0);
  Alcotest.(check bool) "fraction < 61 in [0.75,0.85]" true
    (frac > 0.75 && frac < 0.85)

let test_kind_parsing () =
  Alcotest.(check bool) "wve" true (Group_dist.kind_of_string "wve" = Some Group_dist.Wve);
  Alcotest.(check bool) "Uniform" true
    (Group_dist.kind_of_string "Uniform" = Some Group_dist.Uniform);
  Alcotest.(check bool) "bad" true (Group_dist.kind_of_string "zipf" = None)

(* {1 Workload generation} *)

let test_groups_per_tenant_sums () =
  let counts = Workload.groups_per_tenant ~total_groups:100 ~tenant_sizes:[| 10; 30; 60 |] in
  Alcotest.(check int) "sums to total" 100 (Array.fold_left ( + ) 0 counts);
  Alcotest.(check (array int)) "proportional" [| 10; 30; 60 |] counts

let test_groups_per_tenant_remainders () =
  let counts = Workload.groups_per_tenant ~total_groups:10 ~tenant_sizes:[| 1; 1; 1 |] in
  Alcotest.(check int) "sums to total" 10 (Array.fold_left ( + ) 0 counts);
  Array.iter
    (fun c -> Alcotest.(check bool) "within 1 of fair share" true (c >= 3 && c <= 4))
    counts

let test_workload_members_valid () =
  let rng = Rng.create 9 in
  let p = place ~strategy:(Vm_placement.Pack_up_to 4) ~seed:10 [ 40; 30 ] in
  let groups = Workload.generate rng p ~kind:Group_dist.Wve ~total_groups:50 in
  Alcotest.(check int) "group count" 50 (Array.length groups);
  Array.iter
    (fun g ->
      let tenant = p.Vm_placement.tenants.(g.Workload.tenant_id) in
      let tenant_hosts = Array.to_list tenant.Vm_placement.vm_hosts in
      let members = Array.to_list g.Workload.member_hosts in
      Alcotest.(check bool) "members at least minimum" true
        (List.length members >= Group_dist.min_size || List.length members = List.length tenant_hosts);
      Alcotest.(check int) "members distinct" (List.length members)
        (List.length (List.sort_uniq compare members));
      List.iter
        (fun m ->
          Alcotest.(check bool) "member is a tenant VM host" true
            (List.mem m tenant_hosts))
        members)
    groups

let test_iter_matches_generate () =
  let p = place ~strategy:(Vm_placement.Pack_up_to 4) ~seed:11 [ 40; 30 ] in
  let a = Workload.generate (Rng.create 12) p ~kind:Group_dist.Wve ~total_groups:30 in
  let b = ref [] in
  Workload.iter (Rng.create 12) p ~kind:Group_dist.Wve ~total_groups:30 (fun g ->
      b := g :: !b);
  let b = Array.of_list (List.rev !b) in
  Alcotest.(check bool) "identical streams" true (a = b)

let tests =
  [
    Alcotest.test_case "tenant size bounds" `Quick test_tenant_size_bounds;
    Alcotest.test_case "tenant size median" `Quick test_tenant_size_median;
    Alcotest.test_case "distinct hosts per tenant" `Quick test_distinct_hosts_per_tenant;
    Alcotest.test_case "all VMs placed" `Quick test_all_vms_placed;
    Alcotest.test_case "host capacity respected" `Quick test_host_capacity_respected;
    Alcotest.test_case "rack bound respected" `Quick test_rack_bound_respected;
    Alcotest.test_case "rack bound relaxes when exhausted" `Quick
      test_rack_bound_relaxes_when_exhausted;
    Alcotest.test_case "capacity failure raises" `Quick test_capacity_failure;
    Alcotest.test_case "pod locality of packing" `Quick test_pod_locality_of_packing;
    Alcotest.test_case "strategy parsing" `Quick test_strategy_parsing;
    Alcotest.test_case "group sizes in bounds" `Quick test_group_sizes_in_bounds;
    Alcotest.test_case "WVE matches published statistics" `Quick test_wve_statistics;
    Alcotest.test_case "kind parsing" `Quick test_kind_parsing;
    Alcotest.test_case "groups_per_tenant sums" `Quick test_groups_per_tenant_sums;
    Alcotest.test_case "groups_per_tenant remainders" `Quick
      test_groups_per_tenant_remainders;
    Alcotest.test_case "workload members valid" `Quick test_workload_members_valid;
    Alcotest.test_case "iter matches generate" `Quick test_iter_matches_generate;
  ]
