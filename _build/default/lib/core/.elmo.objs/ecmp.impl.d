lib/core/ecmp.ml: Topology
