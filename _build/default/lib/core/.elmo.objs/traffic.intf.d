lib/core/traffic.mli: Encoding
