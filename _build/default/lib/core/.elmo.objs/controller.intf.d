lib/core/controller.mli: Bitmap Encoding Logs Params Prule Srule_state Topology
