lib/core/traffic.ml: Bitmap Clustering Encoding Prule Topology Tree
