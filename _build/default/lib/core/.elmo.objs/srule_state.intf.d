lib/core/srule_state.mli: Topology
