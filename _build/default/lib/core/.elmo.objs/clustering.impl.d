lib/core/clustering.ml: Array Bitmap List Min_k_union Params Prule
