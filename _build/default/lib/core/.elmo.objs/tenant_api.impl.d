lib/core/tenant_api.ml: Array Controller Format Hashtbl Int32 List Option Result Vm_placement
