lib/core/prule.mli: Bitmap Format Params Topology
