lib/core/prule.ml: Bitmap Format List Params Topology
