lib/core/ecmp.mli: Topology
