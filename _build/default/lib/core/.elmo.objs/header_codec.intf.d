lib/core/header_codec.mli: Prule Topology
