lib/core/encoding.ml: Bitmap Clustering List Params Prule Srule_state Topology Tree
