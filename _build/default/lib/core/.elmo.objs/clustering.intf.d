lib/core/clustering.mli: Bitmap Params Prule
