lib/core/header_codec.ml: Bitio Bitmap Bytes List Prule Topology
