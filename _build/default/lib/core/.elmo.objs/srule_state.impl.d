lib/core/srule_state.ml: Array Topology
