lib/core/tenant_api.mli: Controller Format Vm_placement
