lib/core/controller.ml: Array Bitmap Clustering Ecmp Encoding Fun Hashtbl List Logs Option Params Prule Srule_state Topology Tree
