lib/core/encoding.mli: Clustering Params Prule Srule_state Tree
