lib/core/params.ml: Format Printf
