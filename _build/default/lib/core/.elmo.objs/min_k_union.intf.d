lib/core/min_k_union.mli: Bitmap
