lib/core/min_k_union.ml: Array Bitmap List
