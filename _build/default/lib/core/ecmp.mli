(** Deterministic per-flow ECMP hashing, shared by the data plane (to pick
    the actual path of a packet) and the controller (to predict which flows
    a failed switch impacts, §5.1.3b). A flow is identified by
    (group, sender). *)

val flow_hash : group:int -> sender:int -> int
(** Non-negative, stable mix of the flow identifier. *)

val spine_choice : Topology.t -> hash:int -> int
(** Plane (spine index within the sender pod) the flow multipaths onto. *)

val core_choice : Topology.t -> hash:int -> plane:int -> int
(** Physical core the flow multipaths onto from a spine of [plane].
    Raises [Invalid_argument] on a two-tier topology. *)
