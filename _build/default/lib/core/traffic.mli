(** Analytic per-packet traffic accounting (§5.1.2, Fig. 4/5 right).

    For one multicast packet from a given sender under a given encoding,
    counts every link traversal (hypervisor→leaf, fabric hops, leaf→host
    deliveries) and the Elmo header bytes carried on each hop — headers
    shrink as layers are popped (D2d). Extra traversals arise from p-rule
    sharing (OR-ed bitmaps) and from default p-rules; the exact tree gives
    the ideal-multicast baseline.

    The packet-level simulator in [lib/dataplane] performs the same
    forwarding operationally; tests assert both agree. *)

type counts = {
  transmissions : int;  (** link traversals, including host deliveries *)
  ideal_transmissions : int;  (** same packet under ideal multicast *)
  header_bytes : int;  (** Σ over traversals of the header carried *)
  delivered_hosts : int;  (** distinct hosts receiving the packet *)
  spurious_hosts : int;  (** deliveries to hosts outside the group *)
}

val measure : Encoding.t -> sender:int -> counts

val vxlan_encap_bytes : int
(** Outer Ethernet + IP + UDP + VXLAN = 50 bytes, carried by ideal multicast
    and Elmo alike (Elmo rides inside the same tunnel, §2). *)

val overhead_ratio : ?encap:int -> counts -> payload:int -> float
(** [(actual bytes − ideal bytes) / ideal bytes] where both sides carry
    [payload + encap] per traversal ([encap] defaults to
    {!vxlan_encap_bytes}) and Elmo additionally carries its header bytes;
    this is the paper's "traffic overhead (ratio with ideal multicast)"
    minus 1 (0.0 = ideal; the figures plot 1 + this). *)
