(** Per-group Elmo encoding: the common downstream rule sets plus per-sender
    header construction (§3.1–3.2).

    The downstream spine and leaf layers are clustered once per group
    (Algorithm 1) and shared by all senders; the upstream leaf/spine rules
    and the core rule are sender-specific and synthesized on demand by
    {!header_for_sender} (§3.1 D2b–c). *)

type t = {
  tree : Tree.t;
  params : Params.t;
  d_spine : Clustering.result;  (** logical-spine layer, ids are pod numbers *)
  d_leaf : Clustering.result;  (** leaf layer, ids are global leaf numbers *)
}

val encode :
  ?legacy_leaf:(int -> bool) ->
  ?legacy_pod:(int -> bool) ->
  Params.t -> Srule_state.t -> Tree.t -> t
(** Runs Algorithm 1 on both downstream layers, reserving s-rule space in
    the given state as it goes (leaf layer first, as it dominates header
    usage; then spine).

    [legacy_leaf] / [legacy_pod] mark switches that cannot parse Elmo
    headers (§7 incremental deployment): they are excluded from p-rule
    clustering and served by group-table entries directly — their
    group-table capacity remains the scalability bottleneck, exactly as the
    paper notes. A legacy switch whose table is full falls to the default
    p-rule, which it cannot read: those receivers are lost, surfacing as a
    delivery failure in the data-plane simulator. Default: no legacy
    switches. *)

val release : Srule_state.t -> t -> unit
(** Returns the encoding's s-rule reservations (used on group removal or
    re-encoding during churn). *)

val header_for_sender : t -> sender:int -> Prule.header
(** The full header the sender's hypervisor pushes. [sender] is a host; it
    need not host a member VM. *)

val header_bytes : t -> sender:int -> int

val covered_by_prules : t -> bool
(** True when no s-rule and no default rule was needed (strict coverage). *)

val covered_without_default : t -> bool
(** True when no default rule was needed (s-rules allowed) — the paper's
    "groups covered using non-default p-rules" metric (Fig. 4/5 left,
    Table 1 "without using a default p-rule"). *)

val uses_default : t -> bool
val srule_entries : t -> int
(** Physical group-table entries this encoding occupies (a pod-spine s-rule
    counts once per physical spine of the pod). *)

val prule_count : t -> int
(** Downstream p-rules in the header (both layers, excluding defaults). *)
