(** Approximate MIN-K-UNION (§3.2).

    Given a collection of bitmaps, find [k] of them whose bitwise OR has the
    fewest set bits. The exact problem is NP-hard; we use the standard greedy
    approximation the paper cites: seed with the smallest bitmap, then
    repeatedly add the bitmap contributing the fewest new bits. *)

val choose : k:int -> (int * Bitmap.t) array -> int list * Bitmap.t
(** [choose ~k candidates] returns the indices (into [candidates]) of the
    chosen [k] elements and the OR of their bitmaps. Ties break toward lower
    index, making results deterministic. Raises [Invalid_argument] if
    [k <= 0], [candidates] is empty, or [k] exceeds the candidate count. The
    [int] in each pair is an opaque tag preserved for the caller; selection
    looks only at bitmaps. *)
