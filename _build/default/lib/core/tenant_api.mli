(** Tenant-facing group-management API (§2: "The logically-centralized
    controller receives join and leave requests for multicast groups via an
    application programming interface", like the APIs cloud providers expose
    for VMs and load balancers).

    This layer provides the {e address-space isolation} Table 3 credits Elmo
    with: every tenant names groups by its own multicast IP addresses
    (224.0.0.0/4), chosen independently of other tenants — two tenants using
    the same 239.1.1.1 get two disjoint groups. Internally each
    (tenant, address) pair maps to a unique global group identifier handed
    to the {!Controller} (and carried on the wire as the VXLAN VNI).

    Members are named by (tenant, VM index); the VM's host comes from the
    placement. Per-tenant group quotas model the paper's "hundreds of
    dedicated groups per tenant". *)

type t

type error =
  | Not_multicast_address  (** outside 224.0.0.0/4 *)
  | No_such_tenant
  | No_such_vm
  | No_such_group
  | Group_exists
  | Quota_exceeded
  | Already_member
  | Not_a_member

val pp_error : Format.formatter -> error -> unit

val create : Controller.t -> Vm_placement.t -> quota_per_tenant:int -> t
(** [quota_per_tenant] caps concurrent groups per tenant. *)

val create_group :
  t -> tenant:int -> address:int32 -> (unit, error) result

val delete_group : t -> tenant:int -> address:int32 -> (unit, error) result
(** Removes the group and all controller state. *)

val join :
  t -> tenant:int -> address:int32 -> vm:int -> role:Controller.role ->
  (Controller.updates, error) result
(** Adds the tenant's [vm]-th VM. The group must exist. *)

val leave :
  t -> tenant:int -> address:int32 -> vm:int ->
  (Controller.updates, error) result

val group_id : t -> tenant:int -> address:int32 -> int option
(** The internal (wire) identifier, if the group exists. *)

val groups_of_tenant : t -> int -> int32 list
(** Addresses the tenant currently owns, ascending. *)

val group_count : t -> int
