lib/placement/group_dist.mli: Format Rng
