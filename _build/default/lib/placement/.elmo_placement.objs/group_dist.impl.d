lib/placement/group_dist.ml: Float Format Rng
