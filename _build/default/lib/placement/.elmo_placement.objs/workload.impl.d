lib/placement/workload.ml: Array Float Group_dist List Rng Vm_placement
