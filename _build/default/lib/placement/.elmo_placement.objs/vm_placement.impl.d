lib/placement/vm_placement.ml: Array Float Format Hashtbl List Option Rng Stdlib String Topology
