lib/placement/workload.mli: Group_dist Rng Vm_placement
