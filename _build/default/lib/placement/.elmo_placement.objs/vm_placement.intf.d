lib/placement/vm_placement.mli: Format Rng Topology
