type kind = Wve | Uniform

let min_size = 5
let wve_base_nodes = 127

(* Lognormal body fitted to the published WVE statistics (see .mli). *)
let wve_body_mu = 2.745
let wve_body_sigma = 1.588
let wve_tail_prob = 0.006
let wve_tail_lo = 700
let wve_tail_hi = 1300

(* The body lognormal is unbounded; cap it where the paper's tail begins so
   that only the explicit 0.6% tail produces very large groups. *)
let wve_body_cap = 700

let base_wve rng =
  if Rng.float rng 1.0 < wve_tail_prob then Rng.int_in rng wve_tail_lo wve_tail_hi
  else begin
    let draw = Rng.lognormal rng ~mu:wve_body_mu ~sigma:wve_body_sigma in
    let size = int_of_float (Float.round draw) in
    max min_size (min wve_body_cap size)
  end

let base_sample rng = function
  | Wve -> base_wve rng
  | Uniform -> Rng.int_in rng min_size wve_base_nodes

let sample rng kind ~tenant_size =
  let upper = max min_size tenant_size in
  match kind with
  | Wve ->
      (* Trace-scale draw clamped to the tenant: reproduces the trace's
         published statistics (mean ~60) independent of tenant size, which
         is what makes the paper's per-placement coverage numbers work. *)
      max min_size (min upper (base_wve rng))
  | Uniform -> Rng.int_in rng min_size upper

let kind_of_string = function
  | "wve" | "WVE" -> Some Wve
  | "uniform" | "Uniform" -> Some Uniform
  | _ -> None

let pp_kind ppf = function
  | Wve -> Format.pp_print_string ppf "WVE"
  | Uniform -> Format.pp_print_string ppf "Uniform"
