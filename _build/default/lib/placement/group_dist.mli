(** Multicast group-size distributions (§5.1.1).

    Two distributions, both scaled by tenant size as in the paper:

    - {b WVE}: a parametric model of the IBM WebSphere Virtual Enterprise
      trace, which the paper characterizes only by its statistics over a
      127-node deployment — mean group size 60, ~80% of groups below 61
      members, ~0.6% above 700, minimum 5. We model the body as a lognormal
      (sigma 1.588, mu 2.745; fitted so the base distribution has mean ≈55
      and P(size < 61) ≈ 0.80) mixed with a 0.6% heavy tail around 700–1300;
      the draw is clamped to [\[min_size, tenant_size\]] ("scaled by the
      tenant's size" in the paper's words).
    - {b Uniform}: uniform between the minimum group size and the tenant
      size.

    Substitution note (DESIGN.md §3): the real trace is proprietary; this
    model reproduces its published statistics exactly at base scale. *)

type kind = Wve | Uniform

val min_size : int
(** Minimum group size (5, as in the paper). *)

val sample : Rng.t -> kind -> tenant_size:int -> int
(** Draws a group size in [\[min_size, max min_size tenant_size\]]. *)

val base_sample : Rng.t -> kind -> int
(** Unscaled draw (WVE: the 127-node base distribution; Uniform: over
    [\[5,127\]]). Exposed for distribution tests. *)

val kind_of_string : string -> kind option
val pp_kind : Format.formatter -> kind -> unit
