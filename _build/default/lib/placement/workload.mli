(** Multicast group workload generation (§5.1.1).

    Assigns groups to tenants proportionally to tenant size until the
    requested total is reached, draws each group's size from the configured
    distribution, and selects members uniformly without replacement from the
    tenant's VMs. Because a tenant's VMs never share a host, a group's member
    hosts are distinct. *)

type group = {
  group_id : int;
  tenant_id : int;
  member_hosts : int array;  (** distinct hosts of the member VMs *)
}

val groups_per_tenant : total_groups:int -> tenant_sizes:int array -> int array
(** Largest-remainder proportional allocation; sums to [total_groups]. Every
    tenant with at least one VM gets its proportional share (possibly 0). *)

val generate :
  Rng.t ->
  Vm_placement.t ->
  kind:Group_dist.kind ->
  total_groups:int ->
  group array
(** Materializes all groups (use {!iter} for million-group runs). *)

val iter :
  Rng.t ->
  Vm_placement.t ->
  kind:Group_dist.kind ->
  total_groups:int ->
  (group -> unit) ->
  unit
(** Streams groups in [group_id] order without retaining them; draws the same
    groups as {!generate} for the same RNG state. *)
