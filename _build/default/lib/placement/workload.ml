type group = { group_id : int; tenant_id : int; member_hosts : int array }

let groups_per_tenant ~total_groups ~tenant_sizes =
  if total_groups < 0 then invalid_arg "Workload.groups_per_tenant";
  let n = Array.length tenant_sizes in
  if n = 0 then [||]
  else begin
    let total_size = Array.fold_left ( + ) 0 tenant_sizes in
    if total_size = 0 then invalid_arg "Workload.groups_per_tenant: no VMs";
    let exact =
      Array.map
        (fun s ->
          float_of_int total_groups *. float_of_int s /. float_of_int total_size)
        tenant_sizes
    in
    let counts = Array.map (fun x -> int_of_float (Float.floor x)) exact in
    let assigned = Array.fold_left ( + ) 0 counts in
    (* Largest remainders get the leftover groups. *)
    let rem =
      Array.mapi (fun i x -> (x -. Float.floor x, i)) exact |> Array.to_list
      |> List.sort (fun (a, i) (b, j) ->
             match compare b a with 0 -> compare i j | c -> c)
    in
    let leftover = total_groups - assigned in
    List.iteri
      (fun rank (_, i) -> if rank < leftover then counts.(i) <- counts.(i) + 1)
      rem;
    counts
  end

let iter rng placement ~kind ~total_groups f =
  let tenant_sizes =
    Array.map
      (fun t -> Array.length t.Vm_placement.vm_hosts)
      placement.Vm_placement.tenants
  in
  let counts = groups_per_tenant ~total_groups ~tenant_sizes in
  let group_id = ref 0 in
  Array.iteri
    (fun tenant_id count ->
      let vms = placement.Vm_placement.tenants.(tenant_id).Vm_placement.vm_hosts in
      for _ = 1 to count do
        let size = Group_dist.sample rng kind ~tenant_size:(Array.length vms) in
        let size = min size (Array.length vms) in
        let member_hosts = Rng.sample_without_replacement rng size vms in
        f { group_id = !group_id; tenant_id; member_hosts };
        incr group_id
      done)
    counts

let generate rng placement ~kind ~total_groups =
  let acc = ref [] in
  iter rng placement ~kind ~total_groups (fun g -> acc := g :: !acc);
  Array.of_list (List.rev !acc)
