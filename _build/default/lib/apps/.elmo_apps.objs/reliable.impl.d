lib/apps/reliable.ml: Array Encoding Fabric Hashtbl List Tree
