lib/apps/reliable.mli: Encoding Fabric
