lib/apps/multidc.ml: Array Encoding Fabric Fun Hashtbl List Option Params Srule_state Tree
