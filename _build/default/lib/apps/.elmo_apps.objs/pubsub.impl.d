lib/apps/pubsub.ml: Encoding Fabric Float List Params Srule_state Tree Unicast_overlay
