lib/apps/multidc.mli: Fabric Params
