lib/apps/pubsub.mli: Fabric
