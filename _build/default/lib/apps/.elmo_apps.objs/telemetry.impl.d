lib/apps/telemetry.ml: Encoding Fabric List Params Srule_state Tree Unicast_overlay
