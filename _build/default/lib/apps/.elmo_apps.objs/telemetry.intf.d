lib/apps/telemetry.mli: Fabric
