(** sFlow-style host telemetry over the simulated fabric (§5.2.2).

    An sFlow agent periodically exports a metrics datagram to a set of
    collectors. Under unicast the agent's host emits one datagram per
    collector; under Elmo it emits one multicast datagram (replication
    verified through {!Fabric}). Egress bandwidth at the agent's host is
    datagram rate × size × emitted copies; the paper's calibration point is
    5.8 Kbps for a single collector stream (370.4 Kbps for 64 unicast
    collectors). *)

type mode = Unicast | Elmo

type measurement = {
  collectors : int;
  datagrams_per_export : int;  (** emitted by the agent host (measured) *)
  egress_kbps : float;
  all_delivered : bool;
}

val per_stream_kbps : float
(** Calibration: 5.8 Kbps per collector stream. *)

val run :
  Fabric.t -> agent:int -> collectors:int list -> mode -> measurement

val sweep :
  Fabric.t -> agent:int -> collectors:int list -> mode -> int list ->
  measurement list
