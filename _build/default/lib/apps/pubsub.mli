(** ZeroMQ-style publish-subscribe over the simulated fabric (§5.2.1,
    Figure 6).

    The structural quantity — how many packets the publisher's host must
    emit per message — is {e measured} by running the workload: under
    unicast the publisher opens one stream per subscriber and emits N
    copies; under Elmo it emits exactly one packet, which the fabric
    replicates (verified by injection through {!Fabric}). Wall-clock
    throughput and CPU are then derived with a cost model calibrated to the
    paper's testbed endpoints (a publisher VM sustains 185K requests/s to a
    single subscriber at 4.9% CPU; per-subscriber connection state costs
    grow linearly and saturate the VM's core).

    Substitution note (DESIGN.md §3): the paper measures 9 physical servers
    with PISCES; we replay the same workload on the packet-level simulator
    and keep the published calibration points. *)

type mode = Unicast | Elmo

type measurement = {
  subscribers : int;
  packets_per_message : int;  (** emitted by the publisher host (measured) *)
  fabric_transmissions : int;  (** total link traversals per message *)
  throughput_rps : float;  (** requests/s sustained per subscriber *)
  cpu_percent : float;  (** publisher VM CPU *)
  all_delivered : bool;  (** every subscriber got the message exactly once *)
}

val single_subscriber_rps : float
(** Calibration: 185,000 requests/s. *)

val base_cpu_percent : float
(** Calibration: 4.9% at one stream. *)

val run :
  Fabric.t -> publisher:int -> subscribers:int list -> mode -> measurement
(** Simulates one message to [subscribers] (distinct hosts, publisher
    excluded) and derives the steady-state rates. Raises [Invalid_argument]
    on an empty subscriber list or a subscriber equal to the publisher. *)

val sweep :
  Fabric.t -> publisher:int -> subscribers:int list -> mode -> int list ->
  measurement list
(** [sweep fabric ~publisher ~subscribers mode sizes] measures prefixes of
    the subscriber list with the given sizes (Figure 6's x-axis). *)
