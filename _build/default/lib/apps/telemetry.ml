type mode = Unicast | Elmo

type measurement = {
  collectors : int;
  datagrams_per_export : int;
  egress_kbps : float;
  all_delivered : bool;
}

let per_stream_kbps = 5.8

let run fabric ~agent ~collectors mode =
  if collectors = [] then invalid_arg "Telemetry.run: no collectors";
  if List.mem agent collectors then
    invalid_arg "Telemetry.run: agent cannot collect from itself";
  let topo = Fabric.topology fabric in
  let n = List.length collectors in
  let tree = Tree.of_members topo collectors in
  match mode with
  | Unicast ->
      let cost = Unicast_overlay.unicast tree ~sender:agent in
      {
        collectors = n;
        datagrams_per_export = cost.Unicast_overlay.source_packets;
        egress_kbps =
          per_stream_kbps *. float_of_int cost.Unicast_overlay.source_packets;
        all_delivered = true;
      }
  | Elmo ->
      let params = Params.default in
      let srules = Srule_state.create topo ~fmax:params.Params.fmax in
      let enc = Encoding.encode params srules tree in
      let group = 0x8000 + n in
      Fabric.install_encoding fabric ~group enc;
      let header = Encoding.header_for_sender enc ~sender:agent in
      let report = Fabric.inject fabric ~sender:agent ~group ~header ~payload:256 in
      Fabric.remove_encoding fabric ~group enc;
      {
        collectors = n;
        datagrams_per_export = 1;
        egress_kbps = per_stream_kbps;
        all_delivered = Fabric.deliveries_correct report ~tree ~sender:agent;
      }

let sweep fabric ~agent ~collectors mode sizes =
  List.map
    (fun size ->
      if size <= 0 || size > List.length collectors then
        invalid_arg "Telemetry.sweep: size out of range";
      let cs = List.filteri (fun i _ -> i < size) collectors in
      run fabric ~agent ~collectors:cs mode)
    sizes
