type mode = Unicast | Elmo

type measurement = {
  subscribers : int;
  packets_per_message : int;
  fabric_transmissions : int;
  throughput_rps : float;
  cpu_percent : float;
  all_delivered : bool;
}

let single_subscriber_rps = 185_000.0
let base_cpu_percent = 4.9

(* Linear per-stream CPU cost fitted to the paper's 32% at 64 subscribers. *)
let per_stream_cpu = (32.0 -. base_cpu_percent) /. 63.0

let derive_rates ~streams ~packets_per_message =
  let throughput = single_subscriber_rps /. float_of_int packets_per_message in
  let cpu =
    Float.min 100.0 (base_cpu_percent +. (per_stream_cpu *. float_of_int (streams - 1)))
  in
  (throughput, cpu)

let check_subscribers ~publisher subscribers =
  if subscribers = [] then invalid_arg "Pubsub.run: no subscribers";
  if List.mem publisher subscribers then
    invalid_arg "Pubsub.run: publisher cannot subscribe to itself";
  if
    List.length (List.sort_uniq compare subscribers)
    <> List.length subscribers
  then invalid_arg "Pubsub.run: duplicate subscriber"

let run fabric ~publisher ~subscribers mode =
  check_subscribers ~publisher subscribers;
  let topo = Fabric.topology fabric in
  let n = List.length subscribers in
  let tree = Tree.of_members topo subscribers in
  match mode with
  | Unicast ->
      let cost = Unicast_overlay.unicast tree ~sender:publisher in
      let throughput_rps, cpu_percent =
        derive_rates ~streams:n ~packets_per_message:cost.Unicast_overlay.source_packets
      in
      {
        subscribers = n;
        packets_per_message = cost.Unicast_overlay.source_packets;
        fabric_transmissions = cost.Unicast_overlay.transmissions;
        throughput_rps;
        cpu_percent;
        all_delivered = true;
      }
  | Elmo ->
      let params = Params.default in
      let srules = Srule_state.create topo ~fmax:params.Params.fmax in
      let enc = Encoding.encode params srules tree in
      let group = 0x7000 + n in
      Fabric.install_encoding fabric ~group enc;
      let header = Encoding.header_for_sender enc ~sender:publisher in
      let report =
        Fabric.inject fabric ~sender:publisher ~group ~header ~payload:100
      in
      Fabric.remove_encoding fabric ~group enc;
      let throughput_rps, cpu_percent =
        (* One multicast stream regardless of group size. *)
        derive_rates ~streams:1 ~packets_per_message:1
      in
      {
        subscribers = n;
        packets_per_message = 1;
        fabric_transmissions = report.Fabric.transmissions;
        throughput_rps;
        cpu_percent;
        all_delivered =
          Fabric.deliveries_correct report ~tree ~sender:publisher;
      }

let sweep fabric ~publisher ~subscribers mode sizes =
  List.map
    (fun size ->
      if size <= 0 || size > List.length subscribers then
        invalid_arg "Pubsub.sweep: size out of range";
      let subs = List.filteri (fun i _ -> i < size) subscribers in
      run fabric ~publisher ~subscribers:subs mode)
    sizes
