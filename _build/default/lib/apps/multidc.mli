(** Multi-datacenter multicast (§7, "Path to deployment").

    The paper's scheme: a group spanning datacenters keeps an independent
    Elmo encoding per datacenter; the source hypervisor multicasts locally
    and sends one WAN {e unicast} to a relay hypervisor in each remote
    datacenter with members, which re-multicasts using that datacenter's
    p-/s-rules.

    Each datacenter is a full {!Fabric}; members are (datacenter, host)
    pairs. The relay of a datacenter is its lowest-numbered member host. *)

type t

val create : Params.t -> Fabric.t list -> t
(** One fabric per datacenter. Raises [Invalid_argument] on an empty list. *)

val datacenters : t -> int

val add_group : t -> group:int -> (int * int) list -> unit
(** [(dc, host)] members. Installs per-DC encodings and s-rules. Raises
    [Invalid_argument] on an unknown datacenter index, a duplicate member,
    or an existing group. *)

val remove_group : t -> group:int -> unit

type send_report = {
  local : Fabric.report;  (** the sender datacenter's multicast *)
  wan_unicasts : int;  (** one per remote datacenter with members *)
  remote : (int * Fabric.report) list;  (** relay multicast per remote DC *)
}

val send : t -> group:int -> sender_dc:int -> sender:int -> send_report
(** Raises [Not_found] for unknown groups. *)

val deliveries_correct : t -> group:int -> sender_dc:int -> sender:int ->
  send_report -> bool
(** Every member other than the sender received exactly one copy, counting
    WAN delivery to each relay. *)
