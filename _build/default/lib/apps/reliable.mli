(** PGM-style NAK-based reliable multicast layered over Elmo (§7,
    "Reliability and security": "multicast protocols like PGM and SRM may be
    layered on top of Elmo").

    Elmo itself is best-effort: packets multipathed onto a failed switch are
    lost until the controller reconfigures. This module adds the classic
    recovery loop — sequence numbers on data packets, receivers detect gaps
    and NAK them, the sender retransmits from its buffer as multicast, and
    receivers deduplicate by sequence number — so the application sees
    exactly-once, in-order delivery even across failure windows.

    The session owns one sender and the group's receivers; transmissions go
    through the packet-level {!Fabric}, so losses are the real losses the
    simulated failures produce. *)

type t

val create : Fabric.t -> group:int -> sender:int -> Encoding.t -> t
(** The encoding's s-rules must already be installed in the fabric
    ({!Fabric.install_encoding}). Receivers are the tree members other than
    the sender. *)

type stats = {
  data_sent : int;  (** original data multicasts *)
  repairs_sent : int;  (** retransmission multicasts *)
  naks : int;  (** gap reports processed *)
  duplicates_discarded : int;  (** copies dropped by receiver dedup *)
}

val broadcast : t -> payload:int -> int
(** Sends the next data packet; returns its sequence number. *)

val repair_round : t -> int
(** One NAK/retransmit cycle: collects every receiver's missing sequence
    numbers and retransmits each missing sequence once (multicast, as PGM
    does). Returns the number of retransmissions performed (0 = converged). *)

val repair_until_complete : ?max_rounds:int -> t -> bool
(** Runs repair rounds until every receiver holds every sequence (true) or
    [max_rounds] (default 16) passes without convergence (false — e.g. a
    receiver is unreachable because its leaf is down). *)

val receivers : t -> int list
val complete : t -> bool
(** Every receiver holds every sequence sent so far. *)

val delivered_in_order : t -> int -> int
(** Length of the contiguous in-order prefix a receiver has delivered to the
    application. Raises [Not_found] for non-receivers. *)

val stats : t -> stats
