lib/topology/tree.mli: Bitmap Topology
