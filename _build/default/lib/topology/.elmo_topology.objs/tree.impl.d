lib/topology/tree.ml: Array Bitmap Hashtbl List Topology
