lib/topology/topology.ml: Format List
