type role = Leaf | Spine | Core

let role_name = function Leaf -> "leaf" | Spine -> "spine" | Core -> "core"

(* Byte-aligned field layout: every generated header is padded to the next
   byte boundary, as P4 targets require. *)
let pad_to_byte bits = (8 - (bits mod 8)) mod 8

let check_switch_id topo role switch_id =
  let bound =
    match role with
    | Leaf -> Topology.num_leaves topo
    | Spine -> topo.Topology.pods (* logical spine = pod *)
    | Core -> 1 (* single logical core *)
  in
  if switch_id < 0 || switch_id >= bound then
    invalid_arg "P4gen: switch_id out of range for role"

type dims = {
  leaf_down : int;
  leaf_up : int;
  spine_down : int;
  spine_up : int;
  core_down : int;
  leaf_id : int;
  spine_id : int;
  hmax_leaf : int;
  hmax_spine : int;
  kmax : int;
}

let dims_of topo (params : Params.t) =
  {
    leaf_down = Topology.leaf_downstream_width topo;
    leaf_up = Topology.leaf_upstream_width topo;
    spine_down = Topology.spine_downstream_width topo;
    spine_up = Topology.spine_upstream_width topo;
    core_down = Topology.core_downstream_width topo;
    leaf_id = Topology.leaf_id_bits topo;
    spine_id = Topology.spine_id_bits topo;
    hmax_leaf = params.Params.hmax_leaf;
    hmax_spine = params.Params.hmax_spine;
    kmax = params.Params.kmax;
  }

let banner topo params what =
  Printf.sprintf
    "// Elmo %s program - GENERATED, DO NOT EDIT\n\
     // topology: pods=%d leaves/pod=%d spines/pod=%d hosts/leaf=%d cores/plane=%d\n\
     // params: %s\n"
    what topo.Topology.pods topo.Topology.leaves_per_pod
    topo.Topology.spines_per_pod topo.Topology.hosts_per_leaf
    topo.Topology.cores_per_plane
    (Format.asprintf "%a" Params.pp params)

let uprule_header b name ~down ~up =
  let body = down + up + 1 in
  Printf.bprintf b "header %s_t {\n" name;
  Printf.bprintf b "    bit<%d> down_ports;\n" down;
  Printf.bprintf b "    bit<%d> up_ports;\n" up;
  Printf.bprintf b "    bit<1>  multipath;\n";
  let pad = pad_to_byte body in
  if pad > 0 then Printf.bprintf b "    bit<%d> pad;\n" pad;
  Printf.bprintf b "}\n\n"

let rule_header b name ~bitmap ~id_bits ~kmax =
  let body = bitmap + (kmax * id_bits) + 1 in
  Printf.bprintf b "header %s_t {\n" name;
  Printf.bprintf b "    bit<%d> bitmap;\n" bitmap;
  for i = 0 to kmax - 1 do
    Printf.bprintf b "    bit<%d> id%d;\n" id_bits i
  done;
  Printf.bprintf b "    bit<1>  next_rule;\n";
  let pad = pad_to_byte body in
  if pad > 0 then Printf.bprintf b "    bit<%d> pad;\n" pad;
  Printf.bprintf b "}\n\n"

let bitmap_header b name ~width =
  Printf.bprintf b "header %s_t {\n" name;
  Printf.bprintf b "    bit<%d> bitmap;\n" width;
  let pad = pad_to_byte width in
  if pad > 0 then Printf.bprintf b "    bit<%d> pad;\n" pad;
  Printf.bprintf b "}\n\n"

let header_definitions topo params =
  let d = dims_of topo params in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "// Elmo header stack. The stage field is the paper's `type` (Figure 2a):\n\
     // it names the outermost remaining layer so each switch knows which\n\
     // section to process and which to pop.\n\
     header elmo_tag_t {\n\
    \    bit<4> version;\n\
    \    bit<4> stage;           // 0=full 1=after-u-leaf 2=after-u-spine\n\
    \                            // 3=after-core 4=after-d-spine\n\
    \    bit<1> u_spine_present;\n\
    \    bit<1> core_present;\n\
    \    bit<1> d_spine_default_present;\n\
    \    bit<1> d_leaf_default_present;\n\
    \    bit<4> pad;\n\
     }\n\n";
  uprule_header b "u_leaf" ~down:d.leaf_down ~up:d.leaf_up;
  uprule_header b "u_spine" ~down:d.spine_down ~up:d.spine_up;
  bitmap_header b "core_rule" ~width:d.core_down;
  rule_header b "d_spine_rule" ~bitmap:d.spine_down ~id_bits:d.spine_id ~kmax:d.kmax;
  bitmap_header b "d_spine_default" ~width:d.spine_down;
  rule_header b "d_leaf_rule" ~bitmap:d.leaf_down ~id_bits:d.leaf_id ~kmax:d.kmax;
  bitmap_header b "d_leaf_default" ~width:d.leaf_down;
  Printf.bprintf b "struct elmo_headers_t {\n";
  Printf.bprintf b "    elmo_tag_t       tag;\n";
  Printf.bprintf b "    u_leaf_t         u_leaf;\n";
  Printf.bprintf b "    u_spine_t        u_spine;\n";
  Printf.bprintf b "    core_rule_t      core;\n";
  Printf.bprintf b "    d_spine_rule_t[%d] d_spine;\n" d.hmax_spine;
  Printf.bprintf b "    d_spine_default_t d_spine_default;\n";
  Printf.bprintf b "    d_leaf_rule_t[%d]  d_leaf;\n" d.hmax_leaf;
  Printf.bprintf b "    d_leaf_default_t  d_leaf_default;\n";
  Printf.bprintf b "}\n";
  Buffer.contents b

(* The rule-walking parser states for one downstream layer: each state
   extracts one rule, compares every identifier slot against SWITCH_ID (a
   boot-time constant), and either records the match in metadata (the
   match-and-set the paper exploits, §4.1) or follows next_rule. *)
let rule_walk b ~layer ~count ~kmax ~default_flag =
  let state i = Printf.sprintf "parse_%s_%d" layer i in
  for i = 0 to count - 1 do
    Printf.bprintf b "    state %s {\n" (state i);
    Printf.bprintf b "        packet.extract(hdr.%s.next);\n" layer;
    Printf.bprintf b "        transition select(";
    for k = 0 to kmax - 1 do
      if k > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "hdr.%s.last.id%d" layer k
    done;
    Printf.bprintf b ", hdr.%s.last.next_rule) {\n" layer;
    for k = 0 to kmax - 1 do
      Printf.bprintf b "            (%s, _) : matched_%s_%d;\n"
        (String.concat ", "
           (List.init kmax (fun j -> if j = k then "SWITCH_ID" else "_")))
        layer i
    done;
    Printf.bprintf b "            (%s, 1) : %s;\n"
      (String.concat ", " (List.init kmax (fun _ -> "_")))
      (if i + 1 < count then state (i + 1)
       else Printf.sprintf "parse_%s_overflow" layer);
    Printf.bprintf b "            default : parse_%s_default;\n" layer;
    Printf.bprintf b "        }\n    }\n";
    Printf.bprintf b "    state matched_%s_%d {\n" layer i;
    Printf.bprintf b "        meta.matched = 1;\n";
    Printf.bprintf b "        meta.bitmap = (bit<BITMAP_WIDTH>)hdr.%s[%d].bitmap;\n"
      layer i;
    Printf.bprintf b "        transition accept;\n    }\n"
  done;
  Printf.bprintf b "    state parse_%s_overflow {\n" layer;
  Printf.bprintf b
    "        // more rules on the wire than this switch can hold: treat as\n\
    \        // unmatched and fall back to the group table / default rule\n";
  Printf.bprintf b "        transition parse_%s_default;\n    }\n" layer;
  Printf.bprintf b "    state parse_%s_default {\n" layer;
  Printf.bprintf b "        transition select(hdr.tag.%s) {\n" default_flag;
  Printf.bprintf b "            1 : parse_%s_default_rule;\n" layer;
  Printf.bprintf b "            default : accept;\n        }\n    }\n";
  Printf.bprintf b "    state parse_%s_default_rule {\n" layer;
  Printf.bprintf b "        packet.extract(hdr.%s_default);\n" layer;
  Printf.bprintf b "        meta.default_present = 1;\n";
  Printf.bprintf b
    "        meta.default_bitmap = (bit<BITMAP_WIDTH>)hdr.%s_default.bitmap;\n"
    layer;
  Printf.bprintf b "        transition accept;\n    }\n"

let parser_states topo params ~role ~switch_id =
  check_switch_id topo role switch_id;
  let d = dims_of topo params in
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "parser ElmoParser(packet_in packet, out elmo_headers_t hdr,\n\
    \                  inout elmo_metadata_t meta,\n\
    \                  inout standard_metadata_t standard_metadata) {\n";
  Printf.bprintf b "    state start {\n";
  Printf.bprintf b "        packet.extract(hdr.tag);\n";
  Printf.bprintf b "        transition select(hdr.tag.stage) {\n";
  (match role with
  | Leaf ->
      Printf.bprintf b "            STAGE_FULL : parse_u_leaf;\n";
      Printf.bprintf b "            STAGE_AFTER_D_SPINE : skip_to_d_leaf;\n"
  | Spine ->
      Printf.bprintf b "            STAGE_AFTER_U_LEAF : parse_u_spine;\n";
      Printf.bprintf b "            STAGE_AFTER_CORE : parse_d_spine_0;\n"
  | Core -> Printf.bprintf b "            STAGE_AFTER_U_SPINE : parse_core;\n");
  Printf.bprintf b "            default : reject;\n        }\n    }\n";
  (match role with
  | Leaf ->
      Printf.bprintf b "    state parse_u_leaf {\n";
      Printf.bprintf b "        packet.extract(hdr.u_leaf);\n";
      Printf.bprintf b "        meta.upstream = 1;\n";
      Printf.bprintf b
        "        meta.bitmap = (bit<BITMAP_WIDTH>)hdr.u_leaf.down_ports;\n";
      Printf.bprintf b "        meta.matched = 1;\n";
      Printf.bprintf b "        transition accept;\n    }\n";
      Printf.bprintf b "    state skip_to_d_leaf {\n";
      Printf.bprintf b "        transition parse_d_leaf_0;\n    }\n";
      rule_walk b ~layer:"d_leaf" ~count:d.hmax_leaf ~kmax:d.kmax
        ~default_flag:"d_leaf_default_present"
  | Spine ->
      Printf.bprintf b "    state parse_u_spine {\n";
      Printf.bprintf b "        packet.extract(hdr.u_spine);\n";
      Printf.bprintf b "        meta.upstream = 1;\n";
      Printf.bprintf b
        "        meta.bitmap = (bit<BITMAP_WIDTH>)hdr.u_spine.down_ports;\n";
      Printf.bprintf b "        meta.matched = 1;\n";
      Printf.bprintf b "        transition accept;\n    }\n";
      rule_walk b ~layer:"d_spine" ~count:d.hmax_spine ~kmax:d.kmax
        ~default_flag:"d_spine_default_present"
  | Core ->
      Printf.bprintf b "    state parse_core {\n";
      Printf.bprintf b "        packet.extract(hdr.core);\n";
      Printf.bprintf b "        meta.matched = 1;\n";
      Printf.bprintf b "        meta.bitmap = (bit<BITMAP_WIDTH>)hdr.core.bitmap;\n";
      Printf.bprintf b "        transition accept;\n    }\n");
  Printf.bprintf b "}\n";
  Buffer.contents b

let metadata_and_externs ~bitmap_width =
  Printf.sprintf
    "#define BITMAP_WIDTH %d\n\n\
     struct elmo_metadata_t {\n\
    \    bit<1> matched;\n\
    \    bit<1> upstream;\n\
    \    bit<1> default_present;\n\
    \    bit<BITMAP_WIDTH> bitmap;\n\
    \    bit<BITMAP_WIDTH> default_bitmap;\n\
     }\n\n\
     // The queue-manager primitive the paper proposes (footnote 4): deliver\n\
     // the output-port bitmap directly instead of a multicast group id.\n\
     extern void bitmap_port_select(in bit<BITMAP_WIDTH> bitmap);\n"
    bitmap_width

let stage_constants =
  "const bit<4> STAGE_FULL = 0;\n\
   const bit<4> STAGE_AFTER_U_LEAF = 1;\n\
   const bit<4> STAGE_AFTER_U_SPINE = 2;\n\
   const bit<4> STAGE_AFTER_CORE = 3;\n\
   const bit<4> STAGE_AFTER_D_SPINE = 4;\n"

let ingress_control (params : Params.t) ~role =
  let multipath =
    match role with
    | Leaf | Spine ->
        "        if (meta.upstream == 1 && hdr.tag.stage != STAGE_AFTER_D_SPINE) {\n\
        \            // forward one copy up: ECMP when the multipath flag is\n\
        \            // set, else the explicit upstream ports\n\
        \            ecmp_upstream.apply();\n\
        \        }\n"
    | Core -> ""
  in
  Printf.sprintf
    "control ElmoIngress(inout elmo_headers_t hdr,\n\
    \                    inout elmo_metadata_t meta,\n\
    \                    inout standard_metadata_t standard_metadata) {\n\
    \    action set_mgid(bit<16> mgid) {\n\
    \        standard_metadata.mcast_grp = mgid;\n\
    \    }\n\
    \    // s-rules: one group-table entry per spilled multicast group (D5)\n\
    \    table srules {\n\
    \        key = { hdr.tag.stage : exact; /* vxlan.vni added by encap */ }\n\
    \        actions = { set_mgid; NoAction; }\n\
    \        size = %d;\n\
    \    }\n\
    \    table ecmp_upstream {\n\
    \        key = { standard_metadata.ingress_port : exact; }\n\
    \        actions = { set_mgid; NoAction; }\n\
    \    }\n\
    \    apply {\n\
    \        if (meta.matched == 1) {\n\
    \            bitmap_port_select(meta.bitmap);\n\
    \        } else if (!srules.apply().hit) {\n\
    \            if (meta.default_present == 1) {\n\
    \                bitmap_port_select(meta.default_bitmap);\n\
    \            } else {\n\
    \                mark_to_drop(standard_metadata);\n\
    \            }\n\
    \        }\n\
     %s    }\n\
     }\n"
    params.Params.fmax multipath

let egress_control ~role =
  let pops =
    match role with
    | Leaf ->
        "        // towards hosts: strip the whole Elmo stack (4.1); towards\n\
        \        // the spine: pop the upstream-leaf layer\n\
        \        if (meta.upstream == 1) {\n\
        \            hdr.u_leaf.setInvalid();\n\
        \            hdr.tag.stage = STAGE_AFTER_U_LEAF;\n\
        \        } else {\n\
        \            hdr.tag.setInvalid();\n\
        \            hdr.d_leaf[0].setInvalid();\n\
        \            hdr.d_leaf_default.setInvalid();\n\
        \        }\n"
    | Spine ->
        "        if (meta.upstream == 1) {\n\
        \            hdr.u_spine.setInvalid();\n\
        \            hdr.tag.stage = STAGE_AFTER_U_SPINE;\n\
        \        } else {\n\
        \            hdr.d_spine[0].setInvalid();\n\
        \            hdr.d_spine_default.setInvalid();\n\
        \            hdr.tag.stage = STAGE_AFTER_D_SPINE;\n\
        \        }\n"
    | Core ->
        "        hdr.core.setInvalid();\n\
        \        hdr.tag.stage = STAGE_AFTER_CORE;\n"
  in
  Printf.sprintf
    "control ElmoEgress(inout elmo_headers_t hdr,\n\
    \                   inout elmo_metadata_t meta,\n\
    \                   inout standard_metadata_t standard_metadata) {\n\
    \    apply {\n%s    }\n}\n"
    pops

let deparser_and_checksums =
  "control ElmoDeparser(packet_out packet, in elmo_headers_t hdr) {\n\
  \    apply {\n\
  \        // emit is a no-op for invalidated (popped) headers\n\
  \        packet.emit(hdr.tag);\n\
  \        packet.emit(hdr.u_leaf);\n\
  \        packet.emit(hdr.u_spine);\n\
  \        packet.emit(hdr.core);\n\
  \        packet.emit(hdr.d_spine);\n\
  \        packet.emit(hdr.d_spine_default);\n\
  \        packet.emit(hdr.d_leaf);\n\
  \        packet.emit(hdr.d_leaf_default);\n\
  \    }\n\
   }\n\n\
   control verifyChecksum(inout elmo_headers_t hdr, inout elmo_metadata_t meta) {\n\
  \    apply { }\n\
   }\n\n\
   control computeChecksum(inout elmo_headers_t hdr, inout elmo_metadata_t meta) {\n\
  \    apply { }\n\
   }\n"

let network_switch_program topo params ~role ~switch_id =
  check_switch_id topo role switch_id;
  let bitmap_width =
    max (Topology.leaf_downstream_width topo + Topology.leaf_upstream_width topo)
      (max
         (Topology.spine_downstream_width topo + Topology.spine_upstream_width topo)
         (Topology.core_downstream_width topo))
  in
  String.concat "\n"
    [
      banner topo params
        (Printf.sprintf "network switch (%s %d)" (role_name role) switch_id);
      "#include <core.p4>\n#include <v1model.p4>\n";
      Printf.sprintf "#define SWITCH_ID %d" switch_id;
      stage_constants;
      metadata_and_externs ~bitmap_width;
      header_definitions topo params;
      parser_states topo params ~role ~switch_id;
      ingress_control params ~role;
      egress_control ~role;
      deparser_and_checksums;
      "V1Switch(ElmoParser(), verifyChecksum(), ElmoIngress(), ElmoEgress(),\n\
      \         computeChecksum(), ElmoDeparser()) main;";
    ]

let hypervisor_switch_program topo params =
  let d = dims_of topo params in
  String.concat "\n"
    [
      banner topo params "hypervisor switch";
      "#include <core.p4>\n#include <v1model.p4>\n";
      header_definitions topo params;
      Printf.sprintf
        "// Encapsulation (4.2): the controller installs one flow rule per\n\
         // multicast group with VMs on this host; its action writes the whole\n\
         // pre-built p-rule list as a single header (one DMA write), then\n\
         // VXLAN-encapsulates and forwards to the leaf.\n\
         control HypervisorIngress(inout elmo_headers_t hdr,\n\
        \                          inout standard_metadata_t standard_metadata) {\n\
        \    action push_elmo_header(bit<%d> rule_blob, bit<9> uplink) {\n\
        \        // rule_blob carries tag + upstream rules + up to %d spine and\n\
        \        // %d leaf p-rules, prebuilt by the controller\n\
        \        standard_metadata.egress_spec = uplink;\n\
        \    }\n\
        \    action deliver_local(bit<16> vm_port) {\n\
        \        standard_metadata.egress_spec = (bit<9>)vm_port;\n\
        \    }\n\
        \    table multicast_flows {\n\
        \        key = { standard_metadata.ingress_port : exact;\n\
        \                /* + dst multicast IP via the encap parser */ }\n\
        \        actions = { push_elmo_header; deliver_local; NoAction; }\n\
        \    }\n\
        \    apply { multicast_flows.apply(); }\n\
         }"
        (8
        * ((2 (* tag *) + ((d.leaf_down + d.leaf_up + 1 + 7) / 8)
           + ((d.spine_down + d.spine_up + 1 + 7) / 8)
           + ((d.core_down + 7) / 8)
           + (d.hmax_spine * ((d.spine_down + (d.kmax * d.spine_id) + 1 + 7) / 8))
           + (d.hmax_leaf * ((d.leaf_down + (d.kmax * d.leaf_id) + 1 + 7) / 8)))))
        d.hmax_spine d.hmax_leaf;
    ]

let runtime_entries topo ~group enc =
  let b = Buffer.create 256 in
  Printf.bprintf b "# s-rules for group %d (vni 0x%06x)\n" group
    (group land 0xFFFFFF);
  List.iter
    (fun (leaf, bm) ->
      Printf.bprintf b
        "switch leaf-%d: table_add srules set_mgid %d => %d  # ports %s\n"
        leaf group group (Bitmap.to_string bm))
    enc.Encoding.d_leaf.Clustering.srules;
  List.iter
    (fun (pod, bm) ->
      List.iter
        (fun spine ->
          Printf.bprintf b
            "switch spine-%d: table_add srules set_mgid %d => %d  # ports %s\n"
            spine group group (Bitmap.to_string bm))
        (Topology.spines_of_pod topo pod))
    enc.Encoding.d_spine.Clustering.srules;
  Buffer.contents b
