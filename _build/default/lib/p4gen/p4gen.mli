(** P4-16 program generation (§2, §4; footnote 3).

    The Elmo controller configures programmable switches at boot with a P4
    program specialized to the topology (bitmap widths, identifier widths)
    and the encoding parameters (how many p-rules the parser must be able to
    walk, how many identifiers each may carry). This module generates those
    programs, mirroring the paper's published artifact:

    - {!network_switch_program}: parser-based p-rule matching (§4.1) — the
      parser walks the downstream rule list of the packet's current layer,
      compares each identifier against the switch's own (a boot-time
      constant), stores the matched bitmap in metadata and skips the rest;
      the ingress control falls back to the s-rule group table and then the
      default p-rule, and the egress control invalidates the popped layers.
    - {!hypervisor_switch_program}: flow-table-driven encapsulation (§4.2) —
      one action writes the whole pre-built rule list as a single header.

    The generated wire layout is the byte-aligned variant of this library's
    bit-packed codec (P4 targets require byte-multiple headers; each header
    is padded to the next byte, exactly as the paper's artifact does), so
    widths are topology-derived but offsets differ from {!Header_codec}.

    Programs are emitted for the v1model architecture and use the
    [bitmap_port_select] extern the paper proposes (§4.1, footnote 4). *)

type role =
  | Leaf  (** upstream u-leaf processing + downstream d-leaf matching *)
  | Spine  (** u-spine processing + d-spine matching *)
  | Core  (** core-bitmap forwarding *)

val network_switch_program :
  Topology.t -> Params.t -> role:role -> switch_id:int -> string
(** Raises [Invalid_argument] if [switch_id] is out of range for the role
    (leaf ids are global leaf numbers, spine ids are logical pod numbers,
    core has a single logical id 0). *)

val hypervisor_switch_program : Topology.t -> Params.t -> string

val header_definitions : Topology.t -> Params.t -> string
(** Just the header type section (shared by both programs); exposed for
    tests and for emitting include files. *)

val parser_states : Topology.t -> Params.t -> role:role -> switch_id:int -> string
(** Just the parser section of the network-switch program. *)

val runtime_entries : Topology.t -> group:int -> Encoding.t -> string
(** The run-time half of the controller's job (§2, P4Runtime): the group's
    s-rules as bmv2-CLI-style [table_add] commands, one per physical switch
    entry — leaf s-rules on their leaf, pod s-rules on every spine of the
    pod. The match key is the group id (the VXLAN VNI on the wire); the
    action argument is the multicast-group id whose port set is the rule's
    bitmap. *)
