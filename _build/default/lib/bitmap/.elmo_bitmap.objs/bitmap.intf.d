lib/bitmap/bitmap.mli: Format
