lib/bitmap/bitmap.ml: Array Bytes Char Format List Stdlib String
