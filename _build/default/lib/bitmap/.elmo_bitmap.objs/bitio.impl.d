lib/bitmap/bitio.ml: Bitmap Buffer Bytes Char
