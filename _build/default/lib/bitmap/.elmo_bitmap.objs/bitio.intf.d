lib/bitmap/bitio.mli: Bitmap
