(** Bit-granular serialization, the substrate for Elmo's wire format.

    Elmo headers are not byte-aligned: a p-rule is a bitmap (width = port
    count of the layer), a next-rule flag, and n-bit switch identifiers
    (§3.1, Figure 2). Writer appends most-significant-bit-first fields;
    Reader consumes them in the same order. *)

module Writer : sig
  type t

  val create : unit -> t

  val bit : t -> bool -> unit
  val bits : t -> int -> int -> unit
  (** [bits w value n] appends the low [n] bits of [value], MSB first.
      Raises [Invalid_argument] if [n < 0], [n > 62], or [value] does not fit
      in [n] bits. *)

  val bitmap : t -> Bitmap.t -> unit
  (** Appends bitmap bits in index order (bit 0 first). *)

  val align_byte : t -> unit
  (** Pads with zero bits to the next byte boundary. *)

  val bit_length : t -> int
  val to_bytes : t -> bytes
  (** Final padding to a whole byte with zeros. *)
end

module Reader : sig
  type t

  exception Truncated

  val of_bytes : bytes -> t
  val bit : t -> bool
  val bits : t -> int -> int
  val bitmap : t -> int -> Bitmap.t
  (** [bitmap r width] reads [width] bits written by {!Writer.bitmap}. *)

  val align_byte : t -> unit
  val pos : t -> int
  (** Current offset in bits. *)

  val remaining : t -> int
  (** Bits left, counting final padding. *)
end
