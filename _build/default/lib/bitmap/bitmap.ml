(* Bits are stored little-endian within an int array: bit [i] lives in word
   [i / word_bits] at position [i mod word_bits]. Trailing bits of the last
   word are kept at zero as an invariant so popcount/equal can work
   word-wise. *)

let word_bits = 63 (* OCaml native ints; avoid the tag bit complications *)

type t = { width : int; words : int array }

let words_for width = (width + word_bits - 1) / word_bits

let create width =
  if width < 0 then invalid_arg "Bitmap.create: negative width";
  { width; words = Array.make (max 1 (words_for width)) 0 }

let width t = t.width
let copy t = { width = t.width; words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.width then invalid_arg "Bitmap: index out of bounds"

let set t i =
  check_index t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let clear t i =
  check_index t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let get t i =
  check_index t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.width = b.width && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.width b.width in
  if c <> 0 then c else Stdlib.compare a.words b.words

let check_width a b =
  if a.width <> b.width then invalid_arg "Bitmap: width mismatch"

let map2 f a b =
  check_width a b;
  { width = a.width; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let union_into ~dst src =
  check_width dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let subset a b =
  check_width a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let hamming a b =
  check_width a b;
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + popcount_word (w lxor b.words.(i))) a.words;
  !acc

let union_cost a acc_bm =
  check_width a acc_bm;
  let acc = ref 0 in
  Array.iteri
    (fun i w -> acc := !acc + popcount_word (w land lnot acc_bm.words.(i)))
    a.words;
  !acc

let of_list width indices =
  let t = create width in
  List.iter (set t) indices;
  t

let iter f t =
  for i = 0 to t.width - 1 do
    if get t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.width - 1 downto 0 do
    if get t i then acc := i :: !acc
  done;
  !acc

let union_all width ts = List.fold_left union (create width) ts

let to_bytes t =
  let nbytes = (t.width + 7) / 8 in
  let b = Bytes.make nbytes '\000' in
  for i = 0 to t.width - 1 do
    if get t i then
      Bytes.set b (i / 8)
        (Char.chr (Char.code (Bytes.get b (i / 8)) lor (1 lsl (i mod 8))))
  done;
  b

let of_bytes width b =
  let nbytes = (width + 7) / 8 in
  if Bytes.length b < nbytes then invalid_arg "Bitmap.of_bytes: too short";
  let t = create width in
  for i = 0 to width - 1 do
    if Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0 then set t i
  done;
  t

let to_string t = String.init t.width (fun i -> if get t i then '1' else '0')
let pp ppf t = Format.pp_print_string ppf (to_string t)
