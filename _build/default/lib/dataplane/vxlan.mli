(** VXLAN outer encapsulation (§2: the hypervisor switch tunnels multicast
    packets, e.g. VXLAN [RFC 7348], with the Elmo header stacked on top; the
    multicast group identifier rides in the 24-bit VNI, which network
    switches use for s-rule lookups).

    The outer stack is Ethernet (14 B) + IPv4 (20 B, with a real header
    checksum) + UDP (8 B, destination port 4789) + VXLAN (8 B) = 50 bytes —
    the constant the traffic model charges to every transmission
    ({!Traffic.vxlan_encap_bytes}). *)

type t = {
  src_mac : int;  (** low 48 bits used *)
  dst_mac : int;
  src_ip : int32;
  dst_ip : int32;
  src_port : int;  (** UDP source (entropy for underlay ECMP) *)
  vni : int;  (** 24-bit virtual network / multicast group identifier *)
}

val overhead_bytes : int
(** 50; equals {!Traffic.vxlan_encap_bytes}. *)

val udp_port : int
(** 4789, the IANA VXLAN port. *)

val max_vni : int
(** [2^24 - 1]. *)

val encode : t -> inner:bytes -> bytes
(** Full outer packet around [inner] (Elmo header + original frame).
    Raises [Invalid_argument] if [vni] or [src_port] is out of range. *)

val decode : bytes -> (t * bytes, string) result
(** Parses the outer stack and returns it with the inner bytes. Checks the
    ethertype, IP protocol, UDP port, VXLAN I-flag and the IPv4 header
    checksum; returns [Error] with a reason otherwise. *)

val ipv4_checksum : bytes -> pos:int -> int
(** One's-complement checksum of the 20-byte IPv4 header at [pos], with the
    checksum field taken as zero (exposed for tests). *)
