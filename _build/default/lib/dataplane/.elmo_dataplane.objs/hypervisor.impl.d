lib/dataplane/hypervisor.ml: Bytes Ecmp Fabric Float Hashtbl Header_codec Int32 List Option Prule Topology Vxlan
