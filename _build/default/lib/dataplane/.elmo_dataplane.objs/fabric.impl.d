lib/dataplane/fabric.ml: Array Bitmap Bytes Clustering Ecmp Encoding Format Hashtbl Header_codec List Option Prule Topology Tree
