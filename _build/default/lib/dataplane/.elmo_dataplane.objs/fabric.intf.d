lib/dataplane/fabric.mli: Bitmap Encoding Format Prule Topology Tree
