lib/dataplane/vxlan.ml: Bytes Char Int32
