lib/dataplane/igmp.mli: Controller Tenant_api
