lib/dataplane/hypervisor.mli: Fabric Prule
