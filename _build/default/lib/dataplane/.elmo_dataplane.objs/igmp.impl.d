lib/dataplane/igmp.ml: Bytes Char Controller Format Hashtbl Int32 List Tenant_api
