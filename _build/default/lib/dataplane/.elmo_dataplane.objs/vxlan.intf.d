lib/dataplane/vxlan.mli:
