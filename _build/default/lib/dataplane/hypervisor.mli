(** Hypervisor (software) switch model (§2, §4.2).

    Each host runs one. The flow table maps a multicast group to the
    pre-built Elmo header pushed on that group's packets when this host
    sends (the controller installs/updates these), and to the number of
    local member VMs for delivery on receive. Hosts without a flow rule for
    a group discard its packets.

    Per-packet encapsulation is modelled as it is implemented in PISCES
    (§4.2): the cached header blob and the payload are written into the
    packet buffer with a {e single} write ({!encap}); the unoptimized
    variant issues one write per p-rule ({!encap_per_rule}), whose
    throughput degrades linearly with the rule count — the Figure 7
    comparison. *)

type t

val create : Fabric.t -> host:int -> t
val host : t -> int

(** {1 Controller-facing API} *)

val install_sender : t -> group:int -> Prule.header -> unit
(** Installs/replaces the encap flow rule (pre-serializes the header). *)

val remove_sender : t -> group:int -> unit

val install_receiver : t -> group:int -> vms:int -> unit
(** Registers [vms] local member VMs for delivery fan-out. *)

val remove_receiver : t -> group:int -> unit

val sender_groups : t -> int list
val flow_rules : t -> int
(** Total flow-table entries (sender + receiver rules). *)

(** {1 Security policy (§7 "Reliability and security")}

    "As Elmo runs inside multi-tenant datacenters, where each packet is
    first received by a hypervisor switch, cloud providers can enforce
    multicast security policies on these switches, dropping malicious
    packets before they even reach the network." Two policies are modelled:
    sender authorization is implicit (no flow rule ⇒ drop), and a per-group
    token bucket caps a VM gone rogue (e.g. a DDoS amplification attempt). *)

val set_rate_limit : t -> group:int -> packets_per_second:float -> burst:int -> unit
(** Installs a token bucket for the group's sends from this host. Raises
    [Invalid_argument] on non-positive rate or burst. *)

val clear_rate_limit : t -> group:int -> unit

val admit : t -> group:int -> now:float -> bool
(** Consumes one token at time [now] (seconds); [false] = policy drop. With
    no limit installed, always [true]. Time must be non-decreasing per
    group. *)

val policy_drops : t -> int
(** Packets refused by {!admit} since creation. *)

(** {1 Data path} *)

val encap : t -> group:int -> payload:bytes -> bytes option
(** One-write encapsulation of the Elmo stack: header blob + payload, or
    [None] when this host has no sender rule for the group (packet dropped,
    §2). The outer tunnel is added by {!encap_vxlan}. *)

val encap_vxlan : t -> group:int -> payload:bytes -> bytes option
(** Full on-wire packet: VXLAN outer stack (VNI = group, source/destination
    derived from the host) around the Elmo header and payload. *)

val decap_vxlan : t -> bytes -> (int * int * bytes) option
(** Receive path: parses the outer stack of a packet built by
    {!encap_vxlan}; returns [(group, local_vm_copies, inner_payload)] where
    the payload has the Elmo header already stripped (the leaf egress
    removed it in the fabric; here we strip our own copy symmetrically).
    [None] if the packet is not valid VXLAN or this host has no receiver
    rule for the group (discarded, §2). *)

val encap_per_rule : t -> group:int -> payload:bytes -> bytes option
(** Same packet, but built with one write call per p-rule part. *)

val send : t -> group:int -> payload:int -> Fabric.report option
(** Encapsulates and injects into the fabric. *)

val deliver : t -> group:int -> int
(** Copies handed to local VMs on receive; 0 = discarded. *)
