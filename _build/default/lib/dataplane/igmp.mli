(** IGMPv2 message codec and hypervisor-side snooping.

    The paper's tenants "issue standard IP multicast data packets" and run
    applications "without modification" (§1, §5.2): VMs signal membership
    with ordinary IGMP, the hypervisor switch intercepts it, and the
    controller API is invoked on the VM's behalf — no tenant-visible Elmo.

    This module provides the 8-byte IGMPv2 wire codec (RFC 2236: type,
    max-response-time, checksum, group address) and {!Snooper}, which folds
    a VM's IGMP traffic into {!Tenant_api} calls. *)

type message_type =
  | Membership_query
  | Membership_report_v1
  | Membership_report_v2
  | Leave_group

type message = { msg_type : message_type; max_resp_time : int; group : int32 }

val encode : message -> bytes
(** 8 bytes with a valid one's-complement checksum. Raises
    [Invalid_argument] if [max_resp_time] is out of byte range. *)

val decode : bytes -> (message, string) result
(** Verifies length, known type, and checksum. *)

val checksum : bytes -> int
(** RFC 1071 checksum over the buffer with the checksum field zeroed
    (exposed for tests). *)

module Snooper : sig
  (** Per-hypervisor IGMP snooping: translates a VM's reports and leaves
      into tenant-API membership changes. Queries are answered by state, so
      the "chatty" periodic traffic the paper criticizes in classic IGMP
      (§1) never leaves the host. *)

  type t

  val create : Tenant_api.t -> t

  type outcome =
    | Joined of Controller.updates
    | Left of Controller.updates
    | Ignored of string  (** queries, duplicates, unknown groups… *)

  val handle :
    ?now:float ->
    t -> tenant:int -> vm:int -> role:Controller.role -> bytes -> outcome
  (** Processes one IGMP packet from the given VM at time [now] (seconds,
      default 0). Reports join the VM to the tenant's group for the
      message's address (which must already be created through the API) and
      refresh its soft state; leaves remove it. Malformed packets and API
      errors are [Ignored] with a reason. *)

  val expire : t -> now:float -> ttl:float -> (int * int * int32) list
  (** IGMPv2 soft state: memberships not refreshed by a report within [ttl]
      seconds of [now] are left on the VM's behalf; returns the expired
      (tenant, vm, address) triples. *)

  val membership : t -> tenant:int -> vm:int -> int32 list
  (** Addresses this VM currently belongs to, ascending (snooper state). *)
end
