lib/nonclos/graph_topology.mli: Rng
