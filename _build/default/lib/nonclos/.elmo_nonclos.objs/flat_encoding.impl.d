lib/nonclos/flat_encoding.ml: Array Bitmap Clustering Graph_topology Hashtbl List Params Prule
