lib/nonclos/flat_encoding.mli: Bitmap Clustering Graph_topology Params
