lib/nonclos/graph_topology.ml: Array Float Fun Hashtbl List Queue Rng Topology
