(** Source-routed multicast on flat (non-Clos) topologies.

    Without tiers there is no logical topology, no layer ordering, and no
    header popping: the encoding is one section of p-rules over the whole
    multicast tree — each participating switch needs its output-port bitmap
    (network ports toward BFS-tree children plus member host ports), shared
    across switches by the same Algorithm 1 clustering the Clos encoder
    uses. This is what the paper's §5.1.2 closing paragraph sketches; the
    interesting quantity is header size, which depends on how often two
    switches' bitmaps coincide — frequent on symmetric topologies, rare on
    random ones. *)

module Flat_tree : sig
  type t = {
    topo : Graph_topology.t;
    root : int;  (** the sender's switch *)
    bitmaps : (int * Bitmap.t) list;
        (** per participating switch, ascending id; width {!Graph_topology.port_width} *)
    members : int array;  (** member hosts, sorted *)
  }

  val of_members : Graph_topology.t -> root:int -> int list -> t
  (** Shortest-path (BFS) tree from [root] covering the members' switches.
      Raises [Invalid_argument] on an empty or out-of-range member list. *)

  val transmissions : t -> int
  (** Link traversals of one packet delivered along the exact tree,
      including the sender-host uplink and host deliveries. *)
end

type t = {
  tree : Flat_tree.t;
  rules : Clustering.result;
}

val encode :
  ?r:int -> ?semantics:Params.r_semantics -> ?hmax:int -> ?kmax:int ->
  Graph_topology.t -> Flat_tree.t -> t
(** Clusters the tree's bitmaps into shared p-rules (defaults: [r = 0],
    [Sum], [hmax = 64], [kmax = 2]); the leftovers beyond [hmax] fold into
    the default rule (no s-rules in the flat model — the point under study
    is header-space utilization). *)

val header_bits : t -> int
(** One rule = marker + port bitmap + identifiers (as in the Clos wire
    format), plus the section terminator and optional default. *)

val header_bytes : t -> int

val switches_per_rule : t -> float
(** Mean sharing degree — the symmetry dividend the paper describes. *)

val covered : t -> bool
(** No default rule needed. *)
