type result = {
  scheme : string;
  flows : int;
  link_load : Stats.summary;
  imbalance : float;
}

(* Same deterministic pinning the baselines use. *)
let pinned_hash g =
  let z = (g * 0x9E3779B9) lxor 0x5bd1e995 in
  abs ((z lxor (z lsr 13)) * 0xC2B2AE35)

let run ?(groups = 20_000) ?(senders_per_group = 3) ?(seed = 42) () =
  let topo = Topology.facebook_fabric () in
  let placement_rng = Rng.create seed in
  let tenant_sizes = Vm_placement.default_tenant_sizes placement_rng 3_000 in
  let placement =
    (* Dispersed placement: most groups are cross-pod, so the core layer
       actually carries the workload. *)
    Vm_placement.place placement_rng topo ~strategy:(Vm_placement.Pack_up_to 1)
      ~host_capacity:20 ~tenant_sizes
  in
  let cpp = topo.Topology.cores_per_plane in
  let num_links = Topology.num_spines topo * cpp in
  (* Upstream spine->core link: spine s uses only its plane's cores, so the
     link index is (s, core-within-plane). *)
  let elmo_load = Array.make num_links 0 in
  let pinned_load = Array.make num_links 0 in
  let flows = ref 0 in
  let workload_rng = Rng.create (seed + 1) in
  let sender_rng = Rng.create (seed + 2) in
  Workload.iter workload_rng placement ~kind:Group_dist.Wve ~total_groups:groups
    (fun g ->
      let members = g.Workload.member_hosts in
      let tree = Tree.of_members topo (Array.to_list members) in
      if Tree.pod_count tree > 1 then begin
        let nsenders = min senders_per_group (Array.length members) in
        let senders = Rng.sample_without_replacement sender_rng nsenders members in
        Array.iter
          (fun sender ->
            incr flows;
            let sp = Topology.pod_of_host topo sender in
            (* Elmo: per-flow ECMP. *)
            let hash = Ecmp.flow_hash ~group:g.Workload.group_id ~sender in
            let plane = Ecmp.spine_choice topo ~hash in
            let spine = (sp * topo.Topology.spines_per_pod) + plane in
            let core_port = Ecmp.core_choice topo ~hash ~plane mod cpp in
            elmo_load.((spine * cpp) + core_port) <-
              elmo_load.((spine * cpp) + core_port) + 1;
            (* Pinned: one plane and core per group, whatever the sender. *)
            let ph = pinned_hash g.Workload.group_id in
            let pplane = ph mod topo.Topology.spines_per_pod in
            let pspine = (sp * topo.Topology.spines_per_pod) + pplane in
            let pcore_port = ph / 7 mod cpp in
            pinned_load.((pspine * cpp) + pcore_port) <-
              pinned_load.((pspine * cpp) + pcore_port) + 1)
          senders
      end);
  let summarize name load =
    let s = Stats.summarize (Stats.of_ints load) in
    {
      scheme = name;
      flows = !flows;
      link_load = s;
      imbalance = (if s.Stats.mean > 0.0 then s.Stats.max /. s.Stats.mean else 0.0);
    }
  in
  [ summarize "Elmo (per-flow ECMP)" elmo_load;
    summarize "Pinned trees (IP multicast / Li et al.)" pinned_load ]

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d cross-pod flows over spine->core links@ load: %a@ \
     imbalance (max/mean): %.2f@]"
    r.scheme r.flows Stats.pp_summary r.link_load r.imbalance
