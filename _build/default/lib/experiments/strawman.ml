type rmt = {
  tcam_blocks_per_stage : int;
  tcam_rows : int;
  tcam_bits : int;
  sram_blocks_per_stage : int;
  sram_rows : int;
  sram_bits : int;
  stages : int;
}

let rmt =
  {
    tcam_blocks_per_stage = 16;
    tcam_rows = 2_000;
    tcam_bits = 40;
    sram_blocks_per_stage = 106;
    sram_rows = 1_000;
    sram_bits = 112;
    stages = 16;
  }

type cost = {
  prules : int;
  prule_bits : int;
  tcam_blocks : int;
  tcam_entries_used : int;
  tcam_entries_provisioned : int;
  waste_percent : float;
  sram_stages_needed : int;
}

let strawman_cost ?(chip = rmt) ~rule_bits ~prules () =
  if prules <= 0 || rule_bits <= 0 then invalid_arg "Strawman.strawman_cost";
  let total_bits = rule_bits * prules in
  let tcam_blocks = (total_bits + chip.tcam_bits - 1) / chip.tcam_bits in
  let provisioned = chip.tcam_rows in
  {
    prules;
    prule_bits = rule_bits;
    tcam_blocks;
    tcam_entries_used = prules;
    tcam_entries_provisioned = provisioned;
    waste_percent =
      100.0 *. float_of_int (provisioned - prules) /. float_of_int provisioned;
    sram_stages_needed = prules;
  }

let appendix_example () = strawman_cost ~rule_bits:11 ~prules:10 ()

let leaf_layer_cost ?(chip = rmt) topo (params : Params.t) =
  strawman_cost ~chip
    ~rule_bits:(Prule.prule_bits topo `Leaf ~nswitches:params.Params.kmax)
    ~prules:params.Params.hmax_leaf ()

let pp_cost ppf c =
  Format.fprintf ppf
    "@[<v>%d p-rules x %d bits as match keys:@ \
     TCAM: %d blocks ganged into one %d-entry table, %d entries used \
     (%.1f%% wasted)@ \
     SRAM alternative: %d of 16 ingress stages, one rule each@ \
     parser-based design (4.1): 0 match-stage blocks@]"
    c.prules c.prule_bits c.tcam_blocks c.tcam_entries_provisioned
    c.tcam_entries_used c.waste_percent c.sram_stages_needed
