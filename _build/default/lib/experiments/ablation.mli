(** Header-size ablation of design decisions D1–D5 (§3.1) on the paper's
    running example (Figure 3a). The paper's ladder is 161 → 83 → 62 bits
    under its own accounting; this module reports the same ladder under the
    implemented wire format, plus the D4 (default p-rule) and D5 (s-rule)
    states of Figure 3a's table. *)

type step = {
  label : string;
  header_bits : int;
  prules : int;
  srules : int;
  default_used : bool;
}

val example_group : Topology.t -> int list
(** The Figure 3a multicast group on the running-example topology. *)

val run : unit -> step list
val pp_step : Format.formatter -> step -> unit
