(** Bisection-bandwidth utilization (§6, Table 3 "multipath forwarding").

    The paper's Table 3 credits Elmo with full multipath forwarding while
    IP-multicast-style schemes pin each group's tree to one spine plane and
    one core, concentrating load. We measure this directly: for a workload
    of (group, sender) flows, count how many flows cross each upstream
    spine→core link under

    - {b Elmo}: per-flow ECMP ({!Ecmp} — the same hash the data plane uses),
    - {b pinned trees}: one plane and one core per {e group} (how our
      IP-multicast and Li et al. baselines route),

    and report the load distribution and its imbalance (max/mean — 1.0 is a
    perfect spread). *)

type result = {
  scheme : string;
  flows : int;  (** cross-pod flows measured *)
  link_load : Stats.summary;  (** flows per upstream spine→core link *)
  imbalance : float;  (** max link load / mean link load *)
}

val run : ?groups:int -> ?senders_per_group:int -> ?seed:int -> unit -> result list
(** Defaults: 20,000 WVE groups at P=1 (dispersed, so the core layer carries
    the workload) on the Facebook fabric, up to 3 sampled senders each,
    seed 42. Returns Elmo's and the pinned scheme's results over the same
    flows. *)

val pp_result : Format.formatter -> result -> unit
