(** Appendix A reproduction: the cost of looking p-rules up in match-action
    stages instead of the parser.

    The paper's strawman puts the p-rule list in front of a match-action
    table. Because p-rules are {e headers}, the table must match on all of
    them at once (width, not depth), and RMT-style chips provision match
    stages as fixed blocks — 106 SRAM blocks of 1,000 × 112 b and 16 TCAM
    blocks of 2,000 × 40 b per stage. Matching N p-rules with wildcards
    needs ⌈N·w / 40⌉ TCAM blocks ganged into one 2,000-row table of which
    only N rows are used: the appendix's example wastes 99.5% of the
    entries. The alternative burns one whole stage per rule. This module
    computes those numbers for any topology/parameter choice, next to the
    parser-based design's cost (zero match-stage resources). *)

type rmt = {
  tcam_blocks_per_stage : int;  (** 16 *)
  tcam_rows : int;  (** 2,000 *)
  tcam_bits : int;  (** 40 *)
  sram_blocks_per_stage : int;  (** 106 *)
  sram_rows : int;  (** 1,000 *)
  sram_bits : int;  (** 112 *)
  stages : int;  (** 16 ingress stages *)
}

val rmt : rmt
(** The RMT figures the paper cites. *)

type cost = {
  prules : int;
  prule_bits : int;  (** width of one p-rule match key *)
  tcam_blocks : int;  (** blocks ganged to match all rules in one stage *)
  tcam_entries_used : int;
  tcam_entries_provisioned : int;
  waste_percent : float;
  sram_stages_needed : int;  (** stages if eschewing TCAM (one rule/stage) *)
}

val strawman_cost : ?chip:rmt -> rule_bits:int -> prules:int -> unit -> cost

val appendix_example : unit -> cost
(** The appendix's own numbers: ten 11-bit p-rules → 3 TCAM blocks, 10 of
    2,000 entries used, 99.5% waste. *)

val leaf_layer_cost : ?chip:rmt -> Topology.t -> Params.t -> cost
(** The cost of the strawman for a real downstream-leaf section (hmax_leaf
    rules of this library's wire width). *)

val pp_cost : Format.formatter -> cost -> unit
