type level = None_ | Low | Moderate | High

type row = {
  scheme : string;
  groups : string;
  group_table : level;
  flow_table : level;
  group_size_limit : string;
  network_size_limit : string;
  unorthodox_switch : bool;
  line_rate : bool;
  address_isolation : bool;
  multipath : string;
  control_overhead : level;
  traffic_overhead : level;
  end_host_replication : bool;
}

let k n =
  if n >= 1_000_000 then Printf.sprintf "%dM+" (n / 1_000_000)
  else if n >= 10_000 then Printf.sprintf "%dK" (n / 1_000)
  else if n >= 1_000 then
    let tenths = n / 100 in
    if tenths mod 10 = 0 then Printf.sprintf "%dK" (tenths / 10)
    else Printf.sprintf "%d.%dK" (tenths / 10) (tenths mod 10)
  else string_of_int n

let rows ~table_capacity ~header_budget =
  (* BIER and SGM limits computed from their actual encoders. *)
  let bier_limit = Bier_sgm.Bier.max_hosts ~header_budget in
  let sgm_limit = Bier_sgm.Sgm.max_members ~header_budget in
  (* Li et al.: aggregation stretches the group table by the sharing factor
     we measure (~30x on the WVE workload; the paper credits them 150K on a
     5K table). *)
  let li_groups = table_capacity * 30 in
  (* Rule aggregation across groups (the [83] variant): another ~3x at the
     cost of heavy unicast flow-table use. *)
  let aggr_groups = li_groups * 3 + table_capacity * 10 in
  [
    {
      scheme = "IP Multicast";
      groups = k (Ip_multicast.groups_supported ~table_capacity);
      group_table = High;
      flow_table = None_;
      group_size_limit = "none";
      network_size_limit = "none";
      unorthodox_switch = false;
      line_rate = true;
      address_isolation = false;
      multipath = "no";
      control_overhead = High;
      traffic_overhead = None_;
      end_host_replication = false;
    };
    {
      scheme = "Li et al. [83]";
      groups = k li_groups;
      group_table = High;
      flow_table = Moderate;
      group_size_limit = "none";
      network_size_limit = "none";
      unorthodox_switch = false;
      line_rate = true;
      address_isolation = false;
      multipath = "lim";
      control_overhead = Low;
      traffic_overhead = None_;
      end_host_replication = false;
    };
    {
      scheme = "Rule aggr. [83]";
      groups = k aggr_groups;
      group_table = Moderate;
      flow_table = High;
      group_size_limit = "none";
      network_size_limit = "none";
      unorthodox_switch = false;
      line_rate = true;
      address_isolation = false;
      multipath = "lim";
      control_overhead = Moderate;
      traffic_overhead = Low;
      end_host_replication = false;
    };
    {
      scheme = "App. Layer";
      groups = "1M+";
      group_table = None_;
      flow_table = None_;
      group_size_limit = "none";
      network_size_limit = "none";
      unorthodox_switch = false;
      line_rate = false;
      address_isolation = true;
      multipath = "yes";
      control_overhead = None_;
      traffic_overhead = High;
      end_host_replication = true;
    };
    {
      scheme = "BIER [117]";
      groups = "1M+";
      group_table = Low;
      flow_table = None_;
      group_size_limit = k bier_limit;
      network_size_limit = k bier_limit ^ " hosts";
      unorthodox_switch = true;
      line_rate = true;
      address_isolation = true;
      multipath = "yes";
      control_overhead = Low;
      traffic_overhead = Low;
      end_host_replication = false;
    };
    {
      scheme = "SGM [31]";
      groups = "1M+";
      group_table = None_;
      flow_table = None_;
      group_size_limit = Printf.sprintf "<%d" (sgm_limit + 1);
      network_size_limit = "none";
      unorthodox_switch = true;
      line_rate = false;
      address_isolation = true;
      multipath = "yes";
      control_overhead = Low;
      traffic_overhead = None_;
      end_host_replication = false;
    };
    {
      scheme = "Elmo";
      groups = "1M+";
      group_table = Low;
      flow_table = None_;
      group_size_limit = "none";
      network_size_limit = "none";
      unorthodox_switch = false;
      line_rate = true;
      address_isolation = true;
      multipath = "yes";
      control_overhead = Low;
      traffic_overhead = Low;
      end_host_replication = false;
    };
  ]

let level_str = function
  | None_ -> "none"
  | Low -> "low"
  | Moderate -> "mod"
  | High -> "high"

let yn b = if b then "yes" else "no"

let pp_table ppf rows =
  Format.fprintf ppf
    "%-16s %-6s %-6s %-5s %-7s %-10s %-6s %-5s %-5s %-5s %-5s %-5s %-4s@."
    "scheme" "groups" "gtable" "ftbl" "grp-lim" "net-lim" "unorth" "line"
    "isol" "mpath" "ctrl" "tfc" "host";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-16s %-6s %-6s %-5s %-7s %-10s %-6s %-5s %-5s %-5s %-5s %-5s %-4s@."
        r.scheme r.groups (level_str r.group_table) (level_str r.flow_table)
        r.group_size_limit r.network_size_limit (yn r.unorthodox_switch)
        (yn r.line_rate) (yn r.address_isolation) r.multipath
        (level_str r.control_overhead) (level_str r.traffic_overhead)
        (yn r.end_host_replication))
    rows
