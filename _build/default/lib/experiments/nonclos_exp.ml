type result = {
  label : string;
  groups : int;
  covered_in_budget : int;
  header_bytes : Stats.summary;
  sharing : Stats.summary;
}

let budget_bytes = 325

let run ?(switches = 1_125) ?(degree = 24) ?(hosts_per_switch = 24)
    ?(groups = 2_000) ?(r = 12) ?(seed = 42) () =
  let topos =
    [
      ("Xpander (symmetric)", Graph_topology.xpander ~switches ~degree ~hosts_per_switch);
      ( "Jellyfish (random)",
        Graph_topology.jellyfish (Rng.create seed) ~switches ~degree
          ~hosts_per_switch );
    ]
  in
  List.map
    (fun (label, topo) ->
      let kmax = 2 in
      let width = Graph_topology.port_width topo in
      let idb = Graph_topology.id_bits topo in
      let rule_bits = 1 + width + (kmax * (idb + 1)) in
      let hmax = max 1 (((budget_bytes * 8) - (2 + width)) / rule_bits) in
      let rng = Rng.create (seed + 1) in
      let covered = ref 0 in
      let sizes = ref [] in
      let sharing = ref [] in
      for _ = 1 to groups do
        let size = Group_dist.base_sample rng Group_dist.Wve in
        (* Tenant-style locality: members live on the BFS-nearest switches
           of a random centre (two hosts per switch on average), the same
           policy on both topologies. *)
        let centre = Rng.int rng topo.Graph_topology.num_switches in
        let region_switches =
          min topo.Graph_topology.num_switches (max 1 ((size + 1) / 2))
        in
        let region = Graph_topology.nearest_switches topo ~root:centre region_switches in
        let region_hosts =
          Array.concat
            (List.map
               (fun s ->
                 Array.init hosts_per_switch (fun i -> (s * hosts_per_switch) + i))
               region)
        in
        let members =
          Rng.sample_without_replacement rng
            (min size (Array.length region_hosts))
            region_hosts
          |> Array.to_list |> List.sort_uniq compare
        in
        let root = Graph_topology.switch_of_host topo (List.hd members) in
        let tree = Flat_encoding.Flat_tree.of_members topo ~root members in
        let enc = Flat_encoding.encode ~r ~hmax ~kmax topo tree in
        let bytes = Flat_encoding.header_bytes enc in
        if Flat_encoding.covered enc && bytes <= budget_bytes then incr covered;
        sizes := float_of_int bytes :: !sizes;
        sharing := Flat_encoding.switches_per_rule enc :: !sharing
      done;
      {
        label;
        groups;
        covered_in_budget = !covered;
        header_bytes = Stats.summarize (Array.of_list !sizes);
        sharing = Stats.summarize (Array.of_list !sharing);
      })
    topos

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d/%d groups (%.1f%%) within the %dB budget@ \
     header bytes: %a@ switches per p-rule: %a@]"
    r.label r.covered_in_budget r.groups
    (100.0 *. float_of_int r.covered_in_budget /. float_of_int (max 1 r.groups))
    budget_bytes Stats.pp_summary r.header_bytes Stats.pp_summary r.sharing
