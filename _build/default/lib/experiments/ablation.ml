(* Design-decision ablation (§3.1 D1-D5) on the paper's running example
   (Figure 3a): header size under progressively enabled optimizations, plus
   the s-rule/default trade-off. The paper's ladder is 161 -> 83 -> 62 bits
   with its ad-hoc accounting; ours uses the implemented wire format. *)

type step = {
  label : string;
  header_bits : int;
  prules : int;
  srules : int;
  default_used : bool;
}

let example_group topo =
  (* Figure 3a: Ha,Hb under L0; Hk under L5; Hm,Hn under L6; Hp under L7. *)
  let h = topo.Topology.hosts_per_leaf in
  [ 0; 1; (5 * h) + 2; (6 * h) + 4; (6 * h) + 5; (7 * h) + 7 ]

(* D1 baseline: one rule per physical switch on the tree, each carrying a
   full-port bitmap and a physical switch identifier; no layering, so no
   popping and no upstream/downstream split. *)
let d1_bits topo tree =
  let phys_id_bits = Topology.bits_needed (Topology.num_switches topo) in
  let leaf_ports = Topology.leaf_downstream_width topo + Topology.leaf_upstream_width topo in
  let spine_ports =
    Topology.spine_downstream_width topo + Topology.spine_upstream_width topo
  in
  let core_ports = Topology.core_downstream_width topo in
  (* Every physical switch that may carry the packet needs its own rule:
     the tree's leaves, every spine of each participating pod, and — under
     multipath — every core. *)
  (Tree.leaf_count tree * (leaf_ports + phys_id_bits))
  + List.length (List.concat_map (Topology.spines_of_pod topo) (Tree.pods tree))
    * (spine_ports + phys_id_bits)
  + (Topology.num_cores topo * (core_ports + phys_id_bits))

let encode_with topo params members ~fmax =
  let tree = Tree.of_members topo members in
  let srules = Srule_state.create topo ~fmax in
  let enc = Encoding.encode params srules tree in
  let header = Encoding.header_for_sender enc ~sender:(List.hd members) in
  (enc, Prule.header_bits topo header)

let run () =
  let topo = Topology.running_example () in
  let members = example_group topo in
  let tree = Tree.of_members topo members in
  let step label params fmax =
    let enc, bits = encode_with topo params members ~fmax in
    {
      label;
      header_bits = bits;
      prules = Encoding.prule_count enc;
      srules = Encoding.srule_entries enc;
      default_used = Encoding.uses_default enc;
    }
  in
  let no_budget = None in
  [
    {
      label = "D1: per-physical-switch rules";
      header_bits = d1_bits topo tree;
      prules =
        Tree.leaf_count tree
        + (Tree.pod_count tree * topo.Topology.spines_per_pod)
        + Topology.num_cores topo;
      srules = 0;
      default_used = false;
    };
    step "D2: logical topology, singleton p-rules"
      (Params.create ~r:0 ~hmax_leaf:64 ~hmax_spine:64 ~header_budget:no_budget ())
      0;
    step "D3: bitmap sharing (R=2 per bitmap, Kmax=2)"
      (Params.create ~r:2 ~r_semantics:Params.Per_bitmap ~hmax_leaf:2
         ~hmax_spine:2 ~header_budget:no_budget ())
      0;
    step "D4: Hmax=2, R=0, no s-rules (default p-rule)"
      (Params.create ~r:0 ~hmax_leaf:2 ~hmax_spine:2 ~header_budget:no_budget ())
      0;
    step "D5: Hmax=2, R=0, s-rule capacity 1"
      (Params.create ~r:0 ~hmax_leaf:2 ~hmax_spine:2 ~header_budget:no_budget ())
      1;
  ]

let pp_step ppf s =
  Format.fprintf ppf "%-45s %4d bits  (%d p-rules, %d s-rules%s)" s.label
    s.header_bits s.prules s.srules
    (if s.default_used then ", default used" else "")
