(** Hypervisor-switch encapsulation microbenchmark (§5.3, Figure 7).

    The paper pushes p-rules at a PISCES switch and shows that writing all
    p-rules as one header keeps 20 Gbps line rate while packets/s falls with
    header size, whereas one DMA write per rule degrades linearly in the
    rule count. We reproduce the same series against the OCaml codec: for
    each downstream-leaf p-rule count, measure single-write
    ({!Header_codec.encode}) and per-rule-write
    ({!Header_codec.encode_per_rule_writes}) encapsulation rates.

    Substitution note (DESIGN.md §3): absolute Mpps depends on the machine;
    the reproduced claims are the {e shapes} — bits/s roughly flat in rule
    count for the single-write path, and a widening pps gap for the
    per-rule-write path. *)

type point = {
  prules : int;
  header_bytes : int;
  single_mpps : float;  (** million encapsulations/s, single header write *)
  single_gbps : float;  (** at the given payload *)
  per_rule_mpps : float;
  per_rule_gbps : float;
}

val header_with_rules : Topology.t -> int -> Prule.header
(** A representative header carrying [n] downstream-leaf p-rules (plus the
    usual upstream/core sections). [n = 0] yields the bare encapsulation. *)

val run : ?payload:int -> ?iterations:int -> Topology.t -> int list -> point list
(** [run topo counts] measures each p-rule count with a timed loop
    ([iterations] encodes per sample, default 2_000; payload default 1458
    bytes as in MoonGen line-rate tests). *)

val pp_point : Format.formatter -> point -> unit
