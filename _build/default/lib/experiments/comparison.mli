(** Table 3 reproduction: Elmo against related multicast schemes, evaluated
    like the paper "against a group-table size of 5,000 rules and a
    header-size budget of 325 bytes".

    Quantitative cells are computed from our models where a model exists
    (IP multicast and Li et al. group counts, Elmo's header fit); the
    remaining cells are qualitative properties of the schemes. BIER's and
    SGM's size limits come from their actual encoders ({!Bier_sgm}): the
    bit-string width bounds both group and network size at ~2.5K hosts for
    a 325-byte budget, and SGM's address list caps groups at 80. *)

type level = None_ | Low | Moderate | High

type row = {
  scheme : string;
  groups : string;  (** supported group count under the evaluation budget *)
  group_table : level;
  flow_table : level;
  group_size_limit : string;
  network_size_limit : string;
  unorthodox_switch : bool;
  line_rate : bool;
  address_isolation : bool;
  multipath : string;
  control_overhead : level;
  traffic_overhead : level;
  end_host_replication : bool;
}

val rows : table_capacity:int -> header_budget:int -> row list
val pp_table : Format.formatter -> row list -> unit
