(** Non-Clos header-utilization experiment (§5.1.2 closing paragraph).

    On a 27,000-host expander built from 48-port switches with network
    degree 24 (the paper's parameters), encode a WVE-sized workload on a
    symmetric (Xpander-like circulant) and an asymmetric (Jellyfish random
    regular) topology and compare header-space utilization: fraction of
    groups within the 325-byte budget, header-size distribution, and bitmap
    sharing degree. The paper's claim: the symmetric topology still supports
    the workload within budget; random asymmetry spoils sharing. *)

type result = {
  label : string;
  groups : int;
  covered_in_budget : int;  (** header ≤ 325 B without a default rule *)
  header_bytes : Stats.summary;
  sharing : Stats.summary;  (** switches per p-rule *)
}

val run :
  ?switches:int ->
  ?degree:int ->
  ?hosts_per_switch:int ->
  ?groups:int ->
  ?r:int ->
  ?seed:int ->
  unit ->
  result list
(** Defaults: 1,125 switches × degree 24 × 24 hosts = 27,000 hosts,
    2,000 groups, R = 12, seed 42. Returns one result per topology
    (Xpander, Jellyfish). *)

val pp_result : Format.formatter -> result -> unit
