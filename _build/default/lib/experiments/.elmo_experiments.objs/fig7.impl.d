lib/experiments/fig7.ml: Bitmap Bytes Fabric Format Hypervisor List Prule Sys Topology Unix
