lib/experiments/ablation.ml: Encoding Format List Params Prule Srule_state Topology Tree
