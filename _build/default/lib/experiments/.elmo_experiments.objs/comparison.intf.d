lib/experiments/comparison.mli: Format
