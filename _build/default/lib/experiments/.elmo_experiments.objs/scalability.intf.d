lib/experiments/scalability.mli: Format Group_dist Params Stats Topology Vm_placement
