lib/experiments/nonclos_exp.mli: Format Stats
