lib/experiments/control_plane.mli: Churn Format Group_dist Params Topology Vm_placement
