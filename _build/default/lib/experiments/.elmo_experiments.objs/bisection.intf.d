lib/experiments/bisection.mli: Format Stats
