lib/experiments/bisection.ml: Array Ecmp Format Group_dist Rng Stats Topology Tree Vm_placement Workload
