lib/experiments/scalability.ml: Array Encoding Format Group_dist Li_et_al List Params Rng Srule_state Stats Sys Topology Traffic Tree Unicast_overlay Vm_placement Workload
