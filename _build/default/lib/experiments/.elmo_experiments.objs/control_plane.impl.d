lib/experiments/control_plane.ml: Array Churn Controller Encoding Format Group_dist Li_et_al Params Rng Scalability Topology Vm_placement Workload
