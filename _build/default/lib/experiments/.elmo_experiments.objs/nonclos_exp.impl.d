lib/experiments/nonclos_exp.ml: Array Flat_encoding Format Graph_topology Group_dist List Rng Stats
