lib/experiments/strawman.ml: Format Params Prule
