lib/experiments/comparison.ml: Bier_sgm Format Ip_multicast List Printf
