lib/experiments/strawman.mli: Format Params Topology
