lib/experiments/ablation.mli: Format Topology
