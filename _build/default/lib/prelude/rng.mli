(** Deterministic pseudo-random number generator (splitmix64).

    All simulations in this repository draw randomness through this module so
    that every experiment is reproducible from a single integer seed. The
    generator is splittable: independent substreams can be carved off for
    parallel or per-entity use without correlating results. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal sample: [exp (mu + sigma * z)] for standard normal [z]. *)

val normal : t -> float
(** Standard normal sample (Box–Muller). *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] returns [k] distinct elements chosen
    uniformly (partial Fisher–Yates on a copy). Raises [Invalid_argument] if
    [k > Array.length arr] or [k < 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
