lib/prelude/rng.mli:
