(** Summary statistics over float samples, used by every benchmark harness to
    report the same aggregates the paper does (mean, max, percentiles). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. Does not mutate the input. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]], linear interpolation. The
    input must already be sorted ascending. *)

val mean : float array -> float
val total : float array -> float

val of_ints : int array -> float array

val pp_summary : Format.formatter -> summary -> unit

module Welford : sig
  (** Streaming mean/variance accumulator, O(1) memory. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val max : t -> float
  val min : t -> float
end
