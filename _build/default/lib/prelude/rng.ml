type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then go () else r
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let normal t =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 0.0 then epsilon_float else u1 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. normal t))

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let copy = Array.copy arr in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
