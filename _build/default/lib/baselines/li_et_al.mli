(** Model of Li & Freedman, "Scaling IP Multicast on Datacenter Topologies"
    (CoNEXT'13) — the paper's main state/update comparator ([83]).

    Substitution note (DESIGN.md §3): the original system is closed source;
    we reimplement its state model. Each group's tree is pinned to one spine
    plane and one core (hash-based, no multipath); every switch on the tree
    needs a group-table entry, but entries are {e aggregated}: groups with
    the same output-port set at a switch share one entry (their
    local-scope address aggregation). Entry counts per switch are therefore
    the number of distinct port sets at that switch; [O(#groups)]
    unicast flow-table entries for address translation are tracked
    separately.

    Churn: a membership event updates every tree switch whose port set
    changes (leaf, pinned pod spine, pinned core), and de-/re-aggregation
    cascades mean shared entries must be rewritten; we count direct switch
    touches and report them per layer (Table 2, right column). *)

type t

val create : Topology.t -> t

val plane_of_group : t -> int -> int
(** Pinned spine plane (deterministic hash of the group id). *)

val core_of_group : t -> int -> int

val add_group : t -> group:int -> Tree.t -> unit
(** Installs the group's pinned tree; aggregates entries. *)

val remove_group : t -> group:int -> Tree.t -> unit

type touch = { leaves : int list; spines : int list; cores : int list }
(** Switches whose state an event touched. *)

val update : t -> group:int -> old_tree:Tree.t option -> new_tree:Tree.t option -> touch
(** Replaces the group's tree. If any switch's port set changed, the group's
    aggregated local address must be reassigned, so the touch set is the
    {e entire} old and new tree (the churn amplification the paper holds
    against this scheme); an identical tree touches nothing. Either side may
    be [None] (creation/deletion). *)

val leaf_entries : t -> int array
(** Distinct aggregated group-table entries per leaf switch. *)

val spine_entries : t -> int array
(** Per physical spine. *)

val core_entries : t -> int array
val flow_entries : t -> int
(** O(#groups) translation flow entries (Table 3 "flow-table usage"). *)
