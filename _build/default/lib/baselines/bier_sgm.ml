module Bier = struct
  let fixed_header = 8

  let header_bytes ~hosts =
    if hosts <= 0 then invalid_arg "Bier.header_bytes";
    fixed_header + ((hosts + 7) / 8)

  let max_hosts ~header_budget =
    if header_budget <= fixed_header then 0
    else (header_budget - fixed_header) * 8

  let encode ~hosts ~members =
    let bm = Bitmap.create hosts in
    List.iter (fun m -> Bitmap.set bm m) members;
    let w = Bitio.Writer.create () in
    Bitio.Writer.bits w 0 32 (* BFIR-id + entropy, zeroed *);
    Bitio.Writer.bits w hosts 32;
    Bitio.Writer.bitmap w bm;
    Bitio.Writer.to_bytes w

  let members_of ~hosts data =
    let r = Bitio.Reader.of_bytes data in
    let _ = Bitio.Reader.bits r 32 in
    let stored = Bitio.Reader.bits r 32 in
    if stored <> hosts then invalid_arg "Bier.members_of: width mismatch";
    Bitmap.to_list (Bitio.Reader.bitmap r hosts)

  let table_lookups_per_hop = 1
end

module Sgm = struct
  let fixed_header = 4

  let header_bytes ~members =
    if members < 0 then invalid_arg "Sgm.header_bytes";
    fixed_header + (4 * members)

  let max_members ~header_budget = max 0 ((header_budget - fixed_header) / 4)

  let encode ~members =
    let w = Bitio.Writer.create () in
    Bitio.Writer.bits w (List.length members) 32;
    List.iter
      (fun addr ->
        Bitio.Writer.bits w (Int32.to_int (Int32.shift_right_logical addr 16)) 16;
        Bitio.Writer.bits w (Int32.to_int addr land 0xFFFF) 16)
      members;
    Bitio.Writer.to_bytes w

  let members_of data =
    let r = Bitio.Reader.of_bytes data in
    match Bitio.Reader.bits r 32 with
    | exception Bitio.Reader.Truncated -> Error "truncated count"
    | n -> (
        if n < 0 || n > 1 lsl 24 then Error "implausible member count"
        else
          try
            Ok
              (List.init n (fun _ ->
                   let hi = Bitio.Reader.bits r 16 in
                   let lo = Bitio.Reader.bits r 16 in
                   Int32.logor
                     (Int32.shift_left (Int32.of_int hi) 16)
                     (Int32.of_int lo)))
          with Bitio.Reader.Truncated -> Error "truncated address list")

  let table_lookups_per_hop ~members = members
end
