type t = {
  topo : Topology.t;
  leaf_counts : int array;
  spine_counts : int array;
  core_counts : int array;
}

let create topo =
  {
    topo;
    leaf_counts = Array.make (Topology.num_leaves topo) 0;
    spine_counts = Array.make (Topology.num_spines topo) 0;
    core_counts = Array.make (max 1 (Topology.num_cores topo)) 0;
  }

let hash_group g =
  let z = (g * 0x9E3779B9) lxor 0x5bd1e995 in
  abs ((z lxor (z lsr 13)) * 0xC2B2AE35)

(* Pinned tree switches: every member leaf, one spine per member pod (a
   fixed plane), and one core for multi-pod groups. *)
let tree_switches t group tree =
  let plane = hash_group group mod t.topo.Topology.spines_per_pod in
  let leaves = List.map (fun (l, _) -> `Leaf l) tree.Tree.leaf_bitmaps in
  let spines =
    List.map
      (fun (p, _) -> `Spine ((p * t.topo.Topology.spines_per_pod) + plane))
      tree.Tree.spine_bitmaps
  in
  let cores =
    if Tree.pod_count tree > 1 && t.topo.Topology.cores_per_plane > 0 then
      [ `Core
          ((plane * t.topo.Topology.cores_per_plane)
          + (hash_group group / 7 mod t.topo.Topology.cores_per_plane))
      ]
    else []
  in
  leaves @ spines @ cores

let adjust t ~group tree delta =
  List.iter
    (function
      | `Leaf l -> t.leaf_counts.(l) <- t.leaf_counts.(l) + delta
      | `Spine s -> t.spine_counts.(s) <- t.spine_counts.(s) + delta
      | `Core c -> t.core_counts.(c) <- t.core_counts.(c) + delta)
    (tree_switches t group tree)

let add_group t ~group tree = adjust t ~group tree 1
let remove_group t ~group tree = adjust t ~group tree (-1)

let leaf_entries t = Array.copy t.leaf_counts
let spine_entries t = Array.copy t.spine_counts
let core_entries t = Array.copy t.core_counts

let max_table_occupancy t =
  let m arr = Array.fold_left max 0 arr in
  max (m t.leaf_counts) (max (m t.spine_counts) (m t.core_counts))

let groups_supported ~table_capacity = table_capacity
