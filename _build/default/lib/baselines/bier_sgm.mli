(** The remaining source-routed comparators of Table 3, implemented:

    {b BIER} (RFC 8279) encodes group members as a {e bit string} with one
    bit per destination (bit-forwarding egress router ≙ host hypervisor
    here). Under the same header budget as Elmo, the bit-string width caps
    both the group size and the network size — the paper's "2.6K" cells —
    and forwarding requires wildcard longest-prefix-style lookups over the
    whole table per packet, infeasible in TCAM-based match-action pipelines.

    {b SGM} (small group multicast, Boivie et al.) carries an explicit list
    of member IP addresses; every hop looks each address up in the routing
    table, so lookups per packet grow with group size — the "breaks the
    line-rate invariant" argument — and the header budget caps groups at
    under a hundred members.

    Both encoders produce real byte counts (via {!Bitio}) so the Table 3
    limits are computed, not quoted. *)

module Bier : sig
  val header_bytes : hosts:int -> int
  (** Bit-string width = one bit per host, byte-padded, plus an 8-byte
      BIER header. *)

  val max_hosts : header_budget:int -> int
  (** Largest network whose full bit string fits the budget — with the
      paper's 325 B this is 2,536 ≈ the "2.6K" of Table 3. Group size is
      capped by the same number. *)

  val encode : hosts:int -> members:int list -> bytes
  (** The on-wire bit string (for size/shape tests). Raises
      [Invalid_argument] on an out-of-range member. *)

  val members_of : hosts:int -> bytes -> int list

  val table_lookups_per_hop : int
  (** 1 wildcard lookup — but over a table that must return {e all} matching
      entries, which TCAM match-action stages cannot do (§6). *)
end

module Sgm : sig
  val header_bytes : members:int -> int
  (** 4 bytes per IPv4 member address plus a 4-byte count/flags word. *)

  val max_members : header_budget:int -> int
  (** With 325 B: 80 members — Table 3's "<100". *)

  val encode : members:int32 list -> bytes
  val members_of : bytes -> (int32 list, string) result

  val table_lookups_per_hop : members:int -> int
  (** One routing-table lookup per member address at every hop — the
      unbounded per-packet work that breaks line rate. *)
end
