(** Host-based replication baselines (§5.1.2, §6): unicast and overlay
    multicast.

    Unicast: the sender transmits one copy per receiver along its shortest
    path (2 links within a leaf, 4 within a pod, 6 across pods, counting the
    host links).

    Overlay multicast (the paper's §5 footnote): the source hypervisor
    unicasts one copy to a relay host under each participating leaf; each
    relay then unicasts to the other member hosts under its leaf. The source
    acts as relay for its own leaf. *)

type cost = {
  transmissions : int;  (** total link traversals *)
  source_packets : int;
      (** packets the source host emits (the end-host CPU/egress-bandwidth
          proxy: Elmo sends 1) *)
}

val unicast : Tree.t -> sender:int -> cost
val overlay : Tree.t -> sender:int -> cost

val path_links : Topology.t -> src:int -> dst:int -> int
(** Links on the shortest unicast path between two hosts (0 if equal). *)

val overhead_vs_ideal : Tree.t -> sender:int -> cost -> float
(** [(transmissions − ideal) / ideal] with the ideal-multicast link count —
    the horizontal reference lines of Fig. 4/5 (right). Payload-dominated:
    host-based schemes add no Elmo header, so byte and transmission ratios
    coincide. *)
