(** Native IP multicast baseline (§6, Table 3).

    One group-table entry on {e every} physical switch of the group's tree,
    no aggregation, no multipath (trees are pinned like a PIM shared tree).
    The number of groups a datacenter can support is capped by the first
    switch whose group table fills — the paper's "5K groups with a 5,000-
    entry group table" row. *)

type t

val create : Topology.t -> t
val add_group : t -> group:int -> Tree.t -> unit
val remove_group : t -> group:int -> Tree.t -> unit

val leaf_entries : t -> int array
val spine_entries : t -> int array
val core_entries : t -> int array

val max_table_occupancy : t -> int
(** Entries on the fullest switch — groups beyond
    [group-table capacity − this] cannot be added. *)

val groups_supported : table_capacity:int -> int
(** Closed-form estimate used in the Table 3 reproduction: a popular
    (spine/core) switch ends up with roughly one entry per group that
    crosses it, so group count is capped by the group-table capacity itself
    — the paper's "5K" row for a 5,000-entry table. *)
