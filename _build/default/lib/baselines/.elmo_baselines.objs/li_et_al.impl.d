lib/baselines/li_et_al.ml: Array Bitmap Bytes Hashtbl List Option Topology Tree
