lib/baselines/bier_sgm.mli:
