lib/baselines/ip_multicast.ml: Array List Topology Tree
