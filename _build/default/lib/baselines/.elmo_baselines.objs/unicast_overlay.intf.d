lib/baselines/unicast_overlay.mli: Topology Tree
