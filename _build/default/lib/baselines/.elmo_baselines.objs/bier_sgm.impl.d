lib/baselines/bier_sgm.ml: Bitio Bitmap Int32 List
