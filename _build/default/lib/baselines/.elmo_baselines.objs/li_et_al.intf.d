lib/baselines/li_et_al.mli: Topology Tree
