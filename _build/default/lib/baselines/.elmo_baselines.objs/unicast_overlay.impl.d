lib/baselines/unicast_overlay.ml: Array Bitmap List Topology Tree
