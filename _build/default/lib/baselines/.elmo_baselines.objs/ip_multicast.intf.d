lib/baselines/ip_multicast.mli: Topology Tree
