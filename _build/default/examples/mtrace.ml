(* Multicast traceroute (§7 "Monitoring"): the paper notes that in-band
   telemetry makes multicast debuggable — every copy of a packet can report
   the path it took. The simulated fabric records exactly that: injecting a
   packet returns an INT-style per-hop trace of the whole replication tree,
   including how many Elmo header bytes each hop still carried (watch them
   shrink as layers pop).

   Run with: dune exec examples/mtrace.exe *)

let () =
  let topo = Topology.running_example () in
  let h = topo.Topology.hosts_per_leaf in
  let members = [ 0; 1; (5 * h) + 2; (6 * h) + 4; (6 * h) + 5; (7 * h) + 7 ] in
  let tree = Tree.of_members topo members in
  let srules = Srule_state.create topo ~fmax:100 in
  let enc = Encoding.encode Params.default srules tree in
  let fabric = Fabric.create topo in
  Fabric.install_encoding fabric ~group:3 enc;
  let header = Encoding.header_for_sender enc ~sender:0 in
  let report = Fabric.inject fabric ~sender:0 ~group:3 ~header ~payload:64 in

  Format.printf "mtrace for group 3 from host 0 (%d members):@.@."
    (Tree.member_count tree);
  Format.printf "%a" Fabric.pp_trace report.Fabric.trace;
  Format.printf
    "@.%d link traversals, %d receivers, header shrank from %d bytes to 0 on \
     every root-to-host path.@."
    report.Fabric.transmissions
    (List.length report.Fabric.delivered)
    (match report.Fabric.trace with
    | first :: _ -> first.Fabric.hop_header_bytes
    | [] -> 0);
  assert (Fabric.deliveries_correct report ~tree ~sender:0)
