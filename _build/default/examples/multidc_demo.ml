(* Multi-datacenter multicast (§7 "Path to deployment"): a group spanning
   two datacenters keeps one Elmo encoding per DC; the source multicasts
   locally and sends a single WAN unicast to a relay hypervisor in the
   remote DC, which re-multicasts with that DC's rules.

   Run with: dune exec examples/multidc_demo.exe *)

let () =
  let dc_east = Fabric.create (Topology.running_example ()) in
  let dc_west = Fabric.create (Topology.facebook_fabric ()) in
  let m = Multidc.create Params.default [ dc_east; dc_west ] in
  Format.printf "DC 0 (east): %a@.DC 1 (west): %a@.@." Topology.pp
    (Fabric.topology dc_east) Topology.pp (Fabric.topology dc_west);

  (* Five members in the east DC, four in the west. *)
  let members =
    [ (0, 0); (0, 1); (0, 20); (0, 42); (0, 63); (1, 7); (1, 500); (1, 9000); (1, 27000) ]
  in
  Multidc.add_group m ~group:77 members;
  Format.printf "group 77: %d members across %d datacenters@."
    (List.length members) (Multidc.datacenters m);

  let report = Multidc.send m ~group:77 ~sender_dc:0 ~sender:0 in
  Format.printf "@.sender: DC 0, host 0@.";
  Format.printf "local multicast:  %d link transmissions, %d receivers@."
    report.Multidc.local.Fabric.transmissions
    (List.length report.Multidc.local.Fabric.delivered);
  Format.printf "WAN unicasts:     %d (one per remote DC)@."
    report.Multidc.wan_unicasts;
  List.iter
    (fun (dc, r) ->
      Format.printf "DC %d re-multicast: %d link transmissions, %d receivers@."
        dc r.Fabric.transmissions
        (List.length r.Fabric.delivered))
    report.Multidc.remote;
  assert (Multidc.deliveries_correct m ~group:77 ~sender_dc:0 ~sender:0 report);
  Format.printf "@.every member received the message exactly once.@."
