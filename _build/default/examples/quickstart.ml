(* Quickstart: create a multicast group on the paper's running-example
   topology (Figure 3a), encode it, look at the header, and send a packet
   through the simulated data plane.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Figure 3a: 4 pods, 2 leaves and 2 spines per pod, 8 hosts per leaf. *)
  let topo = Topology.running_example () in
  Format.printf "topology: %a@.@." Topology.pp topo;

  (* The Figure 3a group: Ha, Hb under leaf L0; Hk under L5; Hm, Hn under
     L6; Hp under L7. Hosts are numbered leaf * hosts_per_leaf + port. *)
  let h = topo.Topology.hosts_per_leaf in
  let ha = 0 and hb = 1 in
  let hk = (5 * h) + 2 in
  let hm = (6 * h) + 4 and hn = (6 * h) + 5 in
  let hp = (7 * h) + 7 in
  let members = [ ha; hb; hk; hm; hn; hp ] in

  (* The controller side: build the multicast tree and run Algorithm 1 with
     the paper's example parameters (R = 2, at most 2 switches per rule). *)
  let tree = Tree.of_members topo members in
  Format.printf "multicast tree: leaves %a, pods %a@."
    Fmt.(Dump.list int) (Tree.leaves tree)
    Fmt.(Dump.list int) (Tree.pods tree);
  let params =
    Params.create ~r:2 ~kmax:2 ~hmax_leaf:4 ~hmax_spine:2 ~header_budget:None ()
  in
  let srules = Srule_state.create topo ~fmax:params.Params.fmax in
  let encoding = Encoding.encode params srules tree in

  (* The header host Ha's hypervisor pushes when Ha sends. *)
  let header = Encoding.header_for_sender encoding ~sender:ha in
  Format.printf "@.header for sender Ha:@.%a@.@." (Prule.pp topo) header;

  (* Wire format round-trip. *)
  let wire = Header_codec.encode topo header in
  assert (Header_codec.decode topo wire = header);
  Format.printf "wire size: %d bytes (round-trips losslessly)@.@."
    (Bytes.length wire);

  (* The data-plane side: install s-rules (none needed here) and inject a
     packet. Every member except the sender receives exactly one copy. *)
  let fabric = Fabric.create topo in
  Fabric.install_encoding fabric ~group:42 encoding;
  let report = Fabric.inject fabric ~sender:ha ~group:42 ~header ~payload:100 in
  Format.printf "delivered to hosts: %a@."
    Fmt.(Dump.list (Dump.pair int int))
    report.Fabric.delivered;
  Format.printf "link transmissions: %d (ideal multicast: %d)@."
    report.Fabric.transmissions
    (Tree.ideal_link_transmissions tree ~sender:ha);
  assert (Fabric.deliveries_correct report ~tree ~sender:ha);
  Format.printf "all group members received exactly one copy.@."
