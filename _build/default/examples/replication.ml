(* Replicated state machines over Elmo — one of the paper's motivating
   workloads (§1: "replicated state machines", "database replication").

   A leader multicasts a command log to replicas over the simulated fabric
   with the PGM-style reliability layer on top. Midway through, the spine
   the leader's flow rides fails: packets are lost, replicas diverge, the
   controller repairs the path, the NAK/retransmit loop refills the gaps,
   and every replica converges to the same applied log.

   Run with: dune exec examples/replication.exe *)

let () =
  let topo = Topology.running_example () in
  let h = topo.Topology.hosts_per_leaf in
  let leader = 0 in
  let replicas = [ 1; (2 * h) + 4; (5 * h) + 2; (6 * h) + 4; (7 * h) + 7 ] in
  let tree = Tree.of_members topo (leader :: replicas) in
  let srules = Srule_state.create topo ~fmax:100 in
  let enc = Encoding.encode Params.default srules tree in
  let fabric = Fabric.create topo in
  Fabric.install_encoding fabric ~group:11 enc;
  let session = Reliable.create fabric ~group:11 ~sender:leader enc in

  let commands = [| "SET x 1"; "SET y 2"; "INCR x"; "DEL y"; "SET z 9"; "INCR z" |] in
  Format.printf "replicating %d commands from leader (host %d) to %d replicas@.@."
    (Array.length commands) leader (List.length replicas);

  (* Fail the leader's upstream spine after the second command. *)
  let hash = Ecmp.flow_hash ~group:11 ~sender:leader in
  let victim = Ecmp.spine_choice topo ~hash in
  Array.iteri
    (fun i _cmd ->
      if i = 2 then begin
        Format.printf "!! spine %d fails after commands 0-1@." victim;
        Fabric.fail_spine fabric victim
      end;
      if i = 5 then begin
        Format.printf "!! spine %d recovers before the last command@." victim;
        Fabric.recover_spine fabric victim
      end;
      ignore (Reliable.broadcast session ~payload:64))
    commands;

  let applied host = Reliable.delivered_in_order session host in
  Format.printf "@.before repair:@.";
  List.iter
    (fun r -> Format.printf "  replica %3d applied %d/%d commands@." r (applied r)
        (Array.length commands))
    replicas;
  Format.printf "replicas diverge while the path is down: %b@."
    (List.exists (fun r -> applied r < Array.length commands) replicas);

  let converged = Reliable.repair_until_complete session in
  assert converged;
  Format.printf "@.after NAK/retransmit repair:@.";
  List.iter
    (fun r -> Format.printf "  replica %3d applied %d/%d commands@." r (applied r)
        (Array.length commands))
    replicas;
  let st = Reliable.stats session in
  Format.printf
    "@.%d data multicasts, %d repairs, %d NAK rounds served — identical logs \
     on every replica.@."
    st.Reliable.data_sent st.Reliable.repairs_sent st.Reliable.naks
