examples/replication.mli:
