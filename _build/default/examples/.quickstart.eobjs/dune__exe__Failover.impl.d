examples/failover.ml: Controller Encoding Fabric Format List Option Params Topology Tree
