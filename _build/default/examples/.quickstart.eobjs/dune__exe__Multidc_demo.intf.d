examples/multidc_demo.mli:
