examples/telemetry_demo.ml: Array Fabric Format List Rng Telemetry Topology
