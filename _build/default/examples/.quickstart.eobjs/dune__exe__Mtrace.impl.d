examples/mtrace.ml: Encoding Fabric Format List Params Srule_state Topology Tree
