examples/pubsub_demo.ml: Array Fabric Format List Pubsub Rng Topology
