examples/mtrace.mli:
