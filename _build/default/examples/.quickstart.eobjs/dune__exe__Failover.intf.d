examples/failover.mli:
