examples/quickstart.mli:
