examples/multidc_demo.ml: Fabric Format List Multidc Params Topology
