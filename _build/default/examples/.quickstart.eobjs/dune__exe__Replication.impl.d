examples/replication.ml: Array Ecmp Encoding Fabric Format List Params Reliable Srule_state Topology Tree
