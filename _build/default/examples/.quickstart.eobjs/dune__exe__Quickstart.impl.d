examples/quickstart.ml: Bytes Dump Encoding Fabric Fmt Format Header_codec Params Prule Srule_state Topology Tree
