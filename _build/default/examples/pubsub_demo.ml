(* Publish-subscribe over Elmo vs unicast (the paper's §5.2.1 workload).

   A publisher on the Facebook-fabric topology pushes messages to a growing
   set of subscribers; we report the per-subscriber request rate and the
   publisher's CPU, showing unicast collapsing with fan-out while Elmo stays
   flat.

   Run with: dune exec examples/pubsub_demo.exe *)

let () =
  let topo = Topology.facebook_fabric () in
  let fabric = Fabric.create topo in
  let rng = Rng.create 1 in
  let publisher = 0 in
  (* Subscribers scattered uniformly across the datacenter. *)
  let all_hosts = Array.init (Topology.num_hosts topo - 1) (fun i -> i + 1) in
  Rng.shuffle rng all_hosts;
  let subscribers = Array.to_list (Array.sub all_hosts 0 256) in
  Format.printf "pub-sub on %a@.publisher: host %d@.@." Topology.pp topo
    publisher;
  Format.printf "%6s | %22s | %22s@." "subs" "unicast rps / cpu%"
    "Elmo rps / cpu%";
  List.iter
    (fun n ->
      let subs = List.filteri (fun i _ -> i < n) subscribers in
      let u = Pubsub.run fabric ~publisher ~subscribers:subs Pubsub.Unicast in
      let e = Pubsub.run fabric ~publisher ~subscribers:subs Pubsub.Elmo in
      assert e.Pubsub.all_delivered;
      Format.printf "%6d | %12.0f / %6.1f%% | %12.0f / %6.1f%%@." n
        u.Pubsub.throughput_rps u.Pubsub.cpu_percent e.Pubsub.throughput_rps
        e.Pubsub.cpu_percent)
    [ 1; 4; 16; 64; 256 ];
  Format.printf
    "@.With Elmo the publisher emits one packet per message regardless of \
     fan-out;@.the fabric replicates in-network (verified against the \
     packet-level simulator).@."
