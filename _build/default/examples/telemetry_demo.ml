(* sFlow-style host telemetry over Elmo vs unicast (the paper's §5.2.2
   workload): an agent exports a metrics datagram to N collectors; agent
   egress bandwidth is flat under Elmo and linear under unicast.

   Run with: dune exec examples/telemetry_demo.exe *)

let () =
  let topo = Topology.facebook_fabric () in
  let fabric = Fabric.create topo in
  let rng = Rng.create 2 in
  let agent = 100 in
  let all_hosts =
    Array.init (Topology.num_hosts topo) (fun i -> i)
    |> Array.to_list
    |> List.filter (fun x -> x <> agent)
    |> Array.of_list
  in
  Rng.shuffle rng all_hosts;
  let collectors = Array.to_list (Array.sub all_hosts 0 64) in
  Format.printf "sFlow agent on host %d, %a@.@." agent Topology.pp topo;
  Format.printf "%10s | %14s | %14s | %s@." "collectors" "unicast Kbps"
    "Elmo Kbps" "datagrams per export (unicast vs Elmo)";
  List.iter
    (fun n ->
      let cs = List.filteri (fun i _ -> i < n) collectors in
      let u = Telemetry.run fabric ~agent ~collectors:cs Telemetry.Unicast in
      let e = Telemetry.run fabric ~agent ~collectors:cs Telemetry.Elmo in
      assert e.Telemetry.all_delivered;
      Format.printf "%10d | %14.1f | %14.1f | %d vs %d@." n
        u.Telemetry.egress_kbps e.Telemetry.egress_kbps
        u.Telemetry.datagrams_per_export e.Telemetry.datagrams_per_export)
    [ 1; 4; 16; 64 ];
  Format.printf
    "@.(paper: 370.4 Kbps at 64 unicast collectors vs a constant 5.8 Kbps \
     with Elmo)@."
