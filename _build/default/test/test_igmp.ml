let ip = 0xEF010101l

let test_codec_roundtrip () =
  List.iter
    (fun msg_type ->
      let m = { Igmp.msg_type; max_resp_time = 100; group = ip } in
      match Igmp.decode (Igmp.encode m) with
      | Ok m' -> Alcotest.(check bool) "roundtrip" true (m = m')
      | Error e -> Alcotest.fail e)
    Igmp.[ Membership_query; Membership_report_v1; Membership_report_v2; Leave_group ]

let test_codec_rejects () =
  Alcotest.(check bool) "short" true (Igmp.decode (Bytes.make 7 'x') = Error "IGMPv2 message must be 8 bytes");
  let b = Igmp.encode { Igmp.msg_type = Igmp.Leave_group; max_resp_time = 0; group = ip } in
  let corrupted = Bytes.copy b in
  Bytes.set corrupted 5 '\xFF';
  Alcotest.(check bool) "checksum" true (Igmp.decode corrupted = Error "bad IGMP checksum");
  let unknown = Bytes.copy b in
  Bytes.set unknown 0 '\x99';
  (* fix the checksum so only the type is wrong *)
  Bytes.set unknown 2 '\000';
  Bytes.set unknown 3 '\000';
  let c = Igmp.checksum unknown in
  Bytes.set unknown 2 (Char.chr (c lsr 8));
  Bytes.set unknown 3 (Char.chr (c land 0xFF));
  Alcotest.(check bool) "unknown type" true (Igmp.decode unknown = Error "unknown IGMP type")

let test_known_bytes () =
  (* Leave 239.1.1.1: 17 00 | csum | EF 01 01 01. Checksum over
     0x1700 + 0xEF01 + 0x0101 = 0x10702, folded 0x0703; complement 0xF8FC. *)
  let b = Igmp.encode { Igmp.msg_type = Igmp.Leave_group; max_resp_time = 0; group = ip } in
  Alcotest.(check string) "wire bytes" "\x17\x00\xf8\xfc\xef\x01\x01\x01"
    (Bytes.to_string b)

let world () =
  let topo = Topology.running_example () in
  let rng = Rng.create 5 in
  let placement =
    Vm_placement.place rng topo ~strategy:(Vm_placement.Pack_up_to 2)
      ~host_capacity:20 ~tenant_sizes:[| 12; 10 |]
  in
  let ctrl = Controller.create topo Params.default in
  let api = Tenant_api.create ctrl placement ~quota_per_tenant:8 in
  (Igmp.Snooper.create api, api, ctrl)

let report group =
  Igmp.encode { Igmp.msg_type = Igmp.Membership_report_v2; max_resp_time = 0; group }

let leave group =
  Igmp.encode { Igmp.msg_type = Igmp.Leave_group; max_resp_time = 0; group }

let query =
  Igmp.encode { Igmp.msg_type = Igmp.Membership_query; max_resp_time = 100; group = 0l }

let test_snooper_join_leave () =
  let snooper, api, ctrl = world () in
  ignore (Tenant_api.create_group api ~tenant:0 ~address:ip);
  (match Igmp.Snooper.handle snooper ~tenant:0 ~vm:0 ~role:Controller.Both (report ip) with
  | Igmp.Snooper.Joined _ -> ()
  | _ -> Alcotest.fail "expected Joined");
  (match Igmp.Snooper.handle snooper ~tenant:0 ~vm:1 ~role:Controller.Receiver (report ip) with
  | Igmp.Snooper.Joined _ -> ()
  | _ -> Alcotest.fail "expected Joined");
  let id = Option.get (Tenant_api.group_id api ~tenant:0 ~address:ip) in
  Alcotest.(check int) "controller membership" 2
    (List.length (Controller.members ctrl ~group:id));
  Alcotest.(check (list int32)) "snooper state" [ ip ]
    (Igmp.Snooper.membership snooper ~tenant:0 ~vm:0);
  (* Refresh reports are absorbed, not re-joined. *)
  (match Igmp.Snooper.handle snooper ~tenant:0 ~vm:0 ~role:Controller.Both (report ip) with
  | Igmp.Snooper.Ignored _ -> ()
  | _ -> Alcotest.fail "refresh must be ignored");
  (match Igmp.Snooper.handle snooper ~tenant:0 ~vm:0 ~role:Controller.Both (leave ip) with
  | Igmp.Snooper.Left _ -> ()
  | _ -> Alcotest.fail "expected Left");
  Alcotest.(check int) "one member left" 1
    (List.length (Controller.members ctrl ~group:id));
  Alcotest.(check (list int32)) "snooper cleared" []
    (Igmp.Snooper.membership snooper ~tenant:0 ~vm:0)

let test_snooper_absorbs_queries () =
  let snooper, _, _ = world () in
  match Igmp.Snooper.handle snooper ~tenant:0 ~vm:0 ~role:Controller.Both query with
  | Igmp.Snooper.Ignored reason ->
      Alcotest.(check string) "absorbed" "query answered from snooping state" reason
  | _ -> Alcotest.fail "queries must not reach the controller"

let test_snooper_unknown_group () =
  let snooper, _, _ = world () in
  match Igmp.Snooper.handle snooper ~tenant:0 ~vm:0 ~role:Controller.Both (report ip) with
  | Igmp.Snooper.Ignored reason ->
      Alcotest.(check string) "group must pre-exist" "no such group" reason
  | _ -> Alcotest.fail "expected Ignored"

let test_snooper_leave_nonmember () =
  let snooper, api, _ = world () in
  ignore (Tenant_api.create_group api ~tenant:0 ~address:ip);
  match Igmp.Snooper.handle snooper ~tenant:0 ~vm:0 ~role:Controller.Both (leave ip) with
  | Igmp.Snooper.Ignored "not a member" -> ()
  | _ -> Alcotest.fail "expected Ignored"

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"igmp codec roundtrips" ~count:300
    QCheck.(pair (int_bound 255) (int_bound 0xFFFFFF))
    (fun (resp, low) ->
      let m =
        {
          Igmp.msg_type = Igmp.Membership_report_v2;
          max_resp_time = resp;
          group = Int32.logor 0xE0000000l (Int32.of_int low);
        }
      in
      Igmp.decode (Igmp.encode m) = Ok m)

let tests =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec rejects" `Quick test_codec_rejects;
    Alcotest.test_case "known wire bytes" `Quick test_known_bytes;
    Alcotest.test_case "snooper join/leave" `Quick test_snooper_join_leave;
    Alcotest.test_case "snooper absorbs queries" `Quick test_snooper_absorbs_queries;
    Alcotest.test_case "snooper unknown group" `Quick test_snooper_unknown_group;
    Alcotest.test_case "snooper leave non-member" `Quick test_snooper_leave_nonmember;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
  ]

let test_soft_state_expiry () =
  let snooper, api, ctrl = world () in
  ignore (Tenant_api.create_group api ~tenant:0 ~address:ip);
  ignore (Igmp.Snooper.handle ~now:0.0 snooper ~tenant:0 ~vm:0 ~role:Controller.Both (report ip));
  ignore (Igmp.Snooper.handle ~now:0.0 snooper ~tenant:0 ~vm:1 ~role:Controller.Both (report ip));
  (* VM 0 refreshes at t=100, VM 1 goes silent. *)
  ignore (Igmp.Snooper.handle ~now:100.0 snooper ~tenant:0 ~vm:0 ~role:Controller.Both (report ip));
  let expired = Igmp.Snooper.expire snooper ~now:160.0 ~ttl:125.0 in
  Alcotest.(check (list (triple int int int32))) "only the silent VM expires"
    [ (0, 1, ip) ] expired;
  let id = Option.get (Tenant_api.group_id api ~tenant:0 ~address:ip) in
  Alcotest.(check int) "controller membership shrank" 1
    (List.length (Controller.members ctrl ~group:id));
  Alcotest.(check (list int32)) "refreshed VM keeps its membership" [ ip ]
    (Igmp.Snooper.membership snooper ~tenant:0 ~vm:0);
  Alcotest.(check (list (triple int int int32))) "idempotent" []
    (Igmp.Snooper.expire snooper ~now:160.0 ~ttl:125.0)

let tests =
  tests @ [ Alcotest.test_case "soft-state expiry" `Quick test_soft_state_expiry ]
