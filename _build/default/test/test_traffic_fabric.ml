(* Cross-validation of the analytic traffic model (Traffic) against the
   operational packet-level data plane (Fabric): for arbitrary groups,
   parameters and senders, both must agree on transmissions and header
   bytes, and delivery must be exactly-once to every member. *)

let topo = Topology.running_example ()
let fabric_topo = Topology.facebook_fabric ()
let two_tier = Topology.leaf_spine ~leaves:8 ~spines:4 ~hosts_per_leaf:8

let setup t ?(params = Params.default) ?(fmax = params.Params.fmax) members =
  let tree = Tree.of_members t members in
  let srules = Srule_state.create t ~fmax in
  let enc = Encoding.encode params srules tree in
  let fabric = Fabric.create t in
  Fabric.install_encoding fabric ~group:1 enc;
  (tree, enc, fabric)

let run_both t ?params ?fmax members sender =
  let params = Option.value ~default:Params.default params in
  let tree, enc, fabric = setup t ~params ?fmax members in
  let header = Encoding.header_for_sender enc ~sender in
  let report = Fabric.inject fabric ~sender ~group:1 ~header ~payload:100 in
  let analytic = Traffic.measure enc ~sender in
  (tree, enc, report, analytic)

let check_agreement name (tree, _enc, report, analytic) sender =
  Alcotest.(check int) (name ^ ": transmissions agree")
    report.Fabric.transmissions analytic.Traffic.transmissions;
  Alcotest.(check int) (name ^ ": header bytes agree")
    report.Fabric.header_bytes analytic.Traffic.header_bytes;
  Alcotest.(check bool) (name ^ ": delivery correct") true
    (Fabric.deliveries_correct report ~tree ~sender);
  let delivered_ops =
    List.fold_left (fun acc (_, n) -> acc + n) 0 report.Fabric.delivered
  in
  Alcotest.(check int) (name ^ ": delivered+spurious consistent")
    delivered_ops
    (analytic.Traffic.delivered_hosts + analytic.Traffic.spurious_hosts);
  Alcotest.(check int) (name ^ ": members reached")
    (Tree.member_count tree - if Tree.mem_host tree sender then 1 else 0)
    analytic.Traffic.delivered_hosts

let h = topo.Topology.hosts_per_leaf
let fig3_members = [ 0; 1; (5 * h) + 2; (6 * h) + 4; (6 * h) + 5; (7 * h) + 7 ]

let test_fig3_all_senders () =
  List.iter
    (fun sender ->
      let r = run_both topo fig3_members sender in
      check_agreement (Printf.sprintf "fig3 sender %d" sender) r sender)
    fig3_members

let test_single_leaf () =
  let r = run_both topo [ 0; 1; 2 ] 0 in
  let _, _, report, analytic = r in
  check_agreement "single leaf" r 0;
  Alcotest.(check int) "ideal achieved" analytic.Traffic.ideal_transmissions
    report.Fabric.transmissions

let test_with_srules () =
  (* Force s-rules: hmax 1 per layer with room in the tables. *)
  let params = Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None () in
  List.iter
    (fun sender ->
      let r = run_both topo ~params ~fmax:100 fig3_members sender in
      let _, enc, _, analytic = r in
      Alcotest.(check bool) "uses s-rules" true (Encoding.srule_entries enc > 0);
      check_agreement "srules" r sender;
      (* s-rules are exact, so traffic equals ideal. *)
      Alcotest.(check int) "no spurious" 0 analytic.Traffic.spurious_hosts)
    fig3_members

let test_with_default_rules () =
  (* No s-rule space: leftovers fall to defaults, creating spurious traffic
     but still reaching every member. *)
  let params = Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None () in
  List.iter
    (fun sender ->
      let r = run_both topo ~params ~fmax:0 fig3_members sender in
      let _, enc, _, _ = r in
      Alcotest.(check bool) "uses default" true (Encoding.uses_default enc);
      check_agreement "defaults" r sender)
    fig3_members

let test_with_sharing () =
  let params = Params.create ~r:4 ~hmax_leaf:2 ~hmax_spine:2 ~header_budget:None () in
  List.iter
    (fun sender ->
      let r = run_both topo ~params fig3_members sender in
      check_agreement "sharing" r sender)
    fig3_members

let test_two_tier () =
  let members = [ 0; 9; 17; 25; 33 ] in
  List.iter
    (fun sender ->
      let r = run_both two_tier members sender in
      check_agreement "two-tier" r sender)
    members

let test_failed_spine_loses_packets () =
  let tree, enc, fabric = setup topo fig3_members in
  let header = Encoding.header_for_sender enc ~sender:0 in
  (* Fail the spine this flow hashes onto. *)
  let hash = Ecmp.flow_hash ~group:1 ~sender:0 in
  let plane = Ecmp.spine_choice topo ~hash in
  Fabric.fail_spine fabric plane;
  (* pod 0 spines are 0..spp-1 *)
  let report = Fabric.inject fabric ~sender:0 ~group:1 ~header ~payload:100 in
  Alcotest.(check int) "one copy lost at the spine" 1 report.Fabric.lost;
  Alcotest.(check bool) "receivers missing" false
    (Fabric.deliveries_correct report ~tree ~sender:0);
  Fabric.recover_spine fabric plane;
  let report = Fabric.inject fabric ~sender:0 ~group:1 ~header ~payload:100 in
  Alcotest.(check bool) "recovered" true (Fabric.deliveries_correct report ~tree ~sender:0)

let test_explicit_upstream_ports () =
  (* Multipath off, explicit spine/core ports: delivery still works. *)
  let tree, enc, fabric = setup topo fig3_members in
  let base = Encoding.header_for_sender enc ~sender:0 in
  let up_leaf = Bitmap.create (Topology.leaf_upstream_width topo) in
  Bitmap.set up_leaf 1;
  let up_spine = Bitmap.create (Topology.spine_upstream_width topo) in
  Bitmap.set up_spine 0;
  let header =
    {
      base with
      Prule.u_leaf = { base.Prule.u_leaf with Prule.multipath = false; up = up_leaf };
      u_spine =
        Option.map
          (fun u -> { u with Prule.multipath = false; up = up_spine })
          base.Prule.u_spine;
    }
  in
  let report = Fabric.inject fabric ~sender:0 ~group:1 ~header ~payload:100 in
  Alcotest.(check bool) "explicit path delivers" true
    (Fabric.deliveries_correct report ~tree ~sender:0)

let test_no_sender_rule_no_delivery () =
  (* A leaf with neither p-rule, s-rule nor default drops: inject a header
     whose d_leaf section is empty. *)
  let fabric = Fabric.create topo in
  let header =
    {
      Prule.u_leaf =
        {
          Prule.down = Bitmap.create (Topology.leaf_downstream_width topo);
          up = Bitmap.create (Topology.leaf_upstream_width topo);
          multipath = true;
        };
      u_spine =
        Some
          {
            Prule.down = Bitmap.create (Topology.spine_downstream_width topo);
            up = Bitmap.create (Topology.spine_upstream_width topo);
            multipath = true;
          };
      core = Some (Bitmap.of_list (Topology.core_downstream_width topo) [ 2 ]);
      d_spine = [];
      d_spine_default = None;
      d_leaf = [];
      d_leaf_default = None;
    }
  in
  let report = Fabric.inject fabric ~sender:0 ~group:9 ~header ~payload:100 in
  Alcotest.(check (list (pair int int))) "nothing delivered" [] report.Fabric.delivered

let test_group_table_isolation () =
  (* s-rules for one group must not leak into another. *)
  let _, enc, fabric = setup topo ~params:(Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None ()) ~fmax:100 fig3_members in
  ignore enc;
  Alcotest.(check bool) "tables populated" true (Fabric.leaf_table_size fabric 5 + Fabric.leaf_table_size fabric 6 + Fabric.leaf_table_size fabric 7 > 0);
  Fabric.remove_encoding fabric ~group:1 enc;
  List.iter
    (fun l ->
      Alcotest.(check int) "cleared" 0 (Fabric.leaf_table_size fabric l))
    [ 0; 5; 6; 7 ]

(* The load-bearing property: analytic and operational models agree on
   random workloads across parameter space, on the full fabric. *)
let arb_scenario =
  QCheck.make
    ~print:(fun (members, r, hmax_leaf, hmax_spine, fmax, sender_idx) ->
      Printf.sprintf "members=[%s] r=%d hl=%d hs=%d fmax=%d sender=%d"
        (String.concat "," (List.map string_of_int members))
        r hmax_leaf hmax_spine fmax sender_idx)
    QCheck.Gen.(
      list_size (int_range 1 50) (int_range 0 (Topology.num_hosts fabric_topo - 1))
      >>= fun members ->
      int_range 0 12 >>= fun r ->
      int_range 1 8 >>= fun hmax_leaf ->
      int_range 1 3 >>= fun hmax_spine ->
      oneofl [ 0; 1; 100 ] >>= fun fmax ->
      int_range 0 (List.length members - 1) >>= fun sender_idx ->
      return (members, r, hmax_leaf, hmax_spine, fmax, sender_idx))

let prop_analytic_equals_operational =
  QCheck.Test.make ~name:"analytic model == packet-level fabric" ~count:150
    arb_scenario (fun (members, r, hmax_leaf, hmax_spine, fmax, sender_idx) ->
      let sender = List.nth members sender_idx in
      let params = Params.create ~r ~hmax_leaf ~hmax_spine ~header_budget:None () in
      let tree, enc, fabric = setup fabric_topo ~params ~fmax members in
      let header = Encoding.header_for_sender enc ~sender in
      let report = Fabric.inject fabric ~sender ~group:1 ~header ~payload:100 in
      let analytic = Traffic.measure enc ~sender in
      report.Fabric.transmissions = analytic.Traffic.transmissions
      && report.Fabric.header_bytes = analytic.Traffic.header_bytes
      && Fabric.deliveries_correct report ~tree ~sender
      && analytic.Traffic.delivered_hosts
         = Tree.member_count tree - (if Tree.mem_host tree sender then 1 else 0))

let prop_overhead_nonnegative =
  QCheck.Test.make ~name:"actual transmissions >= ideal" ~count:150 arb_scenario
    (fun (members, r, hmax_leaf, hmax_spine, fmax, sender_idx) ->
      let sender = List.nth members sender_idx in
      let params = Params.create ~r ~hmax_leaf ~hmax_spine ~header_budget:None () in
      let _, enc, _ = setup fabric_topo ~params ~fmax members in
      let c = Traffic.measure enc ~sender in
      c.Traffic.transmissions >= c.Traffic.ideal_transmissions
      && Traffic.overhead_ratio c ~payload:1500 >= 0.0)

let tests =
  [
    Alcotest.test_case "fig3: all senders" `Quick test_fig3_all_senders;
    Alcotest.test_case "single leaf = ideal" `Quick test_single_leaf;
    Alcotest.test_case "with s-rules (exact)" `Quick test_with_srules;
    Alcotest.test_case "with default rules" `Quick test_with_default_rules;
    Alcotest.test_case "with sharing" `Quick test_with_sharing;
    Alcotest.test_case "two-tier topology" `Quick test_two_tier;
    Alcotest.test_case "failed spine loses packets" `Quick test_failed_spine_loses_packets;
    Alcotest.test_case "explicit upstream ports" `Quick test_explicit_upstream_ports;
    Alcotest.test_case "no rules => drop" `Quick test_no_sender_rule_no_delivery;
    Alcotest.test_case "group table isolation" `Quick test_group_table_isolation;
    QCheck_alcotest.to_alcotest prop_analytic_equals_operational;
    QCheck_alcotest.to_alcotest prop_overhead_nonnegative;
  ]

let test_overhead_ratio_accounting () =
  (* Hand-built counts: 10 transmissions (ideal 10), 200 header bytes. *)
  let c =
    {
      Traffic.transmissions = 10;
      ideal_transmissions = 10;
      header_bytes = 200;
      delivered_hosts = 5;
      spurious_hosts = 0;
    }
  in
  (* No extra transmissions: overhead is purely header bytes over the
     encapsulated packet volume. *)
  Alcotest.(check (float 1e-9)) "header-only overhead"
    (200.0 /. float_of_int (10 * (64 + Traffic.vxlan_encap_bytes)))
    (Traffic.overhead_ratio c ~payload:64);
  Alcotest.(check (float 1e-9)) "encap can be disabled"
    (200.0 /. 640.0)
    (Traffic.overhead_ratio ~encap:0 c ~payload:64);
  (* Extra transmissions add payload-proportional overhead. *)
  let c2 = { c with Traffic.transmissions = 12; header_bytes = 0 } in
  Alcotest.(check (float 1e-9)) "transmission overhead" 0.2
    (Traffic.overhead_ratio c2 ~payload:1500);
  Alcotest.check_raises "bad payload"
    (Invalid_argument "Traffic.overhead_ratio: payload") (fun () ->
      ignore (Traffic.overhead_ratio c ~payload:0))

let tests =
  tests
  @ [ Alcotest.test_case "overhead ratio accounting" `Quick
        test_overhead_ratio_accounting ]

let test_trace_matches_report () =
  let tree, _, report, _ = run_both topo fig3_members 0 in
  Alcotest.(check int) "one hop per transmission" report.Fabric.transmissions
    (List.length report.Fabric.trace);
  (match report.Fabric.trace with
  | first :: _ ->
      Alcotest.(check bool) "starts at the sender's hypervisor" true
        (first.Fabric.hop_from = Fabric.Host_node 0
        && first.Fabric.hop_to = Fabric.Leaf_node 0)
  | [] -> Alcotest.fail "empty trace");
  (* Host-bound hops carry no Elmo header (stripped at the leaf egress) and
     together are exactly the delivered set. *)
  let host_hops =
    List.filter_map
      (fun h ->
        match h.Fabric.hop_to with
        | Fabric.Host_node host ->
            Alcotest.(check int) "no header toward hosts" 0 h.Fabric.hop_header_bytes;
            Some host
        | Fabric.Leaf_node _ | Fabric.Spine_node _ | Fabric.Core_node _ -> None)
      report.Fabric.trace
    |> List.sort compare
  in
  Alcotest.(check (list int)) "host hops = deliveries"
    (List.map fst report.Fabric.delivered)
    host_hops;
  Alcotest.(check bool) "header shrinks along any root-to-host path" true
    (Fabric.deliveries_correct report ~tree ~sender:0)

let test_trace_header_monotone () =
  (* Along the trace, a switch never emits a bigger header than it received
     on the upstream path (popping only shrinks). The first hop carries the
     largest header. *)
  let _, _, report, _ = run_both topo fig3_members 0 in
  match report.Fabric.trace with
  | first :: rest ->
      List.iter
        (fun h ->
          Alcotest.(check bool) "no hop exceeds the initial header" true
            (h.Fabric.hop_header_bytes <= first.Fabric.hop_header_bytes))
        rest
  | [] -> Alcotest.fail "empty trace"

let tests =
  tests
  @ [
      Alcotest.test_case "trace matches report" `Quick test_trace_matches_report;
      Alcotest.test_case "trace header monotone" `Quick test_trace_header_monotone;
    ]
