let topo = Topology.facebook_fabric ()
let fabric = Fabric.create topo

let subs n =
  (* n distinct hosts spread across leaves, never host 0 (the publisher) *)
  List.init n (fun i -> ((i + 1) * 97) mod (Topology.num_hosts topo - 1) + 1)
  |> List.sort_uniq compare

let test_pubsub_unicast_scaling () =
  let m1 = Pubsub.run fabric ~publisher:0 ~subscribers:(subs 1) Pubsub.Unicast in
  let m64 = Pubsub.run fabric ~publisher:0 ~subscribers:(subs 64) Pubsub.Unicast in
  Alcotest.(check int) "1 packet per subscriber" (List.length (subs 64))
    m64.Pubsub.packets_per_message;
  Alcotest.(check bool) "throughput collapses with fan-out" true
    (m64.Pubsub.throughput_rps < m1.Pubsub.throughput_rps /. 32.0);
  Alcotest.(check bool) "cpu grows" true (m64.Pubsub.cpu_percent > m1.Pubsub.cpu_percent);
  Alcotest.(check (float 1e-6)) "single-subscriber calibration"
    Pubsub.single_subscriber_rps m1.Pubsub.throughput_rps

let test_pubsub_elmo_flat () =
  let m1 = Pubsub.run fabric ~publisher:0 ~subscribers:(subs 1) Pubsub.Elmo in
  let m256 = Pubsub.run fabric ~publisher:0 ~subscribers:(subs 256) Pubsub.Elmo in
  Alcotest.(check int) "always one packet" 1 m256.Pubsub.packets_per_message;
  Alcotest.(check (float 1e-6)) "rps flat" m1.Pubsub.throughput_rps
    m256.Pubsub.throughput_rps;
  Alcotest.(check (float 1e-6)) "cpu flat" m1.Pubsub.cpu_percent m256.Pubsub.cpu_percent;
  Alcotest.(check bool) "every subscriber got the message" true
    m256.Pubsub.all_delivered;
  Alcotest.(check bool) "fabric replicates" true (m256.Pubsub.fabric_transmissions > 256)

let test_pubsub_cpu_saturates () =
  let m = Pubsub.run fabric ~publisher:0 ~subscribers:(subs 256) Pubsub.Unicast in
  Alcotest.(check (float 1e-6)) "saturated" 100.0 m.Pubsub.cpu_percent

let test_pubsub_validation () =
  Alcotest.check_raises "no subscribers"
    (Invalid_argument "Pubsub.run: no subscribers") (fun () ->
      ignore (Pubsub.run fabric ~publisher:0 ~subscribers:[] Pubsub.Elmo));
  Alcotest.check_raises "self-subscription"
    (Invalid_argument "Pubsub.run: publisher cannot subscribe to itself")
    (fun () -> ignore (Pubsub.run fabric ~publisher:0 ~subscribers:[ 0 ] Pubsub.Elmo));
  Alcotest.check_raises "duplicates" (Invalid_argument "Pubsub.run: duplicate subscriber")
    (fun () -> ignore (Pubsub.run fabric ~publisher:0 ~subscribers:[ 1; 1 ] Pubsub.Elmo))

let test_pubsub_sweep () =
  let ms = Pubsub.sweep fabric ~publisher:0 ~subscribers:(subs 64) Pubsub.Unicast [ 1; 4; 16 ] in
  Alcotest.(check (list int)) "sweep sizes" [ 1; 4; 16 ]
    (List.map (fun m -> m.Pubsub.subscribers) ms)

let test_telemetry_bandwidth () =
  let collectors = subs 64 in
  let u = Telemetry.run fabric ~agent:0 ~collectors Telemetry.Unicast in
  let e = Telemetry.run fabric ~agent:0 ~collectors Telemetry.Elmo in
  Alcotest.(check (float 1e-6)) "unicast linear"
    (float_of_int (List.length collectors) *. Telemetry.per_stream_kbps)
    u.Telemetry.egress_kbps;
  Alcotest.(check (float 1e-6)) "elmo constant" Telemetry.per_stream_kbps
    e.Telemetry.egress_kbps;
  Alcotest.(check bool) "delivered" true e.Telemetry.all_delivered;
  Alcotest.(check int) "one datagram" 1 e.Telemetry.datagrams_per_export

let test_hypervisor_flow_table () =
  let hv = Hypervisor.create fabric ~host:0 in
  Alcotest.(check int) "empty" 0 (Hypervisor.flow_rules hv);
  Alcotest.(check bool) "no rule -> drop" true
    (Hypervisor.encap hv ~group:1 ~payload:(Bytes.create 10) = None);
  let tree = Tree.of_members topo [ 5; 100; 5000 ] in
  let srules = Srule_state.create topo ~fmax:100 in
  let enc = Encoding.encode Params.default srules tree in
  let header = Encoding.header_for_sender enc ~sender:0 in
  Hypervisor.install_sender hv ~group:1 header;
  Hypervisor.install_receiver hv ~group:2 ~vms:3;
  Alcotest.(check int) "two rules" 2 (Hypervisor.flow_rules hv);
  Alcotest.(check (list int)) "sender groups" [ 1 ] (Hypervisor.sender_groups hv);
  Alcotest.(check int) "receiver fan-out" 3 (Hypervisor.deliver hv ~group:2);
  Alcotest.(check int) "unknown group discarded" 0 (Hypervisor.deliver hv ~group:9);
  (* Single-write encapsulation: header blob + payload. *)
  let payload = Bytes.make 10 'x' in
  (match Hypervisor.encap hv ~group:1 ~payload with
  | Some packet ->
      Alcotest.(check int) "packet size"
        (Prule.header_bytes topo header + 10)
        (Bytes.length packet);
      let hdr = Bytes.sub packet 0 (Prule.header_bytes topo header) in
      Alcotest.(check bool) "header decodes" true
        (Header_codec.decode topo hdr = header)
  | None -> Alcotest.fail "expected packet");
  (* Per-rule writes build an equivalent packet (same payload tail). *)
  (match Hypervisor.encap_per_rule hv ~group:1 ~payload with
  | Some packet ->
      let tail = Bytes.sub packet (Bytes.length packet - 10) 10 in
      Alcotest.(check bytes) "payload preserved" payload tail
  | None -> Alcotest.fail "expected packet");
  (* Send through the fabric. *)
  Fabric.install_encoding fabric ~group:1 enc;
  (match Hypervisor.send hv ~group:1 ~payload:64 with
  | Some report ->
      Alcotest.(check bool) "delivered" true
        (Fabric.deliveries_correct report ~tree ~sender:0)
  | None -> Alcotest.fail "expected report");
  Fabric.remove_encoding fabric ~group:1 enc;
  Hypervisor.remove_sender hv ~group:1;
  Hypervisor.remove_receiver hv ~group:2;
  Alcotest.(check int) "cleared" 0 (Hypervisor.flow_rules hv)

let tests =
  [
    Alcotest.test_case "pubsub: unicast scaling" `Quick test_pubsub_unicast_scaling;
    Alcotest.test_case "pubsub: Elmo flat" `Quick test_pubsub_elmo_flat;
    Alcotest.test_case "pubsub: CPU saturates" `Quick test_pubsub_cpu_saturates;
    Alcotest.test_case "pubsub: validation" `Quick test_pubsub_validation;
    Alcotest.test_case "pubsub: sweep" `Quick test_pubsub_sweep;
    Alcotest.test_case "telemetry bandwidth" `Quick test_telemetry_bandwidth;
    Alcotest.test_case "hypervisor flow table" `Quick test_hypervisor_flow_table;
  ]

let test_hypervisor_rate_limit () =
  let hv = Hypervisor.create fabric ~host:3 in
  (* No policy: everything admitted. *)
  Alcotest.(check bool) "no limit" true (Hypervisor.admit hv ~group:1 ~now:0.0);
  Hypervisor.set_rate_limit hv ~group:1 ~packets_per_second:10.0 ~burst:3;
  (* The burst passes, the fourth packet in the same instant is dropped. *)
  List.iter
    (fun i ->
      Alcotest.(check bool) (Printf.sprintf "burst %d" i) true
        (Hypervisor.admit hv ~group:1 ~now:1.0))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "burst exhausted" false (Hypervisor.admit hv ~group:1 ~now:1.0);
  Alcotest.(check int) "drop counted" 1 (Hypervisor.policy_drops hv);
  (* Tokens refill with time: 0.25 s at 10 pps = 2.5 tokens. *)
  Alcotest.(check bool) "refilled" true (Hypervisor.admit hv ~group:1 ~now:1.25);
  Alcotest.(check bool) "refilled twice" true (Hypervisor.admit hv ~group:1 ~now:1.25);
  Alcotest.(check bool) "but no more" false (Hypervisor.admit hv ~group:1 ~now:1.25);
  (* Other groups are unaffected; clearing removes the policy. *)
  Alcotest.(check bool) "other group free" true (Hypervisor.admit hv ~group:2 ~now:1.25);
  Hypervisor.clear_rate_limit hv ~group:1;
  Alcotest.(check bool) "cleared" true (Hypervisor.admit hv ~group:1 ~now:1.25);
  Alcotest.check_raises "bad rate" (Invalid_argument "Hypervisor.set_rate_limit")
    (fun () -> Hypervisor.set_rate_limit hv ~group:1 ~packets_per_second:0.0 ~burst:1)

let tests =
  tests
  @ [ Alcotest.test_case "hypervisor rate limit" `Quick test_hypervisor_rate_limit ]
