let bm w l = Bitmap.of_list w l

(* {1 Min_k_union} *)

let test_mku_picks_overlapping_pair () =
  (* Bitmaps: {0,1}, {0,1}, {5,6,7}. The best 2-union is the identical pair. *)
  let cands = [| (10, bm 8 [ 0; 1 ]); (11, bm 8 [ 0; 1 ]); (12, bm 8 [ 5; 6; 7 ]) |] in
  let indices, union = Min_k_union.choose ~k:2 cands in
  Alcotest.(check (list int)) "indices" [ 0; 1 ] (List.sort compare indices);
  Alcotest.(check int) "union size" 2 (Bitmap.popcount union)

let test_mku_k_equals_n () =
  let cands = [| (0, bm 4 [ 0 ]); (1, bm 4 [ 1 ]); (2, bm 4 [ 2 ]) |] in
  let indices, union = Min_k_union.choose ~k:3 cands in
  Alcotest.(check int) "all chosen" 3 (List.length indices);
  Alcotest.(check int) "union" 3 (Bitmap.popcount union)

let test_mku_seed_is_smallest () =
  let cands = [| (0, bm 8 [ 0; 1; 2 ]); (1, bm 8 [ 5 ]) |] in
  let indices, _ = Min_k_union.choose ~k:1 cands in
  Alcotest.(check (list int)) "smallest bitmap seeds" [ 1 ] indices

let test_mku_invalid () =
  let cands = [| (0, bm 4 [ 0 ]) |] in
  Alcotest.check_raises "k=0" (Invalid_argument "Min_k_union.choose: k must be positive")
    (fun () -> ignore (Min_k_union.choose ~k:0 cands));
  Alcotest.check_raises "k>n"
    (Invalid_argument "Min_k_union.choose: k exceeds candidate count") (fun () ->
      ignore (Min_k_union.choose ~k:2 cands));
  Alcotest.check_raises "empty" (Invalid_argument "Min_k_union.choose: no candidates")
    (fun () -> ignore (Min_k_union.choose ~k:1 [||]))

let prop_mku_union_correct =
  QCheck.Test.make ~name:"chosen union is the OR of chosen bitmaps" ~count:200
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(int_range 1 12)
           (list_of_size Gen.(int_range 0 6) (int_range 0 15))))
    (fun (k, bitsets) ->
      QCheck.assume (k <= List.length bitsets);
      let cands = Array.of_list (List.mapi (fun i l -> (i, bm 16 l)) bitsets) in
      let indices, union = Min_k_union.choose ~k cands in
      let expected = Bitmap.union_all 16 (List.map (fun i -> snd cands.(i)) indices) in
      List.length (List.sort_uniq compare indices) = k && Bitmap.equal union expected)

(* {1 Clustering (Algorithm 1)} *)

let no_srules _ = false
let all_srules _ = true

let run ?(r = 0) ?(semantics = Params.Sum) ?(hmax = 100) ?(kmax = 2)
    ?(has_srule_space = no_srules) layer =
  Clustering.run ~r ~semantics ~hmax ~kmax ~has_srule_space layer

let ids_of_result res =
  let prule_ids = List.concat_map (fun r -> r.Prule.switches) res.Clustering.prules in
  let srule_ids = List.map fst res.Clustering.srules in
  let default_ids = match res.Clustering.default with Some (ids, _) -> ids | None -> [] in
  List.sort compare (prule_ids @ srule_ids @ default_ids)

let layer_of l = List.map (fun (id, bits) -> (id, bm 8 bits)) l

let test_empty_layer () =
  let res = run [] in
  Alcotest.(check bool) "empty" true
    (res.Clustering.prules = [] && res.Clustering.srules = []
   && res.Clustering.default = None)

let test_fit_gives_exact_singletons () =
  let layer = layer_of [ (1, [ 0; 1 ]); (2, [ 3 ]); (3, [ 5; 6 ]) ] in
  let res = run ~r:12 ~hmax:3 layer in
  Alcotest.(check int) "three rules" 3 (List.length res.Clustering.prules);
  List.iter2
    (fun (id, exact) rule ->
      Alcotest.(check (list int)) "singleton" [ id ] rule.Prule.switches;
      Alcotest.(check bool) "exact bitmap" true (Bitmap.equal exact rule.Prule.bitmap))
    layer res.Clustering.prules;
  Alcotest.(check int) "no redundancy" 0 (Clustering.redundancy layer res)

let test_sharing_when_over_budget () =
  (* 3 switches, hmax 2: sharing must kick in. Identical bitmaps pair at R=0. *)
  let layer = layer_of [ (1, [ 0 ]); (2, [ 0 ]); (3, [ 7 ]) ] in
  let res = run ~r:0 ~hmax:2 layer in
  Alcotest.(check int) "two rules" 2 (List.length res.Clustering.prules);
  Alcotest.(check bool) "no spill" true
    (res.Clustering.srules = [] && res.Clustering.default = None);
  let shared = List.find (fun r -> List.length r.Prule.switches = 2) res.Clustering.prules in
  Alcotest.(check (list int)) "identical pair shares" [ 1; 2 ]
    (List.sort compare shared.Prule.switches)

let test_r_zero_rejects_lossy_sharing () =
  (* Distinct bitmaps, hmax 1, no s-rule space: at R=0 one switch must fall
     to the default rule. *)
  let layer = layer_of [ (1, [ 0 ]); (2, [ 1 ]) ] in
  let res = run ~r:0 ~hmax:1 layer in
  Alcotest.(check int) "one p-rule" 1 (List.length res.Clustering.prules);
  (match res.Clustering.default with
  | Some (ids, bm') ->
      Alcotest.(check int) "one defaulted switch" 1 (List.length ids);
      Alcotest.(check int) "default bitmap is its exact bitmap" 1 (Bitmap.popcount bm')
  | None -> Alcotest.fail "expected a default rule");
  ignore (ids_of_result res)

let test_r_allows_lossy_sharing () =
  let layer = layer_of [ (1, [ 0 ]); (2, [ 1 ]); (3, [ 6 ]) ] in
  let res = run ~r:2 ~hmax:2 ~kmax:2 layer in
  Alcotest.(check int) "two rules" 2 (List.length res.Clustering.prules);
  Alcotest.(check bool) "nothing spilled" true
    (res.Clustering.srules = [] && res.Clustering.default = None);
  (* Redundancy: the shared pair's bitmaps are distance 1 each from the OR. *)
  Alcotest.(check int) "redundancy 2" 2 (Clustering.redundancy layer res)

let test_sum_vs_per_bitmap_semantics () =
  (* Three disjoint singleton bitmaps sharing one rule (kmax 3): each input
     is distance 2 from the OR; the sum is 6. *)
  let layer = layer_of [ (1, [ 0 ]); (2, [ 1 ]); (3, [ 2 ]) ] in
  let res_sum_tight = run ~r:5 ~semantics:Params.Sum ~hmax:1 ~kmax:3 layer in
  Alcotest.(check bool) "sum semantics rejects at R=5" true
    (res_sum_tight.Clustering.default <> None || res_sum_tight.Clustering.srules <> []);
  let res_sum_ok = run ~r:6 ~semantics:Params.Sum ~hmax:1 ~kmax:3 layer in
  Alcotest.(check int) "sum semantics accepts at R=6" 1
    (List.length res_sum_ok.Clustering.prules);
  Alcotest.(check bool) "all in one rule" true
    (match res_sum_ok.Clustering.prules with
    | [ r ] -> List.length r.Prule.switches = 3
    | _ -> false);
  let res_pb = run ~r:2 ~semantics:Params.Per_bitmap ~hmax:1 ~kmax:3 layer in
  Alcotest.(check int) "per-bitmap accepts at R=2" 1
    (List.length res_pb.Clustering.prules)

let test_srule_spill () =
  let layer = layer_of [ (1, [ 0 ]); (2, [ 1 ]); (3, [ 2 ]) ] in
  let asked = ref [] in
  let res =
    run ~r:0 ~hmax:1
      ~has_srule_space:(fun id ->
        asked := id :: !asked;
        id = 2)
      layer
  in
  Alcotest.(check int) "one p-rule" 1 (List.length res.Clustering.prules);
  Alcotest.(check (list int)) "s-rule for switch 2" [ 2 ]
    (List.map fst res.Clustering.srules);
  (match res.Clustering.default with
  | Some (ids, _) -> Alcotest.(check int) "one defaulted" 1 (List.length ids)
  | None -> Alcotest.fail "expected default");
  (* Capacity was consulted in ascending switch order for the spilled ones. *)
  Alcotest.(check (list int)) "asked in order" [ 2; 3 ] (List.rev !asked)

let test_default_bitmap_is_or () =
  let layer = layer_of [ (1, [ 0 ]); (2, [ 1; 2 ]); (3, [ 2; 5 ]) ] in
  let res = run ~r:0 ~hmax:1 layer in
  match res.Clustering.default with
  | Some (ids, bm') ->
      Alcotest.(check int) "two defaulted" 2 (List.length ids);
      let expected =
        Bitmap.union_all 8
          (List.map (fun id -> List.assoc id layer) ids)
      in
      Alcotest.(check bool) "OR of defaulted" true (Bitmap.equal bm' expected)
  | None -> Alcotest.fail "expected default"

let test_assigned_bitmap_lookup () =
  let layer = layer_of [ (1, [ 0 ]); (2, [ 0 ]); (3, [ 1 ]); (4, [ 2 ]) ] in
  let res =
    run ~r:0 ~hmax:1 ~kmax:2 ~has_srule_space:(fun id -> id = 3) layer
  in
  (* Switches 1,2 share the p-rule; 3 has the s-rule; 4 is defaulted. *)
  (match Clustering.assigned_bitmap res 1 with
  | Some b -> Alcotest.(check int) "shared popcount" 1 (Bitmap.popcount b)
  | None -> Alcotest.fail "1 should be assigned");
  (match Clustering.assigned_bitmap res 3 with
  | Some b -> Alcotest.(check bool) "s-rule exact" true (Bitmap.get b 1)
  | None -> Alcotest.fail "3 should be assigned");
  (match Clustering.assigned_bitmap res 4 with
  | Some b -> Alcotest.(check bool) "default bitmap" true (Bitmap.get b 2)
  | None -> Alcotest.fail "4 should be assigned");
  Alcotest.(check bool) "unknown id" true (Clustering.assigned_bitmap res 9 = None)

let test_invalid_args () =
  Alcotest.check_raises "hmax" (Invalid_argument "Clustering.run: hmax must be positive")
    (fun () -> ignore (run ~hmax:0 []));
  Alcotest.check_raises "kmax" (Invalid_argument "Clustering.run: kmax must be positive")
    (fun () -> ignore (run ~kmax:0 []))

(* Properties over random layers. *)

let arb_layer =
  QCheck.make
    ~print:(fun (r, hmax, kmax, layer) ->
      Printf.sprintf "r=%d hmax=%d kmax=%d layer=%s" r hmax kmax
        (String.concat ";"
           (List.map
              (fun (id, bm') -> Printf.sprintf "%d:%s" id (Bitmap.to_string bm'))
              layer)))
    QCheck.Gen.(
      int_range 0 6 >>= fun r ->
      int_range 1 5 >>= fun hmax ->
      int_range 1 4 >>= fun kmax ->
      int_range 0 12 >>= fun n ->
      let bits = list_size (int_range 1 5) (int_range 0 15) in
      list_repeat n bits >>= fun bitsets ->
      return (r, hmax, kmax, List.mapi (fun i b -> (i, Bitmap.of_list 16 b)) bitsets))

let prop_partition =
  QCheck.Test.make ~name:"every switch lands in exactly one output" ~count:300
    arb_layer (fun (r, hmax, kmax, layer) ->
      let res = run ~r ~hmax ~kmax layer in
      ids_of_result res = List.sort compare (List.map fst layer))

let prop_hmax_respected =
  QCheck.Test.make ~name:"at most hmax p-rules" ~count:300 arb_layer
    (fun (r, hmax, kmax, layer) ->
      let res = run ~r ~hmax ~kmax layer in
      List.length res.Clustering.prules <= max hmax (List.length layer))

let prop_kmax_respected =
  QCheck.Test.make ~name:"at most kmax switches per rule" ~count:300 arb_layer
    (fun (r, hmax, kmax, layer) ->
      let res = run ~r ~hmax ~kmax layer in
      (* The fit-first fast path emits singletons, always within bounds. *)
      List.for_all
        (fun rule -> List.length rule.Prule.switches <= max kmax 1)
        res.Clustering.prules)

let prop_rule_bitmap_covers_members =
  QCheck.Test.make ~name:"rule bitmap = OR of its switches' exact bitmaps or wider"
    ~count:300 arb_layer (fun (r, hmax, kmax, layer) ->
      let res = run ~r ~hmax ~kmax layer in
      List.for_all
        (fun rule ->
          List.for_all
            (fun id -> Bitmap.subset (List.assoc id layer) rule.Prule.bitmap)
            rule.Prule.switches)
        res.Clustering.prules)

let prop_r_bounds_redundancy_per_rule =
  QCheck.Test.make ~name:"sum semantics: per-rule redundancy <= R" ~count:300
    arb_layer (fun (r, hmax, kmax, layer) ->
      let res = run ~r ~semantics:Params.Sum ~hmax ~kmax layer in
      List.for_all
        (fun rule ->
          let members = List.map (fun id -> List.assoc id layer) rule.Prule.switches in
          let s =
            List.fold_left
              (fun acc b -> acc + Bitmap.hamming b rule.Prule.bitmap)
              0 members
          in
          (* Singleton rules have 0; only rules formed by sharing obey R,
             which singletons trivially do. *)
          List.length members = 1 || s <= r)
        res.Clustering.prules)

let prop_srules_exact =
  QCheck.Test.make ~name:"s-rules carry exact bitmaps" ~count:300 arb_layer
    (fun (r, hmax, kmax, layer) ->
      let res = run ~r ~hmax ~kmax ~has_srule_space:all_srules layer in
      List.for_all
        (fun (id, b) -> Bitmap.equal b (List.assoc id layer))
        res.Clustering.srules
      && res.Clustering.default = None)

let tests =
  [
    Alcotest.test_case "min-k-union picks overlapping pair" `Quick
      test_mku_picks_overlapping_pair;
    Alcotest.test_case "min-k-union k=n" `Quick test_mku_k_equals_n;
    Alcotest.test_case "min-k-union seeds smallest" `Quick test_mku_seed_is_smallest;
    Alcotest.test_case "min-k-union invalid args" `Quick test_mku_invalid;
    QCheck_alcotest.to_alcotest prop_mku_union_correct;
    Alcotest.test_case "empty layer" `Quick test_empty_layer;
    Alcotest.test_case "fit-first exact singletons" `Quick test_fit_gives_exact_singletons;
    Alcotest.test_case "sharing when over budget" `Quick test_sharing_when_over_budget;
    Alcotest.test_case "R=0 rejects lossy sharing" `Quick test_r_zero_rejects_lossy_sharing;
    Alcotest.test_case "R>0 allows lossy sharing" `Quick test_r_allows_lossy_sharing;
    Alcotest.test_case "sum vs per-bitmap semantics" `Quick test_sum_vs_per_bitmap_semantics;
    Alcotest.test_case "s-rule spill" `Quick test_srule_spill;
    Alcotest.test_case "default bitmap is OR" `Quick test_default_bitmap_is_or;
    Alcotest.test_case "assigned_bitmap lookup" `Quick test_assigned_bitmap_lookup;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    QCheck_alcotest.to_alcotest prop_partition;
    QCheck_alcotest.to_alcotest prop_hmax_respected;
    QCheck_alcotest.to_alcotest prop_kmax_respected;
    QCheck_alcotest.to_alcotest prop_rule_bitmap_covers_members;
    QCheck_alcotest.to_alcotest prop_r_bounds_redundancy_per_rule;
    QCheck_alcotest.to_alcotest prop_srules_exact;
  ]

(* Approximation quality: on instances small enough to solve exactly, the
   greedy MIN-K-UNION never exceeds twice the optimal union size (a loose
   empirical bound; the paper cites approximate variants of this NP-hard
   problem). *)
let prop_mku_near_optimal =
  QCheck.Test.make ~name:"greedy min-k-union within 2x of optimal" ~count:200
    QCheck.(
      pair (int_range 2 3)
        (list_of_size Gen.(int_range 3 7)
           (list_of_size Gen.(int_range 1 4) (int_range 0 11))))
    (fun (k, bitsets) ->
      QCheck.assume (k <= List.length bitsets);
      let cands = Array.of_list (List.mapi (fun i l -> (i, bm 12 l)) bitsets) in
      let _, greedy_union = Min_k_union.choose ~k cands in
      let n = Array.length cands in
      (* exhaustive optimum over all k-subsets *)
      let best = ref max_int in
      let rec subsets start chosen count =
        if count = k then begin
          let u = Bitmap.union_all 12 (List.map (fun i -> snd cands.(i)) chosen) in
          best := min !best (Bitmap.popcount u)
        end
        else
          for i = start to n - 1 do
            subsets (i + 1) (i :: chosen) (count + 1)
          done
      in
      subsets 0 [] 0;
      Bitmap.popcount greedy_union <= 2 * !best)

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_mku_near_optimal ]
