let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf

let test_path_links () =
  Alcotest.(check int) "same host" 0 (Unicast_overlay.path_links topo ~src:0 ~dst:0);
  Alcotest.(check int) "same leaf" 2 (Unicast_overlay.path_links topo ~src:0 ~dst:7);
  Alcotest.(check int) "same pod" 4 (Unicast_overlay.path_links topo ~src:0 ~dst:8);
  Alcotest.(check int) "cross pod" 6
    (Unicast_overlay.path_links topo ~src:0 ~dst:((5 * h) + 2))

let fig3_hosts = [ 0; 1; (5 * h) + 2; (6 * h) + 4; (6 * h) + 5; (7 * h) + 7 ]
let fig3 = Tree.of_members topo fig3_hosts

let test_unicast_cost () =
  let c = Unicast_overlay.unicast fig3 ~sender:0 in
  (* Receivers: host1 (2 links), 4 cross-pod members (6 each) = 2+24 = 26. *)
  Alcotest.(check int) "transmissions" 26 c.Unicast_overlay.transmissions;
  Alcotest.(check int) "source packets" 5 c.Unicast_overlay.source_packets

let test_unicast_excludes_sender () =
  let tree = Tree.of_members topo [ 0; 1 ] in
  let c = Unicast_overlay.unicast tree ~sender:0 in
  Alcotest.(check int) "one receiver" 1 c.Unicast_overlay.source_packets

let test_overlay_cost () =
  let c = Unicast_overlay.overlay fig3 ~sender:0 in
  (* Source relays its own leaf (host1: 2), sends one copy per remote leaf
     (L5, L6, L7: 6 each = 18); relays fan out under their leaves:
     L6 has a second member (2). Total = 2 + 18 + 2 = 22. *)
  Alcotest.(check int) "transmissions" 22 c.Unicast_overlay.transmissions;
  (* Source emits: 1 local + 3 relay copies. *)
  Alcotest.(check int) "source packets" 4 c.Unicast_overlay.source_packets

let test_overlay_cheaper_than_unicast () =
  let u = Unicast_overlay.unicast fig3 ~sender:0 in
  let o = Unicast_overlay.overlay fig3 ~sender:0 in
  Alcotest.(check bool) "overlay <= unicast" true
    (o.Unicast_overlay.transmissions <= u.Unicast_overlay.transmissions);
  Alcotest.(check bool) "overlay source packets <= unicast" true
    (o.Unicast_overlay.source_packets <= u.Unicast_overlay.source_packets)

let test_overhead_vs_ideal () =
  let u = Unicast_overlay.unicast fig3 ~sender:0 in
  let ovh = Unicast_overlay.overhead_vs_ideal fig3 ~sender:0 u in
  (* ideal = 13 (test_tree); unicast 26 -> +100%. *)
  Alcotest.(check (float 1e-9)) "unicast overhead" 1.0 ovh

(* {1 Li et al. model} *)

let test_li_entries_and_aggregation () =
  let li = Li_et_al.create topo in
  let t1 = Tree.of_members topo [ 0; 1; (5 * h) + 2 ] in
  Li_et_al.add_group li ~group:1 t1;
  (* Same port sets at the same switches: a second group with identical
     membership aggregates into the same entries. *)
  Li_et_al.add_group li ~group:2 t1;
  let leaf = Li_et_al.leaf_entries li in
  Alcotest.(check int) "L0 one aggregated entry" 1 leaf.(0);
  Alcotest.(check int) "L5 one aggregated entry" 1 leaf.(5);
  (* A group with a different port set at L0 adds an entry. *)
  let t2 = Tree.of_members topo [ 2; (5 * h) + 2 ] in
  Li_et_al.add_group li ~group:3 t2;
  Alcotest.(check int) "L0 two entries" 2 (Li_et_al.leaf_entries li).(0);
  Alcotest.(check int) "flow entries track groups" 3 (Li_et_al.flow_entries li);
  Li_et_al.remove_group li ~group:2 t1;
  Alcotest.(check int) "refcounted removal keeps shared entry" 2
    (Li_et_al.leaf_entries li).(0);
  Li_et_al.remove_group li ~group:1 t1;
  Alcotest.(check int) "entry vanishes with last sharer" 1
    (Li_et_al.leaf_entries li).(0)

let test_li_pinning_deterministic () =
  let li = Li_et_al.create topo in
  Alcotest.(check int) "stable plane" (Li_et_al.plane_of_group li 7)
    (Li_et_al.plane_of_group li 7);
  Alcotest.(check bool) "plane in range" true
    (Li_et_al.plane_of_group li 7 >= 0
    && Li_et_al.plane_of_group li 7 < topo.Topology.spines_per_pod)

let test_li_update_touches () =
  let li = Li_et_al.create topo in
  let t1 = Tree.of_members topo [ 0; 1 ] in
  let t2 = Tree.of_members topo [ 0; 1; (5 * h) + 2 ] in
  Li_et_al.add_group li ~group:1 t1;
  let touch = Li_et_al.update li ~group:1 ~old_tree:(Some t1) ~new_tree:(Some t2) in
  (* L5 appears, forcing an address reassignment that rewrites the whole
     tree: both leaves are touched. *)
  Alcotest.(check (list int)) "leaves touched" [ 0; 5 ] touch.Li_et_al.leaves;
  Alcotest.(check bool) "spines touched" true (touch.Li_et_al.spines <> []);
  Alcotest.(check bool) "core touched" true (touch.Li_et_al.cores <> []);
  let touch2 = Li_et_al.update li ~group:1 ~old_tree:(Some t2) ~new_tree:(Some t2) in
  Alcotest.(check bool) "no-op update touches nothing" true
    (touch2.Li_et_al.leaves = [] && touch2.Li_et_al.spines = []
   && touch2.Li_et_al.cores = [])

(* {1 Native IP multicast} *)

let test_ip_multicast_entries () =
  let ip = Ip_multicast.create topo in
  let t1 = Tree.of_members topo fig3_hosts in
  Ip_multicast.add_group ip ~group:1 t1;
  let leaf = Ip_multicast.leaf_entries ip in
  List.iter
    (fun l -> Alcotest.(check int) (Printf.sprintf "leaf %d entry" l) 1 leaf.(l))
    [ 0; 5; 6; 7 ];
  Alcotest.(check int) "max occupancy" 1 (Ip_multicast.max_table_occupancy ip);
  (* No aggregation: a second identical group doubles the entries. *)
  Ip_multicast.add_group ip ~group:2 t1;
  Alcotest.(check int) "no aggregation" 2 (Ip_multicast.leaf_entries ip).(0);
  Ip_multicast.remove_group ip ~group:1 t1;
  Ip_multicast.remove_group ip ~group:2 t1;
  Alcotest.(check int) "clean removal" 0 (Ip_multicast.max_table_occupancy ip)

let test_ip_multicast_groups_supported () =
  Alcotest.(check int) "table-capacity bound" 5000
    (Ip_multicast.groups_supported ~table_capacity:5000)

let fabric = Topology.facebook_fabric ()

let prop_unicast_dominates_ideal =
  QCheck.Test.make ~name:"unicast transmissions >= ideal multicast" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 40) (int_range 0 (Topology.num_hosts fabric - 1)))
    (fun members ->
      QCheck.assume (List.length (List.sort_uniq compare members) >= 2);
      let tree = Tree.of_members fabric members in
      let sender = List.hd members in
      let u = Unicast_overlay.unicast tree ~sender in
      u.Unicast_overlay.transmissions >= Tree.ideal_link_transmissions tree ~sender)

let prop_overlay_between_ideal_and_unicast =
  QCheck.Test.make ~name:"ideal <= overlay <= unicast" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 40) (int_range 0 (Topology.num_hosts fabric - 1)))
    (fun members ->
      QCheck.assume (List.length (List.sort_uniq compare members) >= 2);
      let tree = Tree.of_members fabric members in
      let sender = List.hd members in
      let u = Unicast_overlay.unicast tree ~sender in
      let o = Unicast_overlay.overlay tree ~sender in
      let ideal = Tree.ideal_link_transmissions tree ~sender in
      o.Unicast_overlay.transmissions >= ideal - 1
      && o.Unicast_overlay.transmissions <= u.Unicast_overlay.transmissions)

let tests =
  [
    Alcotest.test_case "path links" `Quick test_path_links;
    Alcotest.test_case "unicast cost" `Quick test_unicast_cost;
    Alcotest.test_case "unicast excludes sender" `Quick test_unicast_excludes_sender;
    Alcotest.test_case "overlay cost" `Quick test_overlay_cost;
    Alcotest.test_case "overlay cheaper than unicast" `Quick
      test_overlay_cheaper_than_unicast;
    Alcotest.test_case "overhead vs ideal" `Quick test_overhead_vs_ideal;
    Alcotest.test_case "Li entries and aggregation" `Quick test_li_entries_and_aggregation;
    Alcotest.test_case "Li pinning deterministic" `Quick test_li_pinning_deterministic;
    Alcotest.test_case "Li update touches" `Quick test_li_update_touches;
    Alcotest.test_case "IP multicast entries" `Quick test_ip_multicast_entries;
    Alcotest.test_case "IP multicast group bound" `Quick test_ip_multicast_groups_supported;
    QCheck_alcotest.to_alcotest prop_unicast_dominates_ideal;
    QCheck_alcotest.to_alcotest prop_overlay_between_ideal_and_unicast;
  ]

(* {1 BIER and SGM encoders (Table 3 comparators)} *)

let test_bier () =
  let hosts = 64 in
  let members = [ 0; 7; 33; 63 ] in
  let b = Bier_sgm.Bier.encode ~hosts ~members in
  Alcotest.(check int) "header size" (Bier_sgm.Bier.header_bytes ~hosts)
    (Bytes.length b);
  Alcotest.(check (list int)) "roundtrip" members
    (Bier_sgm.Bier.members_of ~hosts b);
  (* The paper's Table 3 cell: ~2.6K hosts under the 325 B budget. *)
  let limit = Bier_sgm.Bier.max_hosts ~header_budget:325 in
  Alcotest.(check bool) "limit near 2.6K" true (limit > 2_400 && limit < 2_700);
  (* A 27k-host fabric cannot fit: the network-size limit is real. *)
  Alcotest.(check bool) "27k hosts exceed the budget" true
    (Bier_sgm.Bier.header_bytes ~hosts:27_648 > 325)

let test_sgm () =
  let members = [ 0x0A000001l; 0x0A000002l; 0xC0A80101l ] in
  let b = Bier_sgm.Sgm.encode ~members in
  Alcotest.(check int) "header size"
    (Bier_sgm.Sgm.header_bytes ~members:3)
    (Bytes.length b);
  Alcotest.(check bool) "roundtrip" true (Bier_sgm.Sgm.members_of b = Ok members);
  (* Table 3: group size < 100 under the budget. *)
  let limit = Bier_sgm.Sgm.max_members ~header_budget:325 in
  Alcotest.(check bool) "limit under 100" true (limit < 100 && limit > 50);
  (* Per-hop work grows with the group: the line-rate breaker. *)
  Alcotest.(check int) "lookups scale with members" 60
    (Bier_sgm.Sgm.table_lookups_per_hop ~members:60);
  Alcotest.(check bool) "truncated rejected" true
    (Result.is_error (Bier_sgm.Sgm.members_of (Bytes.make 2 'x')))

let prop_bier_roundtrip =
  QCheck.Test.make ~name:"BIER bitstring roundtrips" ~count:200
    QCheck.(pair (int_range 1 200) (list_of_size Gen.(int_range 0 20) (int_bound 199)))
    (fun (hosts, raw) ->
      let members = List.sort_uniq compare (List.filter (fun m -> m < hosts) raw) in
      Bier_sgm.Bier.members_of ~hosts (Bier_sgm.Bier.encode ~hosts ~members)
      = members)

let tests =
  tests
  @ [
      Alcotest.test_case "BIER encoder" `Quick test_bier;
      Alcotest.test_case "SGM encoder" `Quick test_sgm;
      QCheck_alcotest.to_alcotest prop_bier_roundtrip;
    ]
