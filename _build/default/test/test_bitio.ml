(* Bit-level writer/reader roundtrips: the substrate of the wire codec. *)

type field = Bit of bool | Bits of int * int (* value, width *) | Bm of int list * int

let write_field w = function
  | Bit b -> Bitio.Writer.bit w b
  | Bits (v, n) -> Bitio.Writer.bits w v n
  | Bm (bits, width) -> Bitio.Writer.bitmap w (Bitmap.of_list width bits)

let test_simple_roundtrip () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bit w true;
  Bitio.Writer.bits w 0b1011 4;
  Bitio.Writer.bit w false;
  Bitio.Writer.bits w 1023 10;
  let bytes = Bitio.Writer.to_bytes w in
  Alcotest.(check int) "bit length" 16 (Bitio.Writer.bit_length w);
  Alcotest.(check int) "byte length" 2 (Bytes.length bytes);
  let r = Bitio.Reader.of_bytes bytes in
  Alcotest.(check bool) "bit 1" true (Bitio.Reader.bit r);
  Alcotest.(check int) "bits 4" 0b1011 (Bitio.Reader.bits r 4);
  Alcotest.(check bool) "bit 0" false (Bitio.Reader.bit r);
  Alcotest.(check int) "bits 10" 1023 (Bitio.Reader.bits r 10)

let test_bitmap_roundtrip () =
  let bm = Bitmap.of_list 13 [ 0; 5; 12 ] in
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w 5 3;
  Bitio.Writer.bitmap w bm;
  let r = Bitio.Reader.of_bytes (Bitio.Writer.to_bytes w) in
  Alcotest.(check int) "prefix" 5 (Bitio.Reader.bits r 3);
  Alcotest.(check bool) "bitmap" true (Bitmap.equal bm (Bitio.Reader.bitmap r 13))

let test_align () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w 3 3;
  Bitio.Writer.align_byte w;
  Alcotest.(check int) "aligned to 8" 8 (Bitio.Writer.bit_length w);
  Bitio.Writer.bits w 1 1;
  let r = Bitio.Reader.of_bytes (Bitio.Writer.to_bytes w) in
  Alcotest.(check int) "read prefix" 3 (Bitio.Reader.bits r 3);
  Bitio.Reader.align_byte r;
  Alcotest.(check int) "pos after align" 8 (Bitio.Reader.pos r);
  Alcotest.(check bool) "bit after align" true (Bitio.Reader.bit r)

let test_value_too_large () =
  let w = Bitio.Writer.create () in
  Alcotest.check_raises "value does not fit"
    (Invalid_argument "Bitio.Writer.bits: value does not fit") (fun () ->
      Bitio.Writer.bits w 16 4);
  Alcotest.check_raises "width out of range"
    (Invalid_argument "Bitio.Writer.bits: width out of range") (fun () ->
      Bitio.Writer.bits w 0 63)

let test_truncated () =
  let r = Bitio.Reader.of_bytes (Bytes.make 1 '\255') in
  ignore (Bitio.Reader.bits r 8);
  Alcotest.check_raises "truncated" Bitio.Reader.Truncated (fun () ->
      ignore (Bitio.Reader.bit r))

let test_to_bytes_not_destructive () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w 5 3;
  let b1 = Bitio.Writer.to_bytes w in
  Bitio.Writer.bits w 2 2;
  let b2 = Bitio.Writer.to_bytes w in
  let r = Bitio.Reader.of_bytes b2 in
  Alcotest.(check int) "first field survives" 5 (Bitio.Reader.bits r 3);
  Alcotest.(check int) "second field" 2 (Bitio.Reader.bits r 2);
  Alcotest.(check int) "b1 was a snapshot" 1 (Bytes.length b1)

(* Property: any sequence of fields roundtrips. *)
let gen_fields =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (oneof
         [
           map (fun b -> Bit b) bool;
           ( int_range 1 30 >>= fun n ->
             int_range 0 ((1 lsl n) - 1) >>= fun v -> return (Bits (v, n)) );
           ( int_range 1 40 >>= fun width ->
             list_size (int_range 0 10) (int_range 0 (width - 1)) >>= fun bits ->
             return (Bm (bits, width)) );
         ]))

let arb_fields =
  QCheck.make
    ~print:(fun fields ->
      String.concat ","
        (List.map
           (function
             | Bit b -> Printf.sprintf "b%b" b
             | Bits (v, n) -> Printf.sprintf "%d:%d" v n
             | Bm (bits, w) -> Printf.sprintf "bm%d[%d]" w (List.length bits))
           fields))
    gen_fields

let prop_roundtrip =
  QCheck.Test.make ~name:"field sequences roundtrip" ~count:500 arb_fields
    (fun fields ->
      let w = Bitio.Writer.create () in
      List.iter (write_field w) fields;
      let r = Bitio.Reader.of_bytes (Bitio.Writer.to_bytes w) in
      List.for_all
        (fun f ->
          match f with
          | Bit b -> Bitio.Reader.bit r = b
          | Bits (v, n) -> Bitio.Reader.bits r n = v
          | Bm (bits, width) ->
              Bitmap.equal (Bitio.Reader.bitmap r width) (Bitmap.of_list width bits))
        fields)

let prop_length =
  QCheck.Test.make ~name:"byte length = ceil(bits/8)" ~count:500 arb_fields
    (fun fields ->
      let w = Bitio.Writer.create () in
      List.iter (write_field w) fields;
      Bytes.length (Bitio.Writer.to_bytes w) = (Bitio.Writer.bit_length w + 7) / 8)

let tests =
  [
    Alcotest.test_case "simple roundtrip" `Quick test_simple_roundtrip;
    Alcotest.test_case "bitmap roundtrip" `Quick test_bitmap_roundtrip;
    Alcotest.test_case "alignment" `Quick test_align;
    Alcotest.test_case "invalid writes" `Quick test_value_too_large;
    Alcotest.test_case "truncated read raises" `Quick test_truncated;
    Alcotest.test_case "to_bytes is a snapshot" `Quick test_to_bytes_not_destructive;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_length;
  ]
