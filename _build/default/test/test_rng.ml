let check = Alcotest.check

let test_determinism () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 c)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.create 4 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done;
  check Alcotest.int "singleton range" 5 (Rng.int_in rng 5 5)

let test_int_uniformity () =
  let rng = Rng.create 5 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 10%%" i)
        true
        (abs (c - expected) < expected / 10))
    counts

let test_float_bounds () =
  let rng = Rng.create 6 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_exponential_mean () =
  let rng = Rng.create 7 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:10.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean within 5%" true (abs_float (mean -. 10.0) < 0.5)

let test_normal_moments () =
  let rng = Rng.create 8 in
  let n = 50_000 in
  let w = Stats.Welford.create () in
  for _ = 1 to n do
    Stats.Welford.add w (Rng.normal rng)
  done;
  Alcotest.(check bool) "mean near 0" true (abs_float (Stats.Welford.mean w) < 0.05);
  Alcotest.(check bool) "sd near 1" true (abs_float (Stats.Welford.stddev w -. 1.0) < 0.05)

let test_shuffle_is_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 10 in
  let arr = Array.init 20 Fun.id in
  let s = Rng.sample_without_replacement rng 8 arr in
  check Alcotest.int "size" 8 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  check Alcotest.int "distinct" 8 (List.length uniq);
  List.iter
    (fun x -> Alcotest.(check bool) "subset" true (x >= 0 && x < 20))
    uniq;
  Alcotest.check_raises "too many" (Invalid_argument "Rng.sample_without_replacement")
    (fun () -> ignore (Rng.sample_without_replacement rng 21 arr));
  check Alcotest.int "k=0 ok" 0 (Array.length (Rng.sample_without_replacement rng 0 arr))

let test_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  (* Streams should not be identical. *)
  let same = ref true in
  for _ = 1 to 20 do
    if Rng.bits64 a <> Rng.bits64 b then same := false
  done;
  Alcotest.(check bool) "split decorrelates" false !same

let test_copy_preserves_state () =
  let a = Rng.create 12 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "same next value" (Rng.bits64 a) (Rng.bits64 b)

let test_choice () =
  let rng = Rng.create 13 in
  let arr = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choice rng arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choice: empty array")
    (fun () -> ignore (Rng.choice rng [||]))

let tests =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "copy preserves state" `Quick test_copy_preserves_state;
    Alcotest.test_case "choice" `Quick test_choice;
  ]
