let bm_of width l = Bitmap.of_list width l

let test_create_and_get () =
  let b = Bitmap.create 70 in
  Alcotest.(check int) "width" 70 (Bitmap.width b);
  Alcotest.(check bool) "initially empty" true (Bitmap.is_empty b);
  Bitmap.set b 0;
  Bitmap.set b 63;
  Bitmap.set b 69;
  Alcotest.(check bool) "bit 0" true (Bitmap.get b 0);
  Alcotest.(check bool) "bit 63 (word boundary)" true (Bitmap.get b 63);
  Alcotest.(check bool) "bit 69" true (Bitmap.get b 69);
  Alcotest.(check bool) "bit 1 clear" false (Bitmap.get b 1);
  Alcotest.(check int) "popcount" 3 (Bitmap.popcount b);
  Bitmap.clear b 63;
  Alcotest.(check bool) "cleared" false (Bitmap.get b 63);
  Alcotest.(check int) "popcount after clear" 2 (Bitmap.popcount b)

let test_bounds () =
  let b = Bitmap.create 8 in
  Alcotest.check_raises "set out of bounds"
    (Invalid_argument "Bitmap: index out of bounds") (fun () -> Bitmap.set b 8);
  Alcotest.check_raises "get negative"
    (Invalid_argument "Bitmap: index out of bounds") (fun () ->
      ignore (Bitmap.get b (-1)))

let test_zero_width () =
  let b = Bitmap.create 0 in
  Alcotest.(check int) "width 0" 0 (Bitmap.width b);
  Alcotest.(check bool) "empty" true (Bitmap.is_empty b);
  Alcotest.(check int) "popcount" 0 (Bitmap.popcount b)

let test_set_ops () =
  let a = bm_of 10 [ 0; 2; 4 ] and b = bm_of 10 [ 2; 3 ] in
  Alcotest.(check (list int)) "union" [ 0; 2; 3; 4 ] (Bitmap.to_list (Bitmap.union a b));
  Alcotest.(check (list int)) "inter" [ 2 ] (Bitmap.to_list (Bitmap.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 4 ] (Bitmap.to_list (Bitmap.diff a b));
  Alcotest.(check bool) "subset no" false (Bitmap.subset a b);
  Alcotest.(check bool) "subset yes" true (Bitmap.subset (bm_of 10 [ 2 ]) b);
  Alcotest.(check int) "hamming" 3 (Bitmap.hamming a b);
  Alcotest.(check int) "union_cost" 1 (Bitmap.union_cost b a)

let test_width_mismatch () =
  let a = Bitmap.create 5 and b = Bitmap.create 6 in
  Alcotest.check_raises "union mismatch" (Invalid_argument "Bitmap: width mismatch")
    (fun () -> ignore (Bitmap.union a b))

let test_union_into () =
  let a = bm_of 10 [ 1 ] in
  Bitmap.union_into ~dst:a (bm_of 10 [ 3 ]);
  Alcotest.(check (list int)) "accumulated" [ 1; 3 ] (Bitmap.to_list a)

let test_union_all () =
  let u = Bitmap.union_all 6 [ bm_of 6 [ 0 ]; bm_of 6 [ 5 ]; bm_of 6 [ 0; 3 ] ] in
  Alcotest.(check (list int)) "union_all" [ 0; 3; 5 ] (Bitmap.to_list u);
  Alcotest.(check bool) "empty list" true (Bitmap.is_empty (Bitmap.union_all 6 []))

let test_to_string () =
  Alcotest.(check string) "render" "0110" (Bitmap.to_string (bm_of 4 [ 1; 2 ]))

let test_copy_isolated () =
  let a = bm_of 8 [ 1 ] in
  let b = Bitmap.copy a in
  Bitmap.set b 2;
  Alcotest.(check bool) "original unchanged" false (Bitmap.get a 2)

let test_bytes_roundtrip_fixed () =
  let a = bm_of 17 [ 0; 7; 8; 16 ] in
  let b = Bitmap.of_bytes 17 (Bitmap.to_bytes a) in
  Alcotest.(check bool) "roundtrip" true (Bitmap.equal a b);
  Alcotest.(check int) "byte length" 3 (Bytes.length (Bitmap.to_bytes a))

(* {1 Properties} *)

let gen_bitmap =
  QCheck.Gen.(
    int_range 1 200 >>= fun width ->
    list_size (int_range 0 64) (int_range 0 (width - 1)) >>= fun bits ->
    return (width, bits))

let arb_bitmap =
  QCheck.make
    ~print:(fun (w, bits) ->
      Printf.sprintf "width=%d bits=[%s]" w
        (String.concat ";" (List.map string_of_int bits)))
    gen_bitmap

let arb_bitmap_pair =
  (* two bitmaps of the same width *)
  QCheck.make
    ~print:(fun (w, a, b) ->
      Printf.sprintf "width=%d a=[%s] b=[%s]" w
        (String.concat ";" (List.map string_of_int a))
        (String.concat ";" (List.map string_of_int b)))
    QCheck.Gen.(
      int_range 1 200 >>= fun width ->
      let bits = list_size (int_range 0 64) (int_range 0 (width - 1)) in
      bits >>= fun a ->
      bits >>= fun b -> return (width, a, b))

let prop_roundtrip =
  QCheck.Test.make ~name:"to_bytes/of_bytes roundtrip" ~count:500 arb_bitmap
    (fun (w, bits) ->
      let b = bm_of w bits in
      Bitmap.equal b (Bitmap.of_bytes w (Bitmap.to_bytes b)))

let prop_to_list_sorted =
  QCheck.Test.make ~name:"to_list sorted and deduplicated" ~count:500 arb_bitmap
    (fun (w, bits) ->
      let l = Bitmap.to_list (bm_of w bits) in
      l = List.sort_uniq compare bits)

let prop_popcount_union =
  QCheck.Test.make ~name:"popcount(union) = |a| + |b| - |inter|" ~count:500
    arb_bitmap_pair (fun (w, a, b) ->
      let ba = bm_of w a and bb = bm_of w b in
      Bitmap.popcount (Bitmap.union ba bb)
      = Bitmap.popcount ba + Bitmap.popcount bb - Bitmap.popcount (Bitmap.inter ba bb))

let prop_hamming =
  QCheck.Test.make ~name:"hamming = popcount(a xor b), symmetric" ~count:500
    arb_bitmap_pair (fun (w, a, b) ->
      let ba = bm_of w a and bb = bm_of w b in
      let xor = Bitmap.union (Bitmap.diff ba bb) (Bitmap.diff bb ba) in
      Bitmap.hamming ba bb = Bitmap.popcount xor
      && Bitmap.hamming ba bb = Bitmap.hamming bb ba)

let prop_union_cost =
  QCheck.Test.make ~name:"union_cost a acc = popcount(union) - popcount(acc)"
    ~count:500 arb_bitmap_pair (fun (w, a, acc) ->
      let ba = bm_of w a and bacc = bm_of w acc in
      Bitmap.union_cost ba bacc
      = Bitmap.popcount (Bitmap.union ba bacc) - Bitmap.popcount bacc)

let prop_subset_union =
  QCheck.Test.make ~name:"a and b are subsets of their union" ~count:500
    arb_bitmap_pair (fun (w, a, b) ->
      let ba = bm_of w a and bb = bm_of w b in
      let u = Bitmap.union ba bb in
      Bitmap.subset ba u && Bitmap.subset bb u)

let prop_compare_consistent =
  QCheck.Test.make ~name:"equal agrees with compare" ~count:500 arb_bitmap_pair
    (fun (w, a, b) ->
      let ba = bm_of w a and bb = bm_of w b in
      Bitmap.equal ba bb = (Bitmap.compare ba bb = 0))

let tests =
  [
    Alcotest.test_case "create/get/set/clear" `Quick test_create_and_get;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "zero width" `Quick test_zero_width;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
    Alcotest.test_case "union_into" `Quick test_union_into;
    Alcotest.test_case "union_all" `Quick test_union_all;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
    Alcotest.test_case "bytes roundtrip (fixed)" `Quick test_bytes_roundtrip_fixed;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_to_list_sorted;
    QCheck_alcotest.to_alcotest prop_popcount_union;
    QCheck_alcotest.to_alcotest prop_hamming;
    QCheck_alcotest.to_alcotest prop_union_cost;
    QCheck_alcotest.to_alcotest prop_subset_union;
    QCheck_alcotest.to_alcotest prop_compare_consistent;
  ]
