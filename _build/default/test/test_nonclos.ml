let xp = Graph_topology.xpander ~switches:60 ~degree:6 ~hosts_per_switch:4
let jf = Graph_topology.jellyfish (Rng.create 5) ~switches:60 ~degree:6 ~hosts_per_switch:4

let test_construction () =
  List.iter
    (fun (name, t) ->
      Alcotest.(check bool) (name ^ " regular simple graph") true
        (Graph_topology.is_regular t);
      Alcotest.(check int) (name ^ " hosts") 240 (Graph_topology.num_hosts t);
      Alcotest.(check int) (name ^ " port width") 10 (Graph_topology.port_width t);
      (* Adjacency is symmetric: b is a neighbour of a iff a of b. *)
      for s = 0 to t.Graph_topology.num_switches - 1 do
        Array.iter
          (fun n ->
            Alcotest.(check bool) "symmetric adjacency" true
              (Array.mem s t.Graph_topology.adj.(n)))
          t.Graph_topology.adj.(s)
      done)
    [ ("xpander", xp); ("jellyfish", jf) ]

let test_xpander_symmetry () =
  (* Vertex-transitivity of the circulant: the offset of port p is the same
     at every switch. *)
  let n = xp.Graph_topology.num_switches in
  for port = 0 to xp.Graph_topology.degree - 1 do
    let offset_at s = (xp.Graph_topology.adj.(s).(port) - s + n) mod n in
    let o0 = offset_at 0 in
    for s = 1 to n - 1 do
      Alcotest.(check int) "same offset everywhere" o0 (offset_at s)
    done
  done

let test_xpander_low_diameter () =
  (* Geometric offsets give a far smaller eccentricity than the ring. *)
  let parents = Graph_topology.bfs_parents xp ~root:0 in
  let depth = Array.make xp.Graph_topology.num_switches 0 in
  let rec d s = if parents.(s) < 0 then 0 else (if depth.(s) > 0 then depth.(s) else (depth.(s) <- 1 + d parents.(s); depth.(s))) in
  let ecc = Array.fold_left max 0 (Array.init xp.Graph_topology.num_switches d) in
  Alcotest.(check bool) (Printf.sprintf "eccentricity %d small" ecc) true (ecc <= 8)

let test_mappings () =
  Alcotest.(check int) "switch of host" 3 (Graph_topology.switch_of_host xp 13);
  Alcotest.(check int) "host port" (6 + 1) (Graph_topology.host_port xp 13);
  Alcotest.(check int) "neighbour/port inverse" 2
    (Graph_topology.port_towards xp ~switch:0
       ~neighbour:(Graph_topology.neighbour xp ~switch:0 ~port:2))

let test_bfs_parents_valid () =
  List.iter
    (fun t ->
      let parents = Graph_topology.bfs_parents t ~root:7 in
      Alcotest.(check int) "root parent" (-1) parents.(7);
      Array.iteri
        (fun s p ->
          if s <> 7 then
            Alcotest.(check bool) "parent is adjacent" true
              (Array.mem p t.Graph_topology.adj.(s)))
        parents)
    [ xp; jf ]

let test_nearest_switches () =
  let near = Graph_topology.nearest_switches xp ~root:5 7 in
  Alcotest.(check int) "count" 7 (List.length near);
  Alcotest.(check int) "root first" 5 (List.hd near);
  Alcotest.(check int) "distinct" 7 (List.length (List.sort_uniq compare near))

let test_flat_tree_covers_members () =
  let members = [ 0; 17; 55; 120; 239 ] in
  let tree = Flat_encoding.Flat_tree.of_members xp ~root:0 members in
  (* Every member's host port is set on its switch. *)
  List.iter
    (fun h ->
      let s = Graph_topology.switch_of_host xp h in
      let bm = List.assoc s tree.Flat_encoding.Flat_tree.bitmaps in
      Alcotest.(check bool) "host port set" true
        (Bitmap.get bm (Graph_topology.host_port xp h)))
    members;
  (* Walking the tree from the root reaches every member: simulate. *)
  let delivered = ref [] in
  let rec walk s =
    match List.assoc_opt s tree.Flat_encoding.Flat_tree.bitmaps with
    | None -> ()
    | Some bm ->
        Bitmap.iter
          (fun port ->
            if port < xp.Graph_topology.degree then
              walk (Graph_topology.neighbour xp ~switch:s ~port)
            else
              delivered :=
                ((s * xp.Graph_topology.hosts_per_switch)
                + (port - xp.Graph_topology.degree))
                :: !delivered)
          bm
  in
  walk 0;
  Alcotest.(check (list int)) "all members delivered exactly once"
    (List.sort compare members)
    (List.sort compare !delivered)

let test_flat_tree_transmissions () =
  (* Single member on the root switch: uplink + delivery = 2. *)
  let tree = Flat_encoding.Flat_tree.of_members xp ~root:0 [ 1 ] in
  Alcotest.(check int) "minimal tree" 2 (Flat_encoding.Flat_tree.transmissions tree)

let test_flat_encoding_partition () =
  let members = List.init 30 (fun i -> (i * 7) mod 240) |> List.sort_uniq compare in
  let tree = Flat_encoding.Flat_tree.of_members jf ~root:2 members in
  let enc = Flat_encoding.encode ~r:6 ~hmax:4 jf tree in
  let ids =
    List.concat_map (fun r -> r.Prule.switches) enc.Flat_encoding.rules.Clustering.prules
    @ (match enc.Flat_encoding.rules.Clustering.default with
      | Some (ids, _) -> ids
      | None -> [])
  in
  Alcotest.(check (list int)) "every tree switch assigned"
    (List.map fst tree.Flat_encoding.Flat_tree.bitmaps)
    (List.sort compare ids);
  Alcotest.(check bool) "header bits positive" true (Flat_encoding.header_bits enc > 0);
  Alcotest.(check int) "bytes = ceil bits/8"
    ((Flat_encoding.header_bits enc + 7) / 8)
    (Flat_encoding.header_bytes enc)

let test_invalid () =
  Alcotest.check_raises "odd degree"
    (Invalid_argument "Graph_topology.xpander: degree must be even") (fun () ->
      ignore (Graph_topology.xpander ~switches:10 ~degree:3 ~hosts_per_switch:1));
  Alcotest.check_raises "degree too large"
    (Invalid_argument "Graph_topology: degree >= switches") (fun () ->
      ignore (Graph_topology.xpander ~switches:4 ~degree:4 ~hosts_per_switch:1));
  Alcotest.check_raises "empty members"
    (Invalid_argument "Flat_tree.of_members: empty group") (fun () ->
      ignore (Flat_encoding.Flat_tree.of_members xp ~root:0 []))

let test_experiment_runs () =
  let results =
    Nonclos_exp.run ~switches:60 ~degree:6 ~hosts_per_switch:4 ~groups:60 ()
  in
  Alcotest.(check int) "two topologies" 2 (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check int) "all groups measured" 60 r.Nonclos_exp.groups;
      Alcotest.(check bool) "sharing >= 1" true (r.Nonclos_exp.sharing.Stats.mean >= 1.0))
    results

let prop_jellyfish_seeds_differ =
  QCheck.Test.make ~name:"different seeds give different jellyfish graphs" ~count:10
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let g1 = Graph_topology.jellyfish (Rng.create a) ~switches:30 ~degree:4 ~hosts_per_switch:1 in
      let g2 = Graph_topology.jellyfish (Rng.create b) ~switches:30 ~degree:4 ~hosts_per_switch:1 in
      let norm g =
        Array.map (fun row -> List.sort compare (Array.to_list row)) g.Graph_topology.adj
      in
      Graph_topology.is_regular g1 && Graph_topology.is_regular g2
      && norm g1 <> norm g2)

let tests =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "xpander symmetry" `Quick test_xpander_symmetry;
    Alcotest.test_case "xpander low diameter" `Quick test_xpander_low_diameter;
    Alcotest.test_case "host mappings" `Quick test_mappings;
    Alcotest.test_case "bfs parents valid" `Quick test_bfs_parents_valid;
    Alcotest.test_case "nearest switches" `Quick test_nearest_switches;
    Alcotest.test_case "flat tree covers members" `Quick test_flat_tree_covers_members;
    Alcotest.test_case "flat tree transmissions" `Quick test_flat_tree_transmissions;
    Alcotest.test_case "flat encoding partition" `Quick test_flat_encoding_partition;
    Alcotest.test_case "invalid inputs" `Quick test_invalid;
    Alcotest.test_case "experiment runs" `Quick test_experiment_runs;
    QCheck_alcotest.to_alcotest prop_jellyfish_seeds_differ;
  ]
