let topo = Topology.running_example ()
let fabric = Topology.facebook_fabric ()
let params = Params.default

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let count_occurrences ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let balanced_braces s =
  let depth = ref 0 in
  let ok = ref true in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let leaf_prog = P4gen.network_switch_program topo params ~role:P4gen.Leaf ~switch_id:0
let spine_prog = P4gen.network_switch_program topo params ~role:P4gen.Spine ~switch_id:2
let core_prog = P4gen.network_switch_program topo params ~role:P4gen.Core ~switch_id:0
let hv_prog = P4gen.hypervisor_switch_program topo params

let test_structure () =
  List.iter
    (fun (name, prog) ->
      Alcotest.(check bool) (name ^ " braces balanced") true (balanced_braces prog);
      Alcotest.(check bool) (name ^ " has banner") true
        (contains ~needle:"GENERATED, DO NOT EDIT" prog);
      Alcotest.(check bool) (name ^ " includes v1model") true
        (contains ~needle:"#include <v1model.p4>" prog))
    [
      ("leaf", leaf_prog);
      ("spine", spine_prog);
      ("core", core_prog);
      ("hypervisor", hv_prog);
    ]

let test_switch_id_baked_in () =
  Alcotest.(check bool) "leaf id" true (contains ~needle:"#define SWITCH_ID 0" leaf_prog);
  Alcotest.(check bool) "spine id" true
    (contains ~needle:"#define SWITCH_ID 2" spine_prog)

let test_parser_unrolls_to_hmax () =
  (* The leaf parser must walk up to hmax_leaf rules — one extract state and
     one matched state per rule slot. *)
  Alcotest.(check int) "leaf rule states" params.Params.hmax_leaf
    (count_occurrences ~needle:"state parse_d_leaf_" leaf_prog
    - 3 (* overflow + default + default_rule states share the prefix *));
  Alcotest.(check int) "matched states" params.Params.hmax_leaf
    (count_occurrences ~needle:"state matched_d_leaf_" leaf_prog);
  Alcotest.(check int) "spine rule states" params.Params.hmax_spine
    (count_occurrences ~needle:"state parse_d_spine_" spine_prog - 3)

let test_kmax_identifier_slots () =
  (* Each rule header carries kmax identifier fields. *)
  let hdrs = P4gen.header_definitions topo params in
  for k = 0 to params.Params.kmax - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "id%d present" k)
      true
      (contains ~needle:(Printf.sprintf "id%d;" k) hdrs)
  done;
  Alcotest.(check bool) "no extra id" false
    (contains ~needle:(Printf.sprintf "id%d;" params.Params.kmax) hdrs)

let test_topology_widths_baked_in () =
  let hdrs = P4gen.header_definitions topo params in
  (* Running example: 8 host ports per leaf, 2 leaves per pod, 4 pods. *)
  Alcotest.(check bool) "leaf bitmap width 8" true (contains ~needle:"bit<8> bitmap;" hdrs);
  Alcotest.(check bool) "core bitmap width 4" true (contains ~needle:"bit<4> bitmap;" hdrs);
  let fhdrs = P4gen.header_definitions fabric params in
  Alcotest.(check bool) "fabric leaf bitmap width 48" true
    (contains ~needle:"bit<48> bitmap;" fhdrs);
  Alcotest.(check bool) "fabric leaf id width 10" true
    (contains ~needle:"bit<10> id0;" fhdrs)

let test_role_sections () =
  Alcotest.(check bool) "leaf parses u_leaf" true
    (contains ~needle:"state parse_u_leaf" leaf_prog);
  Alcotest.(check bool) "leaf never parses u_spine" false
    (contains ~needle:"state parse_u_spine" leaf_prog);
  Alcotest.(check bool) "spine parses u_spine" true
    (contains ~needle:"state parse_u_spine" spine_prog);
  Alcotest.(check bool) "core parses the core rule" true
    (contains ~needle:"state parse_core" core_prog);
  Alcotest.(check bool) "core has no rule walk" false
    (contains ~needle:"state parse_d_spine_0" core_prog);
  Alcotest.(check bool) "ingress uses bitmap_port_select" true
    (contains ~needle:"bitmap_port_select(meta.bitmap);" leaf_prog);
  Alcotest.(check bool) "group-table fallback" true
    (contains ~needle:"srules.apply().hit" leaf_prog);
  Alcotest.(check bool) "s-rule table sized by Fmax" true
    (contains ~needle:(Printf.sprintf "size = %d;" params.Params.fmax) leaf_prog)

let test_egress_pops_layers () =
  Alcotest.(check bool) "leaf pops u_leaf upstream" true
    (contains ~needle:"hdr.u_leaf.setInvalid();" leaf_prog);
  Alcotest.(check bool) "spine advances the stage" true
    (contains ~needle:"hdr.tag.stage = STAGE_AFTER_D_SPINE;" spine_prog);
  Alcotest.(check bool) "core pops its rule" true
    (contains ~needle:"hdr.core.setInvalid();" core_prog)

let test_deterministic () =
  Alcotest.(check bool) "same inputs, same program" true
    (String.equal leaf_prog
       (P4gen.network_switch_program topo params ~role:P4gen.Leaf ~switch_id:0))

let test_invalid_ids () =
  Alcotest.check_raises "leaf id out of range"
    (Invalid_argument "P4gen: switch_id out of range for role") (fun () ->
      ignore
        (P4gen.network_switch_program topo params ~role:P4gen.Leaf
           ~switch_id:(Topology.num_leaves topo)));
  Alcotest.check_raises "core id out of range"
    (Invalid_argument "P4gen: switch_id out of range for role") (fun () ->
      ignore (P4gen.network_switch_program topo params ~role:P4gen.Core ~switch_id:1))

let test_deparser_emits_stack () =
  Alcotest.(check bool) "deparser present" true
    (contains ~needle:"control ElmoDeparser" leaf_prog);
  Alcotest.(check bool) "emits the rule stack" true
    (contains ~needle:"packet.emit(hdr.d_leaf);" leaf_prog);
  Alcotest.(check bool) "package instantiation" true
    (contains ~needle:"V1Switch(" leaf_prog)

let test_hypervisor_program () =
  Alcotest.(check bool) "single-write encapsulation action" true
    (contains ~needle:"push_elmo_header" hv_prog);
  Alcotest.(check bool) "flow table present" true
    (contains ~needle:"table multicast_flows" hv_prog)

let tests =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "switch id baked in" `Quick test_switch_id_baked_in;
    Alcotest.test_case "parser unrolls to hmax" `Quick test_parser_unrolls_to_hmax;
    Alcotest.test_case "kmax identifier slots" `Quick test_kmax_identifier_slots;
    Alcotest.test_case "topology widths baked in" `Quick test_topology_widths_baked_in;
    Alcotest.test_case "role sections" `Quick test_role_sections;
    Alcotest.test_case "egress pops layers" `Quick test_egress_pops_layers;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "deparser emits stack" `Quick test_deparser_emits_stack;
    Alcotest.test_case "invalid ids" `Quick test_invalid_ids;
    Alcotest.test_case "hypervisor program" `Quick test_hypervisor_program;
  ]

let test_runtime_entries () =
  (* Force s-rules on the Figure 3 group and check the emitted commands. *)
  let tree =
    Tree.of_members topo
      [ 0; 1; 42; 52; 53; 63 ]
  in
  let p = Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None () in
  let srules = Srule_state.create topo ~fmax:10 in
  let enc = Encoding.encode p srules tree in
  let out = P4gen.runtime_entries topo ~group:7 enc in
  Alcotest.(check bool) "one line per physical entry" true
    (count_occurrences ~needle:"table_add srules set_mgid 7" out
    = Encoding.srule_entries enc);
  Alcotest.(check bool) "pod rules hit every pod spine" true
    (count_occurrences ~needle:"switch spine-" out
    = List.length enc.Encoding.d_spine.Clustering.srules
      * topo.Topology.spines_per_pod);
  (* A pure-p-rule group needs no entries at all. *)
  let srules2 = Srule_state.create topo ~fmax:10 in
  let enc2 = Encoding.encode Params.default srules2 tree in
  Alcotest.(check int) "no entries when covered" 0
    (count_occurrences ~needle:"table_add" (P4gen.runtime_entries topo ~group:8 enc2))

let tests =
  tests @ [ Alcotest.test_case "runtime entries" `Quick test_runtime_entries ]
