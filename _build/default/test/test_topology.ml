let fabric = Topology.facebook_fabric ()
let example = Topology.running_example ()

let test_fabric_dimensions () =
  Alcotest.(check int) "hosts" 27_648 (Topology.num_hosts fabric);
  Alcotest.(check int) "leaves" 576 (Topology.num_leaves fabric);
  Alcotest.(check int) "spines" 48 (Topology.num_spines fabric);
  Alcotest.(check int) "cores" 48 (Topology.num_cores fabric);
  Alcotest.(check int) "switches" 672 (Topology.num_switches fabric);
  Alcotest.(check bool) "three-tier" false (Topology.is_two_tier fabric)

let test_example_dimensions () =
  Alcotest.(check int) "hosts" 64 (Topology.num_hosts example);
  Alcotest.(check int) "leaves" 8 (Topology.num_leaves example);
  Alcotest.(check int) "spines" 8 (Topology.num_spines example);
  Alcotest.(check int) "cores" 4 (Topology.num_cores example)

let test_mappings () =
  (* Host 42 on the running example: leaf 5 (hosts 40-47), pod 2, port 2. *)
  Alcotest.(check int) "leaf of host" 5 (Topology.leaf_of_host example 42);
  Alcotest.(check int) "pod of host" 2 (Topology.pod_of_host example 42);
  Alcotest.(check int) "host port" 2 (Topology.host_port_on_leaf example 42);
  Alcotest.(check int) "pod of leaf" 3 (Topology.pod_of_leaf example 7);
  Alcotest.(check int) "leaf port on spine" 1 (Topology.leaf_port_on_spine example 7);
  Alcotest.(check (list int)) "hosts of leaf 1" [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (Topology.hosts_of_leaf example 1);
  Alcotest.(check (list int)) "leaves of pod 2" [ 4; 5 ] (Topology.leaves_of_pod example 2);
  Alcotest.(check (list int)) "spines of pod 3" [ 6; 7 ] (Topology.spines_of_pod example 3)

let test_out_of_range () =
  Alcotest.check_raises "host range" (Invalid_argument "Topology: host out of range")
    (fun () -> ignore (Topology.leaf_of_host example 64));
  Alcotest.check_raises "leaf range" (Invalid_argument "Topology: leaf out of range")
    (fun () -> ignore (Topology.pod_of_leaf example (-1)));
  Alcotest.check_raises "pod range" (Invalid_argument "Topology: pod out of range")
    (fun () -> ignore (Topology.leaves_of_pod example 4))

let test_widths () =
  Alcotest.(check int) "leaf down" 48 (Topology.leaf_downstream_width fabric);
  Alcotest.(check int) "spine down" 48 (Topology.spine_downstream_width fabric);
  Alcotest.(check int) "core down" 12 (Topology.core_downstream_width fabric);
  Alcotest.(check int) "leaf up" 4 (Topology.leaf_upstream_width fabric);
  Alcotest.(check int) "spine up" 12 (Topology.spine_upstream_width fabric)

let test_id_bits () =
  Alcotest.(check int) "leaf id bits (576 leaves)" 10 (Topology.leaf_id_bits fabric);
  Alcotest.(check int) "spine id bits (12 pods)" 4 (Topology.spine_id_bits fabric);
  Alcotest.(check int) "bits_needed 1" 1 (Topology.bits_needed 1);
  Alcotest.(check int) "bits_needed 2" 1 (Topology.bits_needed 2);
  Alcotest.(check int) "bits_needed 3" 2 (Topology.bits_needed 3);
  Alcotest.(check int) "bits_needed 1024" 10 (Topology.bits_needed 1024);
  Alcotest.(check int) "bits_needed 1025" 11 (Topology.bits_needed 1025)

let test_two_tier () =
  let t = Topology.leaf_spine ~leaves:16 ~spines:4 ~hosts_per_leaf:24 in
  Alcotest.(check bool) "two-tier" true (Topology.is_two_tier t);
  Alcotest.(check int) "hosts" 384 (Topology.num_hosts t);
  Alcotest.(check int) "cores" 0 (Topology.num_cores t);
  Alcotest.(check int) "spines" 4 (Topology.num_spines t);
  Alcotest.(check int) "one pod" 0 (Topology.pod_of_host t 383)

let test_invalid_topologies () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Topology: pods must be positive" (fun () ->
      ignore
        (Topology.create ~pods:0 ~leaves_per_pod:1 ~spines_per_pod:1
           ~hosts_per_leaf:1 ~cores_per_plane:1));
  expect "Topology: multi-pod topology requires a core plane" (fun () ->
      ignore
        (Topology.create ~pods:2 ~leaves_per_pod:1 ~spines_per_pod:1
           ~hosts_per_leaf:1 ~cores_per_plane:0));
  expect "Topology: hosts_per_leaf must be positive" (fun () ->
      ignore
        (Topology.create ~pods:1 ~leaves_per_pod:1 ~spines_per_pod:1
           ~hosts_per_leaf:0 ~cores_per_plane:0))

let prop_host_mappings_consistent =
  QCheck.Test.make ~name:"host -> leaf -> pod mappings are consistent" ~count:300
    QCheck.(int_range 0 (Topology.num_hosts fabric - 1))
    (fun h ->
      let l = Topology.leaf_of_host fabric h in
      let p = Topology.pod_of_leaf fabric l in
      Topology.pod_of_host fabric h = p
      && List.mem h (Topology.hosts_of_leaf fabric l)
      && List.mem l (Topology.leaves_of_pod fabric p)
      && h = (l * fabric.Topology.hosts_per_leaf) + Topology.host_port_on_leaf fabric h)

let tests =
  [
    Alcotest.test_case "fabric dimensions" `Quick test_fabric_dimensions;
    Alcotest.test_case "example dimensions" `Quick test_example_dimensions;
    Alcotest.test_case "host/leaf/pod mappings" `Quick test_mappings;
    Alcotest.test_case "out-of-range raises" `Quick test_out_of_range;
    Alcotest.test_case "bitmap widths" `Quick test_widths;
    Alcotest.test_case "identifier bits" `Quick test_id_bits;
    Alcotest.test_case "two-tier leaf-spine" `Quick test_two_tier;
    Alcotest.test_case "invalid topologies rejected" `Quick test_invalid_topologies;
    QCheck_alcotest.to_alcotest prop_host_mappings_consistent;
  ]
