let sample =
  {
    Vxlan.src_mac = 0x020000000123;
    dst_mac = 0x01005E0000AA;
    src_ip = 0x0A000001l;
    dst_ip = 0xE00000FFl;
    src_port = 50000;
    vni = 0xABCDE;
  }

let test_overhead_constant () =
  Alcotest.(check int) "matches the traffic model's constant"
    Traffic.vxlan_encap_bytes Vxlan.overhead_bytes;
  Alcotest.(check int) "50 bytes" 50 Vxlan.overhead_bytes

let test_roundtrip () =
  let inner = Bytes.of_string "elmo header + payload" in
  let packet = Vxlan.encode sample ~inner in
  Alcotest.(check int) "size" (50 + Bytes.length inner) (Bytes.length packet);
  match Vxlan.decode packet with
  | Ok (t, inner') ->
      Alcotest.(check bool) "outer fields" true (t = sample);
      Alcotest.(check bytes) "inner preserved" inner inner'
  | Error e -> Alcotest.fail e

let test_empty_inner () =
  match Vxlan.decode (Vxlan.encode sample ~inner:Bytes.empty) with
  | Ok (t, inner) ->
      Alcotest.(check int) "vni" sample.Vxlan.vni t.Vxlan.vni;
      Alcotest.(check int) "empty inner" 0 (Bytes.length inner)
  | Error e -> Alcotest.fail e

let test_checksum_detects_corruption () =
  let packet = Vxlan.encode sample ~inner:(Bytes.of_string "x") in
  (* Flip a bit in the IP destination address. *)
  Bytes.set packet 31 (Char.chr (Char.code (Bytes.get packet 31) lxor 1));
  match Vxlan.decode packet with
  | Error "bad IPv4 header checksum" -> ()
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)
  | Ok _ -> Alcotest.fail "corruption not detected"

let test_rejects_non_vxlan () =
  Alcotest.(check bool) "short packet" true
    (Vxlan.decode (Bytes.make 10 'x') = Error "packet shorter than outer stack");
  let packet = Vxlan.encode sample ~inner:Bytes.empty in
  let bad_ethertype = Bytes.copy packet in
  Bytes.set bad_ethertype 12 '\x86';
  Alcotest.(check bool) "wrong ethertype" true
    (Vxlan.decode bad_ethertype = Error "not IPv4")

let test_encode_validation () =
  Alcotest.check_raises "vni too large"
    (Invalid_argument "Vxlan.encode: vni out of range") (fun () ->
      ignore (Vxlan.encode { sample with Vxlan.vni = 1 lsl 24 } ~inner:Bytes.empty))

let test_hypervisor_vxlan_path () =
  let topo = Topology.running_example () in
  let fabric = Fabric.create topo in
  let tree = Tree.of_members topo [ 0; 9; 42 ] in
  let srules = Srule_state.create topo ~fmax:10 in
  let enc = Encoding.encode Params.default srules tree in
  let sender_hv = Hypervisor.create fabric ~host:0 in
  Hypervisor.install_sender sender_hv ~group:33
    (Encoding.header_for_sender enc ~sender:0);
  (* The receiving hypervisor of host 9 has one member VM. Give it the same
     sender rule so it knows the header length to strip in loopback mode. *)
  Hypervisor.install_sender sender_hv ~group:33
    (Encoding.header_for_sender enc ~sender:0);
  Hypervisor.install_receiver sender_hv ~group:33 ~vms:2;
  let payload = Bytes.of_string "hello-multicast" in
  match Hypervisor.encap_vxlan sender_hv ~group:33 ~payload with
  | None -> Alcotest.fail "expected a packet"
  | Some packet -> (
      Alcotest.(check bool) "carries the full outer stack" true
        (Bytes.length packet > 50 + Bytes.length payload);
      match Hypervisor.decap_vxlan sender_hv packet with
      | Some (group, vms, payload') ->
          Alcotest.(check int) "group from VNI" 33 group;
          Alcotest.(check int) "local fan-out" 2 vms;
          Alcotest.(check bytes) "payload back" payload payload'
      | None -> Alcotest.fail "expected decap to succeed")

let test_decap_discards_unknown_group () =
  let topo = Topology.running_example () in
  let fabric = Fabric.create topo in
  let hv = Hypervisor.create fabric ~host:5 in
  let packet = Vxlan.encode sample ~inner:(Bytes.of_string "zz") in
  Alcotest.(check bool) "no receiver rule -> discard" true
    (Hypervisor.decap_vxlan hv packet = None)

let prop_roundtrip =
  QCheck.Test.make ~name:"vxlan roundtrips arbitrary fields and payloads" ~count:300
    QCheck.(
      quad (int_bound Vxlan.max_vni) (int_bound 0xFFFF)
        (string_of_size Gen.(int_range 0 100))
        (pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFF)))
    (fun (vni, src_port, payload, (ip_a, ip_b)) ->
      let t =
        {
          Vxlan.src_mac = 0x020000000000 lor ip_a;
          dst_mac = 0x01005E000000 lor ip_b;
          src_ip = Int32.of_int ip_a;
          dst_ip = Int32.of_int ip_b;
          src_port;
          vni;
        }
      in
      let inner = Bytes.of_string payload in
      match Vxlan.decode (Vxlan.encode t ~inner) with
      | Ok (t', inner') -> t' = t && Bytes.equal inner inner'
      | Error _ -> false)

let tests =
  [
    Alcotest.test_case "overhead constant" `Quick test_overhead_constant;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "empty inner" `Quick test_empty_inner;
    Alcotest.test_case "checksum detects corruption" `Quick
      test_checksum_detects_corruption;
    Alcotest.test_case "rejects non-vxlan" `Quick test_rejects_non_vxlan;
    Alcotest.test_case "encode validation" `Quick test_encode_validation;
    Alcotest.test_case "hypervisor vxlan path" `Quick test_hypervisor_vxlan_path;
    Alcotest.test_case "decap discards unknown group" `Quick
      test_decap_discards_unknown_group;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
