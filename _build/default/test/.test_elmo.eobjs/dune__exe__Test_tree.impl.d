test/test_tree.ml: Alcotest Bitmap Gen List Option QCheck QCheck_alcotest Topology Tree
