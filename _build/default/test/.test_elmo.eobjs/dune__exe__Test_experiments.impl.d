test/test_experiments.ml: Ablation Alcotest Bisection Churn Comparison Control_plane Fig7 Group_dist Header_codec List Params Prule Scalability Stats Strawman Topology Vm_placement
