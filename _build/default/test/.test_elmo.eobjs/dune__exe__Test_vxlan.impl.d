test/test_vxlan.ml: Alcotest Bytes Char Encoding Fabric Gen Hypervisor Int32 Params QCheck QCheck_alcotest Srule_state Topology Traffic Tree Vxlan
