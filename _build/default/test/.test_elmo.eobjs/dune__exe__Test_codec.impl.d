test/test_codec.ml: Alcotest Bitio Bitmap Bytes Encoding Format Gen Header_codec List Params Prule QCheck QCheck_alcotest Srule_state Topology Tree
