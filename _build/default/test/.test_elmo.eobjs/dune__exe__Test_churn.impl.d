test/test_churn.ml: Alcotest Array Churn Controller Encoding Fabric Group_dist Li_et_al List Params Printf Rng Srule_state Topology Tree Vm_placement Workload
