test/test_p4gen.ml: Alcotest Clustering Encoding List P4gen Params Printf Srule_state String Topology Tree
