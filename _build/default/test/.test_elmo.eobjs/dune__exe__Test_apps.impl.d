test/test_apps.ml: Alcotest Bytes Encoding Fabric Header_codec Hypervisor List Params Printf Prule Pubsub Srule_state Telemetry Topology Tree
