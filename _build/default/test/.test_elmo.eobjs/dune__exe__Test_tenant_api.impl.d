test/test_tenant_api.ml: Alcotest Array Controller Encoding Fabric List Option Params Rng Tenant_api Topology Vm_placement
