test/test_clustering.ml: Alcotest Array Bitmap Clustering Gen List Min_k_union Params Printf Prule QCheck QCheck_alcotest String
