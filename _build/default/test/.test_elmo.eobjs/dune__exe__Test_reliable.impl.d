test/test_reliable.ml: Alcotest Ecmp Encoding Fabric List Params Reliable Srule_state Topology Tree
