test/test_traffic_fabric.ml: Alcotest Bitmap Ecmp Encoding Fabric List Option Params Printf Prule QCheck QCheck_alcotest Srule_state String Topology Traffic Tree
