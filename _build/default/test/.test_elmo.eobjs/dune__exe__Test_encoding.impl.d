test/test_encoding.ml: Alcotest Array Bitmap Bytes Clustering Encoding Header_codec List Params Printf Prule QCheck QCheck_alcotest Rng Srule_state String Topology Tree
