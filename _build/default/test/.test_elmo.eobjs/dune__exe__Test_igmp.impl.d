test/test_igmp.ml: Alcotest Bytes Char Controller Igmp Int32 List Option Params QCheck QCheck_alcotest Rng Tenant_api Topology Vm_placement
