test/test_topology.ml: Alcotest List QCheck QCheck_alcotest Topology
