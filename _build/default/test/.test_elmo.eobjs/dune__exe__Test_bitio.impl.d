test/test_bitio.ml: Alcotest Bitio Bitmap Bytes List Printf QCheck QCheck_alcotest String
