test/test_baselines.ml: Alcotest Array Bier_sgm Bytes Gen Ip_multicast Li_et_al List Printf QCheck QCheck_alcotest Result Topology Tree Unicast_overlay
