test/test_misc.ml: Alcotest Astring Controller Ecmp Encoding Fabric Format List Multidc Params Prule Srule_state String Topology Tree
