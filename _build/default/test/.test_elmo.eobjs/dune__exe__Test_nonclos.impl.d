test/test_nonclos.ml: Alcotest Array Bitmap Clustering Flat_encoding Graph_topology List Nonclos_exp Printf Prule QCheck QCheck_alcotest Rng Stats
