test/test_elmo.mli:
