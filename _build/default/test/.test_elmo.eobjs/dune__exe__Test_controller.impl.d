test/test_controller.ml: Alcotest Array Bitmap Controller Ecmp Encoding Fabric Hashtbl List Option Params Printf Prule QCheck QCheck_alcotest Srule_state String Topology Tree
