test/test_placement.ml: Alcotest Array Group_dist Hashtbl List Option Rng Stats Topology Vm_placement Workload
