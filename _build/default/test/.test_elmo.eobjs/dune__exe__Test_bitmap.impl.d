test/test_bitmap.ml: Alcotest Bitmap Bytes List Printf QCheck QCheck_alcotest String
