test/test_extensions.ml: Alcotest Clustering Encoding Fabric List Multidc Params Prule Srule_state Topology Tree
