(* Extensions from the paper's discussion sections: two-tier fabrics
   (§5.1.1 "qualitatively similar results"), incremental deployment with
   legacy switches (§7), and multi-datacenter relay multicast (§7). *)

let topo = Topology.running_example ()
let h = topo.Topology.hosts_per_leaf
let fig3_hosts = [ 0; 1; (5 * h) + 2; (6 * h) + 4; (6 * h) + 5; (7 * h) + 7 ]

(* {1 Two-tier} *)

let test_two_tier_header_has_no_spine_section () =
  let tt = Topology.leaf_spine ~leaves:8 ~spines:4 ~hosts_per_leaf:8 in
  let tree = Tree.of_members tt [ 0; 9; 17; 25 ] in
  let srules = Srule_state.create tt ~fmax:100 in
  let enc = Encoding.encode Params.default srules tree in
  let hd = Encoding.header_for_sender enc ~sender:0 in
  Alcotest.(check int) "no d-spine rules" 0 (List.length hd.Prule.d_spine);
  Alcotest.(check bool) "no d-spine default" true (hd.Prule.d_spine_default = None);
  Alcotest.(check bool) "no core rule" true (hd.Prule.core = None);
  (* Still delivers. *)
  let fabric = Fabric.create tt in
  Fabric.install_encoding fabric ~group:1 enc;
  let report = Fabric.inject fabric ~sender:0 ~group:1 ~header:hd ~payload:64 in
  Alcotest.(check bool) "delivers" true
    (Fabric.deliveries_correct report ~tree ~sender:0)

(* {1 Legacy switches} *)

let legacy_setup ~legacy_leaves ~encode_aware =
  let tree = Tree.of_members topo fig3_hosts in
  let srules = Srule_state.create topo ~fmax:100 in
  let legacy_leaf l = List.mem l legacy_leaves in
  let enc =
    if encode_aware then Encoding.encode ~legacy_leaf Params.default srules tree
    else Encoding.encode Params.default srules tree
  in
  let fabric = Fabric.create topo in
  List.iter (fun l -> Fabric.set_leaf_legacy fabric l true) legacy_leaves;
  Fabric.install_encoding fabric ~group:1 enc;
  (tree, enc, fabric)

let test_legacy_leaf_without_srule_loses_receivers () =
  (* The controller is unaware that L6 is legacy: its receivers are lost. *)
  let tree, _, fabric = legacy_setup ~legacy_leaves:[ 6 ] ~encode_aware:false in
  let srules = Srule_state.create topo ~fmax:100 in
  let enc = Encoding.encode Params.default srules tree in
  let hd = Encoding.header_for_sender enc ~sender:0 in
  let report = Fabric.inject fabric ~sender:0 ~group:1 ~header:hd ~payload:64 in
  Alcotest.(check bool) "members behind legacy leaf missed" false
    (Fabric.deliveries_correct report ~tree ~sender:0);
  Alcotest.(check bool) "others still served" true
    (List.mem_assoc ((5 * h) + 2) report.Fabric.delivered)

let test_legacy_aware_encoding_installs_srules () =
  let tree, enc, fabric = legacy_setup ~legacy_leaves:[ 6 ] ~encode_aware:true in
  Alcotest.(check bool) "s-rule forced for legacy leaf" true
    (List.mem_assoc 6 enc.Encoding.d_leaf.Clustering.srules);
  Alcotest.(check bool) "legacy leaf not in any p-rule" true
    (List.for_all
       (fun r -> not (List.mem 6 r.Prule.switches))
       enc.Encoding.d_leaf.Clustering.prules);
  let hd = Encoding.header_for_sender enc ~sender:0 in
  let report = Fabric.inject fabric ~sender:0 ~group:1 ~header:hd ~payload:64 in
  Alcotest.(check bool) "delivery restored" true
    (Fabric.deliveries_correct report ~tree ~sender:0)

let test_legacy_table_overflow_falls_to_default () =
  (* A legacy leaf with a full group table cannot be served at all: the
     encoder puts it in the default rule, which the legacy switch cannot
     parse — the paper's "legacy group tables remain the bottleneck". *)
  let tree = Tree.of_members topo fig3_hosts in
  let srules = Srule_state.create topo ~fmax:0 in
  let enc = Encoding.encode ~legacy_leaf:(fun l -> l = 6) Params.default srules tree in
  (match enc.Encoding.d_leaf.Clustering.default with
  | Some (ids, _) -> Alcotest.(check (list int)) "legacy leaf defaulted" [ 6 ] ids
  | None -> Alcotest.fail "expected default");
  let fabric = Fabric.create topo in
  Fabric.set_leaf_legacy fabric 6 true;
  Fabric.install_encoding fabric ~group:1 enc;
  let hd = Encoding.header_for_sender enc ~sender:0 in
  let report = Fabric.inject fabric ~sender:0 ~group:1 ~header:hd ~payload:64 in
  Alcotest.(check bool) "receivers behind it are lost" false
    (Fabric.deliveries_correct report ~tree ~sender:0)

let test_legacy_spine_served_by_pod_srule () =
  let tree = Tree.of_members topo fig3_hosts in
  let srules = Srule_state.create topo ~fmax:100 in
  (* Pod 3's spines are legacy. *)
  let enc = Encoding.encode ~legacy_pod:(fun p -> p = 3) Params.default srules tree in
  Alcotest.(check bool) "pod s-rule forced" true
    (List.mem_assoc 3 enc.Encoding.d_spine.Clustering.srules);
  let fabric = Fabric.create topo in
  List.iter (fun s -> Fabric.set_spine_legacy fabric s true) (Topology.spines_of_pod topo 3);
  Fabric.install_encoding fabric ~group:1 enc;
  let hd = Encoding.header_for_sender enc ~sender:0 in
  let report = Fabric.inject fabric ~sender:0 ~group:1 ~header:hd ~payload:64 in
  Alcotest.(check bool) "delivers through legacy pod" true
    (Fabric.deliveries_correct report ~tree ~sender:0)

(* {1 Multi-datacenter} *)

let test_multidc_delivery () =
  let dc_a = Fabric.create topo in
  let dc_b = Fabric.create (Topology.running_example ()) in
  let m = Multidc.create Params.default [ dc_a; dc_b ] in
  Alcotest.(check int) "two DCs" 2 (Multidc.datacenters m);
  let members = [ (0, 0); (0, 1); (0, 42); (1, 5); (1, 17); (1, 60) ] in
  Multidc.add_group m ~group:9 members;
  let report = Multidc.send m ~group:9 ~sender_dc:0 ~sender:0 in
  Alcotest.(check int) "one WAN unicast" 1 report.Multidc.wan_unicasts;
  Alcotest.(check bool) "all members exactly once" true
    (Multidc.deliveries_correct m ~group:9 ~sender_dc:0 ~sender:0 report)

let test_multidc_single_dc_group () =
  let dc_a = Fabric.create topo in
  let dc_b = Fabric.create topo in
  let m = Multidc.create Params.default [ dc_a; dc_b ] in
  Multidc.add_group m ~group:1 [ (0, 0); (0, 9) ];
  let report = Multidc.send m ~group:1 ~sender_dc:0 ~sender:0 in
  Alcotest.(check int) "no WAN traffic" 0 report.Multidc.wan_unicasts;
  Alcotest.(check bool) "delivered" true
    (Multidc.deliveries_correct m ~group:1 ~sender_dc:0 ~sender:0 report)

let test_multidc_sender_in_memberless_dc () =
  let dc_a = Fabric.create topo in
  let dc_b = Fabric.create topo in
  let m = Multidc.create Params.default [ dc_a; dc_b ] in
  Multidc.add_group m ~group:1 [ (1, 5); (1, 30) ];
  let report = Multidc.send m ~group:1 ~sender_dc:0 ~sender:0 in
  Alcotest.(check int) "one WAN unicast" 1 report.Multidc.wan_unicasts;
  Alcotest.(check bool) "remote members served" true
    (Multidc.deliveries_correct m ~group:1 ~sender_dc:0 ~sender:0 report)

let test_multidc_remove_group_releases () =
  let dc_a = Fabric.create topo in
  let m = Multidc.create Params.default [ dc_a ] in
  Multidc.add_group m ~group:1 [ (0, 0); (0, 9); (0, 42) ];
  Multidc.remove_group m ~group:1;
  Alcotest.check_raises "gone" Not_found (fun () ->
      ignore (Multidc.send m ~group:1 ~sender_dc:0 ~sender:0));
  (* Re-adding under the same id works (state was fully released). *)
  Multidc.add_group m ~group:1 [ (0, 0); (0, 9) ];
  let report = Multidc.send m ~group:1 ~sender_dc:0 ~sender:0 in
  Alcotest.(check bool) "works after re-add" true
    (Multidc.deliveries_correct m ~group:1 ~sender_dc:0 ~sender:0 report)

let test_multidc_validation () =
  let dc_a = Fabric.create topo in
  let m = Multidc.create Params.default [ dc_a ] in
  Alcotest.check_raises "unknown dc"
    (Invalid_argument "Multidc.add_group: unknown datacenter") (fun () ->
      Multidc.add_group m ~group:1 [ (1, 0) ]);
  Alcotest.check_raises "duplicate member"
    (Invalid_argument "Multidc.add_group: duplicate member") (fun () ->
      Multidc.add_group m ~group:1 [ (0, 0); (0, 0) ]);
  Alcotest.check_raises "no datacenters"
    (Invalid_argument "Multidc.create: no datacenters") (fun () ->
      ignore (Multidc.create Params.default []))

let tests =
  [
    Alcotest.test_case "two-tier: no spine section" `Quick
      test_two_tier_header_has_no_spine_section;
    Alcotest.test_case "legacy leaf unaware: loss" `Quick
      test_legacy_leaf_without_srule_loses_receivers;
    Alcotest.test_case "legacy-aware encoding: s-rules" `Quick
      test_legacy_aware_encoding_installs_srules;
    Alcotest.test_case "legacy table overflow" `Quick
      test_legacy_table_overflow_falls_to_default;
    Alcotest.test_case "legacy spines via pod s-rule" `Quick
      test_legacy_spine_served_by_pod_srule;
    Alcotest.test_case "multi-DC delivery" `Quick test_multidc_delivery;
    Alcotest.test_case "multi-DC single-DC group" `Quick test_multidc_single_dc_group;
    Alcotest.test_case "multi-DC memberless sender DC" `Quick
      test_multidc_sender_in_memberless_dc;
    Alcotest.test_case "multi-DC remove releases" `Quick test_multidc_remove_group_releases;
    Alcotest.test_case "multi-DC validation" `Quick test_multidc_validation;
  ]
