.PHONY: all check test bench bench-churn clean

all:
	dune build

# Tier-1 verification: everything compiles and the full suite passes.
check:
	dune build && dune runtest

test: check

bench:
	dune exec bench/main.exe -- all

# Churn microbenchmark for the incremental encoding engine; writes
# BENCH_churn.json (events/sec, fast-path hit rate, p99 re-encode time).
bench-churn:
	dune exec bench/main.exe -- churn

clean:
	dune clean
