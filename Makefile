.PHONY: all check test lint bench bench-churn bench-hotpath bench-parallel bench-faults bench-recovery bench-shard bench-telemetry bench-verify clean

all:
	dune build

# Tier-1 verification: everything compiles (including benches and examples),
# the static-analysis pass is clean, and the full suite passes.
check:
	dune build @all @lint && dune runtest

test: check

# elmo-lint over every library's typed AST (incremental: per-library alias
# rules depend on the .cmt files, so only touched libraries re-lint).
lint:
	dune build @lint

bench:
	dune exec bench/main.exe -- all

# Churn microbenchmark for the incremental encoding engine; writes
# BENCH_churn.json (events/sec, fast-path hit rate, p99 re-encode time).
bench-churn:
	dune exec bench/main.exe -- churn

# Hot-path kernel benchmark: raw apply_delta churn throughput with a
# Gc.minor_words allocation probe (exits nonzero if the zero-alloc claim
# breaks at runtime); writes BENCH_hotpath.json and compares events/sec
# against the incremental controller in BENCH_churn.json when present.
bench-hotpath:
	dune exec bench/main.exe -- hotpath

# Domain-scaling benchmark for the two-phase batch controller; writes
# BENCH_parallel.json (groups/sec at 1/2/4 domains vs the sequential
# add_group baseline, with commit-conflict counts).
bench-parallel:
	dune exec bench/main.exe -- parallel

# Fault-injection sweep for the fault-tolerant control plane; writes
# BENCH_faults.json (degradation-induced extra traffic vs fault rate, with
# blackhole counts that must stay at zero).
bench-faults:
	dune exec bench/main.exe -- faults

# Durable-recovery benchmark: fenced failover latency vs snapshot cadence
# plus a seeded bit-flip/torn-write corruption sweep; every recovery is
# re-verified symbolically (exits nonzero on any violation); writes
# BENCH_recovery.json (ELMO_RECOVERY_EVENTS / ELMO_RECOVERY_TRIALS scale it).
bench-recovery:
	dune exec bench/main.exe -- recovery

# Sharded-commit scaling: batch install and churn throughput of the per-pod
# control plane across 1/2/4/8 domains, with occupancy-checksum, conflict
# and predicate-identity cross-checks vs the sequential controller; writes
# BENCH_shard.json (ELMO_SHARD_GROUPS scales the group count).
bench-shard:
	dune exec bench/main.exe -- shard

# Telemetry baseline: Zipf-skewed packet workload through the oblivious
# encoder with the dataplane recorder attached; writes BENCH_telemetry.json
# (per-link max/mean utilization, elephant groups vs exact counts, sketch
# bound validation — the "before" number for a TE-aware encoder;
# ELMO_TE_GROUPS / ELMO_TE_PACKETS scale the workload).
bench-telemetry:
	dune exec bench/main.exe -- te-baseline

# Symbolic-verification throughput: compile every installed group to its
# canonical delivery predicate and check it against the membership intent;
# writes BENCH_verify.json (ELMO_VERIFY_GROUPS scales the group count).
bench-verify:
	dune exec bench/main.exe -- verify

clean:
	dune clean
