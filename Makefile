.PHONY: all check test bench bench-churn bench-parallel clean

all:
	dune build

# Tier-1 verification: everything compiles (including benches and examples)
# and the full suite passes.
check:
	dune build @all && dune runtest

test: check

bench:
	dune exec bench/main.exe -- all

# Churn microbenchmark for the incremental encoding engine; writes
# BENCH_churn.json (events/sec, fast-path hit rate, p99 re-encode time).
bench-churn:
	dune exec bench/main.exe -- churn

# Domain-scaling benchmark for the two-phase batch controller; writes
# BENCH_parallel.json (groups/sec at 1/2/4 domains vs the sequential
# add_group baseline, with commit-conflict counts).
bench-parallel:
	dune exec bench/main.exe -- parallel

clean:
	dune clean
