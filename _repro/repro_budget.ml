(* Repro: a Leave from a shared p-rule can push the rule past the
   redundancy budget R with no fallback. *)
let () =
  let topo = Topology.running_example () in
  let h = topo.Topology.hosts_per_leaf in
  (* r=0, hmax_leaf=1: leaves 0 and 1 have identical {port0,port1} bitmaps
     and share a p-rule (hamming 0). *)
  let params = Params.create ~r:0 ~hmax_leaf:1 ~header_budget:None () in
  let srules = Srule_state.create topo ~fmax:params.Params.fmax in
  let hosts = [ 0; 1; h; h + 1 ] in
  let enc = Encoding.encode params srules (Tree.of_members topo hosts) in
  let shared =
    List.find
      (fun (r : Prule.prule) -> List.length r.Prule.switches > 1)
      enc.Encoding.d_leaf.Clustering.prules
  in
  Printf.printf "shared rule switches: %s, bitmap %s\n"
    (String.concat "," (List.map string_of_int shared.Prule.switches))
    (Bitmap.to_string shared.Prule.bitmap);
  (* Host 1 (leaf 0, port 1) leaves; leaf 0 keeps host 0. *)
  (match Encoding.apply_delta enc (Encoding.delta_of_host topo ~joining:false 1) with
  | Encoding.Applied a ->
      Printf.printf "fast path applied at site=%s\n"
        (match a.Encoding.site with
        | Encoding.Site_prule -> "prule"
        | Encoding.Site_srule -> "srule"
        | Encoding.Site_default -> "default")
  | Encoding.Reencode _ -> Printf.printf "fell back to re-encode\n");
  (* Check the budget of the (possibly mutated) shared rule. *)
  let exacts =
    List.map
      (fun l ->
        match Tree.leaf_bitmap enc.Encoding.tree l with
        | Some bm -> bm
        | None -> failwith "leaf gone")
      shared.Prule.switches
  in
  let ok =
    Clustering.rule_within_budget ~r:params.Params.r
      ~semantics:params.Params.r_semantics ~exacts shared.Prule.bitmap
  in
  Printf.printf "rule bitmap now %s; within R budget: %b\n"
    (Bitmap.to_string shared.Prule.bitmap) ok;
  if not ok then exit 1
