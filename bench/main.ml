(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured numbers).

   Usage: main.exe [target ...]
   Targets: fig4 fig5 uniform constrained table2 failures fig6 sflow fig7
            table3 ablation twotier nonclos legacy bisection strawman churn
            hotpath parallel faults shard te-baseline verify micro all
            (default: all)

   Scale: ELMO_GROUPS=<n> sets the sampled group count (default 100_000);
   ELMO_FULL=1 runs the paper's full million groups.

   Observability: --metrics prints the elmo_obs registry dump after the
   selected targets; --trace additionally records spans and writes
   BENCH_trace.json (Chrome trace_event format — load it in chrome://tracing
   or Perfetto). ELMO_TRACE_CLOCK=mono opts into wall-clock timestamps;
   the default logical clock keeps traced runs byte-deterministic. *)

module Obs = Elmo_obs.Obs
module Obs_ctx = Elmo_obs.Ctx
module Obs_clock = Elmo_obs.Clock
module Obs_metrics = Elmo_obs.Metrics
module Obs_trace = Elmo_obs.Trace
module Provenance = Elmo_obs.Provenance
module Tel_report = Elmo_telemetry.Report
module Tel_recorder = Elmo_telemetry.Recorder
module Tel_series = Elmo_telemetry.Link_series
module Tel_sketch = Elmo_telemetry.Sketch
module Tel_flight = Elmo_telemetry.Flight_recorder

let printf = Format.printf

(* Extra JSON field carrying the metrics dump when --metrics/--trace is on;
   empty otherwise so the benchmark files are byte-identical by default. *)
let metrics_field () =
  match Obs_ctx.metrics (Obs.current ()) with
  | Some m -> Printf.sprintf ",\n  \"metrics\": %s" (Obs_metrics.to_json m)
  | None -> ""

(* Run [f] with a metrics registry guaranteed present: targets whose JSON
   embeds a "metrics" block install a local registry when the user did not
   pass --metrics/--trace, and restore the previous context afterwards.
   With an ambient registry already active, [f] runs under it unchanged so
   --metrics keeps aggregating across targets. *)
let with_local_metrics f =
  let prev = Obs.current () in
  if Obs_ctx.active prev then f ()
  else begin
    let metrics = Obs_metrics.create () in
    Obs.install (Obs_ctx.make ~metrics ~clock:(Obs_ctx.clock prev) ());
    Fun.protect ~finally:(fun () -> Obs.install prev) f
  end

let hr title =
  printf "@.============================================================@.";
  printf "%s@." title;
  printf "============================================================@."

(* {1 Figures 4 and 5: scalability sweep} *)

let r_values = [ 0; 3; 6; 9; 12 ]

let print_points points =
  printf "@.%-4s %-10s %-10s %-22s %-22s %-12s %-12s@." "R" "covered%"
    "pure-p%" "leaf s-rules mean/max" "spine s-rules mean/max" "ovh 64B"
    "ovh 1500B";
  List.iter
    (fun (p : Scalability.point) ->
      let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 p.Scalability.total_groups) in
      printf "%-4d %-10.1f %-10.1f %9.1f / %-10.0f %9.1f / %-10.0f %-12.1f %-12.1f@."
        p.Scalability.r
        (pct p.Scalability.covered)
        (pct p.Scalability.covered_pure_prules)
        p.Scalability.leaf_srules.Stats.mean p.Scalability.leaf_srules.Stats.max
        p.Scalability.spine_srules.Stats.mean p.Scalability.spine_srules.Stats.max
        (100.0 *. p.Scalability.overhead_64)
        (100.0 *. p.Scalability.overhead_1500))
    points;
  match points with
  | p :: _ ->
      printf
        "reference lines: unicast +%.0f%%, overlay +%.0f%% (transmissions vs ideal)@."
        (100.0 *. p.Scalability.unicast_overhead)
        (100.0 *. p.Scalability.overlay_overhead);
      printf "header bytes: %a@." Stats.pp_summary p.Scalability.header_bytes;
      printf "Li et al. entries: leaf %a@.                   spine %a@."
        Stats.pp_summary p.Scalability.li_leaf_entries Stats.pp_summary
        p.Scalability.li_spine_entries
  | [] -> ()

let fig4 () =
  hr "Figure 4: P=12 placement, WVE group sizes";
  let cfg = Scalability.default_config () in
  printf "topology: %a; groups: %d; params: %a@." Topology.pp
    cfg.Scalability.topo cfg.Scalability.total_groups Params.pp
    cfg.Scalability.params;
  print_points (Scalability.run cfg ~r_values)

let fig5 () =
  hr "Figure 5: P=1 placement (dispersed), WVE group sizes";
  let cfg =
    { (Scalability.default_config ()) with
      Scalability.strategy = Vm_placement.Pack_up_to 1 }
  in
  print_points (Scalability.run cfg ~r_values)

let uniform () =
  hr "In-text: Uniform group-size distribution";
  List.iter
    (fun (label, strategy) ->
      printf "@.--- %s ---@." label;
      let cfg =
        { (Scalability.default_config ()) with
          Scalability.strategy; dist = Group_dist.Uniform }
      in
      print_points (Scalability.run cfg ~r_values:[ 0; 12 ]))
    [ ("P=12", Vm_placement.Pack_up_to 12); ("P=1", Vm_placement.Pack_up_to 1) ]

let constrained () =
  hr "In-text: constrained s-rule capacity (10K) and reduced header budget";
  let base = Scalability.default_config () in
  let scale = base.Scalability.total_groups in
  let fmax10k = max 50 (10_000 * scale / 1_000_000) in
  List.iter
    (fun (label, strategy, dist, params) ->
      printf "@.--- %s ---@." label;
      let cfg = { base with Scalability.strategy; dist; params } in
      print_points (Scalability.run cfg ~r_values:[ 0; 6; 12 ]))
    [
      ( "P=1, WVE, Fmax=10K-scaled",
        Vm_placement.Pack_up_to 1,
        Group_dist.Wve,
        Params.create ~fmax:fmax10k () );
      ( "P=1, Uniform, Fmax=10K-scaled",
        Vm_placement.Pack_up_to 1,
        Group_dist.Uniform,
        Params.create ~fmax:fmax10k () );
      ( "P=1, WVE, Fmax=10K-scaled, header 125B (~10 leaf p-rules)",
        Vm_placement.Pack_up_to 1,
        Group_dist.Wve,
        Params.create ~fmax:fmax10k ~header_budget:(Some 125) ~hmax_leaf:10 () );
      ( "P=12, WVE, Fmax=10K-scaled, header 125B",
        Vm_placement.Pack_up_to 12,
        Group_dist.Wve,
        Params.create ~fmax:fmax10k ~header_budget:(Some 125) ~hmax_leaf:10 () );
    ]

let twotier () =
  hr "Extension: two-tier leaf-spine topology (paper: 'qualitatively similar')";
  let topo = Topology.leaf_spine ~leaves:576 ~spines:16 ~hosts_per_leaf:48 in
  let cfg = { (Scalability.default_config ()) with Scalability.topo } in
  printf "topology: %a@." Topology.pp topo;
  print_points (Scalability.run cfg ~r_values:[ 0; 6; 12 ])

let nonclos () =
  hr "Extension 5.1.2: non-Clos topologies (Xpander vs Jellyfish)";
  let groups = min 2_000 ((Scalability.default_config ()).Scalability.total_groups) in
  List.iter
    (fun r ->
      printf "@.R = %d:@." r;
      List.iter
        (fun res -> printf "%a@." Nonclos_exp.pp_result res)
        (Nonclos_exp.run ~groups ~r ()))
    [ 0; 12 ];
  printf
    "@.(paper's qualitative claim: symmetric topologies share bitmaps more readily than random ones)@."

let legacy () =
  hr "Extension 7: incremental deployment with legacy switches";
  let cfg = Scalability.default_config () in
  let topo = cfg.Scalability.topo in
  let placement =
    let rng = Rng.create cfg.Scalability.seed in
    let tenant_sizes = Vm_placement.default_tenant_sizes rng cfg.Scalability.tenants in
    Vm_placement.place rng topo ~strategy:cfg.Scalability.strategy ~host_capacity:20
      ~tenant_sizes
  in
  let total_groups = min 20_000 cfg.Scalability.total_groups in
  printf "@.%-18s %-14s %-22s %-14s@." "legacy leaves" "s-rule groups"
    "leaf s-rules mean/max" "lost groups";
  List.iter
    (fun percent ->
      let legacy_leaf l = l * 100 / Topology.num_leaves topo < percent in
      let params = cfg.Scalability.params in
      let srules = Srule_state.create topo ~fmax:params.Params.fmax in
      let rng = Rng.create (cfg.Scalability.seed + 1) in
      let with_srules = ref 0 in
      let lost = ref 0 in
      Workload.iter rng placement ~kind:cfg.Scalability.dist ~total_groups
        (fun g ->
          let tree = Tree.of_members topo (Array.to_list g.Workload.member_hosts) in
          let enc = Encoding.encode ~legacy_leaf params srules tree in
          if Encoding.srule_entries enc > 0 then incr with_srules;
          (* A defaulted legacy leaf cannot parse the header: receivers lost. *)
          match enc.Encoding.d_leaf.Clustering.default with
          | Some (ids, _) when List.exists legacy_leaf ids -> incr lost
          | Some _ | None -> ());
      let occ = Stats.summarize (Stats.of_ints (Srule_state.leaf_occupancy srules)) in
      printf "%-18s %-14d %9.1f / %-10.0f %-14d@."
        (Printf.sprintf "%d%%" percent)
        !with_srules occ.Stats.mean occ.Stats.max !lost)
    [ 0; 25; 50 ];
  printf
    "(the paper's caveat reproduced: legacy group tables become the scalability bottleneck)@."

let strawman () =
  hr "Appendix A: match-action p-rule lookup vs parser-based matching";
  printf "@.The appendix's example (ten 11-bit p-rules):@.%a@." Strawman.pp_cost
    (Strawman.appendix_example ());
  let topo = Topology.facebook_fabric () in
  printf "@.A full downstream-leaf section on the 27k-host fabric:@.%a@."
    Strawman.pp_cost
    (Strawman.leaf_layer_cost topo Params.default)

let bisection () =
  hr "Extension (Table 3): bisection-bandwidth utilization, ECMP vs pinned trees";
  let groups = min 20_000 ((Scalability.default_config ()).Scalability.total_groups) in
  List.iter
    (fun r -> printf "@.%a@." Bisection.pp_result r)
    (Bisection.run ~groups ())

(* {1 Table 2 and failures: control plane} *)

let control_result = ref None

let control () =
  match !control_result with
  | Some r -> r
  | None ->
      let cfg = Control_plane.default_config () in
      let r = Control_plane.run cfg in
      control_result := Some r;
      r

let table2 () =
  hr "Table 2: control-plane updates per second under churn (P=1, WVE)";
  let r = control () in
  printf "%a@." Control_plane.pp_table2 r.Control_plane.churn

let failures () =
  hr "In-text 5.1.3b: spine and core failures";
  let r = control () in
  printf "%a@." Control_plane.pp_failures r

(* {1 Figure 6 and sFlow: applications} *)

let app_hosts topo rng n =
  (* receivers spread across the fabric, source at host 0 *)
  let hosts = Array.init (Topology.num_hosts topo - 1) (fun i -> i + 1) in
  Rng.shuffle rng hosts;
  Array.to_list (Array.sub hosts 0 n)

let fig6 () =
  hr "Figure 6: ZeroMQ-style pub-sub (requests/s and publisher CPU)";
  let topo = Topology.facebook_fabric () in
  let fabric = Fabric.create topo in
  let rng = Rng.create 7 in
  let subscribers = app_hosts topo rng 256 in
  let sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ] in
  printf "@.%-6s %-24s %-24s %-10s@." "subs" "unicast rps / cpu%" "elmo rps / cpu%"
    "delivered";
  List.iter
    (fun n ->
      let subs = List.filteri (fun i _ -> i < n) subscribers in
      let u = Pubsub.run fabric ~publisher:0 ~subscribers:subs Pubsub.Unicast in
      let e = Pubsub.run fabric ~publisher:0 ~subscribers:subs Pubsub.Elmo in
      printf "%-6d %10.0f / %-10.1f %10.0f / %-10.1f %-10b@." n
        u.Pubsub.throughput_rps u.Pubsub.cpu_percent e.Pubsub.throughput_rps
        e.Pubsub.cpu_percent e.Pubsub.all_delivered)
    sizes

let sflow () =
  hr "In-text 5.2.2: sFlow host telemetry (agent egress bandwidth)";
  let topo = Topology.facebook_fabric () in
  let fabric = Fabric.create topo in
  let rng = Rng.create 8 in
  let collectors = app_hosts topo rng 64 in
  printf "@.%-12s %-16s %-16s@." "collectors" "unicast Kbps" "elmo Kbps";
  List.iter
    (fun n ->
      let cs = List.filteri (fun i _ -> i < n) collectors in
      let u = Telemetry.run fabric ~agent:0 ~collectors:cs Telemetry.Unicast in
      let e = Telemetry.run fabric ~agent:0 ~collectors:cs Telemetry.Elmo in
      printf "%-12d %-16.1f %-16.1f@." n u.Telemetry.egress_kbps
        e.Telemetry.egress_kbps)
    [ 1; 2; 4; 8; 16; 32; 64 ]

(* {1 Figure 7: hypervisor encapsulation} *)

let fig7 () =
  hr "Figure 7: hypervisor encapsulation throughput vs number of p-rules";
  let topo = Topology.facebook_fabric () in
  let points = Fig7.run topo [ 0; 5; 10; 15; 20; 25; 30 ] in
  List.iter (fun p -> printf "%a@." Fig7.pp_point p) points;
  printf
    "(claim reproduced: single-write Gbps stays roughly flat while per-rule \
     writes degrade with rule count)@."

(* {1 Table 3 and the D1-D5 ablation} *)

let table3 () =
  hr "Table 3: scheme comparison (5,000-entry group tables, 325 B header)";
  Comparison.pp_table Format.std_formatter
    (Comparison.rows ~table_capacity:5_000 ~header_budget:325)

let ablation () =
  hr "Ablation: design decisions D1-D5 on the running example (Fig. 3a)";
  List.iter (fun s -> printf "%a@." Ablation.pp_step s) (Ablation.run ());
  let base = Scalability.default_config () in
  let small = min 20_000 base.Scalability.total_groups in
  let sweep label cfgs =
    printf "@.%s (P=12, %dk groups):@." label (small / 1000);
    printf "  %-24s %-10s %-10s %-12s %-14s@." "variant" "covered%" "pure-p%"
      "hdr mean B" "ovh 1500B %";
    List.iter
      (fun (name, params) ->
        let cfg =
          { base with Scalability.total_groups = small; params }
        in
        let p = Scalability.run_point cfg ~r:12 in
        printf "  %-24s %-10.1f %-10.1f %-12.1f %-14.1f@." name
          (100.0 *. float_of_int p.Scalability.covered
          /. float_of_int (max 1 p.Scalability.total_groups))
          (100.0 *. float_of_int p.Scalability.covered_pure_prules
          /. float_of_int (max 1 p.Scalability.total_groups))
          p.Scalability.header_bytes.Stats.mean
          (100.0 *. p.Scalability.overhead_1500))
      cfgs
  in
  let fmax = max 50 (30_000 * small / 1_000_000) in
  sweep "R-semantics ablation"
    [
      ("Sum (default)", Params.create ~r_semantics:Params.Sum ~fmax ());
      ("Per_bitmap", Params.create ~r_semantics:Params.Per_bitmap ~fmax ());
    ];
  sweep "Kmax ablation (switches per shared p-rule)"
    (List.map
       (fun k ->
         (Printf.sprintf "Kmax=%d" k, Params.create ~kmax:k ~fmax ()))
       [ 1; 2; 4; 8 ]);
  sweep "Header-budget ablation"
    (List.map
       (fun b ->
         ( Printf.sprintf "budget=%dB" b,
           Params.create ~header_budget:(Some b) ~fmax () ))
       [ 125; 200; 325; 512 ])

(* {1 Churn microbenchmark: incremental engine vs always-re-encode} *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let i = int_of_float (p /. 100.0 *. float_of_int n) in
    sorted.(max 0 (min (n - 1) i))
  end

type churn_run = {
  label : string;
  events_per_sec : float;
  fast : int;
  slow : int;
  p50_us : float;
  p99_us : float;
  max_us : float;
  total_s : float;
}

let churn () =
  hr "Churn: delta-driven re-encoding vs always-re-encode (BENCH_churn.json)";
  let topo =
    Topology.create ~pods:8 ~leaves_per_pod:8 ~spines_per_pod:4
      ~hosts_per_leaf:32 ~cores_per_plane:4
  in
  let params = Params.create ~r:12 ~header_budget:None () in
  let ngroups = 4 and group_size = 1_000 in
  let events =
    match Sys.getenv_opt "ELMO_CHURN_EVENTS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            printf "ELMO_CHURN_EVENTS must be a positive integer (got %S)@." s;
            exit 1)
    | None -> 2_000
  in
  printf "topology: %a; %d groups x %d members; %d events@." Topology.pp topo
    ngroups group_size events;
  (* Same seed on both runs: role assignment and membership evolution do not
     depend on the controller mode, so the event streams are identical. *)
  let run label ~incremental =
    let ctrl = Controller.create ~incremental topo params in
    let rng = Rng.create 97 in
    let n = Topology.num_hosts topo in
    for g = 0 to ngroups - 1 do
      let hosts = Array.init n Fun.id in
      Rng.shuffle rng hosts;
      (* A few senders, many receivers — the paper's pub-sub shape. *)
      let members =
        Array.to_list (Array.sub hosts 0 group_size)
        |> List.mapi (fun i host ->
               (host, if i < 8 then Controller.Both else Controller.Receiver))
      in
      ignore (Controller.add_group ctrl ~group:g members)
    done;
    let durations = Array.make events 0.0 in
    for ev = 0 to events - 1 do
      (* Event choice stays outside the timed region. *)
      let g = Rng.int rng ngroups in
      let members = Controller.members ctrl ~group:g in
      let count = List.length members in
      let want_join = count = 0 || (count < n && Rng.bool rng) in
      if want_join then begin
        let rec fresh () =
          let host = Rng.int rng n in
          if List.mem_assoc host members then fresh () else host
        in
        let host = fresh () in
        let t0 = Unix.gettimeofday () in
        ignore (Controller.join ctrl ~group:g ~host ~role:Controller.Receiver);
        durations.(ev) <- Unix.gettimeofday () -. t0
      end
      else begin
        let host, _ = List.nth members (Rng.int rng count) in
        let t0 = Unix.gettimeofday () in
        ignore (Controller.leave ctrl ~group:g ~host);
        durations.(ev) <- Unix.gettimeofday () -. t0
      end
    done;
    let stats = Controller.churn_stats ctrl in
    let total = Array.fold_left ( +. ) 0.0 durations in
    let sorted = Array.copy durations in
    Array.sort compare sorted;
    {
      label;
      events_per_sec =
        (if total > 0.0 then float_of_int events /. total else 0.0);
      fast = stats.Controller.fast_path;
      slow = stats.Controller.reencoded;
      p50_us = 1e6 *. percentile sorted 50.0;
      p99_us = 1e6 *. percentile sorted 99.0;
      max_us = 1e6 *. percentile sorted 100.0;
      total_s = total;
    }
  in
  let inc = run "incremental" ~incremental:true in
  let base = run "always-re-encode" ~incremental:false in
  let hit_rate r =
    let n = r.fast + r.slow in
    if n = 0 then 0.0 else 100.0 *. float_of_int r.fast /. float_of_int n
  in
  printf "@.%-18s %-12s %-12s %-10s %-10s %-10s %-8s@." "mode" "events/s"
    "fast/slow" "hit%" "p50 us" "p99 us" "total s";
  List.iter
    (fun r ->
      printf "%-18s %-12.0f %5d/%-6d %-10.1f %-10.1f %-10.1f %-8.2f@." r.label
        r.events_per_sec r.fast r.slow (hit_rate r) r.p50_us r.p99_us r.total_s)
    [ inc; base ];
  let speedup =
    if base.events_per_sec > 0.0 then inc.events_per_sec /. base.events_per_sec
    else 0.0
  in
  printf "speedup: %.1fx@." speedup;
  let json_of r =
    Printf.sprintf
      {|    {"mode": "%s", "events_per_sec": %.1f, "fast_path": %d, "reencoded": %d, "fast_path_hit_rate": %.4f, "p50_us": %.2f, "p99_us": %.2f, "max_us": %.2f, "total_s": %.4f}|}
      r.label r.events_per_sec r.fast r.slow
      (hit_rate r /. 100.0)
      r.p50_us r.p99_us r.max_us r.total_s
  in
  let prov =
    Provenance.capture ~seed:97
      ~params:(Format.asprintf "%a" Params.pp params)
      ~domains:1 ()
  in
  let oc = open_out "BENCH_churn.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "churn",
  "provenance": %s,
  "topology": {"pods": 8, "leaves_per_pod": 8, "spines_per_pod": 4, "hosts_per_leaf": 32},
  "groups": %d,
  "members_per_group": %d,
  "events": %d,
  "runs": [
%s,
%s
  ],
  "speedup": %.2f%s
}
|}
    (Provenance.to_json prov) ngroups group_size events (json_of inc)
    (json_of base) speedup (metrics_field ());
  close_out oc;
  printf "wrote BENCH_churn.json@."

(* {1 Parallel batch encoding: domain scaling of the two-phase controller} *)

type parallel_run = {
  par_label : string;
  par_domains : int;  (* 0 = per-group add_group baseline *)
  groups_per_sec : float;
  par_total_s : float;
  par_conflicts : int;
}

let parallel () =
  hr "Parallel: two-phase batch group encoding across domains (BENCH_parallel.json)";
  let topo =
    Topology.create ~pods:8 ~leaves_per_pod:8 ~spines_per_pod:4
      ~hosts_per_leaf:32 ~cores_per_plane:4
  in
  let total_groups =
    match Sys.getenv_opt "ELMO_PAR_GROUPS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            printf "ELMO_PAR_GROUPS must be a positive integer (got %S)@." s;
            exit 1)
    | None -> 4_000
  in
  let fmax = max 50 (30_000 * total_groups / 1_000_000) in
  let params = Params.create ~fmax () in
  let cores = Domain.recommended_domain_count () in
  printf "topology: %a; %d groups; fmax=%d; available cores: %d@." Topology.pp
    topo total_groups fmax cores;
  let rng = Rng.create 5 in
  let tenant_sizes = Vm_placement.default_tenant_sizes rng 200 in
  let placement =
    Vm_placement.place rng topo ~strategy:(Vm_placement.Pack_up_to 12)
      ~host_capacity:20 ~tenant_sizes
  in
  let workload_rng = Rng.create 6 in
  let groups =
    Workload.generate workload_rng placement ~kind:Group_dist.Wve ~total_groups
  in
  (* One role'd batch, shared by every run, so all modes encode the exact
     same input. *)
  let role_rng = Rng.create 9 in
  let role () =
    match Rng.int role_rng 3 with
    | 0 -> Controller.Sender
    | 1 -> Controller.Receiver
    | _ -> Controller.Both
  in
  let batch =
    Array.to_list groups
    |> List.map (fun g ->
           ( g.Workload.group_id,
             Array.to_list g.Workload.member_hosts
             |> List.map (fun h -> (h, role ())) ))
  in
  let occupancy ctrl =
    let s = Controller.srule_state ctrl in
    (Srule_state.leaf_occupancy s, Srule_state.spine_occupancy s)
  in
  let timed label domains install =
    let ctrl = Controller.create topo params in
    let t0 = Unix.gettimeofday () in
    install ctrl;
    let dt = Unix.gettimeofday () -. t0 in
    ( {
        par_label = label;
        par_domains = domains;
        groups_per_sec =
          (if dt > 0.0 then float_of_int total_groups /. dt else 0.0);
        par_total_s = dt;
        par_conflicts = Controller.batch_conflicts ctrl;
      },
      occupancy ctrl )
  in
  let seq, seq_occ =
    timed "add_group" 0 (fun ctrl ->
        List.iter
          (fun (group, members) ->
            ignore (Controller.add_group ctrl ~group members))
          batch)
  in
  let par_runs =
    List.map
      (fun d ->
        let r, occ =
          timed (Printf.sprintf "install_all d=%d" d) d (fun ctrl ->
              ignore (Controller.install_all ~domains:d ctrl batch))
        in
        if occ <> seq_occ then begin
          printf "FAIL: occupancy diverges from sequential at domains=%d@." d;
          exit 1
        end;
        r)
      [ 1; 2; 4 ]
  in
  let runs = seq :: par_runs in
  printf "@.%-20s %-10s %-12s %-10s %-10s %-10s@." "mode" "domains" "groups/s"
    "total s" "conflicts" "speedup";
  List.iter
    (fun r ->
      printf "%-20s %-10d %-12.0f %-10.3f %-10d %-10.2f@." r.par_label
        r.par_domains r.groups_per_sec r.par_total_s r.par_conflicts
        (if seq.groups_per_sec > 0.0 then r.groups_per_sec /. seq.groups_per_sec
         else 0.0))
    runs;
  printf "s-rule occupancy identical across all runs@.";
  let json_of r =
    Printf.sprintf
      {|    {"mode": "%s", "domains": %d, "groups_per_sec": %.1f, "total_s": %.4f, "conflicts": %d, "speedup_vs_sequential": %.4f}|}
      r.par_label r.par_domains r.groups_per_sec r.par_total_s r.par_conflicts
      (if seq.groups_per_sec > 0.0 then r.groups_per_sec /. seq.groups_per_sec
       else 0.0)
  in
  let prov =
    Provenance.capture ~seed:5
      ~params:(Format.asprintf "%a" Params.pp params)
      ~domains:4 ()
  in
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "parallel",
  "provenance": %s,
  "topology": {"pods": 8, "leaves_per_pod": 8, "spines_per_pod": 4, "hosts_per_leaf": 32},
  "groups": %d,
  "fmax": %d,
  "occupancy_identical": true,
  "runs": [
%s
  ]%s
}
|}
    (Provenance.to_json prov) total_groups fmax
    (String.concat ",\n" (List.map json_of runs))
    (metrics_field ());
  close_out oc;
  printf "wrote BENCH_parallel.json@."

(* {1 Sharded commit: batch and churn scaling of the per-pod control plane} *)

type shard_run = {
  sh_label : string;
  sh_domains : int;  (* 0 = per-group add_group baseline *)
  sh_groups_per_sec : float;
  sh_install_s : float;
  sh_churn_events_per_sec : float;
  sh_conflicts : int;
  sh_checksum : int;
}

let shard () =
  hr
    "Shard: per-pod sharded commit, batch + churn scaling across domains \
     (BENCH_shard.json)";
  with_local_metrics @@ fun () ->
  let topo =
    Topology.create ~pods:8 ~leaves_per_pod:8 ~spines_per_pod:4
      ~hosts_per_leaf:32 ~cores_per_plane:4
  in
  let total_groups =
    match Sys.getenv_opt "ELMO_SHARD_GROUPS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            printf "ELMO_SHARD_GROUPS must be a positive integer (got %S)@." s;
            exit 1)
    | None -> 4_000
  in
  (* [Domains.clamp] warns once if the sweep exceeds what this machine can
     actually parallelize. *)
  let domains_list = List.map Domains.clamp [ 1; 2; 4; 8 ] in
  printf "topology: %a; %d groups; available cores: %d@." Topology.pp topo
    total_groups (Domains.recommended ());
  let rng = Rng.create 5 in
  let tenant_sizes = Vm_placement.default_tenant_sizes rng 200 in
  let placement =
    Vm_placement.place rng topo ~strategy:(Vm_placement.Pack_up_to 12)
      ~host_capacity:20 ~tenant_sizes
  in
  let workload_rng = Rng.create 6 in
  let groups =
    Workload.generate workload_rng placement ~kind:Group_dist.Wve ~total_groups
  in
  let role_rng = Rng.create 9 in
  let role () =
    match Rng.int role_rng 3 with
    | 0 -> Controller.Sender
    | 1 -> Controller.Receiver
    | _ -> Controller.Both
  in
  let batch =
    Array.to_list groups
    |> List.map (fun g ->
           ( g.Workload.group_id,
             Array.to_list g.Workload.member_hosts
             |> List.map (fun h -> (h, role ())) ))
  in
  let nhosts = Topology.num_hosts topo in
  let churn_events = max 500 (total_groups / 4) in
  (* Deterministic churn stream: same seed per run, so every domain count
     drives the identical event sequence against its own controller. *)
  let drive_churn ctrl =
    let rng = Rng.create 17 in
    let performed = ref 0 in
    for _ = 1 to churn_events do
      let group = Rng.int rng total_groups in
      let members = Controller.members ctrl ~group in
      let want_join = members = [] || Rng.bool rng in
      if want_join then begin
        let host = Rng.int rng nhosts in
        if not (List.mem_assoc host members) then begin
          ignore (Controller.join ctrl ~group ~host ~role:Controller.Both);
          incr performed
        end
      end
      else begin
        let host, _ = List.nth members (Rng.int rng (List.length members)) in
        ignore (Controller.leave ctrl ~group ~host);
        incr performed
      end
    done;
    !performed
  in
  let checksum ctrl =
    let s = Controller.srule_state ctrl in
    let fold = Array.fold_left (fun acc v -> ((acc * 31) + v) land 0x3FFFFFFF) in
    fold (fold 17 (Srule_state.leaf_occupancy s)) (Srule_state.spine_occupancy s)
  in
  let loose_fmax = max 50 (30_000 * total_groups / 1_000_000) in
  let tight_fmax = max 3 (loose_fmax / 20) in
  let sweep_json = ref [] in
  List.iter
    (fun (mode, fmax) ->
      printf "@.-- fmax sweep: %s (fmax=%d) --@." mode fmax;
      let params = Params.create ~fmax () in
      let timed label domains install =
        let ctrl = Controller.create topo params in
        let t0 = Unix.gettimeofday () in
        install ctrl;
        let t1 = Unix.gettimeofday () in
        let performed = drive_churn ctrl in
        let t2 = Unix.gettimeofday () in
        let install_s = t1 -. t0 and churn_s = t2 -. t1 in
        ( {
            sh_label = label;
            sh_domains = domains;
            sh_groups_per_sec =
              (if install_s > 0.0 then
                 float_of_int total_groups /. install_s
               else 0.0);
            sh_install_s = install_s;
            sh_churn_events_per_sec =
              (if churn_s > 0.0 then float_of_int performed /. churn_s
               else 0.0);
            sh_conflicts = Controller.batch_conflicts ctrl;
            sh_checksum = checksum ctrl;
          },
          ctrl )
      in
      let seq, seq_ctrl =
        timed "add_group" 0 (fun ctrl ->
            List.iter
              (fun (group, members) ->
                ignore (Controller.add_group ctrl ~group members))
              batch)
      in
      let par =
        List.map
          (fun d ->
            let r, ctrl =
              timed (Printf.sprintf "install_all d=%d" d) d (fun ctrl ->
                  ignore (Controller.install_all ~domains:d ctrl batch))
            in
            if r.sh_checksum <> seq.sh_checksum then begin
              printf
                "FAIL: occupancy checksum diverges from sequential at \
                 domains=%d@."
                d;
              exit 1
            end;
            (r, ctrl))
          domains_list
      in
      (* Conflicts are part of the bit-identity contract: every domain
         count must hit exactly the same optimistic-commit invalidations. *)
      let conflict_counts =
        List.sort_uniq compare (List.map (fun (r, _) -> r.sh_conflicts) par)
      in
      if List.length conflict_counts <> 1 then begin
        printf "FAIL: batch conflicts differ across domain counts: %s@."
          (String.concat ", "
             (List.map string_of_int conflict_counts));
        exit 1
      end;
      (* Symbolic proof for the largest domain count: the sharded and the
         sequential configuration compile to pointer-identical delivery
         predicates for every group. *)
      let _, last_ctrl = List.nth par (List.length par - 1) in
      let ctx = Pred.create_ctx () in
      let scfg = Controller.installed_config seq_ctrl in
      let pcfg = Controller.installed_config last_ctrl in
      let identical =
        List.for_all
          (fun gid ->
            Verify.equiv
              (Verify.compile ctx scfg ~group:gid)
              (Verify.compile ctx pcfg ~group:gid))
          (Installed_config.group_ids scfg)
      in
      if not identical then begin
        printf "FAIL: delivery predicates diverge from sequential@.";
        exit 1
      end;
      printf
        "occupancy checksums identical; conflicts identical (%d); delivery \
         predicates pointer-identical@."
        (List.hd conflict_counts);
      let runs = seq :: List.map fst par in
      printf "@.%-20s %-8s %-12s %-12s %-10s %-10s@." "mode" "domains"
        "groups/s" "churn ev/s" "conflicts" "speedup";
      List.iter
        (fun r ->
          printf "%-20s %-8d %-12.0f %-12.0f %-10d %-10.2f@." r.sh_label
            r.sh_domains r.sh_groups_per_sec r.sh_churn_events_per_sec
            r.sh_conflicts
            (if seq.sh_groups_per_sec > 0.0 then
               r.sh_groups_per_sec /. seq.sh_groups_per_sec
             else 0.0))
        runs;
      let shards = Controller.shard_stats last_ctrl in
      printf "per-pod shards (d=%d): %s@."
        (List.nth domains_list (List.length domains_list - 1))
        (String.concat "; "
           (List.map
              (fun (s : Controller.shard_stat) ->
                Printf.sprintf "pod%d: %d groups (%d cross), %d churn"
                  s.Controller.shard_pod s.Controller.shard_groups
                  s.Controller.shard_cross_pod s.Controller.shard_churn_events)
              shards));
      let run_json r =
        Printf.sprintf
          {|      {"mode": "%s", "domains": %d, "groups_per_sec": %.1f, "install_s": %.4f, "churn_events_per_sec": %.1f, "conflicts": %d, "occupancy_checksum": %d, "speedup_vs_sequential": %.4f}|}
          r.sh_label r.sh_domains r.sh_groups_per_sec r.sh_install_s
          r.sh_churn_events_per_sec r.sh_conflicts r.sh_checksum
          (if seq.sh_groups_per_sec > 0.0 then
             r.sh_groups_per_sec /. seq.sh_groups_per_sec
           else 0.0)
      in
      let shard_json (s : Controller.shard_stat) =
        Printf.sprintf
          {|      {"pod": %d, "groups": %d, "conflicts": %d, "single_pod": %d, "cross_pod": %d, "churn_events": %d}|}
          s.Controller.shard_pod s.Controller.shard_groups
          s.Controller.shard_conflicts s.Controller.shard_single_pod
          s.Controller.shard_cross_pod s.Controller.shard_churn_events
      in
      sweep_json :=
        Printf.sprintf
          {|    {"fmax_mode": "%s", "fmax": %d, "occupancy_identical": true, "conflicts_identical": true, "predicates_pointer_identical": true,
    "runs": [
%s
    ],
    "shards": [
%s
    ]}|}
          mode fmax
          (String.concat ",\n" (List.map run_json runs))
          (String.concat ",\n" (List.map shard_json shards))
        :: !sweep_json)
    [ ("loose", loose_fmax); ("tight", tight_fmax) ];
  let prov =
    Provenance.capture ~seed:5
      ~params:(Printf.sprintf "fmax loose=%d tight=%d" loose_fmax tight_fmax)
      ~domains:(List.nth domains_list (List.length domains_list - 1))
      ()
  in
  let oc = open_out "BENCH_shard.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "shard",
  "provenance": %s,
  "topology": {"pods": 8, "leaves_per_pod": 8, "spines_per_pod": 4, "hosts_per_leaf": 32},
  "groups": %d,
  "churn_events": %d,
  "domains_swept": [%s],
  "sweeps": [
%s
  ]%s
}
|}
    (Provenance.to_json prov) total_groups churn_events
    (String.concat ", " (List.map string_of_int domains_list))
    (String.concat ",\n" (List.rev !sweep_json))
    (metrics_field ());
  close_out oc;
  printf "wrote BENCH_shard.json@."

(* {1 Fault tolerance: degradation-induced traffic vs fault rate} *)

let faults () =
  hr
    "Faults: retry/degradation cost vs injected fault rate (BENCH_faults.json)";
  let topo = Topology.running_example () in
  let params =
    Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None ~fmax:6 ()
  in
  let events =
    match Sys.getenv_opt "ELMO_FAULT_EVENTS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            printf "ELMO_FAULT_EVENTS must be a positive integer (got %S)@." s;
            exit 1)
    | None -> 400
  in
  let rates = [ 0.0; 0.05; 0.1; 0.2; 0.4 ] in
  printf "topology: %a; 12 groups x 8 members; %d events per rate@."
    Topology.pp topo events;
  printf "@.%-8s %-8s %-11s %-8s %-9s %-10s %-8s %-9s %-12s@." "rate"
    "probes" "blackholes" "extra%" "retries" "exhausted" "degr" "compens"
    "fault t/r/d";
  let rows =
    List.map
      (fun rate ->
        let r =
          Churn.fault_run ~seed:23 topo params ~groups:12 ~group_size:8
            ~events ~rate ~probe_every:25
        in
        let i = r.Churn.install and f = r.Churn.faults in
        printf "%-8.2f %-8d %-11d %-8.1f %-9d %-10d %-8d %-9d %d/%d/%d@." rate
          r.Churn.probes r.Churn.blackholes
          (100.0 *. r.Churn.extra_traffic)
          i.Controller.retries i.Controller.exhausted i.Controller.degradations
          i.Controller.compensations f.Fault.timeouts f.Fault.refusals
          f.Fault.drops;
        (rate, r))
      rates
  in
  let all_safe =
    List.for_all (fun (_, r) -> r.Churn.blackholes = 0) rows
  in
  printf "@.blackholes across every rate: %s@."
    (if all_safe then "none (degradation trades traffic, never delivery)"
     else "PRESENT - delivery safety violated");
  let json_of (rate, r) =
    let i = r.Churn.install and f = r.Churn.faults in
    Printf.sprintf
      {|    {"rate": %.2f, "events": %d, "probes": %d, "blackholes": %d, "extra_traffic": %.4f, "clean_tx": %d, "faulty_tx": %d, "install_attempts": %d, "retries": %d, "exhausted": %d, "degradations": %d, "compensations": %d, "stale_entries": %d, "fault_timeouts": %d, "fault_refusals": %d, "fault_drops": %d}|}
      rate r.Churn.fault_events r.Churn.probes r.Churn.blackholes
      r.Churn.extra_traffic r.Churn.clean_tx r.Churn.faulty_tx
      i.Controller.attempts i.Controller.retries i.Controller.exhausted
      i.Controller.degradations i.Controller.compensations
      i.Controller.stale_entries f.Fault.timeouts f.Fault.refusals
      f.Fault.drops
  in
  let prov =
    Provenance.capture ~seed:23
      ~params:(Format.asprintf "%a" Params.pp params)
      ~domains:1 ()
  in
  let oc = open_out "BENCH_faults.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "faults",
  "provenance": %s,
  "topology": {"pods": 4, "leaves_per_pod": 2, "spines_per_pod": 2, "hosts_per_leaf": 8},
  "groups": 12,
  "members_per_group": 8,
  "events": %d,
  "zero_blackholes": %b,
  "rates": [
%s
  ]%s
}
|}
    (Provenance.to_json prov) events all_safe
    (String.concat ",\n" (List.map json_of rows))
    (metrics_field ());
  close_out oc;
  printf "wrote BENCH_faults.json@."

(* {1 Durable recovery: fenced failover latency and corruption tolerance} *)

let recovery () =
  hr
    "Recovery: fenced failover from the durable journal (BENCH_recovery.json)";
  let topo = Topology.running_example () in
  let params =
    Params.create ~hmax_leaf:1 ~hmax_spine:1 ~header_budget:None ~fmax:6 ()
  in
  let events =
    match Sys.getenv_opt "ELMO_RECOVERY_EVENTS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            printf "ELMO_RECOVERY_EVENTS must be a positive integer (got %S)@."
              s;
            exit 1)
    | None -> 400
  in
  let seed = 29 in
  (* Deterministic churn run journaled at the given snapshot cadence: four
     groups, join/leave plus spine failure toggles. *)
  let build ~snapshot_every =
    let fabric = Fabric.create topo in
    let replica =
      Replica.create ~snapshot_every
        ~fabric_hooks:(Fabric.controller_hooks_at fabric ~epoch:0)
        ~durable:true topo params
    in
    let rng = Rng.create seed in
    let n = Topology.num_hosts topo in
    let ngroups = 4 in
    let member = Array.init ngroups (fun _ -> Array.make n false) in
    let size g =
      Array.fold_left (fun a m -> if m then a + 1 else a) 0 member.(g)
    in
    for g = 0 to ngroups - 1 do
      let members =
        List.init (4 + Rng.int rng 8) (fun _ -> Rng.int rng n)
        |> List.sort_uniq Int.compare
      in
      List.iter (fun h -> member.(g).(h) <- true) members;
      Replica.apply replica
        (Journal.Add_group
           {
             group = g;
             members = List.map (fun h -> (h, Controller.Both)) members;
           })
    done;
    let spines = Topology.num_spines topo in
    let spine_down = Array.make spines false in
    for _ = 1 to events do
      let g = Rng.int rng ngroups and h = Rng.int rng n in
      match Rng.int rng 8 with
      | 0 when size g > 2 && member.(g).(h) ->
          member.(g).(h) <- false;
          Replica.apply replica (Journal.Leave { group = g; host = h })
      | 1 ->
          let s = Rng.int rng spines in
          spine_down.(s) <- not spine_down.(s);
          Replica.apply replica
            (if spine_down.(s) then Journal.Fail_spine s
             else Journal.Recover_spine s)
      | _ when not member.(g).(h) ->
          member.(g).(h) <- true;
          Replica.apply replica
            (Journal.Join { group = g; host = h; role = Controller.Both })
      | _ -> ()
    done;
    Wire.contents (Option.get (Replica.wire replica))
  in
  let violations = ref 0 in
  let check (outcome : Supervisor.outcome) =
    (match
       Verify.check_controller (Replica.controller outcome.Supervisor.replica)
     with
    | Ok (_ : int) -> ()
    | Error w ->
        incr violations;
        printf "VIOLATION: recovered controller diverges: %a@."
          Verify.pp_witness w);
    if outcome.Supervisor.blackholes <> [] then begin
      incr violations;
      printf "VIOLATION: %d blackholes after failover@."
        (List.length outcome.Supervisor.blackholes)
    end
  in
  (* Failover latency vs snapshot cadence: sparse snapshots mean long
     replay suffixes; every recovery is re-verified against its intent. *)
  let reps = 20 in
  printf "@.%-15s %-9s %-9s %-11s %-12s %-14s@." "snapshot_every" "records"
    "bytes" "suffix_ops" "failover_ms" "replay ops/s";
  let sweep =
    List.map
      (fun snapshot_every ->
        let bytes = build ~snapshot_every in
        let run () =
          let fabric = Fabric.create topo in
          match Supervisor.failover ~fabric bytes with
          | Ok o -> o
          | Error e ->
              printf "unexpected failover failure: %s@." e;
              exit 1
        in
        let o0 = run () in
        check o0;
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          ignore (run ())
        done;
        let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
        let loaded = o0.Supervisor.loaded in
        let nrec = List.length loaded.Wire.l_records in
        let suffix = List.length loaded.Wire.l_suffix in
        let ops_s = float_of_int suffix /. dt in
        printf "%-15d %-9d %-9d %-11d %-12.3f %-14.0f@." snapshot_every nrec
          (Bytes.length bytes) suffix (1e3 *. dt) ops_s;
        (snapshot_every, nrec, Bytes.length bytes, suffix, dt, ops_s))
      [ 8; 32; 128; 1_000_000 ]
  in
  (* Corruption tolerance: seeded bit flips and torn writes over one
     canonical log; every recovered outcome is re-verified, and detected
     corruption must be reported (truncation/fallback), never silent. *)
  let trials =
    match Sys.getenv_opt "ELMO_RECOVERY_TRIALS" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
    | None -> 200
  in
  let canonical = build ~snapshot_every:64 in
  let rng = Rng.create 31 in
  let full = ref 0
  and truncated = ref 0
  and fallback = ref 0
  and unrecoverable = ref 0 in
  for _ = 1 to trials do
    let mutated =
      if Rng.int rng 2 = 0 then
        Wire.flip_bit canonical (Rng.int rng (8 * Bytes.length canonical))
      else
        Wire.truncate_at canonical
          (8 + Rng.int rng (Bytes.length canonical - 8))
    in
    let fabric = Fabric.create topo in
    match Supervisor.failover ~fabric mutated with
    | Error _ -> incr unrecoverable
    | Ok o ->
        check o;
        let l = o.Supervisor.loaded in
        if l.Wire.l_dropped_snapshots > 0 then incr fallback
        else if Option.is_some l.Wire.l_truncated_at then incr truncated
        else incr full
  done;
  printf
    "@.corruption matrix: %d trials — %d full, %d truncated, %d snapshot \
     fallback, %d unrecoverable, %d violations@."
    trials !full !truncated !fallback !unrecoverable !violations;
  let prov =
    Provenance.capture ~seed
      ~params:(Format.asprintf "%a" Params.pp params)
      ~domains:1 ()
  in
  let sweep_json (snapshot_every, nrec, nbytes, suffix, dt, ops_s) =
    Printf.sprintf
      {|    {"snapshot_every": %d, "records": %d, "bytes": %d, "suffix_ops": %d, "failover_ms": %.4f, "replay_ops_per_sec": %.1f}|}
      snapshot_every nrec nbytes suffix (1e3 *. dt) ops_s
  in
  let oc = open_out "BENCH_recovery.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "recovery",
  "provenance": %s,
  "topology": {"pods": 4, "leaves_per_pod": 2, "spines_per_pod": 2, "hosts_per_leaf": 8},
  "events": %d,
  "failover_reps": %d,
  "snapshot_sweep": [
%s
  ],
  "corruption": {"trials": %d, "full": %d, "truncated": %d, "snapshot_fallback": %d, "unrecoverable": %d, "violations": %d},
  "zero_violations": %b%s
}
|}
    (Provenance.to_json prov) events reps
    (String.concat ",\n" (List.map sweep_json sweep))
    trials !full !truncated !fallback !unrecoverable !violations
    (!violations = 0) (metrics_field ());
  close_out oc;
  printf "wrote BENCH_recovery.json@.";
  if !violations > 0 then begin
    printf "recovery violations present - failing@.";
    exit 1
  end

(* {1 Symbolic verification: compile+check throughput} *)

let verify () =
  hr
    "Verify: symbolic delivery predicates, compile+check throughput \
     (BENCH_verify.json)";
  let topo =
    Topology.create ~pods:8 ~leaves_per_pod:8 ~spines_per_pod:4
      ~hosts_per_leaf:32 ~cores_per_plane:4
  in
  let params = Params.create ~r:12 ~header_budget:None () in
  let ngroups =
    match Sys.getenv_opt "ELMO_VERIFY_GROUPS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            printf "ELMO_VERIFY_GROUPS must be a positive integer (got %S)@." s;
            exit 1)
    | None -> 10_000
  in
  printf "topology: %a; %d groups, sizes 2-16@." Topology.pp topo ngroups;
  let ctrl = Controller.create topo params in
  let rng = Rng.create 41 in
  let n = Topology.num_hosts topo in
  let t0 = Unix.gettimeofday () in
  for g = 0 to ngroups - 1 do
    let size = 2 + Rng.int rng 15 in
    let members =
      List.init size (fun _ -> Rng.int rng n) |> List.sort_uniq Int.compare
    in
    ignore
      (Controller.add_group ctrl ~group:g
         (List.map (fun h -> (h, Controller.Both)) members))
  done;
  let t1 = Unix.gettimeofday () in
  let cfg = Controller.installed_config ctrl in
  let t2 = Unix.gettimeofday () in
  (* Compile-only pass: one shared universe, so recurring delivery shapes
     hash-cons to the same predicate. *)
  let ctx = Pred.create_ctx () in
  List.iter
    (fun gid -> ignore (Verify.compile ctx cfg ~group:gid))
    (Installed_config.group_ids cfg);
  let t3 = Unix.gettimeofday () in
  (* Full check: compile vs intent per group, first witness on divergence. *)
  let result = Verify.check_config cfg in
  let t4 = Unix.gettimeofday () in
  (* Incremental oracle: warm a predicate cache over the whole config, then
     apply one membership event and re-check — only the touched group's
     predicates recompile, the rest pass from cache. *)
  let cache = Verify.create_cache () in
  let warm =
    Verify.check_config_cached cache cfg ~dirty:(Controller.drain_dirty ctrl)
  in
  let t5 = Unix.gettimeofday () in
  (match Controller.members ctrl ~group:0 with
  | (host, _) :: _ -> ignore (Controller.leave ctrl ~group:0 ~host)
  | [] -> ());
  let cfg' = Controller.installed_config ctrl in
  let dirty = Controller.drain_dirty ctrl in
  let t6 = Unix.gettimeofday () in
  let recheck = Verify.check_config_cached cache cfg' ~dirty in
  let t7 = Unix.gettimeofday () in
  let install_s = t1 -. t0
  and view_s = t2 -. t1
  and compile_s = t3 -. t2
  and check_s = t4 -. t3
  and cached_warm_s = t5 -. t4
  and cached_recheck_s = t7 -. t6 in
  let rate groups s = if s > 0.0 then float_of_int groups /. s else 0.0 in
  let checked, ok =
    match result with
    | Ok ngroups -> (ngroups, true)
    | Error w ->
        printf "counterexample: %a@." Verify.pp_witness w;
        (0, false)
  in
  let ok =
    match (warm, recheck) with
    | Ok _, Ok _ -> ok
    | Error w, _ | _, Error w ->
        printf "cached counterexample: %a@." Verify.pp_witness w;
        false
  in
  let hits, misses = Verify.cache_stats cache in
  printf "@.%-24s %-10s %-14s@." "phase" "seconds" "groups/s";
  printf "%-24s %-10.3f %-14s@." "install (add_group)" install_s
    (Printf.sprintf "%.0f" (rate ngroups install_s));
  printf "%-24s %-10.3f %-14s@." "installed_config view" view_s
    (Printf.sprintf "%.0f" (rate ngroups view_s));
  printf "%-24s %-10.3f %-14s@." "symbolic compile" compile_s
    (Printf.sprintf "%.0f" (rate ngroups compile_s));
  printf "%-24s %-10.3f %-14s@." "check (compile==intent)" check_s
    (Printf.sprintf "%.0f" (rate ngroups check_s));
  printf "%-24s %-10.3f %-14s@." "cached warm (all miss)" cached_warm_s
    (Printf.sprintf "%.0f" (rate ngroups cached_warm_s));
  printf "%-24s %-10.3f %-14s@." "cached re-check (1 ev)" cached_recheck_s
    (Printf.sprintf "%.0f" (rate ngroups cached_recheck_s));
  printf "cache after re-check: %d hits / %d misses; re-check speedup %.1fx@."
    hits misses
    (if cached_recheck_s > 0.0 then check_s /. cached_recheck_s else 0.0);
  printf "result: %s@."
    (if ok then
       Printf.sprintf "%d groups verified, installed state == intent" checked
     else "COUNTEREXAMPLE - installed state loses a receiver");
  let prov =
    Provenance.capture ~seed:41
      ~params:(Format.asprintf "%a" Params.pp params)
      ~domains:1 ()
  in
  let oc = open_out "BENCH_verify.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "verify",
  "provenance": %s,
  "topology": {"pods": 8, "leaves_per_pod": 8, "spines_per_pod": 4, "hosts_per_leaf": 32},
  "groups": %d,
  "install_s": %.4f,
  "view_s": %.4f,
  "compile_s": %.4f,
  "compile_groups_per_sec": %.1f,
  "check_s": %.4f,
  "check_groups_per_sec": %.1f,
  "cached_warm_s": %.4f,
  "cached_recheck_s": %.4f,
  "cached_recheck_speedup": %.1f,
  "cache_hits": %d,
  "cache_misses": %d,
  "verified_ok": %b%s
}
|}
    (Provenance.to_json prov) ngroups install_s view_s compile_s
    (rate ngroups compile_s) check_s (rate ngroups check_s) cached_warm_s
    cached_recheck_s
    (if cached_recheck_s > 0.0 then check_s /. cached_recheck_s else 0.0)
    hits misses ok
    (metrics_field ());
  close_out oc;
  printf "wrote BENCH_verify.json@.";
  if not ok then exit 1

(* {1 Bechamel micro-benchmarks} *)

let micro () =
  hr "Micro-benchmarks (Bechamel): one kernel operation per table/figure";
  let open Bechamel in
  let open Toolkit in
  let topo = Topology.facebook_fabric () in
  let rng = Rng.create 11 in
  let members =
    Array.to_list (Array.init 60 (fun _ -> Rng.int rng (Topology.num_hosts topo)))
    |> List.sort_uniq compare
  in
  let tree = Tree.of_members topo members in
  let params = Params.default in
  let srules = Srule_state.create topo ~fmax:params.Params.fmax in
  let enc = Encoding.encode params srules tree in
  let header = Encoding.header_for_sender enc ~sender:(List.hd members) in
  let bytes = Header_codec.encode topo header in
  let fabric = Fabric.create topo in
  let tests =
    [
      (* Fig 4/5 kernel: one group's rule computation (the paper's
         controller computes p-/s-rules in ~0.2 ms). *)
      Test.make ~name:"fig4/5: encode group (Algorithm 1)"
        (Staged.stage (fun () ->
             let srules = Srule_state.create topo ~fmax:params.Params.fmax in
             Encoding.encode params srules tree));
      (* Table 2 kernel: header build for one sender. *)
      Test.make ~name:"table2: header_for_sender"
        (Staged.stage (fun () -> Encoding.header_for_sender enc ~sender:0));
      (* Fig 7 kernel: wire encode/decode. *)
      Test.make ~name:"fig7: Header_codec.encode"
        (Staged.stage (fun () -> Header_codec.encode topo header));
      Test.make ~name:"fig7: Header_codec.decode"
        (Staged.stage (fun () -> Header_codec.decode topo bytes));
      (* Fig 6 kernel: one multicast packet through the fabric. *)
      Test.make ~name:"fig6: Fabric.inject"
        (Staged.stage (fun () ->
             Fabric.inject fabric ~sender:(List.hd members) ~group:1 ~header
               ~payload:100));
      (* Fig 4/5 right panel kernel: the analytic traffic model. *)
      Test.make ~name:"fig4/5: Traffic.measure"
        (Staged.stage (fun () -> Traffic.measure enc ~sender:(List.hd members)));
      (* Table 2 kernel: one hypervisor flow-rule install (the paper quotes
         hypervisors sustaining 40k updates/s, 80k batched). *)
      Test.make ~name:"table2: Hypervisor.install_sender"
        (Staged.stage
           (let hv = Hypervisor.create fabric ~host:0 in
            fun () -> Hypervisor.install_sender hv ~group:1 header));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"elmo" tests)
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) ->
          if t >= 1e6 then printf "%-45s %10.3f ms/op@." name (t /. 1e6)
          else if t >= 1e3 then printf "%-45s %10.3f us/op@." name (t /. 1e3)
          else printf "%-45s %10.1f ns/op@." name t
      | Some [] | None -> printf "%-45s (no estimate)@." name)
    rows;
  printf
    "@.(paper: controller computes p-/s-rules for a group in 0.20 ms +/- 0.45 \
     ms)@."

(* {1 Hot path: the raw apply_delta kernel, proven allocation-free} *)

(* Pull the incremental controller's events/s out of BENCH_churn.json (if a
   prior `bench churn` left one) with a plain text scan — the file is our
   own fixed format, no JSON parser needed. *)
let churn_reference_events_per_sec () =
  if not (Sys.file_exists "BENCH_churn.json") then None
  else begin
    let ic = open_in "BENCH_churn.json" in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let anchor = {|"mode": "incremental", "events_per_sec": |} in
    let alen = String.length anchor in
    let rec find i =
      if i + alen > String.length text then None
      else if String.sub text i alen = anchor then Some (i + alen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let stop = ref start in
        while
          !stop < String.length text
          && (match text.[!stop] with
             | '0' .. '9' | '.' | '-' -> true
             | _ -> false)
        do
          incr stop
        done;
        float_of_string_opt (String.sub text start (!stop - start))
  end

let hotpath () =
  hr "Hot path: zero-alloc apply_delta churn kernel (BENCH_hotpath.json)";
  let topo =
    Topology.create ~pods:8 ~leaves_per_pod:8 ~spines_per_pod:4
      ~hosts_per_leaf:32 ~cores_per_plane:4
  in
  let events =
    match Sys.getenv_opt "ELMO_HOTPATH_EVENTS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            printf "ELMO_HOTPATH_EVENTS must be a positive integer (got %S)@." s;
            exit 1)
    | None -> 200_000
  in
  let group_size = 1_000 in
  (* The kernel must never fall back mid-run: lift the staleness ceiling
     above the event count. *)
  let params =
    Params.create ~r:12 ~staleness_limit:(events + 8_192) ~header_budget:None ()
  in
  let rng = Rng.create 97 in
  let n = Topology.num_hosts topo in
  let hosts = Array.init n Fun.id in
  Rng.shuffle rng hosts;
  let members = Array.to_list (Array.sub hosts 0 group_size) in
  let srules = Srule_state.create topo ~fmax:params.Params.fmax in
  let enc = Encoding.encode params srules (Tree.of_members topo members) in
  (* Churn a non-member host behind a leaf that keeps >= 2 members, so the
     join is never New_leaf and the leave never Emptied_leaf. *)
  let churn_host =
    let found = ref (-1) in
    List.iter
      (fun (l, bm) ->
        if !found < 0 && Bitmap.popcount bm >= 2 then
          for port = 0 to topo.Topology.hosts_per_leaf - 1 do
            if !found < 0 && not (Bitmap.get bm port) then
              found := (l * topo.Topology.hosts_per_leaf) + port
          done)
      enc.Encoding.tree.Tree.leaf_bitmaps;
    if !found < 0 then begin
      printf "no churnable host found@.";
      exit 1
    end;
    !found
  in
  let join = Encoding.delta_of_host topo ~joining:true churn_host in
  let leave = Encoding.delta_of_host topo ~joining:false churn_host in
  let apply i =
    match Encoding.apply_delta enc (if i land 1 = 0 then join else leave) with
    | Encoding.Applied _ -> ()
    | Encoding.Reencode _ -> failwith "hotpath: fast path declined"
  in
  printf "topology: %a; group of %d members; churn host %d; %d events@."
    Topology.pp topo group_size churn_host events;
  (* Allocation proof first: the runtime counterpart of the zero-alloc lint
     verdict on this path. *)
  let report = Allocs.probe ~warmup:64 ~events:4_096 apply in
  (match report.Allocs.first_alloc with
  | Some (event, words) ->
      printf
        "FAIL: apply_delta allocated %d minor words at probe event %d (%.1f \
         words total)@."
        words event report.Allocs.total_words;
      exit 1
  | None ->
      printf "allocation probe: %.1f minor words over 4096 events — clean@."
        report.Allocs.total_words);
  (* Throughput + GC accounting over the full run. *)
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to events - 1 do
    apply i
  done;
  let t1 = Unix.gettimeofday () in
  let gc1 = Gc.quick_stat () in
  let total_s = t1 -. t0 in
  let events_per_sec =
    if total_s > 0.0 then float_of_int events /. total_s else 0.0
  in
  let minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words in
  let minor_collections = gc1.Gc.minor_collections - gc0.Gc.minor_collections in
  let promoted_words = gc1.Gc.promoted_words -. gc0.Gc.promoted_words in
  printf "events/s: %.0f (%.1f ns/event)@." events_per_sec
    (if events_per_sec > 0.0 then 1e9 /. events_per_sec else 0.0);
  printf "gc: %.1f minor words, %d minor collections, %.1f promoted words@."
    minor_words minor_collections promoted_words;
  let reference = churn_reference_events_per_sec () in
  (match reference with
  | Some r when r > 0.0 ->
      printf
        "vs BENCH_churn.json incremental controller: %.1fx (kernel %.0f vs \
         full path %.0f ev/s)@."
        (events_per_sec /. r) events_per_sec r;
      if events_per_sec < r then
        printf
          "WARNING: raw kernel slower than the full controller churn path — \
           regression@."
  | Some _ | None ->
      printf "no BENCH_churn.json reference (run `bench churn` first)@.");
  let prov =
    Provenance.capture ~seed:97
      ~params:(Format.asprintf "%a" Params.pp params)
      ~domains:1 ()
  in
  (* Instrumented epilogue: a short burst of the same kernel under a local
     metrics registry, AFTER the probe and the timed loop — metrics-on costs
     an allocation per probe (Hashtbl lookup), so the measured region must
     stay metrics-off. The JSON write sits inside so metrics_field () sees
     the registry. *)
  with_local_metrics @@ fun () ->
  for i = 0 to 1_023 do
    Obs.with_span "hotpath.apply_delta" (fun () -> apply i)
  done;
  Obs.gauge "hotpath.events_per_sec" events_per_sec;
  Obs.gauge "hotpath.minor_words" minor_words;
  let oc = open_out "BENCH_hotpath.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "hotpath",
  "provenance": %s,
  "topology": {"pods": 8, "leaves_per_pod": 8, "spines_per_pod": 4, "hosts_per_leaf": 32},
  "members_per_group": %d,
  "events": %d,
  "events_per_sec": %.1f,
  "ns_per_event": %.2f,
  "probe": {"events": 4096, "minor_words_total": %.1f, "minor_words_per_event": %.4f, "clean": %b},
  "gc": {"minor_words": %.1f, "minor_collections": %d, "promoted_words": %.1f},
  "churn_reference_events_per_sec": %s%s
}
|}
    (Provenance.to_json prov) group_size events events_per_sec
    (if events_per_sec > 0.0 then 1e9 /. events_per_sec else 0.0)
    report.Allocs.total_words report.Allocs.per_event
    (report.Allocs.first_alloc = None)
    minor_words minor_collections promoted_words
    (match reference with
    | Some r -> Printf.sprintf "%.1f" r
    | None -> "null")
    (metrics_field ());
  close_out oc;
  printf "wrote BENCH_hotpath.json@."

(* {1 Telemetry baseline: measured utilization under the oblivious encoder} *)

(* The "before" number for the traffic-engineering roadmap item: a skewed
   (Zipf) WVE workload through the current placement-oblivious encoder,
   measured by the dataplane recorder. A future TE-aware encoder reruns
   this target and compares max/mean link utilization and the elephant
   set. *)
let te_baseline () =
  hr
    "TE baseline: link utilization + elephants, oblivious encoder \
     (BENCH_telemetry.json)";
  let topo =
    Topology.create ~pods:8 ~leaves_per_pod:8 ~spines_per_pod:4
      ~hosts_per_leaf:32 ~cores_per_plane:4
  in
  let env name default =
    match Sys.getenv_opt name with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            printf "%s must be a positive integer (got %S)@." name s;
            exit 1)
    | None -> default
  in
  let total_groups = env "ELMO_TE_GROUPS" 2_000 in
  let packets = env "ELMO_TE_PACKETS" 20_000 in
  with_local_metrics @@ fun () ->
  let flight = Tel_flight.create ~capacity:256 () in
  let cfg =
    {
      (Tel_report.default_config topo) with
      Tel_report.groups = total_groups;
      tenants = 40;
      packets;
      churn_events = max 200 (total_groups / 10);
      seed = 33;
      (* Just under the hottest host links' peak: the watermark path (and
         its flight-recorder notes) exercises on every default run. *)
      watermark = 0.02;
    }
  in
  printf "topology: %a; %d groups over %d tenants; %d packets of %d B; \
          zipf %g; k=%d; watermark %g@."
    Topology.pp topo cfg.Tel_report.groups cfg.Tel_report.tenants
    cfg.Tel_report.packets cfg.Tel_report.payload cfg.Tel_report.zipf
    cfg.Tel_report.k cfg.Tel_report.watermark;
  let res = Tel_report.run ~flight cfg in
  printf "%a@." Tel_report.pp res;
  let ls = Tel_recorder.links res.Tel_report.recorder in
  let sk = Tel_recorder.sketch res.Tel_report.recorder in
  let anomaly =
    (not res.Tel_report.sketch_ok) || res.Tel_report.missed_heavy > 0
  in
  (* Flight dump on anomaly (sketch bound violated) or on the expected
     watermark breaches — the always-on recorder's tail shows the
     control-plane ops leading up to them. *)
  if anomaly then
    Tel_flight.dump_to_file ~reason:"sketch_violation" flight
      "FLIGHT_te_baseline.json"
  else if Tel_series.watermark_events ls > 0 then
    Tel_flight.dump_to_file ~reason:"watermark" flight
      "FLIGHT_te_baseline.json";
  if Sys.file_exists "FLIGHT_te_baseline.json" then
    printf "wrote FLIGHT_te_baseline.json@.";
  let kind_name = function
    | Tel_series.Host_link -> "host"
    | Tel_series.Leaf_spine -> "leaf-spine"
    | Tel_series.Spine_core -> "spine-core"
  in
  let link_json (r : Tel_report.link_row) =
    Printf.sprintf
      {|    {"link": %d, "kind": "%s", "a": %d, "b": %d, "bytes": %d, "max_util": %.6f, "mean_util": %.6f}|}
      r.Tel_report.row_link
      (kind_name r.Tel_report.row_kind)
      r.Tel_report.row_a r.Tel_report.row_b r.Tel_report.row_bytes
      r.Tel_report.row_max_util r.Tel_report.row_mean_util
  in
  let elephant_json (e : Tel_report.elephant) =
    Printf.sprintf
      {|    {"group": %d, "est": %d, "err": %d, "exact": %d, "within_bound": %b}|}
      e.Tel_report.eg e.Tel_report.est e.Tel_report.err
      e.Tel_report.exact_bytes e.Tel_report.within
  in
  let prov =
    Provenance.capture ~seed:cfg.Tel_report.seed
      ~params:(Format.asprintf "%a" Params.pp cfg.Tel_report.params)
      ~domains:1 ()
  in
  let oc = open_out "BENCH_telemetry.json" in
  Printf.fprintf oc
    {|{
  "benchmark": "te_baseline",
  "provenance": %s,
  "topology": {"pods": 8, "leaves_per_pod": 8, "spines_per_pod": 4, "hosts_per_leaf": 32, "link_gbps": %g},
  "groups": %d,
  "tenants": %d,
  "packets": %d,
  "injected": %d,
  "no_header": %d,
  "churn_events": %d,
  "payload": %d,
  "zipf": %g,
  "seed": %d,
  "utilization": {"max": %.6f, "mean": %.6f, "active_links": %d, "links": %d, "cap_bytes_per_window": %d, "watermark": %g, "watermark_events": %d},
  "links": [
%s
  ],
  "elephants": [
%s
  ],
  "sketch": {"k": %d, "ok": %b, "missed_heavy": %d, "total_bytes": %d, "evictions": %d},
  "churn": {"fast_path": %d, "reencoded": %d}%s
}
|}
    (Provenance.to_json prov)
    (Topology.link_gbps topo) cfg.Tel_report.groups cfg.Tel_report.tenants
    cfg.Tel_report.packets res.Tel_report.injected res.Tel_report.no_header
    cfg.Tel_report.churn_events cfg.Tel_report.payload cfg.Tel_report.zipf
    cfg.Tel_report.seed
    (Tel_recorder.max_utilization res.Tel_report.recorder)
    (Tel_recorder.mean_utilization res.Tel_report.recorder)
    (Tel_series.active_links ls) (Tel_series.nlinks ls)
    (Tel_series.cap_bytes ls) (Tel_series.watermark ls)
    (Tel_series.watermark_events ls)
    (String.concat ",\n" (List.map link_json (Tel_report.link_rows res ~n:20)))
    (String.concat ",\n"
       (List.map elephant_json (Tel_report.elephants res ~n:16)))
    (Tel_sketch.k sk) res.Tel_report.sketch_ok res.Tel_report.missed_heavy
    (Tel_sketch.total sk) (Tel_sketch.evictions sk)
    res.Tel_report.churn.Controller.fast_path
    res.Tel_report.churn.Controller.reencoded (metrics_field ());
  close_out oc;
  printf "wrote BENCH_telemetry.json@.";
  if anomaly then begin
    printf "FAIL: sketch error bound violated against exact counts@.";
    exit 1
  end

let targets =
  [
    ("fig4", fig4);
    ("fig5", fig5);
    ("uniform", uniform);
    ("constrained", constrained);
    ("table2", table2);
    ("failures", failures);
    ("fig6", fig6);
    ("sflow", sflow);
    ("fig7", fig7);
    ("table3", table3);
    ("ablation", ablation);
    ("twotier", twotier);
    ("nonclos", nonclos);
    ("legacy", legacy);
    ("bisection", bisection);
    ("strawman", strawman);
    ("churn", churn);
    ("hotpath", hotpath);
    ("parallel", parallel);
    ("faults", faults);
    ("recovery", recovery);
    ("shard", shard);
    ("te-baseline", te_baseline);
    ("verify", verify);
    ("micro", micro);
  ]

let all () = List.iter (fun (_, f) -> f ()) targets

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let want_trace = List.mem "--trace" argv in
  let want_metrics = List.mem "--metrics" argv in
  let args =
    List.filter (fun a -> a <> "--trace" && a <> "--metrics") argv
  in
  let clock = Obs_clock.of_kind (Obs_clock.kind_of_env ()) in
  let trace = if want_trace then Some (Obs_trace.create ~clock ()) else None in
  let metrics =
    if want_trace || want_metrics then Some (Obs_metrics.create ()) else None
  in
  if want_trace || want_metrics then
    Obs.install (Obs_ctx.make ?metrics ?trace ~clock ());
  (match args with
  | [] | [ "all" ] -> all ()
  | args ->
      List.iter
        (fun a ->
          match List.assoc_opt a targets with
          | Some f -> f ()
          | None ->
              printf "unknown target %S; available: %s all@." a
                (String.concat " " (List.map fst targets));
              exit 1)
        args);
  (match trace with
  | Some tr ->
      Obs_trace.write_chrome tr "BENCH_trace.json";
      printf "wrote BENCH_trace.json (%d events, %s clock)@."
        (Obs_trace.event_count tr)
        (Obs_clock.kind_to_string (Obs_clock.kind clock))
  | None -> ());
  match metrics with
  | Some m when want_metrics -> printf "@.metrics:@.%a@." Obs_metrics.pp m
  | Some _ | None -> ()
