(** Membership-churn and failure simulation (§5.1.3, Table 2).

    Mirrors the paper's setup: every group member is randomly a sender,
    receiver, or both; join events pick a uniformly random non-member VM of
    the owning tenant, leave events a uniformly random member; the number of
    events per group is proportional to group size (achieved by weighting
    group choice by size). Updates are accounted per switch by the Elmo
    controller and, in parallel, by the Li et al. baseline model over the
    same event stream. *)

type layer_load = { mean : float; max : float }
(** Updates per second, over the switches of one layer. *)

type result = {
  events : int;
  fast_path : int;
      (** receiver events the controller absorbed through the incremental
          encoding fast path (no re-clustering) during this run *)
  reencoded : int;  (** receiver events that fell back to a full re-encode *)
  elmo_hypervisor : layer_load;
  elmo_leaf : layer_load;
  elmo_spine : layer_load;
  elmo_core : layer_load;  (** always 0 — Elmo installs no core state *)
  li_leaf : layer_load;
  li_spine : layer_load;
  li_core : layer_load;
}

val setup_controller :
  ?domains:int ->
  Rng.t ->
  Controller.t ->
  Vm_placement.t ->
  Workload.group array ->
  unit
(** Registers every workload group with the controller, assigning each
    member host a uniformly random role. The whole population goes through
    {!Controller.install_all}: batch-encoded on [domains] worker domains
    (default 1) with results — and rng consumption — identical for every
    domain count. *)

val run :
  Rng.t ->
  Controller.t ->
  Vm_placement.t ->
  Workload.group array ->
  events:int ->
  events_per_second:float ->
  li:Li_et_al.t option ->
  result
(** Drives [events] membership events through a controller prepared by
    {!setup_controller}. Mean and max are computed over the switches of each
    layer (hypervisor means are over hosts that run at least one VM). When
    [li] is given, the same event stream is replayed against it. *)

type failure_result = {
  trials : int;
  affected_fraction_mean : float;
  affected_fraction_max : float;
  rule_updates_per_hypervisor_mean : float;
      (** flow-rule updates per touched hypervisor, averaged over trials --
          the paper's "hypervisor switches incur average (max) updates of
          176.9 (1712) and 674.9 (1852) per failure event" metric *)
  rule_updates_per_hypervisor_max : float;
  recovery_affected_fraction_mean : float;
      (** groups whose paths moved {e back} when the victim recovered —
          recovery is a topology change too, not a free undo *)
  recovery_updates_per_hypervisor_mean : float;
}

val spine_failures : Rng.t -> Controller.t -> trials:int -> failure_result
(** Fails [trials] random spines one at a time (recovering in between) and
    measures group impact and hypervisor update fan-out (§5.1.3b). Both the
    failure and the recovery reports are accounted, and the controller's
    invariants are re-checked after each (inside the controller itself). *)

val core_failures : Rng.t -> Controller.t -> trials:int -> failure_result

(** {1 Churn under injected install faults}

    Twin-controller experiment for the fault-tolerant control plane: the
    same membership stream drives one controller wired to a perfect fabric
    and one wired through a seeded {!Fault} schedule (plus a deterministic
    subset of wedged switches). Periodic probes inject the same
    [(group, sender)] packet into both fabrics. Degraded groups on the
    faulty side fall back to default p-rules — more transmissions, never a
    lost receiver. *)

type fault_result = {
  fault_events : int;  (** membership events actually performed *)
  probes : int;  (** packets injected on the faulty side *)
  blackholes : int;
      (** probes on the faulty side that failed to reach every member —
          must be zero: degradation trades traffic, never delivery *)
  clean_tx : int;  (** Σ transmissions over probes, perfect controller *)
  faulty_tx : int;  (** Σ transmissions over the same probes, faulted *)
  extra_traffic : float;  (** [faulty_tx /. clean_tx -. 1.0] *)
  install : Controller.install_stats;  (** faulty controller's counters *)
  faults : Fault.stats;
}

val fault_run :
  ?flight:Elmo_telemetry.Flight_recorder.t ->
  seed:int ->
  Topology.t ->
  Params.t ->
  groups:int ->
  group_size:int ->
  events:int ->
  rate:float ->
  probe_every:int ->
  fault_result
(** Runs [events] membership events over [groups] groups of initial size
    [group_size] (all roles [Both]), probing every [probe_every] events and
    once at the end. [rate] is the overall per-operation fault probability
    ({!Fault.random}); [rate = 0.0] wires the faulty side reliably too,
    making it a self-check (expect [extra_traffic = 0.0]).

    Every membership op is recorded into [flight] (default: the ambient
    {!Elmo_telemetry.Flight_recorder}), along with ["probe.blackhole"]
    notes (group, sender) and ["install.exhausted"] notes (event index,
    cumulative count) as they happen — so a dump on anomaly shows the ops
    that led up to it. *)
