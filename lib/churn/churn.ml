module Obs = Elmo_obs.Obs

type layer_load = { mean : float; max : float }

type result = {
  events : int;
  fast_path : int;
  reencoded : int;
  elmo_hypervisor : layer_load;
  elmo_leaf : layer_load;
  elmo_spine : layer_load;
  elmo_core : layer_load;
  li_leaf : layer_load;
  li_spine : layer_load;
  li_core : layer_load;
}

let random_role rng =
  match Rng.int rng 3 with
  | 0 -> Controller.Sender
  | 1 -> Controller.Receiver
  | _ -> Controller.Both

let setup_controller ?(domains = 1) rng ctrl _placement groups =
  Obs.with_span "churn.setup"
    ~attrs:[ ("groups", Obs.Int (Array.length groups)) ]
  @@ fun () ->
  (* Roles are drawn sequentially in array order before any parallel work,
     so the rng stream is identical for every domain count. *)
  let batch =
    Array.to_list groups
    |> List.map (fun g ->
           ( g.Workload.group_id,
             Array.to_list g.Workload.member_hosts
             |> List.map (fun h -> (h, random_role rng)) ))
  in
  ignore (Controller.install_all ~domains ctrl batch)

(* Weighted choice by initial group size (events per group proportional to
   size, as in the paper). *)
let weighted_picker groups =
  let n = Array.length groups in
  let prefix = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) + Array.length groups.(i).Workload.member_hosts
  done;
  let total = prefix.(n) in
  fun rng ->
    let x = Rng.int rng total in
    (* binary search for the segment containing x *)
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if prefix.(mid) <= x then lo := mid else hi := mid
    done;
    groups.(!lo)

let layer_load ~duration counts ~over =
  let rates =
    List.filter_map
      (fun i ->
        if over i then Some (float_of_int counts.(i) /. duration) else None)
      (List.init (Array.length counts) Fun.id)
  in
  match rates with
  | [] -> { mean = 0.0; max = 0.0 }
  | _ ->
      let arr = Array.of_list rates in
      {
        mean = Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr);
        max = Array.fold_left Float.max 0.0 arr;
      }

let run rng ctrl placement groups ~events ~events_per_second ~li =
  Obs.with_span "churn.run" ~attrs:[ ("events", Obs.Int events) ]
  @@ fun () ->
  let topo = Controller.topology ctrl in
  let pick = weighted_picker groups in
  let hyp_counts = Array.make (Topology.num_hosts topo) 0 in
  let leaf_counts = Array.make (Topology.num_leaves topo) 0 in
  let spine_counts = Array.make (Topology.num_spines topo) 0 in
  let li_leaf = Array.make (Topology.num_leaves topo) 0 in
  let li_spine = Array.make (Topology.num_spines topo) 0 in
  let li_core = Array.make (max 1 (Topology.num_cores topo)) 0 in
  let tree_of group =
    Option.map (fun e -> e.Encoding.tree) (Controller.encoding ctrl ~group)
  in
  let performed = ref 0 in
  let stats0 = Controller.churn_stats ctrl in
  for _ = 1 to events do
    let g = pick rng in
    let group = g.Workload.group_id in
    let members = Controller.members ctrl ~group in
    let tenant = placement.Vm_placement.tenants.(g.Workload.tenant_id) in
    let vms = tenant.Vm_placement.vm_hosts in
    let member_set = Hashtbl.create (2 * List.length members) in
    List.iter (fun (h, _) -> Hashtbl.replace member_set h ()) members;
    (* Uniform non-member: rejection-sample the tenant's VMs, falling back
       to an explicit scan when the group covers most of the tenant. *)
    let pick_non_member () =
      let n = Array.length vms in
      if Hashtbl.length member_set >= n then None
      else begin
        let rec try_random attempts =
          if attempts = 0 then begin
            let rest =
              Array.to_list vms
              |> List.filter (fun h -> not (Hashtbl.mem member_set h))
            in
            Some (List.nth rest (Rng.int rng (List.length rest)))
          end
          else begin
            let h = vms.(Rng.int rng n) in
            if Hashtbl.mem member_set h then try_random (attempts - 1) else Some h
          end
        in
        try_random 30
      end
    in
    let want_join = List.is_empty members || Rng.bool rng in
    (* Deep-copy the snapshot: the incremental fast path mutates the live
       tree in place, so without a copy the baseline would diff the new
       membership against itself and under-count. *)
    let old_tree =
      match li with Some _ -> Option.map Tree.copy (tree_of group) | None -> None
    in
    let leave () =
      match members with
      | [] -> None
      | _ :: _ ->
          let host, _ = List.nth members (Rng.int rng (List.length members)) in
          Some (Controller.leave ctrl ~group ~host)
    in
    let updates =
      if want_join then
        match pick_non_member () with
        | Some host ->
            Some (Controller.join ctrl ~group ~host ~role:(random_role rng))
        | None -> leave ()
      else leave ()
    in
    match updates with
    | None -> ()
    | Some u ->
        incr performed;
        List.iter (fun h -> hyp_counts.(h) <- hyp_counts.(h) + 1) u.Controller.hypervisors;
        List.iter (fun l -> leaf_counts.(l) <- leaf_counts.(l) + 1) u.Controller.leaves;
        List.iter
          (fun p ->
            List.iter
              (fun s -> spine_counts.(s) <- spine_counts.(s) + 1)
              (Topology.spines_of_pod topo p))
          u.Controller.pods;
        (match li with
        | None -> ()
        | Some li_state ->
            let new_tree = tree_of group in
            let touch =
              Li_et_al.update li_state ~group ~old_tree ~new_tree
            in
            List.iter (fun l -> li_leaf.(l) <- li_leaf.(l) + 1) touch.Li_et_al.leaves;
            List.iter (fun s -> li_spine.(s) <- li_spine.(s) + 1) touch.Li_et_al.spines;
            List.iter (fun c -> li_core.(c) <- li_core.(c) + 1) touch.Li_et_al.cores)
  done;
  let duration = float_of_int !performed /. events_per_second in
  let duration = if duration <= 0.0 then 1.0 else duration in
  let host_active h = placement.Vm_placement.host_load.(h) > 0 in
  let all _ = true in
  let stats1 = Controller.churn_stats ctrl in
  {
    events = !performed;
    fast_path = stats1.Controller.fast_path - stats0.Controller.fast_path;
    reencoded = stats1.Controller.reencoded - stats0.Controller.reencoded;
    elmo_hypervisor = layer_load ~duration hyp_counts ~over:host_active;
    elmo_leaf = layer_load ~duration leaf_counts ~over:all;
    elmo_spine = layer_load ~duration spine_counts ~over:all;
    elmo_core = { mean = 0.0; max = 0.0 };
    li_leaf = layer_load ~duration li_leaf ~over:all;
    li_spine = layer_load ~duration li_spine ~over:all;
    li_core = layer_load ~duration li_core ~over:all;
  }

type failure_result = {
  trials : int;
  affected_fraction_mean : float;
  affected_fraction_max : float;
  rule_updates_per_hypervisor_mean : float;
  rule_updates_per_hypervisor_max : float;
}

let failure_trials rng ctrl ~trials ~count ~fail ~recover =
  if count = 0 || trials = 0 then
    {
      trials = 0;
      affected_fraction_mean = 0.0;
      affected_fraction_max = 0.0;
      rule_updates_per_hypervisor_mean = 0.0;
      rule_updates_per_hypervisor_max = 0.0;
    }
  else begin
    let fractions = ref [] in
    let updates = ref [] in
    let max_updates = ref [] in
    let total = float_of_int (max 1 (Controller.group_count ctrl)) in
    for _ = 1 to trials do
      let victim = Rng.int rng count in
      let report : Controller.failure_report = fail victim in
      fractions :=
        (float_of_int report.Controller.affected_groups /. total) :: !fractions;
      updates := report.Controller.rule_updates_mean :: !updates;
      max_updates :=
        float_of_int report.Controller.rule_updates_max :: !max_updates;
      ignore (recover victim)
    done;
    let arr l = Array.of_list l in
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
    let maxv a = Array.fold_left Float.max 0.0 a in
    let f = arr !fractions and u = arr !updates and m = arr !max_updates in
    {
      trials;
      affected_fraction_mean = mean f;
      affected_fraction_max = maxv f;
      rule_updates_per_hypervisor_mean = mean u;
      rule_updates_per_hypervisor_max = maxv m;
    }
  end

let spine_failures rng ctrl ~trials =
  let topo = Controller.topology ctrl in
  failure_trials rng ctrl ~trials ~count:(Topology.num_spines topo)
    ~fail:(Controller.fail_spine ctrl)
    ~recover:(Controller.recover_spine ctrl)

let core_failures rng ctrl ~trials =
  let topo = Controller.topology ctrl in
  failure_trials rng ctrl ~trials ~count:(Topology.num_cores topo)
    ~fail:(Controller.fail_core ctrl)
    ~recover:(Controller.recover_core ctrl)
