module Obs = Elmo_obs.Obs

type layer_load = { mean : float; max : float }

type result = {
  events : int;
  fast_path : int;
  reencoded : int;
  elmo_hypervisor : layer_load;
  elmo_leaf : layer_load;
  elmo_spine : layer_load;
  elmo_core : layer_load;
  li_leaf : layer_load;
  li_spine : layer_load;
  li_core : layer_load;
}

let random_role rng =
  match Rng.int rng 3 with
  | 0 -> Controller.Sender
  | 1 -> Controller.Receiver
  | _ -> Controller.Both

let setup_controller ?(domains = 1) rng ctrl _placement groups =
  Obs.with_span "churn.setup"
    ~attrs:[ ("groups", Obs.Int (Array.length groups)) ]
  @@ fun () ->
  (* Roles are drawn sequentially in array order before any parallel work,
     so the rng stream is identical for every domain count. *)
  let batch =
    Array.to_list groups
    |> List.map (fun g ->
           ( g.Workload.group_id,
             Array.to_list g.Workload.member_hosts
             |> List.map (fun h -> (h, random_role rng)) ))
  in
  ignore (Controller.install_all ~domains ctrl batch)

(* Weighted choice by initial group size (events per group proportional to
   size, as in the paper). *)
let weighted_picker groups =
  let n = Array.length groups in
  let prefix = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) + Array.length groups.(i).Workload.member_hosts
  done;
  let total = prefix.(n) in
  fun rng ->
    let x = Rng.int rng total in
    (* binary search for the segment containing x *)
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if prefix.(mid) <= x then lo := mid else hi := mid
    done;
    groups.(!lo)

let layer_load ~duration counts ~over =
  let rates =
    List.filter_map
      (fun i ->
        if over i then Some (float_of_int counts.(i) /. duration) else None)
      (List.init (Array.length counts) Fun.id)
  in
  match rates with
  | [] -> { mean = 0.0; max = 0.0 }
  | _ ->
      let arr = Array.of_list rates in
      {
        mean = Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr);
        max = Array.fold_left Float.max 0.0 arr;
      }

let run rng ctrl placement groups ~events ~events_per_second ~li =
  Obs.with_span "churn.run" ~attrs:[ ("events", Obs.Int events) ]
  @@ fun () ->
  let topo = Controller.topology ctrl in
  let pick = weighted_picker groups in
  let hyp_counts = Array.make (Topology.num_hosts topo) 0 in
  let leaf_counts = Array.make (Topology.num_leaves topo) 0 in
  let spine_counts = Array.make (Topology.num_spines topo) 0 in
  let li_leaf = Array.make (Topology.num_leaves topo) 0 in
  let li_spine = Array.make (Topology.num_spines topo) 0 in
  let li_core = Array.make (max 1 (Topology.num_cores topo)) 0 in
  let tree_of group =
    Option.map (fun e -> e.Encoding.tree) (Controller.encoding ctrl ~group)
  in
  let performed = ref 0 in
  let stats0 = Controller.churn_stats ctrl in
  for _ = 1 to events do
    let g = pick rng in
    let group = g.Workload.group_id in
    let members = Controller.members ctrl ~group in
    let tenant = placement.Vm_placement.tenants.(g.Workload.tenant_id) in
    let vms = tenant.Vm_placement.vm_hosts in
    let member_set = Hashtbl.create (2 * List.length members) in
    List.iter (fun (h, _) -> Hashtbl.replace member_set h ()) members;
    (* Uniform non-member: rejection-sample the tenant's VMs, falling back
       to an explicit scan when the group covers most of the tenant. *)
    let pick_non_member () =
      let n = Array.length vms in
      if Hashtbl.length member_set >= n then None
      else begin
        let rec try_random attempts =
          if attempts = 0 then begin
            let rest =
              Array.to_list vms
              |> List.filter (fun h -> not (Hashtbl.mem member_set h))
            in
            Some (List.nth rest (Rng.int rng (List.length rest)))
          end
          else begin
            let h = vms.(Rng.int rng n) in
            if Hashtbl.mem member_set h then try_random (attempts - 1) else Some h
          end
        in
        try_random 30
      end
    in
    let want_join = List.is_empty members || Rng.bool rng in
    (* Deep-copy the snapshot: the incremental fast path mutates the live
       tree in place, so without a copy the baseline would diff the new
       membership against itself and under-count. *)
    let old_tree =
      match li with Some _ -> Option.map Tree.copy (tree_of group) | None -> None
    in
    let leave () =
      match members with
      | [] -> None
      | _ :: _ ->
          let host, _ = List.nth members (Rng.int rng (List.length members)) in
          Some (Controller.leave ctrl ~group ~host)
    in
    let updates =
      if want_join then
        match pick_non_member () with
        | Some host ->
            Some (Controller.join ctrl ~group ~host ~role:(random_role rng))
        | None -> leave ()
      else leave ()
    in
    match updates with
    | None -> ()
    | Some u ->
        incr performed;
        List.iter (fun h -> hyp_counts.(h) <- hyp_counts.(h) + 1) u.Controller.hypervisors;
        List.iter (fun l -> leaf_counts.(l) <- leaf_counts.(l) + 1) u.Controller.leaves;
        List.iter
          (fun p ->
            List.iter
              (fun s -> spine_counts.(s) <- spine_counts.(s) + 1)
              (Topology.spines_of_pod topo p))
          u.Controller.pods;
        (match li with
        | None -> ()
        | Some li_state ->
            let new_tree = tree_of group in
            let touch =
              Li_et_al.update li_state ~group ~old_tree ~new_tree
            in
            List.iter (fun l -> li_leaf.(l) <- li_leaf.(l) + 1) touch.Li_et_al.leaves;
            List.iter (fun s -> li_spine.(s) <- li_spine.(s) + 1) touch.Li_et_al.spines;
            List.iter (fun c -> li_core.(c) <- li_core.(c) + 1) touch.Li_et_al.cores)
  done;
  let duration = float_of_int !performed /. events_per_second in
  let duration = if duration <= 0.0 then 1.0 else duration in
  let host_active h = placement.Vm_placement.host_load.(h) > 0 in
  let all _ = true in
  let stats1 = Controller.churn_stats ctrl in
  (* Export where the run's load landed across the control plane's per-pod
     shards, for the metrics dump and the shard benchmark. *)
  List.iter
    (fun (s : Controller.shard_stat) ->
      Obs.gauge
        (Printf.sprintf "churn.shard.%d.events" s.Controller.shard_pod)
        (float_of_int s.Controller.shard_churn_events))
    (Controller.shard_stats ctrl);
  {
    events = !performed;
    fast_path = stats1.Controller.fast_path - stats0.Controller.fast_path;
    reencoded = stats1.Controller.reencoded - stats0.Controller.reencoded;
    elmo_hypervisor = layer_load ~duration hyp_counts ~over:host_active;
    elmo_leaf = layer_load ~duration leaf_counts ~over:all;
    elmo_spine = layer_load ~duration spine_counts ~over:all;
    elmo_core = { mean = 0.0; max = 0.0 };
    li_leaf = layer_load ~duration li_leaf ~over:all;
    li_spine = layer_load ~duration li_spine ~over:all;
    li_core = layer_load ~duration li_core ~over:all;
  }

type failure_result = {
  trials : int;
  affected_fraction_mean : float;
  affected_fraction_max : float;
  rule_updates_per_hypervisor_mean : float;
  rule_updates_per_hypervisor_max : float;
  recovery_affected_fraction_mean : float;
  recovery_updates_per_hypervisor_mean : float;
}

let no_failures =
  {
    trials = 0;
    affected_fraction_mean = 0.0;
    affected_fraction_max = 0.0;
    rule_updates_per_hypervisor_mean = 0.0;
    rule_updates_per_hypervisor_max = 0.0;
    recovery_affected_fraction_mean = 0.0;
    recovery_updates_per_hypervisor_mean = 0.0;
  }

let failure_trials rng ctrl ~trials ~count ~fail ~recover =
  if count = 0 || trials = 0 then no_failures
  else begin
    let fractions = ref [] in
    let updates = ref [] in
    let max_updates = ref [] in
    let rec_fractions = ref [] in
    let rec_updates = ref [] in
    let total = float_of_int (max 1 (Controller.group_count ctrl)) in
    for _ = 1 to trials do
      let victim = Rng.int rng count in
      let report : Controller.failure_report = fail victim in
      fractions :=
        (float_of_int report.Controller.affected_groups /. total) :: !fractions;
      updates := report.Controller.rule_updates_mean :: !updates;
      max_updates :=
        float_of_int report.Controller.rule_updates_max :: !max_updates;
      (* Recovery restores the original trees, so it fans out updates of
         its own — account it instead of discarding the report (the
         controller re-checks its invariants inside both calls). *)
      let back : Controller.failure_report = recover victim in
      rec_fractions :=
        (float_of_int back.Controller.affected_groups /. total)
        :: !rec_fractions;
      rec_updates := back.Controller.rule_updates_mean :: !rec_updates
    done;
    let arr l = Array.of_list l in
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
    let maxv a = Array.fold_left Float.max 0.0 a in
    let f = arr !fractions and u = arr !updates and m = arr !max_updates in
    {
      trials;
      affected_fraction_mean = mean f;
      affected_fraction_max = maxv f;
      rule_updates_per_hypervisor_mean = mean u;
      rule_updates_per_hypervisor_max = maxv m;
      recovery_affected_fraction_mean = mean (arr !rec_fractions);
      recovery_updates_per_hypervisor_mean = mean (arr !rec_updates);
    }
  end

(* {1 Churn under injected install faults} *)

type fault_result = {
  fault_events : int;
  probes : int;
  blackholes : int;
  clean_tx : int;
  faulty_tx : int;
  extra_traffic : float;
  install : Controller.install_stats;
  faults : Fault.stats;
}

let fault_run ?flight ~seed topo params ~groups ~group_size ~events ~rate
    ~probe_every =
  Obs.with_span "churn.fault_run"
    ~attrs:[ ("events", Obs.Int events); ("rate", Obs.Float rate) ]
  @@ fun () ->
  let fr =
    match flight with
    | Some fr -> fr
    | None -> Elmo_telemetry.Flight_recorder.ambient ()
  in
  let record_op op = Elmo_telemetry.Flight_recorder.record_op fr op in
  let note label ~a ~b = Elmo_telemetry.Flight_recorder.note fr label ~a ~b in
  let rng = Rng.create seed in
  let clean_fab = Fabric.create topo in
  let faulty_fab = Fabric.create topo in
  let schedule =
    if rate > 0.0 then Fault.random (Rng.split rng) ~rate else Fault.Reliable
  in
  let fault = Fault.create ~schedule faulty_fab in
  (* Wedge a deterministic subset of switches: transient faults almost never
     outlast a retry budget, so persistent per-switch refusal is what makes
     graceful degradation actually observable. *)
  if rate > 0.0 then begin
    for l = 0 to Topology.num_leaves topo - 1 do
      if l mod 8 = 3 then Fault.wedge_leaf fault l true
    done;
    for p = 0 to topo.Topology.pods - 1 do
      if p mod 4 = 1 then Fault.wedge_pod fault p true
    done
  end;
  let clean =
    Controller.create
      ~fabric_hooks:(Fabric.controller_hooks clean_fab)
      topo params
  in
  let faulty =
    Controller.create ~fabric_hooks:(Fault.hooks fault) topo params
  in
  (* The driver owns membership, so both controllers see a bit-identical op
     stream no matter what the fault schedule does to either of them. *)
  let num_hosts = Topology.num_hosts topo in
  let members = Array.make (max 1 groups) [] in
  let host_ids = Array.init num_hosts Fun.id in
  for g = 0 to groups - 1 do
    let hosts =
      Rng.sample_without_replacement rng (min group_size num_hosts) host_ids
    in
    members.(g) <- Array.to_list hosts;
    let ms = List.map (fun h -> (h, Controller.Both)) members.(g) in
    ignore (Controller.add_group clean ~group:g ms : Controller.updates);
    ignore (Controller.add_group faulty ~group:g ms : Controller.updates);
    record_op (Journal.Add_group { group = g; members = ms })
  done;
  let is_member g h = List.exists (fun x -> x = h) members.(g) in
  let pick_non_member g =
    if List.length members.(g) >= num_hosts then None
    else begin
      let rec try_random attempts =
        if attempts = 0 then begin
          let rest =
            List.filter
              (fun h -> not (is_member g h))
              (List.init num_hosts Fun.id)
          in
          Some (List.nth rest (Rng.int rng (List.length rest)))
        end
        else
          let h = Rng.int rng num_hosts in
          if is_member g h then try_random (attempts - 1) else Some h
      in
      try_random 30
    end
  in
  let probes = ref 0 in
  let blackholes = ref 0 in
  let clean_tx = ref 0 in
  let faulty_tx = ref 0 in
  let probe_all () =
    for g = 0 to groups - 1 do
      match members.(g) with
      | [] | [ _ ] -> ()
      | ms ->
          let sender = List.nth ms (Rng.int rng (List.length ms)) in
          let c = Verify.probe clean clean_fab ~group:g ~sender in
          let f = Verify.probe faulty faulty_fab ~group:g ~sender in
          (match c, f with
          | Some (_, ctx), Some (fok, ftx) ->
              incr probes;
              clean_tx := !clean_tx + ctx;
              faulty_tx := !faulty_tx + ftx;
              if not fok then begin
                incr blackholes;
                Obs.incr "churn.fault_blackholes";
                note "probe.blackhole" ~a:g ~b:sender
              end
          | _, Some (fok, _) ->
              incr probes;
              if not fok then begin
                incr blackholes;
                note "probe.blackhole" ~a:g ~b:sender
              end
          | _, None -> ())
    done
  in
  let performed = ref 0 in
  (* Track retry-budget exhaustion as it happens: the flight recorder gets
     a note per newly-exhausted operation, so a dump after an anomaly shows
     which events drove the controller into degradation. *)
  let exhausted_seen = ref 0 in
  let check_exhaustion ev =
    let s = Controller.install_stats faulty in
    if s.Controller.exhausted > !exhausted_seen then begin
      note "install.exhausted" ~a:ev ~b:s.Controller.exhausted;
      exhausted_seen := s.Controller.exhausted
    end
  in
  for ev = 1 to events do
    let g = Rng.int rng (max 1 groups) in
    let want_join =
      match members.(g) with [] -> true | _ :: _ -> Rng.bool rng
    in
    (if want_join then
       match pick_non_member g with
       | None -> ()
       | Some host ->
           members.(g) <- host :: members.(g);
           incr performed;
           ignore
             (Controller.join clean ~group:g ~host ~role:Controller.Both
               : Controller.updates);
           ignore
             (Controller.join faulty ~group:g ~host ~role:Controller.Both
               : Controller.updates);
           record_op (Journal.Join { group = g; host; role = Controller.Both })
     else
       match members.(g) with
       | [] -> ()
       | ms ->
           let host = List.nth ms (Rng.int rng (List.length ms)) in
           members.(g) <- List.filter (fun h -> h <> host) ms;
           incr performed;
           ignore (Controller.leave clean ~group:g ~host : Controller.updates);
           ignore (Controller.leave faulty ~group:g ~host : Controller.updates);
           record_op (Journal.Leave { group = g; host }));
    check_exhaustion ev;
    if probe_every > 0 && ev mod probe_every = 0 then probe_all ()
  done;
  probe_all ();
  let extra_traffic =
    if !clean_tx = 0 then 0.0
    else (float_of_int !faulty_tx /. float_of_int !clean_tx) -. 1.0
  in
  Obs.observe "churn.fault_extra_traffic" extra_traffic;
  {
    fault_events = !performed;
    probes = !probes;
    blackholes = !blackholes;
    clean_tx = !clean_tx;
    faulty_tx = !faulty_tx;
    extra_traffic;
    install = Controller.install_stats faulty;
    faults = Fault.stats fault;
  }

let spine_failures rng ctrl ~trials =
  let topo = Controller.topology ctrl in
  failure_trials rng ctrl ~trials ~count:(Topology.num_spines topo)
    ~fail:(Controller.fail_spine ctrl)
    ~recover:(Controller.recover_spine ctrl)

let core_failures rng ctrl ~trials =
  let topo = Controller.topology ctrl in
  failure_trials rng ctrl ~trials ~count:(Topology.num_cores topo)
    ~fail:(Controller.fail_core ctrl)
    ~recover:(Controller.recover_core ctrl)
