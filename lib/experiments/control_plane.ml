module Obs = Elmo_obs.Obs

type config = {
  topo : Topology.t;
  tenants : int;
  total_groups : int;
  strategy : Vm_placement.strategy;
  dist : Group_dist.kind;
  params : Params.t;
  events : int;
  events_per_second : float;
  failure_trials : int;
  seed : int;
  domains : int;
}

let default_config () =
  let base = Scalability.default_config () in
  {
    topo = base.Scalability.topo;
    tenants = base.Scalability.tenants;
    total_groups = base.Scalability.total_groups;
    strategy = Vm_placement.Pack_up_to 1;
    dist = base.Scalability.dist;
    params = base.Scalability.params;
    events = min base.Scalability.total_groups 100_000;
    events_per_second = 1_000.0;
    failure_trials = 10;
    seed = base.Scalability.seed;
    domains = base.Scalability.domains;
  }

type result = {
  churn : Churn.result;
  spine_failures : Churn.failure_result;
  core_failures : Churn.failure_result;
}

let run config =
  Obs.with_span "control_plane.run"
    ~attrs:
      [ ("groups", Obs.Int config.total_groups);
        ("events", Obs.Int config.events);
        ("domains", Obs.Int config.domains) ]
  @@ fun () ->
  let rng = Rng.create config.seed in
  let tenant_sizes = Vm_placement.default_tenant_sizes rng config.tenants in
  let placement =
    Vm_placement.place rng config.topo ~strategy:config.strategy
      ~host_capacity:20 ~tenant_sizes
  in
  let workload_rng = Rng.create (config.seed + 1) in
  let groups =
    Workload.generate workload_rng placement ~kind:config.dist
      ~total_groups:config.total_groups
  in
  let ctrl = Controller.create config.topo config.params in
  let setup_rng = Rng.create (config.seed + 3) in
  Churn.setup_controller ~domains:config.domains setup_rng ctrl placement groups;
  let li = Li_et_al.create config.topo in
  (* Seed Li with the initial receiver trees so aggregation state exists
     before churn begins. *)
  Array.iter
    (fun g ->
      match Controller.encoding ctrl ~group:g.Workload.group_id with
      | Some enc -> Li_et_al.add_group li ~group:g.Workload.group_id enc.Encoding.tree
      | None -> ())
    groups;
  let churn_rng = Rng.create (config.seed + 4) in
  let churn =
    Churn.run churn_rng ctrl placement groups ~events:config.events
      ~events_per_second:config.events_per_second ~li:(Some li)
  in
  let failure_rng = Rng.create (config.seed + 5) in
  let spine_failures, core_failures =
    Obs.with_span "control_plane.failures"
      ~attrs:[ ("trials", Obs.Int config.failure_trials) ]
    @@ fun () ->
    ( Churn.spine_failures failure_rng ctrl ~trials:config.failure_trials,
      Churn.core_failures failure_rng ctrl ~trials:config.failure_trials )
  in
  { churn; spine_failures; core_failures }

let pp_load ppf (l : Churn.layer_load) =
  Format.fprintf ppf "%7.1f (%7.1f)" l.Churn.mean l.Churn.max

let pp_table2 ppf (c : Churn.result) =
  let rule_events = c.Churn.fast_path + c.Churn.reencoded in
  let hit_rate =
    if rule_events = 0 then 0.0
    else 100.0 *. float_of_int c.Churn.fast_path /. float_of_int rule_events
  in
  Format.fprintf ppf
    "@[<v>Table 2: avg (max) switch updates per second @ %d events@ \
     (incremental fast path: %d/%d receiver events in place, %.1f%%)@ \
     %-12s %-20s %s@ hypervisor   %a %20s@ leaf         %a    %a@ \
     spine        %a    %a@ core         %7.1f (%7.1f)    %a@]"
    c.Churn.events c.Churn.fast_path rule_events hit_rate "switch" "Elmo"
    "Li et al." pp_load c.Churn.elmo_hypervisor "(not evaluated)" pp_load
    c.Churn.elmo_leaf pp_load c.Churn.li_leaf pp_load c.Churn.elmo_spine
    pp_load c.Churn.li_spine 0.0 0.0 pp_load c.Churn.li_core

let pp_failures ppf r =
  let pp ppf (f : Churn.failure_result) =
    Format.fprintf ppf
      "%d trials: %.1f%% groups affected (max %.1f%%); rule updates per hypervisor \
       mean %.1f (max %.0f); recovery touched %.1f%% groups, %.1f updates/hyp"
      f.Churn.trials
      (100.0 *. f.Churn.affected_fraction_mean)
      (100.0 *. f.Churn.affected_fraction_max)
      f.Churn.rule_updates_per_hypervisor_mean
      f.Churn.rule_updates_per_hypervisor_max
      (100.0 *. f.Churn.recovery_affected_fraction_mean)
      f.Churn.recovery_updates_per_hypervisor_mean
  in
  Format.fprintf ppf "@[<v>spine failures: %a@ core failures:  %a@]" pp
    r.spine_failures pp r.core_failures
