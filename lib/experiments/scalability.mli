(** The paper's large-scale simulation (§5.1.1–5.1.2): places tenants on a
    Clos fabric, generates multicast groups, encodes every group with
    Algorithm 1 across a sweep of redundancy limits R, and reports the three
    panels of Figures 4/5 (plus the in-text variants: Uniform group sizes,
    constrained s-rule capacity, reduced header budget).

    Groups are streamed — the same seed regenerates the identical workload
    for every R — so memory stays flat even at the paper's million-group
    scale. *)

type config = {
  topo : Topology.t;
  tenants : int;
  total_groups : int;
  strategy : Vm_placement.strategy;
  dist : Group_dist.kind;
  params : Params.t;  (** R is overridden per sweep point *)
  seed : int;
  domains : int;
      (** worker domains for batch group encoding (default 1: sequential).
          Results are bit-identical for every value; only wall-clock time
          changes. *)
}

val default_config : unit -> config
(** The paper's setup: Facebook fabric, 3,000 tenants, 1M groups scaled by
    [ELMO_GROUPS] (default 100_000; [ELMO_FULL=1] runs the full million),
    P = 12 placement, WVE sizes, seed 42, domains from [ELMO_DOMAINS]
    (default 1). Because coverage at the paper's scale is shaped by group
    tables filling up, [fmax] is scaled by the same factor as the group
    count (30,000 entries at 1M groups). *)

val domains_from_env : int -> int
(** [domains_from_env default] reads [ELMO_DOMAINS] (a positive integer),
    falling back to [default]. Alias of {!Domains.from_env}, which warns
    (once) when the request exceeds the machine's recommended domain
    count. *)

type point = {
  r : int;
  total_groups : int;
  covered : int;
      (** groups encoded without a default p-rule — the paper's coverage
          metric (s-rules allowed) *)
  covered_pure_prules : int;  (** stricter: neither s-rules nor default *)
  groups_with_default : int;
  groups_with_srules : int;
  leaf_srules : Stats.summary;  (** occupancy per leaf switch *)
  spine_srules : Stats.summary;  (** per physical spine *)
  header_bytes : Stats.summary;  (** per group, random member as sender *)
  overhead_64 : float;  (** Σ actual bytes / Σ ideal bytes at 64 B payload *)
  overhead_1500 : float;
  unicast_overhead : float;  (** transmission ratio of the unicast baseline *)
  overlay_overhead : float;
  li_leaf_entries : Stats.summary;  (** Li et al. aggregated entries/leaf *)
  li_spine_entries : Stats.summary;
}

val run_point : config -> r:int -> point
val run : config -> r_values:int list -> point list

val pp_point : Format.formatter -> point -> unit
