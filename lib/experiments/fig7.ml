type point = {
  prules : int;
  header_bytes : int;
  single_mpps : float;
  single_gbps : float;
  per_rule_mpps : float;
  per_rule_gbps : float;
}

let header_with_rules topo n =
  if n < 0 then invalid_arg "Fig7.header_with_rules";
  let leaf_w = Topology.leaf_downstream_width topo in
  let spine_w = Topology.spine_downstream_width topo in
  let num_leaves = Topology.num_leaves topo in
  let leaf_rule i =
    let bm = Bitmap.create leaf_w in
    Bitmap.set bm (i mod leaf_w);
    Bitmap.set bm ((i + 7) mod leaf_w);
    { Prule.bitmap = bm; switches = [ i mod num_leaves; (i + 1) mod num_leaves ] }
  in
  let spine_rule i =
    let bm = Bitmap.create spine_w in
    Bitmap.set bm (i mod spine_w);
    { Prule.bitmap = bm; switches = [ i mod topo.Topology.pods ] }
  in
  let u_leaf =
    {
      Prule.down = Bitmap.of_list leaf_w [ 0 ];
      up = Bitmap.create (Topology.leaf_upstream_width topo);
      multipath = true;
    }
  in
  let u_spine =
    if Topology.is_two_tier topo then None
    else
      Some
        {
          Prule.down = Bitmap.create spine_w;
          up = Bitmap.create (Topology.spine_upstream_width topo);
          multipath = true;
        }
  in
  let core =
    if Topology.is_two_tier topo then None
    else Some (Bitmap.of_list (Topology.core_downstream_width topo) [ 0; 1 ])
  in
  {
    Prule.u_leaf;
    u_spine;
    core;
    d_spine = List.init (min 2 topo.Topology.pods) spine_rule;
    d_spine_default = None;
    d_leaf = List.init n leaf_rule;
    d_leaf_default = None;
  }

(* Time [f] until at least 50 ms have elapsed; returns calls per second. *)
let rate ~iterations f =
  let rec go total_calls total_time =
    let t0 = Unix.gettimeofday () in (* elmo-lint: allow determinism — wall-clock times the encoder itself; it never feeds simulation state *)
    for _ = 1 to iterations do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in (* elmo-lint: allow determinism — wall-clock times the encoder itself; it never feeds simulation state *)
    let total_calls = total_calls + iterations in
    let total_time = total_time +. dt in
    if total_time < 0.05 then go total_calls total_time
    else float_of_int total_calls /. total_time
  in
  go 0 0.0

let run ?(payload = 1458) ?(iterations = 2_000) topo counts =
  let fabric = Fabric.create topo in
  let hv = Hypervisor.create fabric ~host:0 in
  let payload_bytes = Bytes.create payload in
  List.map
    (fun n ->
      let header = header_with_rules topo n in
      let bytes = Prule.header_bytes topo header in
      Hypervisor.install_sender hv ~group:n header;
      let single =
        rate ~iterations (fun () ->
            Hypervisor.encap hv ~group:n ~payload:payload_bytes)
      in
      let per_rule =
        rate ~iterations (fun () ->
            Hypervisor.encap_per_rule hv ~group:n ~payload:payload_bytes)
      in
      let gbps pps = pps *. float_of_int ((payload + bytes) * 8) /. 1e9 in
      {
        prules = n;
        header_bytes = bytes;
        single_mpps = single /. 1e6;
        single_gbps = gbps single;
        per_rule_mpps = per_rule /. 1e6;
        per_rule_gbps = gbps per_rule;
      })
    counts

let pp_point ppf p =
  Format.fprintf ppf
    "%2d p-rules (%3d B): single-write %.2f Mpps / %.2f Gbps; per-rule %.2f Mpps / %.2f Gbps"
    p.prules p.header_bytes p.single_mpps p.single_gbps p.per_rule_mpps
    p.per_rule_gbps
