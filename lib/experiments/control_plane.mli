(** Control-plane experiments (§5.1.3): Table 2's per-switch update rates
    under membership churn (Elmo vs Li et al.) and the spine/core failure
    impact numbers. Uses the same placement/workload generator as the
    scalability runs, with the P = 1 strategy the paper uses for Table 2. *)

type config = {
  topo : Topology.t;
  tenants : int;
  total_groups : int;
  strategy : Vm_placement.strategy;
  dist : Group_dist.kind;
  params : Params.t;
  events : int;
  events_per_second : float;
  failure_trials : int;
  seed : int;
  domains : int;
      (** worker domains for the initial {!Churn.setup_controller} batch
          install (default 1; [ELMO_DOMAINS]). Bit-identical results for
          every value. *)
}

val default_config : unit -> config
(** P = 1, WVE, 1,000 events/s; group count scaled like
    {!Scalability.default_config} and event count = min(group count, 100k). *)

type result = {
  churn : Churn.result;
  spine_failures : Churn.failure_result;
  core_failures : Churn.failure_result;
}

val run : config -> result

val pp_table2 : Format.formatter -> Churn.result -> unit
(** Renders Table 2: average (max) updates per second per switch layer. *)

val pp_failures : Format.formatter -> result -> unit
