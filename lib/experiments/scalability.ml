module Obs = Elmo_obs.Obs

type config = {
  topo : Topology.t;
  tenants : int;
  total_groups : int;
  strategy : Vm_placement.strategy;
  dist : Group_dist.kind;
  params : Params.t;
  seed : int;
  domains : int;
}

let groups_from_env default =
  match Sys.getenv_opt "ELMO_FULL" with
  | Some ("1" | "true") -> 1_000_000
  | Some _ | None -> (
      match Sys.getenv_opt "ELMO_GROUPS" with
      | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
      | None -> default)

let domains_from_env default = Domains.from_env default

let paper_scale_groups = 1_000_000
let paper_scale_fmax = 30_000

let scaled_fmax ~total_groups ~fmax_at_paper_scale =
  max 50 (fmax_at_paper_scale * total_groups / paper_scale_groups)

let default_config () =
  let total_groups = groups_from_env 100_000 in
  let fmax = scaled_fmax ~total_groups ~fmax_at_paper_scale:paper_scale_fmax in
  {
    topo = Topology.facebook_fabric ();
    tenants = 3_000;
    total_groups;
    strategy = Vm_placement.Pack_up_to 12;
    dist = Group_dist.Wve;
    params = Params.create ~fmax ();
    seed = 42;
    domains = domains_from_env 1;
  }

type point = {
  r : int;
  total_groups : int;
  covered : int;
  covered_pure_prules : int;
  groups_with_default : int;
  groups_with_srules : int;
  leaf_srules : Stats.summary;
  spine_srules : Stats.summary;
  header_bytes : Stats.summary;
  overhead_64 : float;
  overhead_1500 : float;
  unicast_overhead : float;
  overlay_overhead : float;
  li_leaf_entries : Stats.summary;
  li_spine_entries : Stats.summary;
}

let placement_of config =
  let rng = Rng.create config.seed in
  let tenant_sizes = Vm_placement.default_tenant_sizes rng config.tenants in
  Vm_placement.place rng config.topo ~strategy:config.strategy ~host_capacity:20
    ~tenant_sizes

(* Groups buffered per parallel-encode batch: large enough to keep the
   domain pool busy, small enough that memory stays flat even at the
   paper's million-group scale. *)
let batch_groups = 1024

let run_point_with placement (config : config) ~r =
  Obs.with_span "scalability.run_point"
    ~attrs:
      [ ("r", Obs.Int r); ("groups", Obs.Int config.total_groups);
        ("domains", Obs.Int config.domains) ]
  @@ fun () ->
  let topo = config.topo in
  let params = Params.with_r config.params r in
  let srules = Srule_state.create topo ~fmax:params.Params.fmax in
  let li = Li_et_al.create topo in
  let covered = ref 0 in
  let covered_pure = ref 0 in
  let with_default = ref 0 in
  let with_srules = ref 0 in
  let n = ref 0 in
  let header_sizes = ref [] in
  let sum_tx = ref 0.0 in
  let sum_hdr = ref 0.0 in
  let sum_ideal = ref 0.0 in
  let sum_unicast = ref 0.0 in
  let sum_overlay = ref 0.0 in
  let workload_rng = Rng.create (config.seed + 1) in
  let sender_rng = Rng.create (config.seed + 2) in
  (* All per-group accounting, in stream order regardless of how the group
     was encoded (sequentially or on a pool worker). *)
  let tally (g : Workload.group) sender (enc : Encoding.t) =
    incr n;
    let tree = enc.Encoding.tree in
    if Encoding.covered_without_default enc then incr covered;
    if Encoding.covered_by_prules enc then incr covered_pure;
    if Encoding.uses_default enc then incr with_default;
    if Encoding.srule_entries enc > 0 then incr with_srules;
    Li_et_al.add_group li ~group:g.Workload.group_id tree;
    header_sizes :=
      float_of_int (Encoding.header_bytes enc ~sender) :: !header_sizes;
    let c = Traffic.measure enc ~sender in
    sum_tx := !sum_tx +. float_of_int c.Traffic.transmissions;
    sum_hdr := !sum_hdr +. float_of_int c.Traffic.header_bytes;
    sum_ideal := !sum_ideal +. float_of_int c.Traffic.ideal_transmissions;
    let uc = Unicast_overlay.unicast tree ~sender in
    let ov = Unicast_overlay.overlay tree ~sender in
    sum_unicast := !sum_unicast +. float_of_int uc.Unicast_overlay.transmissions;
    sum_overlay := !sum_overlay +. float_of_int ov.Unicast_overlay.transmissions
  in
  let tree_of (g : Workload.group) =
    Tree.of_members topo (Array.to_list g.Workload.member_hosts)
  in
  let buf = ref [] and nbuf = ref 0 in
  let flush pool =
    if !nbuf > 0 then begin
      let items = Array.of_list (List.rev !buf) in
      buf := [];
      nbuf := 0;
      match pool with
      | None ->
          Array.iter
            (fun (g, sender) -> tally g sender (Encoding.encode params srules (tree_of g)))
            items
      | Some pool ->
          (* Two-phase batch: optimistic parallel encode against a frozen
             snapshot, then sequential commit in stream (= group id) order
             with re-encode on conflict — bit-identical to the sequential
             loop above. *)
          let snap = Srule_state.snapshot srules in
          let encoded =
            Domain_pool.map
              ?probe:(Obs.pool_probe ())
              pool
              (fun (g, _) ->
                let txn = Srule_state.txn snap in
                (Encoding.encode_txn params txn (tree_of g), txn))
              items
          in
          Array.iteri
            (fun i (g, sender) ->
              let enc, txn = encoded.(i) in
              let enc =
                match Srule_state.commit srules txn with
                | Ok () -> enc
                | Error _ -> Encoding.encode params srules enc.Encoding.tree
              in
              tally g sender enc)
            items;
          assert (Srule_state.check srules)
    end
  in
  let stream pool =
    Workload.iter workload_rng placement ~kind:config.dist
      ~total_groups:config.total_groups (fun g ->
        let sender = Rng.choice sender_rng g.Workload.member_hosts in
        buf := (g, sender) :: !buf;
        incr nbuf;
        if !nbuf >= batch_groups then flush pool);
    flush pool
  in
  (if config.domains <= 1 then stream None
   else begin
     let worker_init, worker_exit = Obs.worker_hooks () in
     Domain_pool.with_pool ~worker_init ~worker_exit config.domains (fun pool ->
         stream (Some pool))
   end);
  let overhead payload =
    let per_packet = payload +. float_of_int Traffic.vxlan_encap_bytes in
    ((!sum_tx *. per_packet) +. !sum_hdr) /. (!sum_ideal *. per_packet) -. 1.0
  in
  {
    r;
    total_groups = !n;
    covered = !covered;
    covered_pure_prules = !covered_pure;
    groups_with_default = !with_default;
    groups_with_srules = !with_srules;
    leaf_srules = Stats.summarize (Stats.of_ints (Srule_state.leaf_occupancy srules));
    spine_srules =
      Stats.summarize (Stats.of_ints (Srule_state.spine_occupancy srules));
    header_bytes = Stats.summarize (Array.of_list !header_sizes);
    overhead_64 = overhead 64.0;
    overhead_1500 = overhead 1500.0;
    unicast_overhead = (!sum_unicast /. !sum_ideal) -. 1.0;
    overlay_overhead = (!sum_overlay /. !sum_ideal) -. 1.0;
    li_leaf_entries = Stats.summarize (Stats.of_ints (Li_et_al.leaf_entries li));
    li_spine_entries = Stats.summarize (Stats.of_ints (Li_et_al.spine_entries li));
  }

let run_point config ~r = run_point_with (placement_of config) config ~r

let run config ~r_values =
  let placement = placement_of config in
  List.map (fun r -> run_point_with placement config ~r) r_values

let pp_point ppf p =
  Format.fprintf ppf
    "@[<v>R=%d groups=%d covered=%d (%.1f%%) pure-prule=%d srule-groups=%d default-groups=%d@ \
     leaf s-rules: %a@ spine s-rules: %a@ header bytes: %a@ \
     overhead: %.1f%% (64B) %.1f%% (1500B); unicast %.0f%% overlay %.0f%%@ \
     Li leaf entries: %a@ Li spine entries: %a@]"
    p.r p.total_groups p.covered
    (100.0 *. float_of_int p.covered /. float_of_int (max 1 p.total_groups))
    p.covered_pure_prules p.groups_with_srules p.groups_with_default Stats.pp_summary p.leaf_srules
    Stats.pp_summary p.spine_srules Stats.pp_summary p.header_bytes
    (100.0 *. p.overhead_64) (100.0 *. p.overhead_1500)
    (100.0 *. p.unicast_overhead) (100.0 *. p.overlay_overhead)
    Stats.pp_summary p.li_leaf_entries Stats.pp_summary p.li_spine_entries
