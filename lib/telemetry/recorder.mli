(** Fabric-facing telemetry recorder: wires {!Fabric.set_telemetry} to a
    {!Link_series} (per-hop link accounting) and a {!Sketch} (per-packet
    heavy-hitter weights by group id).

    The per-hop path is allocation-free; per-packet work (sketch update,
    watermark-event emission, window rotation every [advance_every]
    packets) runs once per {!Fabric.inject}. Attaching a recorder never
    changes forwarding, delivery, or report contents — only observes
    them. *)

type t

val create :
  ?windows:int ->
  ?window_s:float ->
  ?k:int ->
  ?advance_every:int ->
  ?watermark:float ->
  ?flight:Flight_recorder.t ->
  Topology.t ->
  t
(** [windows]/[window_s]/[watermark] size the {!Link_series} (defaults 8 /
    1e-3 / 0); [k] sizes the {!Sketch} (default 16); [advance_every]
    packets per ring window (default 64, must be positive); [flight]
    receives watermark notes (default: the calling domain's
    {!Flight_recorder.ambient}). *)

val links : t -> Link_series.t
val sketch : t -> Sketch.t
val packets : t -> int

val record_hop : t -> payload:int -> Fabric.hop -> unit
(** Account one hop to its link: [payload + hop_header_bytes] wire bytes.
    Allocation-free. Host-to/from-leaf hops land on the host link,
    leaf-spine and spine-core hops on theirs; delivery hops reuse the
    host link. *)

val record_packet : t -> group:int -> sender:int -> bytes:int -> unit
(** Per-inject bookkeeping: sketch update, watermark drain (emitting
    ["telemetry.watermark"] instants + flight-recorder notes), window
    rotation. *)

val telemetry : t -> Fabric.telemetry
val attach : t -> Fabric.t -> unit
(** [Fabric.set_telemetry fab (Some (telemetry t))]. *)

val detach : Fabric.t -> unit

val publish : t -> unit
(** Write the rollups as ambient gauges
    ([telemetry.max_link_utilization], [.mean_link_utilization],
    [.active_links], [.watermark_events], [.sketch_total_bytes],
    [.sketch_evictions], [.packets]). *)

val max_utilization : t -> float
(** Max over links of per-window peak utilization. *)

val mean_utilization : t -> float
(** Mean over {e active} links of run-mean utilization. *)
