(* Space-saving (Misra–Gries style) heavy-hitter sketch over int keys.

   k counters, each a (key, count, err) triple stored in parallel int
   arrays so the update path allocates nothing. On a miss with all slots
   full, the minimum-count slot is evicted: the newcomer inherits the
   evicted count as its overestimation error. Classic guarantees (Metwally
   et al., "Efficient computation of frequent and top-k elements"):
   est - err <= true <= est for every tracked key, and any key whose true
   weight exceeds total/k is guaranteed to be tracked. *)

type t = {
  keys : int array;  (* -1 = empty slot *)
  counts : int array;
  errs : int array;
  k : int;
  mutable total : int;
  mutable evictions : int;
}

let create k =
  if k <= 0 then invalid_arg "Sketch.create: k must be positive";
  {
    keys = Array.make k (-1);
    counts = Array.make k 0;
    errs = Array.make k 0;
    k;
    total = 0;
    evictions = 0;
  }

(* elmo-lint: zero-alloc *)
let rec scan_key (keys : int array) key i n =
  if i >= n then -1
  else if Array.unsafe_get keys i = key then i
  else scan_key keys key (i + 1) n

(* elmo-lint: zero-alloc *)
let rec scan_min (counts : int array) best i n =
  if i >= n then best
  else
    let best =
      if Array.unsafe_get counts i < Array.unsafe_get counts best then i
      else best
    in
    scan_min counts best (i + 1) n

(* elmo-lint: zero-alloc *)
let update t ~key ~weight =
  if key < 0 then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Sketch.update: key must be non-negative";
  if weight < 0 then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Sketch.update: weight must be non-negative";
  t.total <- t.total + weight;
  let i = scan_key t.keys key 0 t.k in
  if i >= 0 then
    Array.unsafe_set t.counts i (Array.unsafe_get t.counts i + weight)
  else begin
    let m = scan_min t.counts 0 1 t.k in
    let old = Array.unsafe_get t.counts m in
    if Array.unsafe_get t.keys m >= 0 then t.evictions <- t.evictions + 1;
    Array.unsafe_set t.keys m key;
    Array.unsafe_set t.counts m (old + weight);
    Array.unsafe_set t.errs m old
  end

type entry = { key : int; est : int; err : int }

let entries t =
  let l = ref [] in
  for i = t.k - 1 downto 0 do
    if t.keys.(i) >= 0 then
      l := { key = t.keys.(i); est = t.counts.(i); err = t.errs.(i) } :: !l
  done;
  List.sort
    (fun a b ->
      match Int.compare b.est a.est with 0 -> Int.compare a.key b.key | c -> c)
    !l

let top t ~n =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take n (entries t)

let min_count t =
  (* Empty slots hold count 0, so this is 0 until the sketch fills up. *)
  let m = ref t.counts.(0) in
  for i = 1 to t.k - 1 do
    if t.counts.(i) < !m then m := t.counts.(i)
  done;
  !m

let mem t key = scan_key t.keys key 0 t.k >= 0
let total t = t.total
let k t = t.k
let evictions t = t.evictions

let pp_entry ppf e =
  Format.fprintf ppf "key %d: %d bytes (err <= %d)" e.key e.est e.err
