(** Deterministic space-saving (Misra–Gries) heavy-hitter sketch.

    Tracks the top-[k] int keys by accumulated weight in O(k) space with
    an allocation-free update path. On a miss with all [k] slots occupied
    the minimum-count slot is evicted and the newcomer inherits its count
    as overestimation error.

    Guarantees (checked by the test suite against exact counts):
    - for every tracked key, [est - err <= true_weight <= est];
    - every key whose true weight exceeds [total / k] is tracked;
    - an untracked key's true weight is at most {!min_count}. *)

type t

val create : int -> t
(** [create k] tracks at most [k] keys. Raises [Invalid_argument] if
    [k <= 0]. *)

val update : t -> key:int -> weight:int -> unit
(** Add [weight] to [key]'s counter (evicting the minimum slot on a miss).
    Allocation-free. Raises [Invalid_argument] on a negative key or
    weight. *)

type entry = { key : int; est : int; err : int }
(** A tracked key: [est] overestimates its true weight by at most
    [err]. *)

val entries : t -> entry list
(** All tracked keys, by descending estimate (ties by ascending key). *)

val top : t -> n:int -> entry list
(** First [n] of {!entries}. *)

val min_count : t -> int
(** Minimum counter value across all [k] slots (0 while the sketch has
    empty slots) — the upper bound on any untracked key's true weight. *)

val mem : t -> int -> bool
val total : t -> int
(** Sum of all weights ever fed to {!update}. *)

val k : t -> int
val evictions : t -> int
val pp_entry : Format.formatter -> entry -> unit
