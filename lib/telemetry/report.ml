module Obs = Elmo_obs.Obs

(* One self-contained measured run: place a tenant workload, batch-install
   it (sharded commit), churn memberships, then drive a skewed packet
   workload through the operational fabric with a Recorder attached. The
   result carries both the sketch view and the exact per-group byte counts,
   so callers (tests, bench te-baseline, elmo-sim top) can cross-validate
   the sketch's error bounds against ground truth. *)

type config = {
  topo : Topology.t;
  params : Params.t;
  groups : int;
  tenants : int;
  packets : int;
  churn_events : int;
  payload : int;
  zipf : float;
  seed : int;
  k : int;
  windows : int;
  window_s : float;
  advance_every : int;
  watermark : float;
}

let default_config topo =
  {
    topo;
    params = Params.create ();
    groups = 256;
    tenants = 20;
    packets = 2000;
    churn_events = 200;
    payload = 1500;
    zipf = 1.1;
    seed = 42;
    k = 16;
    windows = 8;
    window_s = 1e-3;
    advance_every = 64;
    watermark = 0.0;
  }

type result = {
  recorder : Recorder.t;
  exact : int array;  (* per-group exact wire bytes *)
  injected : int;
  no_header : int;
  churn : Controller.churn_stats;
  shards : Controller.shard_stat list;
  sketch_ok : bool;  (* every tracked entry within its error bound *)
  missed_heavy : int;  (* groups over total/k the sketch failed to track *)
}

let random_role rng =
  match Rng.int rng 3 with
  | 0 -> Controller.Sender
  | 1 -> Controller.Receiver
  | _ -> Controller.Both

(* Zipf(s) over ranks 1..n: cumulative weights, inverted by binary search
   on a uniform float draw. Group_dist sizes the groups; this skews which
   group talks, making a few groups the elephants the sketch must find. *)
let zipf_picker rng ~n ~s =
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cum.(i) <- !acc
  done;
  let total = !acc in
  fun () ->
    let x = Rng.float rng total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) <= x then lo := mid + 1 else hi := mid
    done;
    !lo

let run ?flight cfg =
  Obs.with_span "telemetry.report"
    ~attrs:
      [ ("groups", Obs.Int cfg.groups); ("packets", Obs.Int cfg.packets) ]
  @@ fun () ->
  let fr =
    match flight with Some fr -> fr | None -> Flight_recorder.ambient ()
  in
  let rng = Rng.create cfg.seed in
  (* Tenant sizes scaled to the topology: a tenant under Pack_up_to 12 can
     hold at most 12 VMs per rack, so cap the size distribution where the
     paper's parameters would overflow a small test fabric. *)
  let max_tenant = max 10 (min 5000 (12 * Topology.num_leaves cfg.topo)) in
  let mean = Float.min 135.5 (float_of_int max_tenant /. 4.0) in
  let tenant_sizes =
    Array.init cfg.tenants (fun _ ->
        Vm_placement.tenant_size_sample rng ~min:10 ~mean ~max:max_tenant)
  in
  let placement =
    Vm_placement.place rng cfg.topo ~strategy:(Vm_placement.Pack_up_to 12)
      ~host_capacity:20 ~tenant_sizes
  in
  let groups =
    Workload.generate (Rng.split rng) placement ~kind:Group_dist.Wve
      ~total_groups:cfg.groups
  in
  (* Hook-free controller: batch setup runs the sharded commit path, so
     the report can surface per-pod commit counts. *)
  let ctrl = Controller.create cfg.topo cfg.params in
  let batch =
    Array.to_list groups
    |> List.map (fun g ->
           ( g.Workload.group_id,
             Array.to_list g.Workload.member_hosts
             |> List.map (fun h -> (h, random_role rng)) ))
  in
  ignore (Controller.install_all ~domains:1 ctrl batch : Controller.updates);
  List.iter
    (fun (group, members) ->
      Flight_recorder.record_op fr (Journal.Add_group { group; members }))
    batch;
  (* Membership churn before the packet phase, so the measured encodings
     include fast-path deltas, not just fresh encodes. *)
  let n = Array.length groups in
  for _ = 1 to cfg.churn_events do
    let gi = Rng.int rng (max 1 n) in
    let g = groups.(gi) in
    let group = g.Workload.group_id in
    let members = Controller.members ctrl ~group in
    let vms = placement.Vm_placement.tenants.(g.Workload.tenant_id).Vm_placement.vm_hosts in
    let is_member h = List.exists (fun (m, _) -> m = h) members in
    let want_join = List.is_empty members || Rng.bool rng in
    let joined =
      if not want_join then false
      else begin
        let rec try_pick attempts =
          if attempts = 0 then false
          else begin
            let h = vms.(Rng.int rng (Array.length vms)) in
            if is_member h then try_pick (attempts - 1)
            else begin
              let role = random_role rng in
              ignore (Controller.join ctrl ~group ~host:h ~role : Controller.updates);
              Flight_recorder.record_op fr (Journal.Join { group; host = h; role });
              true
            end
          end
        in
        try_pick 10
      end
    in
    if not joined then
      match members with
      | [] -> ()
      | ms ->
          let host, _ = List.nth ms (Rng.int rng (List.length ms)) in
          ignore (Controller.leave ctrl ~group ~host : Controller.updates);
          Flight_recorder.record_op fr (Journal.Leave { group; host })
  done;
  (* Materialize the post-churn encodings as fabric s-rules and attach the
     recorder before any packet flows. *)
  let fab = Fabric.create cfg.topo in
  Array.iter
    (fun g ->
      match Controller.encoding ctrl ~group:g.Workload.group_id with
      | Some enc -> Fabric.install_encoding fab ~group:g.Workload.group_id enc
      | None -> ())
    groups;
  let recorder =
    Recorder.create ~windows:cfg.windows ~window_s:cfg.window_s ~k:cfg.k
      ~advance_every:cfg.advance_every ~watermark:cfg.watermark ~flight:fr
      cfg.topo
  in
  Recorder.attach recorder fab;
  let pick = zipf_picker (Rng.split rng) ~n ~s:cfg.zipf in
  let exact = Array.make n 0 in
  let injected = ref 0 in
  let no_header = ref 0 in
  for _ = 1 to cfg.packets do
    let gi = pick () in
    let g = groups.(gi) in
    let group = g.Workload.group_id in
    match Controller.members ctrl ~group with
    | [] -> ()
    | ms -> (
        let sender, _ = List.nth ms (Rng.int rng (List.length ms)) in
        match Controller.header ctrl ~group ~sender with
        | None -> incr no_header
        | Some header ->
            let r = Fabric.inject fab ~sender ~group ~header ~payload:cfg.payload in
            incr injected;
            exact.(gi) <-
              exact.(gi)
              + (cfg.payload * r.Fabric.transmissions)
              + r.Fabric.header_bytes)
  done;
  Recorder.detach fab;
  Recorder.publish recorder;
  (* Cross-validate the sketch against ground truth. Sketch keys are group
     ids; [exact] is indexed by array position — identical here because
     Workload numbers groups densely from 0. *)
  let sketch = Recorder.sketch recorder in
  let total = Sketch.total sketch in
  let sketch_ok =
    List.for_all
      (fun (e : Sketch.entry) ->
        e.Sketch.key < n
        && e.Sketch.est - e.Sketch.err <= exact.(e.Sketch.key)
        && exact.(e.Sketch.key) <= e.Sketch.est)
      (Sketch.entries sketch)
  in
  let missed_heavy = ref 0 in
  for gi = 0 to n - 1 do
    if exact.(gi) * cfg.k > total && not (Sketch.mem sketch gi) then
      incr missed_heavy
  done;
  {
    recorder;
    exact;
    injected = !injected;
    no_header = !no_header;
    churn = Controller.churn_stats ctrl;
    shards = Controller.shard_stats ctrl;
    sketch_ok;
    missed_heavy = !missed_heavy;
  }

(* {1 Presentation} *)

type link_row = {
  row_link : int;
  row_kind : Link_series.link_kind;
  row_a : int;
  row_b : int;
  row_bytes : int;
  row_max_util : float;
  row_mean_util : float;
}

let link_rows res ~n =
  let ls = Recorder.links res.recorder in
  List.map
    (fun link ->
      let kind, a, b = Link_series.describe ls link in
      {
        row_link = link;
        row_kind = kind;
        row_a = a;
        row_b = b;
        row_bytes = Link_series.link_bytes ls ~link;
        row_max_util = Link_series.max_utilization ls ~link;
        row_mean_util = Link_series.mean_utilization ls ~link;
      })
    (Link_series.top ls ~n)

type elephant = {
  eg : int;
  est : int;
  err : int;
  exact_bytes : int;
  within : bool;
}

let elephants res ~n =
  List.map
    (fun (e : Sketch.entry) ->
      let exact =
        if e.Sketch.key < Array.length res.exact then res.exact.(e.Sketch.key)
        else 0
      in
      {
        eg = e.Sketch.key;
        est = e.Sketch.est;
        err = e.Sketch.err;
        exact_bytes = exact;
        within = e.Sketch.est - e.Sketch.err <= exact && exact <= e.Sketch.est;
      })
    (Sketch.top (Recorder.sketch res.recorder) ~n)

let kind_name = function
  | Link_series.Host_link -> "host"
  | Link_series.Leaf_spine -> "leaf-spine"
  | Link_series.Spine_core -> "spine-core"

let pp ppf res =
  let ls = Recorder.links res.recorder in
  Format.fprintf ppf "packets injected      %d (no header: %d)@."
    res.injected res.no_header;
  Format.fprintf ppf "active links          %d / %d@."
    (Link_series.active_links ls) (Link_series.nlinks ls);
  Format.fprintf ppf "max link utilization  %.4f@."
    (Recorder.max_utilization res.recorder);
  Format.fprintf ppf "mean link utilization %.4f (active links)@."
    (Recorder.mean_utilization res.recorder);
  Format.fprintf ppf "watermark events      %d (threshold %g)@."
    (Link_series.watermark_events ls) (Link_series.watermark ls);
  let fp = res.churn.Controller.fast_path
  and re = res.churn.Controller.reencoded in
  if fp + re > 0 then
    Format.fprintf ppf "churn fast-path       %d/%d (%.1f%%)@." fp (fp + re)
      (100.0 *. float_of_int fp /. float_of_int (fp + re));
  let committed =
    List.fold_left
      (fun acc (s : Controller.shard_stat) -> acc + s.Controller.shard_groups)
      0 res.shards
  in
  Format.fprintf ppf "shard commits         %d groups over %d pods@."
    committed (List.length res.shards);
  Format.fprintf ppf "@.hottest links:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-10s %a  %9d B  max %.4f  mean %.4f@."
        (kind_name r.row_kind)
        (fun ppf () -> Link_series.pp_link ls ppf r.row_link)
        () r.row_bytes r.row_max_util r.row_mean_util)
    (link_rows res ~n:10);
  Format.fprintf ppf "@.elephant groups (sketch est vs exact):@.";
  List.iter
    (fun e ->
      Format.fprintf ppf "  group %-6d est %9d B  err <= %-8d exact %9d B  %s@."
        e.eg e.est e.err e.exact_bytes
        (if e.within then "ok" else "OUT OF BOUND"))
    (elephants res ~n:10);
  Format.fprintf ppf "@.sketch bounds hold    %b (missed heavy groups: %d)@."
    res.sketch_ok res.missed_heavy
