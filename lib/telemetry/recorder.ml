module Obs = Elmo_obs.Obs

(* Glue between the fabric's telemetry callbacks and the measurement
   structures: per-hop link accounting into [Link_series], per-packet group
   bytes into [Sketch]. The hop path is allocation-free; everything that
   allocates (watermark instants, flight-recorder notes, window rotation
   bookkeeping) runs in the per-packet path. *)

type t = {
  links : Link_series.t;
  sketch : Sketch.t;
  advance_every : int;  (* packets per window *)
  flight : Flight_recorder.t option;  (* None = the ambient recorder *)
  mutable packets : int;
}

let create ?(windows = 8) ?(window_s = 1e-3) ?(k = 16) ?(advance_every = 64)
    ?(watermark = 0.0) ?flight topo =
  if advance_every <= 0 then
    invalid_arg "Recorder.create: advance_every must be positive";
  {
    links = Link_series.create ~windows ~window_s ~watermark topo;
    sketch = Sketch.create k;
    advance_every;
    flight;
    packets = 0;
  }

let links t = t.links
let sketch t = t.sketch
let packets t = t.packets

(* One fabric hop -> one link-series record. Wire bytes of the copy on this
   link = payload + the Elmo header still attached at this depth. Nested
   single-constructor matches keep the dispatch tuple-free (a tuple
   scrutinee would allocate). *)
(* elmo-lint: zero-alloc *)
let record_hop t ~payload (h : Fabric.hop) =
  let bytes = payload + h.Fabric.hop_header_bytes in
  let ls = t.links in
  match h.Fabric.hop_from with
  | Fabric.Host_node host ->
      Link_series.record ls ~link:(Link_series.host_link ls ~host) ~bytes
  | Fabric.Leaf_node leaf -> (
      match h.Fabric.hop_to with
      | Fabric.Host_node host ->
          Link_series.record ls ~link:(Link_series.host_link ls ~host) ~bytes
      | Fabric.Spine_node spine ->
          Link_series.record ls
            ~link:(Link_series.leaf_spine_link ls ~leaf ~spine)
            ~bytes
      | Fabric.Leaf_node _ | Fabric.Core_node _ -> ())
  | Fabric.Spine_node spine -> (
      match h.Fabric.hop_to with
      | Fabric.Leaf_node leaf ->
          Link_series.record ls
            ~link:(Link_series.leaf_spine_link ls ~leaf ~spine)
            ~bytes
      | Fabric.Core_node core ->
          Link_series.record ls
            ~link:(Link_series.spine_core_link ls ~spine ~core)
            ~bytes
      | Fabric.Host_node _ | Fabric.Spine_node _ -> ())
  | Fabric.Core_node core -> (
      match h.Fabric.hop_to with
      | Fabric.Spine_node spine ->
          Link_series.record ls
            ~link:(Link_series.spine_core_link ls ~spine ~core)
            ~bytes
      | Fabric.Host_node _ | Fabric.Leaf_node _ | Fabric.Core_node _ -> ())

let emit_crossing t link =
  let ls = t.links in
  let wb = Link_series.window_bytes ls ~link in
  Obs.instant "telemetry.watermark"
    ~attrs:[ ("link", Obs.Int link); ("window_bytes", Obs.Int wb) ];
  let fr =
    match t.flight with Some fr -> fr | None -> Flight_recorder.ambient ()
  in
  Flight_recorder.note fr "watermark" ~a:link ~b:wb

let record_packet t ~group ~sender:_ ~bytes =
  Sketch.update t.sketch ~key:group ~weight:bytes;
  t.packets <- t.packets + 1;
  if Link_series.has_pending t.links then
    Link_series.drain_pending t.links (emit_crossing t);
  if t.packets mod t.advance_every = 0 then Link_series.advance t.links

let telemetry t =
  {
    Fabric.tel_hop = (fun ~payload h -> record_hop t ~payload h);
    tel_packet =
      (fun ~group ~sender ~bytes -> record_packet t ~group ~sender ~bytes);
  }

let attach t fab = Fabric.set_telemetry fab (Some (telemetry t))
let detach fab = Fabric.set_telemetry fab None

(* Fold the rollups into the ambient metrics registry so `--metrics` dumps
   and the Prometheus exposition carry them. *)
let publish t =
  let ls = t.links in
  let maxu = ref 0.0 and meanu = ref 0.0 and active = ref 0 in
  for l = 0 to Link_series.nlinks ls - 1 do
    if Link_series.link_pkts ls ~link:l > 0 then begin
      incr active;
      let mu = Link_series.max_utilization ls ~link:l in
      if mu > !maxu then maxu := mu;
      meanu := !meanu +. Link_series.mean_utilization ls ~link:l
    end
  done;
  let meanu = if !active = 0 then 0.0 else !meanu /. float_of_int !active in
  Obs.gauge "telemetry.max_link_utilization" !maxu;
  Obs.gauge "telemetry.mean_link_utilization" meanu;
  Obs.gauge "telemetry.active_links" (float_of_int !active);
  Obs.gauge "telemetry.watermark_events"
    (float_of_int (Link_series.watermark_events ls));
  Obs.gauge "telemetry.sketch_total_bytes" (float_of_int (Sketch.total t.sketch));
  Obs.gauge "telemetry.sketch_evictions"
    (float_of_int (Sketch.evictions t.sketch));
  Obs.gauge "telemetry.packets" (float_of_int t.packets)

let max_utilization t =
  let ls = t.links in
  let m = ref 0.0 in
  for l = 0 to Link_series.nlinks ls - 1 do
    let mu = Link_series.max_utilization ls ~link:l in
    if mu > !m then m := mu
  done;
  !m

let mean_utilization t =
  let ls = t.links in
  let sum = ref 0.0 and active = ref 0 in
  for l = 0 to Link_series.nlinks ls - 1 do
    if Link_series.link_pkts ls ~link:l > 0 then begin
      incr active;
      sum := !sum +. Link_series.mean_utilization ls ~link:l
    end
  done;
  if !active = 0 then 0.0 else !sum /. float_of_int !active
