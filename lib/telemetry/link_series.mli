(** Per-link byte/packet time series over a ring of fixed-duration
    windows — the measured-utilization signal the traffic-engineering
    roadmap item needs.

    Every physical edge of the Clos fabric gets a dense link id:
    - host links [0, hosts): host [h] to its leaf;
    - leaf-spine links: one per (leaf, plane) pair;
    - spine-core links: one per (spine, core-slot) pair.

    Byte counts accumulate into the current window of a [windows]-deep
    ring (rotated by {!advance}, which the feeding {!Recorder} calls every
    [advance_every] packets — windows are packet-count epochs standing in
    for wall-clock [window_s] slices, keeping the series deterministic)
    and into per-link run totals. Utilization = bytes / [cap_bytes] where
    [cap_bytes] is one link's capacity ({!Topology.link_gbps}) over one
    window.

    The {!record} path is allocation-free (lint-annotated and probed).
    Watermark crossings are detected inline but only noted into a
    preallocated pending buffer; the caller drains them
    ({!drain_pending}) outside the hot path to emit events. *)

type t

val create : ?windows:int -> ?window_s:float -> ?watermark:float -> Topology.t -> t
(** [windows] ring depth (default 8); [window_s] window duration in
    seconds (default 1e-3, sizing [cap_bytes]); [watermark] utilization
    fraction in [0, 1] above which a window's crossing is counted
    (default 0 = disabled). Raises [Invalid_argument] on non-positive
    [windows]/[window_s] or an out-of-range watermark. *)

(** {1 Link numbering} *)

val host_link : t -> host:int -> int
val leaf_spine_link : t -> leaf:int -> spine:int -> int
(** Physical spine id; the link is identified by the spine's plane. *)

val spine_core_link : t -> spine:int -> core:int -> int

(** {1 Recording (hot path)} *)

val record : t -> link:int -> bytes:int -> unit
(** Add one packet of [bytes] to [link]'s current window and run totals;
    allocation-free. A watermark crossing bumps {!watermark_events} and
    queues the link for {!drain_pending}. *)

val advance : t -> unit
(** Rotate to the next window (zeroing it). *)

val has_pending : t -> bool
val drain_pending : t -> (int -> unit) -> unit
(** Call [f] with each link that crossed the watermark since the last
    drain, then clear the queue. *)

(** {1 Rollups} *)

val nlinks : t -> int
val windows : t -> int
val window_s : t -> float
val cap_bytes : t -> int
val watermark : t -> float
val watermark_events : t -> int
val total_bytes : t -> int
val total_hops : t -> int
val link_bytes : t -> link:int -> int
(** Run-total bytes. *)

val link_pkts : t -> link:int -> int
val window_bytes : t -> link:int -> int
(** Bytes in the current (still-open) window. *)

val max_window_bytes : t -> link:int -> int
(** Max over the live windows of the ring. *)

val max_utilization : t -> link:int -> float
(** [max_window_bytes / cap_bytes]. *)

val mean_utilization : t -> link:int -> float
(** Run-total bytes over capacity across all elapsed windows. *)

val active_links : t -> int
(** Links that carried at least one packet. *)

val top : t -> n:int -> int list
(** Up to [n] busiest active links by run-total bytes (ties by id). *)

type link_kind = Host_link | Leaf_spine | Spine_core

val describe : t -> int -> link_kind * int * int
(** [describe t link] names the link's endpoints: [(Host_link, host,
    leaf)], [(Leaf_spine, leaf, plane)], or [(Spine_core, spine,
    core_slot)]. Raises [Invalid_argument] out of range. *)

val pp_link : t -> Format.formatter -> int -> unit
