(** Always-on flight recorder: a bounded ring of recent control-plane ops
    and anomaly notes, dumped to JSON when something goes wrong.

    Recording overwrites one preallocated ring slot per event and defers
    all formatting to {!dump}, so leaving it attached costs almost nothing.
    Ops arrive via {!observer} (plugged into {!Journal.create} /
    {!Replica.create}); free-form notes carry a label plus two int
    payloads. Dump sites: verify counterexample, blackhole probe failure,
    install-retry exhaustion, watermark breach. *)

type event =
  | Pad  (** never-written slot; absent from {!events} *)
  | Op of { seq : int; op : Journal.op }
  | Note of { seq : int; label : string; a : int; b : int }

type t

val create : ?capacity:int -> unit -> t
(** Ring of [capacity] (default 256) most-recent events. Raises
    [Invalid_argument] if non-positive. *)

val record_op : t -> Journal.op -> unit
val note : t -> string -> a:int -> b:int -> unit
val observer : t -> Journal.op -> unit
(** [observer t] is [record_op t] — shaped for
    [Journal.create ~observer]. *)

val events : t -> event list
(** The retained tail, oldest first: the last [min recorded capacity]
    events. *)

val recorded : t -> int
(** Total events ever recorded (>= retained). *)

val capacity : t -> int

val dump : ?reason:string -> t -> string
(** One JSON object [{"flight_recorder": {"reason", "recorded",
    "capacity", "events": [...]}}] with ops rendered via
    {!Journal.pp_op}; also emits an [Obs.instant] ["flight.dump"] marker
    into the ambient trace. *)

val dump_to_file : ?reason:string -> t -> string -> unit

val ambient : unit -> t
(** The calling domain's always-on recorder (created on first use) —
    anomaly sites dump the recent past without plumbing a handle. *)

val pp_event : Format.formatter -> event -> unit
