module Obs = Elmo_obs.Obs
module Jsonx = Elmo_obs.Jsonx

(* Always-on bounded ring of recent control-plane ops and anomaly notes.
   Recording is cheap (one ring slot overwrite); rendering happens only in
   [dump], on anomaly. Notes carry two int payloads rather than a formatted
   string so recording allocates only the event constructor itself. *)

type event =
  | Pad
  | Op of { seq : int; op : Journal.op }
  | Note of { seq : int; label : string; a : int; b : int }

type t = { ring : event array; cap : int; mutable next_seq : int }

let create ?(capacity = 256) () =
  if capacity <= 0 then
    invalid_arg "Flight_recorder.create: capacity must be positive";
  { ring = Array.make capacity Pad; cap = capacity; next_seq = 0 }

let record t ev =
  t.ring.(t.next_seq mod t.cap) <- ev;
  t.next_seq <- t.next_seq + 1

let record_op t op = record t (Op { seq = t.next_seq; op })
let note t label ~a ~b = record t (Note { seq = t.next_seq; label; a; b })
let observer t op = record_op t op

let recorded t = t.next_seq
let capacity t = t.cap

let events t =
  let n = min t.next_seq t.cap in
  List.init n (fun i -> t.ring.((t.next_seq - n + i) mod t.cap))

let pp_event ppf = function
  | Pad -> Format.fprintf ppf "(pad)"
  | Op { seq; op } -> Format.fprintf ppf "#%d %a" seq Journal.pp_op op
  | Note { seq; label; a; b } ->
      Format.fprintf ppf "#%d note %s a=%d b=%d" seq label a b

let dump ?(reason = "manual") t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"flight_recorder\": {\"reason\": ";
  Buffer.add_string b (Jsonx.string reason);
  Buffer.add_string b (Printf.sprintf ", \"recorded\": %d" t.next_seq);
  Buffer.add_string b (Printf.sprintf ", \"capacity\": %d" t.cap);
  Buffer.add_string b ", \"events\": [";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ", ";
      match ev with
      | Pad -> Buffer.add_string b "{\"kind\": \"pad\"}"
      | Op { seq; op } ->
          Buffer.add_string b
            (Printf.sprintf "{\"seq\": %d, \"kind\": \"op\", \"what\": %s}" seq
               (Jsonx.string (Format.asprintf "%a" Journal.pp_op op)))
      | Note { seq; label; a; b = nb } ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"seq\": %d, \"kind\": \"note\", \"label\": %s, \"a\": %d, \"b\": %d}"
               seq (Jsonx.string label) a nb))
    (events t);
  Buffer.add_string b "]}}";
  Obs.instant "flight.dump" ~attrs:[ ("reason", Obs.Str reason) ];
  Buffer.contents b

let dump_to_file ?reason t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (dump ?reason t);
      output_char oc '\n')

(* The ambient per-domain recorder: always on, so anomaly sites anywhere in
   the process can dump the recent past without plumbing a handle. *)
let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> create ())
let ambient () = Domain.DLS.get key
