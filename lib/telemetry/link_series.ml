(* Per-link byte/packet time series over a ring of fixed-duration windows.

   Links are the physical edges of the Clos fabric, numbered densely:
   - host links: [0, hosts) — host h <-> its leaf;
   - leaf-spine links: [leaf_off, leaf_off + leaves*spp) —
     index leaf_off + leaf*spp + plane;
   - spine-core links: [spine_off, spine_off + spines*cpp) —
     index spine_off + spine*cpp + (core mod cpp).

   The record path is int-only array arithmetic (proved allocation-free by
   the lint + Allocs.probe); watermark crossings are detected inline but
   only *noted* into a preallocated pending buffer — the allocating event
   emission happens in the caller's drain (Recorder.record_packet). *)

type t = {
  hosts : int;
  hpl : int;  (* hosts per leaf *)
  spp : int;  (* spines per pod *)
  cpp : int;  (* cores per plane *)
  leaf_off : int;
  spine_off : int;
  nlinks : int;
  windows : int;
  window_s : float;
  cap_bytes : int;  (* capacity of one link over one window *)
  wm_bytes : int;  (* watermark threshold in bytes; 0 = disabled *)
  watermark : float;
  win_bytes : int array array;  (* windows x nlinks *)
  win_pkts : int array array;
  tot_bytes : int array;  (* run totals per link *)
  tot_pkts : int array;
  pending : int array;  (* links that crossed the watermark, undrained *)
  mutable pending_n : int;
  mutable cur : int;  (* current window slot *)
  mutable elapsed : int;  (* windows ever started (>= 1) *)
  mutable total_bytes : int;
  mutable total_hops : int;
  mutable watermark_events : int;
}

let create ?(windows = 8) ?(window_s = 1e-3) ?(watermark = 0.0) topo =
  if windows <= 0 then invalid_arg "Link_series.create: windows must be positive";
  if not (window_s > 0.0) then
    invalid_arg "Link_series.create: window_s must be positive";
  if watermark < 0.0 || watermark > 1.0 then
    invalid_arg "Link_series.create: watermark must be in [0, 1]";
  let hosts = Topology.num_hosts topo in
  let leaves = Topology.num_leaves topo in
  let spines = Topology.num_spines topo in
  let spp = topo.Topology.spines_per_pod in
  let cpp = topo.Topology.cores_per_plane in
  let leaf_off = hosts in
  let spine_off = hosts + (leaves * spp) in
  let nlinks = spine_off + (spines * cpp) in
  let cap_bytes =
    max 1 (int_of_float (Topology.link_gbps topo *. 1e9 /. 8.0 *. window_s))
  in
  let wm_bytes =
    if watermark > 0.0 then
      max 1 (int_of_float (watermark *. float_of_int cap_bytes))
    else 0
  in
  {
    hosts;
    hpl = topo.Topology.hosts_per_leaf;
    spp;
    cpp;
    leaf_off;
    spine_off;
    nlinks;
    windows;
    window_s;
    cap_bytes;
    wm_bytes;
    watermark;
    win_bytes = Array.init windows (fun _ -> Array.make nlinks 0);
    win_pkts = Array.init windows (fun _ -> Array.make nlinks 0);
    tot_bytes = Array.make nlinks 0;
    tot_pkts = Array.make nlinks 0;
    pending = Array.make (max 16 (min 1024 nlinks)) 0;
    pending_n = 0;
    cur = 0;
    elapsed = 1;
    total_bytes = 0;
    total_hops = 0;
    watermark_events = 0;
  }

(* {1 Link numbering} *)

(* elmo-lint: zero-alloc *)
let host_link _t ~host = host

(* elmo-lint: zero-alloc *)
let leaf_spine_link t ~leaf ~spine = t.leaf_off + (leaf * t.spp) + (spine mod t.spp)

(* elmo-lint: zero-alloc *)
let spine_core_link t ~spine ~core = t.spine_off + (spine * t.cpp) + (core mod t.cpp)

(* {1 Recording} *)

(* elmo-lint: zero-alloc *)
let record t ~link ~bytes =
  let row = Array.unsafe_get t.win_bytes t.cur in
  let before = Array.unsafe_get row link in
  let after = before + bytes in
  Array.unsafe_set row link after;
  let prow = Array.unsafe_get t.win_pkts t.cur in
  Array.unsafe_set prow link (Array.unsafe_get prow link + 1);
  Array.unsafe_set t.tot_bytes link (Array.unsafe_get t.tot_bytes link + bytes);
  Array.unsafe_set t.tot_pkts link (Array.unsafe_get t.tot_pkts link + 1);
  t.total_bytes <- t.total_bytes + bytes;
  t.total_hops <- t.total_hops + 1;
  if t.wm_bytes > 0 && before < t.wm_bytes && after >= t.wm_bytes then begin
    t.watermark_events <- t.watermark_events + 1;
    if t.pending_n < Array.length t.pending then begin
      Array.unsafe_set t.pending t.pending_n link;
      t.pending_n <- t.pending_n + 1
    end
  end

let advance t =
  t.cur <- (t.cur + 1) mod t.windows;
  Array.fill t.win_bytes.(t.cur) 0 t.nlinks 0;
  Array.fill t.win_pkts.(t.cur) 0 t.nlinks 0;
  t.elapsed <- t.elapsed + 1

let has_pending t = t.pending_n > 0

let drain_pending t f =
  for i = 0 to t.pending_n - 1 do
    f t.pending.(i)
  done;
  t.pending_n <- 0

(* {1 Rollups} *)

let nlinks t = t.nlinks
let windows t = t.windows
let window_s t = t.window_s
let cap_bytes t = t.cap_bytes
let watermark t = t.watermark
let watermark_events t = t.watermark_events
let total_bytes t = t.total_bytes
let total_hops t = t.total_hops
let link_bytes t ~link = t.tot_bytes.(link)
let link_pkts t ~link = t.tot_pkts.(link)
let window_bytes t ~link = t.win_bytes.(t.cur).(link)

let live_windows t = min t.windows t.elapsed

let max_window_bytes t ~link =
  let m = ref 0 in
  for w = 0 to live_windows t - 1 do
    let slot = (t.cur - w + (2 * t.windows)) mod t.windows in
    if t.win_bytes.(slot).(link) > !m then m := t.win_bytes.(slot).(link)
  done;
  !m

let utilization_of_bytes t b = float_of_int b /. float_of_int t.cap_bytes

let max_utilization t ~link =
  utilization_of_bytes t (max_window_bytes t ~link)

let mean_utilization t ~link =
  float_of_int t.tot_bytes.(link)
  /. (float_of_int t.elapsed *. float_of_int t.cap_bytes)

let active_links t =
  let n = ref 0 in
  for l = 0 to t.nlinks - 1 do
    if t.tot_pkts.(l) > 0 then incr n
  done;
  !n

let top t ~n =
  let idx = Array.init t.nlinks Fun.id in
  Array.sort
    (fun a b ->
      match Int.compare t.tot_bytes.(b) t.tot_bytes.(a) with
      | 0 -> Int.compare a b
      | c -> c)
    idx;
  let n = min n t.nlinks in
  let rec take i acc =
    if i < 0 then acc
    else
      let l = idx.(i) in
      if t.tot_pkts.(l) = 0 then take (i - 1) acc
      else take (i - 1) (l :: acc)
  in
  take (n - 1) []

type link_kind = Host_link | Leaf_spine | Spine_core

let describe t link =
  if link < 0 || link >= t.nlinks then
    invalid_arg "Link_series.describe: link out of range";
  if link < t.leaf_off then (Host_link, link, link / t.hpl)
  else if link < t.spine_off then begin
    let i = link - t.leaf_off in
    let leaf = i / t.spp in
    (Leaf_spine, leaf, i mod t.spp)
  end
  else begin
    let i = link - t.spine_off in
    (Spine_core, i / t.cpp, i mod t.cpp)
  end

let pp_link t ppf link =
  match describe t link with
  | Host_link, h, leaf -> Format.fprintf ppf "host %d <-> leaf %d" h leaf
  | Leaf_spine, leaf, plane -> Format.fprintf ppf "leaf %d <-> spine plane %d" leaf plane
  | Spine_core, spine, ci -> Format.fprintf ppf "spine %d <-> core slot %d" spine ci
