(** Self-contained measured run for `elmo-sim top` and `bench
    te-baseline`: tenant placement, sharded batch install, membership
    churn, then a Zipf-skewed packet workload through the operational
    fabric with a {!Recorder} attached.

    The result pairs the sketch's view with exact per-group byte counts
    computed alongside, so callers can check the space-saving error bound
    ([est - err <= exact <= est], every group over [total/k] tracked)
    against ground truth. *)

type config = {
  topo : Topology.t;
  params : Params.t;
  groups : int;
  tenants : int;
  packets : int;
  churn_events : int;
  payload : int;  (** bytes per packet before headers *)
  zipf : float;  (** skew exponent of the group-popularity distribution *)
  seed : int;
  k : int;  (** sketch slots *)
  windows : int;
  window_s : float;
  advance_every : int;
  watermark : float;
}

val default_config : Topology.t -> config
(** 256 WVE groups over 20 tenants, 2000 packets of 1500 B, 200 churn
    events, Zipf 1.1, seed 42, k=16, 8 windows of 1 ms, watermark off. *)

type result = {
  recorder : Recorder.t;
  exact : int array;  (** exact wire bytes per group (dense group ids) *)
  injected : int;
  no_header : int;  (** packets skipped: sender had no header *)
  churn : Controller.churn_stats;
  shards : Controller.shard_stat list;
  sketch_ok : bool;  (** every tracked entry within its error bound *)
  missed_heavy : int;
      (** groups over [total/k] the sketch failed to track (must be 0) *)
}

val run : ?flight:Flight_recorder.t -> config -> result
(** Deterministic in [config]. Control-plane ops (group adds, churn
    joins/leaves) and watermark-crossing notes are recorded into [flight]
    (default: the ambient recorder). *)

type link_row = {
  row_link : int;
  row_kind : Link_series.link_kind;
  row_a : int;
  row_b : int;
  row_bytes : int;
  row_max_util : float;
  row_mean_util : float;
}

val link_rows : result -> n:int -> link_row list
(** The [n] busiest links with endpoint naming and utilization rollups. *)

type elephant = {
  eg : int;
  est : int;
  err : int;
  exact_bytes : int;
  within : bool;
}

val elephants : result -> n:int -> elephant list

val pp : Format.formatter -> result -> unit
(** The `elmo-sim top` snapshot table: utilization summary, hottest links,
    elephant groups vs exact, fast-path hit rate, shard commits. *)
