type counts = {
  transmissions : int;
  ideal_transmissions : int;
  header_bytes : int;
  delivered_hosts : int;
  spurious_hosts : int;
}

let measure enc ~sender =
  let tree = enc.Encoding.tree in
  let topo = tree.Tree.topo in
  let header = Encoding.header_for_sender enc ~sender in
  let bytes bits = (bits + 7) / 8 in
  let full = Prule.header_bits topo header in
  let after layer = Prule.remaining_bits_after topo header layer in
  let transmissions = ref 0 in
  let header_bytes = ref 0 in
  let delivered = ref 0 in
  let spurious = ref 0 in
  let hop n hbits =
    transmissions := !transmissions + n;
    header_bytes := !header_bytes + (n * bytes hbits)
  in
  (* Deliveries at leaf [l] forwarding on bitmap [fb]: split into members and
     spurious using the exact tree bitmap. Headers towards hosts are stripped
     by the leaf egress (§4.1). *)
  let deliver_at_leaf l fb =
    let n = Bitmap.popcount fb in
    hop n 0;
    let members =
      match Tree.leaf_bitmap tree l with
      | None -> 0
      | Some exact -> Bitmap.popcount (Bitmap.inter fb exact)
    in
    delivered := !delivered + members;
    spurious := !spurious + (n - members)
  in
  let leaf_forward l =
    match Clustering.assigned_bitmap enc.Encoding.d_leaf l with
    | Some fb -> deliver_at_leaf l fb
    | None -> (
        (* Not addressed by any rule: the switch falls back to the default
           p-rule if the header carries one, else drops. *)
        match enc.Encoding.d_leaf.Clustering.default with
        | Some (_, fb) -> deliver_at_leaf l fb
        | None -> ())
  in
  let sl = Topology.leaf_of_host topo sender in
  let sp = Topology.pod_of_leaf topo sl in
  (* Hypervisor to sender leaf. *)
  hop 1 full;
  (* Local deliveries via the upstream leaf rule (exact by construction). *)
  let local = Bitmap.popcount header.Prule.u_leaf.Prule.down in
  hop local 0;
  delivered := !delivered + local;
  if header.Prule.u_leaf.Prule.multipath then begin
    (* Up to one pod spine. *)
    hop 1 (after `U_leaf);
    match header.Prule.u_spine with
    | None -> ()
    | Some u ->
        (* Down to the other member leaves of the sender pod; the spine pops
           everything but the d-leaf section towards a leaf. *)
        Bitmap.iter
          (fun port ->
            let l = (sp * topo.Topology.leaves_per_pod) + port in
            hop 1 (after `D_spine);
            leaf_forward l)
          u.Prule.down;
        if u.Prule.multipath then begin
          (* Up to one core. *)
          hop 1 (after `U_spine);
          match header.Prule.core with
          | None -> ()
          | Some core_bm ->
              Bitmap.iter
                (fun p ->
                  (* Core down to pod [p]'s logical spine. *)
                  hop 1 (after `Core);
                  let spine_fb =
                    match Clustering.assigned_bitmap enc.Encoding.d_spine p with
                    | Some fb -> Some fb
                    | None -> (
                        match enc.Encoding.d_spine.Clustering.default with
                        | Some (_, fb) -> Some fb
                        | None -> None)
                  in
                  match spine_fb with
                  | None -> ()
                  | Some fb ->
                      Bitmap.iter
                        (fun port ->
                          let l = (p * topo.Topology.leaves_per_pod) + port in
                          hop 1 (after `D_spine);
                          leaf_forward l)
                        fb)
                core_bm
        end
  end;
  {
    transmissions = !transmissions;
    ideal_transmissions = Tree.ideal_link_transmissions tree ~sender;
    header_bytes = !header_bytes;
    delivered_hosts = !delivered;
    spurious_hosts = !spurious;
  }

let vxlan_encap_bytes = 50

let overhead_ratio ?(encap = vxlan_encap_bytes) c ~payload =
  if payload <= 0 then invalid_arg "Traffic.overhead_ratio: payload"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if encap < 0 then invalid_arg "Traffic.overhead_ratio: encap"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  let per_packet = payload + encap in
  let actual = (c.transmissions * per_packet) + c.header_bytes in
  let ideal = c.ideal_transmissions * per_packet in
  float_of_int (actual - ideal) /. float_of_int ideal
