(** Per-pod sharded commit scheduler for the two-phase batch controller.

    Elmo's s-rule capacity is a per-switch resource and switches belong to
    pods, so the commit phase partitions naturally: pod [p] owns the ledger
    cells of its leaves and its own spine counter, and a group's commit (or
    conflict re-encode) touches only the pods its tree spans. The scheduler
    keeps one gid-ordered task queue per pod and runs a task exactly when it
    heads every queue of its pods — single-pod groups (the common case)
    proceed on their shard without any global ordering, while cross-pod
    groups form a deterministic two-phase barrier across exactly the shards
    they touch. Outcomes (commit vs conflict, final occupancy) are
    bit-identical to fully-sequential ascending-gid commit for any worker
    count; gid order is enforced only {e within} each pod's queue, never
    globally.

    The module schedules; it does not know about encodings. The controller
    supplies one closure per group that performs the commit against the
    shared {!Srule_state.t} (see its concurrent-commit contract) and
    reports whether it conflicted. *)

exception Scheduler_invariant of string
(** Internal scheduler invariant violation; never raised unless the module
    itself is buggy. *)

type task = {
  gid : int;  (** group id; tasks must be strictly ascending *)
  pods : int list;
      (** pods the group's tree spans — sorted, non-empty; the task runs
          with exclusive ownership of these shards *)
  run : unit -> bool;
      (** performs the commit (and any conflict re-encode); returns [true]
          iff the commit conflicted. Runs on a worker domain; must touch
          only the task's pods' ledger cells and state private to the
          group. *)
}

type stats = {
  committed : int;  (** tasks that ran to completion on this shard *)
  conflicts : int;  (** of which the optimistic commit was invalidated *)
  single_pod : int;  (** lock-free fast-path tasks (one pod) *)
  cross_pod : int;  (** tasks that barriered across several shards *)
}
(** Per-shard batch accounting. A cross-pod task is attributed to its
    lowest pod, so totals across shards count every task exactly once. *)

val zero : stats

val pod_of_site : Topology.t -> Srule_state.site -> int
(** The pod owning a ledger site: [pod_of_leaf] for a leaf, itself for a
    pod. *)

val pods_of_tree : Topology.t -> Tree.t -> int list
(** Sorted pods spanned by a tree's leaf and spine bitmaps — the shards a
    group encoded from that tree can ever probe. *)

val run : ?pool:Domain_pool.t -> pods:int -> task array -> stats array
(** [run ?pool ~pods tasks] executes every task exactly once under the
    ownership discipline above and returns per-pod stats (length [pods]).
    Without a pool the same scheduler runs inline on the calling domain —
    identical outcomes, no spawning. Tasks must be strictly
    gid-ascending with non-empty pod lists (raises [Invalid_argument]
    otherwise). If a task raises, the remaining tasks still drain and the
    lowest-gid exception is re-raised on the caller; the batch's ledger
    state is then unspecified, exactly as for an exception out of the
    sequential commit loop. *)
