type uprule = { down : Bitmap.t; up : Bitmap.t; multipath : bool }
type prule = { bitmap : Bitmap.t; switches : int list }

type header = {
  u_leaf : uprule;
  u_spine : uprule option;
  core : Bitmap.t option;
  d_spine : prule list;
  d_spine_default : Bitmap.t option;
  d_leaf : prule list;
  d_leaf_default : Bitmap.t option;
}

let rule_mem r id = List.mem id r.switches

let equal a b =
  Bitmap.equal a.bitmap b.bitmap && List.equal Int.equal a.switches b.switches

let uprule_bits ~down_width ~up_width = down_width + up_width + 1

let layer_widths topo = function
  | `Spine -> (Topology.spine_downstream_width topo, Topology.spine_id_bits topo)
  | `Leaf -> (Topology.leaf_downstream_width topo, Topology.leaf_id_bits topo)

(* Wire format of a downstream p-rule: a 1-bit "another rule follows" marker,
   the output bitmap, then identifiers, each followed by a 1-bit "more ids"
   flag. A section ends with a 0 marker and a 1-bit default-rule presence
   flag (plus the default bitmap when present). *)

let prule_bits topo layer ~nswitches =
  if nswitches <= 0 then invalid_arg "Prule.prule_bits: empty switch list"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  let width, id_bits = layer_widths topo layer in
  1 + width + (nswitches * (id_bits + 1))

let default_rule_bits topo layer =
  let width, _ = layer_widths topo layer in
  1 + width

let section_bits topo layer rules default =
  let rule_bits =
    List.fold_left
      (fun acc r -> acc + prule_bits topo layer ~nswitches:(List.length r.switches))
      0 rules
  in
  let default_bits =
    match default with
    | Some _ -> default_rule_bits topo layer
    | None -> 1 (* just the absent flag *)
  in
  rule_bits + 1 (* section terminator *) + default_bits

let u_leaf_bits topo =
  uprule_bits
    ~down_width:(Topology.leaf_downstream_width topo)
    ~up_width:(Topology.leaf_upstream_width topo)

let u_spine_bits topo header =
  1
  +
  match header.u_spine with
  | None -> 0
  | Some _ ->
      uprule_bits
        ~down_width:(Topology.spine_downstream_width topo)
        ~up_width:(Topology.spine_upstream_width topo)

let core_bits topo header =
  1 + match header.core with None -> 0 | Some _ -> Topology.core_downstream_width topo

let d_spine_bits topo header =
  section_bits topo `Spine header.d_spine header.d_spine_default

let d_leaf_bits topo header =
  section_bits topo `Leaf header.d_leaf header.d_leaf_default

let header_bits topo header =
  u_leaf_bits topo + u_spine_bits topo header + core_bits topo header
  + d_spine_bits topo header + d_leaf_bits topo header

let header_bytes topo header = (header_bits topo header + 7) / 8

let max_header_bytes topo (params : Params.t) =
  let full_uprule_spine =
    if Topology.is_two_tier topo then 1
    else
      1
      + uprule_bits
          ~down_width:(Topology.spine_downstream_width topo)
          ~up_width:(Topology.spine_upstream_width topo)
  in
  let section layer hmax =
    (hmax * prule_bits topo layer ~nswitches:params.Params.kmax)
    + 1 + default_rule_bits topo layer
  in
  let bits =
    u_leaf_bits topo + full_uprule_spine
    + 1 + Topology.core_downstream_width topo
    + section `Spine params.Params.hmax_spine
    + section `Leaf params.Params.hmax_leaf
  in
  (bits + 7) / 8

let remaining_bits_after topo header = function
  | `U_leaf ->
      u_spine_bits topo header + core_bits topo header + d_spine_bits topo header
      + d_leaf_bits topo header
  | `U_spine -> core_bits topo header + d_spine_bits topo header + d_leaf_bits topo header
  | `Core -> d_spine_bits topo header + d_leaf_bits topo header
  | `D_spine -> d_leaf_bits topo header
  | `All -> 0

let pp_uprule ppf u =
  Format.fprintf ppf "%a|%a%s" Bitmap.pp u.down Bitmap.pp u.up
    (if u.multipath then "|M" else "")

let pp_prule ppf r =
  Format.fprintf ppf "%a:[%a]" Bitmap.pp r.bitmap
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    r.switches

let pp topo ppf h =
  let pp_rules = Format.pp_print_list ~pp_sep:Format.pp_print_space pp_prule in
  let pp_default ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some bm -> Bitmap.pp ppf bm
  in
  Format.fprintf ppf
    "@[<v>u-leaf: %a@ u-spine: %a@ core: %a@ d-spine: @[%a@] default %a@ d-leaf: @[%a@] default %a@ (%d bytes)@]"
    pp_uprule h.u_leaf
    (fun ppf -> function
      | None -> Format.pp_print_string ppf "-"
      | Some u -> pp_uprule ppf u)
    h.u_spine
    (fun ppf -> function
      | None -> Format.pp_print_string ppf "-"
      | Some bm -> Bitmap.pp ppf bm)
    h.core pp_rules h.d_spine pp_default h.d_spine_default pp_rules h.d_leaf
    pp_default h.d_leaf_default (header_bytes topo h)
