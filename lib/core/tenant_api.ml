type error =
  | Not_multicast_address
  | No_such_tenant
  | No_such_vm
  | No_such_group
  | Group_exists
  | Quota_exceeded
  | Already_member
  | Not_a_member

let pp_error ppf e =
  Format.pp_print_string ppf
    (match e with
    | Not_multicast_address -> "not a multicast address (224.0.0.0/4)"
    | No_such_tenant -> "no such tenant"
    | No_such_vm -> "no such VM"
    | No_such_group -> "no such group"
    | Group_exists -> "group already exists"
    | Quota_exceeded -> "tenant group quota exceeded"
    | Already_member -> "VM is already a member"
    | Not_a_member -> "VM is not a member")

type t = {
  ctrl : Controller.t;
  placement : Vm_placement.t;
  quota : int;
  ids : (int * int32, int) Hashtbl.t;  (* (tenant, address) -> global id *)
  tenant_counts : (int, int) Hashtbl.t;
  mutable next_id : int;
}

let create ctrl placement ~quota_per_tenant =
  if quota_per_tenant <= 0 then invalid_arg "Tenant_api.create: quota"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  {
    ctrl;
    placement;
    quota = quota_per_tenant;
    ids = Hashtbl.create 1024;
    tenant_counts = Hashtbl.create 64;
    next_id = 1;
  }

let is_multicast addr =
  Int32.logand addr 0xF0000000l = 0xE0000000l

let ( let* ) = Result.bind

let check_tenant t tenant =
  if tenant < 0 || tenant >= Array.length t.placement.Vm_placement.tenants then
    Error No_such_tenant
  else Ok ()

let check_address addr =
  if is_multicast addr then Ok () else Error Not_multicast_address

let tenant_count t tenant =
  Option.value ~default:0 (Hashtbl.find_opt t.tenant_counts tenant)

let create_group t ~tenant ~address =
  let* () = check_address address in
  let* () = check_tenant t tenant in
  if Hashtbl.mem t.ids (tenant, address) then Error Group_exists
  else if tenant_count t tenant >= t.quota then Error Quota_exceeded
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.replace t.ids (tenant, address) id;
    Hashtbl.replace t.tenant_counts tenant (tenant_count t tenant + 1);
    ignore (Controller.add_group t.ctrl ~group:id []);
    Ok ()
  end

let find_group t ~tenant ~address =
  let* () = check_address address in
  let* () = check_tenant t tenant in
  match Hashtbl.find_opt t.ids (tenant, address) with
  | Some id -> Ok id
  | None -> Error No_such_group

let delete_group t ~tenant ~address =
  let* id = find_group t ~tenant ~address in
  ignore (Controller.remove_group t.ctrl ~group:id);
  Hashtbl.remove t.ids (tenant, address);
  Hashtbl.replace t.tenant_counts tenant (tenant_count t tenant - 1);
  Ok ()

let host_of_vm t ~tenant ~vm =
  let vms = t.placement.Vm_placement.tenants.(tenant).Vm_placement.vm_hosts in
  if vm < 0 || vm >= Array.length vms then Error No_such_vm else Ok vms.(vm)

let join t ~tenant ~address ~vm ~role =
  let* id = find_group t ~tenant ~address in
  let* host = host_of_vm t ~tenant ~vm in
  match Controller.join t.ctrl ~group:id ~host ~role with
  | updates -> Ok updates
  | exception Invalid_argument _ -> Error Already_member

let leave t ~tenant ~address ~vm =
  let* id = find_group t ~tenant ~address in
  let* host = host_of_vm t ~tenant ~vm in
  match Controller.leave t.ctrl ~group:id ~host with
  | updates -> Ok updates
  | exception Not_found -> Error Not_a_member

let group_id t ~tenant ~address = Hashtbl.find_opt t.ids (tenant, address)

let groups_of_tenant t tenant =
  Hashtbl.fold
    (fun (tn, addr) _ acc -> if tn = tenant then addr :: acc else acc)
    t.ids []
  |> List.sort compare

let group_count t = Hashtbl.length t.ids
