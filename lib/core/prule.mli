(** p-rule and Elmo header types with exact bit-size accounting (§3.1,
    Figure 2).

    A downstream p-rule carries an output-port bitmap and the identifiers of
    the switches that share it (D1, D3). Upstream rules (leaf and spine of
    the sender's path) carry downstream ports, upstream ports, and the
    multipath flag, with no identifier (D2b). The optional core rule is a
    bitmap over pods. Default p-rules close each downstream layer (D4).

    Wire sizes are computed from the topology: bitmap widths are the port
    counts of each layer and identifier widths are ⌈log₂(#switches)⌉; every
    identifier carries a 1-bit "next id" flag and every p-rule a 1-bit
    "next rule" flag, as in Figure 2b. *)

type uprule = {
  down : Bitmap.t;  (** downstream ports to forward on at this hop *)
  up : Bitmap.t;  (** explicit upstream ports (used when not multipathing) *)
  multipath : bool;
}

type prule = {
  bitmap : Bitmap.t;  (** OR of the output bitmaps of [switches] *)
  switches : int list;  (** logical-switch identifiers sharing the rule *)
}

type header = {
  u_leaf : uprule;
  u_spine : uprule option;  (** absent on two-tier topologies *)
  core : Bitmap.t option;  (** pods to forward to; absent if single-pod tree *)
  d_spine : prule list;
  d_spine_default : Bitmap.t option;
  d_leaf : prule list;
  d_leaf_default : Bitmap.t option;
}

val rule_mem : prule -> int -> bool
(** Does the rule's identifier list include the switch? *)

val equal : prule -> prule -> bool
(** Same shared bitmap (by {!Bitmap.equal}) and same switch ids in order. *)

(** {1 Bit-size accounting} *)

val uprule_bits : down_width:int -> up_width:int -> int
(** down bitmap + up bitmap + multipath flag. *)

val prule_bits : Topology.t -> [ `Spine | `Leaf ] -> nswitches:int -> int
(** Size of one downstream p-rule with [nswitches] identifiers. *)

val default_rule_bits : Topology.t -> [ `Spine | `Leaf ] -> int
(** Presence flag + bitmap. *)

val section_bits :
  Topology.t -> [ `Spine | `Leaf ] -> prule list -> Bitmap.t option -> int
(** Whole downstream section: rules, terminator, default. *)

val header_bits : Topology.t -> header -> int
val header_bytes : Topology.t -> header -> int
(** [ceil (header_bits / 8)]: what the packet actually carries. *)

val max_header_bytes : Topology.t -> Params.t -> int
(** Worst-case header size under the given [hmax]/[kmax] budget — the
    paper's "325-byte cap" figure for its topology and defaults. *)

val remaining_bits_after :
  Topology.t -> header -> [ `U_leaf | `U_spine | `Core | `D_spine | `All ] ->
  int
(** Header bits still on the wire after the given layer has been popped
    (D2d): [`U_leaf] after the sender leaf, [`U_spine] after the sender
    spine, [`Core] after the core, [`D_spine] after a downstream spine,
    [`All] towards a host. *)

val pp : Topology.t -> Format.formatter -> header -> unit
