let log_src = Logs.Src.create "elmo.controller" ~doc:"Elmo controller events"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Obs = Elmo_obs.Obs

type role = Sender | Receiver | Both

type updates = {
  hypervisors : int list;
  leaves : int list;
  pods : int list;
}

let no_updates = { hypervisors = []; leaves = []; pods = [] }

let merge_updates a b =
  {
    hypervisors = List.sort_uniq compare (a.hypervisors @ b.hypervisors);
    leaves = List.sort_uniq compare (a.leaves @ b.leaves);
    pods = List.sort_uniq compare (a.pods @ b.pods);
  }

let spine_update_count topo u = List.length u.pods * topo.Topology.spines_per_pod

type install_error = Timed_out | Refused

type fabric_hooks = {
  install_leaf :
    leaf:int -> group:int -> Bitmap.t -> (unit, install_error) result;
  remove_leaf : leaf:int -> group:int -> (unit, install_error) result;
  install_pod :
    pod:int -> group:int -> Bitmap.t -> (unit, install_error) result;
  remove_pod : pod:int -> group:int -> (unit, install_error) result;
  read_leaf : leaf:int -> group:int -> Bitmap.t option;
  read_pod : pod:int -> group:int -> Bitmap.t option;
}

(* Failure-time replacement for the multipath flags of a sender pod's
   upstream rules: explicit spine ports at the leaf, explicit core ports at
   the spine (§3.3). [unicast = true] marks an uncoverable pod whose senders
   degrade to unicast. *)
type override = {
  up_leaf_ports : Bitmap.t;
  up_spine_ports : Bitmap.t option;
  unicast : bool;
}

type group_state = {
  mutable members : (int * role) list;  (* assoc host -> role, insertion order *)
  mutable enc : Encoding.t option;
  applied : (int, override) Hashtbl.t;
      (* sender host -> override currently installed at its hypervisor; only
         flows whose ECMP choice traverses a failed switch get one *)
}

type churn_stats = { fast_path : int; reencoded : int }

type install_stats = {
  attempts : int;
  retries : int;
  exhausted : int;
  degradations : int;
  compensations : int;
  stale_entries : int;
}

type shard_stat = {
  shard_pod : int;
  shard_groups : int;  (* batch groups committed on this shard *)
  shard_conflicts : int;
  shard_single_pod : int;
  shard_cross_pod : int;
  shard_churn_events : int;  (* join/leave events on this pod's hosts *)
}

type t = {
  topo : Topology.t;
  params : Params.t;
  mutable srules : Srule_state.t;  (* swapped wholesale by [restore] *)
  hooks : fabric_hooks option;
  clock : Elmo_obs.Clock.t;
  groups : (int, group_state) Hashtbl.t;
  incremental : bool;
  mutable fast_hits : int;
  mutable reencodes : int;
  mutable conflicts : int;
      (* batch-encode optimistic reservations invalidated at commit *)
  spine_ok : bool array;
  core_ok : bool array;
  link_ok : bool array;  (* leaf <-> pod-spine links, index leaf * spp + plane *)
  denied_leaf : bool array;
      (* switches whose s-rule installs exhausted the retry budget; excluded
         from s-rule eligibility until the controller is rebuilt *)
  denied_pod : bool array;
  stale : (int, int * Srule_state.site) Hashtbl.t;
      (* fabric entries whose removal exhausted the retry budget, keyed by
         [stale_key] (a primitive int combining group and site); the value
         is the (group, site) pair needed to reconcile the entry *)
  stale_stride : int;
  mutable install_attempts : int;
  mutable install_retries : int;
  mutable install_exhausted : int;
  mutable degradations : int;
  mutable compensations : int;
  shard_batch : Shard.stats array;
      (* cumulative per-pod commit-phase accounting from sharded batches;
         updated only on the calling domain, after [Shard.run] returns *)
  shard_events : int array;
      (* per-pod join/leave events, attributed to the changed host's pod *)
  dirty : (int, unit) Hashtbl.t;
      (* groups whose installed view may have changed since the last
         [drain_dirty] — feeds the verify layer's predicate-cache
         invalidation *)
}

let create ?fabric_hooks ?clock ?(incremental = true) topo params =
  let clock =
    match clock with Some c -> c | None -> Elmo_obs.Clock.logical ()
  in
  {
    topo;
    params;
    srules = Srule_state.create topo ~fmax:params.Params.fmax;
    hooks = fabric_hooks;
    clock;
    groups = Hashtbl.create 1024;
    incremental;
    fast_hits = 0;
    reencodes = 0;
    conflicts = 0;
    spine_ok = Array.make (Topology.num_spines topo) true;
    core_ok = Array.make (max 1 (Topology.num_cores topo)) true;
    link_ok =
      Array.make (Topology.num_leaves topo * topo.Topology.spines_per_pod) true;
    denied_leaf = Array.make (Topology.num_leaves topo) false;
    denied_pod = Array.make topo.Topology.pods false;
    stale = Hashtbl.create 8;
    stale_stride =
      (2 * max (Topology.num_leaves topo) topo.Topology.pods) + 2;
    install_attempts = 0;
    install_retries = 0;
    install_exhausted = 0;
    degradations = 0;
    compensations = 0;
    shard_batch = Array.make topo.Topology.pods Shard.zero;
    shard_events = Array.make topo.Topology.pods 0;
    dirty = Hashtbl.create 64;
  }

let topology t = t.topo
let params t = t.params
let srule_state t = t.srules

let receivers st =
  List.filter_map
    (fun (h, r) -> match r with Receiver | Both -> Some h | Sender -> None)
    st.members

let senders st =
  List.filter_map
    (fun (h, r) -> match r with Sender | Both -> Some h | Receiver -> None)
    st.members

let find_group t group =
  match Hashtbl.find_opt t.groups group with
  | Some st -> st
  | None -> raise Not_found

(* {1 Dirty-group tracking}

   Every mutation that can change a group's installed view — membership,
   encoding, overrides, stale markers — marks the group dirty. The verify
   layer drains the set to invalidate exactly the cached delivery
   predicates that could have changed, instead of recompiling every group
   after every event. Marking is conservative: a marked group whose view
   happens to be unchanged merely costs one recompile. *)

let mark_dirty t group = Hashtbl.replace t.dirty group ()

let drain_dirty t =
  let gids = Hashtbl.fold (fun g () acc -> g :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  List.sort Int.compare gids

let dirty_count t = Hashtbl.length t.dirty

(* {1 Reliable rule installation}

   Fabric hooks can fail — transiently (timeout, refusal) or silently (an
   acknowledged install that never landed). Every mutation therefore goes
   through [reliable]: perform, verify by read-back, and retry with
   exponential backoff on the controller's clock until the read-back
   confirms the intended state or the per-operation retry budget
   ([Params.install_retries]) is exhausted. Verification is what defines
   success: an install that was refused because the entry is already
   correct counts as done. *)

type fab_op =
  | Op_install_leaf of int * Bitmap.t
  | Op_remove_leaf of int
  | Op_install_pod of int * Bitmap.t
  | Op_remove_pod of int

let perform hooks ~group = function
  | Op_install_leaf (leaf, bm) -> hooks.install_leaf ~leaf ~group bm
  | Op_remove_leaf leaf -> hooks.remove_leaf ~leaf ~group
  | Op_install_pod (pod, bm) -> hooks.install_pod ~pod ~group bm
  | Op_remove_pod pod -> hooks.remove_pod ~pod ~group

let verified hooks ~group = function
  | Op_install_leaf (leaf, bm) -> (
      match hooks.read_leaf ~leaf ~group with
      | Some cur -> Bitmap.equal cur bm
      | None -> false)
  | Op_remove_leaf leaf -> Option.is_none (hooks.read_leaf ~leaf ~group)
  | Op_install_pod (pod, bm) -> (
      match hooks.read_pod ~pod ~group with
      | Some cur -> Bitmap.equal cur bm
      | None -> false)
  | Op_remove_pod pod -> Option.is_none (hooks.read_pod ~pod ~group)

(* Busy-wait on the controller's clock. On the default logical clock one
   read is one tick, so the wait is exactly [us] ticks — deterministic. *)
let backoff_wait t us =
  let deadline = Elmo_obs.Clock.now_us t.clock +. float_of_int us in
  while Elmo_obs.Clock.now_us t.clock < deadline do
    ()
  done

let reliable t hooks ~group op =
  let budget = t.params.Params.install_retries in
  let rec go attempt backoff =
    t.install_attempts <- t.install_attempts + 1;
    Obs.incr "controller.install_attempts";
    (match perform hooks ~group op with
    | Ok () -> ()
    | Error Timed_out -> Obs.incr "controller.install_timeouts"
    | Error Refused -> Obs.incr "controller.install_refusals");
    if verified hooks ~group op then Ok ()
    else if attempt >= budget then begin
      t.install_exhausted <- t.install_exhausted + 1;
      Obs.incr "controller.install_exhausted";
      Error ()
    end
    else begin
      t.install_retries <- t.install_retries + 1;
      Obs.incr "controller.install_retries";
      Obs.observe "controller.install_backoff_us" (float_of_int backoff);
      backoff_wait t backoff;
      go (attempt + 1) (backoff * 2)
    end
  in
  go 0 t.params.Params.install_backoff_us

(* {1 Stale fabric entries}

   A removal whose retry budget is exhausted leaves the old entry in the
   switch's group table, where it shadows the default p-rule for that group
   (the table is consulted before the default). Such entries are tracked as
   {e stale} markers and reconciled after every subsequent operation: retry
   the removal; failing that, overwrite the entry with the exact, truthful
   bitmap of the group's current tree at that switch (a compensating entry
   never misdelivers: it is precisely what the default rule would have the
   switch forward, or empty when the group no longer reaches the switch). *)

let stale_key t ~group site = (group * t.stale_stride) + Srule_state.site_key site
let mark_stale t ~group site =
  Obs.incr "controller.stale_marked";
  mark_dirty t group;
  Hashtbl.replace t.stale (stale_key t ~group site) (group, site)

let unmark_stale t ~group site =
  if Hashtbl.mem t.stale (stale_key t ~group site) then begin
    mark_dirty t group;
    Hashtbl.remove t.stale (stale_key t ~group site)
  end

(* {1 Encoding lifecycle} *)

let uninstall_enc t ~group enc =
  Encoding.release t.srules enc;
  match t.hooks with
  | None -> ()
  | Some hooks ->
      List.iter
        (fun (leaf, _) ->
          match reliable t hooks ~group (Op_remove_leaf leaf) with
          | Ok () -> unmark_stale t ~group (Srule_state.Leaf leaf)
          | Error () -> mark_stale t ~group (Srule_state.Leaf leaf))
        enc.Encoding.d_leaf.Clustering.srules;
      List.iter
        (fun (pod, _) ->
          match reliable t hooks ~group (Op_remove_pod pod) with
          | Ok () -> unmark_stale t ~group (Srule_state.Pod pod)
          | Error () -> mark_stale t ~group (Srule_state.Pod pod))
        enc.Encoding.d_spine.Clustering.srules

(* Returns the first switch whose install exhausted its retry budget, if
   any; a successful install at a site clears any stale marker there (the
   fresh entry overwrote it). *)
let install_enc t ~group enc =
  match t.hooks with
  | None -> Ok ()
  | Some hooks ->
      let rec leaves = function
        | [] -> Ok ()
        | (leaf, bm) :: rest -> (
            match reliable t hooks ~group (Op_install_leaf (leaf, bm)) with
            | Ok () ->
                unmark_stale t ~group (Srule_state.Leaf leaf);
                leaves rest
            | Error () -> Error (Srule_state.Leaf leaf))
      in
      let rec pods = function
        | [] -> Ok ()
        | (pod, bm) :: rest -> (
            match reliable t hooks ~group (Op_install_pod (pod, bm)) with
            | Ok () ->
                unmark_stale t ~group (Srule_state.Pod pod);
                pods rest
            | Error () -> Error (Srule_state.Pod pod))
      in
      (match leaves enc.Encoding.d_leaf.Clustering.srules with
      | Ok () -> pods enc.Encoding.d_spine.Clustering.srules
      | Error _ as e -> e)

(* {1 Failure-recovery upstream assignment (§3.3)} *)

let live_core_in_plane t plane =
  let cpp = t.topo.Topology.cores_per_plane in
  let rec go i =
    if i >= cpp then None
    else if t.core_ok.((plane * cpp) + i) then Some i
    else go (i + 1)
  in
  go 0

let plane_reaches_pod t plane pod =
  t.spine_ok.((pod * t.topo.Topology.spines_per_pod) + plane)

let link_alive t ~leaf ~plane =
  t.link_ok.((leaf * t.topo.Topology.spines_per_pod) + plane)

(* Can plane [pl] deliver to every receiver leaf of [tree] inside pod [p]?
   (Switch up, plus every spine->leaf link of the pod's participating
   leaves, excluding [skip_leaf] — the sender's own leaf, already served.) *)
let plane_serves_pod t tree ~plane ~pod ~skip_leaf =
  plane_reaches_pod t plane pod
  && List.for_all
       (fun (l, _) ->
         Topology.pod_of_leaf t.topo l <> pod || l = skip_leaf
         || link_alive t ~leaf:l ~plane)
       tree.Tree.leaf_bitmaps

(* Failure-time upstream assignment (§3.3). Preference order:

   1. A single plane that reaches the sender's spine, every receiver leaf
      (links included) and, for cross-pod trees, a live core and every
      target pod — exactly-once delivery, no redundancy.
   2. A greedy set cover by several planes whose reachable pods jointly
      cover the targets (the paper's "one or more spines and cores such
      that the union of reachable hosts covers all recipients"). Leaves
      reachable through more than one chosen plane receive duplicates,
      which the transport above deduplicates.
   3. Unicast fallback at the hypervisor. *)
let choose_upstream t ~tree ~sender =
  let spp = t.topo.Topology.spines_per_pod in
  let sl = Topology.leaf_of_host t.topo sender in
  let sp = Topology.pod_of_leaf t.topo sl in
  let target_pods = List.filter (fun p -> p <> sp) (Tree.pods tree) in
  let planes = List.init spp (fun i -> i) in
  let uplink_ok pl = link_alive t ~leaf:sl ~plane:pl in
  let plane_fully_serves pl =
    uplink_ok pl
    && plane_serves_pod t tree ~plane:pl ~pod:sp ~skip_leaf:sl
    && (target_pods = []
       || (live_core_in_plane t pl <> None
          && List.for_all
               (fun p -> plane_serves_pod t tree ~plane:pl ~pod:p ~skip_leaf:(-1))
               target_pods))
  in
  match List.find_opt plane_fully_serves planes with
  | Some pl ->
      let up_leaf_ports = Bitmap.create spp in
      Bitmap.set up_leaf_ports pl;
      let up_spine_ports =
        if target_pods = [] then None
        else begin
          let ports = Bitmap.create t.topo.Topology.cores_per_plane in
          Bitmap.set ports (Option.get (live_core_in_plane t pl));
          Some ports
        end
      in
      Some { up_leaf_ports; up_spine_ports; unicast = false }
  | None ->
      (* Multi-plane greedy cover over target pods; in-pod leaves must be
         reachable through at least one chosen plane. *)
      let usable =
        List.filter_map
          (fun pl ->
            if not (uplink_ok pl && plane_reaches_pod t pl sp) then None
            else
              match live_core_in_plane t pl with
              | None -> None
              | Some core_port ->
                  let covered =
                    List.filter
                      (fun p ->
                        plane_serves_pod t tree ~plane:pl ~pod:p ~skip_leaf:(-1))
                      target_pods
                  in
                  Some (pl, core_port, covered))
          planes
      in
      let rec cover remaining chosen =
        if remaining = [] then Some (List.rev chosen)
        else begin
          let best =
            List.fold_left
              (fun acc ((_, _, covered) as cand) ->
                let gain =
                  List.length (List.filter (fun p -> List.mem p remaining) covered)
                in
                match acc with
                | Some (best_gain, _) when best_gain >= gain -> acc
                | _ when gain = 0 -> acc
                | _ -> Some (gain, cand))
              None usable
          in
          match best with
          | None -> None
          | Some (_, ((_, _, covered) as cand)) ->
              let remaining =
                List.filter (fun p -> not (List.mem p covered)) remaining
              in
              cover remaining (cand :: chosen)
        end
      in
      let in_pod_leaves_covered chosen =
        List.for_all
          (fun (l, _) ->
            Topology.pod_of_leaf t.topo l <> sp || l = sl
            || List.exists (fun (pl, _, _) -> link_alive t ~leaf:l ~plane:pl) chosen)
          tree.Tree.leaf_bitmaps
      in
      let unicast_override =
        { up_leaf_ports = Bitmap.create spp; up_spine_ports = None; unicast = true }
      in
      (match cover target_pods [] with
      | Some chosen when chosen <> [] && in_pod_leaves_covered chosen ->
          let up_leaf_ports = Bitmap.create spp in
          let up_spine_ports = Bitmap.create t.topo.Topology.cores_per_plane in
          List.iter
            (fun (pl, core_port, _) ->
              Bitmap.set up_leaf_ports pl;
              Bitmap.set up_spine_ports core_port)
            chosen;
          Some
            {
              up_leaf_ports;
              up_spine_ports =
                (if target_pods = [] then None else Some up_spine_ports);
              unicast = false;
            }
      | Some _ | None -> Some unicast_override)

let all_healthy t =
  Array.for_all Fun.id t.spine_ok
  && Array.for_all Fun.id t.core_ok
  && Array.for_all Fun.id t.link_ok

(* Does the (group, sender) flow's ECMP path traverse a failed switch or
   link? This is the paper's notion of an "impacted" group member: only
   those flows need their multipath flag disabled. *)
let flow_impacted t ~group tree ~sender =
  let topo = t.topo in
  let sl = Topology.leaf_of_host topo sender in
  let sp = Topology.pod_of_leaf topo sl in
  let beyond_leaf =
    List.exists (fun (l, _) -> l <> sl) tree.Tree.leaf_bitmaps
  in
  beyond_leaf
  &&
  let hash = Ecmp.flow_hash ~group ~sender in
  let plane = Ecmp.spine_choice topo ~hash in
  (not (link_alive t ~leaf:sl ~plane))
  || (not (plane_serves_pod t tree ~plane ~pod:sp ~skip_leaf:sl))
  ||
  let target_pods = List.filter (fun p -> p <> sp) (Tree.pods tree) in
  target_pods <> []
  && (not t.core_ok.(Ecmp.core_choice topo ~hash ~plane)
     || List.exists
          (fun p -> not (plane_serves_pod t tree ~plane ~pod:p ~skip_leaf:(-1)))
          target_pods)

let refresh_overrides t ~group st =
  mark_dirty t group;
  Hashtbl.reset st.applied;
  match st.enc with
  | None -> ()
  | Some enc ->
      if not (all_healthy t) then begin
        let tree = enc.Encoding.tree in
        List.iter
          (fun sender ->
            if flow_impacted t ~group tree ~sender then begin
              let ov =
                match choose_upstream t ~tree ~sender with
                | Some ov -> ov
                | None ->
                    {
                      up_leaf_ports =
                        Bitmap.create t.topo.Topology.spines_per_pod;
                      up_spine_ports = None;
                      unicast = true;
                    }
              in
              Hashtbl.replace st.applied sender ov
            end)
          (senders st)
      end

(* {1 Group encoding and diffing} *)

let srule_ok_leaf t l = not t.denied_leaf.(l)
let srule_ok_pod t p = not t.denied_pod.(p)

let encode_group t st =
  let rcvs = receivers st in
  if rcvs = [] then st.enc <- None
  else begin
    let tree = Tree.of_members t.topo rcvs in
    st.enc <-
      Some
        (Encoding.encode
           ~srule_ok_leaf:(srule_ok_leaf t)
           ~srule_ok_pod:(srule_ok_pod t) t.params t.srules tree)
  end

(* Graceful degradation: install the encoding's s-rules; when a switch's
   install permanently fails, mark it denied, re-encode the group with the
   switch excluded from s-rule eligibility (its traffic folds into p-rules
   or the default p-rule — extra transmissions, no dependence on the
   unreachable switch) and start over. Terminates because each iteration
   denies at least one more switch; with every switch denied the encoding
   needs no fabric state at all. *)
let rec install_with_degrade t ~group st =
  match st.enc with
  | None -> ()
  | Some enc -> (
      match install_enc t ~group enc with
      | Ok () -> ()
      | Error site ->
          t.degradations <- t.degradations + 1;
          Obs.incr "controller.degradations";
          Log.info (fun m ->
              m "group %d: installs on %s keep failing; degrading it to the \
                 default p-rule"
                group
                (match site with
                | Srule_state.Leaf l -> Printf.sprintf "leaf %d" l
                | Srule_state.Pod p -> Printf.sprintf "pod %d" p));
          (match site with
          | Srule_state.Leaf l -> t.denied_leaf.(l) <- true
          | Srule_state.Pod p -> t.denied_pod.(p) <- true);
          uninstall_enc t ~group enc;
          encode_group t st;
          install_with_degrade t ~group st)

(* The exact bitmap the group's current tree wants at [site] — what a
   compensating overwrite of an unremovable entry must hold. Empty (correct
   width) when the group is gone or no longer reaches the switch. *)
let truthful_bitmap t ~group site =
  let enc =
    match Hashtbl.find_opt t.groups group with
    | Some st -> st.enc
    | None -> None
  in
  match site with
  | Srule_state.Leaf l -> (
      let w = Topology.leaf_downstream_width t.topo in
      match enc with
      | Some e -> (
          match Tree.leaf_bitmap e.Encoding.tree l with
          | Some bm -> Bitmap.copy bm
          | None -> Bitmap.create w)
      | None -> Bitmap.create w)
  | Srule_state.Pod p -> (
      let w = Topology.spine_downstream_width t.topo in
      match enc with
      | Some e -> (
          match Tree.spine_bitmap e.Encoding.tree p with
          | Some bm -> Bitmap.copy bm
          | None -> Bitmap.create w)
      | None -> Bitmap.create w)

(* Reconcile stale fabric entries, called after every public mutation (the
   common case — no stale entries — is a single hash-table length test).
   For each marker: retry the removal; failing that, if the entry does not
   already hold the truthful bitmap, overwrite it with a compensating
   install. A marker survives until its removal finally succeeds (or the
   site is overwritten by a later s-rule install of the same group). *)
let reconcile t =
  if Hashtbl.length t.stale > 0 then
    match t.hooks with
    | None -> Hashtbl.reset t.stale
    | Some hooks ->
        let entries =
          Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.stale []
          |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
        in
        List.iter
          (fun (_, (group, site)) ->
            let remove_op =
              match site with
              | Srule_state.Leaf l -> Op_remove_leaf l
              | Srule_state.Pod p -> Op_remove_pod p
            in
            match reliable t hooks ~group remove_op with
            | Ok () -> unmark_stale t ~group site
            | Error () -> (
                let truth = truthful_bitmap t ~group site in
                let current =
                  match site with
                  | Srule_state.Leaf l -> hooks.read_leaf ~leaf:l ~group
                  | Srule_state.Pod p -> hooks.read_pod ~pod:p ~group
                in
                let already_truthful =
                  match current with
                  | Some cur -> Bitmap.equal cur truth
                  | None -> false
                in
                if not already_truthful then
                  let install_op =
                    match site with
                    | Srule_state.Leaf l -> Op_install_leaf (l, truth)
                    | Srule_state.Pod p -> Op_install_pod (p, truth)
                  in
                  match reliable t hooks ~group install_op with
                  | Ok () ->
                      t.compensations <- t.compensations + 1;
                      Obs.incr "controller.compensations"
                  | Error () ->
                      (* Entry content unknown until the next reconcile;
                         surfaced via [install_stats.stale_entries]. *)
                      Obs.incr "controller.reconcile_failed"))
          entries

let srule_diff old_srules new_srules =
  let changed =
    List.filter
      (fun (id, bm) ->
        match List.assoc_opt id old_srules with
        | Some bm' -> not (Bitmap.equal bm bm')
        | None -> true)
      new_srules
    |> List.map fst
  in
  let removed =
    List.filter (fun (id, _) -> not (List.mem_assoc id new_srules)) old_srules
    |> List.map fst
  in
  List.sort_uniq compare (changed @ removed)

let clustering_equal (a : Clustering.result) (b : Clustering.result) =
  List.equal Prule.equal a.Clustering.prules b.Clustering.prules
  && Clustering.equal_default a.Clustering.default b.Clustering.default

(* Senders whose headers change when the tree changes but the common
   downstream sections do not: locality-based (§3.1 D2b-c). *)
let affected_senders t old_tree new_tree senders =
  let pods_changed tr1 tr2 = Tree.pods tr1 <> Tree.pods tr2 in
  let changed_leaves tr1 tr2 =
    let bm1 = tr1.Tree.leaf_bitmaps and bm2 = tr2.Tree.leaf_bitmaps in
    let ids = List.sort_uniq compare (List.map fst bm1 @ List.map fst bm2) in
    List.filter
      (fun l ->
        match (List.assoc_opt l bm1, List.assoc_opt l bm2) with
        | Some a, Some b -> not (Bitmap.equal a b)
        | None, None -> false
        | Some _, None | None, Some _ -> true)
      ids
  in
  match (old_tree, new_tree) with
  | None, _ | _, None -> senders
  | Some ot, Some nt ->
      if pods_changed ot nt then senders
      else begin
        let leaves = changed_leaves ot nt in
        let pods =
          List.sort_uniq compare (List.map (Topology.pod_of_leaf t.topo) leaves)
        in
        List.filter
          (fun h ->
            List.mem (Topology.leaf_of_host t.topo h) leaves
            || List.mem (Topology.pod_of_host t.topo h) pods)
          senders
      end

let reencode t ~group st ~changed_host =
  Obs.with_span "controller.reencode" ~attrs:[ ("group", Obs.Int group) ]
  @@ fun () ->
  let old_enc = st.enc in
  let old_tree = Option.map (fun e -> e.Encoding.tree) old_enc in
  (match old_enc with Some e -> uninstall_enc t ~group e | None -> ());
  encode_group t st;
  install_with_degrade t ~group st;
  if Hashtbl.length st.applied > 0 || not (all_healthy t) then
    refresh_overrides t ~group st;
  let new_tree = Option.map (fun e -> e.Encoding.tree) st.enc in
  let tree_changed =
    match (old_tree, new_tree) with
    | None, None -> false
    | Some a, Some b ->
        (not (Tree.equal_bitmaps a.Tree.leaf_bitmaps b.Tree.leaf_bitmaps))
        || not (Tree.equal_bitmaps a.Tree.spine_bitmaps b.Tree.spine_bitmaps)
    | None, Some _ | Some _, None -> true
  in
  if not tree_changed then
    { hypervisors = [ changed_host ]; leaves = []; pods = [] }
  else begin
    let common_changed =
      match (old_enc, st.enc) with
      | Some a, Some b ->
          (not (clustering_equal a.Encoding.d_spine b.Encoding.d_spine))
          || not (clustering_equal a.Encoding.d_leaf b.Encoding.d_leaf)
      | None, Some _ | Some _, None -> true
      | None, None -> false
    in
    let sender_hosts = senders st in
    let hyp =
      if common_changed then sender_hosts
      else affected_senders t old_tree new_tree sender_hosts
    in
    let old_leaf_srules =
      match old_enc with
      | Some e -> e.Encoding.d_leaf.Clustering.srules
      | None -> []
    in
    let new_leaf_srules =
      match st.enc with
      | Some e -> e.Encoding.d_leaf.Clustering.srules
      | None -> []
    in
    let old_pod_srules =
      match old_enc with
      | Some e -> e.Encoding.d_spine.Clustering.srules
      | None -> []
    in
    let new_pod_srules =
      match st.enc with
      | Some e -> e.Encoding.d_spine.Clustering.srules
      | None -> []
    in
    {
      hypervisors = List.sort_uniq compare (changed_host :: hyp);
      leaves = srule_diff old_leaf_srules new_leaf_srules;
      pods = srule_diff old_pod_srules new_pod_srules;
    }
  end

(* {1 Incremental fast path} *)

(* Absorb a single receiver join/leave through the encoding's delta fast
   path (no re-clustering). Returns [None] when the engine demands a full
   re-encode; the caller then falls back to {!reencode}. The fallback is
   safe because [Encoding.apply_delta] mutates nothing before returning
   [Reencode _], so the old encoding still reflects the old membership and
   the diff in {!reencode} stays honest. *)
let try_fast_delta t ~group st ~host ~joining =
  if not t.incremental then None
  else
    match st.enc with
    | None -> None
    | Some enc -> (
        let dleaf = Topology.leaf_of_host t.topo host in
        let delta = Encoding.delta_of_host t.topo ~joining host in
        match Encoding.apply_delta enc delta with
        | Encoding.Reencode reason ->
            Log.debug (fun m ->
                m "group %d: fast path declined (%s); re-encoding" group
                  (match reason with
                  | Encoding.New_leaf -> "new leaf"
                  | Encoding.Emptied_leaf -> "emptied leaf"
                  | Encoding.Budget_exceeded -> "budget exceeded"
                  | Encoding.Stale -> "stale"));
            None
        | Encoding.Applied a ->
            let mirror_ok =
              match (a.Encoding.site, t.hooks) with
              | Encoding.Site_srule, Some hooks -> (
                  (* The fabric usually already sees the mutation (it stores
                     the bitmap by reference), but mirror it through the hook
                     so installs stay explicit, verified and accounted. *)
                  let bm =
                    List.assoc dleaf enc.Encoding.d_leaf.Clustering.srules
                  in
                  match
                    reliable t hooks ~group (Op_install_leaf (dleaf, bm))
                  with
                  | Ok () ->
                      unmark_stale t ~group (Srule_state.Leaf dleaf);
                      true
                  | Error () ->
                      (* The leaf stopped accepting installs mid-run: deny it
                         and fall back to a full re-encode, which will fold
                         its traffic into the default p-rule. *)
                      t.degradations <- t.degradations + 1;
                      Obs.incr "controller.degradations";
                      t.denied_leaf.(dleaf) <- true;
                      false)
              | _ -> true
            in
            if not mirror_ok then None
            else begin
            t.fast_hits <- t.fast_hits + 1;
            Obs.incr "controller.fast_path";
            if Hashtbl.length st.applied > 0 || not (all_healthy t) then
              refresh_overrides t ~group st;
            (* Upstream rules only depend on the tree's leaf and pod sets,
               which the fast path never changes — so when the common
               downstream section is untouched, only senders co-located on
               the flipped leaf (their own downstream leaf rule embeds its
               port bitmap) need fresh headers. *)
            let hyp =
              if a.Encoding.header_changed then senders st
              else
                List.filter
                  (fun h -> Topology.leaf_of_host t.topo h = dleaf)
                  (senders st)
            in
            Some
              {
                hypervisors = List.sort_uniq compare (host :: hyp);
                leaves =
                  (match a.Encoding.site with
                  | Encoding.Site_srule -> [ dleaf ]
                  | Encoding.Site_prule | Encoding.Site_default -> []);
                pods = [];
              }
            end)

(* {1 Public group lifecycle} *)

exception Invariant_violation of string

(* Opt-in runtime invariant checking: with ELMO_DEBUG_INVARIANTS set, every
   mutating operation re-verifies the s-rule ledger against the installed
   encodings. The environment is consulted once, lazily, so the disabled
   path costs a single boolean test. *)
let debug_invariants =
  lazy
    (match Sys.getenv_opt "ELMO_DEBUG_INVARIANTS" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let check_invariants t ~op =
  if Lazy.force debug_invariants && not (Srule_state.check t.srules) then
    raise
      (Invariant_violation
         (Printf.sprintf
            "Controller.%s: s-rule ledger diverged from installed encodings"
            op))

let add_group t ~group members =
  if Hashtbl.mem t.groups group then
    invalid_arg "Controller.add_group: group exists"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Log.debug (fun m -> m "add_group %d with %d members" group (List.length members));
  let hosts = List.map fst members in
  if List.length (List.sort_uniq compare hosts) <> List.length hosts then
    invalid_arg "Controller.add_group: duplicate member host"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Obs.with_span "controller.add_group"
    ~attrs:
      [ ("group", Obs.Int group); ("members", Obs.Int (List.length members)) ]
  @@ fun () ->
  let st = { members; enc = None; applied = Hashtbl.create 1 } in
  Hashtbl.add t.groups group st;
  mark_dirty t group;
  encode_group t st;
  install_with_degrade t ~group st;
  if not (all_healthy t) then refresh_overrides t ~group st;
  let srule_leaves, srule_pods =
    match st.enc with
    | Some e ->
        ( List.map fst e.Encoding.d_leaf.Clustering.srules,
          List.map fst e.Encoding.d_spine.Clustering.srules )
    | None -> ([], [])
  in
  reconcile t;
  check_invariants t ~op:"add_group";
  {
    hypervisors = List.sort_uniq compare hosts;
    leaves = srule_leaves;
    pods = srule_pods;
  }

(* Two-phase batch install (§5.1.3 control-plane setup): encode all groups
   in parallel against a frozen capacity snapshot, then commit. Hook-free
   controllers commit through the per-pod shard scheduler ({!Shard}):
   single-pod groups proceed on their shard with no global ordering, and
   cross-pod groups serialize in gid order only against the groups they
   actually share a pod with — yet outcomes stay bit-identical to running
   {!add_group} sequentially in ascending gid order, for any domain count.
   Fabric-attached controllers keep the fully-sequential interleaved
   commit+install loop: the hooks are single-domain, and a degradation
   during one group's install (denied switch, stale marker) is observable
   by the commits and re-encodes of every later group. *)

(* Post-commit registration of one batch group — always on the calling
   domain, in ascending gid order, identical for both commit paths. *)
let register_batch_group t ~group st hyp leaves pods =
  Hashtbl.add t.groups group st;
  mark_dirty t group;
  install_with_degrade t ~group st;
  if not (all_healthy t) then refresh_overrides t ~group st;
  hyp := List.rev_append (List.map fst st.members) !hyp;
  match st.enc with
  | None -> ()
  | Some e ->
      leaves :=
        List.rev_append
          (List.map fst e.Encoding.d_leaf.Clustering.srules)
          !leaves;
      pods :=
        List.rev_append
          (List.map fst e.Encoding.d_spine.Clustering.srules)
          !pods

let batch_updates hyp leaves pods =
  {
    hypervisors = List.sort_uniq compare !hyp;
    leaves = List.sort_uniq compare !leaves;
    pods = List.sort_uniq compare !pods;
  }

(* The optimistic capacity decisions no longer hold: re-run Algorithm 1
   against the live ledger, exactly as the sequential path would have. The
   tree is a pure function of the receiver set, so the optimistic one is
   reusable — and on the sharded path it also bounds where the re-encode
   may probe (the group's own pods). *)
let conflict_reencode t ~group enc =
  Obs.incr "controller.batch_conflicts";
  Obs.instant "install_all.conflict" ~attrs:[ ("group", Obs.Int group) ];
  Obs.with_span "controller.conflict_reencode"
    ~attrs:[ ("group", Obs.Int group) ]
    (fun () ->
      Encoding.encode
        ~srule_ok_leaf:(srule_ok_leaf t)
        ~srule_ok_pod:(srule_ok_pod t) t.params t.srules enc.Encoding.tree)

(* Sequential phase 2 for fabric-attached controllers: commit and install
   interleave per group, in gid order, exactly as before sharding. *)
let commit_sequential t batch sts encoded =
  let hyp = ref [] and leaves = ref [] and pods = ref [] in
  Obs.with_span "install_all.commit" (fun () ->
      Array.iteri
        (fun i (group, _) ->
          let st = sts.(i) in
          (match encoded.(i) with
          | None -> ()
          | Some (enc, txn) -> (
              match Srule_state.commit t.srules txn with
              | Ok () -> st.enc <- Some enc
              | Error _ ->
                  t.conflicts <- t.conflicts + 1;
                  st.enc <- Some (conflict_reencode t ~group enc)));
          register_batch_group t ~group st hyp leaves pods)
        batch);
  batch_updates hyp leaves pods

(* Sharded phase 2 for hook-free controllers. Each group's commit — and its
   conflict re-encode — reads and writes the ledger only at the pods its
   tree spans, so {!Shard.run} can execute commits of pod-disjoint groups
   concurrently on the shared ledger while keeping conflict sets in gid
   order. Without hooks, installation bookkeeping mutates nothing (no
   fabric, no degradation, no stale markers), so registration runs as a
   sequential pass afterwards with no observable difference from
   interleaving it. *)
let commit_sharded ?pool t batch sts encoded =
  let hyp = ref [] and leaves = ref [] and pods = ref [] in
  Obs.with_span "install_all.commit" (fun () ->
      let tasks = ref [] in
      Array.iteri
        (fun i (group, _) ->
          match encoded.(i) with
          | None -> ()
          | Some (enc, txn) ->
              let st = sts.(i) in
              let gpods = Shard.pods_of_tree t.topo enc.Encoding.tree in
              (* A transaction that escaped its tree's pods would break
                 shard ownership; the probe log is the checkable witness. *)
              assert (
                List.for_all
                  (fun s -> List.mem (Shard.pod_of_site t.topo s) gpods)
                  (Srule_state.txn_sites txn));
              let run () =
                match Srule_state.commit t.srules txn with
                | Ok () ->
                    st.enc <- Some enc;
                    false
                | Error _ ->
                    st.enc <- Some (conflict_reencode t ~group enc);
                    true
              in
              tasks := { Shard.gid = group; pods = gpods; run } :: !tasks)
        batch;
      let tasks = Array.of_list (List.rev !tasks) in
      let stats = Shard.run ?pool ~pods:t.topo.Topology.pods tasks in
      let conflicts =
        Array.fold_left (fun acc s -> acc + s.Shard.conflicts) 0 stats
      in
      t.conflicts <- t.conflicts + conflicts;
      Array.iteri
        (fun p b ->
          let a = t.shard_batch.(p) in
          t.shard_batch.(p) <-
            {
              Shard.committed = a.Shard.committed + b.Shard.committed;
              conflicts = a.Shard.conflicts + b.Shard.conflicts;
              single_pod = a.Shard.single_pod + b.Shard.single_pod;
              cross_pod = a.Shard.cross_pod + b.Shard.cross_pod;
            };
          if b.Shard.committed > 0 then
            Obs.incr_indexed ~n:b.Shard.committed "shard.committed" p;
          if b.Shard.conflicts > 0 then
            Obs.incr_indexed ~n:b.Shard.conflicts "shard.conflicts" p)
        stats;
      Array.iteri
        (fun i (group, _) -> register_batch_group t ~group sts.(i) hyp leaves pods)
        batch);
  batch_updates hyp leaves pods

let install_all ?(domains = 1) t batch =
  let batch =
    List.sort (fun (g1, _) (g2, _) -> compare g1 g2) batch |> Array.of_list
  in
  Array.iteri
    (fun i (group, members) ->
      if Hashtbl.mem t.groups group || (i > 0 && fst batch.(i - 1) = group) then
        invalid_arg "Controller.install_all: group exists"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      let hosts = List.map fst members in
      if List.length (List.sort_uniq compare hosts) <> List.length hosts then
        invalid_arg "Controller.install_all: duplicate member host") (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
    batch;
  Log.debug (fun m ->
      m "install_all: %d groups across %d domains" (Array.length batch) domains);
  Obs.with_span "controller.install_all"
    ~attrs:
      [ ("groups", Obs.Int (Array.length batch)); ("domains", Obs.Int domains) ]
  @@ fun () ->
  let sts =
    Array.map
      (fun (_, members) -> { members; enc = None; applied = Hashtbl.create 1 })
      batch
  in
  (* Phase 1: optimistic parallel encode. Each group gets a private
     transaction over the shared snapshot; nothing touches the ledger. *)
  let snap = Srule_state.snapshot t.srules in
  let encode_one st =
    match receivers st with
    | [] -> None
    | rcvs ->
        let txn = Srule_state.txn snap in
        Some
          ( Encoding.encode_txn
              ~srule_ok_leaf:(srule_ok_leaf t)
              ~srule_ok_pod:(srule_ok_pod t) t.params txn
              (Tree.of_members t.topo rcvs),
            txn )
  in
  (* The pool (when [domains > 1]) spans both phases: phase 1 fans the
     optimistic encodes out over it, phase 2 reuses the same workers for
     the sharded commit. *)
  let run_phases pool =
    let encoded =
      Obs.with_span "install_all.encode" (fun () ->
          match pool with
          | None -> Array.map encode_one sts
          | Some pool ->
              Domain_pool.map ?probe:(Obs.pool_probe ()) pool encode_one sts)
    in
    match t.hooks with
    | Some _ -> commit_sequential t batch sts encoded
    | None -> commit_sharded ?pool t batch sts encoded
  in
  let updates =
    if domains <= 1 then run_phases None
    else begin
      (* Worker domains get per-domain observability shards (merged back
         at pool shutdown); the chunk probe is active only on the wall
         clock. *)
      let worker_init, worker_exit = Obs.worker_hooks () in
      Domain_pool.with_pool ~worker_init ~worker_exit domains (fun pool ->
          run_phases (Some pool))
    end
  in
  reconcile t;
  check_invariants t ~op:"install_all";
  updates

let batch_conflicts t = t.conflicts

let remove_group t ~group =
  let st = find_group t group in
  (match st.enc with Some e -> uninstall_enc t ~group e | None -> ());
  let srule_leaves, srule_pods =
    match st.enc with
    | Some e ->
        ( List.map fst e.Encoding.d_leaf.Clustering.srules,
          List.map fst e.Encoding.d_spine.Clustering.srules )
    | None -> ([], [])
  in
  Hashtbl.remove t.groups group;
  mark_dirty t group;
  reconcile t;
  check_invariants t ~op:"remove_group";
  {
    hypervisors = List.sort_uniq compare (List.map fst st.members);
    leaves = srule_leaves;
    pods = srule_pods;
  }

let join t ~group ~host ~role =
  let st = find_group t group in
  if List.mem_assoc host st.members then
    invalid_arg "Controller.join: host already a member"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Obs.with_span "controller.join"
    ~attrs:[ ("group", Obs.Int group); ("host", Obs.Int host) ]
  @@ fun () ->
  mark_dirty t group;
  let hp = Topology.pod_of_host t.topo host in
  t.shard_events.(hp) <- t.shard_events.(hp) + 1;
  st.members <- st.members @ [ (host, role) ];
  let u =
    match role with
    | Sender ->
        (* The tree is unchanged; only the new sender's encap rule is
           installed. *)
        { hypervisors = [ host ]; leaves = []; pods = [] }
    | Receiver | Both -> (
        match try_fast_delta t ~group st ~host ~joining:true with
        | Some u -> u
        | None ->
            t.reencodes <- t.reencodes + 1;
            Obs.incr "controller.reencodes";
            reencode t ~group st ~changed_host:host)
  in
  reconcile t;
  check_invariants t ~op:"join";
  u

let leave t ~group ~host =
  let st = find_group t group in
  let role =
    match List.assoc_opt host st.members with
    | Some r -> r
    | None -> raise Not_found
  in
  Obs.with_span "controller.leave"
    ~attrs:[ ("group", Obs.Int group); ("host", Obs.Int host) ]
  @@ fun () ->
  mark_dirty t group;
  let hp = Topology.pod_of_host t.topo host in
  t.shard_events.(hp) <- t.shard_events.(hp) + 1;
  st.members <- List.remove_assoc host st.members;
  let u =
    match role with
    | Sender -> { hypervisors = [ host ]; leaves = []; pods = [] }
    | Receiver | Both -> (
        match try_fast_delta t ~group st ~host ~joining:false with
        | Some u -> u
        | None ->
            t.reencodes <- t.reencodes + 1;
            Obs.incr "controller.reencodes";
            reencode t ~group st ~changed_host:host)
  in
  reconcile t;
  check_invariants t ~op:"leave";
  u

let encoding t ~group = (find_group t group).enc
let members t ~group = (find_group t group).members
let group_count t = Hashtbl.length t.groups
let churn_stats t = { fast_path = t.fast_hits; reencoded = t.reencodes }

let install_stats t =
  {
    attempts = t.install_attempts;
    retries = t.install_retries;
    exhausted = t.install_exhausted;
    degradations = t.degradations;
    compensations = t.compensations;
    stale_entries = Hashtbl.length t.stale;
  }

let shard_stats t =
  Array.to_list
    (Array.mapi
       (fun p (s : Shard.stats) ->
         {
           shard_pod = p;
           shard_groups = s.Shard.committed;
           shard_conflicts = s.Shard.conflicts;
           shard_single_pod = s.Shard.single_pod;
           shard_cross_pod = s.Shard.cross_pod;
           shard_churn_events = t.shard_events.(p);
         })
       t.shard_batch)

let header t ~group ~sender =
  let st = find_group t group in
  match st.enc with
  | None -> None
  | Some enc -> (
      let base = Encoding.header_for_sender enc ~sender in
      match Hashtbl.find_opt st.applied sender with
      | None -> Some base
      | Some ov when ov.unicast -> None
      | Some ov ->
          let u_leaf =
            if base.Prule.u_leaf.Prule.multipath then
              {
                base.Prule.u_leaf with
                Prule.multipath = false;
                up = ov.up_leaf_ports;
              }
            else base.Prule.u_leaf
          in
          let u_spine =
            match (base.Prule.u_spine, ov.up_spine_ports) with
            | Some u, Some ports when u.Prule.multipath ->
                Some { u with Prule.multipath = false; up = ports }
            | u, _ -> u
          in
          Some { base with Prule.u_leaf; u_spine })

(* {1 Failure events} *)

type failure_report = {
  affected_groups : int;
  hypervisors_updated : int;
  rule_updates_mean : float;
  rule_updates_max : int;
  unicast_fallbacks : int;
}

let overrides_snapshot st = Hashtbl.copy st.applied

let override_equal a b =
  Bitmap.equal a.up_leaf_ports b.up_leaf_ports
  && a.unicast = b.unicast
  &&
  match (a.up_spine_ports, b.up_spine_ports) with
  | None, None -> true
  | Some x, Some y -> Bitmap.equal x y
  | None, Some _ | Some _, None -> false

let refresh_all t =
  let affected = ref 0 in
  let hyp_hosts = Hashtbl.create 256 in
  let unicast = ref 0 in
  Hashtbl.iter
    (fun group st ->
      let before = overrides_snapshot st in
      refresh_overrides t ~group st;
      (* A hypervisor is updated when its flow's override appears, changes,
         or is withdrawn (multipath re-enabled after recovery). *)
      let changed = ref [] in
      let consider host ov_opt =
        let changed_here =
          match (Hashtbl.find_opt before host, ov_opt) with
          | None, None -> false
          | Some a, Some b -> not (override_equal a b)
          | None, Some _ | Some _, None -> true
        in
        if changed_here && not (List.mem host !changed) then
          changed := host :: !changed
      in
      Hashtbl.iter (fun host ov -> consider host (Some ov)) st.applied;
      Hashtbl.iter
        (fun host _ ->
          if not (Hashtbl.mem st.applied host) then consider host None)
        before;
      if !changed <> [] then begin
        incr affected;
        List.iter
          (fun h ->
            Hashtbl.replace hyp_hosts h
              (1 + Option.value ~default:0 (Hashtbl.find_opt hyp_hosts h)))
          !changed;
        if Hashtbl.fold (fun _ ov acc -> acc || ov.unicast) st.applied false
        then incr unicast
      end)
    t.groups;
  let hosts = Hashtbl.length hyp_hosts in
  let total = Hashtbl.fold (fun _ n acc -> acc + n) hyp_hosts 0 in
  let max_per_host = Hashtbl.fold (fun _ n acc -> max acc n) hyp_hosts 0 in
  {
    affected_groups = !affected;
    hypervisors_updated = hosts;
    rule_updates_mean =
      (if hosts = 0 then 0.0 else float_of_int total /. float_of_int hosts);
    rule_updates_max = max_per_host;
    unicast_fallbacks = !unicast;
  }

(* Failure and recovery events only rewrite hypervisor overrides — the
   s-rule ledger is untouched — but the invariant re-check after each one is
   cheap and catches any drift introduced while the fabric was degraded. *)
let refresh_after t ~op =
  let r = refresh_all t in
  check_invariants t ~op;
  r

let fail_spine t s =
  Log.info (fun m -> m "spine %d failed; recomputing upstream assignments" s);
  t.spine_ok.(s) <- false;
  refresh_after t ~op:"fail_spine"

let recover_spine t s =
  t.spine_ok.(s) <- true;
  refresh_after t ~op:"recover_spine"

let fail_core t c =
  Log.info (fun m -> m "core %d failed; recomputing upstream assignments" c);
  t.core_ok.(c) <- false;
  refresh_after t ~op:"fail_core"

let link_index t ~leaf ~plane =
  if
    leaf < 0
    || leaf >= Topology.num_leaves t.topo
    || plane < 0
    || plane >= t.topo.Topology.spines_per_pod
  then invalid_arg "Controller: link out of range"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  (leaf * t.topo.Topology.spines_per_pod) + plane

let fail_link t ~leaf ~plane =
  Log.info (fun m ->
      m "link leaf %d <-> plane %d failed; recomputing upstream assignments"
        leaf plane);
  t.link_ok.(link_index t ~leaf ~plane) <- false;
  refresh_after t ~op:"fail_link"

let recover_link t ~leaf ~plane =
  t.link_ok.(link_index t ~leaf ~plane) <- true;
  refresh_after t ~op:"recover_link"

let recover_core t c =
  t.core_ok.(c) <- true;
  refresh_after t ~op:"recover_core"

(* {1 Crash-consistent checkpoints}

   A snapshot is a deep copy of everything recovery needs to continue
   bit-identically: membership, encodings (with their bitmap aliasing
   preserved — see {!Encoding.copy}), installed overrides, the s-rule
   ledger, health/denial state, stale markers and every counter. Restoring
   builds a fresh controller and does {e not} re-emit fabric installs: the
   fabric's state survives a controller crash, and the journal replay that
   follows a restore re-issues exactly the operations the crashed
   controller had not yet checkpointed. *)

type snapshot = {
  snap_topo : Topology.t;
  snap_params : Params.t;
  snap_incremental : bool;
  snap_groups :
    (int * (int * role) list * Encoding.t option * (int * override) list) list;
  snap_srules : Srule_state.t;
  snap_fast_hits : int;
  snap_reencodes : int;
  snap_conflicts : int;
  snap_spine_ok : bool array;
  snap_core_ok : bool array;
  snap_link_ok : bool array;
  snap_denied_leaf : bool array;
  snap_denied_pod : bool array;
  snap_stale : (int * (int * Srule_state.site)) list;
  snap_install_attempts : int;
  snap_install_retries : int;
  snap_install_exhausted : int;
  snap_degradations : int;
  snap_compensations : int;
  snap_shard_batch : Shard.stats array;
  snap_shard_events : int array;
}

let copy_override ov =
  {
    up_leaf_ports = Bitmap.copy ov.up_leaf_ports;
    up_spine_ports = Option.map Bitmap.copy ov.up_spine_ports;
    unicast = ov.unicast;
  }

let snapshot t =
  let groups =
    Hashtbl.fold
      (fun group st acc ->
        let overrides =
          Hashtbl.fold
            (fun host ov acc -> (host, copy_override ov) :: acc)
            st.applied []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        (group, st.members, Option.map Encoding.copy st.enc, overrides) :: acc)
      t.groups []
    |> List.sort (fun (g1, _, _, _) (g2, _, _, _) -> compare g1 g2)
  in
  {
    snap_topo = t.topo;
    snap_params = t.params;
    snap_incremental = t.incremental;
    snap_groups = groups;
    snap_srules = Srule_state.copy t.srules;
    snap_fast_hits = t.fast_hits;
    snap_reencodes = t.reencodes;
    snap_conflicts = t.conflicts;
    snap_spine_ok = Array.copy t.spine_ok;
    snap_core_ok = Array.copy t.core_ok;
    snap_link_ok = Array.copy t.link_ok;
    snap_denied_leaf = Array.copy t.denied_leaf;
    snap_denied_pod = Array.copy t.denied_pod;
    snap_stale =
      Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.stale []
      |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2);
    snap_install_attempts = t.install_attempts;
    snap_install_retries = t.install_retries;
    snap_install_exhausted = t.install_exhausted;
    snap_degradations = t.degradations;
    snap_compensations = t.compensations;
    snap_shard_batch = Array.copy t.shard_batch;
    snap_shard_events = Array.copy t.shard_events;
  }

(* {1 Installed-configuration views}

   The pure [Installed_config.t] view feeds the symbolic verification layer
   ([lib/verify]). Both producers deep-copy: a view stays valid across later
   controller mutations, exactly like a snapshot. *)

let view_override ov =
  {
    Installed_config.up_leaf_ports = Bitmap.copy ov.up_leaf_ports;
    up_spine_ports = Option.map Bitmap.copy ov.up_spine_ports;
    unicast = ov.unicast;
  }

let view_of_group ~gid ~members ~enc ~overrides =
  let of_role want =
    List.filter_map (fun (h, r) -> if want r then Some h else None) members
    |> List.sort_uniq Int.compare
  in
  {
    Installed_config.gid;
    receivers = of_role (function Receiver | Both -> true | Sender -> false);
    senders = of_role (function Sender | Both -> true | Receiver -> false);
    enc = Option.map Encoding.copy enc;
    overrides =
      List.map (fun (host, ov) -> (host, view_override ov)) overrides
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
  }

let installed_config t =
  let groups =
    Hashtbl.fold
      (fun gid st acc ->
        let overrides =
          Hashtbl.fold (fun host ov acc -> (host, ov) :: acc) st.applied []
        in
        view_of_group ~gid ~members:st.members ~enc:st.enc ~overrides :: acc)
      t.groups []
  in
  Installed_config.make ~spine_ok:(Array.copy t.spine_ok)
    ~core_ok:(Array.copy t.core_ok) ~link_ok:(Array.copy t.link_ok)
    ~denied_leaf:(Array.copy t.denied_leaf)
    ~denied_pod:(Array.copy t.denied_pod)
    ~stale_sites:(Hashtbl.fold (fun _ e acc -> e :: acc) t.stale [])
    t.topo t.params groups

let restore ?fabric_hooks ?clock snap =
  let t =
    create ?fabric_hooks ?clock ~incremental:snap.snap_incremental
      snap.snap_topo snap.snap_params
  in
  (* The snapshot stays reusable: restore copies out of it again. *)
  List.iter
    (fun (group, members, enc, overrides) ->
      let st =
        {
          members;
          enc = Option.map Encoding.copy enc;
          applied = Hashtbl.create (max 1 (List.length overrides));
        }
      in
      List.iter
        (fun (host, ov) -> Hashtbl.replace st.applied host (copy_override ov))
        overrides;
      Hashtbl.add t.groups group st)
    snap.snap_groups;
  let blit src dst = Array.blit src 0 dst 0 (Array.length src) in
  blit snap.snap_spine_ok t.spine_ok;
  blit snap.snap_core_ok t.core_ok;
  blit snap.snap_link_ok t.link_ok;
  blit snap.snap_denied_leaf t.denied_leaf;
  blit snap.snap_denied_pod t.denied_pod;
  List.iter (fun (key, e) -> Hashtbl.replace t.stale key e) snap.snap_stale;
  t.fast_hits <- snap.snap_fast_hits;
  t.reencodes <- snap.snap_reencodes;
  t.conflicts <- snap.snap_conflicts;
  t.install_attempts <- snap.snap_install_attempts;
  t.install_retries <- snap.snap_install_retries;
  t.install_exhausted <- snap.snap_install_exhausted;
  t.degradations <- snap.snap_degradations;
  t.compensations <- snap.snap_compensations;
  blit snap.snap_shard_events t.shard_events;
  Array.blit snap.snap_shard_batch 0 t.shard_batch 0
    (Array.length snap.snap_shard_batch);
  t.srules <- Srule_state.copy snap.snap_srules;
  (* A restored controller is a new instance: any predicate cache keyed to
     it starts cold, and every group counts as dirty until drained. *)
  Hashtbl.iter (fun g _ -> mark_dirty t g) t.groups;
  t

(* {1 Durable snapshot codec}

   The byte-level form of [snapshot], for the crash-safe wire format
   (lib/fault's Wire). [read_snapshot] is a hostile-input boundary: every
   switch id, bitmap width, array length, and stale key is validated
   against the topology decoded from the same record — in particular the
   boolean state arrays, which [restore] blits by source length and would
   otherwise silently partial-restore from a short corrupt array. All
   violations raise [Byteio.Reader.Corrupt], which Wire.load turns into
   fallback to the previous good snapshot. *)

let write_role w = function
  | Sender -> Byteio.Writer.u8 w 0
  | Receiver -> Byteio.Writer.u8 w 1
  | Both -> Byteio.Writer.u8 w 2

let read_role r =
  match Byteio.Reader.u8 r with
  | 0 -> Sender
  | 1 -> Receiver
  | 2 -> Both
  | _ -> raise Byteio.Reader.Corrupt (* elmo-lint: allow exception-discipline — documented API-misuse guard *)

let write_site w = function
  | Srule_state.Leaf l ->
      Byteio.Writer.u8 w 0;
      Byteio.Writer.int w l
  | Srule_state.Pod p ->
      Byteio.Writer.u8 w 1;
      Byteio.Writer.int w p

let read_site ~topo r =
  match Byteio.Reader.u8 r with
  | 0 ->
      let l = Byteio.Reader.int r in
      Byteio.Reader.check (0 <= l && l < Topology.num_leaves topo);
      Srule_state.Leaf l
  | 1 ->
      let p = Byteio.Reader.int r in
      Byteio.Reader.check (0 <= p && p < topo.Topology.pods);
      Srule_state.Pod p
  | _ -> raise Byteio.Reader.Corrupt (* elmo-lint: allow exception-discipline — documented API-misuse guard *)

let write_override w ov =
  Byteio.Writer.bitmap w ov.up_leaf_ports;
  Byteio.Writer.option w Byteio.Writer.bitmap ov.up_spine_ports;
  Byteio.Writer.bool w ov.unicast

let read_override ~topo r =
  let up_leaf_ports = Byteio.Reader.bitmap r in
  Byteio.Reader.check
    (Bitmap.width up_leaf_ports = Topology.leaf_upstream_width topo);
  let up_spine_ports = Byteio.Reader.option r Byteio.Reader.bitmap in
  (match up_spine_ports with
  | Some bm ->
      Byteio.Reader.check (Bitmap.width bm = Topology.spine_upstream_width topo)
  | None -> ());
  let unicast = Byteio.Reader.bool r in
  { up_leaf_ports; up_spine_ports; unicast }

let write_snapshot w snap =
  Topology.write w snap.snap_topo;
  Params.write w snap.snap_params;
  Byteio.Writer.bool w snap.snap_incremental;
  Byteio.Writer.list w
    (fun w (gid, members, enc, overrides) ->
      Byteio.Writer.int w gid;
      Byteio.Writer.list w
        (fun w (host, role) ->
          Byteio.Writer.int w host;
          write_role w role)
        members;
      Byteio.Writer.option w (fun w e -> Encoding.write w e) enc;
      Byteio.Writer.list w
        (fun w (host, ov) ->
          Byteio.Writer.int w host;
          write_override w ov)
        overrides)
    snap.snap_groups;
  Srule_state.write w snap.snap_srules;
  Byteio.Writer.int w snap.snap_fast_hits;
  Byteio.Writer.int w snap.snap_reencodes;
  Byteio.Writer.int w snap.snap_conflicts;
  Byteio.Writer.bool_array w snap.snap_spine_ok;
  Byteio.Writer.bool_array w snap.snap_core_ok;
  Byteio.Writer.bool_array w snap.snap_link_ok;
  Byteio.Writer.bool_array w snap.snap_denied_leaf;
  Byteio.Writer.bool_array w snap.snap_denied_pod;
  Byteio.Writer.list w
    (fun w (key, (group, site)) ->
      Byteio.Writer.int w key;
      Byteio.Writer.int w group;
      write_site w site)
    snap.snap_stale;
  Byteio.Writer.int w snap.snap_install_attempts;
  Byteio.Writer.int w snap.snap_install_retries;
  Byteio.Writer.int w snap.snap_install_exhausted;
  Byteio.Writer.int w snap.snap_degradations;
  Byteio.Writer.int w snap.snap_compensations;
  Byteio.Writer.u32 w (Array.length snap.snap_shard_batch);
  Array.iter
    (fun (s : Shard.stats) ->
      Byteio.Writer.int w s.Shard.committed;
      Byteio.Writer.int w s.Shard.conflicts;
      Byteio.Writer.int w s.Shard.single_pod;
      Byteio.Writer.int w s.Shard.cross_pod)
    snap.snap_shard_batch;
  Byteio.Writer.int_array w snap.snap_shard_events

let snapshot_topology snap = snap.snap_topo

let read_snapshot r =
  let topo = Topology.read r in
  let params = Params.read r in
  let incremental = Byteio.Reader.bool r in
  let host rd =
    let h = Byteio.Reader.int rd in
    Byteio.Reader.check (0 <= h && h < Topology.num_hosts topo);
    h
  in
  let groups =
    Byteio.Reader.list r (fun rd ->
        let gid = Byteio.Reader.int rd in
        Byteio.Reader.check (gid >= 0);
        let members =
          Byteio.Reader.list rd (fun rd ->
              let h = host rd in
              let role = read_role rd in
              (h, role))
        in
        let enc = Byteio.Reader.option rd (fun rd -> Encoding.read topo rd) in
        let overrides =
          Byteio.Reader.list rd (fun rd ->
              let h = host rd in
              let ov = read_override ~topo rd in
              (h, ov))
        in
        (gid, members, enc, overrides))
  in
  let srules = Srule_state.read ~topo r in
  let fast_hits = Byteio.Reader.int r in
  let reencodes = Byteio.Reader.int r in
  let conflicts = Byteio.Reader.int r in
  let barray expect rd =
    let a = Byteio.Reader.bool_array rd in
    Byteio.Reader.check (Array.length a = expect);
    a
  in
  let spine_ok = barray (Topology.num_spines topo) r in
  let core_ok = barray (max 1 (Topology.num_cores topo)) r in
  let link_ok =
    barray (Topology.num_leaves topo * topo.Topology.spines_per_pod) r
  in
  let denied_leaf = barray (Topology.num_leaves topo) r in
  let denied_pod = barray topo.Topology.pods r in
  let stale_stride = (2 * max (Topology.num_leaves topo) topo.Topology.pods) + 2 in
  let stale =
    Byteio.Reader.list r (fun rd ->
        let key = Byteio.Reader.int rd in
        let group = Byteio.Reader.int rd in
        Byteio.Reader.check (group >= 0);
        let site = read_site ~topo rd in
        (* The key is derived state; recompute and compare rather than
           trusting the stored value. *)
        Byteio.Reader.check
          (key = (group * stale_stride) + Srule_state.site_key site);
        (key, (group, site)))
  in
  let install_attempts = Byteio.Reader.int r in
  let install_retries = Byteio.Reader.int r in
  let install_exhausted = Byteio.Reader.int r in
  let degradations = Byteio.Reader.int r in
  let compensations = Byteio.Reader.int r in
  let nshards = Byteio.Reader.u32 r in
  Byteio.Reader.check (nshards = topo.Topology.pods);
  let shard_batch =
    Array.init nshards (fun _ -> Shard.zero)
  in
  for i = 0 to nshards - 1 do
    let committed = Byteio.Reader.int r in
    let conflicts = Byteio.Reader.int r in
    let single_pod = Byteio.Reader.int r in
    let cross_pod = Byteio.Reader.int r in
    shard_batch.(i) <- { Shard.committed; conflicts; single_pod; cross_pod }
  done;
  let shard_events = Byteio.Reader.int_array r in
  Byteio.Reader.check (Array.length shard_events = topo.Topology.pods);
  {
    snap_topo = topo;
    snap_params = params;
    snap_incremental = incremental;
    snap_groups = groups;
    snap_srules = srules;
    snap_fast_hits = fast_hits;
    snap_reencodes = reencodes;
    snap_conflicts = conflicts;
    snap_spine_ok = spine_ok;
    snap_core_ok = core_ok;
    snap_link_ok = link_ok;
    snap_denied_leaf = denied_leaf;
    snap_denied_pod = denied_pod;
    snap_stale = stale;
    snap_install_attempts = install_attempts;
    snap_install_retries = install_retries;
    snap_install_exhausted = install_exhausted;
    snap_degradations = degradations;
    snap_compensations = compensations;
    snap_shard_batch = shard_batch;
    snap_shard_events = shard_events;
  }

let installed_config_of_snapshot snap =
  let groups =
    List.map
      (fun (gid, members, enc, overrides) ->
        view_of_group ~gid ~members ~enc ~overrides)
      snap.snap_groups
  in
  Installed_config.make ~spine_ok:(Array.copy snap.snap_spine_ok)
    ~core_ok:(Array.copy snap.snap_core_ok)
    ~link_ok:(Array.copy snap.snap_link_ok)
    ~denied_leaf:(Array.copy snap.snap_denied_leaf)
    ~denied_pod:(Array.copy snap.snap_denied_pod)
    ~stale_sites:(List.map snd snap.snap_stale)
    snap.snap_topo snap.snap_params groups
