(** Wire format of the Elmo header (Figure 2), bit-exact with the size
    accounting in {!Prule}.

    Layout, MSB-first: the upstream leaf rule (down ports, up ports,
    multipath flag); a presence bit then the upstream spine rule; a presence
    bit then the core bitmap; the downstream spine section; the downstream
    leaf section. A downstream section is a sequence of p-rules, each
    introduced by a 1 bit and carrying its bitmap followed by identifiers
    each trailed by a more-ids flag; a 0 bit terminates the sequence and a
    presence bit introduces the optional default bitmap.

    Serialization of headers produced by {!Encoding.header_for_sender} is
    lossless: [decode topo (encode topo h) = h]. *)

val encode : Topology.t -> Prule.header -> bytes
(** Raises [Invalid_argument] if a p-rule has an empty switch list or a
    bitmap of the wrong width for its layer. *)

val decode : Topology.t -> bytes -> Prule.header
(** Raises [Bitio.Reader.Truncated] on short input. Trailing padding bits
    are ignored. *)

(** {1 Hostile-input decoding} *)

type decode_error =
  | Truncated  (** input ends inside a field *)
  | Id_out_of_range of { spine : bool; id : int }
      (** a p-rule identifier beyond the topology's switch count *)
  | Duplicate_id of { spine : bool; id : int }
      (** one switch claimed by two rules of the same section *)
  | Trailing_bits
      (** more than a byte of slack after the header, or nonzero padding *)

val pp_decode_error : Format.formatter -> decode_error -> unit

val decode_checked :
  Topology.t -> bytes -> (Prule.header, decode_error) result
(** Total decoder for bytes of unknown provenance: never raises, for any
    input whatsoever. Beyond {!decode}'s parsing it rejects switch ids
    outside the topology, a switch claimed twice within one downstream
    section (which also bounds the section's size), and nonzero or
    byte-plus trailing slack. Structural checks only — whether an accepted
    header {e over-delivers} relative to a group's intent is decided by the
    verify layer ([Verify.admit_header] subsumption). *)

val encode_into : Topology.t -> Prule.header -> Bitio.Sink.t -> int
(** [encode] into a caller-provided sink: identical bit layout, no heap
    allocation on the success path (under the [zero-alloc] lint rule, with
    an [Allocs.probe] harness in the test suite). Returns the sink's end
    byte position ({!Bitio.Sink.finish}). Raises [Invalid_argument] on the
    same malformed headers as {!encode}, or if the sink's buffer is too
    small. *)

val encoded_size : Topology.t -> Prule.header -> int
(** Size in bytes without materializing (= {!Prule.header_bytes}). *)

(** {1 Layer popping (D2d)}

    Switches pop every section belonging to a layer the packet has passed.
    A stage names the sections still on the wire; the P4 [type] field of
    Figure 2a is modelled by carrying the stage alongside the packet. *)

type stage =
  | Full  (** as emitted by the sender hypervisor *)
  | After_u_leaf  (** sender leaf → sender-pod spine *)
  | After_u_spine  (** sender-pod spine → core *)
  | After_core  (** core → downstream pod spine *)
  | After_d_spine  (** any spine → downstream leaf *)

val encode_stage : Topology.t -> stage -> Prule.header -> bytes
(** Serializes only the sections remaining at [stage]; [encode_stage Full]
    = {!encode}. *)

val decode_stage : Topology.t -> stage -> bytes -> Prule.header
(** Inverse of {!encode_stage}; popped sections come back empty ([None] /
    [[]]). *)

val stage_bits : Topology.t -> stage -> Prule.header -> int
(** Exact bit length of [encode_stage] without materializing; agrees with
    {!Prule.remaining_bits_after} for popped stages. *)

val encode_parts : Topology.t -> Prule.header -> bytes list
(** The header split into separately byte-aligned parts, one per section or
    p-rule — the write-call units of the unoptimized encapsulation path. *)

val encode_per_rule_writes : Topology.t -> Prule.header -> bytes
(** Encodes the same header as {!encode}, but materializes every p-rule as a
    separately padded buffer before concatenating — modelling a hypervisor
    switch that issues one DMA write per header copy instead of one write
    for the whole rule list (§4.2). Functionally equivalent on parse only in
    size class, not bit-compatible; used by the Figure 7 benchmark to show
    the per-rule-write throughput penalty. *)
