module Obs = Elmo_obs.Obs

let choose ~k candidates =
  let n = Array.length candidates in
  if k <= 0 then invalid_arg "Min_k_union.choose: k must be positive"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if n = 0 then invalid_arg "Min_k_union.choose: no candidates"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if k > n then invalid_arg "Min_k_union.choose: k exceeds candidate count"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Obs.incr "min_k_union.calls";
  Obs.observe "min_k_union.candidates" (float_of_int n);
  let chosen = Array.make n false in
  (* Seed: smallest bitmap. *)
  let seed = ref 0 in
  let seed_count = ref max_int in
  Array.iteri
    (fun i (_, bm) ->
      let c = Bitmap.popcount bm in
      if c < !seed_count then begin
        seed := i;
        seed_count := c
      end)
    candidates;
  chosen.(!seed) <- true;
  let acc = Bitmap.copy (snd candidates.(!seed)) in
  let picked = ref [ !seed ] in
  for _ = 2 to k do
    let best = ref (-1) in
    let best_cost = ref max_int in
    Array.iteri
      (fun i (_, bm) ->
        if not chosen.(i) then begin
          let cost = Bitmap.union_cost bm acc in
          if cost < !best_cost then begin
            best := i;
            best_cost := cost
          end
        end)
      candidates;
    chosen.(!best) <- true;
    Bitmap.union_into ~dst:acc (snd candidates.(!best));
    picked := !best :: !picked
  done;
  (List.rev !picked, acc)
