(** Pure, immutable view of everything a controller has installed — the
    input language of the symbolic forwarding-equivalence layer
    ({!Verify} in [lib/verify]).

    The view deliberately contains only what the data plane can observe:
    per-group memberships and encodings (p-rules, s-rules, defaults),
    per-sender upstream overrides, switch/link health as the controller
    believes it, switches denied for s-rule installs, and stale fabric
    sites carrying compensated (truthful) entries. It is a plain record of
    plain data — no hooks, no clocks, no ledger — so it can be produced
    equally by a live {!Controller.t}, a {!Controller.snapshot}, a
    {!Replica.t}, or built by hand in tests. All bitmaps and arrays are
    owned by the view (producers deep-copy), so a view stays valid across
    later controller mutations. *)

type override = {
  up_leaf_ports : Bitmap.t;  (** planes the sender's leaf forwards up on *)
  up_spine_ports : Bitmap.t option;
      (** core ports (within each chosen plane) when the tree leaves the
          sender's pod; [None] on single-pod trees *)
  unicast : bool;  (** degrade this sender to hypervisor unicast *)
}
(** Mirror of the controller's per-sender upstream override (§3.3): when a
    flow's ECMP path crosses a failed element, the multipath flags of its
    upstream rules are replaced by these explicit port sets. *)

type group_view = {
  gid : int;
  receivers : int list;  (** member hosts with a receiving role, ascending *)
  senders : int list;  (** member hosts with a sending role, ascending *)
  enc : Encoding.t option;
      (** the installed encoding; [None] when the group has no receivers
          (or was degraded to pure unicast) *)
  overrides : (int * override) list;
      (** sender host -> installed override, ascending by host *)
}

type t = {
  topo : Topology.t;
  params : Params.t;
  groups : group_view list;  (** ascending by [gid] *)
  spine_ok : bool array;  (** per physical spine *)
  core_ok : bool array;  (** per physical core (length ≥ 1) *)
  link_ok : bool array;  (** leaf↔plane links, index [leaf * spp + plane] *)
  denied_leaf : bool array;
      (** leaves excluded from s-rule eligibility after exhausted installs *)
  denied_pod : bool array;
  stale_sites : (int * Srule_state.site) list;
      (** (group, site) fabric entries whose removal failed and now hold a
          compensated truthful bitmap, ascending by (group, site key) *)
}

val make :
  ?spine_ok:bool array ->
  ?core_ok:bool array ->
  ?link_ok:bool array ->
  ?denied_leaf:bool array ->
  ?denied_pod:bool array ->
  ?stale_sites:(int * Srule_state.site) list ->
  Topology.t ->
  Params.t ->
  group_view list ->
  t
(** Builds a view; health arrays default to all-healthy, denial arrays to
    all-allowed and [stale_sites] to empty. Group views are sorted by
    [gid]. The arrays are used as given (not copied): callers constructing
    views by hand own them. *)

val group : t -> int -> group_view option
(** The view of one group, if present. *)

val group_ids : t -> int list
(** All group ids, ascending. *)

val link_ok : t -> leaf:int -> plane:int -> bool
val spine_ok : t -> pod:int -> plane:int -> bool
(** Health of the physical spine [pod * spp + plane]. *)

val is_stale : t -> group:int -> Srule_state.site -> bool
(** Does the view record a compensated stale fabric entry at this site? *)
