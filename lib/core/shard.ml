module Obs = Elmo_obs.Obs

(* Per-pod sharding of the batch commit phase.

   Ownership rule: pod [p] owns the ledger cells of its leaves
   ([leaf_used.(l)] for [pod_of_leaf l = p]) and its own spine counter
   ([pod_used.(p)]). A group's encode consults external state only through
   the capacity probes of the switches in its tree, so a group's commit —
   and its conflict re-encode — reads and writes nothing outside the pods
   its tree spans ({!Srule_state.txn_sites} is the checkable witness). The
   scheduler below exploits that: each pod keeps a gid-ordered queue of the
   tasks touching it, and a task runs exactly when it heads {e every} queue
   of its pods. While it runs it stays at those heads, so no other task can
   touch the same pods; tasks with disjoint pod sets run concurrently on
   one shared ledger.

   Determinism: per pod, tasks execute in ascending gid order, and a task
   only ever observes its own pods' cells — which by induction hold exactly
   the values the fully-sequential gid-order commit would have produced at
   its turn. Commit outcomes, conflict re-encodes and final occupancy are
   therefore bit-identical to the sequential controller for any worker
   count, including the inline (no-pool) path. Gid order is global only
   {e within} each pod's queue — the cross-pod conflict sets — never across
   independent pods.

   Liveness: the minimum-gid pending task always heads all of its queues
   (anything ahead of it would have a smaller gid and still be pending), so
   a worker can always make progress; a worker waits only while another
   live worker is executing, whose completion broadcast wakes it. *)

type task = {
  gid : int;
  pods : int list;  (* sorted ascending, non-empty *)
  run : unit -> bool;  (* commit the group; [true] = conflict re-encoded *)
}

type stats = {
  committed : int;
  conflicts : int;
  single_pod : int;
  cross_pod : int;
}

let zero = { committed = 0; conflicts = 0; single_pod = 0; cross_pod = 0 }

exception Scheduler_invariant of string
(* A violated internal invariant of the commit scheduler — never raised
   unless the module itself is buggy. Declared (rather than [assert false])
   so the failure names itself. *)

let pod_of_site topo = function
  | Srule_state.Leaf l -> Topology.pod_of_leaf topo l
  | Srule_state.Pod p -> p

let pods_of_tree topo (tree : Tree.t) =
  List.map (fun (l, _) -> Topology.pod_of_leaf topo l) tree.Tree.leaf_bitmaps
  @ List.map fst tree.Tree.spine_bitmaps
  |> List.sort_uniq Int.compare

(* Mutable per-pod accumulator, written only under the scheduler lock. *)
type acc = {
  mutable a_committed : int;
  mutable a_conflicts : int;
  mutable a_single : int;
  mutable a_cross : int;
}

let run ?pool ~pods:npods tasks =
  let n = Array.length tasks in
  if npods < 1 then invalid_arg "Shard.run: need at least one pod"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Array.iteri
    (fun i t ->
      if t.pods = [] then invalid_arg "Shard.run: task with no pods"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      if i > 0 && tasks.(i - 1).gid >= t.gid then
        invalid_arg "Shard.run: tasks must be in strictly ascending gid order") (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
    tasks;
  Obs.with_span "shard.commit"
    ~attrs:[ ("tasks", Obs.Int n); ("pods", Obs.Int npods) ]
  @@ fun () ->
  let accs =
    Array.init npods (fun _ ->
        { a_committed = 0; a_conflicts = 0; a_single = 0; a_cross = 0 })
  in
  if n > 0 then begin
    (* Per-pod queues of task indices, gid-ascending (tasks are sorted, so
       appending in index order preserves it). *)
    let queues = Array.make npods [] in
    Array.iteri
      (fun i t -> List.iter (fun p -> queues.(p) <- i :: queues.(p)) t.pods)
      tasks;
    Array.iteri (fun p q -> queues.(p) <- List.rev q) queues;
    let running = Array.make n false in
    let remaining = ref n in
    (* Lowest-gid failure wins, so an exception out of a commit or conflict
       re-encode surfaces deterministically regardless of interleaving. *)
    let failure = ref None in
    let m = Mutex.create () in
    let c = Condition.create () in
    let nworkers = match pool with Some p -> Domain_pool.size p | None -> 1 in
    (* Shard affinity: each worker resumes scanning at the pod it last
       committed on, so consecutive single-pod tasks of one pod tend to stay
       on one domain (warm ledger cells) without any hard pinning. *)
    let last_pod = Array.init nworkers (fun w -> w mod npods) in
    let ready i =
      (not running.(i))
      && List.for_all
           (fun p -> match queues.(p) with j :: _ -> j = i | [] -> false)
           tasks.(i).pods
    in
    let find_ready w =
      let start = last_pod.(w) in
      let rec scan k =
        if k = npods then None
        else
          let p = (start + k) mod npods in
          match queues.(p) with
          | i :: _ when ready i ->
              last_pod.(w) <- p;
              Some i
          | _ -> scan (k + 1)
      in
      scan 0
    in
    let worker w =
      Mutex.lock m;
      let continue = ref true in
      while !continue do
        if !remaining = 0 then continue := false
        else begin
          match find_ready w with
          | Some i ->
              running.(i) <- true;
              Mutex.unlock m;
              let result = try Ok (tasks.(i).run ()) with e -> Error e in
              Mutex.lock m;
              let t = tasks.(i) in
              (match result with
              | Ok conflicted ->
                  let a = accs.(List.hd t.pods) in
                  a.a_committed <- a.a_committed + 1;
                  if conflicted then a.a_conflicts <- a.a_conflicts + 1;
                  (match t.pods with
                  | [ _ ] -> a.a_single <- a.a_single + 1
                  | _ -> a.a_cross <- a.a_cross + 1)
              | Error e -> (
                  match !failure with
                  | Some (g0, _) when g0 <= t.gid -> ()
                  | Some _ | None -> failure := Some (t.gid, e)));
              List.iter
                (fun p ->
                  match queues.(p) with
                  | j :: rest when j = i -> queues.(p) <- rest
                  | _ ->
                      raise
                        (Scheduler_invariant
                           "completed task was not at its queue head"))
                t.pods;
              decr remaining;
              Condition.broadcast c
          | None -> if !remaining > 0 then Condition.wait c m
        end
      done;
      Mutex.unlock m
    in
    (match pool with
    | None -> worker 0
    | Some pool -> Domain_pool.run_workers pool worker);
    match !failure with Some (_, e) -> raise e | None -> ()
  end;
  Array.map
    (fun a ->
      {
        committed = a.a_committed;
        conflicts = a.a_conflicts;
        single_pod = a.a_single;
        cross_pod = a.a_cross;
      })
    accs
