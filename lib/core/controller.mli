(** The logically-centralized Elmo controller (§2, §3.3, §5.1.3).

    Owns group membership, computes each group's encoding (Algorithm 1),
    tracks per-switch s-rule occupancy, and — the paper's control-plane
    story — reports exactly which hypervisors and network switches must be
    updated on every membership event, so churn experiments (Table 2) can
    measure update load. It also models spine/core failure recovery:
    multipath is disabled for affected groups and explicit upstream ports
    are chosen by greedy set cover (§3.3), updating only sender hypervisors.

    Members carry a role (sender, receiver, or both, §5.1.3a). The multicast
    tree spans the {e receivers}; senders hold encapsulation flow rules. *)

val log_src : Logs.src
(** Controller events are logged under "elmo.controller" (info: failures;
    debug: group operations). *)

type role = Sender | Receiver | Both

type updates = {
  hypervisors : int list;  (** hosts whose hypervisor flow rules changed *)
  leaves : int list;  (** leaf switches with group-table (s-rule) changes *)
  pods : int list;
      (** pods whose spines had s-rule changes (one update per physical
          spine of the pod) *)
}
(** Core switches never appear: Elmo installs no core state. *)

val no_updates : updates
val merge_updates : updates -> updates -> updates
val spine_update_count : Topology.t -> updates -> int
(** Physical spine updates implied by [pods]. *)

type install_error =
  | Timed_out  (** no acknowledgement; the rule may or may not have landed *)
  | Refused  (** the switch rejected the operation outright *)

type fabric_hooks = {
  install_leaf :
    leaf:int -> group:int -> Bitmap.t -> (unit, install_error) result;
  remove_leaf : leaf:int -> group:int -> (unit, install_error) result;
  install_pod :
    pod:int -> group:int -> Bitmap.t -> (unit, install_error) result;
  remove_pod : pod:int -> group:int -> (unit, install_error) result;
  read_leaf : leaf:int -> group:int -> Bitmap.t option;
  read_pod : pod:int -> group:int -> Bitmap.t option;
      (** Read-back of the switch's current entry for the group, used to
          verify every mutation (reads are never fault-injected — queries
          are idempotent and cheap to repeat). [read_pod] must answer [Some]
          only when {e every} physical spine of the pod holds the same
          bitmap. *)
}
(** Callbacks letting a dataplane (e.g. {e lib/dataplane}'s fabric) mirror
    the controller's s-rule installs, playing the role of P4Runtime.
    Mutations may fail — or lie: an [Ok] whose rule never landed is caught
    by the read-back verification of the reliable installation path. Build
    perfect hooks for a fabric with [Fabric.controller_hooks]; wrap them in
    a fault schedule with [Fault.hooks] (lib/fault). *)

type t

exception Invariant_violation of string
(** Raised by the group-lifecycle operations when runtime invariant
    checking is enabled (environment variable [ELMO_DEBUG_INVARIANTS] set
    to [1]/[true]/[yes]/[on]) and the s-rule ledger no longer agrees with
    the installed encodings. Always indicates a controller bug, never
    caller error; checking is off by default because {!Srule_state.check}
    is linear in the number of installed groups. *)

val create :
  ?fabric_hooks:fabric_hooks ->
  ?clock:Elmo_obs.Clock.t ->
  ?incremental:bool ->
  Topology.t -> Params.t -> t
(** By default the controller is stand-alone (pure state) and
    [incremental] (default [true]): receiver joins and leaves first try
    {!Encoding.apply_delta}'s in-place fast path and fall back to a full
    re-encode only on structural change, budget overflow, or staleness.
    [~incremental:false] re-encodes every receiver membership event from
    scratch — the baseline the churn benchmark compares against.

    [clock] (default: a fresh logical clock) paces the exponential backoff
    of the reliable installation path; on the default logical clock one
    microsecond of backoff is one clock tick, keeping faulty runs
    deterministic. *)

val topology : t -> Topology.t
val params : t -> Params.t
val srule_state : t -> Srule_state.t

(** {1 Group lifecycle} *)

val add_group : t -> group:int -> (int * role) list -> updates
(** Creates a group with initial (host, role) members. Raises
    [Invalid_argument] if the group exists or a host repeats. *)

val install_all : ?domains:int -> t -> (int * (int * role) list) list -> updates
(** Batch group setup, the two-phase parallel encode path (§5.1.3's
    "hundreds of thousands of groups" controller workload). The batch is
    processed in ascending group order: phase 1 encodes every group
    concurrently on [domains] worker domains (default 1: inline) against an
    immutable {!Srule_state.snapshot}; phase 2 commits the optimistic
    s-rule reservations. On a hook-free controller the commit phase is
    {e sharded by pod} ({!Shard}): the same worker domains run the commits
    (and the rare conflict re-encodes) concurrently for groups whose trees
    span disjoint pods, serializing gid order only within each pod's
    conflict set; a fabric-attached controller keeps the fully-sequential
    interleaved commit+install loop, since hook effects (degradations,
    stale markers) during one group's install are observable by later
    groups. Either way the resulting encodings, s-rule ledger and merged
    updates are bit-identical to calling {!add_group} per group in
    ascending group order, for any [domains]. Raises [Invalid_argument]
    (before any state change) on a duplicate group — in the batch or
    already installed — or a duplicate member host within one group. *)

val batch_conflicts : t -> int
(** Cumulative count of {!install_all} groups whose optimistic reservations
    were invalidated at commit time and had to be re-encoded. *)

val remove_group : t -> group:int -> updates

val join : t -> group:int -> host:int -> role:role -> updates
(** Adds a member. Raises [Not_found] for unknown groups,
    [Invalid_argument] if the host is already a member. *)

val leave : t -> group:int -> host:int -> updates
(** Removes a member; removing the last one leaves an empty group (use
    {!remove_group} to delete). Raises [Not_found] if absent. *)

val encoding : t -> group:int -> Encoding.t option
(** [None] when the group has no receivers. *)

val members : t -> group:int -> (int * role) list
val group_count : t -> int

type churn_stats = {
  fast_path : int;  (** receiver events absorbed in place *)
  reencoded : int;  (** receiver events that ran a full re-encode *)
}

val churn_stats : t -> churn_stats
(** Cumulative counts over the controller's lifetime. Sender joins/leaves
    touch no rules and count in neither bucket. *)

(** {1 Per-pod shards}

    The control plane's batch commit state partitions by pod (see
    {!Shard}); the controller keeps cumulative per-pod accounting so the
    benchmark and observability layers can see where batch and churn load
    lands. *)

type shard_stat = {
  shard_pod : int;
  shard_groups : int;
      (** batch groups committed on this shard; a cross-pod group counts
          once, on its lowest pod *)
  shard_conflicts : int;
      (** of which the optimistic reservations were invalidated *)
  shard_single_pod : int;  (** committed via the single-shard fast path *)
  shard_cross_pod : int;  (** committed via the cross-shard barrier *)
  shard_churn_events : int;
      (** join/leave events, attributed to the changed host's pod *)
}

val shard_stats : t -> shard_stat list
(** One entry per pod, ascending. Batch counters cover only the sharded
    commit path (hook-free {!install_all}); churn counters cover every
    {!join}/{!leave}. *)

(** {1 Dirty-group tracking}

    Every mutation that can change a group's installed view — membership,
    encoding, overrides, stale markers — marks the group dirty. The verify
    layer drains the set to invalidate exactly the cached delivery
    predicates that could have changed ([Verify.check_config_cached])
    instead of recompiling every group after every event. *)

val drain_dirty : t -> int list
(** Groups marked dirty since the last drain, sorted ascending; clears the
    set. A freshly created (or {!restore}d) controller reports every group
    it holds. *)

val dirty_count : t -> int
(** Number of currently dirty groups, without draining. *)

(** {1 Reliable installation, degradation and reconciliation}

    Every fabric mutation runs through a verify-and-retry loop: perform the
    hook, read the entry back, and retry with exponential backoff (initial
    [Params.install_backoff_us], doubling, at most [Params.install_retries]
    retries) until the read-back matches the intended state. A switch whose
    {e install} exhausts the budget is {e denied}: excluded from s-rule
    eligibility for all future encodes, with affected groups re-encoded so
    their traffic falls back to p-rules or the default p-rule — extra
    transmissions, never a blackhole. An entry whose {e removal} exhausts
    the budget is tracked as stale and reconciled after every subsequent
    operation: retry the removal, else overwrite the entry with the exact
    bitmap of the group's current tree at that switch (a compensating entry
    forwards precisely what the default p-rule would). *)

type install_stats = {
  attempts : int;  (** fabric operations attempted, including retries *)
  retries : int;  (** attempts beyond the first, per operation *)
  exhausted : int;  (** operations that ran out of retry budget *)
  degradations : int;
      (** switches denied s-rule eligibility after exhausted installs *)
  compensations : int;
      (** stale entries overwritten with truthful bitmaps *)
  stale_entries : int;  (** stale markers currently outstanding *)
}

val install_stats : t -> install_stats

val header : t -> group:int -> sender:int -> Prule.header option
(** The header [sender]'s hypervisor currently pushes, including any
    failure-recovery upstream overrides. [None] if the group has no
    receivers (degrade to unicast). *)

(** {1 Failures (§3.3, §5.1.3b)} *)

type failure_report = {
  affected_groups : int;
      (** groups with at least one flow whose ECMP path crossed the failed
          switch (the paper's "impacted" groups) *)
  hypervisors_updated : int;  (** distinct sender hypervisors touched *)
  rule_updates_mean : float;
      (** flow-rule updates per touched hypervisor (the paper's 176.9 /
          674.9 "updates per failure event"), batched per host *)
  rule_updates_max : int;
  unicast_fallbacks : int;
      (** groups for which no covering upstream assignment exists and whose
          senders degrade to unicast *)
}

val fail_spine : t -> int -> failure_report
val recover_spine : t -> int -> failure_report
(** Re-enables multipath for groups that had overrides; same accounting. *)

val fail_core : t -> int -> failure_report
val recover_core : t -> int -> failure_report

val fail_link : t -> leaf:int -> plane:int -> failure_report
(** Leaf↔pod-spine link failure: the case where no single spine may reach
    every receiver, so the upstream assignment is a genuine greedy set cover
    over planes (§3.3); flows that no cover can serve degrade to unicast.
    Raises [Invalid_argument] on an out-of-range link. *)

val recover_link : t -> leaf:int -> plane:int -> failure_report

(** {1 Crash-consistent checkpoints}

    {!snapshot} deep-copies everything recovery needs — membership,
    encodings (bitmap aliasing preserved), overrides, the s-rule ledger,
    health/denial state, stale markers, and all counters. {!restore} builds
    a fresh controller from a snapshot without re-emitting fabric installs
    (fabric state survives a controller crash); replaying the journaled
    operation suffix then reproduces the pre-crash state bit-identically:
    same s-rule occupancy, same headers, same {!churn_stats}. A snapshot is
    immutable and reusable — restoring twice yields two independent
    controllers. *)

type snapshot

val snapshot : t -> snapshot

val restore :
  ?fabric_hooks:fabric_hooks -> ?clock:Elmo_obs.Clock.t -> snapshot -> t

val write_snapshot : Byteio.Writer.t -> snapshot -> unit
(** Durable byte-level form of a snapshot, for the crash-safe wire format
    ([lib/fault]'s [Wire]). Encoding aliasing graphs are preserved (see
    {!Encoding.write}), so a snapshot that round-trips through bytes
    restores bit-identically. *)

val read_snapshot : Byteio.Reader.t -> snapshot
(** Inverse of {!write_snapshot}. A hostile-input boundary: every switch
    id, bitmap width, array length, and stale key is validated against the
    topology decoded from the same record; raises {!Byteio.Reader.Corrupt}
    on any violation (never a partial or silently wrong snapshot). *)

val snapshot_topology : snapshot -> Topology.t
(** The topology captured in the snapshot — what journal-op payloads
    written after it must be validated against. *)

(** {1 Installed-configuration views}

    The pure {!Installed_config.t} view of everything this controller has
    installed — memberships, encodings, overrides, health/denial state and
    compensated stale sites — consumed by the symbolic verification layer
    ([lib/verify]). Both producers deep-copy, so a view stays valid across
    later mutations. *)

val installed_config : t -> Installed_config.t
(** The live controller's current installed configuration. *)

val installed_config_of_snapshot : snapshot -> Installed_config.t
(** The same view extracted from a crash-consistent checkpoint, without
    building a controller: what a {!Replica}'s recovery target looked like
    at checkpoint time. *)
