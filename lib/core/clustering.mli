(** Algorithm 1: expressing one downstream layer of a group's multicast tree
    as p-rules, s-rules, and a default p-rule (§3.2).

    Input is the layer's (switch identifier, exact output bitmap) pairs from
    the multicast tree. When the layer fits in [hmax] singleton rules the
    result is exact (sharing exists to shrink headers — D3 — and buys
    nothing but spurious traffic below the budget); otherwise the algorithm
    greedily groups up to [kmax] switches whose bitmaps stay within the
    redundancy budget [r] of their OR (via approximate MIN-K-UNION, with
    [r] interpreted per {!Params.r_semantics}), emits at most [hmax]
    p-rules, spills remaining switches to s-rules where the switch still has
    group-table space, and finally ORs whatever is left into the default
    p-rule. *)

type result = {
  prules : Prule.prule list;
      (** shared (or singleton) p-rules, in emission order *)
  srules : (int * Bitmap.t) list;
      (** per-switch s-rules: exact bitmaps, no redundancy *)
  default : (int list * Bitmap.t) option;
      (** switches folded into the default rule, and its OR bitmap *)
}

val equal_default :
  (int list * Bitmap.t) option -> (int list * Bitmap.t) option -> bool
(** Equality of default-rule sections: same folded switch ids (in order)
    and equal bitmaps (by {!Bitmap.equal}, not structural comparison). *)

val rule_within_budget :
  r:int -> semantics:Params.r_semantics -> exacts:Bitmap.t list -> Bitmap.t -> bool
(** Does a rule whose members have the given exact bitmaps respect the
    redundancy budget with [output] as the shared bitmap? The predicate of
    Algorithm 1's line 6, shared with the incremental encoder's fast path. *)

val run :
  r:int ->
  semantics:Params.r_semantics ->
  hmax:int ->
  kmax:int ->
  has_srule_space:(int -> bool) ->
  (int * Bitmap.t) list ->
  result
(** [run ~r ~semantics ~hmax ~kmax ~has_srule_space layer] never fails:
    every input switch lands in exactly one of the three outputs. [has_srule_space id]
    is consulted once per spilled switch, in ascending identifier order, so
    the caller can account capacity as it is consumed. An empty input yields
    the empty result. Raises [Invalid_argument] on non-positive [hmax]/[kmax]
    or negative [r]. *)

val assigned_bitmap : result -> int -> Bitmap.t option
(** The bitmap switch [id] will forward on under this result: its (shared)
    p-rule's bitmap, its s-rule bitmap, or the default bitmap if the switch
    was folded into the default rule. [None] if the switch appears nowhere. *)

val redundancy : (int * Bitmap.t) list -> result -> int
(** Total extra port transmissions implied by sharing and the default rule
    for one packet traversal: Σ over layer switches of
    popcount(assigned) − popcount(exact). *)
