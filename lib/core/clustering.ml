type result = {
  prules : Prule.prule list;
  srules : (int * Bitmap.t) list;
  default : (int list * Bitmap.t) option;
}

let equal_default a b =
  Option.equal
    (fun (ids1, bm1) (ids2, bm2) ->
      List.equal Int.equal ids1 ids2 && Bitmap.equal bm1 bm2)
    a b

let rule_within_budget ~r ~semantics ~exacts output =
  match (semantics : Params.r_semantics) with
  | Per_bitmap -> List.for_all (fun bm -> Bitmap.hamming bm output <= r) exacts
  | Sum ->
      List.fold_left (fun acc bm -> acc + Bitmap.hamming bm output) 0 exacts
      <= r

module Obs = Elmo_obs.Obs

let run ~r ~semantics ~hmax ~kmax ~has_srule_space layer =
  if hmax <= 0 then invalid_arg "Clustering.run: hmax must be positive"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if kmax <= 0 then invalid_arg "Clustering.run: kmax must be positive"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if r < 0 then invalid_arg "Clustering.run: r must be non-negative"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Obs.with_span "clustering.run" @@ fun () ->
  match layer with
  | [] -> { prules = []; srules = []; default = None }
  | _ :: _ when List.length layer <= hmax ->
      (* The layer fits in singleton p-rules: exact bitmaps, no redundancy.
         Sharing exists to shrink the header (D3); when the header already
         fits there is nothing to buy with spurious traffic. *)
      {
        prules =
          List.map
            (fun (id, bm) -> { Prule.bitmap = bm; switches = [ id ] })
            layer;
        srules = [];
        default = None;
      }
  | _ :: _ ->
      let unassigned = ref (Array.of_list layer) in
      let prules = ref [] in
      let nprules = ref 0 in
      let k = ref kmax in
      let remove indices =
        (* [indices] are positions into the current [!unassigned] array. *)
        let drop = Array.make (Array.length !unassigned) false in
        List.iter (fun i -> drop.(i) <- true) indices;
        let keep = ref [] in
        Array.iteri
          (fun i sw -> if not drop.(i) then keep := sw :: !keep)
          !unassigned;
        unassigned := Array.of_list (List.rev !keep)
      in
      let continue = ref true in
      let iterations = ref 0 in
      while !continue && Array.length !unassigned > 0 && !nprules < hmax do
        iterations := !iterations + 1;
        let kk = min !k (Array.length !unassigned) in
        let indices, output = Min_k_union.choose ~k:kk !unassigned in
        let within_budget =
          rule_within_budget ~r ~semantics
            ~exacts:(List.map (fun i -> snd !unassigned.(i)) indices)
            output
        in
        if within_budget then begin
          let switches = List.map (fun i -> fst !unassigned.(i)) indices in
          prules := { Prule.bitmap = output; switches } :: !prules;
          incr nprules;
          remove indices
        end
        else begin
          Obs.incr "clustering.budget_rejections";
          if kk = 1 then
            (* A singleton always has distance 0; unreachable, but keep the
               loop well-founded. *)
            continue := false
          else k := kk - 1
        end
      done;
      Obs.observe "clustering.iterations" (float_of_int !iterations);
      (* Hmax exhausted (or nothing left): spill to s-rules, else default. *)
      let leftovers =
        Array.to_list !unassigned
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let srules = ref [] in
      let default_switches = ref [] in
      let default_bm = ref None in
      List.iter
        (fun (id, bm) ->
          if has_srule_space id then srules := (id, bm) :: !srules
          else begin
            default_switches := id :: !default_switches;
            match !default_bm with
            | None -> default_bm := Some (Bitmap.copy bm)
            | Some acc -> Bitmap.union_into ~dst:acc bm
          end)
        leftovers;
      let default =
        match !default_bm with
        | None -> None
        | Some bm -> Some (List.rev !default_switches, bm)
      in
      { prules = List.rev !prules; srules = List.rev !srules; default }

let assigned_bitmap t id =
  let in_prule =
    List.find_opt (fun r -> List.mem id r.Prule.switches) t.prules
  in
  match in_prule with
  | Some r -> Some r.Prule.bitmap
  | None -> (
      match List.assoc_opt id t.srules with
      | Some bm -> Some bm
      | None -> (
          match t.default with
          | Some (ids, bm) when List.mem id ids -> Some bm
          | Some _ | None -> None))

let redundancy layer t =
  List.fold_left
    (fun acc (id, exact) ->
      match assigned_bitmap t id with
      | None -> acc
      | Some assigned -> acc + (Bitmap.popcount assigned - Bitmap.popcount exact))
    0 layer
