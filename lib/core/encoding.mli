(** Per-group Elmo encoding: the common downstream rule sets plus per-sender
    header construction (§3.1–3.2).

    The downstream spine and leaf layers are clustered once per group
    (Algorithm 1) and shared by all senders; the upstream leaf/spine rules
    and the core rule are sender-specific and synthesized on demand by
    {!header_for_sender} (§3.1 D2b–c). *)

type t = {
  mutable tree : Tree.t;  (** kept current across {!apply_delta} fast paths *)
  params : Params.t;
  d_spine : Clustering.result;  (** logical-spine layer, ids are pod numbers *)
  d_leaf : Clustering.result;  (** leaf layer, ids are global leaf numbers *)
  mutable stale : int;
      (** fast-path mutations applied since the last from-scratch encode *)
  idx_kind : Bytes.t;
      (** per-leaf dispatch byte: 0 = not in tree, 1 = p-rule, 2 = s-rule,
          3 = default rule *)
  idx_exact : Bitmap.t array;
      (** per-leaf exact tree bitmap (a shared width-0 dummy when absent) *)
  idx_rule : Prule.prule array;
      (** per-leaf containing p-rule (a shared dummy when not in one) *)
  idx_site_bm : Bitmap.t array;
      (** per-leaf rule bitmap the fast path mutates *)
  scratch_a : Bitmap.t;  (** scratch for the prospective budget check *)
  scratch_b : Bitmap.t;  (** scratch for rule refreshes *)
}
(** The [idx_*] arrays and scratch bitmaps are internal to the
    {!apply_delta} fast path: a flat per-leaf index (rebuilt by every
    from-scratch encode and by {!copy}) that makes steady-state delta
    application allocation-free — no list scans, no option wrapping, no
    fresh bitmaps. Treat them as private. *)

exception Internal_error of string
(** Raised only when an internal invariant is violated (a fresh-snapshot
    commit diverging, a pre-checked tree delta being rejected). Reaching it
    indicates a bug in the encoder, never caller error. *)

val encode :
  ?legacy_leaf:(int -> bool) ->
  ?legacy_pod:(int -> bool) ->
  ?srule_ok_leaf:(int -> bool) ->
  ?srule_ok_pod:(int -> bool) ->
  Params.t -> Srule_state.t -> Tree.t -> t
(** Runs Algorithm 1 on both downstream layers, reserving s-rule space in
    the given state as it goes (leaf layer first, as it dominates header
    usage; then spine). Internally this is {!encode_txn} against a fresh
    snapshot of [srules] followed by an immediate (infallible) commit, so
    the sequential and parallel batch paths share every encoding decision.

    [legacy_leaf] / [legacy_pod] mark switches that cannot parse Elmo
    headers (§7 incremental deployment): they are excluded from p-rule
    clustering and served by group-table entries directly — their
    group-table capacity remains the scalability bottleneck, exactly as the
    paper notes. A legacy switch whose table is full falls to the default
    p-rule, which it cannot read: those receivers are lost, surfacing as a
    delivery failure in the data-plane simulator. Default: no legacy
    switches.

    [srule_ok_leaf] / [srule_ok_pod] restrict s-rule {e eligibility}: a
    switch for which the predicate is [false] is treated as if its group
    table were full — its traffic folds into the default p-rule — without
    ever probing (or reserving) ledger capacity. The controller uses these
    to degrade switches whose rule installations keep failing: extra
    traffic via the default p-rule, but no dependence on unreachable
    switch state. Default: every switch is eligible. *)

val encode_txn :
  ?legacy_leaf:(int -> bool) ->
  ?legacy_pod:(int -> bool) ->
  ?srule_ok_leaf:(int -> bool) ->
  ?srule_ok_pod:(int -> bool) ->
  Params.t -> Srule_state.txn -> Tree.t -> t
(** Like {!encode} but pure with respect to the shared ledger: capacity is
    probed and reserved on the transaction only, so any number of group
    encodes can run concurrently against transactions over one snapshot.
    The caller must later {!Srule_state.commit} the transaction — in batch
    order — and on [Error _] discard this encoding and re-run {!encode}
    against the live ledger. *)

(** {1 Incremental deltas}

    The delta fast path of the incremental encoding engine: a membership
    event whose host lands on a leaf the tree already spans flips one port
    bit in the rule that leaf already occupies (p-rule, s-rule, or default),
    in place, without re-running Algorithm 1. The spine and core sections
    are untouched (leaf and pod sets are unchanged) and the header size
    cannot change (bitmap widths are fixed), so only the bit flip and — for
    shared rules — a redundancy-budget re-check are needed. Structural
    events fall back to {!encode}, the correctness oracle. *)

type delta =
  | Join of { host : int; leaf : int; port : int }
  | Leave of { host : int; leaf : int; port : int }
      (** [host]'s leaf switch and its host port on that leaf. *)

type site =
  | Site_prule  (** the leaf sits in a (shared or singleton) p-rule *)
  | Site_srule  (** the leaf holds an s-rule: exact bitmap, switch update *)
  | Site_default  (** the leaf was folded into the default p-rule *)

type applied = {
  site : site;
  header_changed : bool;
      (** did the common downstream section change? [false] when the flipped
          bit was already covered (another sharing switch contributed it) or
          the change is confined to an s-rule — then only the changed leaf's
          co-located senders need new upstream rules. The affected leaf is
          the delta's [leaf] field; it is not repeated here so every
          steady-state outcome is a preallocated static value. *)
}

type reencode_reason =
  | New_leaf  (** join on a leaf the tree does not span *)
  | Emptied_leaf  (** leave of the last member behind a leaf *)
  | Budget_exceeded  (** the shared rule would blow the redundancy budget *)
  | Stale  (** [Params.staleness_limit] fast mutations accumulated *)

type outcome = Applied of applied | Reencode of reencode_reason

val delta_of_host : Topology.t -> joining:bool -> int -> delta
(** Locates the host's leaf and port. *)

val apply_delta : t -> delta -> outcome
(** Applies a membership delta in place when the fast path holds. On
    [Applied] the encoding {e and its tree} reflect the new membership (the
    tree's member buffer is updated in place; [stale] is incremented). On
    [Reencode _] {b nothing was mutated} — the caller must run {!encode} on
    the new membership and release/diff this encoding as usual.

    Steady-state applications are allocation-free: checked statically by
    the [zero-alloc] lint rule and at runtime by the hot-path harness. *)

val release : Srule_state.t -> t -> unit
(** Returns the encoding's s-rule reservations (used on group removal or
    re-encoding during churn). *)

val header_for_sender : t -> sender:int -> Prule.header
(** The full header the sender's hypervisor pushes. [sender] is a host; it
    need not host a member VM. *)

val header_bytes : t -> sender:int -> int

val covered_by_prules : t -> bool
(** True when no s-rule and no default rule was needed (strict coverage). *)

val covered_without_default : t -> bool
(** True when no default rule was needed (s-rules allowed) — the paper's
    "groups covered using non-default p-rules" metric (Fig. 4/5 left,
    Table 1 "without using a default p-rule"). *)

val uses_default : t -> bool
val srule_entries : t -> int
(** Physical group-table entries this encoding occupies (a pod-spine s-rule
    counts once per physical spine of the pod). *)

val prule_count : t -> int
(** Downstream p-rules in the header (both layers, excluding defaults). *)

val copy : t -> t
(** Deep copy for crash-consistent checkpoints: fresh tree and rule bitmaps,
    with the original's aliasing graph preserved (a rule bitmap that
    physically aliases a tree bitmap still does in the copy — the delta fast
    path depends on it). The copy holds no s-rule reservations of its own;
    the caller pairs it with a matching {!Srule_state.copy}. *)

val write : Byteio.Writer.t -> t -> unit
(** Durable wire codec — the byte-level analogue of {!copy}. Each distinct
    bitmap object is written inline once and back-referenced thereafter, so
    the serialized form carries the encoding's aliasing graph and {!read}
    reconstructs the exact object structure (which is what makes a restored
    controller predicate-pointer-identical to the original). *)

val read : Topology.t -> Byteio.Reader.t -> t
(** Inverse of {!write}. Validates every switch id, bitmap width, and
    structural invariant (ascending tree sections, sorted members, stale
    count) against the topology; raises {!Byteio.Reader.Corrupt} on any
    malformed or hostile input. Rebuilds the fast-path leaf index and fresh
    scratch bitmaps. *)
