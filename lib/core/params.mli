(** Encoding parameters of Algorithm 1 (§3.2).

    - [r]: redundancy limit — the maximum Hamming distance between any input
      bitmap of a shared p-rule and the rule's OR-ed output bitmap (extra
      transmissions tolerated per switch per packet).
    - [hmax_leaf] / [hmax_spine]: per-layer cap on the number of downstream
      p-rules in the header. The paper's 325-byte budget corresponds to 30
      leaf and 2 spine p-rules on the 27k-host fabric.
    - [kmax]: maximum number of switches sharing one p-rule, which bounds the
      p-rule's identifier list and hence its size a priori.
    - [fmax]: s-rule (group-table) capacity of each network switch. *)

type r_semantics =
  | Sum  (** §3.2 text: R bounds the {e sum} of Hamming distances of the
             cluster's input bitmaps to the OR-ed output bitmap *)
  | Per_bitmap  (** Algorithm 1's literal line 6: every input bitmap must be
                    within distance R of the output *)

type t = {
  r : int;
  r_semantics : r_semantics;
  hmax_leaf : int;  (** hard cap on downstream-leaf p-rules *)
  hmax_spine : int;  (** hard cap on downstream-spine p-rules *)
  header_budget : int option;
      (** total header budget in bytes (the paper's 325). When set, the
          per-layer Hmax is computed {e per group} within this budget —
          multi-pod groups may spend more spine rules at the cost of leaf
          rules (§3.2 "we budget a separate Hmax per layer such that the
          total number of p-rules is within a header-size limit") — with
          [hmax_leaf]/[hmax_spine] as hard caps. [None] uses the fixed caps
          alone. *)
  kmax : int;
  fmax : int;
  staleness_limit : int;
      (** how many delta fast-path mutations an encoding may accumulate
          before the controller forces a from-scratch re-encode, bounding
          drift from the greedy optimum of Algorithm 1. [0] disables the
          fast path entirely (every membership event re-encodes). *)
  install_retries : int;
      (** how many times the controller re-attempts a failed or unverified
          s-rule install/remove on one switch before declaring the switch
          unusable and degrading affected groups to the default p-rule.
          [0] means a single attempt with no retry. *)
  install_backoff_us : int;
      (** initial retry backoff in microseconds of the controller's {!Clock};
          doubles on every subsequent retry of the same operation. *)
}

val default : t
(** The paper's defaults: [r = 0] (swept by benchmarks), a 325-byte header
    budget with hard caps of 30 leaf / 12 spine p-rules, [kmax = 2] (which
    makes 30 leaf p-rules fit the budget on the 27k-host fabric and matches
    the sharing degree of the paper's running example), [fmax = 30_000]. *)

val with_r : t -> int -> t

val create :
  ?r:int -> ?r_semantics:r_semantics -> ?hmax_leaf:int -> ?hmax_spine:int ->
  ?header_budget:int option -> ?kmax:int -> ?fmax:int ->
  ?staleness_limit:int -> ?install_retries:int -> ?install_backoff_us:int ->
  unit -> t
(** Like {!default} with overrides ([staleness_limit] defaults to 256,
    [install_retries] to 4, [install_backoff_us] to 8).
    Raises [Invalid_argument] on negative [r]/[fmax]/[staleness_limit]/
    [install_retries] or non-positive [hmax_leaf]/[hmax_spine]/[kmax]/
    [install_backoff_us]. *)

val write : Byteio.Writer.t -> t -> unit
(** Durable wire codec (snapshot records). *)

val read : Byteio.Reader.t -> t
(** Inverse of {!write}; re-validates through {!create} and raises
    {!Byteio.Reader.Corrupt} on malformed or semantically invalid input. *)

val pp : Format.formatter -> t -> unit
