(* Pure view of an installed configuration: see the interface for the
   design rationale. This module must stay free of controller internals —
   [Controller] depends on it, not the other way around. *)

type override = {
  up_leaf_ports : Bitmap.t;
  up_spine_ports : Bitmap.t option;
  unicast : bool;
}

type group_view = {
  gid : int;
  receivers : int list;
  senders : int list;
  enc : Encoding.t option;
  overrides : (int * override) list;
}

type t = {
  topo : Topology.t;
  params : Params.t;
  groups : group_view list;
  spine_ok : bool array;
  core_ok : bool array;
  link_ok : bool array;
  denied_leaf : bool array;
  denied_pod : bool array;
  stale_sites : (int * Srule_state.site) list;
}

let make ?spine_ok ?core_ok ?link_ok ?denied_leaf ?denied_pod
    ?(stale_sites = []) topo params groups =
  let default len v = function Some a -> a | None -> Array.make len v in
  {
    topo;
    params;
    groups = List.sort (fun a b -> Int.compare a.gid b.gid) groups;
    spine_ok = default (Topology.num_spines topo) true spine_ok;
    core_ok = default (max 1 (Topology.num_cores topo)) true core_ok;
    link_ok =
      default
        (Topology.num_leaves topo * topo.Topology.spines_per_pod)
        true link_ok;
    denied_leaf = default (Topology.num_leaves topo) false denied_leaf;
    denied_pod = default topo.Topology.pods false denied_pod;
    stale_sites =
      List.sort
        (fun (g1, s1) (g2, s2) ->
          match Int.compare g1 g2 with
          | 0 -> Int.compare (Srule_state.site_key s1) (Srule_state.site_key s2)
          | c -> c)
        stale_sites;
  }

let group t gid = List.find_opt (fun g -> g.gid = gid) t.groups
let group_ids t = List.map (fun g -> g.gid) t.groups

let link_ok t ~leaf ~plane =
  t.link_ok.((leaf * t.topo.Topology.spines_per_pod) + plane)

let spine_ok t ~pod ~plane =
  t.spine_ok.((pod * t.topo.Topology.spines_per_pod) + plane)

let is_stale t ~group site =
  let key = Srule_state.site_key site in
  List.exists
    (fun (g, s) -> g = group && Srule_state.site_key s = key)
    t.stale_sites
