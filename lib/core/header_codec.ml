let layer_widths topo = function
  | `Spine -> (Topology.spine_downstream_width topo, Topology.spine_id_bits topo)
  | `Leaf -> (Topology.leaf_downstream_width topo, Topology.leaf_id_bits topo)

let write_uprule w ~down_width ~up_width (u : Prule.uprule) =
  if Bitmap.width u.Prule.down <> down_width || Bitmap.width u.Prule.up <> up_width
  then invalid_arg "Header_codec: upstream rule width mismatch"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Bitio.Writer.bitmap w u.Prule.down;
  Bitio.Writer.bitmap w u.Prule.up;
  Bitio.Writer.bit w u.Prule.multipath

let write_section topo w layer rules default =
  let width, id_bits = layer_widths topo layer in
  List.iter
    (fun (r : Prule.prule) ->
      if r.Prule.switches = [] then
        invalid_arg "Header_codec: p-rule with no switch identifiers"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      if Bitmap.width r.Prule.bitmap <> width then
        invalid_arg "Header_codec: p-rule bitmap width mismatch"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      Bitio.Writer.bit w true;
      Bitio.Writer.bitmap w r.Prule.bitmap;
      let rec ids = function
        | [] -> ()
        | [ id ] ->
            Bitio.Writer.bits w id id_bits;
            Bitio.Writer.bit w false
        | id :: rest ->
            Bitio.Writer.bits w id id_bits;
            Bitio.Writer.bit w true;
            ids rest
      in
      ids r.Prule.switches)
    rules;
  Bitio.Writer.bit w false;
  match default with
  | None -> Bitio.Writer.bit w false
  | Some bm ->
      if Bitmap.width bm <> width then
        invalid_arg "Header_codec: default bitmap width mismatch"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      Bitio.Writer.bit w true;
      Bitio.Writer.bitmap w bm

let read_uprule r ~down_width ~up_width =
  let down = Bitio.Reader.bitmap r down_width in
  let up = Bitio.Reader.bitmap r up_width in
  let multipath = Bitio.Reader.bit r in
  { Prule.down; up; multipath }

let read_section topo r layer =
  let width, id_bits = layer_widths topo layer in
  let rec rules acc =
    if Bitio.Reader.bit r then begin
      let bitmap = Bitio.Reader.bitmap r width in
      let rec ids acc =
        let id = Bitio.Reader.bits r id_bits in
        if Bitio.Reader.bit r then ids (id :: acc) else List.rev (id :: acc)
      in
      rules ({ Prule.bitmap; switches = ids [] } :: acc)
    end
    else List.rev acc
  in
  let rules = rules [] in
  let default =
    if Bitio.Reader.bit r then Some (Bitio.Reader.bitmap r width) else None
  in
  (rules, default)

let encoded_size topo h = Prule.header_bytes topo h

type stage = Full | After_u_leaf | After_u_spine | After_core | After_d_spine

(* Which sections remain at each stage, outermost first:
   Full:          u_leaf, u_spine, core, d_spine, d_leaf
   After_u_leaf:          u_spine, core, d_spine, d_leaf
   After_u_spine:                  core, d_spine, d_leaf
   After_core:                           d_spine, d_leaf
   After_d_spine:                                 d_leaf *)

let has_u_leaf = function Full -> true | _ -> false

let has_u_spine = function Full | After_u_leaf -> true | _ -> false

let has_core = function
  | Full | After_u_leaf | After_u_spine -> true
  | After_core | After_d_spine -> false

let has_d_spine = function After_d_spine -> false | _ -> true

let encode_stage topo stage (h : Prule.header) =
  let w = Bitio.Writer.create () in
  if has_u_leaf stage then
    write_uprule w
      ~down_width:(Topology.leaf_downstream_width topo)
      ~up_width:(Topology.leaf_upstream_width topo)
      h.Prule.u_leaf;
  if has_u_spine stage then begin
    match h.Prule.u_spine with
    | None -> Bitio.Writer.bit w false
    | Some u ->
        Bitio.Writer.bit w true;
        write_uprule w
          ~down_width:(Topology.spine_downstream_width topo)
          ~up_width:(Topology.spine_upstream_width topo)
          u
  end;
  if has_core stage then begin
    match h.Prule.core with
    | None -> Bitio.Writer.bit w false
    | Some bm ->
        Bitio.Writer.bit w true;
        Bitio.Writer.bitmap w bm
  end;
  if has_d_spine stage then
    write_section topo w `Spine h.Prule.d_spine h.Prule.d_spine_default;
  write_section topo w `Leaf h.Prule.d_leaf h.Prule.d_leaf_default;
  Bitio.Writer.to_bytes w

let empty_uprule topo =
  {
    Prule.down = Bitmap.create (Topology.leaf_downstream_width topo);
    up = Bitmap.create (Topology.leaf_upstream_width topo);
    multipath = false;
  }

let decode_stage topo stage data =
  let r = Bitio.Reader.of_bytes data in
  let u_leaf =
    if has_u_leaf stage then
      read_uprule r
        ~down_width:(Topology.leaf_downstream_width topo)
        ~up_width:(Topology.leaf_upstream_width topo)
    else empty_uprule topo
  in
  let u_spine =
    if has_u_spine stage && Bitio.Reader.bit r then
      Some
        (read_uprule r
           ~down_width:(Topology.spine_downstream_width topo)
           ~up_width:(Topology.spine_upstream_width topo))
    else None
  in
  let core =
    if has_core stage && Bitio.Reader.bit r then
      Some (Bitio.Reader.bitmap r (Topology.core_downstream_width topo))
    else None
  in
  let d_spine, d_spine_default =
    if has_d_spine stage then read_section topo r `Spine else ([], None)
  in
  let d_leaf, d_leaf_default = read_section topo r `Leaf in
  { Prule.u_leaf; u_spine; core; d_spine; d_spine_default; d_leaf; d_leaf_default }

let stage_bits topo stage h =
  match stage with
  | Full -> Prule.header_bits topo h
  | After_u_leaf -> Prule.remaining_bits_after topo h `U_leaf
  | After_u_spine -> Prule.remaining_bits_after topo h `U_spine
  | After_core -> Prule.remaining_bits_after topo h `Core
  | After_d_spine -> Prule.remaining_bits_after topo h `D_spine

let encode topo h = encode_stage topo Full h
let decode topo data = decode_stage topo Full data

let encode_parts topo (h : Prule.header) =
  (* One byte-aligned buffer per section/rule - the unit of a "write call"
     in the per-rule encapsulation path (§4.2). *)
  let parts = ref [] in
  let emit f =
    let w = Bitio.Writer.create () in
    f w;
    parts := Bitio.Writer.to_bytes w :: !parts
  in
  emit (fun w ->
      write_uprule w
        ~down_width:(Topology.leaf_downstream_width topo)
        ~up_width:(Topology.leaf_upstream_width topo)
        h.Prule.u_leaf);
  emit (fun w ->
      match h.Prule.u_spine with
      | None -> Bitio.Writer.bit w false
      | Some u ->
          Bitio.Writer.bit w true;
          write_uprule w
            ~down_width:(Topology.spine_downstream_width topo)
            ~up_width:(Topology.spine_upstream_width topo)
            u);
  emit (fun w ->
      match h.Prule.core with
      | None -> Bitio.Writer.bit w false
      | Some bm ->
          Bitio.Writer.bit w true;
          Bitio.Writer.bitmap w bm);
  let emit_section layer rules default =
    List.iter (fun r -> emit (fun w -> write_section topo w layer [ r ] None)) rules;
    emit (fun w -> write_section topo w layer [] default)
  in
  emit_section `Spine h.Prule.d_spine h.Prule.d_spine_default;
  emit_section `Leaf h.Prule.d_leaf h.Prule.d_leaf_default;
  List.rev !parts

let encode_per_rule_writes topo h =
  Bytes.concat Bytes.empty (encode_parts topo h)
