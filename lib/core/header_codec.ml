let layer_widths topo = function
  | `Spine -> (Topology.spine_downstream_width topo, Topology.spine_id_bits topo)
  | `Leaf -> (Topology.leaf_downstream_width topo, Topology.leaf_id_bits topo)

let write_uprule w ~down_width ~up_width (u : Prule.uprule) =
  if Bitmap.width u.Prule.down <> down_width || Bitmap.width u.Prule.up <> up_width
  then invalid_arg "Header_codec: upstream rule width mismatch"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Bitio.Writer.bitmap w u.Prule.down;
  Bitio.Writer.bitmap w u.Prule.up;
  Bitio.Writer.bit w u.Prule.multipath

let write_section topo w layer rules default =
  let width, id_bits = layer_widths topo layer in
  List.iter
    (fun (r : Prule.prule) ->
      if r.Prule.switches = [] then
        invalid_arg "Header_codec: p-rule with no switch identifiers"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      if Bitmap.width r.Prule.bitmap <> width then
        invalid_arg "Header_codec: p-rule bitmap width mismatch"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      Bitio.Writer.bit w true;
      Bitio.Writer.bitmap w r.Prule.bitmap;
      let rec ids = function
        | [] -> ()
        | [ id ] ->
            Bitio.Writer.bits w id id_bits;
            Bitio.Writer.bit w false
        | id :: rest ->
            Bitio.Writer.bits w id id_bits;
            Bitio.Writer.bit w true;
            ids rest
      in
      ids r.Prule.switches)
    rules;
  Bitio.Writer.bit w false;
  match default with
  | None -> Bitio.Writer.bit w false
  | Some bm ->
      if Bitmap.width bm <> width then
        invalid_arg "Header_codec: default bitmap width mismatch"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      Bitio.Writer.bit w true;
      Bitio.Writer.bitmap w bm

let read_uprule r ~down_width ~up_width =
  let down = Bitio.Reader.bitmap r down_width in
  let up = Bitio.Reader.bitmap r up_width in
  let multipath = Bitio.Reader.bit r in
  { Prule.down; up; multipath }

let read_section topo r layer =
  let width, id_bits = layer_widths topo layer in
  let rec rules acc =
    if Bitio.Reader.bit r then begin
      let bitmap = Bitio.Reader.bitmap r width in
      let rec ids acc =
        let id = Bitio.Reader.bits r id_bits in
        if Bitio.Reader.bit r then ids (id :: acc) else List.rev (id :: acc)
      in
      rules ({ Prule.bitmap; switches = ids [] } :: acc)
    end
    else List.rev acc
  in
  let rules = rules [] in
  let default =
    if Bitio.Reader.bit r then Some (Bitio.Reader.bitmap r width) else None
  in
  (rules, default)

let encoded_size topo h = Prule.header_bytes topo h

type stage = Full | After_u_leaf | After_u_spine | After_core | After_d_spine

(* Which sections remain at each stage, outermost first:
   Full:          u_leaf, u_spine, core, d_spine, d_leaf
   After_u_leaf:          u_spine, core, d_spine, d_leaf
   After_u_spine:                  core, d_spine, d_leaf
   After_core:                           d_spine, d_leaf
   After_d_spine:                                 d_leaf *)

let has_u_leaf = function Full -> true | _ -> false

let has_u_spine = function Full | After_u_leaf -> true | _ -> false

let has_core = function
  | Full | After_u_leaf | After_u_spine -> true
  | After_core | After_d_spine -> false

let has_d_spine = function After_d_spine -> false | _ -> true

let encode_stage topo stage (h : Prule.header) =
  let w = Bitio.Writer.create () in
  if has_u_leaf stage then
    write_uprule w
      ~down_width:(Topology.leaf_downstream_width topo)
      ~up_width:(Topology.leaf_upstream_width topo)
      h.Prule.u_leaf;
  if has_u_spine stage then begin
    match h.Prule.u_spine with
    | None -> Bitio.Writer.bit w false
    | Some u ->
        Bitio.Writer.bit w true;
        write_uprule w
          ~down_width:(Topology.spine_downstream_width topo)
          ~up_width:(Topology.spine_upstream_width topo)
          u
  end;
  if has_core stage then begin
    match h.Prule.core with
    | None -> Bitio.Writer.bit w false
    | Some bm ->
        Bitio.Writer.bit w true;
        Bitio.Writer.bitmap w bm
  end;
  if has_d_spine stage then
    write_section topo w `Spine h.Prule.d_spine h.Prule.d_spine_default;
  write_section topo w `Leaf h.Prule.d_leaf h.Prule.d_leaf_default;
  Bitio.Writer.to_bytes w

let empty_uprule topo =
  {
    Prule.down = Bitmap.create (Topology.leaf_downstream_width topo);
    up = Bitmap.create (Topology.leaf_upstream_width topo);
    multipath = false;
  }

let decode_stage topo stage data =
  let r = Bitio.Reader.of_bytes data in
  let u_leaf =
    if has_u_leaf stage then
      read_uprule r
        ~down_width:(Topology.leaf_downstream_width topo)
        ~up_width:(Topology.leaf_upstream_width topo)
    else empty_uprule topo
  in
  let u_spine =
    if has_u_spine stage && Bitio.Reader.bit r then
      Some
        (read_uprule r
           ~down_width:(Topology.spine_downstream_width topo)
           ~up_width:(Topology.spine_upstream_width topo))
    else None
  in
  let core =
    if has_core stage && Bitio.Reader.bit r then
      Some (Bitio.Reader.bitmap r (Topology.core_downstream_width topo))
    else None
  in
  let d_spine, d_spine_default =
    if has_d_spine stage then read_section topo r `Spine else ([], None)
  in
  let d_leaf, d_leaf_default = read_section topo r `Leaf in
  { Prule.u_leaf; u_spine; core; d_spine; d_spine_default; d_leaf; d_leaf_default }

let stage_bits topo stage h =
  match stage with
  | Full -> Prule.header_bits topo h
  | After_u_leaf -> Prule.remaining_bits_after topo h `U_leaf
  | After_u_spine -> Prule.remaining_bits_after topo h `U_spine
  | After_core -> Prule.remaining_bits_after topo h `Core
  | After_d_spine -> Prule.remaining_bits_after topo h `D_spine

let encode topo h = encode_stage topo Full h
let decode topo data = decode_stage topo Full data

(* {1 Hostile-input decoding}

   [decode] trusts its input — a flipped bit can raise [Truncated] or
   produce ids the fabric would misroute on. [decode_checked] is the total
   boundary for bytes of unknown provenance: it never raises, rejects any
   id outside the topology, any switch claimed by two rules of one section
   (which also bounds section size: a section can hold at most one rule
   mention per switch), and any nonzero or byte-plus trailing slack. What
   structural checking cannot rule out — a well-formed header that delivers
   to ports the group's intent does not cover — is the verify layer's job
   ([Verify.admit_header] subsumption). *)

type decode_error =
  | Truncated  (** input ends inside a field *)
  | Id_out_of_range of { spine : bool; id : int }
      (** a p-rule identifier beyond the topology's switch count *)
  | Duplicate_id of { spine : bool; id : int }
      (** one switch claimed by two rules of the same section *)
  | Trailing_bits
      (** more than a byte of slack after the header, or nonzero padding *)

let pp_decode_error ppf = function
  | Truncated -> Format.fprintf ppf "truncated header"
  | Id_out_of_range { spine; id } ->
      Format.fprintf ppf "%s id %d out of range"
        (if spine then "spine" else "leaf")
        id
  | Duplicate_id { spine; id } ->
      Format.fprintf ppf "duplicate %s id %d"
        (if spine then "spine" else "leaf")
        id
  | Trailing_bits -> Format.fprintf ppf "trailing bits after header"

exception Reject of decode_error

let checked_section topo r layer =
  let width, id_bits = layer_widths topo layer in
  let spine = match layer with `Spine -> true | `Leaf -> false in
  let count =
    match layer with
    | `Spine -> topo.Topology.pods
    | `Leaf -> Topology.num_leaves topo
  in
  let seen = Array.make count false in
  let rec rules acc =
    if Bitio.Reader.bit r then begin
      let bitmap = Bitio.Reader.bitmap r width in
      let rec ids acc_ids =
        let id = Bitio.Reader.bits r id_bits in
        if id >= count then raise (Reject (Id_out_of_range { spine; id }));
        if seen.(id) then raise (Reject (Duplicate_id { spine; id }));
        seen.(id) <- true;
        if Bitio.Reader.bit r then ids (id :: acc_ids)
        else List.rev (id :: acc_ids)
      in
      rules ({ Prule.bitmap; switches = ids [] } :: acc)
    end
    else List.rev acc
  in
  let rules = rules [] in
  let default =
    if Bitio.Reader.bit r then Some (Bitio.Reader.bitmap r width) else None
  in
  (rules, default)

let decode_checked topo data =
  match
    let r = Bitio.Reader.of_bytes data in
    let u_leaf =
      read_uprule r
        ~down_width:(Topology.leaf_downstream_width topo)
        ~up_width:(Topology.leaf_upstream_width topo)
    in
    let u_spine =
      if Bitio.Reader.bit r then
        Some
          (read_uprule r
             ~down_width:(Topology.spine_downstream_width topo)
             ~up_width:(Topology.spine_upstream_width topo))
      else None
    in
    let core =
      if Bitio.Reader.bit r then
        Some (Bitio.Reader.bitmap r (Topology.core_downstream_width topo))
      else None
    in
    let d_spine, d_spine_default = checked_section topo r `Spine in
    let d_leaf, d_leaf_default = checked_section topo r `Leaf in
    (* Strict framing: at most the current byte's padding may remain, and
       it must be all-zero — a header buried in a longer hostile buffer is
       rejected rather than silently truncated. *)
    if Bitio.Reader.remaining r >= 8 then raise (Reject Trailing_bits);
    while Bitio.Reader.remaining r > 0 do
      if Bitio.Reader.bit r then raise (Reject Trailing_bits)
    done;
    {
      Prule.u_leaf;
      u_spine;
      core;
      d_spine;
      d_spine_default;
      d_leaf;
      d_leaf_default;
    }
  with
  | h -> Ok h
  | exception Reject e -> Error e
  | exception Bitio.Reader.Truncated -> Error Truncated

(* {1 Caller-buffer encoding (zero-alloc)}

   The ROADMAP wire-codec surface: the same bit layout as [encode], written
   through a caller-provided {!Bitio.Sink} with no heap allocation on the
   success path. The write logic is duplicated rather than abstracted over
   the writer — a shared higher-order writer would capture the sink in
   closures, which allocate. *)

(* elmo-lint: zero-alloc *)
let rec write_ids_into s id_bits ids =
  match ids with
  | [] -> ()
  | [ id ] ->
      Bitio.Sink.bits s id id_bits;
      Bitio.Sink.bit s false
  | id :: rest ->
      Bitio.Sink.bits s id id_bits;
      Bitio.Sink.bit s true;
      write_ids_into s id_bits rest

(* elmo-lint: zero-alloc *)
let rec write_rules_into s width id_bits rules =
  match rules with
  | [] -> ()
  | r :: rest ->
      (match r.Prule.switches with
      | [] ->
          (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
          invalid_arg "Header_codec: p-rule with no switch identifiers" (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      | _ :: _ -> ());
      if Bitmap.width r.Prule.bitmap <> width then
        (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
        invalid_arg "Header_codec: p-rule bitmap width mismatch"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      Bitio.Sink.bit s true;
      Bitio.Sink.bitmap s r.Prule.bitmap;
      write_ids_into s id_bits r.Prule.switches;
      write_rules_into s width id_bits rest

(* elmo-lint: zero-alloc *)
let write_section_into s width id_bits rules default =
  write_rules_into s width id_bits rules;
  Bitio.Sink.bit s false;
  match default with
  | None -> Bitio.Sink.bit s false
  | Some bm ->
      if Bitmap.width bm <> width then
        (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
        invalid_arg "Header_codec: default bitmap width mismatch"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
      Bitio.Sink.bit s true;
      Bitio.Sink.bitmap s bm

(* elmo-lint: zero-alloc *)
let write_uprule_into s ~down_width ~up_width (u : Prule.uprule) =
  if
    Bitmap.width u.Prule.down <> down_width
    || Bitmap.width u.Prule.up <> up_width
  then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Header_codec: upstream rule width mismatch"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Bitio.Sink.bitmap s u.Prule.down;
  Bitio.Sink.bitmap s u.Prule.up;
  Bitio.Sink.bit s u.Prule.multipath

(* elmo-lint: zero-alloc *)
let encode_into topo (h : Prule.header) s =
  write_uprule_into s
    ~down_width:(Topology.leaf_downstream_width topo)
    ~up_width:(Topology.leaf_upstream_width topo)
    h.Prule.u_leaf;
  (match h.Prule.u_spine with
  | None -> Bitio.Sink.bit s false
  | Some u ->
      Bitio.Sink.bit s true;
      write_uprule_into s
        ~down_width:(Topology.spine_downstream_width topo)
        ~up_width:(Topology.spine_upstream_width topo)
        u);
  (match h.Prule.core with
  | None -> Bitio.Sink.bit s false
  | Some bm ->
      Bitio.Sink.bit s true;
      Bitio.Sink.bitmap s bm);
  write_section_into s
    (Topology.spine_downstream_width topo)
    (Topology.spine_id_bits topo)
    h.Prule.d_spine h.Prule.d_spine_default;
  write_section_into s
    (Topology.leaf_downstream_width topo)
    (Topology.leaf_id_bits topo)
    h.Prule.d_leaf h.Prule.d_leaf_default;
  Bitio.Sink.finish s

let encode_parts topo (h : Prule.header) =
  (* One byte-aligned buffer per section/rule - the unit of a "write call"
     in the per-rule encapsulation path (§4.2). *)
  let parts = ref [] in
  let emit f =
    let w = Bitio.Writer.create () in
    f w;
    parts := Bitio.Writer.to_bytes w :: !parts
  in
  emit (fun w ->
      write_uprule w
        ~down_width:(Topology.leaf_downstream_width topo)
        ~up_width:(Topology.leaf_upstream_width topo)
        h.Prule.u_leaf);
  emit (fun w ->
      match h.Prule.u_spine with
      | None -> Bitio.Writer.bit w false
      | Some u ->
          Bitio.Writer.bit w true;
          write_uprule w
            ~down_width:(Topology.spine_downstream_width topo)
            ~up_width:(Topology.spine_upstream_width topo)
            u);
  emit (fun w ->
      match h.Prule.core with
      | None -> Bitio.Writer.bit w false
      | Some bm ->
          Bitio.Writer.bit w true;
          Bitio.Writer.bitmap w bm);
  let emit_section layer rules default =
    List.iter (fun r -> emit (fun w -> write_section topo w layer [ r ] None)) rules;
    emit (fun w -> write_section topo w layer [] default)
  in
  emit_section `Spine h.Prule.d_spine h.Prule.d_spine_default;
  emit_section `Leaf h.Prule.d_leaf h.Prule.d_leaf_default;
  List.rev !parts

let encode_per_rule_writes topo h =
  Bytes.concat Bytes.empty (encode_parts topo h)
