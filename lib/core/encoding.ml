module Obs = Elmo_obs.Obs

type t = {
  mutable tree : Tree.t;
  params : Params.t;
  d_spine : Clustering.result;
  d_leaf : Clustering.result;
  mutable stale : int;
  (* Fast-path leaf index, built by every from-scratch encode (and by
     [copy]): O(1) per-leaf dispatch with no list scans and no option
     allocation. [idx_kind] holds one dispatch byte per leaf; the arrays
     hold the leaf's exact tree bitmap, its p-rule (when in one), and the
     site bitmap to mutate. Absent slots carry the shared dummies. *)
  idx_kind : Bytes.t;
  idx_exact : Bitmap.t array;
  idx_rule : Prule.prule array;
  idx_site_bm : Bitmap.t array;
  (* Reusable scratch bitmaps (leaf downstream width) for the prospective
     budget check and rule refreshes — the fast path never allocates. *)
  scratch_a : Bitmap.t;
  scratch_b : Bitmap.t;
}

exception Internal_error of string

(* Leaf dispatch bytes for [idx_kind]. *)
let kind_none = '\000'
let kind_prule = '\001'
let kind_srule = '\002'
let kind_default = '\003'

let dummy_bm = Bitmap.create 0
let dummy_prule = { Prule.bitmap = dummy_bm; switches = [] }

(* Build the per-leaf dispatch index. Write order default → s-rules →
   p-rules so a p-rule wins any (never expected) overlap — the same
   precedence the old list-scan dispatch had. *)
let build_index (d_leaf : Clustering.result) (tree : Tree.t) =
  let nleaves = Topology.num_leaves tree.Tree.topo in
  let idx_kind = Bytes.make nleaves kind_none in
  let idx_exact = Array.make nleaves dummy_bm in
  let idx_rule = Array.make nleaves dummy_prule in
  let idx_site_bm = Array.make nleaves dummy_bm in
  List.iter (fun (l, bm) -> idx_exact.(l) <- bm) tree.Tree.leaf_bitmaps;
  (match d_leaf.Clustering.default with
  | Some (ids, bm) ->
      List.iter
        (fun l ->
          Bytes.set idx_kind l kind_default;
          idx_site_bm.(l) <- bm)
        ids
  | None -> ());
  List.iter
    (fun (l, bm) ->
      Bytes.set idx_kind l kind_srule;
      idx_site_bm.(l) <- bm)
    d_leaf.Clustering.srules;
  List.iter
    (fun r ->
      List.iter
        (fun l ->
          Bytes.set idx_kind l kind_prule;
          idx_rule.(l) <- r;
          idx_site_bm.(l) <- r.Prule.bitmap)
        r.Prule.switches)
    d_leaf.Clustering.prules;
  (idx_kind, idx_exact, idx_rule, idx_site_bm)

(* Per-group Hmax within the byte budget (§3.2): worst-case rule sizes are
   known a priori (Kmax identifiers each), the upstream and core sections are
   fixed-size, and one default bitmap per layer is reserved. Spine rules are
   budgeted first (a tree has at most [pods] of them); leaves get the rest. *)
let budgeted_hmax topo (params : Params.t) tree =
  match params.Params.header_budget with
  | None -> (params.Params.hmax_spine, params.Params.hmax_leaf)
  | Some budget_bytes ->
      let total = budget_bytes * 8 in
      let spine_rule = Prule.prule_bits topo `Spine ~nswitches:params.Params.kmax in
      let leaf_rule = Prule.prule_bits topo `Leaf ~nswitches:params.Params.kmax in
      let fixed =
        Prule.uprule_bits
          ~down_width:(Topology.leaf_downstream_width topo)
          ~up_width:(Topology.leaf_upstream_width topo)
        + 1
        + (if Topology.is_two_tier topo then 0
           else
             Prule.uprule_bits
               ~down_width:(Topology.spine_downstream_width topo)
               ~up_width:(Topology.spine_upstream_width topo))
        + 1
        + Topology.core_downstream_width topo
        + (2 * 1) (* section terminators *)
        + Prule.default_rule_bits topo `Spine
        + Prule.default_rule_bits topo `Leaf
      in
      let available = max 0 (total - fixed) in
      let hmax_spine =
        min params.Params.hmax_spine
          (max 1 (min (Tree.pod_count tree) (available / spine_rule)))
      in
      let hmax_leaf =
        min params.Params.hmax_leaf
          (max 1 ((available - (hmax_spine * spine_rule)) / leaf_rule))
      in
      (hmax_spine, hmax_leaf)

let no_legacy _ = false
let all_ok _ = true

(* Merge the clustering of modern switches with forced s-rules (or default
   fallback) for legacy ones. *)
let with_legacy ~legacy ~reserve layer cluster =
  let legacy_switches, modern = List.partition (fun (id, _) -> legacy id) layer in
  let res = cluster modern in
  List.fold_left
    (fun acc (id, bm) ->
      if reserve id then { acc with Clustering.srules = (id, bm) :: acc.Clustering.srules }
      else begin
        let default =
          match acc.Clustering.default with
          | None -> Some ([ id ], Bitmap.copy bm)
          | Some (ids, dbm) ->
              Bitmap.union_into ~dst:dbm bm;
              Some (id :: ids, dbm)
        in
        { acc with Clustering.default }
      end)
    res legacy_switches

(* The only external state a group encode consults is switch capacity, and
   only through the two probe-and-reserve closures below — everything else
   is a pure function of (params, tree). The closures either hit the live
   ledger (sequential path) or a transaction over a frozen snapshot
   (parallel batch path); identical probe answers imply identical output. *)
let encode_cap ~legacy_leaf ~legacy_pod ~srule_ok_leaf ~srule_ok_pod
    (params : Params.t) ~reserve_leaf ~reserve_pod tree =
  (* Eligibility is checked before the capacity probe (short-circuit), so a
     switch the controller has degraded never even logs a probe: its traffic
     is folded into the default p-rule as if the switch were full. *)
  let reserve_leaf l = srule_ok_leaf l && reserve_leaf l in
  let reserve_pod p = srule_ok_pod p && reserve_pod p in
  let hmax_spine, hmax_leaf = budgeted_hmax tree.Tree.topo params tree in
  let d_leaf =
    with_legacy ~legacy:legacy_leaf ~reserve:reserve_leaf tree.Tree.leaf_bitmaps
      (Clustering.run ~r:params.r ~semantics:params.r_semantics ~hmax:hmax_leaf
         ~kmax:params.kmax ~has_srule_space:reserve_leaf)
  in
  let d_spine =
    (* On a two-tier fabric the only spine a packet visits is the sender's,
       which forwards on the upstream rule — no downstream spine rules are
       ever consulted. *)
    if Topology.is_two_tier tree.Tree.topo then
      { Clustering.prules = []; srules = []; default = None }
    else
      with_legacy ~legacy:legacy_pod ~reserve:reserve_pod tree.Tree.spine_bitmaps
        (Clustering.run ~r:params.r ~semantics:params.r_semantics
           ~hmax:hmax_spine ~kmax:params.kmax ~has_srule_space:reserve_pod)
  in
  let idx_kind, idx_exact, idx_rule, idx_site_bm = build_index d_leaf tree in
  let scratch_width = Topology.leaf_downstream_width tree.Tree.topo in
  {
    tree;
    params;
    d_spine;
    d_leaf;
    stale = 0;
    idx_kind;
    idx_exact;
    idx_rule;
    idx_site_bm;
    scratch_a = Bitmap.create scratch_width;
    scratch_b = Bitmap.create scratch_width;
  }

let encode_txn ?(legacy_leaf = no_legacy) ?(legacy_pod = no_legacy)
    ?(srule_ok_leaf = all_ok) ?(srule_ok_pod = all_ok) (params : Params.t) txn
    tree =
  Obs.with_span "encoding.encode_txn" @@ fun () ->
  encode_cap ~legacy_leaf ~legacy_pod ~srule_ok_leaf ~srule_ok_pod params
    ~reserve_leaf:(Srule_state.txn_reserve_leaf txn)
    ~reserve_pod:(Srule_state.txn_reserve_pod txn)
    tree

let encode ?legacy_leaf ?legacy_pod ?srule_ok_leaf ?srule_ok_pod
    (params : Params.t) srules tree =
  Obs.with_span "encoding.encode" @@ fun () ->
  (* The sequential path is the batch protocol at batch size one: encode
     against a just-taken snapshot, then commit. Nothing can have mutated
     the ledger in between, so the commit replay cannot diverge. *)
  let txn = Srule_state.txn (Srule_state.snapshot srules) in
  let enc =
    encode_txn ?legacy_leaf ?legacy_pod ?srule_ok_leaf ?srule_ok_pod params txn
      tree
  in
  (match Srule_state.commit srules txn with
  | Ok () -> ()
  | Error _ ->
      raise (Internal_error "encode: commit of a fresh snapshot diverged"));
  enc

(* {1 Incremental deltas (§3.3 rule-update locality)}

   A membership event whose host lands on a leaf the tree already spans does
   not change the structure of the encoding: the leaf keeps its place in the
   same p-rule, s-rule, or default rule, the spine and core sections are
   untouched (the leaf and pod sets are unchanged), and the header size is
   unchanged (bitmap widths are fixed). The fast path therefore flips one
   port bit in the rule the leaf already occupies, in place. Everything
   structural — a new leaf, an emptied leaf, a blown redundancy budget, or
   accumulated staleness — falls back to the from-scratch encoder, which
   stays the correctness oracle. *)

type delta =
  | Join of { host : int; leaf : int; port : int }
  | Leave of { host : int; leaf : int; port : int }

type site = Site_prule | Site_srule | Site_default

type applied = { site : site; header_changed : bool }

type reencode_reason = New_leaf | Emptied_leaf | Budget_exceeded | Stale

type outcome = Applied of applied | Reencode of reencode_reason

(* Preallocated outcomes: a steady-state event returns one of these static
   values, so the fast path allocates nothing (constructors with constant
   arguments are static data in native code). *)
let re_stale = Reencode Stale
let re_new_leaf = Reencode New_leaf
let re_emptied = Reencode Emptied_leaf
let re_budget = Reencode Budget_exceeded
let a_prule_changed = Applied { site = Site_prule; header_changed = true }
let a_prule_quiet = Applied { site = Site_prule; header_changed = false }
let a_srule = Applied { site = Site_srule; header_changed = false }
let a_default_changed = Applied { site = Site_default; header_changed = true }
let a_default_quiet = Applied { site = Site_default; header_changed = false }

let delta_of_host topo ~joining host =
  let leaf = Topology.leaf_of_host topo host in
  let port = Topology.host_port_on_leaf topo host in
  if joining then Join { host; leaf; port } else Leave { host; leaf; port }

(* elmo-lint: zero-alloc *)
let rec or_exacts t leaves dst =
  match leaves with
  | [] -> ()
  | l :: rest ->
      Bitmap.union_into ~dst (Array.unsafe_get t.idx_exact l);
      or_exacts t rest dst

(* Recompute [dst] as the OR of the exact bitmaps of [leaves], reporting
   whether it changed; the old value is parked in [scratch_b]. *)
(* elmo-lint: zero-alloc *)
let refresh_rule_bitmap t leaves dst =
  Bitmap.copy_into ~dst:t.scratch_b dst;
  Bitmap.reset dst;
  or_exacts t leaves dst;
  not (Bitmap.equal t.scratch_b dst)

(* Exact bitmap of [l] under the prospective join: for the joining leaf
   itself, its exact plus the new port (materialized in [scratch_b]); any
   other sharing leaf is unchanged. *)
(* elmo-lint: zero-alloc *)
let prospective_exact t leaf port l =
  let e = Array.unsafe_get t.idx_exact l in
  if l = leaf then begin
    Bitmap.copy_into ~dst:t.scratch_b e;
    Bitmap.set t.scratch_b port;
    t.scratch_b
  end
  else e

(* elmo-lint: zero-alloc *)
let rec budget_each t leaf port r_budget switches prospective =
  match switches with
  | [] -> true
  | l :: rest ->
      Bitmap.hamming (prospective_exact t leaf port l) prospective <= r_budget
      && budget_each t leaf port r_budget rest prospective

(* elmo-lint: zero-alloc *)
let rec budget_total t leaf port switches prospective acc =
  match switches with
  | [] -> acc
  | l :: rest ->
      budget_total t leaf port rest prospective
        (acc + Bitmap.hamming (prospective_exact t leaf port l) prospective)

(* Allocation-free equivalent of [Clustering.rule_within_budget] on the
   prospective rule bitmap (the current bitmap plus the new port,
   materialized in [scratch_a]). *)
(* elmo-lint: zero-alloc *)
let shared_join_within_budget t r leaf port =
  Bitmap.copy_into ~dst:t.scratch_a r.Prule.bitmap;
  Bitmap.set t.scratch_a port;
  match t.params.Params.r_semantics with
  | Params.Per_bitmap ->
      budget_each t leaf port t.params.Params.r r.Prule.switches t.scratch_a
  | Params.Sum ->
      budget_total t leaf port r.Prule.switches t.scratch_a 0
      <= t.params.Params.r

(* On [Reencode _] NOTHING has been mutated: all structural and budget
   checks run before the tree or any rule bitmap is touched, so the caller
   can diff the old encoding against a fresh one honestly. *)
(* elmo-lint: zero-alloc *)
let apply_event t joining host leaf port =
  if t.stale >= t.params.Params.staleness_limit then re_stale
  else if leaf < 0 || leaf >= Array.length t.idx_exact then re_new_leaf
  else begin
    let exact = Array.unsafe_get t.idx_exact leaf in
    if exact == dummy_bm then re_new_leaf
    else if (not joining) && Bitmap.popcount exact <= 1 then re_emptied
    else begin
      let kind = Bytes.unsafe_get t.idx_kind leaf in
      if kind = kind_none then
        (* Rules out of sync with the tree — cannot happen after a
           from-scratch encode; rebuild defensively. *)
        re_new_leaf
      else begin
        let r = Array.unsafe_get t.idx_rule leaf in
        (* Prospective redundancy check for joins into a shared rule,
           before committing anything. *)
        let budget_ok =
          kind <> kind_prule
          || (not joining)
          || List.compare_length_with r.Prule.switches 1 <= 0
          || shared_join_within_budget t r leaf port
        in
        if not budget_ok then re_budget
        else begin
          (* Commit. The tree mutation flips the leaf's exact bitmap in
             place; rules aliasing that bitmap (singleton p-rules,
             s-rules) are already up to date — mutate the rest
             explicitly. *)
          let applied =
            if joining then Tree.add_member t.tree host
            else Tree.remove_member t.tree host
          in
          if not applied then
            (* Pre-checked above; keep the invariant anyway. *)
            (* elmo-lint: allow zero-alloc — defensive invariant breach, cold *)
            raise (Internal_error "apply_delta: tree delta rejected");
          t.stale <- t.stale + 1;
          if kind = kind_prule then begin
            let site_bm = r.Prule.bitmap in
            let aliased = site_bm == exact in
            if joining then begin
              let header_changed = aliased || not (Bitmap.get site_bm port) in
              if not aliased then Bitmap.set site_bm port;
              if header_changed then a_prule_changed else a_prule_quiet
            end
            else begin
              (* Leaving: the shared bitmap may only drop bits no remaining
                 member needs — recompute the OR over the survivors. *)
              let header_changed =
                aliased || refresh_rule_bitmap t r.Prule.switches site_bm
              in
              if header_changed then a_prule_changed else a_prule_quiet
            end
          end
          else if kind = kind_srule then begin
            (* s-rules are exact per-switch bitmaps. *)
            let bm = Array.unsafe_get t.idx_site_bm leaf in
            if not (bm == exact) then
              if joining then Bitmap.set bm port else Bitmap.clear bm port;
            a_srule
          end
          else begin
            let bm = Array.unsafe_get t.idx_site_bm leaf in
            let header_changed =
              if joining then begin
                let fresh = not (Bitmap.get bm port) in
                if fresh then Bitmap.set bm port;
                fresh
              end
              else
                match t.d_leaf.Clustering.default with
                | Some (ids, _) -> refresh_rule_bitmap t ids bm
                | None -> refresh_rule_bitmap t [] bm
            in
            if header_changed then a_default_changed else a_default_quiet
          end
        end
      end
    end
  end

(* elmo-lint: zero-alloc *)
let apply_delta_impl t delta =
  match delta with
  | Join { host; leaf; port } -> apply_event t true host leaf port
  | Leave { host; leaf; port } -> apply_event t false host leaf port

let reason_label = function
  | New_leaf -> "new_leaf"
  | Emptied_leaf -> "emptied_leaf"
  | Budget_exceeded -> "budget_exceeded"
  | Stale -> "stale"

let site_label = function
  | Site_prule -> "prule"
  | Site_srule -> "srule"
  | Site_default -> "default"

(* elmo-lint: zero-alloc *)
let apply_delta t delta =
  if Obs.enabled () then begin
    let outcome =
      (* elmo-lint: allow zero-alloc — span closure on the opt-in traced path *)
      Obs.with_span "encoding.apply_delta" (fun () -> apply_delta_impl t delta)
    in
    (* Attribute fast path vs slow-path fallback, by site / reason. *)
    (match outcome with
    | Applied a ->
        (* elmo-lint: allow zero-alloc — metric label built on the opt-in observed path *)
        Obs.incr ("encoding.fast_path." ^ site_label a.site)
    | Reencode r ->
        (* elmo-lint: allow zero-alloc — metric label built on the opt-in observed path *)
        Obs.incr ("encoding.fallback." ^ reason_label r));
    outcome
  end
  else apply_delta_impl t delta

let release srules t =
  List.iter (fun (l, _) -> Srule_state.release_leaf srules l) t.d_leaf.Clustering.srules;
  List.iter (fun (p, _) -> Srule_state.release_pod srules p) t.d_spine.Clustering.srules

let header_for_sender t ~sender =
  let tree = t.tree in
  let topo = tree.Tree.topo in
  let sl = Topology.leaf_of_host topo sender in
  let sp = Topology.pod_of_leaf topo sl in
  let other_leaves_in_pod =
    List.exists
      (fun (l, _) -> l <> sl && Topology.pod_of_leaf topo l = sp)
      tree.Tree.leaf_bitmaps
  in
  let other_pods = List.exists (fun (p, _) -> p <> sp) tree.Tree.spine_bitmaps in
  let beyond_leaf = other_leaves_in_pod || other_pods in
  (* Upstream leaf rule: local member ports minus the sender itself; the
     source hypervisor delivers to co-resident member VMs directly. *)
  let u_leaf_down =
    match Tree.leaf_bitmap tree sl with
    | None -> Bitmap.create (Topology.leaf_downstream_width topo)
    | Some bm ->
        let bm = Bitmap.copy bm in
        Bitmap.clear bm (Topology.host_port_on_leaf topo sender);
        bm
  in
  let u_leaf =
    {
      Prule.down = u_leaf_down;
      up = Bitmap.create (Topology.leaf_upstream_width topo);
      multipath = beyond_leaf;
    }
  in
  let u_spine =
    if not beyond_leaf then None
    else begin
      let down =
        match Tree.spine_bitmap tree sp with
        | None -> Bitmap.create (Topology.spine_downstream_width topo)
        | Some bm ->
            let bm = Bitmap.copy bm in
            Bitmap.clear bm (Topology.leaf_port_on_spine topo sl);
            bm
      in
      Some
        {
          Prule.down;
          up = Bitmap.create (Topology.spine_upstream_width topo);
          multipath = other_pods;
        }
    end
  in
  let core =
    if not other_pods then None
    else begin
      let bm = Bitmap.copy tree.Tree.core_bitmap in
      Bitmap.clear bm sp;
      Some bm
    end
  in
  let default_of = function
    | Some (_, bm) -> Some bm
    | None -> None
  in
  {
    Prule.u_leaf;
    u_spine;
    core;
    d_spine = t.d_spine.Clustering.prules;
    d_spine_default = default_of t.d_spine.Clustering.default;
    d_leaf = t.d_leaf.Clustering.prules;
    d_leaf_default = default_of t.d_leaf.Clustering.default;
  }

let header_bytes t ~sender =
  Prule.header_bytes t.tree.Tree.topo (header_for_sender t ~sender)

let covered_by_prules t =
  List.is_empty t.d_spine.Clustering.srules
  && List.is_empty t.d_leaf.Clustering.srules
  && Option.is_none t.d_spine.Clustering.default
  && Option.is_none t.d_leaf.Clustering.default

let covered_without_default t =
  Option.is_none t.d_spine.Clustering.default
  && Option.is_none t.d_leaf.Clustering.default

let uses_default t =
  Option.is_some t.d_spine.Clustering.default
  || Option.is_some t.d_leaf.Clustering.default

let srule_entries t =
  let topo = t.tree.Tree.topo in
  List.length t.d_leaf.Clustering.srules
  + (List.length t.d_spine.Clustering.srules * topo.Topology.spines_per_pod)

let prule_count t =
  List.length t.d_spine.Clustering.prules + List.length t.d_leaf.Clustering.prules

(* {1 Durable wire codec}

   The byte-level analogue of [copy]: the delta fast path depends on
   physical sharing between the tree's exact bitmaps and rule bitmaps
   (singleton p-rules and s-rules alias the tree's leaf bitmaps), so the
   serialized form carries the aliasing graph explicitly. Each distinct
   bitmap object is written inline exactly once, at its first occurrence,
   and every later occurrence is a back-reference into the pool of bitmaps
   written so far ([==]-keyed on the write side, index-keyed on the read
   side). Reading therefore reconstructs the exact object graph, which is
   what makes a restored encoding bit-identical — predicate-pointer-
   identical under lib/verify — to the never-crashed original. *)

let write_bm pool w bm =
  let rec find i = function
    | [] -> -1
    | o :: _ when o == bm -> i
    | _ :: rest -> find (i + 1) rest
  in
  (* The pool list is newest-first; stored indices count from the oldest so
     both sides agree without reversing. *)
  match find 0 !pool with
  | -1 ->
      pool := bm :: !pool;
      Byteio.Writer.u8 w 0;
      Byteio.Writer.bitmap w bm
  | i ->
      Byteio.Writer.u8 w 1;
      Byteio.Writer.u32 w (List.length !pool - 1 - i)

let read_bm pool ~width r =
  match Byteio.Reader.u8 r with
  | 0 ->
      let bm = Byteio.Reader.bitmap r in
      Byteio.Reader.check (Bitmap.width bm = width);
      pool := bm :: !pool;
      bm
  | 1 ->
      let n = List.length !pool in
      let idx = Byteio.Reader.u32 r in
      Byteio.Reader.check (idx < n);
      let bm = List.nth !pool (n - 1 - idx) in
      Byteio.Reader.check (Bitmap.width bm = width);
      bm
  | _ -> raise Byteio.Reader.Corrupt (* elmo-lint: allow exception-discipline — documented API-misuse guard *)

let write_result pool w (res : Clustering.result) =
  Byteio.Writer.list w
    (fun w (r : Prule.prule) ->
      write_bm pool w r.Prule.bitmap;
      Byteio.Writer.list w Byteio.Writer.int r.Prule.switches)
    res.Clustering.prules;
  Byteio.Writer.list w
    (fun w (id, bm) ->
      Byteio.Writer.int w id;
      write_bm pool w bm)
    res.Clustering.srules;
  Byteio.Writer.option w
    (fun w (ids, bm) ->
      Byteio.Writer.list w Byteio.Writer.int ids;
      write_bm pool w bm)
    res.Clustering.default

let read_result pool ~width ~nswitches r =
  let switch_id rd =
    let id = Byteio.Reader.int rd in
    Byteio.Reader.check (0 <= id && id < nswitches);
    id
  in
  let prules =
    Byteio.Reader.list r (fun rd ->
        let bitmap = read_bm pool ~width rd in
        let switches = Byteio.Reader.list rd switch_id in
        { Prule.bitmap; switches })
  in
  let srules =
    Byteio.Reader.list r (fun rd ->
        let id = switch_id rd in
        let bm = read_bm pool ~width rd in
        (id, bm))
  in
  let default =
    Byteio.Reader.option r (fun rd ->
        let ids = Byteio.Reader.list rd switch_id in
        let bm = read_bm pool ~width rd in
        (ids, bm))
  in
  { Clustering.prules; srules; default }

let write w t =
  let pool = ref [] in
  let tree = t.tree in
  Params.write w t.params;
  Byteio.Writer.list w
    (fun w (l, bm) ->
      Byteio.Writer.int w l;
      write_bm pool w bm)
    tree.Tree.leaf_bitmaps;
  Byteio.Writer.list w
    (fun w (p, bm) ->
      Byteio.Writer.int w p;
      write_bm pool w bm)
    tree.Tree.spine_bitmaps;
  write_bm pool w tree.Tree.core_bitmap;
  Byteio.Writer.list w Byteio.Writer.int (Tree.member_list tree);
  write_result pool w t.d_spine;
  write_result pool w t.d_leaf;
  Byteio.Writer.int w t.stale

let read topo r =
  let pool = ref [] in
  let params = Params.read r in
  let site ~count rd =
    let id = Byteio.Reader.int rd in
    Byteio.Reader.check (0 <= id && id < count);
    id
  in
  let leaf_width = Topology.leaf_downstream_width topo in
  let spine_width = Topology.spine_downstream_width topo in
  let leaf_bitmaps =
    Byteio.Reader.list r (fun rd ->
        let l = site ~count:(Topology.num_leaves topo) rd in
        let bm = read_bm pool ~width:leaf_width rd in
        (l, bm))
  in
  let spine_bitmaps =
    Byteio.Reader.list r (fun rd ->
        let p = site ~count:topo.Topology.pods rd in
        let bm = read_bm pool ~width:spine_width rd in
        (p, bm))
  in
  let core_bitmap = read_bm pool ~width:topo.Topology.pods r in
  let members =
    Byteio.Reader.list r (fun rd -> site ~count:(Topology.num_hosts topo) rd)
  in
  (* Structural invariants of Tree.t: ids strictly ascending (leaf/spine
     sections and the sorted members prefix), no empty tree. *)
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        if a < b then ascending rest else raise Byteio.Reader.Corrupt (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
    | _ -> ()
  in
  ascending (List.map fst leaf_bitmaps);
  ascending (List.map fst spine_bitmaps);
  ascending members;
  Byteio.Reader.check (match members with [] -> false | _ :: _ -> true);
  Byteio.Reader.check (match leaf_bitmaps with [] -> false | _ :: _ -> true);
  let tree =
    {
      Tree.topo;
      members = Array.of_list members;
      nmembers = List.length members;
      leaf_bitmaps;
      spine_bitmaps;
      core_bitmap;
    }
  in
  let d_spine =
    read_result pool ~width:spine_width ~nswitches:topo.Topology.pods r
  in
  let d_leaf =
    read_result pool ~width:leaf_width ~nswitches:(Topology.num_leaves topo) r
  in
  let stale = Byteio.Reader.int r in
  Byteio.Reader.check (stale >= 0);
  let idx_kind, idx_exact, idx_rule, idx_site_bm = build_index d_leaf tree in
  let scratch_width = leaf_width in
  {
    tree;
    params;
    d_spine;
    d_leaf;
    stale;
    idx_kind;
    idx_exact;
    idx_rule;
    idx_site_bm;
    scratch_a = Bitmap.create scratch_width;
    scratch_b = Bitmap.create scratch_width;
  }

(* Deep copy for checkpoints. The delta fast path depends on physical
   sharing between the tree's exact bitmaps and rule bitmaps (singleton
   p-rules and s-rules alias the tree's leaf bitmaps), so the copy must
   preserve the aliasing graph: each distinct bitmap object is copied
   exactly once, via a [==]-keyed memo. An encoding touches a handful of
   bitmaps, so the linear memo scan is fine. *)
let copy t =
  let memo = ref [] in
  let copy_bm bm =
    match List.find_opt (fun (o, _) -> o == bm) !memo with
    | Some (_, c) -> c
    | None ->
        let c = Bitmap.copy bm in
        memo := (bm, c) :: !memo;
        c
  in
  let copy_tree (tr : Tree.t) =
    {
      tr with
      Tree.members = Array.copy tr.Tree.members;
      leaf_bitmaps = List.map (fun (l, bm) -> (l, copy_bm bm)) tr.Tree.leaf_bitmaps;
      spine_bitmaps =
        List.map (fun (p, bm) -> (p, copy_bm bm)) tr.Tree.spine_bitmaps;
      core_bitmap = copy_bm tr.Tree.core_bitmap;
    }
  in
  let copy_prule (r : Prule.prule) =
    { r with Prule.bitmap = copy_bm r.Prule.bitmap }
  in
  let copy_result (res : Clustering.result) =
    {
      Clustering.prules = List.map copy_prule res.Clustering.prules;
      srules = List.map (fun (id, bm) -> (id, copy_bm bm)) res.Clustering.srules;
      default =
        Option.map (fun (ids, bm) -> (ids, copy_bm bm)) res.Clustering.default;
    }
  in
  let tree = copy_tree t.tree in
  let d_leaf = copy_result t.d_leaf in
  let idx_kind, idx_exact, idx_rule, idx_site_bm = build_index d_leaf tree in
  {
    tree;
    params = t.params;
    d_spine = copy_result t.d_spine;
    d_leaf;
    stale = t.stale;
    idx_kind;
    idx_exact;
    idx_rule;
    idx_site_bm;
    scratch_a = Bitmap.create (Bitmap.width t.scratch_a);
    scratch_b = Bitmap.create (Bitmap.width t.scratch_b);
  }
