module Obs = Elmo_obs.Obs

type t = {
  mutable tree : Tree.t;
  params : Params.t;
  d_spine : Clustering.result;
  d_leaf : Clustering.result;
  mutable stale : int;
}

exception Internal_error of string

(* Per-group Hmax within the byte budget (§3.2): worst-case rule sizes are
   known a priori (Kmax identifiers each), the upstream and core sections are
   fixed-size, and one default bitmap per layer is reserved. Spine rules are
   budgeted first (a tree has at most [pods] of them); leaves get the rest. *)
let budgeted_hmax topo (params : Params.t) tree =
  match params.Params.header_budget with
  | None -> (params.Params.hmax_spine, params.Params.hmax_leaf)
  | Some budget_bytes ->
      let total = budget_bytes * 8 in
      let spine_rule = Prule.prule_bits topo `Spine ~nswitches:params.Params.kmax in
      let leaf_rule = Prule.prule_bits topo `Leaf ~nswitches:params.Params.kmax in
      let fixed =
        Prule.uprule_bits
          ~down_width:(Topology.leaf_downstream_width topo)
          ~up_width:(Topology.leaf_upstream_width topo)
        + 1
        + (if Topology.is_two_tier topo then 0
           else
             Prule.uprule_bits
               ~down_width:(Topology.spine_downstream_width topo)
               ~up_width:(Topology.spine_upstream_width topo))
        + 1
        + Topology.core_downstream_width topo
        + (2 * 1) (* section terminators *)
        + Prule.default_rule_bits topo `Spine
        + Prule.default_rule_bits topo `Leaf
      in
      let available = max 0 (total - fixed) in
      let hmax_spine =
        min params.Params.hmax_spine
          (max 1 (min (Tree.pod_count tree) (available / spine_rule)))
      in
      let hmax_leaf =
        min params.Params.hmax_leaf
          (max 1 ((available - (hmax_spine * spine_rule)) / leaf_rule))
      in
      (hmax_spine, hmax_leaf)

let no_legacy _ = false
let all_ok _ = true

(* Merge the clustering of modern switches with forced s-rules (or default
   fallback) for legacy ones. *)
let with_legacy ~legacy ~reserve layer cluster =
  let legacy_switches, modern = List.partition (fun (id, _) -> legacy id) layer in
  let res = cluster modern in
  List.fold_left
    (fun acc (id, bm) ->
      if reserve id then { acc with Clustering.srules = (id, bm) :: acc.Clustering.srules }
      else begin
        let default =
          match acc.Clustering.default with
          | None -> Some ([ id ], Bitmap.copy bm)
          | Some (ids, dbm) ->
              Bitmap.union_into ~dst:dbm bm;
              Some (id :: ids, dbm)
        in
        { acc with Clustering.default }
      end)
    res legacy_switches

(* The only external state a group encode consults is switch capacity, and
   only through the two probe-and-reserve closures below — everything else
   is a pure function of (params, tree). The closures either hit the live
   ledger (sequential path) or a transaction over a frozen snapshot
   (parallel batch path); identical probe answers imply identical output. *)
let encode_cap ~legacy_leaf ~legacy_pod ~srule_ok_leaf ~srule_ok_pod
    (params : Params.t) ~reserve_leaf ~reserve_pod tree =
  (* Eligibility is checked before the capacity probe (short-circuit), so a
     switch the controller has degraded never even logs a probe: its traffic
     is folded into the default p-rule as if the switch were full. *)
  let reserve_leaf l = srule_ok_leaf l && reserve_leaf l in
  let reserve_pod p = srule_ok_pod p && reserve_pod p in
  let hmax_spine, hmax_leaf = budgeted_hmax tree.Tree.topo params tree in
  let d_leaf =
    with_legacy ~legacy:legacy_leaf ~reserve:reserve_leaf tree.Tree.leaf_bitmaps
      (Clustering.run ~r:params.r ~semantics:params.r_semantics ~hmax:hmax_leaf
         ~kmax:params.kmax ~has_srule_space:reserve_leaf)
  in
  let d_spine =
    (* On a two-tier fabric the only spine a packet visits is the sender's,
       which forwards on the upstream rule — no downstream spine rules are
       ever consulted. *)
    if Topology.is_two_tier tree.Tree.topo then
      { Clustering.prules = []; srules = []; default = None }
    else
      with_legacy ~legacy:legacy_pod ~reserve:reserve_pod tree.Tree.spine_bitmaps
        (Clustering.run ~r:params.r ~semantics:params.r_semantics
           ~hmax:hmax_spine ~kmax:params.kmax ~has_srule_space:reserve_pod)
  in
  { tree; params; d_spine; d_leaf; stale = 0 }

let encode_txn ?(legacy_leaf = no_legacy) ?(legacy_pod = no_legacy)
    ?(srule_ok_leaf = all_ok) ?(srule_ok_pod = all_ok) (params : Params.t) txn
    tree =
  Obs.with_span "encoding.encode_txn" @@ fun () ->
  encode_cap ~legacy_leaf ~legacy_pod ~srule_ok_leaf ~srule_ok_pod params
    ~reserve_leaf:(Srule_state.txn_reserve_leaf txn)
    ~reserve_pod:(Srule_state.txn_reserve_pod txn)
    tree

let encode ?legacy_leaf ?legacy_pod ?srule_ok_leaf ?srule_ok_pod
    (params : Params.t) srules tree =
  Obs.with_span "encoding.encode" @@ fun () ->
  (* The sequential path is the batch protocol at batch size one: encode
     against a just-taken snapshot, then commit. Nothing can have mutated
     the ledger in between, so the commit replay cannot diverge. *)
  let txn = Srule_state.txn (Srule_state.snapshot srules) in
  let enc =
    encode_txn ?legacy_leaf ?legacy_pod ?srule_ok_leaf ?srule_ok_pod params txn
      tree
  in
  (match Srule_state.commit srules txn with
  | Ok () -> ()
  | Error _ ->
      raise (Internal_error "encode: commit of a fresh snapshot diverged"));
  enc

(* {1 Incremental deltas (§3.3 rule-update locality)}

   A membership event whose host lands on a leaf the tree already spans does
   not change the structure of the encoding: the leaf keeps its place in the
   same p-rule, s-rule, or default rule, the spine and core sections are
   untouched (the leaf and pod sets are unchanged), and the header size is
   unchanged (bitmap widths are fixed). The fast path therefore flips one
   port bit in the rule the leaf already occupies, in place. Everything
   structural — a new leaf, an emptied leaf, a blown redundancy budget, or
   accumulated staleness — falls back to the from-scratch encoder, which
   stays the correctness oracle. *)

type delta =
  | Join of { host : int; leaf : int; port : int }
  | Leave of { host : int; leaf : int; port : int }

type site = Site_prule | Site_srule | Site_default

type applied = { site : site; leaf : int; header_changed : bool }

type reencode_reason = New_leaf | Emptied_leaf | Budget_exceeded | Stale

type outcome = Applied of applied | Reencode of reencode_reason

let delta_of_host topo ~joining host =
  let leaf = Topology.leaf_of_host topo host in
  let port = Topology.host_port_on_leaf topo host in
  if joining then Join { host; leaf; port } else Leave { host; leaf; port }

let leaf_site t leaf =
  match
    List.find_opt (fun r -> Prule.rule_mem r leaf) t.d_leaf.Clustering.prules
  with
  | Some r -> Some (`P r)
  | None -> (
      match List.assoc_opt leaf t.d_leaf.Clustering.srules with
      | Some bm -> Some (`S bm)
      | None -> (
          match t.d_leaf.Clustering.default with
          | Some (ids, bm) when List.mem leaf ids -> Some (`D bm)
          | Some _ | None -> None))

let exact_leaf_bitmap t leaf =
  match Tree.leaf_bitmap t.tree leaf with
  | Some bm -> bm
  | None -> raise (Internal_error "exact_leaf_bitmap: leaf not in tree")

(* OR the exact bitmaps of [leaves] into [dst] (reset first), reporting
   whether [dst] changed. *)
let refresh_or t leaves dst =
  let old = Bitmap.copy dst in
  Bitmap.reset dst;
  List.iter (fun l -> Bitmap.union_into ~dst (exact_leaf_bitmap t l)) leaves;
  not (Bitmap.equal old dst)

(* On [Reencode _] NOTHING has been mutated: all structural and budget
   checks run before the tree or any rule bitmap is touched, so the caller
   can diff the old encoding against a fresh one honestly. *)
let apply_delta_impl t delta =
  let joining, host, leaf, port =
    match delta with
    | Join { host; leaf; port } -> (true, host, leaf, port)
    | Leave { host; leaf; port } -> (false, host, leaf, port)
  in
  if t.stale >= t.params.Params.staleness_limit then Reencode Stale
  else begin
    match Tree.leaf_bitmap t.tree leaf with
    | None -> Reencode New_leaf
    | Some exact when (not joining) && Bitmap.popcount exact <= 1 ->
        Reencode Emptied_leaf
    | Some exact -> (
        match leaf_site t leaf with
        | None ->
            (* Rules out of sync with the tree — cannot happen after a
               from-scratch encode; rebuild defensively. *)
            Reencode New_leaf
        | Some site_found -> (
            (* Prospective redundancy check for joins into a shared rule,
               before committing anything. *)
            let budget_ok =
              match site_found with
              | `P r
                when joining && List.compare_length_with r.Prule.switches 1 > 0
                ->
                  let prospective = Bitmap.copy r.Prule.bitmap in
                  Bitmap.set prospective port;
                  let exacts =
                    List.map
                      (fun l ->
                        if l = leaf then begin
                          let e = Bitmap.copy exact in
                          Bitmap.set e port;
                          e
                        end
                        else exact_leaf_bitmap t l)
                      r.Prule.switches
                  in
                  Clustering.rule_within_budget ~r:t.params.Params.r
                    ~semantics:t.params.Params.r_semantics ~exacts prospective
              | `P _ | `S _ | `D _ -> true
            in
            if not budget_ok then Reencode Budget_exceeded
            else begin
              (* Commit. The tree mutation flips the leaf's exact bitmap in
                 place; rules aliasing that bitmap (singleton p-rules,
                 s-rules) are already up to date — mutate the rest
                 explicitly. *)
              let tree' =
                if joining then Tree.add_member t.tree host
                else Tree.remove_member t.tree host
              in
              (match tree' with
              | Some tree' -> t.tree <- tree'
              | None ->
                  (* Pre-checked above; keep the invariant anyway. *)
                  raise
                    (Internal_error "apply_delta: tree delta rejected"));
              t.stale <- t.stale + 1;
              match site_found with
              | `P r ->
                  let aliased = r.Prule.bitmap == exact in
                  if joining then begin
                    let header_changed =
                      aliased || not (Bitmap.get r.Prule.bitmap port)
                    in
                    if not aliased then Bitmap.set r.Prule.bitmap port;
                    Applied { site = Site_prule; leaf; header_changed }
                  end
                  else begin
                    (* Leaving: the shared bitmap may only drop bits no
                       remaining member needs — recompute the OR over the
                       survivors. *)
                    let header_changed =
                      if aliased then true
                      else refresh_or t r.Prule.switches r.Prule.bitmap
                    in
                    Applied { site = Site_prule; leaf; header_changed }
                  end
              | `S bm ->
                  (* s-rules are exact per-switch bitmaps. *)
                  if not (bm == exact) then
                    if joining then Bitmap.set bm port
                    else Bitmap.clear bm port;
                  Applied { site = Site_srule; leaf; header_changed = false }
              | `D bm ->
                  let header_changed =
                    if joining then begin
                      let fresh = not (Bitmap.get bm port) in
                      if fresh then Bitmap.set bm port;
                      fresh
                    end
                    else begin
                      let ids =
                        match t.d_leaf.Clustering.default with
                        | Some (ids, _) -> ids
                        | None -> []
                      in
                      refresh_or t ids bm
                    end
                  in
                  Applied { site = Site_default; leaf; header_changed }
            end))
  end

let reason_label = function
  | New_leaf -> "new_leaf"
  | Emptied_leaf -> "emptied_leaf"
  | Budget_exceeded -> "budget_exceeded"
  | Stale -> "stale"

let site_label = function
  | Site_prule -> "prule"
  | Site_srule -> "srule"
  | Site_default -> "default"

let apply_delta t delta =
  let outcome = Obs.with_span "encoding.apply_delta" (fun () -> apply_delta_impl t delta) in
  if Obs.enabled () then begin
    (* Attribute fast path vs slow-path fallback, by site / reason. *)
    match outcome with
    | Applied a -> Obs.incr ("encoding.fast_path." ^ site_label a.site)
    | Reencode r -> Obs.incr ("encoding.fallback." ^ reason_label r)
  end;
  outcome

let release srules t =
  List.iter (fun (l, _) -> Srule_state.release_leaf srules l) t.d_leaf.Clustering.srules;
  List.iter (fun (p, _) -> Srule_state.release_pod srules p) t.d_spine.Clustering.srules

let header_for_sender t ~sender =
  let tree = t.tree in
  let topo = tree.Tree.topo in
  let sl = Topology.leaf_of_host topo sender in
  let sp = Topology.pod_of_leaf topo sl in
  let other_leaves_in_pod =
    List.exists
      (fun (l, _) -> l <> sl && Topology.pod_of_leaf topo l = sp)
      tree.Tree.leaf_bitmaps
  in
  let other_pods = List.exists (fun (p, _) -> p <> sp) tree.Tree.spine_bitmaps in
  let beyond_leaf = other_leaves_in_pod || other_pods in
  (* Upstream leaf rule: local member ports minus the sender itself; the
     source hypervisor delivers to co-resident member VMs directly. *)
  let u_leaf_down =
    match Tree.leaf_bitmap tree sl with
    | None -> Bitmap.create (Topology.leaf_downstream_width topo)
    | Some bm ->
        let bm = Bitmap.copy bm in
        Bitmap.clear bm (Topology.host_port_on_leaf topo sender);
        bm
  in
  let u_leaf =
    {
      Prule.down = u_leaf_down;
      up = Bitmap.create (Topology.leaf_upstream_width topo);
      multipath = beyond_leaf;
    }
  in
  let u_spine =
    if not beyond_leaf then None
    else begin
      let down =
        match Tree.spine_bitmap tree sp with
        | None -> Bitmap.create (Topology.spine_downstream_width topo)
        | Some bm ->
            let bm = Bitmap.copy bm in
            Bitmap.clear bm (Topology.leaf_port_on_spine topo sl);
            bm
      in
      Some
        {
          Prule.down;
          up = Bitmap.create (Topology.spine_upstream_width topo);
          multipath = other_pods;
        }
    end
  in
  let core =
    if not other_pods then None
    else begin
      let bm = Bitmap.copy tree.Tree.core_bitmap in
      Bitmap.clear bm sp;
      Some bm
    end
  in
  let default_of = function
    | Some (_, bm) -> Some bm
    | None -> None
  in
  {
    Prule.u_leaf;
    u_spine;
    core;
    d_spine = t.d_spine.Clustering.prules;
    d_spine_default = default_of t.d_spine.Clustering.default;
    d_leaf = t.d_leaf.Clustering.prules;
    d_leaf_default = default_of t.d_leaf.Clustering.default;
  }

let header_bytes t ~sender =
  Prule.header_bytes t.tree.Tree.topo (header_for_sender t ~sender)

let covered_by_prules t =
  List.is_empty t.d_spine.Clustering.srules
  && List.is_empty t.d_leaf.Clustering.srules
  && Option.is_none t.d_spine.Clustering.default
  && Option.is_none t.d_leaf.Clustering.default

let covered_without_default t =
  Option.is_none t.d_spine.Clustering.default
  && Option.is_none t.d_leaf.Clustering.default

let uses_default t =
  Option.is_some t.d_spine.Clustering.default
  || Option.is_some t.d_leaf.Clustering.default

let srule_entries t =
  let topo = t.tree.Tree.topo in
  List.length t.d_leaf.Clustering.srules
  + (List.length t.d_spine.Clustering.srules * topo.Topology.spines_per_pod)

let prule_count t =
  List.length t.d_spine.Clustering.prules + List.length t.d_leaf.Clustering.prules

(* Deep copy for checkpoints. The delta fast path depends on physical
   sharing between the tree's exact bitmaps and rule bitmaps (singleton
   p-rules and s-rules alias the tree's leaf bitmaps), so the copy must
   preserve the aliasing graph: each distinct bitmap object is copied
   exactly once, via a [==]-keyed memo. An encoding touches a handful of
   bitmaps, so the linear memo scan is fine. *)
let copy t =
  let memo = ref [] in
  let copy_bm bm =
    match List.find_opt (fun (o, _) -> o == bm) !memo with
    | Some (_, c) -> c
    | None ->
        let c = Bitmap.copy bm in
        memo := (bm, c) :: !memo;
        c
  in
  let copy_tree (tr : Tree.t) =
    {
      tr with
      Tree.members = Array.copy tr.Tree.members;
      leaf_bitmaps = List.map (fun (l, bm) -> (l, copy_bm bm)) tr.Tree.leaf_bitmaps;
      spine_bitmaps =
        List.map (fun (p, bm) -> (p, copy_bm bm)) tr.Tree.spine_bitmaps;
      core_bitmap = copy_bm tr.Tree.core_bitmap;
    }
  in
  let copy_prule (r : Prule.prule) =
    { r with Prule.bitmap = copy_bm r.Prule.bitmap }
  in
  let copy_result (res : Clustering.result) =
    {
      Clustering.prules = List.map copy_prule res.Clustering.prules;
      srules = List.map (fun (id, bm) -> (id, copy_bm bm)) res.Clustering.srules;
      default =
        Option.map (fun (ids, bm) -> (ids, copy_bm bm)) res.Clustering.default;
    }
  in
  {
    tree = copy_tree t.tree;
    params = t.params;
    d_spine = copy_result t.d_spine;
    d_leaf = copy_result t.d_leaf;
    stale = t.stale;
  }
