type r_semantics = Sum | Per_bitmap

type t = {
  r : int;
  r_semantics : r_semantics;
  hmax_leaf : int;
  hmax_spine : int;
  header_budget : int option;
  kmax : int;
  fmax : int;
  staleness_limit : int;
  install_retries : int;
  install_backoff_us : int;
}

let create ?(r = 0) ?(r_semantics = Sum) ?(hmax_leaf = 30) ?(hmax_spine = 12)
    ?(header_budget = Some 325) ?(kmax = 2) ?(fmax = 30_000)
    ?(staleness_limit = 256) ?(install_retries = 4) ?(install_backoff_us = 8)
    () =
  if r < 0 then invalid_arg "Params.create: r must be non-negative"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if hmax_leaf <= 0 then invalid_arg "Params.create: hmax_leaf must be positive"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if hmax_spine <= 0 then invalid_arg "Params.create: hmax_spine must be positive"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  (match header_budget with
  | Some b when b <= 0 -> invalid_arg "Params.create: header_budget must be positive" (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  | Some _ | None -> ());
  if kmax <= 0 then invalid_arg "Params.create: kmax must be positive"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if fmax < 0 then invalid_arg "Params.create: fmax must be non-negative"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if staleness_limit < 0 then
    invalid_arg "Params.create: staleness_limit must be non-negative"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if install_retries < 0 then
    invalid_arg "Params.create: install_retries must be non-negative"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if install_backoff_us <= 0 then
    invalid_arg "Params.create: install_backoff_us must be positive"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  { r; r_semantics; hmax_leaf; hmax_spine; header_budget; kmax; fmax;
    staleness_limit; install_retries; install_backoff_us }

let default = create ()
let with_r t r = { t with r = (if r < 0 then invalid_arg "Params.with_r" else r) } (* elmo-lint: allow exception-discipline — documented API-misuse guard *)

(* Durable wire codec: reconstruction goes back through [create] so every
   persisted value re-passes the same validation as a fresh one; a shape
   [create] rejects marks the containing record as corrupt. *)
let write w t =
  Byteio.Writer.int w t.r;
  Byteio.Writer.u8 w (match t.r_semantics with Sum -> 0 | Per_bitmap -> 1);
  Byteio.Writer.int w t.hmax_leaf;
  Byteio.Writer.int w t.hmax_spine;
  Byteio.Writer.option w Byteio.Writer.int t.header_budget;
  Byteio.Writer.int w t.kmax;
  Byteio.Writer.int w t.fmax;
  Byteio.Writer.int w t.staleness_limit;
  Byteio.Writer.int w t.install_retries;
  Byteio.Writer.int w t.install_backoff_us

let read r =
  let red = Byteio.Reader.int r in
  let r_semantics =
    match Byteio.Reader.u8 r with
    | 0 -> Sum
    | 1 -> Per_bitmap
    | _ -> raise Byteio.Reader.Corrupt
  in
  let hmax_leaf = Byteio.Reader.int r in
  let hmax_spine = Byteio.Reader.int r in
  let header_budget = Byteio.Reader.option r Byteio.Reader.int in
  let kmax = Byteio.Reader.int r in
  let fmax = Byteio.Reader.int r in
  let staleness_limit = Byteio.Reader.int r in
  let install_retries = Byteio.Reader.int r in
  let install_backoff_us = Byteio.Reader.int r in
  match
    create ~r:red ~r_semantics ~hmax_leaf ~hmax_spine ~header_budget ~kmax
      ~fmax ~staleness_limit ~install_retries ~install_backoff_us ()
  with
  | t -> t
  | exception Invalid_argument _ -> raise Byteio.Reader.Corrupt

let pp ppf t =
  Format.fprintf ppf "R=%d(%s) Hmax=(leaf %d, spine %d%s) Kmax=%d Fmax=%d" t.r
    (match t.r_semantics with Sum -> "sum" | Per_bitmap -> "per-bitmap")
    t.hmax_leaf t.hmax_spine
    (match t.header_budget with
    | Some b -> Printf.sprintf ", budget %dB" b
    | None -> "")
    t.kmax t.fmax
